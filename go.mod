module waterwheel

go 1.22
