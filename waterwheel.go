// Package waterwheel is a Go implementation of Waterwheel (ICDE 2018):
// a distributed stream store that sustains very high tuple-insertion
// throughput while answering ad-hoc queries constrained on both the key
// and the time domain within milliseconds.
//
// The system partitions the key×time space into data regions owned by
// indexing servers. Each server buffers its region in an in-memory
// template B+ tree — whose inner structure is reused across flushes,
// eliminating node splits — and flushes immutable chunks to a distributed
// file system. A coordinator decomposes queries via an R-tree over region
// metadata and fans subqueries out across indexing servers (fresh data)
// and query servers (chunks) with the locality-aware LADA dispatcher.
//
// Quick start:
//
//	db, _ := waterwheel.Open(waterwheel.Options{})
//	defer db.Close()
//	db.Insert(waterwheel.Tuple{Key: 42, Time: now, Payload: []byte("...")})
//	db.Drain()
//	res, _ := db.QueryRange(waterwheel.KeyRange{Lo: 0, Hi: 100},
//		waterwheel.TimeRange{Lo: now - 5000, Hi: now})
package waterwheel

import (
	"errors"
	"fmt"

	"waterwheel/internal/chunk"
	"waterwheel/internal/cluster"
	"waterwheel/internal/dfs"
	"waterwheel/internal/model"
	"waterwheel/internal/queryexec"
	"waterwheel/internal/telemetry"
)

// Core data-model types, aliased from the internal model package so user
// code and internal code share identities.
type (
	// Key is a tuple's index key (the full uint64 domain).
	Key = model.Key
	// Timestamp is a point in the time domain, in milliseconds.
	Timestamp = model.Timestamp
	// Tuple is the unit of ingestion: key, timestamp, opaque payload.
	Tuple = model.Tuple
	// KeyRange is a closed interval on the key domain.
	KeyRange = model.KeyRange
	// TimeRange is a closed interval on the time domain.
	TimeRange = model.TimeRange
	// Region is a rectangle in key×time space.
	Region = model.Region
	// Query selects tuples by key range, time range and optional filter.
	Query = model.Query
	// Result carries the qualifying tuples plus execution metadata.
	Result = model.Result
	// Filter is a serializable predicate over tuples (the paper's fq).
	Filter = model.Filter
	// AggregateQuery computes COUNT/MIN/MAX/SUM over a key range × time
	// range instead of returning tuples.
	AggregateQuery = model.AggregateQuery
	// AggResult carries an aggregate query's folded partial plus pushdown
	// execution metadata.
	AggResult = model.AggResult
	// AggKind selects the aggregate function.
	AggKind = model.AggKind
	// Recurrence restricts a query's time range to a repeating window —
	// "between 09:00 and 17:00 daily". Set Query.Recur to one; the
	// coordinator prunes chunks outside every concrete window through the
	// metadata time-bucket hierarchy.
	Recurrence = model.Recurrence
)

// Daily builds a Recurrence matching [start, start+length) within every
// UTC day, both arguments in milliseconds-of-day.
func Daily(startMillis, lengthMillis int64) *Recurrence {
	return &Recurrence{PeriodMillis: 24 * 3_600_000, StartMillis: startMillis, LengthMillis: lengthMillis}
}

// Aggregate kinds.
const (
	AggCount = model.AggCount
	AggMin   = model.AggMin
	AggMax   = model.AggMax
	AggSum   = model.AggSum
)

// ParseAggKind parses "count", "min", "max" or "sum".
func ParseAggKind(s string) (AggKind, error) { return model.ParseAggKind(s) }

// MaxKey is the largest key.
const MaxKey = model.MaxKey

// FullKeyRange covers the whole key domain.
func FullKeyRange() KeyRange { return model.FullKeyRange() }

// FullTimeRange covers the whole time domain.
func FullTimeRange() TimeRange { return model.FullTimeRange() }

// Options configures an embedded Waterwheel deployment. The zero value is
// a sensible single-node development setup.
type Options struct {
	// Nodes is the simulated cluster size (default 1). Each node runs
	// IndexServersPerNode indexing servers, QueryServersPerNode query
	// servers, DispatchersPerNode dispatchers and one DFS datanode.
	Nodes               int
	IndexServersPerNode int
	QueryServersPerNode int
	DispatchersPerNode  int
	// ChunkBytes is the flush threshold (default 16 MB).
	ChunkBytes int64
	// CacheBytes is each query server's cache budget (default 1 GB).
	CacheBytes int64
	// LateDeltaMillis is the late-visibility window Δt (default 10 s).
	LateDeltaMillis int64
	// Policy selects the subquery dispatch policy: "lada" (default),
	// "round-robin", "hashing" or "shared-queue".
	Policy string
	// QueryWorkers is each query server's subquery parallelism: how many
	// dispatch workers claim subqueries for it concurrently (0 = default
	// 4; 1 restores serial per-server dispatch).
	QueryWorkers int
	// QueryInflightReads bounds each query server's concurrent DFS reads
	// (0 = default 4; 1 serializes its chunk I/O).
	QueryInflightReads int
	// DisableAdaptivePartitioning turns the key balancer off.
	DisableAdaptivePartitioning bool
	// BalanceIntervalMillis runs the balancer on a cadence (0 = manual).
	BalanceIntervalMillis int64
	// DisableBloom turns leaf time-sketch pruning off.
	DisableBloom bool
	// SyncIngest bypasses the WAL for maximum single-process throughput;
	// forfeits crash recovery.
	SyncIngest bool
	// FlushQueueDepth bounds each indexing server's asynchronous flush
	// pipeline: at most this many swapped-out memtable snapshots may await
	// persistence before inserts crossing the chunk threshold block
	// (default 2). Snapshots stay queryable while in the queue.
	FlushQueueDepth int
	// SyncFlush performs chunk build + DFS write inline on the inserting
	// goroutine instead of the background flusher — the pre-pipeline
	// behavior, kept as a benchmark baseline and ablation switch.
	SyncFlush bool
	// AggregateField is the payload offset of the big-endian uint64 field
	// summarized by per-leaf pre-aggregates in v2 chunks (default 0).
	// Aggregate queries over this field answer fully covered leaves from
	// chunk headers without reading leaf bodies.
	AggregateField uint32
	// DisableAggregates skips building pre-aggregate blocks (ablation /
	// header-size control). COUNT pushdown still works from leaf counts.
	DisableAggregates bool
	// ChunkFormat pins the chunk format written by flushes: 1 for the
	// row-encoded v1 layout, 2 (or 0, the default) for columnar v2.
	ChunkFormat int
	// EnableSecondaryIndex builds per-leaf bloom filters over the
	// big-endian uint64 payload field at SecondaryIndexOffset (the paper's
	// §VIII future-work extension). Queries whose filter pins that field
	// to a value with PayloadU64(offset, EQ, v) then skip chunk leaves
	// that cannot contain it.
	EnableSecondaryIndex bool
	// SecondaryIndexOffset is the payload offset of the indexed field.
	SecondaryIndexOffset uint32
	// SimulateIO charges HDFS-like latencies on chunk reads (off by
	// default for embedded use).
	SimulateIO bool
	// DisableTelemetry turns the metric registry and query tracing off.
	// Telemetry is on by default: counters and histograms are lock-free
	// atomics and the insert path is instrumented allocation-free, so the
	// cost is a few nanoseconds per operation.
	DisableTelemetry bool
	// TraceCapacity bounds the ring of retained query traces (default 16).
	TraceCapacity int
	// DataDir makes the store durable: chunks, WAL and metadata persist
	// under this directory, and Open over an existing directory restores
	// the previous state (indexing servers replay their WAL tails).
	// Incompatible with SyncIngest.
	DataDir string
	// Durability selects when Insert acknowledges a tuple relative to WAL
	// fsync (DataDir mode): "" or "ack-on-write" acks once the record is
	// written to the OS page cache (fastest; a host crash can drop acked
	// tuples appended since the last Checkpoint), "ack-on-fsync" group-
	// commits — Insert returns only after a batched fsync covers the
	// record, so an acked tuple survives a host crash — and "interval"
	// fsyncs in the background every FsyncIntervalMillis, bounding the
	// loss window without per-insert latency. Requires DataDir for any
	// policy other than ack-on-write.
	Durability string
	// FsyncIntervalMillis is the background fsync cadence for the
	// "interval" durability policy (default 50).
	FsyncIntervalMillis int64
	// HotStandby keeps a passive shadow server tailing each slot's WAL
	// partition, building a shadow memtable so a takeover (KillIndexServer,
	// PromoteStandby) flips ownership without replaying the whole backlog.
	HotStandby bool
	// ShipStandbyWAL makes standbys tail their slot's WAL over the
	// internal transport (the path a standby on a remote host would use)
	// instead of reading the partition directly.
	ShipStandbyWAL bool
	// StandbyLagRecords is the catch-up gate for planned handoffs: a
	// PromoteStandby waits until the standby's replay position is within
	// this many records of the partition head before flipping ownership
	// (default 64).
	StandbyLagRecords int
	// TierWarmAfterMillis / TierColdAfterMillis age chunks through the
	// hot → warm → cold retention tiers, measured as the lag of a chunk's
	// max time behind the newest registered data. Cold chunks are merged
	// by the compactor into downsampled chunks (one row per pre-aggregate
	// bucket) and their raw files retired. Both zero (the default)
	// disables tiering.
	TierWarmAfterMillis int64
	TierColdAfterMillis int64
	// CompactIntervalMillis runs compaction on a background cadence
	// (0 = manual; call Compact).
	CompactIntervalMillis int64
	// CompactMinInputs is the minimum cold chunks per (server, day) group
	// worth merging (default 2).
	CompactMinInputs int
	// Seed makes placement and sampling deterministic.
	Seed int64
}

// DB is an embedded Waterwheel instance.
type DB struct {
	c      *cluster.Cluster
	closed bool
}

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("waterwheel: closed")

// Open starts an embedded Waterwheel deployment.
func Open(opts Options) (*DB, error) {
	cfg := cluster.Config{
		Nodes:                 opts.Nodes,
		IndexServersPerNode:   opts.IndexServersPerNode,
		QueryServersPerNode:   opts.QueryServersPerNode,
		DispatchersPerNode:    opts.DispatchersPerNode,
		ChunkBytes:            opts.ChunkBytes,
		CacheBytes:            opts.CacheBytes,
		LateDeltaMillis:       opts.LateDeltaMillis,
		Policy:                opts.Policy,
		QueryWorkers:          opts.QueryWorkers,
		QueryInflightReads:    opts.QueryInflightReads,
		DisableAdaptive:       opts.DisableAdaptivePartitioning,
		BalanceIntervalMillis: opts.BalanceIntervalMillis,
		DisableBloom:          opts.DisableBloom,
		SyncIngest:            opts.SyncIngest,
		FlushQueueDepth:       opts.FlushQueueDepth,
		SyncFlush:             opts.SyncFlush,
		DataDir:               opts.DataDir,
		Durability:            opts.Durability,
		FsyncIntervalMillis:   opts.FsyncIntervalMillis,
		HotStandby:            opts.HotStandby,
		ShipStandbyWAL:        opts.ShipStandbyWAL,
		StandbyLagRecords:     opts.StandbyLagRecords,
		TierWarmAfterMillis:   opts.TierWarmAfterMillis,
		TierColdAfterMillis:   opts.TierColdAfterMillis,
		CompactIntervalMillis: opts.CompactIntervalMillis,
		CompactMinInputs:      opts.CompactMinInputs,
		Seed:                  opts.Seed,
		TraceCapacity:         opts.TraceCapacity,
	}
	if !opts.DisableTelemetry {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	if opts.SimulateIO {
		cfg.DFSLatency = dfs.DefaultLatency()
	}
	if opts.EnableSecondaryIndex {
		cfg.Bloom.Secondary = &chunk.SecondarySpec{Offset: opts.SecondaryIndexOffset}
	}
	cfg.Bloom.AggField = opts.AggregateField
	cfg.Bloom.DisableAgg = opts.DisableAggregates
	cfg.Bloom.Format = opts.ChunkFormat
	c, err := cluster.Open(cfg)
	if err != nil {
		return nil, err
	}
	c.Start()
	return &DB{c: c}, nil
}

// Checkpoint persists metadata and syncs the WAL when the store was
// opened with a DataDir; otherwise it is a no-op.
func (db *DB) Checkpoint() error { return db.c.Checkpoint() }

// Insert ingests one tuple. Safe for concurrent use. With the default WAL
// pipeline the tuple becomes visible to queries within a consumption
// round-trip; call Drain for a strict insert→query barrier. A nil return
// is the ack — under Durability "ack-on-fsync" it means the tuple is on
// stable storage; an error means the tuple was NOT accepted (e.g. the WAL
// segment hit a disk error) and should be resubmitted after the fault is
// resolved.
func (db *DB) Insert(t Tuple) error {
	return db.c.Insert(t)
}

// BatchError reports a partially-rejected batch: ts[:Index] were acked,
// ts[Index:] were not. Unwrap yields the underlying cause.
type BatchError struct {
	// Index is the position of the first unacked tuple.
	Index int
	// Len is the size of the submitted batch.
	Len int
	// Err is the failure that stopped the batch.
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("waterwheel: insert %d/%d rejected: %v", e.Index, e.Len, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// InsertBatch ingests a batch of tuples as one unit through the whole
// pipeline: one routing pass in the dispatcher, one WAL append (and one
// fsync cohort under Durability "ack-on-fsync") per contiguous
// same-server run, and batched memtable merges on the indexing servers.
// On failure it returns a *BatchError with exact prefix-ack semantics:
// tuples before the error's Index were acked, the rest were not. A batch
// of one behaves identically to Insert.
func (db *DB) InsertBatch(ts []Tuple) error {
	n, err := db.c.InsertBatch(ts)
	if err != nil {
		return &BatchError{Index: n, Len: len(ts), Err: err}
	}
	return nil
}

// Query runs a temporal range query and returns the merged, sorted result.
func (db *DB) Query(q Query) (*Result, error) {
	if db.closed {
		return nil, ErrClosed
	}
	return db.c.Query(q)
}

// QueryRange is shorthand for Query with no predicate.
func (db *DB) QueryRange(keys KeyRange, times TimeRange) (*Result, error) {
	return db.Query(Query{Keys: keys, Times: times})
}

// Aggregate runs an aggregate query (COUNT/MIN/MAX/SUM over a key range ×
// time range), answering as much as possible from chunk metadata and
// header pre-aggregates instead of reading leaf bodies. The result's
// counters report how much of the work pushdown saved.
func (db *DB) Aggregate(q AggregateQuery) (*AggResult, error) {
	if db.closed {
		return nil, ErrClosed
	}
	return db.c.Aggregate(q)
}

// Drain blocks until all accepted tuples are visible to queries.
func (db *DB) Drain() { db.c.Drain() }

// Flush forces every indexing server to flush its memtables to chunks.
func (db *DB) Flush() { db.c.FlushAll() }

// Rebalance runs one adaptive-key-partitioning round, returning whether
// the key partitioning changed.
func (db *DB) Rebalance() bool { return db.c.TickBalance() }

// Stats summarizes the deployment's activity. Every field is read from
// always-on atomic counters, so the snapshot is race-safe whether or not
// telemetry is enabled.
type Stats struct {
	// Ingested counts tuples accepted by the indexing servers.
	Ingested int64
	// Buffered counts tuples in memtables (not yet flushed).
	Buffered int
	// BufferedBytes is the memtable footprint (tree + side store).
	BufferedBytes int64
	// Chunks counts flushed, registered data chunks.
	Chunks int
	// Flushes counts memtable flushes; FlushBytes the chunk bytes written.
	Flushes    int64
	FlushBytes int64
	// SideRouted counts very-late tuples admitted to side stores.
	SideRouted int64
	// TemplateUpdates counts adaptive template rebuilds.
	TemplateUpdates int64
	// Dispatched counts tuples routed by dispatchers.
	Dispatched int64
	// SchemaVersion is the key-partitioning version (increases on
	// rebalance).
	SchemaVersion int64
	// DFSReads/DFSReadBytes/DFSWrites/DFSWriteBytes count chunk I/O.
	DFSReads      int64
	DFSReadBytes  int64
	DFSWrites     int64
	DFSWriteBytes int64
	// CacheHits/CacheMisses/CacheEvictions aggregate the query-server LRU
	// caches; CacheUsedBytes is their current footprint.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	CacheUsedBytes int64
}

// Stats returns a snapshot of deployment counters.
func (db *DB) Stats() Stats {
	st := Stats{
		Ingested:      db.c.Ingested(),
		Buffered:      db.c.MemLen(),
		Chunks:        db.c.Metadata().ChunkCount(),
		SchemaVersion: db.c.Metadata().Schema().Version,
	}
	for _, srv := range db.c.IndexServers() {
		if srv == nil { // retired slot
			continue
		}
		st.BufferedBytes += srv.MemBytes()
		st.Flushes += srv.Stats().Flushes.Load()
		st.FlushBytes += srv.Stats().FlushBytes.Load()
		st.SideRouted += srv.Stats().SideRouted.Load()
		st.TemplateUpdates += srv.TreeStats().TemplateUpdates.Load()
	}
	for _, d := range db.c.Dispatchers() {
		st.Dispatched += int64(d.Dispatched())
	}
	fm := db.c.FS().Metrics()
	st.DFSReads = fm.Reads.Load()
	st.DFSReadBytes = fm.BytesRead.Load()
	st.DFSWrites = fm.Writes.Load()
	st.DFSWriteBytes = fm.BytesWrite.Load()
	for _, qs := range db.c.QueryServers() {
		cm := qs.CacheMetrics()
		st.CacheHits += cm.Hits
		st.CacheMisses += cm.Misses
		st.CacheEvictions += cm.Evictions
		st.CacheUsedBytes += cm.Used
	}
	return st
}

// QueryTrace is a query's span tree — decomposition, dispatch, per-chunk
// reads with cache/bloom detail, and merge — Waterwheel's EXPLAIN ANALYZE.
type QueryTrace = telemetry.QueryTrace

// QueryTraced runs a query and returns its execution trace alongside the
// result. Works even when telemetry is disabled.
func (db *DB) QueryTraced(q Query) (*Result, *QueryTrace, error) {
	if db.closed {
		return nil, nil, ErrClosed
	}
	return db.c.Coordinator().ExecuteTraced(q)
}

// Telemetry returns the deployment's metric registry, or nil when opened
// with DisableTelemetry.
func (db *DB) Telemetry() *telemetry.Registry { return db.c.Telemetry() }

// Traces returns the ring of recently retained query traces (nil when
// telemetry is disabled).
func (db *DB) Traces() []*QueryTrace { return db.c.TraceRing().Recent() }

// DropBefore removes all chunks that end before the horizon (retention),
// returning how many were dropped, and releases the WAL records already
// covered by flushed chunks. Chunk files are deleted only after queries
// planned before the drop have drained; WAL truncation is floored at any
// hot standby's replay position so a planned handoff never loses acked
// records.
func (db *DB) DropBefore(horizon Timestamp) int {
	n := db.c.DropChunksBefore(horizon)
	db.c.TruncateWALBefore()
	return n
}

// Compact runs one tiering round: chunks aging past the configured
// warm/cold thresholds are demoted, and groups of cold chunks are merged
// into downsampled chunks (their raw files retired drain-safely). No-op
// unless Options tiering knobs are set. Returns (chunks demoted, merges
// completed).
func (db *DB) Compact() (demoted, merged int) { return db.c.TickCompact() }

// TierCounts reports registered chunks per retention tier
// [hot, warm, cold].
func (db *DB) TierCounts() [3]int { return db.c.Metadata().TierCounts() }

// ExplainInfo describes how a query would decompose, for tooling.
type ExplainInfo = queryexec.ExplainInfo

// Explain decomposes a query without executing it: which indexing-server
// memtables and which chunks it would touch, with the clipped regions.
func (db *DB) Explain(q Query) ExplainInfo {
	return db.c.Coordinator().Explain(q)
}

// --- Elastic scale-out (live region migration) ---

// AddIndexServer grows the cluster by one indexing server: the widest
// active key interval is split, a new WAL partition is allocated, and the
// dispatchers start routing the upper half to the new slot — without
// pausing ingest. Returns the new slot id.
func (db *DB) AddIndexServer() (int, error) {
	if db.closed {
		return 0, ErrClosed
	}
	return db.c.AddIndexServer()
}

// DecommissionIndexServer retires slot i: its WAL partition is sealed,
// buffered tuples are flushed out, its key interval merges into a
// neighbor, and the slot is fenced so a straggling flush from the retired
// server can never resurface.
func (db *DB) DecommissionIndexServer(i int) error {
	if db.closed {
		return ErrClosed
	}
	return db.c.DecommissionIndexServer(i)
}

// StartStandby attaches a hot standby to slot i: a passive shadow server
// that tails the slot's WAL partition (over the shipping transport when
// ShipStandbyWAL is set) and builds a shadow memtable, ready for
// PromoteStandby or a takeover after KillIndexServer. A no-op error-free
// call when the slot already has one.
func (db *DB) StartStandby(i int) error {
	if db.closed {
		return ErrClosed
	}
	return db.c.StartStandby(i)
}

// PromoteStandby performs a planned handoff of slot i: once the standby
// has caught up to within StandbyLagRecords of the partition head,
// ownership flips in one metadata CAS — new owner, bumped fencing epoch,
// WAL handoff offset — and the deposed owner is fenced out.
func (db *DB) PromoteStandby(i int) error {
	if db.closed {
		return ErrClosed
	}
	return db.c.PromoteStandby(i)
}

// KillIndexServer hard-fails slot i's owner (crash simulation / fault
// drill): the owner detaches mid-whatever and the slot's standby — or a
// cold replacement when none is attached — takes over via WAL replay
// under a bumped fencing epoch.
func (db *DB) KillIndexServer(i int) error {
	if db.closed {
		return ErrClosed
	}
	return db.c.KillIndexServer(i)
}

// ActiveSlots returns the ids of the currently active indexing slots.
func (db *DB) ActiveSlots() []int { return db.c.ActiveSlots() }

// StandbyLag returns how many WAL records slot i's standby is behind the
// partition head, or -1 when the slot has no standby.
func (db *DB) StandbyLag(i int) int64 { return db.c.StandbyLag(i) }

// Cluster exposes the underlying cluster for advanced integrations and
// the benchmark harness.
func (db *DB) Cluster() *cluster.Cluster { return db.c }

// Close stops the deployment. Buffered tuples are flushed first.
func (db *DB) Close() error {
	if db.closed {
		return nil
	}
	db.closed = true
	db.c.Drain()
	db.c.FlushAll()
	db.c.Stop()
	return nil
}
