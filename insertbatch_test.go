package waterwheel

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"waterwheel/internal/model"
	"waterwheel/internal/wal"
)

// batchStream builds a dup-heavy, time-disordered stream whose payloads
// carry the arrival sequence number, so result comparisons can tell apart
// tuples with equal key and time.
func batchStream(rng *rand.Rand, n int) []Tuple {
	ts := make([]Tuple, n)
	for i := range ts {
		p := make([]byte, 8)
		binary.BigEndian.PutUint64(p, uint64(i))
		// Keys spread over the full domain (so multi-server schemas split
		// them) but drawn from few distinct values per round.
		ts[i] = Tuple{
			Key:     Key(uint64(rng.Intn(64)) << 58),
			Time:    Timestamp(1000 + rng.Intn(5000)),
			Payload: p,
		}
	}
	return ts
}

func sortResult(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Key != ts[j].Key {
			return ts[i].Key < ts[j].Key
		}
		if ts[i].Time != ts[j].Time {
			return ts[i].Time < ts[j].Time
		}
		return binary.BigEndian.Uint64(ts[i].Payload) < binary.BigEndian.Uint64(ts[j].Payload)
	})
}

// TestInsertBatchSerialEquivalenceDB feeds the same stream into two
// deployments — one tuple at a time vs InsertBatch with random batch
// sizes — and requires identical query and aggregate results. Runs over
// both ingest modes: the default WAL pipeline (batched appends + batched
// consume) and SyncIngest (direct tree inserts).
func TestInsertBatchSerialEquivalenceDB(t *testing.T) {
	for _, mode := range []struct {
		name string
		sync bool
	}{{"wal", false}, {"sync-ingest", true}} {
		t.Run(mode.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			for round := 0; round < 3; round++ {
				opts := Options{
					SyncIngest:          mode.sync,
					IndexServersPerNode: 2,
					ChunkBytes:          8 << 10, // several flushes per round
				}
				serial := openTestDB(t, opts)
				batched := openTestDB(t, opts)
				stream := batchStream(rng, 2000+rng.Intn(2000))
				for _, tp := range stream {
					if err := serial.Insert(tp); err != nil {
						t.Fatal(err)
					}
				}
				for pos := 0; pos < len(stream); {
					sz := 1 + rng.Intn(256)
					if pos+sz > len(stream) {
						sz = len(stream) - pos
					}
					if err := batched.InsertBatch(stream[pos : pos+sz]); err != nil {
						t.Fatal(err)
					}
					pos += sz
				}
				serial.Drain()
				batched.Drain()

				queries := []Query{
					{Keys: FullKeyRange(), Times: FullTimeRange()},
					{Keys: KeyRange{Lo: 0, Hi: 20 << 58}, Times: FullTimeRange()},
					{Keys: FullKeyRange(), Times: TimeRange{Lo: 2000, Hi: 4000}},
				}
				for qi, q := range queries {
					want, err := serial.Query(q)
					if err != nil {
						t.Fatal(err)
					}
					got, err := batched.Query(q)
					if err != nil {
						t.Fatal(err)
					}
					sortResult(want.Tuples)
					sortResult(got.Tuples)
					if len(got.Tuples) != len(want.Tuples) {
						t.Fatalf("round %d query %d: batched %d tuples, serial %d",
							round, qi, len(got.Tuples), len(want.Tuples))
					}
					for i := range got.Tuples {
						g, w := got.Tuples[i], want.Tuples[i]
						if g.Key != w.Key || g.Time != w.Time ||
							binary.BigEndian.Uint64(g.Payload) != binary.BigEndian.Uint64(w.Payload) {
							t.Fatalf("round %d query %d position %d: batched %v, serial %v", round, qi, i, g, w)
						}
					}
					ag, err := batched.Aggregate(AggregateQuery{Keys: q.Keys, Times: q.Times, Kind: model.AggSum})
					if err != nil {
						t.Fatal(err)
					}
					aw, err := serial.Aggregate(AggregateQuery{Keys: q.Keys, Times: q.Times, Kind: model.AggSum})
					if err != nil {
						t.Fatal(err)
					}
					if ag.Count != aw.Count || ag.Sum != aw.Sum {
						t.Fatalf("round %d query %d: aggregate %+v vs %+v", round, qi, ag, aw)
					}
				}
			}
		})
	}
}

// TestInsertBatchPrefixAckOnWALFault arms a one-shot append fault on one
// index server's WAL partition and submits a batch that routes tuples to
// both servers. The returned BatchError must report the exact prefix that
// reached intact partitions — never a tuple on the faulted one — and the
// error string keeps the wire-visible `insert %d/%d rejected` shape.
func TestInsertBatchPrefixAckOnWALFault(t *testing.T) {
	db := openTestDB(t, Options{IndexServersPerNode: 2})
	schema := db.c.Metadata().Schema()
	// Keys below the separator land on server 0, above on server 1.
	low := Key(1 << 10)
	high := Key(1<<63 + 1<<10)
	if schema.ServerFor(low) != 0 || schema.ServerFor(high) != 1 {
		t.Fatalf("even schema routing changed: %d/%d", schema.ServerFor(low), schema.ServerFor(high))
	}
	batch := []Tuple{
		{Key: low, Time: 1000},
		{Key: low + 1, Time: 1001},
		{Key: low + 2, Time: 1002},
		{Key: high, Time: 1003},
		{Key: high + 1, Time: 1004},
	}
	db.c.WAL().Partition(1).FailNextAppends(1)
	err := db.InsertBatch(batch)
	if err == nil {
		t.Fatal("batch across a faulted partition fully acked")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *BatchError", err)
	}
	if be.Index != 3 || be.Len != 5 {
		t.Fatalf("prefix = %d/%d, want 3/5", be.Index, be.Len)
	}
	if !errors.Is(err, wal.ErrInjectedAppend) {
		t.Fatalf("cause not surfaced: %v", err)
	}
	if !strings.Contains(err.Error(), "waterwheel: insert 3/5 rejected:") {
		t.Fatalf("error shape changed: %q", err.Error())
	}
	// The acked prefix is durable and queryable; the rejected tail is not.
	db.Drain()
	res, qerr := db.QueryRange(FullKeyRange(), FullTimeRange())
	if qerr != nil {
		t.Fatal(qerr)
	}
	if len(res.Tuples) != 3 {
		t.Fatalf("queryable tuples = %d, want the acked prefix 3", len(res.Tuples))
	}
	// The partition recovers: resubmitting the tail succeeds.
	if err := db.InsertBatch(batch[be.Index:]); err != nil {
		t.Fatal(err)
	}
	db.Drain()
	if res, _ := db.QueryRange(FullKeyRange(), FullTimeRange()); len(res.Tuples) != 5 {
		t.Fatalf("after resubmit: %d tuples, want 5", len(res.Tuples))
	}
}

// TestInsertBatchFsyncCohorts asserts the durability amortization the
// batch pipeline promises: under ack-on-fsync, a batch costs one fsync
// cohort — not one fsync per tuple.
func TestInsertBatchFsyncCohorts(t *testing.T) {
	db := openTestDB(t, Options{
		DataDir:    t.TempDir(),
		Durability: "ack-on-fsync",
		// One index server = one WAL partition: the whole batch is a single
		// contiguous run, so the cohort accounting below is exact.
		IndexServersPerNode: 1,
	})
	rng := rand.New(rand.NewSource(23))
	const batches, perBatch = 10, 100
	for b := 0; b < batches; b++ {
		if err := db.InsertBatch(batchStream(rng, perBatch)); err != nil {
			t.Fatal(err)
		}
	}
	counters := map[string]float64{}
	for _, m := range db.c.Telemetry().Snapshot() {
		counters[m.Name] = m.Value
	}
	fsyncs, ok := counters["waterwheel_wal_fsyncs_total"]
	if !ok {
		t.Fatal("wal fsync counter not registered")
	}
	// One cohort per batch, plus slack for committer passes straddling a
	// batch; far below one fsync per tuple.
	if fsyncs > batches*2 {
		t.Fatalf("%.0f fsyncs for %d batches of %d: cohorts not amortized", fsyncs, batches, perBatch)
	}
	if got := counters["waterwheel_insert_batches_total"]; got != batches {
		t.Fatalf("insert_batches_total = %.0f, want %d", got, batches)
	}
}
