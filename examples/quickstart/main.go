// Quickstart: open an embedded Waterwheel, ingest a small stream, and run
// temporal range queries over fresh and flushed data.
package main

import (
	"fmt"
	"log"

	"waterwheel"
)

func main() {
	db, err := waterwheel.Open(waterwheel.Options{
		ChunkBytes: 1 << 20, // small chunks so the demo flushes
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Ingest 100k sensor readings: key = sensor id, payload = reading.
	const sensors = 1000
	for i := 0; i < 100_000; i++ {
		db.Insert(waterwheel.Tuple{
			Key:     waterwheel.Key(i % sensors),
			Time:    waterwheel.Timestamp(i / 100), // ~100 readings/ms
			Payload: []byte(fmt.Sprintf("reading-%d", i)),
		})
	}
	db.Drain() // barrier: everything accepted is now queryable

	// Key + time range query: sensors 100-199 in the window [500, 600] ms.
	res, err := db.QueryRange(
		waterwheel.KeyRange{Lo: 100, Hi: 199},
		waterwheel.TimeRange{Lo: 500, Hi: 600},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range query: %d tuples via %d subqueries (%d leaves read, %d pruned)\n",
		len(res.Tuples), res.SubQueries, res.LeavesRead, res.LeavesSkipped)

	// Add a predicate: only sensor ids divisible by 10.
	res, err = db.Query(waterwheel.Query{
		Keys:   waterwheel.KeyRange{Lo: 100, Hi: 199},
		Times:  waterwheel.TimeRange{Lo: 500, Hi: 600},
		Filter: waterwheel.KeyMod(10, 0),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filtered query: %d tuples\n", len(res.Tuples))

	// Force a flush and show the same query served from chunks.
	db.Flush()
	res, err = db.QueryRange(
		waterwheel.KeyRange{Lo: 100, Hi: 199},
		waterwheel.TimeRange{Lo: 500, Hi: 600},
	)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("after flush: %d tuples from %d chunks (%d bytes read)\n",
		len(res.Tuples), st.Chunks, res.BytesRead)
}
