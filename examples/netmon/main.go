// Netmon reproduces the paper's motivating application (Fig. 1): a
// telecom backbone streams packet samples into the store, and an analyst
// asks "retrieve all packets from within 10.68.73.* in the last 5
// minutes" to chase an incident — a key range (the subnet) combined with
// a temporal range (the recent window).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"waterwheel"
)

// ipKey spreads an IPv4 address over the key domain (high 32 bits).
func ipKey(a, b, c, d byte) waterwheel.Key {
	ip := uint64(a)<<24 | uint64(b)<<16 | uint64(c)<<8 | uint64(d)
	return waterwheel.Key(ip << 32)
}

// subnetRange returns the key range of a /24.
func subnetRange(a, b, c byte) waterwheel.KeyRange {
	return waterwheel.KeyRange{Lo: ipKey(a, b, c, 0), Hi: ipKey(a, b, c, 255)}
}

func main() {
	db, err := waterwheel.Open(waterwheel.Options{ChunkBytes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(1))
	now := waterwheel.Timestamp(0)

	// 30 minutes of packet samples at a few hundred per second of event
	// time. Background traffic is uniform; an "attack" from 10.68.73.*
	// ramps up in the last five minutes.
	const msPerMin = 60_000
	for t := waterwheel.Timestamp(0); t < 30*msPerMin; t += 5 {
		now = t
		var key waterwheel.Key
		inAttack := t >= 25*msPerMin && rng.Float64() < 0.4
		if inAttack {
			key = ipKey(10, 68, 73, byte(rng.Intn(256)))
		} else {
			key = waterwheel.Key(rng.Uint64())
		}
		payload := []byte{byte(rng.Intn(2))} // 0 = SYN, 1 = data
		db.Insert(waterwheel.Tuple{Key: key, Time: t, Payload: payload})
	}
	db.Drain()

	// The analyst's query: all packets from 10.68.73.* in the last 5 min.
	recent := waterwheel.TimeRange{Lo: now - 5*msPerMin, Hi: now}
	res, err := db.Query(waterwheel.Query{Keys: subnetRange(10, 68, 73), Times: recent})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10.68.73.* in last 5 min: %d packets (%d subqueries)\n",
		len(res.Tuples), res.SubQueries)

	// Compare against the 5 minutes before: the spike stands out.
	before := waterwheel.TimeRange{Lo: now - 10*msPerMin, Hi: now - 5*msPerMin}
	prev, err := db.Query(waterwheel.Query{Keys: subnetRange(10, 68, 73), Times: before})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same subnet, previous 5 min: %d packets\n", len(prev.Tuples))
	if len(prev.Tuples) > 0 {
		fmt.Printf("traffic ratio: %.1fx — anomaly detected\n",
			float64(len(res.Tuples))/float64(len(prev.Tuples)))
	}

	// Drill down with a predicate: SYN packets only (payload byte 0 == 0).
	syn, err := db.Query(waterwheel.Query{
		Keys:   subnetRange(10, 68, 73),
		Times:  recent,
		Filter: waterwheel.PayloadBytes(0, waterwheel.EQ, []byte{0}),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("of which SYN packets: %d\n", len(syn.Tuples))
}
