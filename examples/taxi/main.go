// Taxi demonstrates the paper's T-Drive workload end to end: GPS samples
// are z-ordered into the key domain, and a geographic rectangle query
// ("which taxis were in this district during that interval?") becomes a
// handful of key-range queries.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"waterwheel"
)

func main() {
	db, err := waterwheel.Open(waterwheel.Options{ChunkBytes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Beijing bounding box at 2^14 cells per axis (~100 m resolution).
	grid := waterwheel.NewGeoGrid(115.8, 117.1, 39.6, 40.4, 14)

	// 500 taxis random-walk for an hour of event time, reporting every
	// few seconds.
	const taxis = 500
	rng := rand.New(rand.NewSource(7))
	lons := make([]float64, taxis)
	lats := make([]float64, taxis)
	for i := range lons {
		lons[i] = 116.3 + rng.Float64()*0.2
		lats[i] = 39.85 + rng.Float64()*0.1
	}
	var now waterwheel.Timestamp
	for t := waterwheel.Timestamp(0); t < 3_600_000; t += 2000 {
		now = t
		for i := 0; i < taxis; i++ {
			lons[i] += rng.NormFloat64() * 0.0004
			lats[i] += rng.NormFloat64() * 0.0004
			payload := make([]byte, 4)
			payload[0], payload[1] = byte(i>>8), byte(i)
			db.Insert(waterwheel.Tuple{
				Key:     grid.Key(lons[i], lats[i]),
				Time:    t,
				Payload: payload,
			})
		}
	}
	db.Drain()

	// "Which taxis appeared in this 2km x 2km district in the last 10
	// minutes?" — a geo rectangle × temporal range query.
	res, err := db.QueryGeoRect(grid,
		116.38, 39.89, 116.42, 39.92,
		waterwheel.TimeRange{Lo: now - 600_000, Hi: now}, nil)
	if err != nil {
		log.Fatal(err)
	}
	distinct := map[uint16]bool{}
	for i := range res.Tuples {
		p := res.Tuples[i].Payload
		distinct[uint16(p[0])<<8|uint16(p[1])] = true
	}
	fmt.Printf("district query: %d position reports from %d distinct taxis\n",
		len(res.Tuples), len(distinct))

	// The same district an hour window earlier in history.
	res, err = db.QueryGeoRect(grid,
		116.38, 39.89, 116.42, 39.92,
		waterwheel.TimeRange{Lo: 0, Hi: 600_000}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same district, first 10 min: %d reports\n", len(res.Tuples))
	st := db.Stats()
	fmt.Printf("store: %d tuples ingested, %d chunks flushed\n", st.Ingested, st.Chunks)
}
