// IoT demonstrates the paper's predictive-maintenance use case: vibration
// sensors on factory equipment stream readings; the analytics engine
// "identifies sensors with readings in particular ranges" — a key range
// (machine group) plus a payload predicate (reading threshold) over a
// time window.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"

	"waterwheel"
)

func main() {
	db, err := waterwheel.Open(waterwheel.Options{ChunkBytes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// 2000 sensors across 20 machine groups; key = group<<32 | sensor.
	const (
		groups  = 20
		perGrp  = 100
		msPerHr = 3_600_000
	)
	key := func(group, sensor int) waterwheel.Key {
		return waterwheel.Key(uint64(group)<<32 | uint64(sensor))
	}
	rng := rand.New(rand.NewSource(3))
	var now waterwheel.Timestamp
	for t := waterwheel.Timestamp(0); t < msPerHr; t += 1000 {
		now = t
		for g := 0; g < groups; g++ {
			for s := 0; s < perGrp; s++ {
				// Baseline vibration ~100 units; group 7 degrades over time.
				v := 100 + rng.NormFloat64()*10
				if g == 7 {
					v += float64(t) / msPerHr * 80
				}
				payload := make([]byte, 8)
				binary.BigEndian.PutUint64(payload, uint64(math.Round(v)))
				db.Insert(waterwheel.Tuple{Key: key(g, s), Time: t, Payload: payload})
			}
		}
	}
	db.Drain()

	// Which sensors in any group exceeded 150 units in the last 10 min?
	hot, err := db.Query(waterwheel.Query{
		Keys:   waterwheel.FullKeyRange(),
		Times:  waterwheel.TimeRange{Lo: now - 600_000, Hi: now},
		Filter: waterwheel.PayloadU64(0, waterwheel.GT, 150),
	})
	if err != nil {
		log.Fatal(err)
	}
	byGroup := map[uint64]int{}
	for i := range hot.Tuples {
		byGroup[uint64(hot.Tuples[i].Key)>>32]++
	}
	fmt.Printf("readings > 150 in last 10 min: %d, by group: %v\n", len(hot.Tuples), byGroup)

	// Drill into the suspicious group's full history.
	g7 := waterwheel.KeyRange{Lo: key(7, 0), Hi: key(7, perGrp-1)}
	hist, err := db.Query(waterwheel.Query{
		Keys:   g7,
		Times:  waterwheel.FullTimeRange(),
		Filter: waterwheel.PayloadU64(0, waterwheel.GT, 150),
	})
	if err != nil {
		log.Fatal(err)
	}
	var first waterwheel.Timestamp = -1
	if len(hist.Tuples) > 0 {
		first = hist.Tuples[0].Time
		for i := range hist.Tuples {
			if hist.Tuples[i].Time < first {
				first = hist.Tuples[i].Time
			}
		}
	}
	fmt.Printf("group 7 exceedances over the hour: %d (first at t=%d ms)\n",
		len(hist.Tuples), first)
	fmt.Printf("conclusion: group 7 vibration trending up -> schedule maintenance\n")
}
