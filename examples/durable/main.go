// Durable demonstrates the persistence layer: a store opened over a data
// directory, killed mid-stream, and reopened — flushed chunks come back
// from the chunk store, the unflushed tail replays from the WAL, and the
// partitioning schema survives (paper §V, with on-disk substrates standing
// in for HDFS/Kafka/ZooKeeper).
package main

import (
	"fmt"
	"log"
	"os"

	"waterwheel"
)

func main() {
	dir, err := os.MkdirTemp("", "waterwheel-durable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// First incarnation: ingest, flush some chunks, "crash" without a
	// clean close of the memtables (Close flushes, so to demonstrate WAL
	// replay we only checkpoint metadata and stop).
	db, err := waterwheel.Open(waterwheel.Options{DataDir: dir, ChunkBytes: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		db.Insert(waterwheel.Tuple{
			Key:     waterwheel.Key(uint64(i%1000) << 50),
			Time:    waterwheel.Timestamp(i),
			Payload: []byte{byte(i)},
		})
	}
	db.Drain()
	st := db.Stats()
	fmt.Printf("first run: ingested=%d chunks=%d buffered=%d\n", st.Ingested, st.Chunks, st.Buffered)
	if err := db.Close(); err != nil { // flushes + checkpoints
		log.Fatal(err)
	}

	// Second incarnation: everything is back.
	db2, err := waterwheel.Open(waterwheel.Options{DataDir: dir, ChunkBytes: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	db2.Drain()
	res, err := db2.QueryRange(waterwheel.FullKeyRange(), waterwheel.FullTimeRange())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after restart: %d/50000 tuples visible, %d chunks on disk\n",
		len(res.Tuples), db2.Stats().Chunks)

	// Retention: drop the first half of history.
	dropped := db2.DropBefore(25_000)
	res, _ = db2.QueryRange(waterwheel.FullKeyRange(), waterwheel.FullTimeRange())
	fmt.Printf("after retention (t<25000): dropped %d chunks, %d tuples remain\n",
		dropped, len(res.Tuples))
}
