package waterwheel

import (
	"testing"
)

func TestQueryLimit(t *testing.T) {
	db := openTestDB(t, Options{ChunkBytes: 4 << 10})
	for i := 0; i < 1000; i++ {
		db.Insert(Tuple{Key: Key(uint64(i) << 50), Time: Timestamp(i)})
	}
	db.Drain()

	res, err := db.Query(Query{Keys: FullKeyRange(), Times: FullTimeRange(), Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 10 {
		t.Fatalf("limit 10 returned %d", len(res.Tuples))
	}
	// The returned tuples are the lowest-keyed matches.
	for i, tp := range res.Tuples {
		if tp.Key != Key(uint64(i)<<50) {
			t.Fatalf("tuple %d has key %d, want %d", i, tp.Key, uint64(i)<<50)
		}
	}
	// Limit larger than the result set returns everything.
	res, err = db.Query(Query{Keys: FullKeyRange(), Times: FullTimeRange(), Limit: 5000})
	if err != nil || len(res.Tuples) != 1000 {
		t.Fatalf("big limit: %d, %v", len(res.Tuples), err)
	}
	// Zero means unlimited.
	res, _ = db.Query(Query{Keys: FullKeyRange(), Times: FullTimeRange()})
	if len(res.Tuples) != 1000 {
		t.Fatalf("no limit: %d", len(res.Tuples))
	}
}

func TestQueryLimitSpansChunksAndMem(t *testing.T) {
	db := openTestDB(t, Options{ChunkBytes: 1 << 30})
	// Historical chunk holds high keys; memtable holds low keys: the limit
	// must pick the memtable's low keys even though the chunk subquery also
	// returns matches.
	for i := 500; i < 1000; i++ {
		db.Insert(Tuple{Key: Key(uint64(i) << 50), Time: Timestamp(i)})
	}
	db.Drain()
	db.Flush()
	for i := 0; i < 500; i++ {
		db.Insert(Tuple{Key: Key(uint64(i) << 50), Time: Timestamp(1000 + i)})
	}
	db.Drain()
	res, err := db.Query(Query{Keys: FullKeyRange(), Times: FullTimeRange(), Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 5 {
		t.Fatalf("got %d", len(res.Tuples))
	}
	for i, tp := range res.Tuples {
		if tp.Key != Key(uint64(i)<<50) {
			t.Fatalf("tuple %d: key %d, want lowest keys first", i, tp.Key)
		}
	}
}

func TestExplain(t *testing.T) {
	db := openTestDB(t, Options{ChunkBytes: 4 << 10})
	for i := 0; i < 2000; i++ {
		db.Insert(Tuple{Key: Key(uint64(i) << 50), Time: Timestamp(i)})
	}
	db.Drain()
	if db.Stats().Chunks == 0 {
		t.Fatal("need chunks for this test")
	}
	info := db.Explain(Query{Keys: FullKeyRange(), Times: FullTimeRange()})
	if len(info.ChunkSubQueries) == 0 {
		t.Fatal("no chunk subqueries in explain")
	}
	if len(info.Chunks) != len(info.ChunkSubQueries) {
		t.Fatalf("chunks %d != subqueries %d", len(info.Chunks), len(info.ChunkSubQueries))
	}
	if len(info.MemSubQueries) == 0 {
		t.Fatal("no memtable subqueries despite unflushed tail")
	}
	// A time window before all data decomposes to nothing... the memtable
	// live region may still be included via the Δt widening, so check the
	// chunk side only.
	narrow := db.Explain(Query{Keys: FullKeyRange(), Times: TimeRange{Lo: -5000, Hi: -4000}})
	if len(narrow.ChunkSubQueries) != 0 {
		t.Fatalf("pre-history window hit %d chunks", len(narrow.ChunkSubQueries))
	}
	// Explain must not execute anything: stats unchanged afterwards is hard
	// to assert directly; at minimum it returns the clipped regions.
	for _, sq := range info.ChunkSubQueries {
		if !sq.Region.IsValid() {
			t.Fatalf("invalid clipped region %v", sq.Region)
		}
	}
}
