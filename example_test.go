package waterwheel_test

import (
	"fmt"
	"log"

	"waterwheel"
)

// ExampleOpen shows the minimal ingest-then-query round trip.
func ExampleOpen() {
	db, err := waterwheel.Open(waterwheel.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 10; i++ {
		db.Insert(waterwheel.Tuple{
			Key:  waterwheel.Key(i),
			Time: waterwheel.Timestamp(1000 + i),
		})
	}
	db.Drain()

	res, err := db.QueryRange(
		waterwheel.KeyRange{Lo: 3, Hi: 6},
		waterwheel.TimeRange{Lo: 0, Hi: 2000},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Tuples), "tuples")
	// Output: 4 tuples
}

// ExampleDB_Query shows a filtered, limited query.
func ExampleDB_Query() {
	db, err := waterwheel.Open(waterwheel.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 100; i++ {
		db.Insert(waterwheel.Tuple{Key: waterwheel.Key(i), Time: waterwheel.Timestamp(i)})
	}
	db.Drain()

	res, err := db.Query(waterwheel.Query{
		Keys:   waterwheel.FullKeyRange(),
		Times:  waterwheel.FullTimeRange(),
		Filter: waterwheel.KeyMod(10, 0), // keys divisible by 10
		Limit:  3,                        // lowest three of them
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range res.Tuples {
		fmt.Println(t.Key)
	}
	// Output:
	// 0
	// 10
	// 20
}

// ExampleGeoGrid shows z-ordered geo ingestion and rectangle queries.
func ExampleGeoGrid() {
	db, err := waterwheel.Open(waterwheel.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	grid := waterwheel.NewGeoGrid(0, 1, 0, 1, 10)
	db.Insert(waterwheel.Tuple{Key: grid.Key(0.25, 0.25), Time: 1})
	db.Insert(waterwheel.Tuple{Key: grid.Key(0.75, 0.75), Time: 2})
	db.Drain()

	res, err := db.QueryGeoRect(grid, 0.2, 0.2, 0.3, 0.3, waterwheel.FullTimeRange(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Tuples), "point in the rectangle")
	// Output: 1 point in the rectangle
}
