package waterwheel

import "waterwheel/internal/model"

// CmpOp is a comparison operator for filter predicates.
type CmpOp = model.CmpOp

// Comparison operators for filters.
const (
	EQ = model.CmpEQ
	NE = model.CmpNE
	LT = model.CmpLT
	LE = model.CmpLE
	GT = model.CmpGT
	GE = model.CmpGE
)

// FilterTrue accepts every tuple (also what a nil filter does).
func FilterTrue() *Filter { return model.True() }

// FilterFalse rejects every tuple.
func FilterFalse() *Filter { return model.False() }

// And combines filters conjunctively.
func And(fs ...*Filter) *Filter { return model.And(fs...) }

// Or combines filters disjunctively.
func Or(fs ...*Filter) *Filter { return model.Or(fs...) }

// Not negates a filter.
func Not(f *Filter) *Filter { return model.Not(f) }

// KeyCmp compares the tuple key against v.
func KeyCmp(op CmpOp, v Key) *Filter { return model.KeyCmp(op, v) }

// TimeCmp compares the tuple timestamp against v.
func TimeCmp(op CmpOp, v Timestamp) *Filter { return model.TimeCmp(op, v) }

// PayloadU64 compares the big-endian uint64 at the given payload offset.
func PayloadU64(offset uint32, op CmpOp, v uint64) *Filter {
	return model.PayloadU64(offset, op, v)
}

// PayloadBytes compares payload bytes at the given offset against b.
func PayloadBytes(offset uint32, op CmpOp, b []byte) *Filter {
	return model.PayloadBytes(offset, op, b)
}

// KeyMod accepts tuples whose key ≡ rem (mod modulus).
func KeyMod(modulus, rem uint64) *Filter { return model.KeyMod(modulus, rem) }
