// Command wwbench runs the experiment harness that regenerates the
// paper's tables and figures (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	wwbench -experiment fig7a            # one experiment
//	wwbench -experiment all -scale 0.2   # the whole suite, scaled down
//	wwbench -list                        # show experiment ids
//
// The chaos subcommand runs the deterministic fault-injection harness:
//
//	wwbench chaos -seeds 8 -ops 120      # seed bank, exit 1 on violations
//	wwbench chaos -seed 3 -ops 140 -trace  # replay one seed with its op trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"waterwheel/internal/bench"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		runChaos(os.Args[2:])
		return
	}
	var (
		experiment = flag.String("experiment", "all", "experiment id or \"all\"")
		scale      = flag.Float64("scale", 1.0, "workload scale factor")
		seed       = flag.Int64("seed", 42, "random seed")
		batch      = flag.Int("batch", 0, "insert batch size for insert workloads (0/1 = per-tuple)")
		verbose    = flag.Bool("v", false, "log progress")
		list       = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.IDs(), "\n"))
		return
	}
	opt := bench.Options{Scale: *scale, Seed: *seed, Batch: *batch}
	if *verbose {
		opt.Log = os.Stderr
	}
	if *experiment == "all" {
		reports, err := bench.RunAll(opt)
		for _, rep := range reports {
			fmt.Println(rep)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "wwbench:", err)
			os.Exit(1)
		}
		return
	}
	rep, err := bench.Run(*experiment, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wwbench:", err)
		os.Exit(1)
	}
	fmt.Println(rep)
}
