package main

import (
	"flag"
	"fmt"
	"os"

	"waterwheel/internal/chaos"
)

// runChaos implements the "wwbench chaos" subcommand: it drives the
// deterministic fault-injection harness (internal/chaos) from the command
// line, either over a bank of consecutive seeds (-seeds) or a single seed
// (-seed), and exits non-zero if any run ends with invariant violations.
// CI uses it as the chaos smoke step; developers use it to replay a seed a
// failing test printed.
func runChaos(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	var (
		seeds    = fs.Int("seeds", 4, "number of consecutive seeds to run, starting at -seed")
		seed     = fs.Int64("seed", 1, "first (or only) seed")
		ops      = fs.Int("ops", 80, "schedule length per run")
		nodes    = fs.Int("nodes", 3, "cluster nodes")
		trace    = fs.Bool("trace", false, "print the full op trace of every run")
		dataDir  = fs.String("datadir", "", "run disk-backed with a restart pass (empty: in-memory)")
		dur      = fs.String("durability", "", "insert ack policy with -datadir: ack-on-write, ack-on-fsync, interval")
		crash    = fs.Bool("hardcrash", false, "with -datadir: hard-crash after the schedule (discard unsynced WAL bytes), reopen, re-verify")
		elastic  = fs.Bool("elastic", false, "mix elastic topology ops (add/decommission/kill-with-standby/promote) into the schedule, with hot standbys on every slot")
		shipWAL  = fs.Bool("shipwal", false, "standbys tail their slot's WAL over the shipping transport (implies -elastic semantics for standby setup)")
		takeover = fs.Bool("takeover", false, "run the scripted takeover suite (every seeded schedule) instead of random seeds")
		tiering  = fs.Bool("tiering", false, "run with hierarchical time tiering: retention ops demote and compact before dropping")
	)
	fs.Parse(args)
	if (*crash || *dur != "") && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "wwbench chaos: -hardcrash and -durability require -datadir")
		os.Exit(1)
	}
	if *takeover {
		runTakeoverSuite(*trace)
		return
	}

	failed := false
	for s := *seed; s < *seed+int64(*seeds); s++ {
		opts := chaos.Options{Seed: s, Ops: *ops, Nodes: *nodes, Durability: *dur,
			Elastic: *elastic || *shipWAL, ShipWAL: *shipWAL, Tiering: *tiering}
		if *dataDir != "" {
			dir, err := os.MkdirTemp(*dataDir, fmt.Sprintf("chaos-seed%d-", s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "wwbench chaos:", err)
				os.Exit(1)
			}
			opts.DataDir = dir
			if *crash {
				opts.HardCrash = true
			} else {
				opts.Restart = true
			}
		}
		rep, err := chaos.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wwbench chaos: seed %d: %v\n", s, err)
			os.Exit(1)
		}
		status := "ok"
		if len(rep.Violations) > 0 {
			status = fmt.Sprintf("FAIL (%d violations)", len(rep.Violations))
			failed = true
		}
		if *crash {
			status = fmt.Sprintf("lost-acked %d (expected 0 only under ack-on-fsync): %s", rep.LostAcked, status)
		}
		fmt.Printf("seed %-4d ops %-4d inserted %-6d queries %-4d faults %d: %s\n",
			rep.Seed, *ops, rep.Inserted, rep.Queries, len(rep.FaultsSeen), status)
		if *trace || len(rep.Violations) > 0 {
			for _, line := range rep.Trace {
				fmt.Println("  ", line)
			}
		}
		for _, v := range rep.Violations {
			fmt.Println("  violation:", v)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runTakeoverSuite drives every scripted takeover schedule — the seeded
// elastic chaos scenarios the test suite runs — printing each schedule's
// handoff metrics and exiting non-zero on any invariant violation.
func runTakeoverSuite(trace bool) {
	failed := false
	for _, s := range chaos.TakeoverSchedules {
		dir, err := os.MkdirTemp("", "takeover-"+s.Name+"-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "wwbench chaos:", err)
			os.Exit(1)
		}
		rep, err := chaos.RunTakeover(s, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wwbench chaos: takeover %s: %v\n", s.Name, err)
			os.Exit(1)
		}
		status := "ok"
		if len(rep.Violations) > 0 {
			status = fmt.Sprintf("FAIL (%d violations)", len(rep.Violations))
			failed = true
		}
		fmt.Printf("%-32s seed %-5d handoffs %-3d pause_max %-12v lag_max %-6d inserted %-6d: %s\n",
			s.Name, s.Seed, rep.Handoffs, rep.PauseMax, rep.LagMax, rep.Inserted, status)
		if trace || len(rep.Violations) > 0 {
			for _, line := range rep.Trace {
				fmt.Println("  ", line)
			}
		}
		for _, v := range rep.Violations {
			fmt.Println("  violation:", v)
		}
		os.RemoveAll(dir)
	}
	if failed {
		os.Exit(1)
	}
}
