// Command wwgen generates the synthetic evaluation workloads (T-Drive-
// like taxi trajectories, Network-like access logs, normal-σ keys) and
// either writes them as binary tuples or streams them into a running
// waterwheel server.
//
// Usage:
//
//	wwgen -dataset tdrive -n 1000000 > tuples.bin
//	wwgen -dataset network -n 500000 -send 127.0.0.1:7070
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"waterwheel"
	"waterwheel/internal/model"
	"waterwheel/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "tdrive", "tdrive|network|normal")
		n       = flag.Int("n", 100_000, "number of tuples")
		rate    = flag.Int("rate", 100_000, "logical events per second")
		sigma   = flag.Float64("sigma", 1000, "key sigma (normal dataset)")
		late    = flag.Float64("late", 0, "fraction of late tuples")
		lateMax = flag.Int64("late-max-ms", 10_000, "max lateness in ms")
		seed    = flag.Int64("seed", 1, "random seed")
		send    = flag.String("send", "", "stream to a waterwheel server instead of stdout")
		batch   = flag.Int("batch", 512, "tuples per network batch")
	)
	flag.Parse()

	var g workload.Generator
	switch *dataset {
	case "network":
		g = workload.NewNetwork(workload.NetworkConfig{
			Seed: *seed, EventsPerSecond: *rate, LateFrac: *late, LateMaxMillis: *lateMax,
		})
	case "normal":
		g = workload.NewNormal(workload.NormalConfig{
			Sigma: *sigma, Seed: *seed, EventsPerSecond: *rate,
		})
	case "tdrive":
		g = workload.NewTDrive(workload.TDriveConfig{
			Seed: *seed, EventsPerSecond: *rate, LateFrac: *late, LateMaxMillis: *lateMax,
		})
	default:
		fmt.Fprintf(os.Stderr, "wwgen: unknown dataset %q\n", *dataset)
		os.Exit(1)
	}

	if *send != "" {
		cl, err := waterwheel.Dial(*send)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wwgen: dial: %v\n", err)
			os.Exit(1)
		}
		defer cl.Close()
		buf := make([]waterwheel.Tuple, 0, *batch)
		sent := 0
		for i := 0; i < *n; i++ {
			buf = append(buf, g.Next())
			if len(buf) == *batch || i == *n-1 {
				if err := cl.InsertBatch(buf); err != nil {
					fmt.Fprintf(os.Stderr, "wwgen: send: %v\n", err)
					os.Exit(1)
				}
				sent += len(buf)
				buf = buf[:0]
			}
		}
		fmt.Fprintf(os.Stderr, "wwgen: sent %d tuples to %s\n", sent, *send)
		return
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()
	var scratch []byte
	for i := 0; i < *n; i++ {
		t := g.Next()
		scratch = model.AppendTuple(scratch[:0], &t)
		if _, err := w.Write(scratch); err != nil {
			fmt.Fprintf(os.Stderr, "wwgen: write: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "wwgen: wrote %d tuples\n", *n)
}
