// Command wwql is the query/insert client for a running waterwheel
// server.
//
// Usage:
//
//	wwql -addr 127.0.0.1:7070 insert 42 1700000000000 hello
//	wwql -addr 127.0.0.1:7070 query -keys 0:100 -times 0:2000000000000
//	wwql -addr 127.0.0.1:7070 query -keys 0:100 -daily 09:00-17:00
//	wwql -addr 127.0.0.1:7070 trace -keys 0:100 -times 0:2000000000000
//	wwql -addr 127.0.0.1:7070 agg -kind sum -field 0 -keys 0:100 -times 0:2000000000000
//	wwql -addr 127.0.0.1:7070 stats
//	wwql -addr 127.0.0.1:7070 metrics
//	wwql -addr 127.0.0.1:7070 flush | drain
//
// trace runs the query like query does but additionally prints the
// coordinator's span tree — decomposition, dispatch, per-chunk reads with
// cache and bloom-skip detail, and merge, each with its wall time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"waterwheel"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wwql: "+format+"\n", args...)
	os.Exit(1)
}

func parseRange(s string) (lo, hi uint64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want lo:hi, got %q", s)
	}
	lo, err = strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return
	}
	hi, err = strconv.ParseUint(parts[1], 10, 64)
	return
}

// parseDaily parses a "hh:mm-hh:mm" recurring daily window ("between
// 09:00 and 17:00 daily") into a Recurrence.
func parseDaily(s string) (*waterwheel.Recurrence, error) {
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("want hh:mm-hh:mm, got %q", s)
	}
	minuteOfDay := func(v string) (int64, error) {
		hm := strings.SplitN(v, ":", 2)
		if len(hm) != 2 {
			return 0, fmt.Errorf("want hh:mm, got %q", v)
		}
		h, err := strconv.Atoi(hm[0])
		if err != nil || h < 0 || h > 24 {
			return 0, fmt.Errorf("bad hour %q", hm[0])
		}
		m, err := strconv.Atoi(hm[1])
		if err != nil || m < 0 || m > 59 {
			return 0, fmt.Errorf("bad minute %q", hm[1])
		}
		return int64(h)*60 + int64(m), nil
	}
	from, err := minuteOfDay(parts[0])
	if err != nil {
		return nil, err
	}
	to, err := minuteOfDay(parts[1])
	if err != nil {
		return nil, err
	}
	if to <= from {
		return nil, fmt.Errorf("window %q must end after it starts", s)
	}
	return waterwheel.Daily(from*60_000, (to-from)*60_000), nil
}

// parseQueryArgs parses the shared query/trace flags into a query and the
// tuple print limit.
func parseQueryArgs(cmd string, args []string) (waterwheel.Query, int) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	keys := fs.String("keys", "", "key range lo:hi (default: all)")
	times := fs.String("times", "", "time range lo:hi in ms (default: all)")
	daily := fs.String("daily", "", "recurring daily window hh:mm-hh:mm (UTC), e.g. 09:00-17:00")
	limit := fs.Int("limit", 20, "max tuples to print (0 = all)")
	fs.Parse(args)
	q := waterwheel.Query{Keys: waterwheel.FullKeyRange(), Times: waterwheel.FullTimeRange()}
	if *keys != "" {
		lo, hi, err := parseRange(*keys)
		if err != nil {
			fatalf("bad -keys: %v", err)
		}
		q.Keys = waterwheel.KeyRange{Lo: waterwheel.Key(lo), Hi: waterwheel.Key(hi)}
	}
	if *times != "" {
		lo, hi, err := parseRange(*times)
		if err != nil {
			fatalf("bad -times: %v", err)
		}
		q.Times = waterwheel.TimeRange{Lo: waterwheel.Timestamp(lo), Hi: waterwheel.Timestamp(hi)}
	}
	if *daily != "" {
		rc, err := parseDaily(*daily)
		if err != nil {
			fatalf("bad -daily: %v", err)
		}
		q.Recur = rc
	}
	return q, *limit
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fatalf("usage: wwql [-addr host:port] insert|query|trace|agg|stats|metrics|flush|drain ...")
	}

	cl, err := waterwheel.Dial(*addr)
	if err != nil {
		fatalf("dial %s: %v", *addr, err)
	}
	defer cl.Close()

	switch args[0] {
	case "insert":
		if len(args) < 3 {
			fatalf("usage: insert <key> <timestamp-ms> [payload]")
		}
		key, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fatalf("bad key: %v", err)
		}
		ts, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			fatalf("bad timestamp: %v", err)
		}
		var payload []byte
		if len(args) > 3 {
			payload = []byte(args[3])
		}
		if err := cl.Insert(waterwheel.Tuple{
			Key: waterwheel.Key(key), Time: waterwheel.Timestamp(ts), Payload: payload,
		}); err != nil {
			fatalf("insert: %v", err)
		}
		fmt.Println("ok")

	case "query", "trace":
		q, limit := parseQueryArgs(args[0], args[1:])
		var (
			res *waterwheel.Result
			tr  *waterwheel.QueryTrace
			err error
		)
		if args[0] == "trace" {
			res, tr, err = cl.QueryTraced(q)
		} else {
			res, err = cl.Query(q)
		}
		if err != nil {
			fatalf("%s: %v", args[0], err)
		}
		fmt.Printf("%d tuples (%d subqueries, %d leaves read, %d pruned, %d bytes)\n",
			len(res.Tuples), res.SubQueries, res.LeavesRead, res.LeavesSkipped, res.BytesRead)
		for i := range res.Tuples {
			if limit > 0 && i >= limit {
				fmt.Printf("... %d more\n", len(res.Tuples)-i)
				break
			}
			t := &res.Tuples[i]
			fmt.Printf("key=%d time=%d payload=%q\n", t.Key, t.Time, t.Payload)
		}
		if tr != nil {
			fmt.Print(tr.Format())
		}

	case "agg":
		fs := flag.NewFlagSet("agg", flag.ExitOnError)
		keys := fs.String("keys", "", "key range lo:hi (default: all)")
		times := fs.String("times", "", "time range lo:hi in ms (default: all)")
		kind := fs.String("kind", "count", "aggregate: count|min|max|sum")
		field := fs.Uint("field", 0, "payload offset of the aggregated uint64 field")
		fs.Parse(args[1:])
		k, err := waterwheel.ParseAggKind(*kind)
		if err != nil {
			fatalf("bad -kind: %v", err)
		}
		q := waterwheel.AggregateQuery{
			Keys: waterwheel.FullKeyRange(), Times: waterwheel.FullTimeRange(),
			Kind: k, Field: uint32(*field),
		}
		if *keys != "" {
			lo, hi, err := parseRange(*keys)
			if err != nil {
				fatalf("bad -keys: %v", err)
			}
			q.Keys = waterwheel.KeyRange{Lo: waterwheel.Key(lo), Hi: waterwheel.Key(hi)}
		}
		if *times != "" {
			lo, hi, err := parseRange(*times)
			if err != nil {
				fatalf("bad -times: %v", err)
			}
			q.Times = waterwheel.TimeRange{Lo: waterwheel.Timestamp(lo), Hi: waterwheel.Timestamp(hi)}
		}
		res, err := cl.Aggregate(q)
		if err != nil {
			fatalf("agg: %v", err)
		}
		if v, ok := res.Value(); ok {
			fmt.Printf("%s = %d\n", k, v)
		} else {
			fmt.Printf("%s = undefined (no tuples carry the field)\n", k)
		}
		fmt.Printf("count=%d values=%d (%d subqueries, %d chunks from metadata, %d leaves pushed down, %d scanned, %d skipped, %d bytes read)\n",
			res.Count, res.Values, res.SubQueries, res.MetaChunks, res.PushdownLeaves, res.LeavesRead, res.LeavesSkipped, res.BytesRead)

	case "metrics":
		text, err := cl.Metrics()
		if err != nil {
			fatalf("metrics: %v", err)
		}
		if text == "" {
			fmt.Println("telemetry disabled on server")
			return
		}
		fmt.Print(text)

	case "stats":
		st, err := cl.Stats()
		if err != nil {
			fatalf("stats: %v", err)
		}
		fmt.Printf("ingested=%d buffered=%d chunks=%d schema-version=%d\n",
			st.Ingested, st.Buffered, st.Chunks, st.SchemaVersion)

	case "flush":
		if err := cl.Flush(); err != nil {
			fatalf("flush: %v", err)
		}
		fmt.Println("ok")

	case "drain":
		if err := cl.Drain(); err != nil {
			fatalf("drain: %v", err)
		}
		fmt.Println("ok")

	default:
		fatalf("unknown command %q", args[0])
	}
}
