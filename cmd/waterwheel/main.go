// Command waterwheel runs an embedded Waterwheel deployment and serves it
// over TCP (insert / query / flush / drain / stats), playing the role of
// the paper's full Storm topology in a single process.
//
// Usage:
//
//	waterwheel -addr 127.0.0.1:7070 -nodes 4
//
// Clients connect with cmd/wwql or the library's waterwheel.Dial.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"waterwheel"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		nodes      = flag.Int("nodes", 1, "simulated cluster nodes")
		chunkMB    = flag.Int64("chunk-mb", 16, "chunk size in MiB")
		cacheMB    = flag.Int64("cache-mb", 1024, "query-server cache in MiB")
		policy     = flag.String("policy", "lada", "dispatch policy: lada|hashing|shared-queue|round-robin")
		balanceMs  = flag.Int64("balance-ms", 5000, "adaptive partitioning cadence (0 = off)")
		syncIngest = flag.Bool("sync-ingest", false, "bypass the WAL (no crash recovery)")
		simulateIO = flag.Bool("simulate-io", false, "charge HDFS-like latencies on chunk I/O")
		dataDir    = flag.String("data-dir", "", "persist chunks/WAL/metadata here (survives restarts)")
		durability = flag.String("durability", "", "insert ack policy with -data-dir: ack-on-write (default), ack-on-fsync (group commit), interval")
		fsyncMs    = flag.Int64("fsync-interval-ms", 50, "background fsync cadence for -durability interval")
		seed       = flag.Int64("seed", 0, "placement/sampling seed")
		httpAddr   = flag.String("http", "", "serve /metrics and /debug/waterwheel on this address (empty = off)")
	)
	flag.Parse()

	db, err := waterwheel.Open(waterwheel.Options{
		Nodes:                 *nodes,
		ChunkBytes:            *chunkMB << 20,
		CacheBytes:            *cacheMB << 20,
		Policy:                *policy,
		BalanceIntervalMillis: *balanceMs,
		SyncIngest:            *syncIngest,
		SimulateIO:            *simulateIO,
		DataDir:               *dataDir,
		Durability:            *durability,
		FsyncIntervalMillis:   *fsyncMs,
		Seed:                  *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "waterwheel: open:", err)
		os.Exit(1)
	}
	ns, err := db.Serve(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "waterwheel: listen:", err)
		os.Exit(1)
	}
	fmt.Printf("waterwheel serving on %s (%d nodes, policy=%s)\n", ns.Addr, *nodes, *policy)
	if *httpAddr != "" {
		go func() {
			fmt.Printf("waterwheel introspection on http://%s/metrics and /debug/waterwheel\n", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, db.DebugHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "waterwheel: http:", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("waterwheel: shutting down")
	ns.Close()
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "waterwheel: close:", err)
		os.Exit(1)
	}
}
