package waterwheel

// This file holds one regeneration target per table and figure of the
// paper's evaluation (§VI), as indexed in DESIGN.md §4. Test* targets run
// the experiment harness at a reduced scale and log the resulting table;
// Benchmark* targets measure the underlying operation with testing.B.
// Full-scale tables come from `go run ./cmd/wwbench -experiment all`.

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"waterwheel/internal/bench"
	"waterwheel/internal/chunk"
	"waterwheel/internal/cluster"
	"waterwheel/internal/core"
	"waterwheel/internal/dfs"
	"waterwheel/internal/ingest"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/workload"
)

// runExperiment executes a harness experiment and logs its table.
func runExperiment(t *testing.T, id string, scale float64) {
	t.Helper()
	rep, err := bench.Run(id, bench.Options{Scale: scale, Seed: 42})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	t.Logf("\n%s", rep)
}

// --- Table I ---

func TestTable1Capabilities(t *testing.T) { runExperiment(t, "table1", 0.1) }

// --- Figure 7: the three B+ trees ---

func BenchmarkFig7aInsertThroughput(b *testing.B) {
	g := workload.NewTDrive(workload.TDriveConfig{Seed: 1})
	// Fixed-size working set: the parent benchmark body runs with b.N == 1,
	// so sizing this buffer by b.N fed every sub-benchmark iteration the
	// same single tuple — a degenerate hot-key stream.
	tuples := make([]model.Tuple, 200_000)
	for i := range tuples {
		tuples[i] = g.Next()
	}
	for name, mk := range map[string]func() core.Index{
		"template": func() core.Index {
			return core.NewTemplateTree(core.TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1 << 32}, Leaves: 1024})
		},
		"concurrent": func() core.Index { return core.NewConcurrentTree(0, 0) },
		"bulk":       func() core.Index { return core.NewBulkTree(0, 0) },
	} {
		b.Run(name, func(b *testing.B) {
			idx := mk()
			sub := tuples
			if b.N < len(sub) {
				sub = sub[:b.N]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Insert(sub[i%len(sub)])
			}
			if bt, ok := idx.(*core.BulkTree); ok {
				bt.Build()
			}
		})
	}
}

func TestFig7aInsertScaling(t *testing.T) { runExperiment(t, "fig7a", 0.1) }
func TestFig7bBreakdown(t *testing.T)     { runExperiment(t, "fig7b", 0.1) }

// --- Figures 8/9: mixed workloads ---

func BenchmarkFig8Mixed(b *testing.B) {
	for _, frac := range []float64{1.0, 0.75, 0.5} {
		b.Run(fmt.Sprintf("insert%.0f%%", frac*100), func(b *testing.B) {
			tree := core.NewTemplateTree(core.TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1 << 32}, Leaves: 512})
			g := workload.NewTDrive(workload.TDriveConfig{Seed: 2})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tp := g.Next()
				if float64(i%100)/100 < frac {
					tree.Insert(tp)
				} else {
					tree.Range(model.KeyRange{Lo: tp.Key, Hi: tp.Key}, model.FullTimeRange(), nil,
						func(*model.Tuple) bool { return true })
				}
			}
		})
	}
}

func BenchmarkFig9MixedRead(b *testing.B) {
	tree := core.NewTemplateTree(core.TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1 << 32}, Leaves: 512})
	g := workload.NewTDrive(workload.TDriveConfig{Seed: 3})
	keys := make([]model.Key, 100_000)
	for i := range keys {
		tp := g.Next()
		keys[i] = tp.Key
		tree.Insert(tp)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		tree.Range(model.KeyRange{Lo: k, Hi: k}, model.FullTimeRange(), nil,
			func(*model.Tuple) bool { return true })
	}
}

func TestFig8MixedThroughput(t *testing.T) { runExperiment(t, "fig8", 0.05) }
func TestFig9MixedLatency(t *testing.T)    { runExperiment(t, "fig9", 0.05) }

// --- Figure 10: template update latency ---

func BenchmarkFig10TemplateUpdate(b *testing.B) {
	g := workload.NewTDrive(workload.TDriveConfig{Seed: 4})
	tuples := make([]model.Tuple, 100_000)
	for i := range tuples {
		tuples[i] = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tree := core.NewTemplateTree(core.TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1 << 32}, Leaves: 1024})
		for j := range tuples {
			tree.Insert(tuples[j])
		}
		b.StartTimer()
		tree.UpdateTemplate()
	}
}

func TestFig10TemplateUpdateLatency(t *testing.T) { runExperiment(t, "fig10", 0.1) }

// --- Figure 11: chunk size effects ---

func TestFig11aChunkSizeInsert(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	runExperiment(t, "fig11a", 0.05)
}

func TestFig11bChunkSizeQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	runExperiment(t, "fig11b", 0.2)
}

// --- Figure 12: adaptive key partitioning ---

func TestFig12aAdaptivePartitionInsert(t *testing.T) { runExperiment(t, "fig12a", 0.05) }
func TestFig12bAdaptivePartitionQuery(t *testing.T)  { runExperiment(t, "fig12b", 0.05) }

// --- Figure 13: subquery dispatch policies ---

func TestFig13DispatchPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	runExperiment(t, "fig13", 0.03)
}

// --- Figures 14/15/16: overall comparison ---

func TestFig14QueryLatencyNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	runExperiment(t, "fig14", 0.03)
}

func TestFig15InsertComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	runExperiment(t, "fig15", 0.05)
}

func TestFig16QueryLatencyTDrive(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	runExperiment(t, "fig16", 0.03)
}

// --- Figure 17: scalability ---

func TestFig17Scalability(t *testing.T) { runExperiment(t, "fig17", 0.05) }

// --- Ablations (DESIGN.md §5) ---

func BenchmarkAblationBloom(b *testing.B) {
	// Chunk-leaf selection with and without time sketches on a chunk whose
	// tuples arrive in two time bursts: min/max bounds cannot prune queries
	// into the gap; the sketches can.
	tree := core.NewTemplateTree(core.TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1 << 20}, Leaves: 256})
	for i := 0; i < 200_000; i++ {
		t := model.Timestamp(i % 10_000)
		if i%2 == 1 {
			t += 10_000_000
		}
		tree.Insert(model.Tuple{Key: model.Key(i % (1 << 20)), Time: t})
	}
	data, _, err := chunk.Build(tree.FlushReset(), chunk.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	h, err := chunk.ParseHeader(data)
	if err != nil {
		b.Fatal(err)
	}
	gap := model.TimeRange{Lo: 5_000_000, Hi: 5_010_000} // inside the silent gap
	for _, useBloom := range []bool{true, false} {
		name := "bloom-on"
		if !useBloom {
			name = "bloom-off"
		}
		b.Run(name, func(b *testing.B) {
			kept := 0
			for i := 0; i < b.N; i++ {
				read, _ := h.SelectLeaves(model.FullKeyRange(), gap, useBloom)
				kept += len(read)
			}
			b.ReportMetric(float64(kept)/float64(b.N), "leaves-kept/op")
		})
	}
}

func BenchmarkAblationTemplate(b *testing.B) {
	// Flush+refill cost with the template retained vs rebuilt.
	g := workload.NewTDrive(workload.TDriveConfig{Seed: 5})
	tuples := make([]model.Tuple, 50_000)
	for i := range tuples {
		tuples[i] = g.Next()
	}
	for _, reuse := range []bool{true, false} {
		name := "reuse"
		if !reuse {
			name = "rebuild"
		}
		b.Run(name, func(b *testing.B) {
			tree := core.NewTemplateTree(core.TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1 << 32}, Leaves: 512})
			for i := 0; i < b.N; i++ {
				for j := range tuples {
					tree.Insert(tuples[j])
				}
				tree.FlushReset()
				if !reuse {
					tree.UpdateTemplate()
				}
			}
		})
	}
}

func TestAblationBloom(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	runExperiment(t, "ablation-bloom", 0.03)
}

func TestAblationTemplateSystem(t *testing.T) { runExperiment(t, "ablation-template", 0.05) }

func TestAblationLADAComponents(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	runExperiment(t, "ablation-lada", 0.03)
}

func TestAblationSideStore(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	runExperiment(t, "ablation-sidestore", 0.03)
}

// --- insert tail latency: the async flush pipeline's headline number ---

// BenchmarkInsertTailLatency measures per-Insert latency on a single
// goroutine driving an indexing server across many flush thresholds,
// reporting the max and p99.9 — the numbers the asynchronous flush
// pipeline exists to move. The "sync" sub-benchmark is the pre-pipeline
// baseline (chunk build + DFS write inline on the inserting goroutine);
// "async" is the default pipeline. The DFS models a slow write path
// (2 MiB/s) so the inline cost the pipeline removes is clearly visible:
// sync pays build + a multi-millisecond write stall on every
// threshold-crossing Insert, async pays only the leaf-layer swap. The
// flush queue is sized to hold the whole run so the benchmark measures
// hot-path cost rather than DFS bandwidth — with a bounded queue and an
// offered rate beyond DFS bandwidth, both modes must degrade to the
// write stall, by backpressure design (see TestBackpressureBoundsQueue
// for that regime).
func BenchmarkInsertTailLatency(b *testing.B) {
	for _, mode := range []struct {
		name string
		sync bool
	}{{"async", false}, {"sync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			fs := dfs.New(dfs.Config{
				Nodes: 3, Replication: 2, Seed: 1,
				Latency: dfs.LatencyModel{WriteBytesPerSec: 2 << 20},
			})
			ms := meta.NewServer(1)
			srv := ingest.NewServer(ingest.Config{
				ID:                  0,
				ChunkBytes:          64 << 10, // ~800 inserts per flush
				Leaves:              64,
				SyncFlush:           mode.sync,
				FlushQueueDepth:     b.N*80/(64<<10) + 4, // absorb every flush in the run
				SideThresholdMillis: -1,
			}, fs, ms, 0)
			defer srv.Close()
			payload := make([]byte, 64)
			lat := make([]time.Duration, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				srv.Insert(model.Tuple{
					Key:     model.Key(uint64(i) * 2654435761),
					Time:    model.Timestamp(1000 + i),
					Payload: payload,
				})
				lat[i] = time.Since(t0)
			}
			b.StopTimer()
			srv.DrainFlushes()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(lat[len(lat)-1].Nanoseconds()), "max-ns")
			b.ReportMetric(float64(lat[len(lat)*999/1000].Nanoseconds()), "p99.9-ns")
		})
	}
}

// --- insert ack durability: group commit vs fsync-per-insert ---

// BenchmarkInsertAckOnFsync prices the ack-durability policies on the
// public API over a disk-backed WAL. "ack-on-write" is the default fast
// path (acked after the OS-level write, crash-durable only after the next
// fsync); "ack-on-fsync" parks concurrent inserters on the committer's
// fsync cohorts (group commit), so the per-ack fsync cost is amortized
// across however many inserts arrived while the previous fsync was in
// flight; "ack-on-fsync-serial" is the naive one-fsync-per-insert
// baseline the committer amortizes away — on a single goroutine every
// cohort has exactly one member. The acceptance bar for the group-commit
// pipeline: at 8+ concurrent inserters, ack-on-fsync stays within 5x of
// ack-on-write. The parallel legs run 32 inserter goroutines: cohorts
// split across the WAL partitions and the device serializes concurrent
// fsyncs at its journal, so wide cohorts are where the amortization is
// visible.
func BenchmarkInsertAckOnFsync(b *testing.B) {
	for _, mode := range []struct {
		name       string
		durability string
		parallel   bool
	}{
		{"ack-on-write-parallel32", "", true},
		{"ack-on-fsync-parallel32", "ack-on-fsync", true},
		{"ack-on-fsync-serial", "ack-on-fsync", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := Open(Options{
				DataDir:    b.TempDir(),
				Durability: mode.durability,
				ChunkBytes: 64 << 20,
				Seed:       1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			payload := make([]byte, 64)
			var seq atomic.Uint64
			insert := func() {
				i := seq.Add(1)
				if err := db.Insert(Tuple{
					Key:     model.Key(i * 0x9E3779B97F4A7C15),
					Time:    model.Timestamp(1000 + i),
					Payload: payload,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			if mode.parallel {
				// 32 inserter goroutines at GOMAXPROCS=1; scales with procs.
				b.SetParallelism(32)
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						insert()
					}
				})
			} else {
				for i := 0; i < b.N; i++ {
					insert()
				}
			}
		})
	}
}

// --- parallel read path: cold multi-chunk queries ---

// queryBenchCluster builds a flush-heavy deployment for the read-path
// benchmarks: one indexing server, two query servers, ~20 small chunks,
// and a fixed per-access DFS open delay so read parallelism is visible as
// wall-clock time (an HDFS-like open dominates small chunk reads).
func queryBenchCluster(b *testing.B, workers, inflight int, openDelay time.Duration, cacheBytes int64) *cluster.Cluster {
	b.Helper()
	c := cluster.New(cluster.Config{
		Nodes:               1,
		IndexServersPerNode: 1,
		QueryServersPerNode: 2,
		DispatchersPerNode:  1,
		ChunkBytes:          64 << 10,
		CacheBytes:          cacheBytes,
		SyncIngest:          true,
		Seed:                1,
		DFSLatency:          dfs.LatencyModel{OpenMin: openDelay, OpenMax: openDelay},
		QueryWorkers:        workers,
		QueryInflightReads:  inflight,
	})
	c.Start()
	payload := make([]byte, 48)
	for i := 0; i < 18_000; i++ { // ~80 B/tuple vs 64 KiB chunks -> ~20 chunks
		c.Insert(model.Tuple{
			// Fibonacci hashing spreads keys over the whole uint64 domain
			// so key-range queries of any placement hit data.
			Key:     model.Key(uint64(i) * 0x9E3779B97F4A7C15),
			Time:    model.Timestamp(1000 + i),
			Payload: payload,
		})
	}
	c.FlushAll()
	return c
}

// BenchmarkColdMultiChunkQuery is the parallel dispatch engine's headline
// number: one full-range query fanning out over ~20 chunks on 2 query
// servers with every cache cleared first, so each subquery pays the
// modeled DFS open delay. serial pins Workers=1 + InflightReads=1 (the
// old engine's behavior); parallel uses the defaults.
func BenchmarkColdMultiChunkQuery(b *testing.B) {
	for _, mode := range []struct {
		name              string
		workers, inflight int
	}{{"serial", 1, 1}, {"parallel", 0, 0}} {
		b.Run(mode.name, func(b *testing.B) {
			c := queryBenchCluster(b, mode.workers, mode.inflight, 2*time.Millisecond, 1<<30)
			defer c.Stop()
			q := model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for _, qs := range c.QueryServers() {
					qs.ClearCache()
				}
				b.StartTimer()
				res, err := c.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Tuples) != 18_000 {
					b.Fatalf("got %d tuples, want 18000", len(res.Tuples))
				}
			}
		})
	}
}

// BenchmarkConcurrentQueryThroughput drives many concurrent key-range
// queries through the coordinator with a cache too small to hold the
// working set, so queries keep missing and the per-server worker pools,
// inflight bound and single-flight all stay on the hot path.
func BenchmarkConcurrentQueryThroughput(b *testing.B) {
	for _, mode := range []struct {
		name              string
		workers, inflight int
	}{{"workers-1", 1, 1}, {"workers-default", 0, 0}} {
		b.Run(mode.name, func(b *testing.B) {
			c := queryBenchCluster(b, mode.workers, mode.inflight, 200*time.Microsecond, 128<<10)
			defer c.Stop()
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					lo := model.Key((i * 0x9e3779b97f4a7c15) % (1 << 62))
					res, err := c.Query(model.Query{
						Keys:  model.KeyRange{Lo: lo, Hi: lo + 1<<59},
						Times: model.FullTimeRange(),
					})
					if err != nil {
						b.Fatal(err)
					}
					_ = res
				}
			})
		})
	}
}

// --- vectorized batch ingest: one call per batch from wire to leaf ---

// BenchmarkInsertBatchThroughput prices the batch pipeline at the two
// layers the vectorization touches. The "tree" legs drive
// TemplateTree.InsertBatch with the same workload and leaf count as
// BenchmarkFig7aInsertThroughput/template, so batch=1 reproduces that
// baseline and larger batches show the per-leaf merge amortization. The
// "db" legs go end to end through the public API over the default WAL
// pipeline — one DispatchBatch, one WAL AppendBatch per partition run,
// one batched consume — where batch=1 is the per-tuple Insert cost. Each
// benchmark op is ONE TUPLE, so ns/op across legs compare directly.
func BenchmarkInsertBatchThroughput(b *testing.B) {
	g := workload.NewTDrive(workload.TDriveConfig{Seed: 1})
	tuples := make([]model.Tuple, 200_000)
	for i := range tuples {
		tuples[i] = g.Next()
	}
	sizes := []int{1, 16, 64, 256, 1024}
	for _, size := range sizes {
		b.Run(fmt.Sprintf("tree/batch-%d", size), func(b *testing.B) {
			idx := core.NewTemplateTree(core.TemplateConfig{
				Keys: model.KeyRange{Lo: 0, Hi: 1 << 32}, Leaves: 1024,
			})
			b.ResetTimer()
			for pos := 0; pos < b.N; pos += size {
				n := size
				if pos+n > b.N {
					n = b.N - pos
				}
				start := pos % len(tuples)
				if start+n > len(tuples) {
					start = 0
				}
				idx.InsertBatch(tuples[start : start+n])
			}
		})
	}
	for _, size := range sizes {
		b.Run(fmt.Sprintf("db/batch-%d", size), func(b *testing.B) {
			db, err := Open(Options{ChunkBytes: 256 << 20, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.ResetTimer()
			for pos := 0; pos < b.N; pos += size {
				n := size
				if pos+n > b.N {
					n = b.N - pos
				}
				start := pos % len(tuples)
				if start+n > len(tuples) {
					start = 0
				}
				if err := db.InsertBatch(tuples[start : start+n]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The durability legs: under ack-on-fsync a batch must cost one fsync
	// cohort, not one per tuple — reported as fsyncs/batch. The batch-1 leg
	// is the serial counterpart: a single client pays a full group-commit
	// round (one fsync latency) per tuple, which is where batching buys its
	// largest factor. Keep iteration counts modest; each op is an fsync.
	b.Run("db-fsync/batch-1", func(b *testing.B) {
		db, err := Open(Options{
			DataDir:             b.TempDir(),
			Durability:          "ack-on-fsync",
			IndexServersPerNode: 1,
			ChunkBytes:          256 << 20,
			Seed:                1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Insert(tuples[i%len(tuples)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("db-fsync/batch-256", func(b *testing.B) {
		db, err := Open(Options{
			DataDir:             b.TempDir(),
			Durability:          "ack-on-fsync",
			IndexServersPerNode: 1, // one partition: each batch is one run
			ChunkBytes:          256 << 20,
			Seed:                1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		const size = 256
		b.ResetTimer()
		batches := 0
		for pos := 0; pos < b.N; pos += size {
			n := size
			if pos+n > b.N {
				n = b.N - pos
			}
			start := pos % len(tuples)
			if start+n > len(tuples) {
				start = 0
			}
			if err := db.InsertBatch(tuples[start : start+n]); err != nil {
				b.Fatal(err)
			}
			batches++
		}
		b.StopTimer()
		var fsyncs float64
		for _, m := range db.c.Telemetry().Snapshot() {
			if m.Name == "waterwheel_wal_fsyncs_total" {
				fsyncs = m.Value
			}
		}
		b.ReportMetric(fsyncs/float64(batches), "fsyncs/batch")
		if fsyncs > float64(batches)*2 {
			b.Fatalf("%.0f fsyncs for %d batches: cohorts not amortized", fsyncs, batches)
		}
	})
}

// --- end-to-end throughput of the public API ---

func BenchmarkDBInsert(b *testing.B) {
	db, err := Open(Options{SyncIngest: true, ChunkBytes: 64 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	g := workload.NewTDrive(workload.TDriveConfig{Seed: 6})
	tuples := make([]Tuple, 100_000)
	for i := range tuples {
		tuples[i] = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Insert(tuples[i%len(tuples)])
	}
}

func BenchmarkDBQueryRecent(b *testing.B) {
	db, err := Open(Options{SyncIngest: true, ChunkBytes: 1 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	g := workload.NewTDrive(workload.TDriveConfig{Seed: 7, EventsPerSecond: 10_000})
	for i := 0; i < 200_000; i++ {
		db.Insert(g.Next())
	}
	qg := workload.NewQueryGen(g.KeySpan(), 1)
	now := g.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(Query{
			Keys:  qg.KeyRange(0.1),
			Times: workload.Recent(now, 5_000),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// aggBenchCluster builds a flushed cluster in the given chunk format
// whose tuples carry a big-endian uint64 at payload offset 0, the
// pre-aggregated field.
func aggBenchCluster(b *testing.B, format int) *cluster.Cluster {
	b.Helper()
	c := cluster.New(cluster.Config{
		Nodes:               1,
		IndexServersPerNode: 1,
		QueryServersPerNode: 2,
		DispatchersPerNode:  1,
		ChunkBytes:          64 << 10,
		CacheBytes:          1 << 30,
		SyncIngest:          true,
		Seed:                1,
		DFSLatency:          dfs.LatencyModel{OpenMin: 200 * time.Microsecond, OpenMax: 200 * time.Microsecond},
	})
	c.SetChunkFormat(format)
	c.Start()
	for i := 0; i < 50_000; i++ {
		payload := make([]byte, 16)
		binary.BigEndian.PutUint64(payload, uint64(i))
		c.Insert(model.Tuple{
			Key:     model.Key(uint64(i) * 0x9E3779B97F4A7C15),
			Time:    model.Timestamp(1000 + i),
			Payload: payload,
		})
	}
	c.FlushAll()
	return c
}

// BenchmarkAggregatePushdown prices the pre-aggregate block end to end:
// the same full-range SUM against v1 chunks (every leaf body is read and
// scanned, caches cleared each iteration) and against v2 chunks (the
// coordinator and query servers answer from chunk and leaf metadata).
func BenchmarkAggregatePushdown(b *testing.B) {
	q := model.AggregateQuery{
		Keys: model.FullKeyRange(), Times: model.FullTimeRange(), Kind: model.AggSum,
	}
	const wantCount = 50_000
	for _, mode := range []struct {
		name   string
		format int
	}{{"v1-scan", chunk.FormatV1}, {"v2-pushdown", chunk.FormatV2}} {
		b.Run(mode.name, func(b *testing.B) {
			c := aggBenchCluster(b, mode.format)
			defer c.Stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for _, qs := range c.QueryServers() {
					qs.ClearCache()
				}
				b.StartTimer()
				res, err := c.Aggregate(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Count != wantCount {
					b.Fatalf("count = %d, want %d", res.Count, wantCount)
				}
			}
		})
	}
}

// BenchmarkColumnarScan measures leaf decode+scan throughput of the two
// chunk encodings over the same T-Drive snapshot, in the two shapes that
// matter: "full" visits every tuple (the row format's best case — the
// columnar decode pays varint work the callback-dominated visit cannot
// amortize), "narrow" scans a thin key slice per leaf (the columnar
// format binary-searches the key column and never touches non-matching
// tuples, where the row format must decode tuple by tuple).
func BenchmarkColumnarScan(b *testing.B) {
	g := workload.NewTDrive(workload.TDriveConfig{Taxis: 500, Seed: 11})
	tree := core.NewTemplateTree(core.TemplateConfig{Keys: g.KeySpan(), Leaves: 64})
	const n = 50_000
	for i := 0; i < n; i++ {
		tree.Insert(g.Next())
	}
	snap := tree.FlushReset()
	for _, mode := range []struct {
		name   string
		format int
	}{{"v1-row", chunk.FormatV1}, {"v2-columnar", chunk.FormatV2}} {
		data, _, err := chunk.Build(snap, chunk.BuildOptions{Format: mode.format})
		if err != nil {
			b.Fatal(err)
		}
		h, err := chunk.ParseHeader(data)
		if err != nil {
			b.Fatal(err)
		}
		scan := func(b *testing.B, kr model.KeyRange, wantAll bool) {
			var cols chunk.LeafColumns
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total := 0
				for li, d := range h.Dir {
					err := h.ScanLeafWith(&cols, li, data[d.Offset:d.Offset+d.Length],
						kr, model.FullTimeRange(), nil,
						func(*model.Tuple) bool { total++; return true })
					if err != nil {
						b.Fatal(err)
					}
				}
				if wantAll && total != n {
					b.Fatalf("scanned %d tuples, want %d", total, n)
				}
			}
		}
		b.Run("full/"+mode.name, func(b *testing.B) {
			scan(b, model.FullKeyRange(), true)
		})
		b.Run("narrow/"+mode.name, func(b *testing.B) {
			span := g.KeySpan()
			mid := span.Hi / 2
			scan(b, model.KeyRange{Lo: mid, Hi: mid + span.Hi/1000}, false)
		})
	}
}
