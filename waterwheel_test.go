package waterwheel

import (
	"testing"
)

func openTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.ChunkBytes == 0 {
		opts.ChunkBytes = 64 << 10
	}
	opts.Seed = 1
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestOpenInsertQueryClose(t *testing.T) {
	db := openTestDB(t, Options{})
	for i := 0; i < 500; i++ {
		db.Insert(Tuple{Key: Key(uint64(i) << 50), Time: Timestamp(1000 + i), Payload: []byte{byte(i)}})
	}
	db.Drain()
	res, err := db.QueryRange(FullKeyRange(), FullTimeRange())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 500 {
		t.Fatalf("got %d tuples", len(res.Tuples))
	}
	st := db.Stats()
	if st.Ingested != 500 {
		t.Errorf("stats %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryRange(FullKeyRange(), FullTimeRange()); err != ErrClosed {
		t.Errorf("query after close: %v", err)
	}
}

func TestQueryWithFilter(t *testing.T) {
	db := openTestDB(t, Options{})
	for i := 0; i < 100; i++ {
		db.Insert(Tuple{Key: Key(i), Time: Timestamp(i)})
	}
	db.Drain()
	res, err := db.Query(Query{
		Keys:   FullKeyRange(),
		Times:  FullTimeRange(),
		Filter: And(KeyMod(2, 0), TimeCmp(LT, 50)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 25 {
		t.Fatalf("got %d tuples, want 25", len(res.Tuples))
	}
}

func TestFlushAndHistoricalQuery(t *testing.T) {
	db := openTestDB(t, Options{})
	for i := 0; i < 200; i++ {
		db.Insert(Tuple{Key: Key(uint64(i) << 50), Time: Timestamp(i)})
	}
	db.Drain()
	db.Flush()
	if db.Stats().Chunks == 0 {
		t.Fatal("flush registered no chunks")
	}
	if db.Stats().Buffered != 0 {
		t.Fatal("memtables not drained by flush")
	}
	res, err := db.QueryRange(FullKeyRange(), FullTimeRange())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 200 {
		t.Fatalf("historical query: %d tuples", len(res.Tuples))
	}
}

func TestGeoGridQueries(t *testing.T) {
	db := openTestDB(t, Options{})
	g := NewGeoGrid(116.0, 117.0, 39.5, 40.5, 12)
	// A cluster of points inside a small box, plus scattered noise.
	for i := 0; i < 50; i++ {
		lon := 116.40 + float64(i%5)*0.001
		lat := 39.90 + float64(i/5)*0.001
		db.Insert(Tuple{Key: g.Key(lon, lat), Time: Timestamp(1000 + i)})
	}
	for i := 0; i < 50; i++ {
		db.Insert(Tuple{Key: g.Key(116.9, 40.4), Time: Timestamp(2000 + i)})
	}
	db.Drain()
	res, err := db.QueryGeoRect(g, 116.39, 39.89, 116.42, 39.92, FullTimeRange(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 50 {
		t.Fatalf("geo query: %d tuples, want 50", len(res.Tuples))
	}
}

func TestNetworkServerRoundTrip(t *testing.T) {
	db := openTestDB(t, Options{})
	ns, err := db.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	cl, err := Dial(ns.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	batch := make([]Tuple, 300)
	for i := range batch {
		batch[i] = Tuple{Key: Key(uint64(i) << 50), Time: Timestamp(i), Payload: []byte("net")}
	}
	if err := cl.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(Query{Keys: FullKeyRange(), Times: FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 300 {
		t.Fatalf("remote query: %d tuples", len(res.Tuples))
	}
	if string(res.Tuples[0].Payload) != "net" {
		t.Errorf("payload corrupted: %q", res.Tuples[0].Payload)
	}
	st, err := cl.Stats()
	if err != nil || st.Ingested != 300 {
		t.Errorf("remote stats %+v, %v", st, err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	// Remote query spanning chunk + fresh data after more inserts.
	if err := cl.InsertBatch(batch[:50]); err != nil {
		t.Fatal(err)
	}
	cl.Drain()
	res, err = cl.Query(Query{Keys: FullKeyRange(), Times: FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 350 {
		t.Fatalf("after flush+insert: %d tuples", len(res.Tuples))
	}
}

func TestRemoteQueryWithFilter(t *testing.T) {
	db := openTestDB(t, Options{})
	ns, _ := db.Serve("127.0.0.1:0")
	defer ns.Close()
	cl, _ := Dial(ns.Addr)
	defer cl.Close()
	for i := 0; i < 100; i++ {
		cl.Insert(Tuple{Key: Key(i), Time: Timestamp(i)})
	}
	cl.Drain()
	res, err := cl.Query(Query{
		Keys: FullKeyRange(), Times: FullTimeRange(),
		Filter: KeyMod(10, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 10 {
		t.Fatalf("filtered remote query: %d tuples, want 10", len(res.Tuples))
	}
}

func TestRebalanceAPI(t *testing.T) {
	db := openTestDB(t, Options{Nodes: 2})
	for i := 0; i < 5000; i++ {
		db.Insert(Tuple{Key: Key(i % 1000), Time: Timestamp(i)}) // skewed
	}
	db.Drain()
	if !db.Rebalance() {
		t.Fatal("rebalance declined on skewed load")
	}
	if db.Stats().SchemaVersion < 2 {
		t.Error("schema version unchanged")
	}
}

func TestDataDirPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{DataDir: dir, ChunkBytes: 8 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		db.Insert(Tuple{Key: Key(uint64(i) << 45), Time: Timestamp(i), Payload: []byte{byte(i)}})
	}
	db.Drain()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{DataDir: dir, ChunkBytes: 8 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.Drain()
	res, err := db2.QueryRange(FullKeyRange(), FullTimeRange())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2000 {
		t.Fatalf("after reopen: %d/2000 tuples", len(res.Tuples))
	}
}

func TestDataDirRejectsSyncIngest(t *testing.T) {
	if _, err := Open(Options{DataDir: t.TempDir(), SyncIngest: true}); err == nil {
		t.Fatal("DataDir + SyncIngest accepted")
	}
}

func TestInsertBatchAndStats(t *testing.T) {
	db := openTestDB(t, Options{})
	batch := make([]Tuple, 100)
	for i := range batch {
		batch[i] = Tuple{Key: Key(i), Time: Timestamp(i)}
	}
	db.InsertBatch(batch)
	db.Drain()
	st := db.Stats()
	if st.Ingested != 100 || st.Buffered != 100 || st.Chunks != 0 {
		t.Fatalf("stats %+v", st)
	}
	res, _ := db.QueryRange(FullKeyRange(), FullTimeRange())
	if len(res.Tuples) != 100 {
		t.Fatalf("batch insert lost tuples: %d", len(res.Tuples))
	}
}

func TestSecondaryIndexViaOptions(t *testing.T) {
	db := openTestDB(t, Options{
		ChunkBytes:           8 << 10,
		EnableSecondaryIndex: true,
		SecondaryIndexOffset: 0,
	})
	for i := 0; i < 2000; i++ {
		payload := make([]byte, 8)
		payload[7] = byte(i % 4) // attribute = i mod 4
		db.Insert(Tuple{Key: Key(uint64(i) << 50), Time: Timestamp(i), Payload: payload})
	}
	db.Drain()
	db.Flush()
	res, err := db.Query(Query{
		Keys:   FullKeyRange(),
		Times:  FullTimeRange(),
		Filter: PayloadU64(0, EQ, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 500 {
		t.Fatalf("secondary-filtered query: %d, want 500", len(res.Tuples))
	}
}

func TestCloseIsIdempotentAndFlushes(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{DataDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	db.Insert(Tuple{Key: 1, Time: 1})
	db.Drain()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Close flushed the memtable: the tuple is in a chunk after reopen
	// without any WAL replay being necessary.
	db2, err := Open(Options{DataDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Stats().Chunks == 0 {
		t.Error("close did not flush to a chunk")
	}
	res, _ := db2.QueryRange(FullKeyRange(), FullTimeRange())
	if len(res.Tuples) != 1 {
		t.Fatalf("tuple lost across close: %d", len(res.Tuples))
	}
}
