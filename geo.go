package waterwheel

import "waterwheel/internal/zorder"

// GeoGrid maps geographic coordinates into the key domain via Z-ordering
// (Morton codes), the preprocessing the paper applies to the T-Drive
// workload: latitude/longitude become one-dimensional z-codes the B+ tree
// can index, and a query rectangle becomes a handful of key ranges.
type GeoGrid struct {
	g *zorder.Grid
}

// NewGeoGrid creates a grid over a bounding box with 2^bits cells per
// axis (bits clamped to [1, 32]).
func NewGeoGrid(minLon, maxLon, minLat, maxLat float64, bits uint) *GeoGrid {
	return &GeoGrid{g: zorder.NewGrid(minLon, maxLon, minLat, maxLat, bits)}
}

// Key z-encodes a point into the key domain.
func (g *GeoGrid) Key(lon, lat float64) Key {
	return Key(g.g.Key(lon, lat))
}

// CoverRect decomposes a geographic rectangle into at most maxRanges key
// ranges whose union covers it. Issue one query per range, as the paper
// does ("for each of the z-code intervals, the system issues a query").
func (g *GeoGrid) CoverRect(lon0, lat0, lon1, lat1 float64, maxRanges int) []KeyRange {
	ivs := g.g.CoverGeoRect(lon0, lat0, lon1, lat1, maxRanges)
	out := make([]KeyRange, len(ivs))
	for i, iv := range ivs {
		out[i] = KeyRange{Lo: Key(iv.Lo), Hi: Key(iv.Hi)}
	}
	return out
}

// QueryGeoRect runs one query per covering key range and merges the
// results.
func (db *DB) QueryGeoRect(g *GeoGrid, lon0, lat0, lon1, lat1 float64, times TimeRange, filter *Filter) (*Result, error) {
	ranges := g.CoverRect(lon0, lat0, lon1, lat1, 16)
	merged := &Result{}
	for _, kr := range ranges {
		r, err := db.Query(Query{Keys: kr, Times: times, Filter: filter})
		if err != nil {
			return nil, err
		}
		merged.Merge(r)
		merged.SubQueries += r.SubQueries
	}
	merged.SortTuples()
	return merged, nil
}
