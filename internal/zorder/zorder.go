// Package zorder implements Morton (Z-order) encoding [31], used by
// Waterwheel to map two-dimensional attributes — latitude/longitude in the
// T-Drive workload — into the one-dimensional key domain so the B+ tree can
// index them (paper §III-A, §VI). It also decomposes a query rectangle into
// a small set of contiguous z-code intervals, the way the paper converts a
// geographical rectangle into one or more key-range queries.
package zorder

// Interleave spreads the low 32 bits of x into the even bit positions of a
// 64-bit word.
func Interleave(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// Compact inverts Interleave: it gathers the even bit positions of v into a
// 32-bit word.
func Compact(v uint64) uint32 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return uint32(v)
}

// Encode interleaves x (even bits) and y (odd bits) into one z-code.
func Encode(x, y uint32) uint64 {
	return Interleave(x) | Interleave(y)<<1
}

// Decode splits a z-code back into its x and y components.
func Decode(z uint64) (x, y uint32) {
	return Compact(z), Compact(z >> 1)
}

// Grid maps a geographic bounding box onto a 2^bits × 2^bits cell grid and
// z-encodes cell coordinates. It is the preprocessing the paper's
// dispatchers apply to T-Drive records.
type Grid struct {
	MinLon, MaxLon float64
	MinLat, MaxLat float64
	// Bits is the per-dimension resolution; the grid has 2^Bits cells per
	// axis. Must be in [1, 32].
	Bits uint
}

// NewGrid creates a grid over the given bounding box with the given
// per-dimension resolution (clamped to [1, 32]).
func NewGrid(minLon, maxLon, minLat, maxLat float64, bits uint) *Grid {
	if bits < 1 {
		bits = 1
	}
	if bits > 32 {
		bits = 32
	}
	return &Grid{MinLon: minLon, MaxLon: maxLon, MinLat: minLat, MaxLat: maxLat, Bits: bits}
}

// cells returns the number of cells per axis.
func (g *Grid) cells() uint64 { return uint64(1) << g.Bits }

// clampCell maps a coordinate to its axis cell index, clamping outliers to
// the border cells.
func clampCell(v, lo, hi float64, cells uint64) uint32 {
	if hi <= lo {
		return 0
	}
	f := (v - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	c := uint64(f * float64(cells))
	if c >= cells {
		c = cells - 1
	}
	return uint32(c)
}

// Cell returns the (x, y) cell indices of a point.
func (g *Grid) Cell(lon, lat float64) (x, y uint32) {
	return clampCell(lon, g.MinLon, g.MaxLon, g.cells()),
		clampCell(lat, g.MinLat, g.MaxLat, g.cells())
}

// Key z-encodes a point into the key domain.
func (g *Grid) Key(lon, lat float64) uint64 {
	x, y := g.Cell(lon, lat)
	return Encode(x, y)
}

// Interval is a closed z-code interval [Lo, Hi].
type Interval struct {
	Lo, Hi uint64
}

// CoverRect decomposes the cell rectangle [x0,x1]×[y0,y1] into at most
// maxIntervals closed z-code intervals whose union covers the rectangle
// (possibly with slack when the budget is tight). It recursively subdivides
// z-space quadrants (BIGMIN-style) and merges adjacent intervals.
func CoverRect(x0, y0, x1, y1 uint32, bits uint, maxIntervals int) []Interval {
	if x1 < x0 || y1 < y0 {
		return nil
	}
	if bits < 1 {
		bits = 1
	}
	if bits > 32 {
		bits = 32
	}
	if maxIntervals < 1 {
		maxIntervals = 1
	}
	var out []Interval
	var walk func(qx, qy uint64, level uint)
	walk = func(qx, qy uint64, level uint) {
		// Quadrant at `level` spans cells [qx, qx+size-1] × [qy, qy+size-1].
		// 64-bit coordinates avoid overflow at level 32.
		size := uint64(1) << level
		qx1, qy1 := qx+size-1, qy+size-1
		if qx > uint64(x1) || qx1 < uint64(x0) || qy > uint64(y1) || qy1 < uint64(y0) {
			return
		}
		if qx >= uint64(x0) && qx1 <= uint64(x1) && qy >= uint64(y0) && qy1 <= uint64(y1) {
			lo := Encode(uint32(qx), uint32(qy))
			span := uint64(1)<<(2*level) - 1 // wraps to MaxUint64 at level 32, which is exact
			out = append(out, Interval{Lo: lo, Hi: lo + span})
			return
		}
		if level == 0 {
			lo := Encode(uint32(qx), uint32(qy))
			out = append(out, Interval{Lo: lo, Hi: lo})
			return
		}
		half := size >> 1
		// Z-order within a quadrant: (0,0), (1,0), (0,1), (1,1) by code.
		walk(qx, qy, level-1)
		walk(qx+half, qy, level-1)
		walk(qx, qy+half, level-1)
		walk(qx+half, qy+half, level-1)
	}
	walk(0, 0, bits)
	out = mergeAdjacent(out)
	for len(out) > maxIntervals {
		out = coalesceCheapest(out)
	}
	return out
}

// CoverGeoRect covers a geographic rectangle on the grid.
func (g *Grid) CoverGeoRect(lon0, lat0, lon1, lat1 float64, maxIntervals int) []Interval {
	if lon1 < lon0 {
		lon0, lon1 = lon1, lon0
	}
	if lat1 < lat0 {
		lat0, lat1 = lat1, lat0
	}
	x0, y0 := g.Cell(lon0, lat0)
	x1, y1 := g.Cell(lon1, lat1)
	return CoverRect(x0, y0, x1, y1, g.Bits, maxIntervals)
}

// mergeAdjacent merges touching or overlapping intervals; input is in
// ascending z order because the quadtree walk follows z order.
func mergeAdjacent(in []Interval) []Interval {
	if len(in) == 0 {
		return in
	}
	out := in[:1]
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi+1 && last.Hi+1 != 0 { // contiguous (guard overflow)
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// coalesceCheapest merges the pair of adjacent intervals with the smallest
// gap, trading one interval for a little covering slack.
func coalesceCheapest(in []Interval) []Interval {
	if len(in) < 2 {
		return in
	}
	best, bestGap := 0, uint64(1<<63)
	for i := 0; i+1 < len(in); i++ {
		gap := in[i+1].Lo - in[i].Hi
		if gap < bestGap {
			bestGap, best = gap, i
		}
	}
	in[best].Hi = in[best+1].Hi
	return append(in[:best+1], in[best+2:]...)
}
