package zorder

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []struct{ x, y uint32 }{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {123456, 654321}, {1<<32 - 1, 1<<32 - 1},
	}
	for _, c := range cases {
		x, y := Decode(Encode(c.x, c.y))
		if x != c.x || y != c.y {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", c.x, c.y, x, y)
		}
	}
}

func TestEncodeKnownValues(t *testing.T) {
	// Z-order of the 2x2 grid: (0,0)=0, (1,0)=1, (0,1)=2, (1,1)=3.
	want := map[[2]uint32]uint64{
		{0, 0}: 0, {1, 0}: 1, {0, 1}: 2, {1, 1}: 3,
		{2, 0}: 4, {3, 1}: 7, {2, 2}: 12, {3, 3}: 15,
	}
	for xy, z := range want {
		if got := Encode(xy[0], xy[1]); got != z {
			t.Errorf("Encode(%d,%d) = %d, want %d", xy[0], xy[1], got, z)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := Decode(Encode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGridCellMapping(t *testing.T) {
	g := NewGrid(0, 10, 0, 10, 2) // 4x4 cells of width 2.5
	x, y := g.Cell(0, 0)
	if x != 0 || y != 0 {
		t.Errorf("origin cell (%d,%d)", x, y)
	}
	x, y = g.Cell(9.9, 9.9)
	if x != 3 || y != 3 {
		t.Errorf("far corner cell (%d,%d), want (3,3)", x, y)
	}
	// Out-of-range points clamp to border cells.
	x, y = g.Cell(-5, 100)
	if x != 0 || y != 3 {
		t.Errorf("clamped cell (%d,%d), want (0,3)", x, y)
	}
}

func TestGridBitsClamped(t *testing.T) {
	g := NewGrid(0, 1, 0, 1, 99)
	if g.Bits != 32 {
		t.Errorf("bits = %d, want 32", g.Bits)
	}
	g = NewGrid(0, 1, 0, 1, 0)
	if g.Bits != 1 {
		t.Errorf("bits = %d, want 1", g.Bits)
	}
}

func TestCoverRectExactSmall(t *testing.T) {
	// Full 4x4 grid covers as a single interval [0,15].
	ivs := CoverRect(0, 0, 3, 3, 2, 100)
	if len(ivs) != 1 || ivs[0] != (Interval{0, 15}) {
		t.Errorf("full grid cover = %v, want [{0 15}]", ivs)
	}
	// Single cell.
	ivs = CoverRect(2, 1, 2, 1, 2, 100)
	z := Encode(2, 1)
	if len(ivs) != 1 || ivs[0] != (Interval{z, z}) {
		t.Errorf("single cell cover = %v, want [{%d %d}]", ivs, z, z)
	}
}

func TestCoverRectCoversExactly(t *testing.T) {
	// With a generous interval budget, the cover must contain every cell in
	// the rectangle and no cell outside it.
	const bits = 4
	rects := [][4]uint32{{1, 1, 6, 3}, {0, 0, 15, 15}, {5, 5, 5, 9}, {3, 0, 12, 12}}
	for _, r := range rects {
		ivs := CoverRect(r[0], r[1], r[2], r[3], bits, 1<<20)
		in := func(z uint64) bool {
			for _, iv := range ivs {
				if z >= iv.Lo && z <= iv.Hi {
					return true
				}
			}
			return false
		}
		for x := uint32(0); x < 1<<bits; x++ {
			for y := uint32(0); y < 1<<bits; y++ {
				z := Encode(x, y)
				inside := x >= r[0] && x <= r[2] && y >= r[1] && y <= r[3]
				if inside && !in(z) {
					t.Fatalf("rect %v: cell (%d,%d) not covered", r, x, y)
				}
				if !inside && in(z) {
					t.Fatalf("rect %v: cell (%d,%d) covered but outside", r, x, y)
				}
			}
		}
	}
}

func TestCoverRectBudget(t *testing.T) {
	// A thin diagonal-unfriendly rectangle needs many intervals; the budget
	// must cap the count while still covering everything.
	ivs := CoverRect(1, 1, 14, 2, 4, 3)
	if len(ivs) > 3 {
		t.Fatalf("budget exceeded: %d intervals", len(ivs))
	}
	in := func(z uint64) bool {
		for _, iv := range ivs {
			if z >= iv.Lo && z <= iv.Hi {
				return true
			}
		}
		return false
	}
	for x := uint32(1); x <= 14; x++ {
		for y := uint32(1); y <= 2; y++ {
			if !in(Encode(x, y)) {
				t.Fatalf("cell (%d,%d) lost under budget", x, y)
			}
		}
	}
}

func TestCoverRectDegenerate(t *testing.T) {
	if ivs := CoverRect(5, 5, 4, 9, 4, 10); ivs != nil {
		t.Errorf("inverted rect should cover nothing, got %v", ivs)
	}
}

func TestCoverGeoRect(t *testing.T) {
	g := NewGrid(116.0, 117.0, 39.5, 40.5, 8) // Beijing-ish box
	ivs := g.CoverGeoRect(116.3, 39.9, 116.5, 40.1, 16)
	if len(ivs) == 0 || len(ivs) > 16 {
		t.Fatalf("geo cover has %d intervals", len(ivs))
	}
	// Point inside the rect must fall in some interval.
	z := g.Key(116.4, 40.0)
	found := false
	for _, iv := range ivs {
		if z >= iv.Lo && z <= iv.Hi {
			found = true
		}
	}
	if !found {
		t.Error("interior point's z-code not covered")
	}
	// Swapped corners normalize.
	ivs2 := g.CoverGeoRect(116.5, 40.1, 116.3, 39.9, 16)
	if len(ivs2) != len(ivs) {
		t.Errorf("corner order changed cover: %d vs %d", len(ivs2), len(ivs))
	}
}

func TestZOrderLocalityMonotone(t *testing.T) {
	// Within a row of a quadrant-aligned block, z-codes increase with x.
	prev := Encode(0, 0)
	for x := uint32(1); x < 8; x++ {
		z := Encode(x, 0)
		if z <= prev && x%2 == 1 {
			t.Errorf("z not increasing along x at %d", x)
		}
		prev = z
	}
}
