package meta

import (
	"testing"

	"waterwheel/internal/model"
)

func hourRegion(hour int64) model.Region {
	return region(0, 100, hour*HourMillis, hour*HourMillis+HourMillis-1)
}

func TestTierIndexAddRemove(t *testing.T) {
	ti := newTierIndex()
	tr := model.TimeRange{Lo: model.Timestamp(5 * HourMillis), Hi: model.Timestamp(7*HourMillis - 1)}
	ti.add(tr)
	if ti.hours[5] != 1 || ti.hours[6] != 1 {
		t.Fatalf("hours = %v", ti.hours)
	}
	if ti.days[0] != 1 || ti.weeks[0] != 1 {
		t.Fatalf("days=%v weeks=%v", ti.days, ti.weeks)
	}
	ti.remove(tr)
	if len(ti.hours) != 0 || len(ti.days) != 0 || len(ti.weeks) != 0 {
		t.Fatalf("buckets survive removal: h=%v d=%v w=%v", ti.hours, ti.days, ti.weeks)
	}
}

func TestTierIndexWideChunk(t *testing.T) {
	ti := newTierIndex()
	wide := model.TimeRange{Lo: 0, Hi: model.Timestamp((maxTrackedHours + 10) * HourMillis)}
	ti.add(wide)
	if ti.wide != 1 || len(ti.hours) != 0 {
		t.Fatalf("wide=%d hours=%v", ti.wide, ti.hours)
	}
	ti.remove(wide)
	if ti.wide != 0 {
		t.Fatalf("wide=%d after remove", ti.wide)
	}
}

func TestTierIndexMatchHoursSkipsEmptyDays(t *testing.T) {
	ti := newTierIndex()
	// Data only in hour 9 of day 0 and hour 9 of day 6.
	ti.add(model.TimeRange{Lo: model.Timestamp(9 * HourMillis), Hi: model.Timestamp(10*HourMillis - 1)})
	day6 := 6 * DayMillis
	ti.add(model.TimeRange{Lo: model.Timestamp(day6 + 9*HourMillis), Hi: model.Timestamp(day6 + 10*HourMillis - 1)})
	// One window spanning the whole seven days.
	got := make(map[int64]struct{})
	ti.matchHours([]model.TimeRange{{Lo: 0, Hi: model.Timestamp(7*DayMillis - 1)}}, got)
	if len(got) != 2 {
		t.Fatalf("matched %v, want the two populated hours", got)
	}
	if _, ok := got[9]; !ok {
		t.Fatal("day-0 hour missing")
	}
	if _, ok := got[6*24+9]; !ok {
		t.Fatal("day-6 hour missing")
	}
}

func TestChunksForWindowsPrunes(t *testing.T) {
	s := NewServer(1)
	// One chunk per hour across three days.
	for h := int64(0); h < 72; h++ {
		s.RegisterChunk(ChunkInfo{Region: hourRegion(h), Server: 0})
	}
	full := model.Region{Keys: model.FullKeyRange(), Times: model.TimeRange{Lo: 0, Hi: model.Timestamp(72*HourMillis - 1)}}
	// Daily window 09:00–17:00: hours 9..16 of each day qualify.
	rc := &model.Recurrence{PeriodMillis: DayMillis, StartMillis: 9 * HourMillis, LengthMillis: 8 * HourMillis}
	windows := rc.Windows(full.Times)
	if len(windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(windows))
	}
	chunks, pruned, _ := s.ChunksForWindowsWithWatermark(full, windows)
	if len(chunks) != 24 {
		t.Fatalf("kept %d chunks, want 24 (8 hours × 3 days)", len(chunks))
	}
	if pruned != 48 {
		t.Fatalf("pruned %d, want 48", pruned)
	}
	// Everything kept must intersect some window.
	for _, ci := range chunks {
		hit := false
		for _, w := range windows {
			if ci.Region.Times.Lo <= w.Hi && w.Lo <= ci.Region.Times.Hi {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("kept chunk %v intersects no window", ci.Region.Times)
		}
	}
}

func TestChunksForWindowsKeepsWideChunks(t *testing.T) {
	s := NewServer(1)
	wide := region(0, 100, 0, (maxTrackedHours+10)*HourMillis)
	s.RegisterChunk(ChunkInfo{Region: wide, Server: 0})
	full := model.Region{Keys: model.FullKeyRange(), Times: model.FullTimeRange()}
	windows := []model.TimeRange{{Lo: 9 * model.Timestamp(HourMillis), Hi: 10*model.Timestamp(HourMillis) - 1}}
	chunks, pruned, _ := s.ChunksForWindowsWithWatermark(full, windows)
	if len(chunks) != 1 || pruned != 0 {
		t.Fatalf("wide chunk pruned: kept=%d pruned=%d", len(chunks), pruned)
	}
}

func TestSetTierAndCounts(t *testing.T) {
	s := NewServer(1)
	a := s.RegisterChunk(ChunkInfo{Region: hourRegion(0)})
	b := s.RegisterChunk(ChunkInfo{Region: hourRegion(1)})
	if got := s.TierCounts(); got != [3]int{2, 0, 0} {
		t.Fatalf("counts = %v", got)
	}
	if !s.SetTier(a.ID, TierWarm) || !s.SetTier(b.ID, TierCold) {
		t.Fatal("SetTier failed on registered chunks")
	}
	if got := s.TierCounts(); got != [3]int{0, 1, 1} {
		t.Fatalf("counts = %v", got)
	}
	if s.SetTier(model.ChunkID(999), TierCold) {
		t.Fatal("SetTier succeeded on unknown chunk")
	}
	if got, _ := s.Chunk(b.ID); got.Tier != TierCold {
		t.Fatalf("tier not persisted: %+v", got)
	}
}

func TestMaxTimeAdvances(t *testing.T) {
	s := NewServer(1)
	if s.MaxTime() != 0 {
		t.Fatal("fresh server has a max time")
	}
	s.RegisterChunk(ChunkInfo{Region: region(0, 1, 0, 5000)})
	s.RegisterChunk(ChunkInfo{Region: region(0, 1, 0, 2000)}) // late, lower
	if s.MaxTime() != 5000 {
		t.Fatalf("MaxTime = %d", s.MaxTime())
	}
}

func TestReplaceChunksAtomic(t *testing.T) {
	s := NewServer(1)
	a := s.RegisterChunk(ChunkInfo{Region: hourRegion(0), Path: "a"})
	b := s.RegisterChunk(ChunkInfo{Region: hourRegion(1), Path: "b"})
	out := ChunkInfo{Region: region(0, 100, 0, 2*HourMillis-1), Path: "merged", Tier: TierCold, Downsampled: true}
	registered, dropped, ok := s.ReplaceChunks([]ChunkInfo{out}, []model.ChunkID{a.ID, b.ID})
	if !ok || len(registered) != 1 || len(dropped) != 2 {
		t.Fatalf("swap: ok=%v reg=%d drop=%d", ok, len(registered), len(dropped))
	}
	if s.ChunkCount() != 1 {
		t.Fatalf("chunk count = %d", s.ChunkCount())
	}
	if _, found := s.Chunk(a.ID); found {
		t.Fatal("input chunk survives the swap")
	}
	got, found := s.Chunk(registered[0].ID)
	if !found || !got.Downsampled || got.Path != "merged" {
		t.Fatalf("output = %+v found=%v", got, found)
	}
	// Missing input: no change at all.
	_, _, ok = s.ReplaceChunks([]ChunkInfo{{Region: hourRegion(5)}}, []model.ChunkID{a.ID})
	if ok {
		t.Fatal("swap with missing input succeeded")
	}
	if s.ChunkCount() != 1 {
		t.Fatalf("failed swap changed state: %d chunks", s.ChunkCount())
	}
}

func TestQueryHorizonAndOldestActive(t *testing.T) {
	s := NewServer(1)
	if s.OldestActiveQuery() != ^uint64(0) {
		t.Fatal("idle server has an active query")
	}
	q1 := s.RegisterQuery(model.Query{})
	q2 := s.RegisterQuery(model.Query{})
	if s.QueryHorizon() != q2.ID {
		t.Fatalf("horizon = %d, want %d", s.QueryHorizon(), q2.ID)
	}
	if s.OldestActiveQuery() != q1.ID {
		t.Fatalf("oldest = %d, want %d", s.OldestActiveQuery(), q1.ID)
	}
	s.CompleteQuery(q1.ID)
	if s.OldestActiveQuery() != q2.ID {
		t.Fatalf("oldest after completion = %d, want %d", s.OldestActiveQuery(), q2.ID)
	}
	s.CompleteQuery(q2.ID)
	if s.OldestActiveQuery() != ^uint64(0) {
		t.Fatal("queries still active after completion")
	}
}

func TestTiersSurviveSnapshotRestore(t *testing.T) {
	s := NewServer(1)
	a := s.RegisterChunk(ChunkInfo{Region: hourRegion(9), Path: "a"})
	s.SetTier(a.ID, TierCold)
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Restore(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.TierCounts(); got != [3]int{0, 0, 1} {
		t.Fatalf("restored counts = %v", got)
	}
	if s2.MaxTime() != model.Timestamp(10*HourMillis-1) {
		t.Fatalf("restored MaxTime = %d", s2.MaxTime())
	}
	// The rebuilt hierarchy prunes like the original.
	full := model.Region{Keys: model.FullKeyRange(), Times: model.FullTimeRange()}
	chunks, _, _ := s2.ChunksForWindowsWithWatermark(full,
		[]model.TimeRange{{Lo: model.Timestamp(9 * HourMillis), Hi: model.Timestamp(10*HourMillis - 1)}})
	if len(chunks) != 1 {
		t.Fatalf("restored hierarchy lost the chunk: %d", len(chunks))
	}
}
