// Hierarchical time tiering over chunk metadata (ROADMAP item 5, in the
// spirit of Timehash's hierarchical time index). Two pieces live here:
//
//   - Tier labels on ChunkInfo (hot → warm → cold): retention demotes
//     chunks through the tiers by age instead of deleting them outright;
//     only the coldest tier is ever compacted or dropped.
//
//   - A coarse hour → day → week bucket hierarchy counting how many chunk
//     regions intersect each time bucket. The coordinator consults it to
//     prune whole buckets of a recurring-window query (e.g. "09:00–17:00
//     daily") before touching the R-tree candidates: a chunk whose hour
//     buckets never meet a window's hour buckets cannot contribute.
//
// The bucket test is hour-granular and therefore a superset of the exact
// window intersection — false positives cost a header read, false
// negatives are impossible because buckets fully tile both the windows
// and the chunk spans. Chunks spanning more hours than maxTrackedHours
// (hand-registered extreme regions) are counted in a "wide" bucket that
// defeats pruning for them but keeps the index small.
package meta

import (
	"sort"

	"waterwheel/internal/model"
)

// Retention tiers, coldest last.
const (
	TierHot = iota
	TierWarm
	TierCold
)

// Bucket widths of the time hierarchy, in milliseconds.
const (
	HourMillis int64 = 3_600_000
	DayMillis        = 24 * HourMillis
	WeekMillis       = 7 * DayMillis
)

// maxTrackedHours bounds the hour buckets one chunk contributes to the
// hierarchy; wider chunks fall back to the always-matching wide count.
const maxTrackedHours = 1 << 14

// floorDivMs is integer division rounding toward negative infinity.
func floorDivMs(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// tierIndex is the hour → day → week bucket hierarchy. Keys are bucket
// indexes (timestamp floor-divided by the bucket width); values count the
// chunk regions intersecting the bucket.
type tierIndex struct {
	hours map[int64]int
	days  map[int64]int
	weeks map[int64]int
	// wide counts chunks too wide to track per-hour; they match every
	// window.
	wide int
	// minHour/maxHour clamp hierarchy walks to the span ever registered.
	// They never shrink on removal — stale slack only costs iteration.
	minHour, maxHour int64
	tracked          int
}

func newTierIndex() *tierIndex {
	return &tierIndex{
		hours: make(map[int64]int),
		days:  make(map[int64]int),
		weeks: make(map[int64]int),
	}
}

// span returns the hour-bucket span of a time range and whether it is
// narrow enough to track per-bucket.
func (t *tierIndex) span(tr model.TimeRange) (hLo, hHi int64, tracked bool) {
	hLo = floorDivMs(int64(tr.Lo), HourMillis)
	hHi = floorDivMs(int64(tr.Hi), HourMillis)
	return hLo, hHi, hHi-hLo+1 <= maxTrackedHours
}

func (t *tierIndex) add(tr model.TimeRange) {
	hLo, hHi, tracked := t.span(tr)
	if !tracked {
		t.wide++
		return
	}
	if t.tracked == 0 || hLo < t.minHour {
		t.minHour = hLo
	}
	if t.tracked == 0 || hHi > t.maxHour {
		t.maxHour = hHi
	}
	t.tracked++
	for h := hLo; h <= hHi; h++ {
		t.hours[h]++
	}
	for d := floorDivMs(int64(tr.Lo), DayMillis); d <= floorDivMs(int64(tr.Hi), DayMillis); d++ {
		t.days[d]++
	}
	for w := floorDivMs(int64(tr.Lo), WeekMillis); w <= floorDivMs(int64(tr.Hi), WeekMillis); w++ {
		t.weeks[w]++
	}
}

func (t *tierIndex) remove(tr model.TimeRange) {
	hLo, hHi, tracked := t.span(tr)
	if !tracked {
		if t.wide > 0 {
			t.wide--
		}
		return
	}
	t.tracked--
	dec := func(m map[int64]int, k int64) {
		if m[k] <= 1 {
			delete(m, k)
		} else {
			m[k]--
		}
	}
	for h := hLo; h <= hHi; h++ {
		dec(t.hours, h)
	}
	for d := floorDivMs(int64(tr.Lo), DayMillis); d <= floorDivMs(int64(tr.Hi), DayMillis); d++ {
		dec(t.days, d)
	}
	for w := floorDivMs(int64(tr.Lo), WeekMillis); w <= floorDivMs(int64(tr.Hi), WeekMillis); w++ {
		dec(t.weeks, w)
	}
}

// matchHours collects the non-empty hour buckets intersecting the windows
// into dst, walking the hierarchy top-down so empty weeks and days are
// skipped in one step each.
func (t *tierIndex) matchHours(windows []model.TimeRange, dst map[int64]struct{}) {
	if t.tracked == 0 {
		return
	}
	const hoursPerDay = DayMillis / HourMillis
	const hoursPerWeek = WeekMillis / HourMillis
	for _, w := range windows {
		hLo, hHi, _ := t.span(w)
		if hLo < t.minHour {
			hLo = t.minHour
		}
		if hHi > t.maxHour {
			hHi = t.maxHour
		}
		for h := hLo; h <= hHi; {
			if wk := floorDivMs(h, hoursPerWeek); t.weeks[wk] == 0 {
				h = (wk + 1) * hoursPerWeek
				continue
			}
			if d := floorDivMs(h, hoursPerDay); t.days[d] == 0 {
				h = (d + 1) * hoursPerDay
				continue
			}
			if t.hours[h] > 0 {
				dst[h] = struct{}{}
			}
			h++
		}
	}
}

// trackLocked indexes a registered chunk in the bucket hierarchy and
// advances the max-time clock. Requires mu.
func (s *Server) trackLocked(info ChunkInfo) {
	s.tiers.add(info.Region.Times)
	if info.Region.Times.Hi > s.maxTime {
		s.maxTime = info.Region.Times.Hi
	}
}

// SetTier relabels a chunk's retention tier. Returns false for unknown
// chunks.
func (s *Server) SetTier(id model.ChunkID, tier int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.chunks[id]
	if !ok {
		return false
	}
	info.Tier = tier
	s.chunks[id] = info
	return true
}

// TierCounts returns the number of chunks per retention tier.
func (s *Server) TierCounts() [3]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out [3]int
	for _, c := range s.chunks {
		t := c.Tier
		if t < TierHot || t > TierCold {
			t = TierHot
		}
		out[t]++
	}
	return out
}

// MaxTime returns the largest Region.Times.Hi ever registered — the
// compactor's notion of "now", so tier ages follow the data stream
// rather than the wall clock. Zero before any chunk registers.
func (s *Server) MaxTime() model.Timestamp {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maxTime
}

// QueryHorizon returns the last query ID assigned. Every query planned
// before now has ID <= QueryHorizon(); the drain-safe retirement path
// captures this at drop time and defers the file delete until
// OldestActiveQuery has passed it.
func (s *Server) QueryHorizon() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextQuery
}

// OldestActiveQuery returns the smallest active query ID, or MaxUint64
// when no query is running.
func (s *Server) OldestActiveQuery() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	min := ^uint64(0)
	for id := range s.queries {
		if id < min {
			min = id
		}
	}
	return min
}

// ReplaceChunks atomically swaps a set of input chunks for their
// compacted outputs: in one critical section the inputs are verified and
// dropped, and the outputs registered with fresh IDs. A concurrent
// ChunksForWithWatermark sees either every input or every output, never
// a mix, so no query plan can double-count or miss the region. Returns
// the registered outputs, the dropped input infos (the caller retires
// their files), and false — with no change — if any input is missing.
func (s *Server) ReplaceChunks(outs []ChunkInfo, ins []model.ChunkID) (registered, dropped []ChunkInfo, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped = make([]ChunkInfo, len(ins))
	for i, id := range ins {
		info, found := s.chunks[id]
		if !found {
			return nil, nil, false
		}
		dropped[i] = info
	}
	for _, info := range dropped {
		delete(s.chunks, info.ID)
		id := info.ID
		s.regions.Delete(info.Region, func(v any) bool { return v.(model.ChunkID) == id })
		s.tiers.remove(info.Region.Times)
	}
	registered = make([]ChunkInfo, len(outs))
	for i, info := range outs {
		s.nextChunk++
		info.ID = model.ChunkID(s.nextChunk)
		s.chunks[info.ID] = info
		s.regions.Insert(info.Region, info.ID)
		s.trackLocked(info)
		registered[i] = info
	}
	return registered, dropped, true
}

// ChunksForWindowsWithWatermark is ChunksForWithWatermark restricted to a
// set of time windows inside r: the bucket hierarchy is consulted first,
// and R-tree candidates whose hour buckets meet no window are pruned
// without ever reading their headers. pruned counts the candidates
// eliminated at the bucket level — the waterwheel_tier_pruned_chunks_total
// feed. The windows must lie within r.Times; chunks too wide for the
// hierarchy are never pruned.
func (s *Server) ChunksForWindowsWithWatermark(r model.Region, windows []model.TimeRange) (chunks []ChunkInfo, pruned int, watermark uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	matched := make(map[int64]struct{})
	s.tiers.matchHours(windows, matched)
	ids := s.regions.Search(r)
	out := make([]ChunkInfo, 0, len(ids))
	for _, v := range ids {
		info := s.chunks[v.(model.ChunkID)]
		hLo, hHi, tracked := s.tiers.span(info.Region.Times)
		keep := !tracked
		for h := hLo; tracked && h <= hHi; h++ {
			if _, hit := matched[h]; hit {
				keep = true
				break
			}
		}
		if keep {
			out = append(out, info)
		} else {
			pruned++
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, pruned, s.nextChunk + 1
}
