package meta

import (
	"errors"
	"fmt"

	"waterwheel/internal/model"
)

// ErrFenced is returned by the epoch-guarded registration APIs when the
// caller's ownership epoch is stale: ownership of the slot has been
// transferred since the caller last held it, and its writes must not
// reach the chunk registry or the replay offsets.
var ErrFenced = errors.New("meta: ownership epoch fenced")

// Epoch returns the current ownership epoch of a slot. Epochs start at 1
// and bump on every TransferOwnership; an indexing-server incarnation
// records the epoch it was built under and is fenced once it lags.
func (s *Server) Epoch(server int) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if server < 0 || server >= len(s.epochs) {
		return 0
	}
	return s.epochs[server]
}

// HandoffOffset returns the WAL offset recorded at the slot's last
// ownership transfer — where the incoming owner resumed replay.
func (s *Server) HandoffOffset(server int) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if server < 0 || server >= len(s.handoffs) {
		return 0
	}
	return s.handoffs[server]
}

// TransferOwnership is the atomic ownership flip of a region handoff (and
// equally the claim a crash replacement makes before replaying): in one
// critical section it bumps the slot's fencing epoch, records the WAL
// handoff offset, and reads the slot's nominal key interval. After it
// returns, any flush the deposed incarnation still has in flight fails
// with ErrFenced, so the metadata the new owner starts from cannot change
// under it.
func (s *Server) TransferOwnership(server int, handoffOff int64) (int64, model.KeyRange, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if server < 0 || server >= len(s.epochs) {
		return 0, model.KeyRange{}, fmt.Errorf("meta: transfer ownership: no slot %d", server)
	}
	s.epochs[server]++
	s.handoffs[server] = handoffOff
	return s.epochs[server], s.schema.IntervalOf(server), nil
}

// RegisterFlushOwned registers a flush unit's chunks and advances the
// slot's replay offset in one epoch-guarded critical section. The two
// must move together: if an ownership transfer could land between the
// chunk registration and the offset commit, the incoming owner would
// replay records that are already in a registered chunk and duplicate
// them. The offset only moves forward; a stale epoch rejects the whole
// unit with ErrFenced and registers nothing.
func (s *Server) RegisterFlushOwned(server int, epoch int64, infos []ChunkInfo, off int64) ([]ChunkInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if server < 0 || server >= len(s.epochs) {
		return nil, fmt.Errorf("meta: register flush: no slot %d", server)
	}
	if epoch != s.epochs[server] {
		return nil, ErrFenced
	}
	out := make([]ChunkInfo, len(infos))
	for i, info := range infos {
		s.nextChunk++
		info.ID = model.ChunkID(s.nextChunk)
		s.chunks[info.ID] = info
		s.regions.Insert(info.Region, info.ID)
		s.trackLocked(info)
		out[i] = info
	}
	if off > s.offsets[server] {
		s.offsets[server] = off
	}
	return out, nil
}

// SetOffsetOwned is the epoch-guarded form of SetOffset.
func (s *Server) SetOffsetOwned(server int, epoch int64, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if server < 0 || server >= len(s.epochs) {
		return fmt.Errorf("meta: set offset: no slot %d", server)
	}
	if epoch != s.epochs[server] {
		return ErrFenced
	}
	if off > s.offsets[server] {
		s.offsets[server] = off
	}
	return nil
}

// AddServer allocates a new slot by splitting an active slot's interval
// at key `at`: splitFrom keeps [lo, at-1] and the new slot owns [at, hi].
// The new slot's id equals the previous total slot count (slot i <-> WAL
// partition i, so the caller must grow the log in step). Returns the new
// schema and the new slot id.
func (s *Server) AddServer(splitFrom int, at model.Key) (PartitionSchema, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.schema.slotIndex(splitFrom)
	if j < 0 {
		return PartitionSchema{}, 0, fmt.Errorf("meta: add server: slot %d not active", splitFrom)
	}
	kr := s.schema.IntervalOf(splitFrom)
	if at <= kr.Lo || at > kr.Hi {
		return PartitionSchema{}, 0, fmt.Errorf("meta: add server: split key %d outside (%d, %d]", at, kr.Lo, kr.Hi)
	}
	id := s.schema.Servers
	slots := s.schema.ActiveSlots()
	slots = append(slots, 0)
	copy(slots[j+2:], slots[j+1:])
	slots[j+1] = id
	bounds := append([]model.Key(nil), s.schema.Bounds...)
	bounds = append(bounds, 0)
	copy(bounds[j+1:], bounds[j:])
	bounds[j] = at
	s.schema = PartitionSchema{
		Version: s.schema.Version + 1,
		Servers: id + 1,
		Slots:   slots,
		Bounds:  bounds,
	}
	s.offsets = append(s.offsets, 0)
	s.epochs = append(s.epochs, 1)
	s.handoffs = append(s.handoffs, 0)
	s.actual = append(s.actual, s.schema.IntervalOf(id))
	s.live = append(s.live, LiveRegion{Server: id, Keys: s.actual[id], Empty: true})
	// splitFrom's nominal interval shrank, but its actual interval stays
	// wide: the slot may hold buffered tuples from the old interval — or
	// acked WAL backlog it has not consumed yet, which its live region
	// cannot reflect — so narrowing here would hide them from queries
	// (§III-D). The slot's next ReportLive shrinks the actual interval to
	// nominal ∪ its measured in-memory key box.
	return clonedSchema(s.schema), id, nil
}

// RemoveServer retires an active slot, merging its key interval into a
// neighbor (the left one when it exists, else the right). The slot's
// actual interval and live region are left untouched: the outgoing server
// still holds buffered tuples it must flush, and its region stays
// queryable until it reports its memtable drained. The epoch is not
// bumped here — the caller fences the slot with TransferOwnership after
// the final flush so the retiring server can register it.
func (s *Server) RemoveServer(server int) (PartitionSchema, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.schema.slotIndex(server)
	if j < 0 {
		return PartitionSchema{}, fmt.Errorf("meta: remove server: slot %d not active", server)
	}
	slots := s.schema.ActiveSlots()
	if len(slots) < 2 {
		return PartitionSchema{}, fmt.Errorf("meta: remove server: slot %d is the last active slot", server)
	}
	slots = append(slots[:j], slots[j+1:]...)
	bounds := append([]model.Key(nil), s.schema.Bounds...)
	if j > 0 {
		// Merge into the left neighbor: drop the separator below us.
		bounds = append(bounds[:j-1], bounds[j:]...)
	} else {
		// Leftmost slot: the right neighbor absorbs the interval.
		bounds = bounds[1:]
	}
	s.schema = PartitionSchema{
		Version: s.schema.Version + 1,
		Servers: s.schema.Servers,
		Slots:   slots,
		Bounds:  bounds,
	}
	// The absorbing neighbors' nominal intervals grew; widen their
	// actual intervals the same way SetSchema does (never snap here —
	// the Empty flag may be stale against acked WAL backlog).
	for _, id := range slots {
		nom := s.schema.IntervalOf(id)
		if nom.Lo < s.actual[id].Lo {
			s.actual[id].Lo = nom.Lo
		}
		if nom.Hi > s.actual[id].Hi {
			s.actual[id].Hi = nom.Hi
		}
		s.live[id].Keys = s.actual[id]
	}
	return clonedSchema(s.schema), nil
}
