package meta

import (
	"testing"

	"waterwheel/internal/model"
)

func region(k0, k1 uint64, t0, t1 int64) model.Region {
	return model.Region{
		Keys:  model.KeyRange{Lo: model.Key(k0), Hi: model.Key(k1)},
		Times: model.TimeRange{Lo: model.Timestamp(t0), Hi: model.Timestamp(t1)},
	}
}

func TestEvenSchemaRouting(t *testing.T) {
	s := EvenSchema(4)
	if s.Servers != 4 || len(s.Bounds) != 3 {
		t.Fatalf("schema %+v", s)
	}
	// Intervals tile the domain without gaps or overlaps.
	for i := 0; i < 4; i++ {
		iv := s.IntervalOf(i)
		if s.ServerFor(iv.Lo) != i || s.ServerFor(iv.Hi) != i {
			t.Errorf("server %d interval %v routes to %d/%d", i, iv, s.ServerFor(iv.Lo), s.ServerFor(iv.Hi))
		}
	}
	if s.IntervalOf(0).Lo != 0 || s.IntervalOf(3).Hi != model.MaxKey {
		t.Error("outer intervals don't reach domain edges")
	}
	if s.IntervalOf(0).Hi+1 != s.IntervalOf(1).Lo {
		t.Error("adjacent intervals not contiguous")
	}
}

func TestEvenSchemaSingleServer(t *testing.T) {
	s := EvenSchema(1)
	if s.IntervalOf(0) != model.FullKeyRange() {
		t.Errorf("single server interval = %v", s.IntervalOf(0))
	}
	if s.ServerFor(12345) != 0 {
		t.Error("routing broken")
	}
}

func TestSetSchemaValidation(t *testing.T) {
	srv := NewServer(3)
	if _, err := srv.SetSchema([]model.Key{100}); err == nil {
		t.Error("wrong bound count accepted")
	}
	if _, err := srv.SetSchema([]model.Key{200, 100}); err == nil {
		t.Error("descending bounds accepted")
	}
	sc, err := srv.SetSchema([]model.Key{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Version != 2 {
		t.Errorf("version = %d, want 2", sc.Version)
	}
}

func TestRepartitionWidensActualIntervals(t *testing.T) {
	// Mirrors the paper's Figure 4 walkthrough: I1 owns (0,180], I2
	// (180,300]; repartition to 150 moves keys (150,180] to I2. Before I1
	// flushes, both servers' actual intervals cover the overlap.
	srv := NewServer(2)
	srv.SetSchema([]model.Key{180})
	// Both servers hold data spanning their whole current interval.
	srv.ReportLive(0, 1000, srv.Actual(0), false)
	srv.ReportLive(1, 1000, srv.Actual(1), false)
	srv.SetSchema([]model.Key{150})

	a0, a1 := srv.Actual(0), srv.Actual(1)
	if a0.Hi < 179 {
		t.Errorf("server 0 actual %v lost its buffered (150,180] tuples", a0)
	}
	if a1.Lo > 150 {
		t.Errorf("server 1 actual %v does not cover new nominal start", a1)
	}
	if !a0.Overlaps(a1) {
		t.Error("actual intervals should overlap right after repartition")
	}
	// After server 0 flushes (memtable empty), its actual snaps to nominal.
	srv.ReportLive(0, 2000, model.KeyRange{}, true)
	a0 = srv.Actual(0)
	if a0.Hi != 149 {
		t.Errorf("post-flush actual %v, want Hi=149", a0)
	}
}

func TestChunkRegistryAndSearch(t *testing.T) {
	srv := NewServer(2)
	c1 := srv.RegisterChunk(ChunkInfo{Path: "c1", Region: region(0, 100, 0, 10), Count: 5})
	c2 := srv.RegisterChunk(ChunkInfo{Path: "c2", Region: region(200, 300, 0, 10), Count: 7})
	if c1.ID == 0 || c2.ID == 0 || c1.ID == c2.ID {
		t.Fatalf("ids %d, %d", c1.ID, c2.ID)
	}
	got, ok := srv.Chunk(c1.ID)
	if !ok || got.Path != "c1" {
		t.Fatalf("Chunk = %+v, %v", got, ok)
	}
	hits := srv.ChunksFor(region(50, 250, 5, 6))
	if len(hits) != 2 {
		t.Fatalf("ChunksFor = %d chunks", len(hits))
	}
	hits = srv.ChunksFor(region(50, 60, 5, 6))
	if len(hits) != 1 || hits[0].Path != "c1" {
		t.Fatalf("narrow ChunksFor = %+v", hits)
	}
	hits = srv.ChunksFor(region(50, 250, 50, 60))
	if len(hits) != 0 {
		t.Fatalf("time-disjoint ChunksFor = %+v", hits)
	}
	if srv.ChunkCount() != 2 {
		t.Errorf("count = %d", srv.ChunkCount())
	}
	if !srv.DropChunk(c1.ID) || srv.DropChunk(c1.ID) {
		t.Error("DropChunk semantics wrong")
	}
	if len(srv.ChunksFor(region(0, 1000, 0, 100))) != 1 {
		t.Error("dropped chunk still searchable")
	}
}

func TestLiveRegions(t *testing.T) {
	srv := NewServer(2)
	lr := srv.LiveRegions()
	if len(lr) != 2 || !lr[0].Empty {
		t.Fatalf("initial live regions %+v", lr)
	}
	srv.ReportLive(0, 5000, srv.Actual(0), false)
	lr = srv.LiveRegions()
	if lr[0].Empty || lr[0].MinTime != 5000 {
		t.Errorf("live region %+v", lr[0])
	}
	srv.ReportLive(99, 0, model.KeyRange{}, false) // out of range: ignored
}

func TestOffsets(t *testing.T) {
	srv := NewServer(3)
	srv.SetOffset(1, 4242)
	if srv.Offset(1) != 4242 || srv.Offset(0) != 0 {
		t.Error("offset storage broken")
	}
	if srv.Offset(-1) != 0 || srv.Offset(99) != 0 {
		t.Error("out-of-range offsets should read 0")
	}
}

func TestQueryRegistry(t *testing.T) {
	srv := NewServer(1)
	q1 := srv.RegisterQuery(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	q2 := srv.RegisterQuery(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if q1.ID == q2.ID || q1.ID == 0 {
		t.Fatalf("ids %d, %d", q1.ID, q2.ID)
	}
	if got := srv.ActiveQueries(); len(got) != 2 {
		t.Fatalf("active = %d", len(got))
	}
	srv.CompleteQuery(q1.ID)
	got := srv.ActiveQueries()
	if len(got) != 1 || got[0].ID != q2.ID {
		t.Fatalf("after complete: %+v", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	srv := NewServer(3)
	srv.SetSchema([]model.Key{1000, 2000})
	srv.ReportLive(1, 777, srv.Actual(1), false)
	c := srv.RegisterChunk(ChunkInfo{Path: "p", Region: region(0, 10, 0, 10), Count: 3, Size: 99, Server: 1})
	srv.SetOffset(2, 555)
	q := srv.RegisterQuery(model.Query{Keys: model.KeyRange{Lo: 1, Hi: 2}, Times: model.TimeRange{Lo: 3, Hi: 4}})

	data, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema().Version != srv.Schema().Version || len(got.Schema().Bounds) != 2 {
		t.Errorf("schema mismatch: %+v", got.Schema())
	}
	if got.Offset(2) != 555 {
		t.Errorf("offset lost")
	}
	if gc, ok := got.Chunk(c.ID); !ok || gc.Path != "p" || gc.Size != 99 {
		t.Errorf("chunk lost: %+v %v", gc, ok)
	}
	if hits := got.ChunksFor(region(5, 6, 5, 6)); len(hits) != 1 {
		t.Errorf("restored R-tree broken: %d hits", len(hits))
	}
	if aq := got.ActiveQueries(); len(aq) != 1 || aq[0].ID != q.ID {
		t.Errorf("queries lost: %+v", aq)
	}
	if lr := got.LiveRegions(); lr[1].MinTime != 777 {
		t.Errorf("live regions lost: %+v", lr)
	}
	// IDs keep increasing after restore.
	c2 := got.RegisterChunk(ChunkInfo{Path: "p2", Region: region(0, 1, 0, 1)})
	if c2.ID <= c.ID {
		t.Errorf("chunk id reused: %d <= %d", c2.ID, c.ID)
	}
}
