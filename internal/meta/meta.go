// Package meta implements Waterwheel's metadata server (paper §II-B). It
// maintains the states of the system: the global key-partitioning schema of
// the dispatchers (including the *actual*, possibly overlapping key
// intervals right after a repartition, §III-D), the property information of
// every flushed data chunk (indexed by an R-tree for query decomposition,
// §IV-A), the live in-memory regions of the indexing servers, the WAL read
// offsets recorded at each flush (§V), and the registry of running queries
// used for coordinator failover.
//
// Durability stands in for ZooKeeper: Snapshot/Restore round-trips the
// whole state through a gob encoding.
package meta

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"waterwheel/internal/model"
	"waterwheel/internal/rtree"
)

// ChunkInfo is the metadata of one flushed data chunk.
type ChunkInfo struct {
	ID model.ChunkID
	// Path is the file name in the distributed file system.
	Path string
	// Region is the key×time rectangle the chunk covers. Regions of chunks
	// written right after a key repartition may overlap (§III-D), as may
	// chunks containing late tuples (§IV-D).
	Region model.Region
	// Count is the number of tuples.
	Count int
	// Size is the chunk size in bytes.
	Size int64
	// HeaderLen is the chunk's header-block length, letting query servers
	// fetch exactly the header (the cacheable "template" unit) in one read.
	HeaderLen int
	// Server is the indexing server that produced the chunk.
	Server int
	// Format is the chunk's on-disk format version (chunk.FormatV1/V2).
	Format int
	// Agg, when present, summarizes the chunk's designated payload field —
	// the coordinator answers aggregate queries over fully covered chunks
	// from it without issuing a subquery.
	Agg *model.ChunkAgg
	// Tier is the chunk's retention tier (TierHot/TierWarm/TierCold). New
	// chunks start hot; the compactor demotes them by age behind the
	// newest registered data. Old snapshots decode to TierHot.
	Tier int
	// Downsampled marks a compactor output: its rows are the per-leaf
	// pre-aggregate buckets of the retired inputs, not raw tuples.
	Downsampled bool
}

// PartitionSchema is the global key partitioning. Slot ids are stable for
// the lifetime of the cluster (slot i <-> WAL partition i), but the set of
// *active* slots changes as servers are added and decommissioned: the
// active slots, listed in ascending key order in Slots, own consecutive
// key intervals separated by Bounds. A nil Slots means every slot
// 0..Servers-1 is active in id order (the static-cluster layout every
// schema had before elastic scale-out).
type PartitionSchema struct {
	// Version increases with every repartition.
	Version int64
	// Servers is the total number of slots ever allocated, active or not.
	Servers int
	// Slots lists the active slot ids in ascending key order. nil means
	// the identity layout over [0, Servers).
	Slots []int
	// Bounds has ActiveCount()-1 separator keys, ascending: the j-th
	// active slot owns [Bounds[j-1], Bounds[j]) with the outermost
	// intervals extended to the domain edges.
	Bounds []model.Key
}

// ActiveCount returns the number of active slots.
func (s PartitionSchema) ActiveCount() int {
	if s.Slots == nil {
		return s.Servers
	}
	return len(s.Slots)
}

// ActiveSlots returns the active slot ids in ascending key order.
func (s PartitionSchema) ActiveSlots() []int {
	if s.Slots != nil {
		return append([]int(nil), s.Slots...)
	}
	out := make([]int, s.Servers)
	for i := range out {
		out[i] = i
	}
	return out
}

// Active reports whether slot i currently owns a key interval.
func (s PartitionSchema) Active(i int) bool {
	return s.slotIndex(i) >= 0
}

// slotIndex returns slot i's position in key order, or -1 if retired.
func (s PartitionSchema) slotIndex(i int) int {
	if s.Slots == nil {
		if i >= 0 && i < s.Servers {
			return i
		}
		return -1
	}
	for j, id := range s.Slots {
		if id == i {
			return j
		}
	}
	return -1
}

// PositionFor returns the key-order position of the active slot owning k.
func (s PartitionSchema) PositionFor(k model.Key) int {
	return sort.Search(len(s.Bounds), func(i int) bool { return k < s.Bounds[i] })
}

// ServerFor returns the indexing server (slot id) owning key k.
func (s PartitionSchema) ServerFor(k model.Key) int {
	j := s.PositionFor(k)
	if s.Slots == nil {
		return j
	}
	return s.Slots[j]
}

// IntervalOf returns the nominal key interval of slot i. A retired slot
// owns nothing and gets an empty (inverted) range.
func (s PartitionSchema) IntervalOf(i int) model.KeyRange {
	j := s.slotIndex(i)
	if j < 0 {
		return model.KeyRange{Lo: 1, Hi: 0}
	}
	kr := model.FullKeyRange()
	if j > 0 {
		kr.Lo = s.Bounds[j-1]
	}
	if j < len(s.Bounds) {
		kr.Hi = s.Bounds[j] - 1
	}
	return kr
}

// EvenSchema builds the initial schema dividing the full key domain evenly.
func EvenSchema(servers int) PartitionSchema {
	if servers < 1 {
		servers = 1
	}
	s := PartitionSchema{Version: 1, Servers: servers}
	step := ^uint64(0)/uint64(servers) + 1
	for i := 1; i < servers; i++ {
		s.Bounds = append(s.Bounds, model.Key(uint64(i)*step))
	}
	return s
}

// LiveRegion describes the in-memory (unflushed) region of an indexing
// server: its actual key interval × [MinTime, now].
type LiveRegion struct {
	Server int
	// Keys is the actual key interval, which may overlap other servers'
	// right after a repartition.
	Keys model.KeyRange
	// MinTime is the left temporal boundary of the in-memory B+ tree; zero
	// tuples is signalled by Empty.
	MinTime model.Timestamp
	Empty   bool
}

// QueryInfo tracks a running query for coordinator failover (§V).
type QueryInfo struct {
	ID    uint64
	Query model.Query
	// AsOf is the query's plan horizon: the smallest chunk ID that could
	// not have been in the query's plan because it registered after the
	// query did. Indexing servers keep flushed-but-in-plan-limbo snapshots
	// in memory until every active query's horizon has passed the chunk
	// (see Server.MinQueryAsOf). Zero means "no horizon recorded" (queries
	// restored from snapshots predating this field).
	AsOf uint64
}

// Server is the metadata server.
type Server struct {
	mu        sync.RWMutex
	schema    PartitionSchema
	actual    []model.KeyRange
	live      []LiveRegion
	chunks    map[model.ChunkID]ChunkInfo
	regions   *rtree.Tree // region -> ChunkID
	offsets   []int64
	epochs    []int64
	handoffs  []int64
	queries   map[uint64]QueryInfo
	nextChunk uint64
	nextQuery uint64
	tiers     *tierIndex
	maxTime   model.Timestamp // max Region.Times.Hi ever registered
}

// NewServer creates a metadata server for the given number of indexing
// servers, with an even initial key partitioning.
func NewServer(indexServers int) *Server {
	if indexServers < 1 {
		indexServers = 1
	}
	s := &Server{
		schema:   EvenSchema(indexServers),
		chunks:   make(map[model.ChunkID]ChunkInfo),
		regions:  rtree.New(16),
		offsets:  make([]int64, indexServers),
		epochs:   make([]int64, indexServers),
		handoffs: make([]int64, indexServers),
		queries:  make(map[uint64]QueryInfo),
		actual:   make([]model.KeyRange, indexServers),
		live:     make([]LiveRegion, indexServers),
		tiers:    newTierIndex(),
	}
	for i := range s.actual {
		s.actual[i] = s.schema.IntervalOf(i)
		s.live[i] = LiveRegion{Server: i, Keys: s.actual[i], Empty: true}
		s.epochs[i] = 1
	}
	return s
}

// Schema returns the current partition schema.
func (s *Server) Schema() PartitionSchema {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return clonedSchema(s.schema)
}

func clonedSchema(p PartitionSchema) PartitionSchema {
	p.Bounds = append([]model.Key(nil), p.Bounds...)
	if p.Slots != nil {
		p.Slots = append([]int(nil), p.Slots...)
	}
	return p
}

// SetSchema installs a new key partitioning (same active-slot set),
// bumping the version. Each server's actual interval becomes the union of
// its old actual interval and its new nominal interval until the next
// flush shrinks it (§III-D).
func (s *Server) SetSchema(bounds []model.Key) (PartitionSchema, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if want := s.schema.ActiveCount() - 1; len(bounds) != want {
		return PartitionSchema{}, fmt.Errorf("meta: schema needs %d bounds, got %d", want, len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return PartitionSchema{}, fmt.Errorf("meta: bounds not ascending at %d", i)
		}
	}
	s.schema = PartitionSchema{
		Version: s.schema.Version + 1,
		Servers: s.schema.Servers,
		Slots:   s.schema.Slots,
		Bounds:  append([]model.Key(nil), bounds...),
	}
	for i := range s.actual {
		// Widen unconditionally — never snap to nominal here. The live
		// region's Empty flag can be stale (WAL backlog acked but not yet
		// consumed), so narrowing on it would hide backlog tuples routed
		// under the old schema. The next ReportLive shrinks the actual
		// interval to nominal ∪ the server's measured key box.
		nom := s.schema.IntervalOf(i)
		if nom.Lo < s.actual[i].Lo {
			s.actual[i].Lo = nom.Lo
		}
		if nom.Hi > s.actual[i].Hi {
			s.actual[i].Hi = nom.Hi
		}
		s.live[i].Keys = s.actual[i]
	}
	return clonedSchema(s.schema), nil
}

// Actual returns the actual key interval of an indexing server.
func (s *Server) Actual(server int) model.KeyRange {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.actual[server]
}

// ReportLive updates an indexing server's live region after inserts or a
// flush. keys is the exact key bounding box of the server's in-memory
// tuples (memtable, side store, unregistered snapshots); the actual
// interval becomes the union of the nominal interval and that box, so it
// covers every buffered tuple however stale the routing that placed it —
// and shrinks back to nominal on its own as flushes drain the old keys.
// Empty=true marks the memtable as drained (keys is ignored), which snaps
// the actual interval to the nominal one. The box is measured by the
// server itself, so a schema change between the measurement and this call
// cannot invalidate it: the box covers the buffered tuples regardless of
// which schema routed them.
func (s *Server) ReportLive(server int, minTime model.Timestamp, keys model.KeyRange, empty bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if server < 0 || server >= len(s.live) {
		return
	}
	nom := s.schema.IntervalOf(server)
	if empty {
		s.actual[server] = nom
	} else {
		if keys.Lo < nom.Lo {
			nom.Lo = keys.Lo
		}
		if keys.Hi > nom.Hi {
			nom.Hi = keys.Hi
		}
		s.actual[server] = nom
	}
	s.live[server] = LiveRegion{
		Server:  server,
		Keys:    s.actual[server],
		MinTime: minTime,
		Empty:   empty,
	}
}

// LiveRegions returns the current live regions of all indexing servers.
func (s *Server) LiveRegions() []LiveRegion {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]LiveRegion(nil), s.live...)
}

// RegisterChunk assigns a chunk ID, records the chunk metadata, and indexes
// its region. The caller fills every field except ID.
func (s *Server) RegisterChunk(info ChunkInfo) ChunkInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextChunk++
	info.ID = model.ChunkID(s.nextChunk)
	s.chunks[info.ID] = info
	s.regions.Insert(info.Region, info.ID)
	s.trackLocked(info)
	return info
}

// RegisterChunks registers several chunks in one critical section, so their
// IDs are consecutive and no watermark read (ChunksForWithWatermark) can
// land between them: a query plan sees either none or all of the batch.
// Indexing servers rely on this when a flush unit carries both a main and a
// side snapshot covered by a single WAL offset.
func (s *Server) RegisterChunks(infos []ChunkInfo) []ChunkInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ChunkInfo, len(infos))
	for i, info := range infos {
		s.nextChunk++
		info.ID = model.ChunkID(s.nextChunk)
		s.chunks[info.ID] = info
		s.regions.Insert(info.Region, info.ID)
		s.trackLocked(info)
		out[i] = info
	}
	return out
}

// Chunk returns the metadata of one chunk.
func (s *Server) Chunk(id model.ChunkID) (ChunkInfo, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info, ok := s.chunks[id]
	return info, ok
}

// ChunksByID returns the metadata of every id in one critical section —
// the batched form of Chunk for callers resolving a whole subquery plan.
// Unknown ids yield entries with only ID set (and ok left implicit in the
// empty Path).
func (s *Server) ChunksByID(ids []model.ChunkID) []ChunkInfo {
	out := make([]ChunkInfo, len(ids))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, id := range ids {
		if info, ok := s.chunks[id]; ok {
			out[i] = info
		} else {
			out[i] = ChunkInfo{ID: id}
		}
	}
	return out
}

// ChunksFor returns the chunks whose regions overlap r — the query-region
// candidates of §IV-A.
func (s *Server) ChunksFor(r model.Region) []ChunkInfo {
	chunks, _ := s.ChunksForWithWatermark(r)
	return chunks
}

// ChunksForWithWatermark returns the overlapping chunks together with the
// chunk-ID watermark — the ID the *next* registered chunk will receive.
// Both come from the same critical section, so the caller knows exactly
// which chunks its plan could have seen: any chunk with ID >= watermark
// registered strictly after this lookup and must be served from the
// producing server's in-memory pending snapshot instead.
func (s *Server) ChunksForWithWatermark(r model.Region) ([]ChunkInfo, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.regions.Search(r)
	out := make([]ChunkInfo, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.chunks[id.(model.ChunkID)])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, s.nextChunk + 1
}

// ChunkCount returns the number of registered chunks.
func (s *Server) ChunkCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks)
}

// DropChunk removes a chunk from the registry (retention).
func (s *Server) DropChunk(id model.ChunkID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.chunks[id]
	if !ok {
		return false
	}
	delete(s.chunks, id)
	s.regions.Delete(info.Region, func(v any) bool { return v.(model.ChunkID) == id })
	s.tiers.remove(info.Region.Times)
	return true
}

// SetOffset records the WAL read offset of an indexing server at flush time
// (§V): on recovery the server replays from here.
func (s *Server) SetOffset(server int, off int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if server >= 0 && server < len(s.offsets) {
		s.offsets[server] = off
	}
}

// Offset returns the stored WAL offset of an indexing server.
func (s *Server) Offset(server int) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if server < 0 || server >= len(s.offsets) {
		return 0
	}
	return s.offsets[server]
}

// RegisterQuery stores a running query and assigns its ID. The query's
// plan horizon (AsOf) is captured here: chunks registered from now on
// cannot appear in its plan.
func (s *Server) RegisterQuery(q model.Query) model.Query {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextQuery++
	q.ID = s.nextQuery
	s.queries[q.ID] = QueryInfo{ID: q.ID, Query: q, AsOf: s.nextChunk + 1}
	return q
}

// MinQueryAsOf returns the smallest plan horizon over the active queries —
// the chunk-ID floor below which no active query can still need a flushed
// snapshot's in-memory copy. With no active queries it returns MaxUint64.
// A zero AsOf (query restored from an old snapshot, horizon unknown) pins
// everything, erring on the safe side.
func (s *Server) MinQueryAsOf() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	min := ^uint64(0)
	for _, q := range s.queries {
		asOf := q.AsOf
		if asOf == 0 {
			return 0
		}
		if asOf < min {
			min = asOf
		}
	}
	return min
}

// CompleteQuery removes a finished query.
func (s *Server) CompleteQuery(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.queries, id)
}

// ActiveQueries returns the registered, unfinished queries — what a new
// coordinator re-initializes after a failover (§V).
func (s *Server) ActiveQueries() []QueryInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]QueryInfo, 0, len(s.queries))
	for _, q := range s.queries {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// persistentState is the gob image of the server.
type persistentState struct {
	Schema    PartitionSchema
	Actual    []model.KeyRange
	Live      []LiveRegion
	Chunks    []ChunkInfo
	Offsets   []int64
	Epochs    []int64
	Handoffs  []int64
	Queries   []QueryInfo
	NextChunk uint64
	NextQuery uint64
}

// Snapshot serializes the full metadata state.
func (s *Server) Snapshot() ([]byte, error) {
	s.mu.RLock()
	st := persistentState{
		Schema:    clonedSchema(s.schema),
		Actual:    append([]model.KeyRange(nil), s.actual...),
		Live:      append([]LiveRegion(nil), s.live...),
		Offsets:   append([]int64(nil), s.offsets...),
		Epochs:    append([]int64(nil), s.epochs...),
		Handoffs:  append([]int64(nil), s.handoffs...),
		NextChunk: s.nextChunk,
		NextQuery: s.nextQuery,
	}
	for _, c := range s.chunks {
		st.Chunks = append(st.Chunks, c)
	}
	for _, q := range s.queries {
		st.Queries = append(st.Queries, q)
	}
	s.mu.RUnlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("meta: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore rebuilds a metadata server from a snapshot.
func Restore(data []byte) (*Server, error) {
	var st persistentState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("meta: restore: %w", err)
	}
	s := NewServer(st.Schema.Servers)
	s.schema = st.Schema
	s.actual = st.Actual
	s.live = st.Live
	s.offsets = st.Offsets
	// Snapshots predating ownership epochs carry none: every slot starts
	// at epoch 1, the value NewServer seeded.
	if st.Epochs != nil {
		s.epochs = st.Epochs
	}
	if st.Handoffs != nil {
		s.handoffs = st.Handoffs
	}
	s.nextChunk = st.NextChunk
	s.nextQuery = st.NextQuery
	for _, c := range st.Chunks {
		s.chunks[c.ID] = c
		s.regions.Insert(c.Region, c.ID)
		s.trackLocked(c)
	}
	for _, q := range st.Queries {
		s.queries[q.ID] = q
	}
	return s, nil
}
