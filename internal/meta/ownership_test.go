package meta

import (
	"errors"
	"testing"

	"waterwheel/internal/model"
)

func TestTransferOwnershipFences(t *testing.T) {
	s := NewServer(2)
	if got := s.Epoch(0); got != 1 {
		t.Fatalf("initial epoch = %d, want 1", got)
	}
	info := ChunkInfo{Path: "c1", Region: model.Region{Keys: model.KeyRange{Lo: 0, Hi: 10}}, Server: 0}
	regs, err := s.RegisterFlushOwned(0, 1, []ChunkInfo{info}, 5)
	if err != nil || len(regs) != 1 {
		t.Fatalf("owned register: %v %v", regs, err)
	}
	if got := s.Offset(0); got != 5 {
		t.Fatalf("offset = %d, want 5", got)
	}

	epoch, keys, err := s.TransferOwnership(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("epoch after transfer = %d, want 2", epoch)
	}
	if want := s.Schema().IntervalOf(0); keys != want {
		t.Fatalf("transfer keys = %v, want %v", keys, want)
	}
	if got := s.HandoffOffset(0); got != 5 {
		t.Fatalf("handoff offset = %d, want 5", got)
	}

	// The deposed incarnation (epoch 1) must register nothing.
	before := s.ChunkCount()
	if _, err := s.RegisterFlushOwned(0, 1, []ChunkInfo{info}, 9); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale register err = %v, want ErrFenced", err)
	}
	if s.ChunkCount() != before {
		t.Fatal("fenced register mutated the chunk registry")
	}
	if got := s.Offset(0); got != 5 {
		t.Fatalf("fenced register moved offset to %d", got)
	}
	if err := s.SetOffsetOwned(0, 1, 9); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale set-offset err = %v, want ErrFenced", err)
	}
	// The new owner (epoch 2) proceeds.
	if _, err := s.RegisterFlushOwned(0, 2, []ChunkInfo{info}, 9); err != nil {
		t.Fatalf("current-epoch register: %v", err)
	}
	if got := s.Offset(0); got != 9 {
		t.Fatalf("offset = %d, want 9", got)
	}
	// Offsets only move forward.
	if err := s.SetOffsetOwned(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	if got := s.Offset(0); got != 9 {
		t.Fatalf("offset regressed to %d", got)
	}
}

func TestAddServerSplitsInterval(t *testing.T) {
	s := NewServer(2)
	old := s.Schema()
	kr := old.IntervalOf(1)
	at := kr.Lo + (kr.Hi-kr.Lo)/2 + 1
	sch, id, err := s.AddServer(1, at)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("new slot id = %d, want 2", id)
	}
	if sch.ActiveCount() != 3 || sch.Servers != 3 {
		t.Fatalf("active=%d servers=%d, want 3/3", sch.ActiveCount(), sch.Servers)
	}
	if got := sch.IntervalOf(1); got.Lo != kr.Lo || got.Hi != at-1 {
		t.Fatalf("split slot interval = %v, want [%d,%d]", got, kr.Lo, at-1)
	}
	if got := sch.IntervalOf(2); got.Lo != at || got.Hi != kr.Hi {
		t.Fatalf("new slot interval = %v, want [%d,%d]", got, at, kr.Hi)
	}
	if sch.ServerFor(at) != 2 || sch.ServerFor(at-1) != 1 {
		t.Fatal("ServerFor does not respect the split key")
	}
	if s.Epoch(2) != 1 {
		t.Fatalf("new slot epoch = %d, want 1", s.Epoch(2))
	}
	// Split key outside the interval is rejected.
	if _, _, err := s.AddServer(0, kr.Hi); err == nil {
		t.Fatal("split at foreign key accepted")
	}
}

func TestRemoveServerMergesInterval(t *testing.T) {
	s := NewServer(3)
	full := model.FullKeyRange()
	mid := s.Schema().IntervalOf(1)
	sch, err := s.RemoveServer(1)
	if err != nil {
		t.Fatal(err)
	}
	if sch.ActiveCount() != 2 || sch.Servers != 3 {
		t.Fatalf("active=%d servers=%d, want 2/3", sch.ActiveCount(), sch.Servers)
	}
	if sch.Active(1) {
		t.Fatal("removed slot still active")
	}
	// Slot 1's interval merged into its left neighbor.
	if got := sch.IntervalOf(0); got.Hi != mid.Hi {
		t.Fatalf("left neighbor Hi = %d, want %d", got.Hi, mid.Hi)
	}
	if got := sch.IntervalOf(1); got.Lo <= got.Hi {
		t.Fatalf("retired slot interval %v not empty", got)
	}
	if sch.ServerFor(mid.Lo) != 0 {
		t.Fatal("merged keys not routed to the absorbing neighbor")
	}
	// Removing the leftmost merges right.
	if _, err := s.RemoveServer(0); err != nil {
		t.Fatal(err)
	}
	sch = s.Schema()
	if got := sch.IntervalOf(2); got != full {
		t.Fatalf("last slot interval = %v, want full domain", got)
	}
	// The last active slot cannot be removed.
	if _, err := s.RemoveServer(2); err == nil {
		t.Fatal("removed the last active slot")
	}
}

func TestElasticStateSnapshotRoundTrip(t *testing.T) {
	s := NewServer(2)
	kr := s.Schema().IntervalOf(1)
	at := kr.Lo + (kr.Hi-kr.Lo)/2 + 1
	if _, _, err := s.AddServer(1, at); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.TransferOwnership(0, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveServer(1); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Schema(), r.Schema()
	if a.Version != b.Version || a.Servers != b.Servers || len(a.Slots) != len(b.Slots) {
		t.Fatalf("schema mismatch: %+v vs %+v", a, b)
	}
	for i := range a.Slots {
		if a.Slots[i] != b.Slots[i] {
			t.Fatalf("slots mismatch: %v vs %v", a.Slots, b.Slots)
		}
	}
	for i := 0; i < a.Servers; i++ {
		if s.Epoch(i) != r.Epoch(i) {
			t.Fatalf("epoch[%d] = %d vs %d", i, s.Epoch(i), r.Epoch(i))
		}
		if s.HandoffOffset(i) != r.HandoffOffset(i) {
			t.Fatalf("handoff[%d] mismatch", i)
		}
	}
	// A transfer on the restored server yields the same epoch sequence.
	e1, _, _ := s.TransferOwnership(0, 9)
	e2, _, _ := r.TransferOwnership(0, 9)
	if e1 != e2 {
		t.Fatalf("post-restore transfer epochs diverge: %d vs %d", e1, e2)
	}
}

func TestSetSchemaOverActiveSlots(t *testing.T) {
	s := NewServer(3)
	if _, err := s.RemoveServer(2); err != nil {
		t.Fatal(err)
	}
	// Two active slots now: exactly one bound accepted.
	if _, err := s.SetSchema([]model.Key{1 << 32}); err != nil {
		t.Fatal(err)
	}
	sch := s.Schema()
	if sch.ServerFor(0) != 0 || sch.ServerFor(1<<33) != 1 {
		t.Fatal("routing after SetSchema over active slots broken")
	}
	if _, err := s.SetSchema([]model.Key{1, 2}); err == nil {
		t.Fatal("bound count not validated against active slots")
	}
}
