// Package workload synthesizes the paper's evaluation workloads (§VI):
//
//   - T-Drive-like: GPS trajectories of 10,357 taxis random-walking in the
//     Beijing bounding box, z-ordered into index keys; 36-byte tuples;
//   - Network-like: website-access records keyed by source IP drawn from a
//     heavy-tailed mixture of hot subnets plus background noise; 50-byte
//     tuples;
//   - Normal(σ): keys from a normal distribution with controllable σ, the
//     skewness knob of the adaptive-partitioning experiments (Fig. 12);
//
// plus the query generators that control key-domain selectivity and the
// four temporal shapes (recent 5 s / 60 s / 5 min, historical 5 min) used
// throughout §VI-D.
//
// Generators are deterministic given a seed. Timestamps are logical event
// time: each generator advances an internal clock at a configurable event
// rate, and can inject out-of-order arrivals.
package workload

import (
	"math"
	"math/rand"

	"waterwheel/internal/model"
	"waterwheel/internal/zorder"
)

// Generator produces a deterministic tuple stream.
type Generator interface {
	// Next returns the next tuple.
	Next() model.Tuple
	// KeySpan returns the key range the generator draws from, used to
	// build selectivity-controlled queries.
	KeySpan() model.KeyRange
	// Now returns the generator's current event time.
	Now() model.Timestamp
}

// clock advances event time: rate events per second of event time.
type clock struct {
	t    model.Timestamp
	sub  int
	rate int // events per second
}

func newClock(start model.Timestamp, rate int) clock {
	if rate <= 0 {
		rate = 100_000
	}
	return clock{t: start, rate: rate}
}

// tick returns the next event timestamp (millisecond resolution).
func (c *clock) tick() model.Timestamp {
	c.sub++
	perMilli := c.rate / 1000
	if perMilli < 1 {
		perMilli = 1
	}
	if c.sub >= perMilli {
		c.sub = 0
		c.t++
	}
	return c.t
}

// lateness injects out-of-order arrivals: with probability Frac, a tuple's
// timestamp is pushed back by up to MaxMillis.
type lateness struct {
	Frac      float64
	MaxMillis int64
}

func (l lateness) apply(rng *rand.Rand, t model.Timestamp) model.Timestamp {
	if l.Frac <= 0 || rng.Float64() >= l.Frac {
		return t
	}
	d := model.Timestamp(rng.Int63n(l.MaxMillis + 1))
	if d > t {
		d = t
	}
	return t - d
}

// TDriveConfig tunes the taxi-trajectory generator.
type TDriveConfig struct {
	// Taxis is the fleet size (paper: 10,357).
	Taxis int
	// Bits is the z-order grid resolution per axis (default 16).
	Bits uint
	// EventsPerSecond is the logical arrival rate (default 100,000).
	EventsPerSecond int
	// StartTime is the first event timestamp (default 0).
	StartTime model.Timestamp
	// LateFrac / LateMaxMillis inject out-of-order arrivals.
	LateFrac      float64
	LateMaxMillis int64
	// Seed drives all randomness.
	Seed int64
}

// TDrive emits z-ordered GPS samples: a random taxi takes a random-walk
// step and reports its position. Spatial locality makes the key
// distribution clustered but slowly evolving — the workload character
// Waterwheel's template reuse banks on.
type TDrive struct {
	cfg  TDriveConfig
	rng  *rand.Rand
	grid *zorder.Grid
	lons []float64
	lats []float64
	clk  clock
	late lateness
}

// Beijing bounding box used by the paper's T-Drive preprocessing.
const (
	BeijingMinLon = 115.8
	BeijingMaxLon = 117.1
	BeijingMinLat = 39.6
	BeijingMaxLat = 40.4
)

// NewTDrive creates the generator.
func NewTDrive(cfg TDriveConfig) *TDrive {
	if cfg.Taxis <= 0 {
		cfg.Taxis = 10_357
	}
	if cfg.Bits == 0 {
		cfg.Bits = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &TDrive{
		cfg:  cfg,
		rng:  rng,
		grid: zorder.NewGrid(BeijingMinLon, BeijingMaxLon, BeijingMinLat, BeijingMaxLat, cfg.Bits),
		lons: make([]float64, cfg.Taxis),
		lats: make([]float64, cfg.Taxis),
		clk:  newClock(cfg.StartTime, cfg.EventsPerSecond),
		late: lateness{Frac: cfg.LateFrac, MaxMillis: cfg.LateMaxMillis},
	}
	for i := range g.lons {
		// Taxis start clustered around the city centre (a 2D normal),
		// mirroring real urban density.
		g.lons[i] = clamp(116.4+rng.NormFloat64()*0.15, BeijingMinLon, BeijingMaxLon)
		g.lats[i] = clamp(39.9+rng.NormFloat64()*0.1, BeijingMinLat, BeijingMaxLat)
	}
	return g
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Next implements Generator. The 16-byte payload (taxi id + packed
// coordinates) brings the encoded tuple to the paper's 36 bytes.
func (g *TDrive) Next() model.Tuple {
	i := g.rng.Intn(len(g.lons))
	g.lons[i] = clamp(g.lons[i]+g.rng.NormFloat64()*0.0005, BeijingMinLon, BeijingMaxLon)
	g.lats[i] = clamp(g.lats[i]+g.rng.NormFloat64()*0.0005, BeijingMinLat, BeijingMaxLat)
	key := model.Key(g.grid.Key(g.lons[i], g.lats[i]))
	t := g.late.apply(g.rng, g.clk.tick())
	payload := make([]byte, 16)
	putU32(payload[0:], uint32(i))
	putU32(payload[4:], math.Float32bits(float32(g.lons[i])))
	putU32(payload[8:], math.Float32bits(float32(g.lats[i])))
	// trailing 4 bytes stay zero (padding)
	return model.Tuple{Key: key, Time: t, Payload: payload}
}

// Grid exposes the z-order grid so queries can cover geo rectangles.
func (g *TDrive) Grid() *zorder.Grid { return g.grid }

// KeySpan implements Generator: the full z-code range of the grid.
func (g *TDrive) KeySpan() model.KeyRange {
	cells := uint64(1) << g.cfg.Bits
	return model.KeyRange{Lo: 0, Hi: model.Key(cells*cells - 1)}
}

// Now implements Generator.
func (g *TDrive) Now() model.Timestamp { return g.clk.t }

// NetworkConfig tunes the website-access generator.
type NetworkConfig struct {
	// HotSubnets is the number of heavy /16 source subnets (default 64).
	HotSubnets int
	// HotFrac is the probability a record comes from a hot subnet
	// (default 0.8); the rest is uniform background.
	HotFrac float64
	// EventsPerSecond is the logical arrival rate (default 100,000).
	EventsPerSecond int
	// StartTime is the first event timestamp.
	StartTime model.Timestamp
	// LateFrac / LateMaxMillis inject out-of-order arrivals.
	LateFrac      float64
	LateMaxMillis int64
	// Seed drives all randomness.
	Seed int64
}

// Network emits access records keyed by source IP. Hot subnets get
// Zipf-like weights, so the key distribution has the "many hot subnets
// plus long tail" character of telecom traces. The source IPv4 address is
// spread over the key domain by placing it in the high 32 bits.
type Network struct {
	cfg     NetworkConfig
	rng     *rand.Rand
	subnets []uint32 // /16 prefixes (high 16 bits set)
	weights []float64
	totalW  float64
	clk     clock
	late    lateness
}

// NewNetwork creates the generator.
func NewNetwork(cfg NetworkConfig) *Network {
	if cfg.HotSubnets <= 0 {
		cfg.HotSubnets = 64
	}
	if cfg.HotFrac <= 0 || cfg.HotFrac >= 1 {
		cfg.HotFrac = 0.8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Network{
		cfg:  cfg,
		rng:  rng,
		clk:  newClock(cfg.StartTime, cfg.EventsPerSecond),
		late: lateness{Frac: cfg.LateFrac, MaxMillis: cfg.LateMaxMillis},
	}
	for i := 0; i < cfg.HotSubnets; i++ {
		g.subnets = append(g.subnets, rng.Uint32()&0xFFFF0000)
		w := 1.0 / float64(i+1) // Zipf(1)
		g.weights = append(g.weights, w)
		g.totalW += w
	}
	return g
}

// Next implements Generator. The 30-byte payload (user id, destination
// IP, URL hash bytes) brings the encoded tuple to the paper's 50 bytes.
func (g *Network) Next() model.Tuple {
	var ip uint32
	if g.rng.Float64() < g.cfg.HotFrac {
		x := g.rng.Float64() * g.totalW
		idx := 0
		for x > g.weights[idx] && idx < len(g.weights)-1 {
			x -= g.weights[idx]
			idx++
		}
		ip = g.subnets[idx] | uint32(g.rng.Intn(1<<16))
	} else {
		ip = g.rng.Uint32()
	}
	key := model.Key(uint64(ip) << 32)
	t := g.late.apply(g.rng, g.clk.tick())
	payload := make([]byte, 30)
	putU64(payload[0:], g.rng.Uint64())  // user id
	putU32(payload[8:], g.rng.Uint32())  // destination IP
	putU64(payload[12:], g.rng.Uint64()) // URL hash
	putU64(payload[20:], g.rng.Uint64())
	// remaining 2 bytes stay zero (padding)
	return model.Tuple{Key: key, Time: t, Payload: payload}
}

// KeySpan implements Generator.
func (g *Network) KeySpan() model.KeyRange { return model.FullKeyRange() }

// Now implements Generator.
func (g *Network) Now() model.Timestamp { return g.clk.t }

// NormalConfig tunes the normal-key generator of the adaptive-partitioning
// experiments (Fig. 12): keys ~ N(center, σ), 30-byte tuples.
type NormalConfig struct {
	// Sigma is the standard deviation (paper sweeps 10..5000).
	Sigma float64
	// Center is the distribution mean in the key domain (default 2^62).
	Center model.Key
	// DriftPerSecond moves the center over time, exercising template
	// update and repartitioning (default 0).
	DriftPerSecond float64
	// EventsPerSecond is the logical arrival rate (default 100,000).
	EventsPerSecond int
	StartTime       model.Timestamp
	Seed            int64
}

// Normal emits tuples with normally distributed keys. The perturbation is
// applied in integer arithmetic: at centers like 2^62 a float64 sum would
// round small σ deviations away entirely (the ULP at 2^62 is 1024).
type Normal struct {
	cfg   NormalConfig
	rng   *rand.Rand
	clk   clock
	base  model.Key
	drift float64 // accumulated center drift in keys
}

// NewNormal creates the generator.
func NewNormal(cfg NormalConfig) *Normal {
	if cfg.Sigma <= 0 {
		cfg.Sigma = 1000
	}
	if cfg.Center == 0 {
		cfg.Center = 1 << 62
	}
	return &Normal{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		clk:  newClock(cfg.StartTime, cfg.EventsPerSecond),
		base: cfg.Center,
	}
}

// addClamped offsets a key by a signed delta, saturating at the domain
// edges.
func addClamped(k model.Key, delta int64) model.Key {
	if delta >= 0 {
		if model.MaxKey-k < model.Key(delta) {
			return model.MaxKey
		}
		return k + model.Key(delta)
	}
	d := model.Key(-delta)
	if k < d {
		return 0
	}
	return k - d
}

// Next implements Generator. The 10-byte payload brings the encoded tuple
// to the paper's 30 bytes.
func (g *Normal) Next() model.Tuple {
	prev := g.clk.t
	t := g.clk.tick()
	if g.cfg.DriftPerSecond != 0 && t != prev {
		g.drift += g.cfg.DriftPerSecond / 1000
	}
	delta := int64(math.Round(g.rng.NormFloat64()*g.cfg.Sigma + g.drift))
	payload := make([]byte, 10)
	putU64(payload, g.rng.Uint64())
	return model.Tuple{Key: addClamped(g.base, delta), Time: t, Payload: payload}
}

// KeySpan implements Generator: ±4σ around the current (drifted) center.
func (g *Normal) KeySpan() model.KeyRange {
	spread := int64(math.Round(4 * g.cfg.Sigma))
	center := addClamped(g.base, int64(math.Round(g.drift)))
	return model.KeyRange{
		Lo: addClamped(center, -spread),
		Hi: addClamped(center, spread),
	}
}

// Now implements Generator.
func (g *Normal) Now() model.Timestamp { return g.clk.t }

// --- query generation ---

// QueryGen builds selectivity-controlled queries over a generator's key
// span and event clock.
type QueryGen struct {
	rng  *rand.Rand
	span model.KeyRange
}

// NewQueryGen creates a query generator over the given key span.
func NewQueryGen(span model.KeyRange, seed int64) *QueryGen {
	return &QueryGen{rng: rand.New(rand.NewSource(seed)), span: span}
}

// KeyRange draws a random key interval covering the given fraction of the
// span (the paper's "selectivity of key domain": 0.01, 0.05, 0.1, …).
func (q *QueryGen) KeyRange(selectivity float64) model.KeyRange {
	if selectivity >= 1 {
		return q.span
	}
	if selectivity <= 0 {
		selectivity = 0.01
	}
	span := float64(q.span.Width())
	width := span * selectivity
	if width < 1 {
		width = 1
	}
	maxStart := span - width
	start := float64(q.span.Lo) + q.rng.Float64()*maxStart
	return model.KeyRange{
		Lo: model.Key(start),
		Hi: model.Key(start + width - 1),
	}
}

// Recent returns the paper's "recent D" window ending at now.
func Recent(now model.Timestamp, durMillis int64) model.TimeRange {
	lo := now - model.Timestamp(durMillis)
	if lo < 0 {
		lo = 0
	}
	return model.TimeRange{Lo: lo, Hi: now}
}

// Historical draws a random window of the given duration between start
// and now (the paper's "historic 5 minutes": randomly chosen between
// system start time and query issue time).
func (q *QueryGen) Historical(start, now model.Timestamp, durMillis int64) model.TimeRange {
	span := int64(now-start) - durMillis
	if span <= 0 {
		return Recent(now, durMillis)
	}
	lo := int64(start) + q.rng.Int63n(span)
	return model.TimeRange{Lo: model.Timestamp(lo), Hi: model.Timestamp(lo + durMillis)}
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v>>32))
	putU32(b[4:], uint32(v))
}
