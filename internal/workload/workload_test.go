package workload

import (
	"testing"

	"waterwheel/internal/model"
)

func TestTDriveProperties(t *testing.T) {
	g := NewTDrive(TDriveConfig{Seed: 1, EventsPerSecond: 10_000})
	span := g.KeySpan()
	var prev model.Timestamp
	for i := 0; i < 20_000; i++ {
		tp := g.Next()
		if !span.Contains(tp.Key) {
			t.Fatalf("key %d outside span %v", tp.Key, span)
		}
		if model.EncodedSize(&tp) != 36 {
			t.Fatalf("tuple size %d, want 36 (paper)", model.EncodedSize(&tp))
		}
		if tp.Time < prev {
			t.Fatalf("time went backwards without lateness: %d < %d", tp.Time, prev)
		}
		prev = tp.Time
	}
	// 20k events at 10k/s → ~2 s of event time.
	if g.Now() < 1500 || g.Now() > 2500 {
		t.Errorf("event clock at %d after 20k events at 10k/s", g.Now())
	}
}

func TestTDriveDeterministic(t *testing.T) {
	a := NewTDrive(TDriveConfig{Seed: 7})
	b := NewTDrive(TDriveConfig{Seed: 7})
	for i := 0; i < 1000; i++ {
		x, y := a.Next(), b.Next()
		if x.Key != y.Key || x.Time != y.Time {
			t.Fatal("same seed diverged")
		}
	}
	c := NewTDrive(TDriveConfig{Seed: 8})
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next().Key == c.Next().Key {
			same++
		}
	}
	if same > 100 {
		t.Errorf("different seeds suspiciously similar: %d/1000 equal keys", same)
	}
}

func TestTDriveSpatialClustering(t *testing.T) {
	// Urban traffic is clustered: the generator's keys must be far from
	// uniform over the span. Compare key-space dispersion against uniform.
	g := NewTDrive(TDriveConfig{Seed: 2})
	span := g.KeySpan()
	buckets := make([]int, 64)
	for i := 0; i < 10_000; i++ {
		tp := g.Next()
		idx := int(uint64(tp.Key) / (uint64(span.Hi)/64 + 1))
		if idx > 63 {
			idx = 63
		}
		buckets[idx]++
	}
	max := 0
	for _, c := range buckets {
		if c > max {
			max = c
		}
	}
	if max < 1000 { // uniform would put ~156 per bucket
		t.Errorf("keys look uniform (max bucket %d); expected spatial clustering", max)
	}
}

func TestNetworkProperties(t *testing.T) {
	g := NewNetwork(NetworkConfig{Seed: 3, EventsPerSecond: 10_000})
	counts := map[model.Key]int{}
	for i := 0; i < 50_000; i++ {
		tp := g.Next()
		if model.EncodedSize(&tp) != 50 {
			t.Fatalf("tuple size %d, want 50 (paper)", model.EncodedSize(&tp))
		}
		counts[tp.Key>>48]++ // /16 prefix
	}
	// Heavy-tailed: the hottest /16 should hold far more than uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 2000 {
		t.Errorf("hottest subnet has %d/50000 — distribution not heavy-tailed", max)
	}
}

func TestNormalSigmaControlsSpread(t *testing.T) {
	narrow := NewNormal(NormalConfig{Sigma: 10, Seed: 4})
	wide := NewNormal(NormalConfig{Sigma: 5000, Seed: 4})
	distinctN := map[model.Key]bool{}
	distinctW := map[model.Key]bool{}
	for i := 0; i < 10_000; i++ {
		tn, tw := narrow.Next(), wide.Next()
		if model.EncodedSize(&tn) != 30 {
			t.Fatalf("tuple size %d, want 30 (paper)", model.EncodedSize(&tn))
		}
		distinctN[tn.Key] = true
		distinctW[tw.Key] = true
	}
	if len(distinctN) >= len(distinctW) {
		t.Errorf("σ=10 produced %d distinct keys vs σ=5000's %d", len(distinctN), len(distinctW))
	}
	span := narrow.KeySpan()
	if !span.IsValid() || span.Width() == 0 {
		t.Error("invalid key span")
	}
}

func TestNormalDrift(t *testing.T) {
	g := NewNormal(NormalConfig{Sigma: 5, DriftPerSecond: 1_000_000, EventsPerSecond: 1000, Seed: 5})
	first := g.Next().Key
	var last model.Key
	for i := 0; i < 10_000; i++ { // ~10 s of event time
		last = g.Next().Key
	}
	if last < first+1_000_000 {
		t.Errorf("center did not drift: first=%d last=%d", first, last)
	}
}

func TestLatenessInjection(t *testing.T) {
	g := NewTDrive(TDriveConfig{Seed: 6, LateFrac: 0.2, LateMaxMillis: 5000, EventsPerSecond: 1_000_000})
	late := 0
	var watermark model.Timestamp
	for i := 0; i < 20_000; i++ {
		tp := g.Next()
		if tp.Time < watermark {
			late++
		}
		if tp.Time > watermark {
			watermark = tp.Time
		}
	}
	if late == 0 {
		t.Error("no out-of-order tuples despite LateFrac=0.2")
	}
}

func TestQueryGenSelectivity(t *testing.T) {
	qg := NewQueryGen(model.KeyRange{Lo: 0, Hi: 1 << 40}, 7)
	for _, sel := range []float64{0.01, 0.05, 0.1} {
		for i := 0; i < 100; i++ {
			kr := qg.KeyRange(sel)
			if !kr.IsValid() {
				t.Fatalf("invalid range %v", kr)
			}
			got := float64(kr.Width()) / float64(uint64(1)<<40)
			if got < sel*0.9 || got > sel*1.1 {
				t.Fatalf("selectivity %f produced width fraction %f", sel, got)
			}
		}
	}
	if qg.KeyRange(1.5) != (model.KeyRange{Lo: 0, Hi: 1 << 40}) {
		t.Error("selectivity >= 1 should return the whole span")
	}
}

func TestTimeWindows(t *testing.T) {
	w := Recent(100_000, 5000)
	if w.Lo != 95_000 || w.Hi != 100_000 {
		t.Errorf("recent window %v", w)
	}
	if w := Recent(1000, 5000); w.Lo != 0 {
		t.Errorf("recent window should clamp at 0: %v", w)
	}
	qg := NewQueryGen(model.FullKeyRange(), 8)
	for i := 0; i < 100; i++ {
		h := qg.Historical(0, 1_000_000, 300_000)
		if h.Duration() != 300_000 {
			t.Fatalf("historical duration %d", h.Duration())
		}
		if h.Lo < 0 || h.Hi > 1_000_000 {
			t.Fatalf("historical window %v out of bounds", h)
		}
	}
	// When the history is shorter than the window, fall back to recent.
	h := qg.Historical(0, 1000, 300_000)
	if h.Hi != 1000 {
		t.Errorf("short-history fallback %v", h)
	}
}
