// Package dfs simulates the distributed file system Waterwheel stores its
// immutable data chunks in. It stands in for HDFS and models the properties
// the paper's experiments depend on:
//
//   - N datanodes with R-way replication on random distinct nodes (HDFS
//     default 3, §IV-C);
//   - replica locality: readers co-located with a replica avoid the remote
//     transfer cost, which is what LADA's chunk locality exploits;
//   - a per-access open delay of 2–50 ms regardless of read size (§VI-B),
//     which dominates small reads and flattens the chunk-size curve;
//   - node failure injection for fault-tolerance tests.
//
// Time is injected through a Sleeper so tests can run with virtual time.
package dfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by the file system.
var (
	ErrNotFound    = errors.New("dfs: file not found")
	ErrExists      = errors.New("dfs: file already exists")
	ErrUnavailable = errors.New("dfs: no live replica")
	ErrBadRange    = errors.New("dfs: read range out of bounds")
	ErrNoNodes     = errors.New("dfs: no live datanodes for placement")
	// ErrInjected marks a transient failure produced by the fault-injection
	// hooks (SetWriteFailRate and friends) — the chaos-testing analogue of a
	// flaky datanode or a timed-out pipeline.
	ErrInjected = errors.New("dfs: injected fault")
)

// LatencyModel describes the simulated I/O costs.
type LatencyModel struct {
	// OpenMin/OpenMax bound the uniform per-access delay charged on every
	// read regardless of size (HDFS open cost, paper §VI-B: 2–50 ms).
	OpenMin, OpenMax time.Duration
	// LocalBytesPerSec is the sequential read bandwidth when the reader is
	// co-located with a replica. Zero means infinite.
	LocalBytesPerSec int64
	// RemoteBytesPerSec is the bandwidth when the chunk must cross the
	// network. Zero means infinite.
	RemoteBytesPerSec int64
	// WriteBytesPerSec is the pipeline write bandwidth. Zero means
	// infinite.
	WriteBytesPerSec int64
}

// DefaultLatency mirrors the paper's testbed character at 1/10 scale so
// experiments finish quickly while preserving the shape: open delay 0.2–5
// ms, ~1 GB/s local reads, ~110 MB/s remote (1 Gbps).
func DefaultLatency() LatencyModel {
	return LatencyModel{
		OpenMin:           200 * time.Microsecond,
		OpenMax:           5 * time.Millisecond,
		LocalBytesPerSec:  1 << 30,
		RemoteBytesPerSec: 110 << 20,
	}
}

// Config configures the simulated file system.
type Config struct {
	// Nodes is the number of datanodes (minimum 1).
	Nodes int
	// Replication is the replica count per file (clamped to [1, Nodes]).
	Replication int
	// Latency is the I/O cost model; the zero value charges nothing.
	Latency LatencyModel
	// Seed drives replica placement and open-delay jitter.
	Seed int64
	// FaultSeed seeds the fault-injection RNG. It is deliberately separate
	// from Seed so enabling error rates never perturbs replica placement —
	// a chaos run and its fault-free control see identical layouts.
	FaultSeed int64
	// Sleep is called to charge simulated time; nil means time.Sleep.
	Sleep func(time.Duration)
	// Dir, when non-empty, backs file contents with the local filesystem
	// under this directory (one physical copy; replica placement stays
	// simulated via a manifest). Files survive process restarts: New loads
	// the manifest and serves existing files.
	Dir string
	// ObserveRead, when set, receives the simulated latency charged to
	// each chunk read (open delay + transfer) and whether the read was
	// served by a co-located replica — the telemetry hook for injected
	// I/O cost. Must be cheap; called on the read path.
	ObserveRead func(latency time.Duration, local bool)
}

// Metrics counts file-system activity.
type Metrics struct {
	Reads       atomic.Int64
	LocalReads  atomic.Int64
	RemoteReads atomic.Int64
	BytesRead   atomic.Int64
	Writes      atomic.Int64
	BytesWrite  atomic.Int64
	// InjectedWriteFailures / InjectedReadFailures count operations failed
	// by the fault-injection hooks (ErrInjected).
	InjectedWriteFailures atomic.Int64
	InjectedReadFailures  atomic.Int64
}

type file struct {
	data     []byte
	replicas []int
}

// FS is a simulated distributed file system.
type FS struct {
	cfg   Config
	sleep func(time.Duration)

	mu    sync.RWMutex
	files map[string]*file
	alive []bool
	used  []int64 // bytes per node
	rng   *rand.Rand

	// Fault injection (chaos testing): transient error rates and one-shot
	// failure budgets, under their own lock so read-path injection does not
	// upgrade mu and the fault RNG stream stays independent of placement.
	faultMu        sync.Mutex
	faultRng       *rand.Rand
	writeFailRate  float64
	readFailRate   float64
	failNextWrites int
	failNextReads  int

	m Metrics
}

// New creates a file system, panicking on backing-directory errors; use
// Open to handle them.
func New(cfg Config) *FS {
	fs, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return fs
}

// Open creates a file system. With Config.Dir set, existing files in the
// backing directory are loaded and served.
func Open(cfg Config) (*FS, error) {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Replication > cfg.Nodes {
		cfg.Replication = cfg.Nodes
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	fs := &FS{
		cfg:      cfg,
		sleep:    sleep,
		files:    make(map[string]*file),
		alive:    make([]bool, cfg.Nodes),
		used:     make([]int64, cfg.Nodes),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		faultRng: rand.New(rand.NewSource(cfg.FaultSeed)),
	}
	for i := range fs.alive {
		fs.alive[i] = true
	}
	if cfg.Dir != "" {
		if err := fs.loadDir(); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// Nodes returns the datanode count.
func (fs *FS) Nodes() int { return fs.cfg.Nodes }

// Metrics returns the activity counters.
func (fs *FS) Metrics() *Metrics { return &fs.m }

// openDelay draws a per-access delay from the model.
func (fs *FS) openDelay() time.Duration {
	lm := fs.cfg.Latency
	if lm.OpenMax <= lm.OpenMin {
		return lm.OpenMin
	}
	fs.mu.Lock()
	d := lm.OpenMin + time.Duration(fs.rng.Int63n(int64(lm.OpenMax-lm.OpenMin)))
	fs.mu.Unlock()
	return d
}

func transfer(n int64, bytesPerSec int64) time.Duration {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(bytesPerSec) * float64(time.Second))
}

// --- Fault injection (chaos testing) ---

// SetWriteFailRate makes each subsequent Write fail with probability p
// (ErrInjected), before any state changes. p <= 0 disables the hook.
func (fs *FS) SetWriteFailRate(p float64) {
	fs.faultMu.Lock()
	fs.writeFailRate = p
	fs.faultMu.Unlock()
}

// SetReadFailRate makes each subsequent ReadAt fail with probability p
// (ErrInjected), before any data is served. p <= 0 disables the hook.
func (fs *FS) SetReadFailRate(p float64) {
	fs.faultMu.Lock()
	fs.readFailRate = p
	fs.faultMu.Unlock()
}

// FailNextWrites forces the next n Writes to fail with ErrInjected,
// independent of the probabilistic rate — deterministic outage windows.
func (fs *FS) FailNextWrites(n int) {
	fs.faultMu.Lock()
	fs.failNextWrites = n
	fs.faultMu.Unlock()
}

// FailNextReads forces the next n ReadAt calls to fail with ErrInjected.
func (fs *FS) FailNextReads(n int) {
	fs.faultMu.Lock()
	fs.failNextReads = n
	fs.faultMu.Unlock()
}

// ClearFaults resets every injected error rate and one-shot failure budget
// (node liveness is separate; see ReviveNode).
func (fs *FS) ClearFaults() {
	fs.faultMu.Lock()
	fs.writeFailRate, fs.readFailRate = 0, 0
	fs.failNextWrites, fs.failNextReads = 0, 0
	fs.faultMu.Unlock()
}

// injectWriteFault reports whether this Write should fail.
func (fs *FS) injectWriteFault() bool {
	fs.faultMu.Lock()
	defer fs.faultMu.Unlock()
	if fs.failNextWrites > 0 {
		fs.failNextWrites--
		return true
	}
	return fs.writeFailRate > 0 && fs.faultRng.Float64() < fs.writeFailRate
}

// injectReadFault reports whether this ReadAt should fail.
func (fs *FS) injectReadFault() bool {
	fs.faultMu.Lock()
	defer fs.faultMu.Unlock()
	if fs.failNextReads > 0 {
		fs.failNextReads--
		return true
	}
	return fs.readFailRate > 0 && fs.faultRng.Float64() < fs.readFailRate
}

// Write stores a file, placing Replication replicas on random distinct
// live nodes. The data is copied. Writing an existing name fails.
func (fs *FS) Write(name string, data []byte) error {
	if fs.injectWriteFault() {
		fs.m.InjectedWriteFailures.Add(1)
		return fmt.Errorf("%w: write %s", ErrInjected, name)
	}
	fs.mu.Lock()
	if _, ok := fs.files[name]; ok {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	var live []int
	for i, a := range fs.alive {
		if a {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		fs.mu.Unlock()
		return ErrNoNodes
	}
	r := fs.cfg.Replication
	if r > len(live) {
		r = len(live)
	}
	fs.rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	replicas := append([]int(nil), live[:r]...)
	f := &file{data: append([]byte(nil), data...), replicas: replicas}
	fs.files[name] = f
	for _, n := range replicas {
		fs.used[n] += int64(len(data))
	}
	if fs.cfg.Dir != "" {
		if err := fs.persistWriteLocked(name, f.data); err != nil {
			// Roll the in-memory state back so callers can retry safely.
			delete(fs.files, name)
			for _, n := range replicas {
				fs.used[n] -= int64(len(data))
			}
			fs.mu.Unlock()
			return err
		}
	}
	fs.mu.Unlock()

	fs.m.Writes.Add(1)
	fs.m.BytesWrite.Add(int64(len(data)))
	// A write pays the per-access open delay (NameNode create round trip)
	// plus the pipeline transfer.
	fs.sleep(fs.openDelay() + transfer(int64(len(data)), fs.cfg.Latency.WriteBytesPerSec))
	return nil
}

// ReadInfo describes how a read was served.
type ReadInfo struct {
	// Local reports whether the reading node held a replica.
	Local bool
	// Node is the replica that served the read.
	Node int
	// Latency is the simulated time charged.
	Latency time.Duration
}

// ReadAt reads length bytes at offset from the named file, as issued by
// fromNode (-1 for an external client). Locality against fromNode decides
// the transfer cost. length < 0 reads to the end.
func (fs *FS) ReadAt(name string, offset, length int64, fromNode int) ([]byte, ReadInfo, error) {
	if fs.injectReadFault() {
		fs.m.InjectedReadFailures.Add(1)
		return nil, ReadInfo{}, fmt.Errorf("%w: read %s", ErrInjected, name)
	}
	fs.mu.RLock()
	f, ok := fs.files[name]
	if !ok {
		fs.mu.RUnlock()
		return nil, ReadInfo{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	// Pick a serving replica: prefer the local one, else a random live one.
	serve, local := -1, false
	for _, n := range f.replicas {
		if n == fromNode && fs.alive[n] {
			serve, local = n, true
			break
		}
	}
	if serve == -1 {
		var liveReps []int
		for _, n := range f.replicas {
			if fs.alive[n] {
				liveReps = append(liveReps, n)
			}
		}
		if len(liveReps) == 0 {
			fs.mu.RUnlock()
			return nil, ReadInfo{}, fmt.Errorf("%w: %s", ErrUnavailable, name)
		}
		serve = liveReps[int(fs.m.Reads.Load())%len(liveReps)]
	}
	size := int64(len(f.data))
	if length < 0 {
		length = size - offset
	}
	if offset < 0 || offset > size || offset+length > size {
		fs.mu.RUnlock()
		return nil, ReadInfo{}, fmt.Errorf("%w: %s [%d,%d) of %d", ErrBadRange, name, offset, offset+length, size)
	}
	out := append([]byte(nil), f.data[offset:offset+length]...)
	fs.mu.RUnlock()

	lm := fs.cfg.Latency
	lat := fs.openDelay()
	if local {
		lat += transfer(length, lm.LocalBytesPerSec)
		fs.m.LocalReads.Add(1)
	} else {
		lat += transfer(length, lm.RemoteBytesPerSec)
		fs.m.RemoteReads.Add(1)
	}
	fs.m.Reads.Add(1)
	fs.m.BytesRead.Add(length)
	if fs.cfg.ObserveRead != nil {
		fs.cfg.ObserveRead(lat, local)
	}
	fs.sleep(lat)
	return out, ReadInfo{Local: local, Node: serve, Latency: lat}, nil
}

// Read reads the whole file as an external client.
func (fs *FS) Read(name string) ([]byte, error) {
	data, _, err := fs.ReadAt(name, 0, -1, -1)
	return data, err
}

// Size returns the file length.
func (fs *FS) Size(name string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(len(f.data)), nil
}

// Locations returns the replica node ids of a file (including dead nodes).
func (fs *FS) Locations(name string) ([]int, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return append([]int(nil), f.replicas...), nil
}

// LocationsBatch returns the replica node ids of each named file in a
// single metadata round-trip (one lock acquisition instead of one per
// file) — the coordinator's per-query locality lookup. Unknown or empty
// names yield nil entries rather than errors, matching how the dispatch
// planner treats chunks without location data.
func (fs *FS) LocationsBatch(names []string) [][]int {
	out := make([][]int, len(names))
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	for i, name := range names {
		if f, ok := fs.files[name]; ok {
			out[i] = append([]int(nil), f.replicas...)
		}
	}
	return out
}

// Delete removes a file.
func (fs *FS) Delete(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	for _, n := range f.replicas {
		fs.used[n] -= int64(len(f.data))
	}
	delete(fs.files, name)
	if fs.cfg.Dir != "" {
		return fs.persistDeleteLocked(name)
	}
	return nil
}

// List returns all file names (unordered).
func (fs *FS) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	return out
}

// KillNode marks a datanode dead; its replicas stop serving reads.
func (fs *FS) KillNode(id int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if id >= 0 && id < len(fs.alive) {
		fs.alive[id] = false
	}
}

// ReviveNode brings a datanode back.
func (fs *FS) ReviveNode(id int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if id >= 0 && id < len(fs.alive) {
		fs.alive[id] = true
	}
}

// NodeUsed returns bytes stored on a node.
func (fs *FS) NodeUsed(id int) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if id < 0 || id >= len(fs.used) {
		return 0
	}
	return fs.used[id]
}
