package dfs

import (
	"errors"
	"testing"
	"time"
)

func newDiskFS(t *testing.T, dir string) *FS {
	t.Helper()
	fs, err := Open(Config{Nodes: 3, Replication: 2, Seed: 1, Dir: dir, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestDiskPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	fs := newDiskFS(t, dir)
	if err := fs.Write("chunks/a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("chunks/b", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	locsA, _ := fs.Locations("chunks/a")

	// "Restart": a fresh FS over the same directory serves the files.
	fs2 := newDiskFS(t, dir)
	got, err := fs2.Read("chunks/a")
	if err != nil || string(got) != "alpha" {
		t.Fatalf("reopened read: %q, %v", got, err)
	}
	got, _ = fs2.Read("chunks/b")
	if string(got) != "beta" {
		t.Fatalf("reopened read b: %q", got)
	}
	locsA2, err := fs2.Locations("chunks/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(locsA2) != len(locsA) {
		t.Errorf("replica placement lost: %v vs %v", locsA2, locsA)
	}
	if n := len(fs2.List()); n != 2 {
		t.Errorf("listed %d files", n)
	}
}

func TestDiskDeletePersists(t *testing.T) {
	dir := t.TempDir()
	fs := newDiskFS(t, dir)
	fs.Write("x", []byte("1"))
	fs.Write("y", []byte("2"))
	if err := fs.Delete("x"); err != nil {
		t.Fatal(err)
	}
	fs2 := newDiskFS(t, dir)
	if _, err := fs2.Read("x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted file resurrected: %v", err)
	}
	if _, err := fs2.Read("y"); err != nil {
		t.Errorf("surviving file lost: %v", err)
	}
}

func TestDiskNameEscaping(t *testing.T) {
	dir := t.TempDir()
	fs := newDiskFS(t, dir)
	names := []string{"a/b/c", "weird%name", "a%2Fb", "plain"}
	for _, n := range names {
		if err := fs.Write(n, []byte(n)); err != nil {
			t.Fatalf("write %q: %v", n, err)
		}
	}
	fs2 := newDiskFS(t, dir)
	for _, n := range names {
		got, err := fs2.Read(n)
		if err != nil || string(got) != n {
			t.Fatalf("read %q: %q, %v", n, got, err)
		}
	}
}

func TestDiskShrunkCluster(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(Config{Nodes: 5, Replication: 3, Seed: 1, Dir: dir, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	fs.Write("f", []byte("data"))
	// Reopen with fewer nodes: replicas out of range re-place on node 0.
	fs2, err := Open(Config{Nodes: 2, Replication: 1, Seed: 1, Dir: dir, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Read("f")
	if err != nil || string(got) != "data" {
		t.Fatalf("read after shrink: %q, %v", got, err)
	}
	locs, _ := fs2.Locations("f")
	for _, n := range locs {
		if n < 0 || n >= 2 {
			t.Fatalf("replica on nonexistent node: %v", locs)
		}
	}
}

func TestInMemoryModeUnaffected(t *testing.T) {
	fs := New(Config{Nodes: 2, Replication: 1, Sleep: func(time.Duration) {}})
	fs.Write("m", []byte("mem"))
	if got, _ := fs.Read("m"); string(got) != "mem" {
		t.Fatal("in-memory mode broken")
	}
}
