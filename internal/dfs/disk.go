package dfs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Disk backing: when Config.Dir is set, file contents live on the local
// filesystem (one physical copy per logical file) and the replica
// placement metadata persists in a JSON manifest, so a restarted process
// serves the chunks written by its predecessor. Simulated latencies and
// locality semantics are unchanged.

// manifestName is the metadata file inside the backing directory.
const manifestName = "MANIFEST.json"

// manifestEntry records one file's placement.
type manifestEntry struct {
	Name     string `json:"name"`
	Size     int64  `json:"size"`
	Replicas []int  `json:"replicas"`
}

// manifest is the persistent image of the file table.
type manifest struct {
	Nodes int             `json:"nodes"`
	Files []manifestEntry `json:"files"`
}

// diskPath maps a logical name to a backing file path. Logical names use
// '/' separators; they flatten to one directory level to avoid surprises
// with path traversal.
func (fs *FS) diskPath(name string) string {
	enc := strings.ReplaceAll(name, "%", "%25")
	enc = strings.ReplaceAll(enc, "/", "%2F")
	return filepath.Join(fs.cfg.Dir, enc)
}

// loadDir restores the file table from the backing directory. Called by
// New with the lock not yet shared.
func (fs *FS) loadDir() error {
	if err := os.MkdirAll(fs.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("dfs: backing dir: %w", err)
	}
	raw, err := os.ReadFile(filepath.Join(fs.cfg.Dir, manifestName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("dfs: manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("dfs: manifest decode: %w", err)
	}
	for _, e := range m.Files {
		data, err := os.ReadFile(fs.diskPath(e.Name))
		if err != nil {
			return fmt.Errorf("dfs: load %s: %w", e.Name, err)
		}
		replicas := e.Replicas
		for _, n := range replicas {
			if n < 0 || n >= fs.cfg.Nodes {
				// The cluster shrank across restarts; re-place the replica
				// on node 0 to stay within bounds.
				replicas = []int{0}
				break
			}
		}
		fs.files[e.Name] = &file{data: data, replicas: replicas}
		for _, n := range replicas {
			fs.used[n] += int64(len(data))
		}
	}
	return nil
}

// saveManifestLocked rewrites the manifest. Caller holds fs.mu.
func (fs *FS) saveManifestLocked() error {
	m := manifest{Nodes: fs.cfg.Nodes}
	for name, f := range fs.files {
		m.Files = append(m.Files, manifestEntry{
			Name: name, Size: int64(len(f.data)), Replicas: f.replicas,
		})
	}
	raw, err := json.Marshal(&m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(fs.cfg.Dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(fs.cfg.Dir, manifestName))
}

// persistWrite stores a file's bytes and updates the manifest. Caller
// holds fs.mu.
func (fs *FS) persistWriteLocked(name string, data []byte) error {
	if err := os.WriteFile(fs.diskPath(name), data, 0o644); err != nil {
		return fmt.Errorf("dfs: persist %s: %w", name, err)
	}
	return fs.saveManifestLocked()
}

// persistDeleteLocked removes a file's backing bytes. Caller holds fs.mu.
func (fs *FS) persistDeleteLocked(name string) error {
	if err := os.Remove(fs.diskPath(name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("dfs: unpersist %s: %w", name, err)
	}
	return fs.saveManifestLocked()
}
