package dfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestFS(nodes, repl int) *FS {
	return New(Config{Nodes: nodes, Replication: repl, Seed: 1, Sleep: func(time.Duration) {}})
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newTestFS(4, 3)
	data := []byte("hello chunk data")
	if err := fs.Write("chunks/1", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("chunks/1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("read %q", got)
	}
	if sz, _ := fs.Size("chunks/1"); sz != int64(len(data)) {
		t.Errorf("size = %d", sz)
	}
}

func TestWriteExistingFails(t *testing.T) {
	fs := newTestFS(2, 1)
	fs.Write("a", []byte("x"))
	if err := fs.Write("a", []byte("y")); !errors.Is(err, ErrExists) {
		t.Errorf("err = %v", err)
	}
}

func TestReadMissing(t *testing.T) {
	fs := newTestFS(2, 1)
	if _, err := fs.Read("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if _, err := fs.Size("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("size err = %v", err)
	}
	if err := fs.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("delete err = %v", err)
	}
}

func TestReadAtRanges(t *testing.T) {
	fs := newTestFS(2, 1)
	fs.Write("f", []byte("0123456789"))
	got, _, err := fs.ReadAt("f", 3, 4, -1)
	if err != nil || string(got) != "3456" {
		t.Fatalf("ReadAt = %q, %v", got, err)
	}
	got, _, err = fs.ReadAt("f", 5, -1, -1)
	if err != nil || string(got) != "56789" {
		t.Fatalf("tail read = %q, %v", got, err)
	}
	if _, _, err = fs.ReadAt("f", 5, 10, -1); !errors.Is(err, ErrBadRange) {
		t.Errorf("overlong read err = %v", err)
	}
	if _, _, err = fs.ReadAt("f", -1, 2, -1); !errors.Is(err, ErrBadRange) {
		t.Errorf("negative offset err = %v", err)
	}
	// Zero-length read at end is legal.
	if _, _, err = fs.ReadAt("f", 10, 0, -1); err != nil {
		t.Errorf("empty read at EOF: %v", err)
	}
}

func TestReplicationPlacement(t *testing.T) {
	fs := newTestFS(8, 3)
	for i := 0; i < 50; i++ {
		fs.Write(fmt.Sprintf("f%d", i), []byte("data"))
	}
	for i := 0; i < 50; i++ {
		locs, err := fs.Locations(fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if len(locs) != 3 {
			t.Fatalf("file %d has %d replicas", i, len(locs))
		}
		seen := map[int]bool{}
		for _, n := range locs {
			if n < 0 || n >= 8 || seen[n] {
				t.Fatalf("bad replica set %v", locs)
			}
			seen[n] = true
		}
	}
}

func TestReplicationClamped(t *testing.T) {
	fs := New(Config{Nodes: 2, Replication: 5, Sleep: func(time.Duration) {}})
	fs.Write("f", []byte("x"))
	locs, _ := fs.Locations("f")
	if len(locs) != 2 {
		t.Errorf("replicas = %v, want 2", locs)
	}
}

func TestLocalityDetection(t *testing.T) {
	fs := newTestFS(4, 2)
	fs.Write("f", []byte("abc"))
	locs, _ := fs.Locations("f")
	_, info, err := fs.ReadAt("f", 0, -1, locs[0])
	if err != nil || !info.Local || info.Node != locs[0] {
		t.Errorf("co-located read not local: %+v, %v", info, err)
	}
	// A node not holding a replica reads remotely.
	other := 0
	for n := 0; n < 4; n++ {
		isRep := false
		for _, r := range locs {
			if r == n {
				isRep = true
			}
		}
		if !isRep {
			other = n
			break
		}
	}
	_, info, err = fs.ReadAt("f", 0, -1, other)
	if err != nil || info.Local {
		t.Errorf("remote read flagged local: %+v, %v", info, err)
	}
	m := fs.Metrics()
	if m.LocalReads.Load() != 1 || m.RemoteReads.Load() != 1 {
		t.Errorf("local=%d remote=%d", m.LocalReads.Load(), m.RemoteReads.Load())
	}
}

func TestNodeFailureAndRecovery(t *testing.T) {
	fs := newTestFS(3, 2)
	fs.Write("f", []byte("x"))
	locs, _ := fs.Locations("f")
	// Kill one replica: still readable.
	fs.KillNode(locs[0])
	if _, err := fs.Read("f"); err != nil {
		t.Fatalf("read with one dead replica: %v", err)
	}
	// Kill all replicas: unavailable.
	fs.KillNode(locs[1])
	if _, err := fs.Read("f"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	// Revive: readable again.
	fs.ReviveNode(locs[0])
	if _, err := fs.Read("f"); err != nil {
		t.Fatalf("read after revive: %v", err)
	}
}

func TestWritePlacementAvoidsDeadNodes(t *testing.T) {
	fs := newTestFS(4, 2)
	fs.KillNode(0)
	fs.KillNode(1)
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("f%d", i)
		if err := fs.Write(name, []byte("x")); err != nil {
			t.Fatal(err)
		}
		locs, _ := fs.Locations(name)
		for _, n := range locs {
			if n == 0 || n == 1 {
				t.Fatalf("placed on dead node: %v", locs)
			}
		}
	}
	fs.KillNode(2)
	fs.KillNode(3)
	if err := fs.Write("doomed", []byte("x")); !errors.Is(err, ErrNoNodes) {
		t.Errorf("placement with no live nodes: %v", err)
	}
}

func TestLatencyCharged(t *testing.T) {
	var charged time.Duration
	fs := New(Config{
		Nodes: 2, Replication: 1, Seed: 1,
		Latency: LatencyModel{
			OpenMin: 2 * time.Millisecond, OpenMax: 2 * time.Millisecond,
			RemoteBytesPerSec: 1000, LocalBytesPerSec: 1 << 40,
		},
		Sleep: func(d time.Duration) { charged += d },
	})
	fs.Write("f", make([]byte, 500)) // write: open 2ms (no write bandwidth set)
	fs.ReadAt("f", 0, 500, -1)       // remote read: open 2ms + 500B at 1000B/s = 500ms
	want := 2*time.Millisecond + 2*time.Millisecond + 500*time.Millisecond
	if charged != want {
		t.Errorf("charged %v, want %v", charged, want)
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	fs := newTestFS(2, 2)
	fs.Write("f", make([]byte, 100))
	if fs.NodeUsed(0) != 100 || fs.NodeUsed(1) != 100 {
		t.Fatalf("used = %d/%d", fs.NodeUsed(0), fs.NodeUsed(1))
	}
	fs.Delete("f")
	if fs.NodeUsed(0) != 0 || fs.NodeUsed(1) != 0 {
		t.Errorf("space not freed: %d/%d", fs.NodeUsed(0), fs.NodeUsed(1))
	}
	if len(fs.List()) != 0 {
		t.Error("file still listed")
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	fs := newTestFS(4, 2)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				name := fmt.Sprintf("g%d/f%d", g, i)
				if err := fs.Write(name, []byte(name)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				got, err := fs.Read(name)
				if err != nil || string(got) != name {
					t.Errorf("read %s: %q, %v", name, got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := len(fs.List()); n != 400 {
		t.Errorf("files = %d", n)
	}
}
