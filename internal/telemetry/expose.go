package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Histograms are rendered as summaries
// with p50/p95/p99 quantiles, with durations converted to seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.ordered...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	// Families sharing a base name (label variants) must emit their HELP
	// and TYPE header exactly once.
	headered := make(map[string]bool)
	header := func(m *metric) {
		if headered[m.base] {
			return
		}
		headered[m.base] = true
		if m.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.base, m.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.base, m.kind)
	}
	for _, m := range metrics {
		header(m)
		if m.hist == nil {
			fmt.Fprintf(bw, "%s %s\n", m.name, formatFloat(m.value()))
			continue
		}
		snap := m.hist.Snapshot()
		for _, q := range []struct {
			q string
			v float64
		}{
			{"0.5", snap.P50.Seconds()},
			{"0.95", snap.P95.Seconds()},
			{"0.99", snap.P99.Seconds()},
		} {
			fmt.Fprintf(bw, "%s %s\n", withLabel(m, `quantile="`+q.q+`"`), formatFloat(q.v))
		}
		fmt.Fprintf(bw, "%s %s\n", suffixed(m, "_sum"), formatFloat(snap.Sum.Seconds()))
		fmt.Fprintf(bw, "%s %d\n", suffixed(m, "_count"), snap.Count)
	}
	return bw.Flush()
}

// withLabel renders the metric name with an extra label merged into its
// label block.
func withLabel(m *metric, label string) string {
	if m.labels == "" {
		return m.base + "{" + label + "}"
	}
	return m.base + "{" + m.labels + "," + label + "}"
}

// suffixed renders base<suffix>{labels}.
func suffixed(m *metric, suffix string) string {
	if m.labels == "" {
		return m.base + suffix
	}
	return m.base + suffix + "{" + m.labels + "}"
}

// formatFloat renders values the way Prometheus expects: integers without
// an exponent, everything else in compact scientific-compatible form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	s := fmt.Sprintf("%g", v)
	// %g may produce "1e+06"-style output, which Prometheus parses fine.
	return strings.TrimSpace(s)
}

// PrometheusHandler serves the registry at GET /metrics style endpoints.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
