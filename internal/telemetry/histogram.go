package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: bucket i counts observations whose duration in
// nanoseconds satisfies upperBound(i-1) < d <= upperBound(i), with
// geometric (power-of-two) upper bounds from 256 ns up to ~2.4 h, plus an
// overflow bucket. 36 fixed buckets keep the footprint at a few hundred
// bytes per histogram while bounding the quantile estimation error to the
// bucket width (a factor of 2) — plenty for p50/p95/p99 dashboards.
const (
	histMinShift = 8 // first bucket upper bound: 1<<8 = 256 ns
	histBuckets  = 36
)

// bucketFor maps a non-negative nanosecond duration to its bucket index.
func bucketFor(nanos int64) int {
	if nanos <= 0 {
		return 0
	}
	b := bits.Len64(uint64(nanos - 1)) // smallest b with nanos <= 1<<b
	if b <= histMinShift {
		return 0
	}
	if b-histMinShift >= histBuckets {
		return histBuckets - 1
	}
	return b - histMinShift
}

// bucketUpper returns the upper bound of bucket i in nanoseconds.
func bucketUpper(i int) int64 { return int64(1) << (histMinShift + i) }

// Histogram is a lock-free fixed-bucket latency histogram. Observe is a
// single atomic increment per bucket plus two for count/sum — no
// allocations, safe for the insert hot path. The zero value is ready to
// use; a nil Histogram is a no-op.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	n := int64(d)
	if n < 0 {
		n = 0
	}
	h.buckets[bucketFor(n)].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a point-in-time summary of a histogram. Quantiles
// are upper-bound estimates from the bucket layout (within 2x of the true
// value).
type HistogramSnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Snapshot summarizes the histogram. Buckets are read without a global
// lock, so a snapshot taken during concurrent observation is approximate
// (off by at most the in-flight observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	snap := HistogramSnapshot{Count: total, Sum: time.Duration(h.sum.Load())}
	if total == 0 {
		return snap
	}
	snap.Mean = snap.Sum / time.Duration(total)
	quantile := func(q float64) time.Duration {
		target := int64(q * float64(total))
		if target < 1 {
			target = 1
		}
		var cum int64
		for i, c := range counts {
			cum += c
			if cum >= target {
				return time.Duration(bucketUpper(i))
			}
		}
		return time.Duration(bucketUpper(histBuckets - 1))
	}
	snap.P50 = quantile(0.50)
	snap.P95 = quantile(0.95)
	snap.P99 = quantile(0.99)
	for i := histBuckets - 1; i >= 0; i-- {
		if counts[i] > 0 {
			snap.Max = time.Duration(bucketUpper(i))
			break
		}
	}
	return snap
}
