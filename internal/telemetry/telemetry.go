// Package telemetry is Waterwheel's zero-dependency runtime observability
// subsystem: a metrics registry of lock-free counters, gauges and
// fixed-bucket latency histograms cheap enough to leave on in the insert
// hot path, per-query trace spans (an EXPLAIN ANALYZE for the
// coordinator → dispatch → chunk-read pipeline), and exposition in
// Prometheus text format and JSON.
//
// Every metric handle is nil-safe: a nil *Counter, *Gauge, *Histogram or
// *Span is a no-op, so instrumented code never branches on "telemetry
// enabled" — disabled deployments simply hand out nil handles. Methods on
// a nil *Registry return nil handles, making an entire deployment's
// telemetry a single nil check at wiring time.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing lock-free counter. The zero value
// is ready to use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n should be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a lock-free float64 gauge. The zero value is ready to use; a
// nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds delta (may be negative) — the up/down gauge used for
// occupancy-style metrics such as busy workers or inflight reads.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the stored value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metric kinds, for exposition.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindSummary = "summary" // histograms expose as Prometheus summaries
)

// metric is one registered series. Exactly one of the value sources is
// set; fn-backed series are evaluated at exposition time.
type metric struct {
	name   string // full series name, possibly with {labels}
	base   string // name with the label block stripped
	labels string // inner label text ("" when unlabelled)
	help   string
	kind   string

	counter   *Counter
	counterFn func() int64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

func (m *metric) value() float64 {
	switch {
	case m.counter != nil:
		return float64(m.counter.Value())
	case m.counterFn != nil:
		return float64(m.counterFn())
	case m.gauge != nil:
		return m.gauge.Value()
	case m.gaugeFn != nil:
		return m.gaugeFn()
	}
	return 0
}

// Registry holds named metrics. Registration is idempotent: registering a
// name twice returns the existing handle (the kinds must match).
// Registration takes a lock; the returned handles are lock-free. A nil
// *Registry returns nil handles from every constructor.
type Registry struct {
	mu      sync.Mutex
	ordered []*metric
	byName  map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// splitName separates `base{labels}` into its parts.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// register adds m under its name, or returns the already-registered
// metric of the same name after checking the kind matches.
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[m.name]; ok {
		if old.kind != m.kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", m.name, m.kind, old.kind))
		}
		return old
	}
	m.base, m.labels = splitName(m.name)
	r.ordered = append(r.ordered, m)
	r.byName[m.name] = m
	return m
}

// Counter registers (or returns the existing) counter. The name may carry
// a Prometheus label block: `waterwheel_cache_hits_total{unit="leaf"}`.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(&metric{name: name, help: help, kind: kindCounter, counter: &Counter{}})
	return m.counter
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for pre-existing atomic counters.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, kind: kindCounter, counterFn: fn})
}

// Gauge registers (or returns the existing) settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(&metric{name: name, help: help, kind: kindGauge, gauge: &Gauge{}})
	return m.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, kind: kindGauge, gaugeFn: fn})
}

// Histogram registers (or returns the existing) latency histogram. By
// convention the name should end in _seconds; observations are stored in
// nanoseconds and exposed in seconds.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(&metric{name: name, help: help, kind: kindSummary, hist: &Histogram{}})
	return m.hist
}

// MetricSnapshot is one metric's point-in-time value for JSON exposition.
type MetricSnapshot struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
	// Histogram is set for summary-kind metrics; Value then holds the
	// observation count.
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot returns every metric's current value, sorted by name.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.ordered...)
	r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(metrics))
	for _, m := range metrics {
		ms := MetricSnapshot{Name: m.name, Kind: m.kind}
		if m.hist != nil {
			h := m.hist.Snapshot()
			ms.Histogram = &h
			ms.Value = float64(h.Count)
		} else {
			ms.Value = m.value()
		}
		out = append(out, ms)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
