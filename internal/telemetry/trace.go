package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Exactly one of Value and
// Str is meaningful; Str wins when non-empty.
type Attr struct {
	Key   string
	Value int64
	Str   string
}

// Span is one timed step of a query's execution. Spans form a tree; the
// coordinator holds the root and hands children to the stages it drives.
// All methods are nil-safe so untraced execution pays only the nil checks.
// Exported fields cross the wire via gob (QueryTrace); the mutex guards
// concurrent child/attr appends during execution and is not encoded.
type Span struct {
	Name     string
	Start    time.Time
	Dur      time.Duration
	Attrs    []Attr
	Children []*Span

	mu sync.Mutex
}

// StartSpan begins a root span.
func StartSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild begins a child span, attaching it to s. Safe to call from
// concurrent goroutines; returns nil when s is nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End fixes the span's duration. Later calls keep the first duration.
func (s *Span) End() {
	if s == nil || s.Dur != 0 {
		return
	}
	s.Dur = time.Since(s.Start)
}

// SetInt annotates the span with an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: v})
	s.mu.Unlock()
}

// SetStr annotates the span with a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Str: v})
	s.mu.Unlock()
}

// AttrInt returns the named integer attribute and whether it is present.
func (s *Span) AttrInt(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.Attrs {
		if s.Attrs[i].Key == key && s.Attrs[i].Str == "" {
			return s.Attrs[i].Value, true
		}
	}
	return 0, false
}

// Find returns the first descendant span (depth-first, including s) with
// the given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, c := range children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// QueryTrace is the recoverable execution trace of one query — the span
// tree the coordinator built while executing it, plus identifying
// metadata. It crosses the wire via gob for the `trace` RPC verb.
type QueryTrace struct {
	QueryID uint64
	Policy  string
	Root    *Span
}

// Format renders the span tree as an indented text tree:
//
//	query 1.23ms subqueries=4
//	├─ decompose 11µs mem=1 chunk=3
//	├─ chunk_dispatch 1.1ms policy=lada
//	│  ├─ chunk_subquery 810µs chunk=3 server=2 leaves_read=4 bloom_skipped=12
//	└─ merge_sort 38µs
func (t *QueryTrace) Format() string {
	if t == nil || t.Root == nil {
		return "(no trace)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace query=%d policy=%s\n", t.QueryID, t.Policy)
	writeSpan(&b, t.Root, "", true, true)
	return b.String()
}

func writeSpan(b *strings.Builder, s *Span, prefix string, last, root bool) {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.Attrs...)
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	// Children may finish out of order (parallel fan-out); present them by
	// start time so the tree reads chronologically.
	sort.SliceStable(children, func(i, j int) bool { return children[i].Start.Before(children[j].Start) })

	if !root {
		connector := "├─ "
		if last {
			connector = "└─ "
		}
		b.WriteString(prefix)
		b.WriteString(connector)
	}
	fmt.Fprintf(b, "%s %s", s.Name, s.Dur.Round(time.Microsecond))
	for _, a := range attrs {
		if a.Str != "" {
			fmt.Fprintf(b, " %s=%s", a.Key, a.Str)
		} else {
			fmt.Fprintf(b, " %s=%d", a.Key, a.Value)
		}
	}
	b.WriteByte('\n')
	childPrefix := prefix
	if !root {
		if last {
			childPrefix += "   "
		} else {
			childPrefix += "│  "
		}
	}
	for i, c := range children {
		writeSpan(b, c, childPrefix, i == len(children)-1, false)
	}
}

// TraceRing keeps the most recent query traces for the introspection
// endpoint. Safe for concurrent use.
type TraceRing struct {
	mu     sync.Mutex
	traces []*QueryTrace
	next   int
	cap    int
}

// NewTraceRing creates a ring holding up to n traces (n <= 0 picks 16).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 16
	}
	return &TraceRing{cap: n}
}

// Add records a trace, evicting the oldest past capacity. Nil-safe.
func (r *TraceRing) Add(t *QueryTrace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	if len(r.traces) < r.cap {
		r.traces = append(r.traces, t)
	} else {
		r.traces[r.next] = t
	}
	r.next = (r.next + 1) % r.cap
	r.mu.Unlock()
}

// Recent returns the retained traces, oldest first.
func (r *TraceRing) Recent() []*QueryTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*QueryTrace, 0, len(r.traces))
	if len(r.traces) == r.cap {
		out = append(out, r.traces[r.next:]...)
		out = append(out, r.traces[:r.next]...)
	} else {
		out = append(out, r.traces...)
	}
	return out
}
