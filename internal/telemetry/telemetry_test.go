package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ww_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("ww_test_gauge", "a gauge")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	r.CounterFunc("ww_fn_total", "", func() int64 { return 7 })
	r.GaugeFunc("ww_fn_gauge", "", func() float64 { return -1 })

	snap := r.Snapshot()
	vals := map[string]float64{}
	for _, m := range snap {
		vals[m.Name] = m.Value
	}
	for name, want := range map[string]float64{
		"ww_test_total": 5, "ww_test_gauge": 2.5, "ww_fn_total": 7, "ww_fn_gauge": -1,
	} {
		if vals[name] != want {
			t.Errorf("%s = %v, want %v", name, vals[name], want)
		}
	}
}

func TestRegistryIdempotentAndNilSafe(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "")
	b := r.Counter("dup_total", "")
	if a != b {
		t.Error("re-registration returned a different handle")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()

	// Nil registry and nil handles are no-ops.
	var nr *Registry
	nr.Counter("x", "").Inc()
	nr.Gauge("x", "").Set(1)
	nr.Histogram("x", "").Observe(time.Second)
	nr.CounterFunc("x", "", nil)
	nr.GaugeFunc("x", "", nil)
	if nr.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}
	if err := nr.WritePrometheus(nil); err != nil {
		t.Error(err)
	}
	var sp *Span
	sp.StartChild("c").SetInt("k", 1)
	sp.End()

	r.Gauge("dup_total", "") // kind mismatch → panic (checked in defer)
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations at ~1ms, 10 at ~100ms.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("count = %d", s.Count)
	}
	// Bucket bounds are powers of two: estimates must bracket the true
	// value within a factor of 2.
	if s.P50 < time.Millisecond || s.P50 > 2*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P99 < 100*time.Millisecond || s.P99 > 200*time.Millisecond {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.Max < 100*time.Millisecond {
		t.Errorf("max = %v", s.Max)
	}
	if s.Mean <= 0 || s.Sum <= 0 {
		t.Errorf("mean=%v sum=%v", s.Mean, s.Sum)
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot %+v", s)
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamped to 0
	h.Observe(100 * time.Hour)
	if s := h.Snapshot(); s.Count != 3 {
		t.Errorf("count = %d", s.Count)
	}
}

func TestBucketFor(t *testing.T) {
	for _, tc := range []struct {
		nanos int64
		want  int
	}{
		{0, 0}, {1, 0}, {256, 0}, {257, 1}, {512, 1}, {513, 2},
		{1 << 62, histBuckets - 1},
	} {
		if got := bucketFor(tc.nanos); got != tc.want {
			t.Errorf("bucketFor(%d) = %d, want %d", tc.nanos, got, tc.want)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ww_ops_total", "operations").Add(3)
	r.Counter(`ww_cache_hits_total{unit="leaf"}`, "hits").Add(2)
	r.Counter(`ww_cache_hits_total{unit="header"}`, "hits").Inc()
	h := r.Histogram(`ww_lat_seconds{policy="lada"}`, "latency")
	h.Observe(time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ww_ops_total counter",
		"ww_ops_total 3",
		`ww_cache_hits_total{unit="leaf"} 2`,
		`ww_cache_hits_total{unit="header"} 1`,
		"# TYPE ww_lat_seconds summary",
		`ww_lat_seconds{policy="lada",quantile="0.5"}`,
		`ww_lat_seconds_count{policy="lada"} 1`,
		`ww_lat_seconds_sum{policy="lada"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// The shared family header must appear exactly once.
	if n := strings.Count(out, "# TYPE ww_cache_hits_total counter"); n != 1 {
		t.Errorf("family header appears %d times", n)
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	h := r.Histogram("conc_seconds", "")
	g := r.Gauge("conc_gauge", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(time.Duration(j) * time.Microsecond)
				g.Set(float64(j))
			}
		}()
	}
	// Concurrent reads.
	for i := 0; i < 10; i++ {
		r.Snapshot()
		var b strings.Builder
		r.WritePrometheus(&b)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d", h.Count())
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "")
	h := r.Histogram("alloc_seconds", "")
	g := r.Gauge("alloc_gauge", "")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(time.Millisecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	// The disabled (nil-handle) path must also be allocation-free.
	var nc *Counter
	var nh *Histogram
	var sp *Span
	if n := testing.AllocsPerRun(1000, func() {
		nc.Inc()
		nh.Observe(time.Millisecond)
		sp.End()
		_ = sp.StartChild("x")
	}); n != 0 {
		t.Errorf("nil handles allocate %v/op", n)
	}
}
