package telemetry

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := StartSpan("query")
	dec := root.StartChild("decompose")
	dec.SetInt("chunks", 3)
	dec.End()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.StartChild("chunk_subquery")
			c.SetInt("chunk", int64(i))
			c.End()
		}(i)
	}
	wg.Wait()
	root.End()

	if len(root.Children) != 5 {
		t.Fatalf("children = %d, want 5", len(root.Children))
	}
	if root.Dur <= 0 {
		t.Error("root duration not set")
	}
	if v, ok := dec.AttrInt("chunks"); !ok || v != 3 {
		t.Errorf("attr chunks = %d,%v", v, ok)
	}
	if root.Find("decompose") != dec {
		t.Error("Find failed")
	}
	if root.Find("nope") != nil {
		t.Error("Find invented a span")
	}

	// End is idempotent: the first duration sticks.
	d := dec.Dur
	time.Sleep(time.Millisecond)
	dec.End()
	if dec.Dur != d {
		t.Error("second End changed duration")
	}
}

func TestQueryTraceFormatAndGob(t *testing.T) {
	root := StartSpan("query")
	dec := root.StartChild("decompose")
	dec.SetInt("mem_subqueries", 1)
	dec.End()
	disp := root.StartChild("chunk_dispatch")
	sq := disp.StartChild("chunk_subquery")
	sq.SetInt("chunk", 7)
	sq.SetStr("kind", "leaf")
	sq.End()
	disp.End()
	root.End()
	tr := &QueryTrace{QueryID: 42, Policy: "lada", Root: root}

	out := tr.Format()
	for _, want := range []string{
		"trace query=42 policy=lada",
		"query ",
		"├─ decompose", "mem_subqueries=1",
		"└─ chunk_dispatch",
		"   └─ chunk_subquery", "chunk=7", "kind=leaf",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q in:\n%s", want, out)
		}
	}

	// Round-trip over gob, as the trace RPC verb does.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tr); err != nil {
		t.Fatal(err)
	}
	var got QueryTrace
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.QueryID != 42 || got.Policy != "lada" {
		t.Errorf("decoded header %+v", got)
	}
	if got.Root == nil || len(got.Root.Children) != 2 {
		t.Fatalf("decoded tree lost children")
	}
	if got.Format() != out {
		t.Error("decoded trace formats differently")
	}

	var nilTrace *QueryTrace
	if !strings.Contains(nilTrace.Format(), "no trace") {
		t.Error("nil trace format")
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(&QueryTrace{QueryID: uint64(i)})
	}
	got := r.Recent()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	want := []uint64{2, 3, 4}
	for i, tr := range got {
		if tr.QueryID != want[i] {
			t.Errorf("ring[%d] = %d, want %d (%v)", i, tr.QueryID, want[i], fmt.Sprint(got))
		}
	}
	var nr *TraceRing
	nr.Add(&QueryTrace{})
	if nr.Recent() != nil {
		t.Error("nil ring recent")
	}
	r.Add(nil) // ignored
	if len(r.Recent()) != 3 {
		t.Error("nil trace was stored")
	}
}
