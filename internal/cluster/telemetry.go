package cluster

import (
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
)

// registerFuncMetrics bridges the cluster's always-on counters (ingest
// stats, DFS metrics, dispatcher/balancer state, caches) into the metric
// registry as read-at-exposition functions. The components keep their own
// race-safe atomics as the source of truth; the registry only samples them
// when scraped, so nothing is double-counted and Stats() stays meaningful
// with telemetry disabled. No-op when the cluster has no registry.
func (c *Cluster) registerFuncMetrics() {
	reg := c.reg
	if reg == nil {
		return
	}

	// Ingestion path.
	reg.CounterFunc("waterwheel_ingest_tuples_total", "tuples accepted by indexing servers", c.Ingested)
	reg.CounterFunc("waterwheel_ingest_flushes_total", "memtable flushes to DFS chunks", func() int64 {
		var n int64
		for _, srv := range c.servers() {
			if srv == nil {
				continue
			}
			n += srv.Stats().Flushes.Load()
		}
		return n
	})
	reg.CounterFunc("waterwheel_ingest_flush_bytes_total", "chunk bytes written by flushes", func() int64 {
		var n int64
		for _, srv := range c.servers() {
			if srv == nil {
				continue
			}
			n += srv.Stats().FlushBytes.Load()
		}
		return n
	})
	reg.CounterFunc("waterwheel_ingest_flush_failures_total", "flushes that failed to write or register", func() int64 {
		var n int64
		for _, srv := range c.servers() {
			if srv == nil {
				continue
			}
			n += srv.Stats().FlushFailures.Load()
		}
		return n
	})
	reg.CounterFunc("waterwheel_ingest_side_routed_total", "very-late tuples admitted to side stores", func() int64 {
		var n int64
		for _, srv := range c.servers() {
			if srv == nil {
				continue
			}
			n += srv.Stats().SideRouted.Load()
		}
		return n
	})
	reg.CounterFunc("waterwheel_ingest_recovered_total", "tuples replayed from the WAL after crashes", func() int64 {
		var n int64
		for _, srv := range c.servers() {
			if srv == nil {
				continue
			}
			n += srv.Stats().Recovered.Load()
		}
		return n
	})
	reg.CounterFunc("waterwheel_template_updates_total", "adaptive template rebuilds across memtable trees", func() int64 {
		var n int64
		for _, srv := range c.servers() {
			if srv == nil {
				continue
			}
			n += srv.TreeStats().TemplateUpdates.Load()
		}
		return n
	})
	reg.GaugeFunc("waterwheel_memtable_bytes", "bytes buffered in memtables (tree + side store)", func() float64 {
		var n int64
		for _, srv := range c.servers() {
			if srv == nil {
				continue
			}
			n += srv.MemBytes()
		}
		return float64(n)
	})
	reg.GaugeFunc("waterwheel_memtable_tuples", "tuples buffered in memtables", func() float64 {
		return float64(c.MemLen())
	})
	reg.GaugeFunc("waterwheel_flush_queue_depth", "memtable snapshots swapped out but not yet registered as chunks", func() float64 {
		n := 0
		for _, srv := range c.servers() {
			if srv == nil {
				continue
			}
			n += srv.PendingFlushes()
		}
		return float64(n)
	})
	reg.CounterFunc("waterwheel_ingest_backpressure_total", "threshold-crossing inserts that blocked on a full flush queue", func() int64 {
		var n int64
		for _, srv := range c.servers() {
			if srv == nil {
				continue
			}
			n += srv.Stats().Backpressure.Load()
		}
		return n
	})
	reg.GaugeFunc("waterwheel_skewness_max", "worst current template skewness S(P,D) across indexing servers", func() float64 {
		worst := 0.0
		for _, srv := range c.servers() {
			if srv == nil {
				continue
			}
			if s := srv.SkewnessFactor(); s > worst {
				worst = s
			}
		}
		return worst
	})

	// Dispatch and adaptive partitioning.
	reg.CounterFunc("waterwheel_dispatched_total", "tuples routed by dispatchers", func() int64 {
		var n int64
		for _, d := range c.disp {
			n += int64(d.Dispatched())
		}
		return n
	})
	reg.GaugeFunc("waterwheel_partition_imbalance", "key-histogram imbalance at the last balancer run", c.bal.LastImbalance)
	reg.GaugeFunc("waterwheel_schema_version", "current key-partitioning schema version", func() float64 {
		return float64(c.ms.Schema().Version)
	})

	// Metadata and storage.
	reg.GaugeFunc("waterwheel_chunks", "chunks registered in the metadata R-tree", func() float64 {
		return float64(c.ms.ChunkCount())
	})
	reg.GaugeFunc(`waterwheel_tier_chunks{tier="hot"}`, "registered chunks by retention tier", func() float64 {
		return float64(c.ms.TierCounts()[meta.TierHot])
	})
	reg.GaugeFunc(`waterwheel_tier_chunks{tier="warm"}`, "registered chunks by retention tier", func() float64 {
		return float64(c.ms.TierCounts()[meta.TierWarm])
	})
	reg.GaugeFunc(`waterwheel_tier_chunks{tier="cold"}`, "registered chunks by retention tier", func() float64 {
		return float64(c.ms.TierCounts()[meta.TierCold])
	})
	reg.GaugeFunc("waterwheel_retired_pending_deletes", "retired chunk files parked until in-flight queries drain", func() float64 {
		return float64(c.ret.pending())
	})
	reg.CounterFunc("waterwheel_dfs_reads_total", "DFS read accesses", func() int64 {
		return c.fs.Metrics().Reads.Load()
	})
	reg.CounterFunc(`waterwheel_dfs_reads_by_locality_total{locality="local"}`, "DFS reads served by a co-located replica", func() int64 {
		return c.fs.Metrics().LocalReads.Load()
	})
	reg.CounterFunc(`waterwheel_dfs_reads_by_locality_total{locality="remote"}`, "DFS reads served by a remote replica", func() int64 {
		return c.fs.Metrics().RemoteReads.Load()
	})
	reg.CounterFunc("waterwheel_dfs_read_bytes_total", "bytes read from the DFS", func() int64 {
		return c.fs.Metrics().BytesRead.Load()
	})
	reg.CounterFunc("waterwheel_dfs_writes_total", "DFS write accesses", func() int64 {
		return c.fs.Metrics().Writes.Load()
	})
	reg.CounterFunc("waterwheel_dfs_write_bytes_total", "bytes written to the DFS", func() int64 {
		return c.fs.Metrics().BytesWrite.Load()
	})

	// WAL backlog: records appended but not yet consumed, the ingestion
	// pipeline's queue depth.
	if !c.cfg.SyncIngest {
		reg.GaugeFunc("waterwheel_wal_backlog", "WAL records appended but not yet consumed", func() float64 {
			var lag int64
			for i, srv := range c.servers() {
				if srv == nil {
					continue
				}
				if d := c.log.Partition(i).Next() - srv.Consumed(); d > 0 {
					lag += d
				}
			}
			return float64(lag)
		})
		// Page-cache exposure: segment bytes a host crash would lose. Zero
		// by construction while inserters are quiescent under ack-on-fsync.
		reg.GaugeFunc("waterwheel_wal_unsynced_bytes", "WAL segment bytes appended but not yet fsynced", func() float64 {
			var n int64
			for i := 0; i < c.log.Partitions(); i++ {
				n += c.log.Partition(i).UnsyncedBytes()
			}
			return float64(n)
		})
	}

	// Query-server caches.
	reg.GaugeFunc("waterwheel_cache_used_bytes", "bytes held by query-server LRU caches", func() float64 {
		var n int64
		for _, qs := range c.qsrv {
			n += qs.CacheMetrics().Used
		}
		return float64(n)
	})

	// Watermark: the largest event time observed, for stream-lag panels.
	reg.GaugeFunc("waterwheel_watermark_millis", "largest event timestamp observed by any indexing server", func() float64 {
		var hi model.Timestamp
		for _, srv := range c.servers() {
			if srv == nil {
				continue
			}
			if w := srv.Watermark(); w > hi {
				hi = w
			}
		}
		return float64(hi)
	})
}
