package cluster

import (
	"sync"
	"sync/atomic"
	"testing"

	"waterwheel/internal/model"
)

func persistentConfig(dir string) Config {
	cfg := testConfig()
	cfg.DataDir = dir
	return cfg
}

func TestPersistentRestartRecoversEverything(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(persistentConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for i := 0; i < 3000; i++ {
		c.Insert(model.Tuple{Key: model.Key(uint64(i) << 45), Time: model.Timestamp(i), Payload: []byte{byte(i)}})
	}
	c.Drain()
	// Leave a mix of flushed chunks and unflushed memtable tail.
	if c.Metadata().ChunkCount() == 0 {
		c.IndexServers()[0].Flush()
	}
	memBefore := c.MemLen()
	chunksBefore := c.Metadata().ChunkCount()
	c.Stop()

	// "Restart the process": a new cluster over the same directory.
	c2, err := Open(persistentConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	defer c2.Stop()
	c2.Drain() // replay the WAL tails
	if got := c2.Metadata().ChunkCount(); got != chunksBefore {
		t.Errorf("chunks after restart: %d, want %d", got, chunksBefore)
	}
	res, err := c2.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 3000 {
		t.Fatalf("after restart query found %d/3000 (mem before stop: %d)", len(res.Tuples), memBefore)
	}
	// The restarted cluster keeps working.
	for i := 0; i < 100; i++ {
		c2.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(100_000 + i)})
	}
	c2.Drain()
	res, err = c2.Query(model.Query{Keys: model.FullKeyRange(), Times: model.TimeRange{Lo: 100_000, Hi: 200_000}})
	if err != nil || len(res.Tuples) != 100 {
		t.Fatalf("post-restart inserts: %d, %v", len(res.Tuples), err)
	}
}

func TestPersistentSchemaSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := persistentConfig(dir)
	cfg.Nodes = 4
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for i := 0; i < 10_000; i++ {
		c.Insert(model.Tuple{Key: model.Key(i % 1000), Time: model.Timestamp(i)}) // skewed
	}
	c.Drain()
	if !c.TickBalance() {
		t.Fatal("expected a rebalance")
	}
	version := c.Metadata().Schema().Version
	c.Stop()

	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	defer c2.Stop()
	if got := c2.Metadata().Schema().Version; got != version {
		t.Errorf("schema version after restart: %d, want %d", got, version)
	}
}

// hardCrashSurvivors inserts n tuples from 8 concurrent inserters under
// the given durability policy, hard-crashes the cluster without a single
// checkpoint or flush (everything lives in the WAL), reopens it and
// returns how many acked tuples survived plus the reopened cluster.
func hardCrashSurvivors(t *testing.T, cfg Config, n int) (int, *Cluster) {
	t.Helper()
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	var wg sync.WaitGroup
	rejected := atomic.Int64{}
	per := n / 8
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq := uint64(g*per + i)
				err := c.Insert(model.Tuple{
					Key: model.Key(seq << 45), Time: model.Timestamp(seq), Payload: []byte{byte(seq)},
				})
				if err != nil {
					rejected.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if rejected.Load() != 0 {
		t.Fatalf("%d inserts rejected with a healthy log", rejected.Load())
	}
	c.Drain()
	if got := c.Metadata().ChunkCount(); got != 0 {
		t.Fatalf("test premise broken: %d chunks flushed, tuples must live in the WAL only", got)
	}
	if err := c.HardCrash(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	c2.Drain()
	res, err := c2.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Tuples), c2
}

// TestHardCrashAckOnFsyncLosesNothing: under "ack-on-fsync" every acked
// insert has paid for an fsync covering it, so a hard crash — WAL cut back
// to the fsync watermark, flushers aborted, no checkpoint — loses nothing.
func TestHardCrashAckOnFsyncLosesNothing(t *testing.T) {
	cfg := persistentConfig(t.TempDir())
	cfg.Durability = "ack-on-fsync"
	const n = 512
	got, c2 := hardCrashSurvivors(t, cfg, n)
	defer c2.Stop()
	if got != n {
		t.Fatalf("lost %d of %d fsync-acked tuples across a hard crash", n-got, n)
	}
}

// TestHardCrashAckOnWriteLosesTail documents the gap the fsync policy
// closes: with write-acked inserts and no flush or checkpoint forcing a
// sync, the whole acked workload sits in the page cache and dies with the
// host. The reopened cluster must still be fully usable.
func TestHardCrashAckOnWriteLosesTail(t *testing.T) {
	cfg := persistentConfig(t.TempDir())
	const n = 512
	got, c2 := hardCrashSurvivors(t, cfg, n)
	defer c2.Stop()
	if got >= n {
		t.Fatalf("ack-on-write hard crash lost nothing (%d/%d): the loss probe is inert", got, n)
	}
	// Survivor state stays sound: new inserts land and are queryable.
	for i := 0; i < 100; i++ {
		if err := c2.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(1_000_000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	c2.Drain()
	res, err := c2.Query(model.Query{Keys: model.FullKeyRange(), Times: model.TimeRange{Lo: 1_000_000, Hi: 2_000_000}})
	if err != nil || len(res.Tuples) != 100 {
		t.Fatalf("post-crash inserts: %d, %v", len(res.Tuples), err)
	}
}

// TestDurabilityRequiresDataDir: fsync-based ack policies are meaningless
// on the in-memory WAL and must be rejected at Open.
func TestDurabilityRequiresDataDir(t *testing.T) {
	cfg := testConfig()
	cfg.Durability = "ack-on-fsync"
	if _, err := Open(cfg); err == nil {
		t.Fatal("ack-on-fsync without DataDir accepted")
	}
	cfg.Durability = "no-such-policy"
	cfg.DataDir = t.TempDir()
	if _, err := Open(cfg); err == nil {
		t.Fatal("unknown durability policy accepted")
	}
}

// TestHardCrashRequiresDataDir: an in-memory cluster has no crash to
// simulate.
func TestHardCrashRequiresDataDir(t *testing.T) {
	c := New(testConfig())
	c.Start()
	defer c.Stop()
	if err := c.HardCrash(); err == nil {
		t.Fatal("HardCrash without DataDir accepted")
	}
}

func TestPersistentRejectsSyncIngest(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	cfg.SyncIngest = true
	if _, err := Open(cfg); err == nil {
		t.Fatal("DataDir + SyncIngest accepted")
	}
}

func TestCheckpointWithoutDataDirIsNoop(t *testing.T) {
	c := New(testConfig())
	c.Start()
	defer c.Stop()
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("no-op checkpoint errored: %v", err)
	}
}
