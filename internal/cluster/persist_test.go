package cluster

import (
	"testing"

	"waterwheel/internal/model"
)

func persistentConfig(dir string) Config {
	cfg := testConfig()
	cfg.DataDir = dir
	return cfg
}

func TestPersistentRestartRecoversEverything(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(persistentConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for i := 0; i < 3000; i++ {
		c.Insert(model.Tuple{Key: model.Key(uint64(i) << 45), Time: model.Timestamp(i), Payload: []byte{byte(i)}})
	}
	c.Drain()
	// Leave a mix of flushed chunks and unflushed memtable tail.
	if c.Metadata().ChunkCount() == 0 {
		c.IndexServers()[0].Flush()
	}
	memBefore := c.MemLen()
	chunksBefore := c.Metadata().ChunkCount()
	c.Stop()

	// "Restart the process": a new cluster over the same directory.
	c2, err := Open(persistentConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	defer c2.Stop()
	c2.Drain() // replay the WAL tails
	if got := c2.Metadata().ChunkCount(); got != chunksBefore {
		t.Errorf("chunks after restart: %d, want %d", got, chunksBefore)
	}
	res, err := c2.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 3000 {
		t.Fatalf("after restart query found %d/3000 (mem before stop: %d)", len(res.Tuples), memBefore)
	}
	// The restarted cluster keeps working.
	for i := 0; i < 100; i++ {
		c2.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(100_000 + i)})
	}
	c2.Drain()
	res, err = c2.Query(model.Query{Keys: model.FullKeyRange(), Times: model.TimeRange{Lo: 100_000, Hi: 200_000}})
	if err != nil || len(res.Tuples) != 100 {
		t.Fatalf("post-restart inserts: %d, %v", len(res.Tuples), err)
	}
}

func TestPersistentSchemaSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := persistentConfig(dir)
	cfg.Nodes = 4
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for i := 0; i < 10_000; i++ {
		c.Insert(model.Tuple{Key: model.Key(i % 1000), Time: model.Timestamp(i)}) // skewed
	}
	c.Drain()
	if !c.TickBalance() {
		t.Fatal("expected a rebalance")
	}
	version := c.Metadata().Schema().Version
	c.Stop()

	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	defer c2.Stop()
	if got := c2.Metadata().Schema().Version; got != version {
		t.Errorf("schema version after restart: %d, want %d", got, version)
	}
}

func TestPersistentRejectsSyncIngest(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	cfg.SyncIngest = true
	if _, err := Open(cfg); err == nil {
		t.Fatal("DataDir + SyncIngest accepted")
	}
}

func TestCheckpointWithoutDataDirIsNoop(t *testing.T) {
	c := New(testConfig())
	c.Start()
	defer c.Stop()
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("no-op checkpoint errored: %v", err)
	}
}
