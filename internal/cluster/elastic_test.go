package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"waterwheel/internal/meta"
	"waterwheel/internal/model"
)

// elasticConfig is a WAL-mode cluster with hot standbys on every slot —
// the topology the elastic ops run against.
func elasticConfig() Config {
	cfg := testConfig()
	cfg.Nodes = 2
	cfg.IndexServersPerNode = 2
	cfg.HotStandby = true
	return cfg
}

// seqInsert acks one tuple carrying seq in its payload and returns the
// insert error.
func seqInsert(c *Cluster, seq uint64, key model.Key) error {
	payload := make([]byte, 8)
	binary.BigEndian.PutUint64(payload, seq)
	return c.Insert(model.Tuple{Key: key, Time: model.Timestamp(seq), Payload: payload})
}

// verifyExactlyOnce queries the full region and checks that exactly the
// acked sequence numbers [0, n) come back, each exactly once — the
// "every acked tuple owned by exactly one server" invariant: a tuple
// double-owned after a botched handoff surfaces as a duplicate, a tuple
// owned by nobody as a gap.
func verifyExactlyOnce(t *testing.T, c *Cluster, n uint64) {
	t.Helper()
	res, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if err != nil {
		t.Fatalf("full-region query: %v", err)
	}
	seen := make(map[uint64]bool, len(res.Tuples))
	for i := range res.Tuples {
		seq := binary.BigEndian.Uint64(res.Tuples[i].Payload)
		if seq >= n {
			t.Fatalf("unknown seq %d returned (acked %d)", seq, n)
		}
		if seen[seq] {
			t.Fatalf("seq %d returned more than once: two servers own it", seq)
		}
		seen[seq] = true
	}
	if uint64(len(seen)) != n {
		t.Fatalf("query returned %d distinct acked tuples, want %d", len(seen), n)
	}
}

func TestAddIndexServerGrowsCluster(t *testing.T) {
	c := startCluster(t, elasticConfig())
	var seq uint64
	rng := rand.New(rand.NewSource(7))
	for ; seq < 2000; seq++ {
		if err := seqInsert(c, seq, model.Key(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	before := len(c.ActiveSlots())
	id, err := c.AddIndexServer()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.ActiveSlots()); got != before+1 {
		t.Fatalf("active slots after add: %d, want %d", got, before+1)
	}
	if kr := c.Metadata().Schema().IntervalOf(id); kr.Hi <= kr.Lo {
		t.Fatalf("new slot %d got empty interval %v", id, kr)
	}
	// Tuples inserted after the split route into the new slot's region too.
	for ; seq < 4000; seq++ {
		if err := seqInsert(c, seq, model.Key(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	verifyExactlyOnce(t, c, seq)
	if got := c.IndexServers()[id]; got == nil {
		t.Fatalf("slot %d has no server", id)
	}
}

func TestDecommissionIndexServerDrainsOut(t *testing.T) {
	c := startCluster(t, elasticConfig())
	var seq uint64
	rng := rand.New(rand.NewSource(8))
	for ; seq < 2000; seq++ {
		if err := seqInsert(c, seq, model.Key(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.DecommissionIndexServer(1); err != nil {
		t.Fatal(err)
	}
	if c.IndexServers()[1] != nil {
		t.Fatal("retired slot still has a live server")
	}
	if c.Metadata().Schema().Active(1) {
		t.Fatal("retired slot still active in the schema")
	}
	// Stragglers and new inserts reroute through the merged schema.
	for ; seq < 4000; seq++ {
		if err := seqInsert(c, seq, model.Key(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	verifyExactlyOnce(t, c, seq)
}

// TestKillIndexServerFencesDeposedOwner is the regression test for the
// replay/ownership race: KillIndexServer must bump the slot's fencing
// epoch BEFORE the replacement starts registering regions, so a deposed
// owner's in-flight flush — however delayed — can never re-register
// chunks or move the committed offset under the new owner. The test
// proves the fence at the metadata layer: a registration carrying the
// deposed epoch is rejected with ErrFenced even after the takeover is
// long done.
func TestKillIndexServerFencesDeposedOwner(t *testing.T) {
	c := startCluster(t, elasticConfig())
	var seq uint64
	rng := rand.New(rand.NewSource(9))
	for ; seq < 1000; seq++ {
		if err := seqInsert(c, seq, model.Key(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	ms := c.Metadata()
	deposed := ms.Epoch(0)
	offBefore := ms.Offset(0)
	if err := c.KillIndexServer(0); err != nil {
		t.Fatal(err)
	}
	if got := ms.Epoch(0); got <= deposed {
		t.Fatalf("epoch after takeover: %d, want > %d", got, deposed)
	}
	// The deposed owner tries to commit a flush it had in flight.
	_, err := ms.RegisterFlushOwned(0, deposed, []meta.ChunkInfo{}, offBefore+1)
	if !errors.Is(err, meta.ErrFenced) {
		t.Fatalf("deposed-epoch registration: err = %v, want ErrFenced", err)
	}
	// The slot keeps working under its new owner.
	for ; seq < 2000; seq++ {
		if err := seqInsert(c, seq, model.Key(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	verifyExactlyOnce(t, c, seq)
}

// TestHandoffLinearizability is the property test: a sustained insert
// stream races randomly timed kills, planned handoffs, splits and
// decommissions, and at every point each acked tuple must be owned by
// exactly one server — proven by the exactly-once full-region check —
// with fencing epochs strictly increasing across every takeover.
func TestHandoffLinearizability(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			c := startCluster(t, elasticConfig())
			const total = 6000
			var acked atomic.Uint64
			var insertErr atomic.Value
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed * 31))
				for seq := uint64(0); seq < total; seq++ {
					if err := seqInsert(c, seq, model.Key(rng.Uint64())); err != nil {
						insertErr.Store(fmt.Errorf("seq %d: %w", seq, err))
						return
					}
					acked.Store(seq + 1)
				}
			}()
			// Topology churn at random points while the stream runs.
			rng := rand.New(rand.NewSource(seed * 77))
			epochs := map[int]int64{}
			for step := 0; step < 8 && acked.Load() < total; step++ {
				time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				slots := c.ActiveSlots()
				slot := slots[rng.Intn(len(slots))]
				before := c.Metadata().Epoch(slot)
				switch action := rng.Intn(10); {
				case action < 4: // kill: standby takeover at an arbitrary lag
					if err := c.KillIndexServer(slot); err != nil {
						t.Errorf("kill slot %d: %v", slot, err)
					}
				case action < 7: // planned handoff: lag-bounded flip
					if err := c.PromoteStandby(slot); err != nil {
						t.Errorf("promote slot %d: %v", slot, err)
					}
				case action < 9 && len(slots) < 7: // split the widest interval
					if _, err := c.AddIndexServer(); err != nil {
						t.Errorf("add server: %v", err)
					}
					continue
				case len(slots) > 2: // retire a slot mid-stream
					if err := c.DecommissionIndexServer(slot); err != nil {
						t.Errorf("decommission slot %d: %v", slot, err)
					}
					continue
				default:
					continue
				}
				after := c.Metadata().Epoch(slot)
				if after <= before {
					t.Errorf("slot %d epoch did not advance across handoff: %d -> %d",
						slot, before, after)
				}
				if prev, ok := epochs[slot]; ok && after <= prev {
					t.Errorf("slot %d epoch regressed: %d -> %d", slot, prev, after)
				}
				epochs[slot] = after
			}
			wg.Wait()
			if err := insertErr.Load(); err != nil {
				t.Fatalf("insert failed mid-stream: %v", err)
			}
			c.Drain()
			verifyExactlyOnce(t, c, acked.Load())
		})
	}
}

// TestCoordinatorRestartFromMetadata: the coordinator must be fully
// restartable from serialized metadata alone — mid-run, after elastic
// churn. The test checkpoints after a handoff and a split, reopens a
// fresh cluster from the directory, and requires identical query results,
// surviving fencing epochs, and a working subsequent handoff.
func TestCoordinatorRestartFromMetadata(t *testing.T) {
	dir := t.TempDir()
	cfg := elasticConfig()
	cfg.DataDir = dir
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	var seq uint64
	rng := rand.New(rand.NewSource(11))
	for ; seq < 2000; seq++ {
		if err := seqInsert(c, seq, model.Key(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.PromoteStandby(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddIndexServer(); err != nil {
		t.Fatal(err)
	}
	for ; seq < 3000; seq++ {
		if err := seqInsert(c, seq, model.Key(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	// Serialize the coordinator's entire state mid-run.
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	epoch0 := c.Metadata().Epoch(0)
	if epoch0 < 2 {
		t.Fatalf("epoch after handoff: %d, want >= 2", epoch0)
	}
	schemaVersion := c.Metadata().Schema().Version
	nSlots := len(c.ActiveSlots())
	c.Stop()

	// A fresh coordinator built from metadata alone.
	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	defer c2.Stop()
	c2.Drain()
	if got := c2.Metadata().Epoch(0); got != epoch0 {
		t.Errorf("epoch 0 after restart: %d, want %d", got, epoch0)
	}
	if got := c2.Metadata().Schema().Version; got != schemaVersion {
		t.Errorf("schema version after restart: %d, want %d", got, schemaVersion)
	}
	if got := len(c2.ActiveSlots()); got != nSlots {
		t.Errorf("active slots after restart: %d, want %d", got, nSlots)
	}
	verifyExactlyOnce(t, c2, seq)
	// The restored coordinator performs the next handoff like the old one.
	if err := c2.PromoteStandby(0); err != nil {
		t.Fatalf("handoff after restart: %v", err)
	}
	if got := c2.Metadata().Epoch(0); got <= epoch0 {
		t.Errorf("epoch after post-restart handoff: %d, want > %d", got, epoch0)
	}
	for ; seq < 4000; seq++ {
		if err := seqInsert(c2, seq, model.Key(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	c2.Drain()
	verifyExactlyOnce(t, c2, seq)
}
