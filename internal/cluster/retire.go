// Drain-safe chunk retirement: when retention or compaction drops a
// chunk, its metadata vanishes immediately (no new query can plan it)
// but the file must outlive every query planned before the drop — those
// queries hold subqueries that will still read it. The retirer evicts
// the chunk's cached bytes from every query server, then parks the file
// delete until the cluster's oldest active query is newer than the
// query horizon captured at drop time. A subquery that still loses the
// race (file deleted between metadata drop and its read) gets the typed
// queryexec.ErrRetired, which the coordinator resolves against current
// metadata instead of failing the query.
package cluster

import (
	"sync"

	"waterwheel/internal/meta"
)

// retiredChunk is one dropped chunk awaiting file deletion.
type retiredChunk struct {
	info meta.ChunkInfo
	// horizon is the metadata query horizon captured after the drop: any
	// query that could have planned this chunk has ID <= horizon. The
	// file is deletable once every active query ID exceeds it.
	horizon uint64
}

// retirer defers chunk-file deletion until in-flight queries drain.
type retirer struct {
	c  *Cluster
	mu sync.Mutex
	q  []retiredChunk
}

func newRetirer(c *Cluster) *retirer { return &retirer{c: c} }

// retire takes ownership of dropped chunks: evicts their cached bytes
// from every query server, queues their files behind the current query
// horizon, and sweeps whatever is already deletable. Callers must have
// already removed the chunks from metadata.
func (r *retirer) retire(infos []meta.ChunkInfo) {
	if len(infos) == 0 {
		return
	}
	for _, qs := range r.c.qsrv {
		for _, ci := range infos {
			qs.EvictChunk(ci.ID)
		}
	}
	horizon := r.c.ms.QueryHorizon()
	r.mu.Lock()
	for _, ci := range infos {
		r.q = append(r.q, retiredChunk{info: ci, horizon: horizon})
	}
	r.mu.Unlock()
	r.sweep()
}

// sweep deletes every queued file whose gating queries have completed.
func (r *retirer) sweep() {
	oldest := r.c.ms.OldestActiveQuery()
	r.mu.Lock()
	var doomed []retiredChunk
	kept := r.q[:0]
	for _, rc := range r.q {
		if rc.horizon < oldest {
			doomed = append(doomed, rc)
		} else {
			kept = append(kept, rc)
		}
	}
	r.q = kept
	r.mu.Unlock()
	for _, rc := range doomed {
		r.c.fs.Delete(rc.info.Path)
	}
}

// drain force-deletes everything queued, regardless of query horizons.
// Only for shutdown, after query traffic has stopped.
func (r *retirer) drain() {
	r.mu.Lock()
	doomed := r.q
	r.q = nil
	r.mu.Unlock()
	for _, rc := range doomed {
		r.c.fs.Delete(rc.info.Path)
	}
}

// pending reports how many retired files await deletion (telemetry).
func (r *retirer) pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.q)
}
