// Package cluster wires Waterwheel's components — dispatchers, indexing
// servers, query servers, the metadata server, the query coordinator, the
// WAL and the simulated distributed file system — into a running system
// (paper Figure 3). It plays the role Apache Storm played in the paper's
// prototype: operator placement, data routing, and lifecycle.
//
// The cluster simulates N nodes inside one process. Per node it runs the
// paper's §VI deployment: 2 indexing servers, 4 query servers and 2
// dispatchers, with a DFS datanode co-located on every node. Tuples flow
// dispatcher → WAL partition → indexing server → (flush) → DFS chunk;
// queries flow coordinator → indexing/query servers → merge.
package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"waterwheel/internal/chunk"
	"waterwheel/internal/compact"
	"waterwheel/internal/dfs"
	"waterwheel/internal/dispatcher"
	"waterwheel/internal/ingest"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/queryexec"
	"waterwheel/internal/telemetry"
	"waterwheel/internal/transport"
	"waterwheel/internal/wal"
)

// Config configures a cluster.
type Config struct {
	// Nodes is the simulated node count (default 1).
	Nodes int
	// IndexServersPerNode, QueryServersPerNode, DispatchersPerNode mirror
	// the paper's per-node deployment (defaults 2, 4, 2).
	IndexServersPerNode int
	QueryServersPerNode int
	DispatchersPerNode  int
	// ChunkBytes is the flush threshold (default 16 MB).
	ChunkBytes int64
	// CacheBytes is each query server's LRU budget (default 1 GB).
	CacheBytes int64
	// TemplateLeaves is the leaf count per in-memory tree (default 256).
	TemplateLeaves int
	// SkewThreshold / CheckEvery tune adaptive template update.
	SkewThreshold float64
	CheckEvery    int
	// LateDeltaMillis is the coordinator's late-visibility Δt (default
	// 10 000 ms).
	LateDeltaMillis int64
	// SideThresholdMillis routes very-late tuples to the side store
	// (default 60 000 ms; negative disables).
	SideThresholdMillis int64
	// Replication is the DFS replica count (default 3).
	Replication int
	// DFSLatency models chunk I/O costs; the zero value charges nothing.
	DFSLatency dfs.LatencyModel
	// Policy names the subquery dispatch policy (default "lada").
	Policy string
	// AdaptivePartitioning enables the key balancer (default on; set
	// DisableAdaptive to turn off).
	DisableAdaptive bool
	// BalanceIntervalMillis is the balancer cadence; 0 disables the
	// background loop (use TickBalance for manual control).
	BalanceIntervalMillis int64
	// UseBloom enables leaf time-sketch pruning (default on; set
	// DisableBloom to turn off).
	DisableBloom bool
	// QueryWorkers is each query server's subquery parallelism — how many
	// dispatch-pool goroutines the coordinator runs against it (0 =
	// default 4; 1 restores serial per-server dispatch).
	QueryWorkers int
	// QueryInflightReads bounds each query server's concurrent DFS reads
	// (0 = default 4; 1 serializes chunk I/O).
	QueryInflightReads int
	// NoTemplateReuse rebuilds templates at every flush (ablation).
	NoTemplateReuse bool
	// FlushQueueDepth bounds each indexing server's async flush pipeline:
	// at most this many swapped-out memtable snapshots may await
	// persistence before inserts crossing the threshold block (default 2).
	FlushQueueDepth int
	// SyncFlush makes flushes run inline on the inserting goroutine (the
	// pre-pipeline behavior) — a benchmark baseline and ablation switch.
	SyncFlush bool
	// SyncIngest bypasses the WAL: dispatchers call the indexing servers
	// directly. Maximum-throughput mode for microbenchmarks; forfeits
	// replay-based recovery.
	SyncIngest bool
	// Bloom tunes chunk sketch construction.
	Bloom chunk.BuildOptions
	// Seed drives DFS placement and samplers.
	Seed int64
	// DFSFaultSeed seeds the DFS fault-injection RNG (chaos testing); kept
	// separate from Seed so injecting faults never perturbs placement.
	DFSFaultSeed int64
	// SleepFn replaces time.Sleep for simulated DFS I/O time — a virtual
	// clock makes fault-injection runs deterministic and free of wall-clock
	// waits. Nil uses real sleeps.
	SleepFn func(time.Duration)
	// FlushFailHook is handed to every indexing server (including crash
	// replacements): consulted before each chunk DFS write, a non-nil error
	// fails the attempt. Chaos-testing injection surface.
	FlushFailHook func(server, seq int, attempt int32) error
	// Telemetry, when non-nil, is the metric registry every component
	// reports into; nil runs the cluster without instrumentation (the
	// hot paths then cost only nil checks).
	Telemetry *telemetry.Registry
	// TraceCapacity bounds the ring of retained query traces (default 16;
	// only used when Telemetry is set).
	TraceCapacity int
	// DataDir, when non-empty, makes the deployment durable: chunks back
	// onto DataDir/dfs, the WAL onto DataDir/wal, and the metadata server
	// snapshots to DataDir/meta.snap (written by Checkpoint and Stop). A
	// cluster opened over an existing DataDir restores the previous state
	// and replays each indexing server's WAL tail from its recorded offset
	// (§V). Incompatible with SyncIngest.
	DataDir string
	// Durability selects when inserts are acknowledged relative to WAL
	// fsync in DataDir mode: "" or "ack-on-write" (ack once the record is
	// in the OS page cache — fastest, but a host crash can drop acked
	// tuples), "ack-on-fsync" (group commit: Insert returns only after a
	// batched fsync covers the record), or "interval" (background fsync
	// every FsyncIntervalMillis, bounding the loss window). Policies other
	// than ack-on-write require DataDir.
	Durability string
	// FsyncIntervalMillis is the background fsync cadence for the
	// "interval" durability policy (default 50).
	FsyncIntervalMillis int64
	// HotStandby keeps a WAL-tailing standby shadow per active indexing
	// server (WAL mode only): a kill becomes a takeover instead of a
	// replay-from-offset, and PromoteStandby performs a planned handoff.
	// After every takeover or promotion a fresh standby is started for the
	// new owner automatically.
	HotStandby bool
	// StandbyLagRecords is the catch-up threshold of a planned handoff:
	// PromoteStandby waits until the standby's replay position is within
	// this many records of the partition head before flipping ownership
	// (default 64).
	StandbyLagRecords int
	// ShipStandbyWAL tails standbys through the WAL-shipping transport (a
	// loopback RPC server) instead of in-process partition reads —
	// exercising the exact path a standby on another host would use.
	ShipStandbyWAL bool
	// TierWarmAfterMillis / TierColdAfterMillis age chunks through the
	// retention tiers: a chunk whose max time lags the newest registered
	// data by WarmAfter is demoted to warm, by ColdAfter to cold. Cold
	// chunks are compaction candidates (merged into downsampled chunks).
	// Both zero disables tiering entirely — TickCompact is then a no-op.
	TierWarmAfterMillis int64
	TierColdAfterMillis int64
	// CompactIntervalMillis runs the compactor on a background ticker;
	// zero means manual only (call TickCompact).
	CompactIntervalMillis int64
	// CompactMinInputs is the minimum number of cold chunks in one
	// (server, day) group worth merging (default 2).
	CompactMinInputs int
}

func (c *Config) fill() {
	if c.Nodes < 1 {
		c.Nodes = 1
	}
	if c.IndexServersPerNode <= 0 {
		c.IndexServersPerNode = 2
	}
	if c.QueryServersPerNode <= 0 {
		c.QueryServersPerNode = 4
	}
	if c.DispatchersPerNode <= 0 {
		c.DispatchersPerNode = 2
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 16 << 20
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 1 << 30
	}
	if c.TemplateLeaves <= 0 {
		c.TemplateLeaves = 256
	}
	if c.LateDeltaMillis <= 0 {
		c.LateDeltaMillis = 10_000
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.StandbyLagRecords <= 0 {
		c.StandbyLagRecords = 64
	}
	c.Bloom.DisableBloom = c.Bloom.DisableBloom || c.DisableBloom
}

// Cluster is a running Waterwheel deployment.
type Cluster struct {
	cfg Config

	fs    *dfs.FS
	ms    *meta.Server
	log   *wal.Log
	disp  []*dispatcher.Dispatcher
	qsrv  []*queryexec.Server
	coord *queryexec.Coordinator
	bal   *dispatcher.Balancer
	comp  *compact.Compactor
	ret   *retirer

	// idx[i] is slot i's indexing server — nil once the slot is retired.
	// retired[i] flips (permanently) when slot i is decommissioned; the WAL
	// sink consults it to reroute stragglers dispatched under a pre-removal
	// schema. Both grow under idxMu as elastic scale-out adds slots.
	idxMu   sync.RWMutex
	idx     []*ingest.Server
	retired []bool

	// elasticMu serializes topology operations (add, decommission, kill,
	// promote, rebalance) against each other; the data path never takes it.
	elasticMu sync.Mutex

	// standbys maps slot -> its hot standby (HotStandby mode or explicit
	// StartStandby). closeTail releases a shipping client, when one exists.
	standbyMu sync.Mutex
	standbys  map[int]*standbyHandle

	// shipSrv is the lazily started loopback WAL-shipping endpoint used
	// when ShipStandbyWAL routes standby tails through the transport.
	shipMu   sync.Mutex
	shipSrv  *transport.Server
	shipAddr string

	// Telemetry plumbing; all handles are nil-safe no-ops when
	// Config.Telemetry is unset.
	reg           *telemetry.Registry
	traces        *telemetry.TraceRing
	ingestMetrics ingest.Metrics
	walAppends    *telemetry.Counter
	repartitions  *telemetry.Counter
	insertBatches *telemetry.Counter
	// batchRecords observes each InsertBatch's size. It reuses the
	// duration histogram the way wal_fsync_batch_records does: sizes are
	// recorded as whole "seconds" so second-valued quantiles read directly
	// as record counts.
	batchRecords *telemetry.Histogram
	// Handoff instrumentation: handoffs counts ownership flips (planned
	// promotions and standby takeovers); handoffLag observes the standby's
	// replay lag behind the partition head at the flip (records-as-seconds,
	// like batchRecords); handoffPause observes the ingest-visible pause —
	// ownership fence to new-owner consumer running.
	handoffs     *telemetry.Counter
	handoffLag   *telemetry.Histogram
	handoffPause *telemetry.Histogram

	// ckptOffsets[i] is partition i's flush offset as of the last durable
	// checkpoint — the retention floor in DataDir mode: a hard crash
	// restores metadata from that snapshot, so WAL records above these
	// offsets must stay replayable even though newer flush offsets exist
	// in memory.
	ckptMu      sync.Mutex
	ckptOffsets []int64

	// chunkFormat is the SetChunkFormat override, remembered so replacement
	// index servers spawned by crash recovery keep flushing the same format.
	chunkFormat atomic.Int32

	rr   atomic.Uint64 // round-robin dispatcher pick for Insert
	stop chan struct{}
	// consStop holds one stop channel per indexing-server consumer so a
	// single consumer can be "crashed" without stopping the cluster.
	consMu   sync.Mutex
	consStop []chan struct{}
	wg       sync.WaitGroup
	started  atomic.Bool
	stopped  atomic.Bool
}

// New builds a cluster, panicking on persistence errors; use Open to
// handle them. Call Start before inserting.
func New(cfg Config) *Cluster {
	c, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Open builds a cluster; call Start before inserting. With Config.DataDir
// set, previous on-disk state is restored.
func Open(cfg Config) (*Cluster, error) {
	cfg.fill()
	if cfg.DataDir != "" && cfg.SyncIngest {
		return nil, fmt.Errorf("cluster: DataDir requires the WAL pipeline (disable SyncIngest)")
	}
	durPolicy, err := wal.ParseDurability(cfg.Durability)
	if err != nil {
		return nil, err
	}
	if durPolicy != wal.DurabilityAckOnWrite && cfg.DataDir == "" {
		return nil, fmt.Errorf("cluster: Durability=%q requires DataDir (an in-memory WAL has no fsync)", cfg.Durability)
	}
	nIdx := cfg.Nodes * cfg.IndexServersPerNode

	reg := cfg.Telemetry
	fsCfg := dfs.Config{
		Nodes:       cfg.Nodes,
		Replication: cfg.Replication,
		Latency:     cfg.DFSLatency,
		Seed:        cfg.Seed,
		FaultSeed:   cfg.DFSFaultSeed,
		Sleep:       cfg.SleepFn,
	}
	if reg != nil {
		localReads := reg.Histogram(`waterwheel_dfs_read_seconds{locality="local"}`,
			"DFS read latency (modeled I/O cost) by replica locality")
		remoteReads := reg.Histogram(`waterwheel_dfs_read_seconds{locality="remote"}`,
			"DFS read latency (modeled I/O cost) by replica locality")
		fsCfg.ObserveRead = func(lat time.Duration, local bool) {
			if local {
				localReads.Observe(lat)
			} else {
				remoteReads.Observe(lat)
			}
		}
	}
	var (
		ms  *meta.Server
		log *wal.Log
	)
	if cfg.DataDir != "" {
		fsCfg.Dir = filepath.Join(cfg.DataDir, "dfs")
		// Restore metadata BEFORE opening the log: elastic scale-out may
		// have grown the slot count past the configured nIdx in a previous
		// incarnation, and slot i <-> partition i means the log must open
		// with one partition per snapshot slot, retired ones included.
		snap, err := os.ReadFile(metaSnapPath(cfg.DataDir))
		switch {
		case err == nil:
			ms, err = meta.Restore(snap)
			if err != nil {
				return nil, fmt.Errorf("cluster: metadata restore: %w", err)
			}
		case os.IsNotExist(err):
			ms = meta.NewServer(nIdx)
		default:
			return nil, fmt.Errorf("cluster: metadata snapshot: %w", err)
		}
		nTotal := nIdx
		if s := ms.Schema().Servers; s > nTotal {
			nTotal = s
		}
		walCfg := wal.Config{
			Durability: durPolicy,
			Interval:   time.Duration(cfg.FsyncIntervalMillis) * time.Millisecond,
			Metrics: wal.Metrics{
				FsyncBatch: reg.Histogram("waterwheel_wal_fsync_batch_records",
					"records made durable per WAL group-commit fsync (unit: records, not seconds)"),
				CommitNanos: reg.Histogram("waterwheel_wal_commit_seconds",
					"WAL group-commit fsync latency"),
				Waiters: reg.Gauge("waterwheel_wal_commit_waiters",
					"inserters parked waiting for a WAL fsync cohort"),
				Fsyncs: reg.Counter("waterwheel_wal_fsyncs_total",
					"WAL segment fsyncs issued by the durability pipeline"),
			},
		}
		log, err = wal.OpenLogDirConfig(filepath.Join(cfg.DataDir, "wal"), nTotal, walCfg)
		if err != nil {
			return nil, err
		}
	} else {
		ms = meta.NewServer(nIdx)
		log = wal.NewLog(nIdx)
	}
	fs, err := dfs.Open(fsCfg)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:  cfg,
		fs:   fs,
		ms:   ms,
		log:  log,
		bal:  dispatcher.NewBalancer(),
		reg:  reg,
		stop: make(chan struct{}),
	}
	if reg != nil {
		cap := cfg.TraceCapacity
		if cap <= 0 {
			cap = 16
		}
		c.traces = telemetry.NewTraceRing(cap)
	}
	c.ingestMetrics = ingest.Metrics{
		InsertNanos: reg.Histogram("waterwheel_ingest_insert_seconds",
			"sampled end-to-end insert latency on indexing servers"),
		FlushNanos: reg.Histogram("waterwheel_ingest_flush_seconds",
			"memtable flush latency (chunk build + DFS write + registration)"),
		BackpressureNanos: reg.Histogram("waterwheel_ingest_backpressure_seconds",
			"time threshold-crossing inserts spent blocked on a full flush queue"),
	}
	c.walAppends = reg.Counter("waterwheel_wal_appends_total", "records appended to WAL partitions")
	c.repartitions = reg.Counter("waterwheel_repartitions_total", "adaptive key repartitions installed")
	c.insertBatches = reg.Counter("waterwheel_insert_batches_total", "batches routed through InsertBatch")
	c.batchRecords = reg.Histogram("waterwheel_insert_batch_records",
		"tuples per InsertBatch call (unit: records, not seconds)")
	c.handoffs = reg.Counter("waterwheel_handoffs_total",
		"region ownership handoffs (planned promotions and standby takeovers)")
	c.handoffLag = reg.Histogram("waterwheel_handoff_lag_records",
		"standby replay lag behind the partition head at an ownership flip (unit: records, not seconds)")
	c.handoffPause = reg.Histogram("waterwheel_handoff_pause_seconds",
		"ingest-visible pause of a handoff: ownership fence until the new owner's consumer is running")
	c.coord = queryexec.NewCoordinator(queryexec.CoordinatorConfig{
		LateDeltaMillis: cfg.LateDeltaMillis,
		Policy:          queryexec.PolicyByName(cfg.Policy),
		Metrics:         queryexec.NewCoordinatorMetrics(reg),
		Traces:          c.traces,
	}, c.ms, c.fs)

	schema := c.ms.Schema()
	nTotal := nIdx
	if schema.Servers > nTotal {
		nTotal = schema.Servers
	}
	c.standbys = make(map[int]*standbyHandle)
	for i := 0; i < nTotal; i++ {
		if !schema.Active(i) {
			// Retired (or never-provisioned) slot: it keeps its WAL
			// partition and chunk history but runs no server.
			c.idx = append(c.idx, nil)
			c.retired = append(c.retired, true)
			continue
		}
		srv := c.newIndexServer(i, schema.IntervalOf(i), ms.Epoch(i), false)
		c.idx = append(c.idx, srv)
		c.retired = append(c.retired, false)
		c.coord.SetMemExecutor(i, srv)
	}
	qsMetrics := queryexec.NewServerMetrics(reg)
	for n := 0; n < cfg.Nodes; n++ {
		for j := 0; j < cfg.QueryServersPerNode; j++ {
			qs := queryexec.NewServer(queryexec.ServerConfig{
				ID:            n*cfg.QueryServersPerNode + j,
				Node:          n,
				CacheBytes:    cfg.CacheBytes,
				UseBloom:      !cfg.DisableBloom,
				Workers:       cfg.QueryWorkers,
				InflightReads: cfg.QueryInflightReads,
				Metrics:       qsMetrics,
			}, c.fs, c.ms)
			c.qsrv = append(c.qsrv, qs)
			c.coord.AddQueryServer(qs)
		}
	}
	c.ret = newRetirer(c)
	compBuild := cfg.Bloom
	c.comp = compact.New(compact.Config{
		WarmAfterMillis: cfg.TierWarmAfterMillis,
		ColdAfterMillis: cfg.TierColdAfterMillis,
		MinInputs:       cfg.CompactMinInputs,
		Leaves:          cfg.TemplateLeaves,
		Build:           compBuild,
	}, c.fs, c.ms, compact.NewMetrics(reg), c.ret.retire)
	if cfg.DataDir != "" {
		c.ckptOffsets = make([]int64, nTotal)
		for i := range c.ckptOffsets {
			// A restored snapshot's offsets are already durable; a fresh
			// deployment starts at zero either way.
			c.ckptOffsets[i] = ms.Offset(i)
		}
	}
	var sink dispatcher.Sink
	if cfg.SyncIngest {
		sink = directSink{c}
	} else {
		sink = walSink{c}
	}
	nDisp := cfg.Nodes * cfg.DispatchersPerNode
	for i := 0; i < nDisp; i++ {
		c.disp = append(c.disp, dispatcher.New(schema, sink, dispatcher.SamplerConfig{Seed: cfg.Seed + int64(i)}))
	}
	c.registerFuncMetrics()
	return c, nil
}

// standbyHandle pairs a hot standby with the resources backing its tail.
type standbyHandle struct {
	sb        *ingest.Standby
	closeTail func() // releases a WAL-shipping client; nil for local tails
}

func (h *standbyHandle) release() {
	if h.closeTail != nil {
		h.closeTail()
		h.closeTail = nil
	}
}

// server returns slot i's indexing server, nil when the slot is retired
// or out of range.
func (c *Cluster) server(i int) *ingest.Server {
	c.idxMu.RLock()
	defer c.idxMu.RUnlock()
	if i < 0 || i >= len(c.idx) {
		return nil
	}
	return c.idx[i]
}

// servers returns a snapshot of the slot table; retired slots are nil.
func (c *Cluster) servers() []*ingest.Server {
	c.idxMu.RLock()
	defer c.idxMu.RUnlock()
	return append([]*ingest.Server(nil), c.idx...)
}

// isRetired reports whether slot i has been decommissioned.
func (c *Cluster) isRetired(i int) bool {
	c.idxMu.RLock()
	defer c.idxMu.RUnlock()
	return i >= 0 && i < len(c.retired) && c.retired[i]
}

// walSink is the dispatcher sink of the WAL pipeline: routed tuples are
// appended to the target server's partition; the ack follows the log.
//
// Elastic scale-out makes routing decisions revocable: a dispatcher may
// have picked a server under a schema that a concurrent decommission has
// since replaced. The sink closes that window in two layers — a retired
// mask consulted before appending, and the partition seal that
// decommission sets after the mask, so even an append already past the
// mask check fails with ErrSealed instead of landing in a log nobody
// replays. Either way the tuple reroutes through the current schema and
// the producer's ack still means "in a live partition".
type walSink struct{ c *Cluster }

// rerouteHops bounds reroute retries; each hop needs a concurrent
// decommission of the freshly chosen target to continue the chain.
const rerouteHops = 16

// Send appends one tuple. Under ack-on-fsync the append parks until a
// group-commit fsync covers the record; an error means the log did NOT
// take the tuple (stop-the-line) and the insert must not be acked.
func (s walSink) Send(server int, t model.Tuple) error {
	for hop := 0; ; hop++ {
		if hop > rerouteHops {
			return fmt.Errorf("cluster: wal append: no active slot for key %d after %d reroutes", t.Key, hop)
		}
		if s.c.isRetired(server) {
			server = s.c.ms.Schema().ServerFor(t.Key)
			continue
		}
		_, err := s.c.log.Partition(server).Append(model.AppendTuple(nil, &t))
		if errors.Is(err, wal.ErrSealed) {
			server = s.c.ms.Schema().ServerFor(t.Key)
			continue
		}
		if err != nil {
			return fmt.Errorf("cluster: wal append (server %d): %w", server, err)
		}
		s.c.walAppends.Inc()
		return nil
	}
}

// SendBatch encodes the whole run into one buffer (record slices alias
// it — the buffer is sized exactly, so they can never share appended
// bytes) and persists it with one AppendBatch: one partition lock, one
// segment write, and under ack-on-fsync one fsync cohort for the run.
// AppendBatch is all-or-nothing, so a failed run acks none of its
// tuples — exactly the prefix contract DispatchBatch requires.
func (s walSink) SendBatch(server int, ts []model.Tuple) (int, error) {
	if len(ts) == 1 {
		if err := s.Send(server, ts[0]); err != nil {
			return 0, err
		}
		return 1, nil
	}
	if s.c.isRetired(server) {
		return s.resend(ts)
	}
	total := 0
	for i := range ts {
		total += model.EncodedSize(&ts[i])
	}
	buf := make([]byte, 0, total)
	datas := make([][]byte, len(ts))
	for i := range ts {
		pos := len(buf)
		buf = model.AppendTuple(buf, &ts[i])
		datas[i] = buf[pos:len(buf):len(buf)]
	}
	if _, err := s.c.log.Partition(server).AppendBatch(datas); err != nil {
		if errors.Is(err, wal.ErrSealed) {
			return s.resend(ts)
		}
		return 0, fmt.Errorf("cluster: wal append batch (server %d): %w", server, err)
	}
	s.c.walAppends.Add(int64(len(ts)))
	return len(ts), nil
}

// resend is the slow path after a decommission invalidated a batch's
// routing: each tuple re-resolves against the current schema and goes
// through the per-tuple Send (the run may now span several servers).
// Stopping at the first error keeps the prefix-ack contract intact.
func (s walSink) resend(ts []model.Tuple) (int, error) {
	schema := s.c.ms.Schema()
	for i := range ts {
		if err := s.Send(schema.ServerFor(ts[i].Key), ts[i]); err != nil {
			return i, err
		}
	}
	return len(ts), nil
}

// directSink is the SyncIngest sink: dispatchers call the indexing
// servers in-process, bypassing the WAL (no replay-based recovery).
type directSink struct{ c *Cluster }

func (s directSink) Send(server int, t model.Tuple) error {
	s.c.idx[server].Insert(t)
	return nil
}

func (s directSink) SendBatch(server int, ts []model.Tuple) (int, error) {
	s.c.idx[server].InsertBatch(ts)
	return len(ts), nil
}

// newIndexServer builds indexing server i from the cluster config — the
// single source of per-server settings, shared by Open, crash recovery,
// elastic scale-out and standby shadows so a replacement server never
// silently diverges from the original. epoch is the ownership epoch the
// incarnation registers flushes under (0 only in SyncIngest mode, which
// has no ownership); passive builds a standby shadow that neither
// flushes nor reports a live region until promoted.
func (c *Cluster) newIndexServer(i int, keys model.KeyRange, epoch int64, passive bool) *ingest.Server {
	var syncWAL func(int64) error
	if !c.cfg.SyncIngest {
		// Flush-offset commits must not run ahead of the WAL fsync
		// watermark (consumers index straight from memory, possibly before
		// any fsync): the flusher syncs its unit's offset into the log
		// before registering chunks and committing.
		syncWAL = c.log.Partition(i).SyncTo
	} else {
		epoch = 0
	}
	// Added servers can outnumber the configured nodes; wrap the DFS
	// placement preference instead of pointing past the last node.
	node := (i / c.cfg.IndexServersPerNode) % c.cfg.Nodes
	srv := ingest.NewServer(ingest.Config{
		ID:                  i,
		Keys:                keys,
		ChunkBytes:          c.cfg.ChunkBytes,
		Leaves:              c.cfg.TemplateLeaves,
		SkewThreshold:       c.cfg.SkewThreshold,
		CheckEvery:          c.cfg.CheckEvery,
		SideThresholdMillis: c.cfg.SideThresholdMillis,
		Bloom:               c.cfg.Bloom,
		NoTemplateReuse:     c.cfg.NoTemplateReuse,
		FlushQueueDepth:     c.cfg.FlushQueueDepth,
		SyncFlush:           c.cfg.SyncFlush,
		FlushFailHook:       c.cfg.FlushFailHook,
		SyncWAL:             syncWAL,
		Metrics:             c.ingestMetrics,
		Epoch:               epoch,
		Passive:             passive,
	}, c.fs, c.ms, node)
	if f := c.chunkFormat.Load(); f != 0 {
		srv.SetChunkFormat(int(f))
	}
	return srv
}

// metaSnapPath is the metadata snapshot file within a data directory.
func metaSnapPath(dataDir string) string { return filepath.Join(dataDir, "meta.snap") }

// Checkpoint persists the metadata server's state (chunk registry,
// partition schema, WAL offsets) to the data directory. No-op without a
// DataDir. Stop checkpoints automatically; call this for crash-safety
// points in between.
func (c *Cluster) Checkpoint() error {
	if c.cfg.DataDir == "" {
		return nil
	}
	// Capture the flush offsets BEFORE taking the snapshot: offsets only
	// grow, so whatever the snapshot records is at least these values —
	// making them a safe retention floor once the snapshot is durable.
	offs := make([]int64, c.log.Partitions())
	for i := range offs {
		offs[i] = c.ms.Offset(i)
	}
	snap, err := c.ms.Snapshot()
	if err != nil {
		return err
	}
	tmp := metaSnapPath(c.cfg.DataDir) + ".tmp"
	if err := os.WriteFile(tmp, snap, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, metaSnapPath(c.cfg.DataDir)); err != nil {
		return err
	}
	for i := 0; i < c.log.Partitions(); i++ {
		if err := c.log.Partition(i).Sync(); err != nil {
			return err
		}
	}
	c.ckptMu.Lock()
	copy(c.ckptOffsets, offs)
	c.ckptMu.Unlock()
	return nil
}

// Start launches the ingestion consumers and, when configured, the
// balancer loop.
func (c *Cluster) Start() {
	if c.started.Swap(true) {
		return
	}
	if !c.cfg.SyncIngest {
		srvs := c.servers()
		c.consMu.Lock()
		c.consStop = make([]chan struct{}, len(srvs))
		for i, srv := range srvs {
			if srv == nil {
				continue // retired slot: no consumer
			}
			cs := make(chan struct{})
			c.consStop[i] = cs
			c.wg.Add(1)
			go func(i int, srv *ingest.Server, cs chan struct{}) {
				defer c.wg.Done()
				srv.Consume(c.log.Partition(i), mergedStop(c.stop, cs))
			}(i, srv, cs)
		}
		c.consMu.Unlock()
		if c.cfg.HotStandby {
			for i, srv := range srvs {
				if srv != nil {
					c.StartStandby(i)
				}
			}
		}
	}
	if !c.cfg.DisableAdaptive && c.cfg.BalanceIntervalMillis > 0 {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			tick := time.NewTicker(time.Duration(c.cfg.BalanceIntervalMillis) * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-tick.C:
					c.TickBalance()
				}
			}
		}()
	}
	if c.comp.Enabled() && c.cfg.CompactIntervalMillis > 0 {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			tick := time.NewTicker(time.Duration(c.cfg.CompactIntervalMillis) * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-tick.C:
					c.TickCompact()
				}
			}
		}()
	}
}

// Stop drains and shuts the cluster down, checkpointing persistent state.
func (c *Cluster) Stop() {
	if c.stopped.Swap(true) {
		return
	}
	close(c.stop)
	c.stopStandbys()
	c.log.Close()
	c.wg.Wait()
	// Stop the background flushers, draining queued snapshots so the final
	// checkpoint records their offsets.
	for _, srv := range c.servers() {
		if srv != nil {
			srv.Close()
		}
	}
	// Query traffic is over; force-delete any chunk files still parked
	// behind in-flight-query horizons.
	c.ret.drain()
	if c.cfg.DataDir != "" {
		c.Checkpoint() // best effort; state is also rebuildable from the WAL
		for i := 0; i < c.log.Partitions(); i++ {
			c.log.Partition(i).CloseFile()
		}
	}
}

// stopStandbys halts and discards every hot standby, then shuts the
// loopback shipping endpoint down.
func (c *Cluster) stopStandbys() {
	c.standbyMu.Lock()
	hs := make([]*standbyHandle, 0, len(c.standbys))
	for slot, h := range c.standbys {
		hs = append(hs, h)
		delete(c.standbys, slot)
	}
	c.standbyMu.Unlock()
	for _, h := range hs {
		h.sb.Close()
		h.release()
	}
	c.shipMu.Lock()
	if c.shipSrv != nil {
		c.shipSrv.Close()
		c.shipSrv = nil
	}
	c.shipMu.Unlock()
}

// HardCrash simulates a host crash in DataDir mode: no checkpoint, no
// drain, and every WAL byte past the last fsync watermark is discarded
// (the OS page cache dies with the host). The cluster is unusable
// afterwards; Open the same DataDir to get the surviving state. This is
// the probe for the ack-durability gap: under "ack-on-fsync" every acked
// tuple is below the watermark and survives; under "ack-on-write" acked
// tuples still in the page cache are lost.
func (c *Cluster) HardCrash() error {
	if c.cfg.DataDir == "" {
		return fmt.Errorf("cluster: HardCrash requires DataDir")
	}
	if c.stopped.Swap(true) {
		return fmt.Errorf("cluster: already stopped")
	}
	close(c.stop)
	c.stopStandbys()
	c.log.Close()
	c.wg.Wait()
	// Abort (not Close) the flushers: in-flight work dies without
	// checkpointing, like the host it ran on.
	for _, srv := range c.servers() {
		if srv != nil {
			srv.Abort()
		}
	}
	var first error
	for i := 0; i < c.log.Partitions(); i++ {
		if err := c.log.Partition(i).CrashDiscardUnsynced(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Insert routes one tuple through a dispatcher (round-robin across the
// configured dispatchers, as multiple ingestion clients would). A nil
// return is the ack: the tuple is in the log (under "ack-on-fsync", on
// stable storage). A non-nil error means the tuple was NOT accepted.
func (c *Cluster) Insert(t model.Tuple) error {
	d := c.disp[int(c.rr.Add(1))%len(c.disp)]
	_, err := d.Dispatch(t)
	return err
}

// InsertBatch routes a whole batch through one dispatcher as a unit:
// one schema pass, one WAL append (and one fsync cohort under
// ack-on-fsync) per contiguous same-server run. Returns how many tuples
// were accepted — always a prefix ts[:n] of the input — and the error
// that stopped the rest; n == len(ts) iff err == nil.
func (c *Cluster) InsertBatch(ts []model.Tuple) (int, error) {
	if len(ts) == 0 {
		return 0, nil
	}
	c.insertBatches.Inc()
	c.batchRecords.Observe(time.Duration(len(ts)) * time.Second)
	d := c.disp[int(c.rr.Add(1))%len(c.disp)]
	return d.DispatchBatch(ts)
}

// InsertVia routes a tuple through a specific dispatcher — lets callers
// shard their input streams deterministically.
func (c *Cluster) InsertVia(dispatcherID int, t model.Tuple) error {
	_, err := c.disp[dispatcherID%len(c.disp)].Dispatch(t)
	return err
}

// Query executes a temporal range query and returns the merged result.
func (c *Cluster) Query(q model.Query) (*model.Result, error) {
	return c.coord.Execute(q)
}

// Aggregate executes an aggregate query (COUNT/MIN/MAX/SUM over a key
// range × time range) with aggregation pushdown: fully covered chunks and
// leaves are answered from metadata and header pre-aggregates without
// touching leaf bodies.
func (c *Cluster) Aggregate(q model.AggregateQuery) (*model.AggResult, error) {
	return c.coord.ExecuteAggregate(q)
}

// SetChunkFormat switches the chunk format (chunk.FormatV1/V2) used by
// every indexing server's subsequent flushes; zero restores the configured
// default. Existing chunks keep their format — readers dispatch per chunk.
func (c *Cluster) SetChunkFormat(f int) {
	c.chunkFormat.Store(int32(f))
	for _, srv := range c.servers() {
		if srv != nil {
			srv.SetChunkFormat(f)
		}
	}
}

// Drain blocks until every WAL partition has been fully consumed by its
// indexing server (no-op in SyncIngest mode). It makes "insert then
// query" deterministic for tests and experiments.
func (c *Cluster) Drain() {
	if c.cfg.SyncIngest {
		return
	}
	for i, srv := range c.servers() {
		if srv == nil {
			continue
		}
		p := c.log.Partition(i)
		for srv.Consumed() < p.Next() {
			time.Sleep(200 * time.Microsecond)
		}
	}
	// Consumption alone no longer implies persistence: wait out the flush
	// pipelines too, so "insert, Drain, query/crash" keeps its pre-async
	// determinism.
	for _, srv := range c.servers() {
		if srv != nil {
			srv.DrainFlushes()
			// The consumer stores its offset a beat before it reports the
			// live region; force a report so queries issued right after
			// Drain plan against the drained memtable's true extent.
			srv.PublishLive()
		}
	}
	// A quiet moment: whatever retired files were gated on queries that
	// have since completed can go now.
	c.ret.sweep()
}

// FlushAll forces every indexing server to flush its memtables.
func (c *Cluster) FlushAll() {
	for _, srv := range c.servers() {
		if srv != nil {
			srv.FlushAll()
		}
	}
}

// TickBalance runs one adaptive-partitioning round: rotate the dispatcher
// samplers' windows, pool their samples, and — if the estimated load of
// any indexing server deviates beyond the threshold — install a new key
// partitioning (paper §III-D). Returns whether a repartition happened.
func (c *Cluster) TickBalance() bool {
	if c.cfg.DisableAdaptive {
		return false
	}
	// Repartitioning is a topology change: serialize it against elastic
	// operations so a balance round never fans out intervals computed from
	// a schema an add/decommission is concurrently replacing.
	c.elasticMu.Lock()
	defer c.elasticMu.Unlock()
	var sample []model.Key
	for _, d := range c.disp {
		sample = append(sample, d.Sampler().Sample()...)
		d.Sampler().Rotate()
	}
	schema := c.ms.Schema()
	bounds, ok := c.bal.Rebalance(schema, sample)
	if !ok {
		return false
	}
	newSchema, err := c.ms.SetSchema(bounds)
	if err != nil {
		return false
	}
	for _, d := range c.disp {
		d.UpdateSchema(newSchema)
	}
	for i, srv := range c.servers() {
		if srv != nil {
			srv.SetKeys(newSchema.IntervalOf(i))
		}
	}
	c.standbyMu.Lock()
	for slot, h := range c.standbys {
		h.sb.SetKeys(newSchema.IntervalOf(slot))
	}
	c.standbyMu.Unlock()
	c.repartitions.Inc()
	return true
}

// DropChunksBefore removes every chunk whose temporal region ends before
// the horizon — stream-store retention. The chunk leaves the metadata
// registry first (no new subqueries can target it); its cached bytes are
// evicted from every query server and the file delete is deferred until
// queries planned before the drop have drained, so a concurrent query
// never trips over a half-retired chunk. Returns the number of chunks
// dropped. With tiering enabled, prefer letting the compactor demote and
// merge chunks first: retention then only ever discards the coldest,
// already-downsampled tier.
func (c *Cluster) DropChunksBefore(horizon model.Timestamp) int {
	var dropped []meta.ChunkInfo
	for _, ci := range c.ms.ChunksFor(model.FullRegion()) {
		if ci.Region.Times.Hi >= horizon {
			continue
		}
		if !c.ms.DropChunk(ci.ID) {
			continue
		}
		dropped = append(dropped, ci)
	}
	c.ret.retire(dropped)
	return len(dropped)
}

// TickCompact runs one compaction round — demote aging chunks through
// the tiers, merge groups of cold chunks into downsampled chunks — and
// sweeps the retirement queue. No-op unless tiering is configured.
// Returns (chunks demoted, merges completed).
func (c *Cluster) TickCompact() (demoted, merged int) {
	demoted, merged = c.comp.Tick()
	c.ret.sweep()
	return demoted, merged
}

// PendingRetiredDeletes reports how many retired chunk files are parked
// awaiting in-flight-query drain.
func (c *Cluster) PendingRetiredDeletes() int { return c.ret.pending() }

// TruncateWALBefore advances each partition's retention horizon to its
// indexing server's recorded flush offset: records already represented in
// chunks are no longer needed for recovery. In DataDir mode the horizon is
// additionally capped at the last durable checkpoint's offset — a hard
// crash restores metadata from that snapshot, and records between its
// offset and the in-memory one would be needed for replay.
//
// The horizon is also floored at any hot standby's replay position. A
// planned promotion replays the partition from the standby's position at
// handoff; truncating between its catch-up check and the ownership flip
// would compact records the replay still needs, silently losing acked
// tuples. The standby's position only moves forward, so the floor read
// here is safe against a concurrent promotion: at worst we retain a few
// extra records until the next truncation pass.
func (c *Cluster) TruncateWALBefore() {
	if c.cfg.SyncIngest {
		return
	}
	for i := 0; i < c.log.Partitions(); i++ {
		off := c.ms.Offset(i)
		if c.cfg.DataDir != "" {
			c.ckptMu.Lock()
			if i < len(c.ckptOffsets) {
				if ck := c.ckptOffsets[i]; ck < off {
					off = ck
				}
			} else {
				// A slot added after the last checkpoint has no durable
				// floor yet: retain everything.
				off = 0
			}
			c.ckptMu.Unlock()
		}
		if sb := c.standbyFloor(i); sb >= 0 && sb < off {
			off = sb
		}
		c.log.Partition(i).Truncate(off)
	}
}

// standbyFloor returns slot i's standby replay position, or -1 when the
// slot has no standby.
func (c *Cluster) standbyFloor(i int) int64 {
	c.standbyMu.Lock()
	defer c.standbyMu.Unlock()
	if h, ok := c.standbys[i]; ok {
		return h.sb.Consumed()
	}
	return -1
}

// Accessors used by experiments, examples and the public API.

// Metadata returns the metadata server.
func (c *Cluster) Metadata() *meta.Server { return c.ms }

// FS returns the distributed file system.
func (c *Cluster) FS() *dfs.FS { return c.fs }

// Coordinator returns the query coordinator.
func (c *Cluster) Coordinator() *queryexec.Coordinator { return c.coord }

// IndexServers returns a snapshot of the slot table. The index IS the
// slot id, so retired slots appear as nil entries — callers iterating
// must skip them.
func (c *Cluster) IndexServers() []*ingest.Server { return c.servers() }

// ActiveSlots returns the slot ids that currently run an indexing server.
func (c *Cluster) ActiveSlots() []int {
	c.idxMu.RLock()
	defer c.idxMu.RUnlock()
	out := make([]int, 0, len(c.idx))
	for i, srv := range c.idx {
		if srv != nil {
			out = append(out, i)
		}
	}
	return out
}

// QueryServers returns the query servers.
func (c *Cluster) QueryServers() []*queryexec.Server { return c.qsrv }

// Dispatchers returns the dispatchers.
func (c *Cluster) Dispatchers() []*dispatcher.Dispatcher { return c.disp }

// WAL returns the write-ahead log.
func (c *Cluster) WAL() *wal.Log { return c.log }

// Telemetry returns the metric registry (nil when telemetry is off).
func (c *Cluster) Telemetry() *telemetry.Registry { return c.reg }

// TraceRing returns the retained query traces (nil when telemetry is off).
func (c *Cluster) TraceRing() *telemetry.TraceRing { return c.traces }

// Ingested returns the total tuples accepted by the indexing servers.
func (c *Cluster) Ingested() int64 {
	var n int64
	for _, srv := range c.servers() {
		if srv != nil {
			n += srv.Stats().Ingested.Load()
		}
	}
	return n
}

// MemLen returns the total buffered (unflushed) tuples.
func (c *Cluster) MemLen() int {
	n := 0
	for _, srv := range c.servers() {
		if srv != nil {
			n += srv.MemLen()
		}
	}
	return n
}

// detachConsumer stops slot i's consumer goroutine (closing its stop
// channel) and installs a fresh channel for the successor, growing the
// table when elastic scale-out added slots after Start. Requires Start to
// have run for an existing slot's channel to be present; a nil entry
// (retired slot, or a slot added before Start) just gets a new channel.
func (c *Cluster) detachConsumer(i int) chan struct{} {
	c.consMu.Lock()
	defer c.consMu.Unlock()
	for len(c.consStop) <= i {
		c.consStop = append(c.consStop, nil)
	}
	if cs := c.consStop[i]; cs != nil {
		close(cs)
	}
	cs := make(chan struct{})
	c.consStop[i] = cs
	return cs
}

// runConsumer starts slot i's WAL consumption goroutine.
func (c *Cluster) runConsumer(i int, srv *ingest.Server, cs chan struct{}) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		srv.Consume(c.log.Partition(i), mergedStop(c.stop, cs))
	}()
}

// takeStandby removes and returns slot i's standby handle, nil if none.
func (c *Cluster) takeStandby(i int) *standbyHandle {
	c.standbyMu.Lock()
	defer c.standbyMu.Unlock()
	h := c.standbys[i]
	delete(c.standbys, i)
	return h
}

// HasStandby reports whether slot i currently runs a hot standby.
func (c *Cluster) HasStandby(i int) bool {
	c.standbyMu.Lock()
	defer c.standbyMu.Unlock()
	_, ok := c.standbys[i]
	return ok
}

// StandbyLag returns how many WAL records slot i's standby still has to
// replay to reach the partition head, or -1 when the slot has no standby.
func (c *Cluster) StandbyLag(i int) int64 {
	c.standbyMu.Lock()
	h := c.standbys[i]
	c.standbyMu.Unlock()
	if h == nil {
		return -1
	}
	lag := c.log.Partition(i).Next() - h.sb.Consumed()
	if lag < 0 {
		lag = 0
	}
	return lag
}

// shipTail opens a WAL-shipping tail for partition i through the lazily
// started loopback transport endpoint.
func (c *Cluster) shipTail(i int) (wal.Tail, func(), error) {
	c.shipMu.Lock()
	defer c.shipMu.Unlock()
	if c.shipSrv == nil {
		srv := transport.NewServer()
		wal.RegisterShipping(srv, c.log)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: wal shipping listen: %w", err)
		}
		c.shipSrv, c.shipAddr = srv, addr
	}
	cl, err := transport.Dial(c.shipAddr)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: wal shipping dial: %w", err)
	}
	return wal.NewRemoteTail(cl, i), func() { cl.Close() }, nil
}

// StartStandby launches a hot standby for slot i: a passive shadow server
// tailing the slot's WAL partition (through the shipping transport when
// ShipStandbyWAL is set), ready to take over on PromoteStandby or a kill.
// WAL mode only; one standby per slot — a slot that already has one is a
// no-op (idempotent for operator scripts and the HotStandby auto-attach).
func (c *Cluster) StartStandby(i int) error {
	c.elasticMu.Lock()
	defer c.elasticMu.Unlock()
	return c.startStandbyLocked(i)
}

func (c *Cluster) startStandbyLocked(i int) error {
	if c.cfg.SyncIngest {
		return fmt.Errorf("cluster: standbys require WAL mode")
	}
	if c.server(i) == nil {
		return fmt.Errorf("cluster: no indexing server %d", i)
	}
	c.standbyMu.Lock()
	_, exists := c.standbys[i]
	c.standbyMu.Unlock()
	if exists {
		return nil
	}
	var (
		tail      wal.Tail = c.log.Partition(i)
		closeTail func()
	)
	if c.cfg.ShipStandbyWAL {
		rt, release, err := c.shipTail(i)
		if err != nil {
			return err
		}
		tail, closeTail = rt, release
	}
	keys := c.ms.Schema().IntervalOf(i)
	sb := ingest.NewStandby(ingest.StandbyConfig{
		Slot:      i,
		NewServer: func() *ingest.Server { return c.newIndexServer(i, keys, 0, true) },
		ReplayOffset: c.reg.Gauge(fmt.Sprintf(`waterwheel_standby_replay_offset{slot="%d"}`, i),
			"next WAL offset the slot's hot standby will replay"),
	}, c.ms, tail)
	c.standbyMu.Lock()
	c.standbys[i] = &standbyHandle{sb: sb, closeTail: closeTail}
	c.standbyMu.Unlock()
	sb.Start()
	return nil
}

// StopStandby halts and discards slot i's hot standby without promoting.
func (c *Cluster) StopStandby(i int) error {
	c.elasticMu.Lock()
	defer c.elasticMu.Unlock()
	h := c.takeStandby(i)
	if h == nil {
		return fmt.Errorf("cluster: slot %d has no standby", i)
	}
	h.sb.Close()
	h.release()
	return nil
}

// takeover flips slot i's ownership to a successor: the promoted standby
// shadow when h is non-nil, else a fresh server replaying the WAL from
// the committed offset. The flip is one metadata CAS (TransferOwnership
// bumps the fencing epoch, records the handoff offset and reads the
// nominal interval atomically), so a flush the deposed incarnation still
// has in flight fails with ErrFenced instead of committing chunks or
// offsets under the new owner. Ingest into the partition never pauses —
// the measured handoff pause is consumer detach to successor consuming.
func (c *Cluster) takeover(i int, h *standbyHandle) error {
	pauseStart := time.Now()
	cs := c.detachConsumer(i)
	old := c.server(i)
	handoffOff := c.ms.Offset(i)
	if h != nil {
		handoffOff = h.sb.Consumed()
	}
	lag := c.log.Partition(i).Next() - handoffOff
	if lag < 0 {
		lag = 0
	}
	epoch, kr, err := c.ms.TransferOwnership(i, handoffOff)
	if err != nil {
		return err
	}
	// Abort AFTER the fence: the old flusher exits on its next (rejected)
	// registration attempt, and Abort reaps it without letting in-flight
	// work move the metadata the successor starts from.
	if old != nil {
		old.Abort()
	}
	var repl *ingest.Server
	if h != nil {
		h.sb.Halt()
		repl = h.sb.Promote(epoch)
		repl.SetKeys(kr)
		h.release()
	} else {
		repl = c.newIndexServer(i, kr, epoch, false)
	}
	c.idxMu.Lock()
	c.idx[i] = repl
	c.idxMu.Unlock()
	c.coord.SetMemExecutor(i, repl)
	c.runConsumer(i, repl, cs)
	c.handoffs.Inc()
	c.handoffLag.Observe(time.Duration(lag) * time.Second)
	c.handoffPause.Observe(time.Since(pauseStart))
	if c.cfg.HotStandby && !c.stopped.Load() {
		c.startStandbyLocked(i)
	}
	return nil
}

// PromoteStandby performs a planned region handoff: wait for slot i's
// standby to catch up within StandbyLagRecords of the partition head,
// then atomically transfer ownership to the promoted shadow. The old
// owner is fenced; ingest into the slot's partition continues throughout.
func (c *Cluster) PromoteStandby(i int) error {
	if c.cfg.SyncIngest {
		return fmt.Errorf("cluster: handoff requires WAL mode")
	}
	c.elasticMu.Lock()
	defer c.elasticMu.Unlock()
	if c.server(i) == nil {
		return fmt.Errorf("cluster: no indexing server %d", i)
	}
	c.standbyMu.Lock()
	h := c.standbys[i]
	c.standbyMu.Unlock()
	if h == nil {
		return fmt.Errorf("cluster: slot %d has no standby", i)
	}
	// Catch-up gate: flip only once the shadow is near the head, bounding
	// the replay debt the new owner inherits.
	p := c.log.Partition(i)
	for p.Next()-h.sb.Consumed() > int64(c.cfg.StandbyLagRecords) {
		select {
		case <-c.stop:
			return fmt.Errorf("cluster: stopped during handoff")
		default:
		}
		if err := h.sb.Err(); err != nil {
			return fmt.Errorf("cluster: standby replay: %w", err)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return c.takeover(i, c.takeStandby(i))
}

// AddIndexServer grows the cluster by one indexing server (elastic
// scale-out): the widest active nominal key interval splits at its
// midpoint, the log grows the matching WAL partition (slot i <->
// partition i), and the new server starts consuming immediately —
// ingest never pauses. Returns the new slot id. WAL mode only.
func (c *Cluster) AddIndexServer() (int, error) {
	if c.cfg.SyncIngest {
		return 0, fmt.Errorf("cluster: elastic scale-out requires WAL mode")
	}
	c.elasticMu.Lock()
	defer c.elasticMu.Unlock()
	split, at, ok := widestSplit(c.ms.Schema())
	if !ok {
		return 0, fmt.Errorf("cluster: no splittable key interval")
	}
	newSchema, id, err := c.ms.AddServer(split, at)
	if err != nil {
		return 0, err
	}
	_, pi, err := c.log.AddPartition()
	if err != nil {
		return 0, err
	}
	if pi != id {
		return 0, fmt.Errorf("cluster: slot/partition misalignment: slot %d, partition %d", id, pi)
	}
	if c.cfg.DataDir != "" {
		c.ckptMu.Lock()
		c.ckptOffsets = append(c.ckptOffsets, 0)
		c.ckptMu.Unlock()
	}
	srv := c.newIndexServer(id, newSchema.IntervalOf(id), c.ms.Epoch(id), false)
	c.idxMu.Lock()
	c.idx = append(c.idx, srv)
	c.retired = append(c.retired, false)
	c.idxMu.Unlock()
	c.coord.SetMemExecutor(id, srv)
	if c.started.Load() {
		c.runConsumer(id, srv, c.detachConsumer(id))
	}
	// The split slot's nominal interval narrowed; its actual interval
	// stays wide until its buffered tuples flush (§III-D), handled by the
	// metadata server. Only then do the dispatchers learn the new schema —
	// the new slot's consumer is already running, so no tuple ever waits.
	if old := c.server(split); old != nil {
		old.SetKeys(newSchema.IntervalOf(split))
	}
	c.standbyMu.Lock()
	if h := c.standbys[split]; h != nil {
		h.sb.SetKeys(newSchema.IntervalOf(split))
	}
	c.standbyMu.Unlock()
	for _, d := range c.disp {
		d.UpdateSchema(newSchema)
	}
	if c.cfg.HotStandby && c.started.Load() {
		c.startStandbyLocked(id)
	}
	return id, nil
}

// widestSplit picks the active slot with the widest nominal interval and
// the midpoint key to split it at; ok is false when every active interval
// is a single key.
func widestSplit(schema meta.PartitionSchema) (split int, at model.Key, ok bool) {
	var best uint64
	for _, id := range schema.ActiveSlots() {
		kr := schema.IntervalOf(id)
		if kr.Hi <= kr.Lo {
			continue
		}
		if w := uint64(kr.Hi - kr.Lo); !ok || w > best {
			split, at, best, ok = id, kr.Lo+(kr.Hi-kr.Lo)/2+1, w, true
		}
	}
	return split, at, ok
}

// DecommissionIndexServer retires slot i with zero acked-tuple loss: the
// schema drops the slot (new traffic routes to the absorbing neighbor),
// stragglers already routed to it reroute off the retired mask and the
// partition seal, the consumer drains the now-final partition head, a
// final flush turns everything buffered into registered chunks, and a
// last ownership transfer fences the slot forever. The slot's WAL
// partition and chunk history remain readable. WAL mode only; the last
// active slot cannot retire.
func (c *Cluster) DecommissionIndexServer(i int) error {
	if c.cfg.SyncIngest {
		return fmt.Errorf("cluster: elastic scale-out requires WAL mode")
	}
	c.elasticMu.Lock()
	defer c.elasticMu.Unlock()
	srv := c.server(i)
	if srv == nil {
		return fmt.Errorf("cluster: no indexing server %d", i)
	}
	// 1. Drop the slot from the schema and fan the change out: new tuples
	// route to the absorbing neighbors, whose key sets widen.
	newSchema, err := c.ms.RemoveServer(i)
	if err != nil {
		return err
	}
	for j, s := range c.servers() {
		if s != nil && j != i {
			s.SetKeys(newSchema.IntervalOf(j))
		}
	}
	c.standbyMu.Lock()
	for slot, h := range c.standbys {
		if slot != i {
			h.sb.SetKeys(newSchema.IntervalOf(slot))
		}
	}
	c.standbyMu.Unlock()
	for _, d := range c.disp {
		d.UpdateSchema(newSchema)
	}
	// 2. Retire + seal: a straggler dispatched under the old schema either
	// sees the mask before appending or bounces off the sealed partition —
	// both reroute it through the new schema, so after this point the
	// partition head is final (modulo appends already inside the lock,
	// which land before Seal returns).
	c.idxMu.Lock()
	c.retired[i] = true
	c.idxMu.Unlock()
	p := c.log.Partition(i)
	p.Seal()
	// 3. The standby is moot: the final flush will empty the partition.
	if h := c.takeStandby(i); h != nil {
		h.sb.Close()
		h.release()
	}
	// 4. Drain the final head, then stop the consumer.
	head := p.Next()
	for srv.Consumed() < head {
		select {
		case <-c.stop:
			return fmt.Errorf("cluster: stopped during decommission")
		default:
		}
		time.Sleep(200 * time.Microsecond)
	}
	c.consMu.Lock()
	if i < len(c.consStop) && c.consStop[i] != nil {
		close(c.consStop[i])
		c.consStop[i] = nil
	}
	c.consMu.Unlock()
	// 5. Final flush: every buffered tuple becomes a registered chunk, the
	// replay offset commits to the head, and the live region empties (the
	// coordinator stops planning mem-subqueries for the slot). A transient
	// DFS fault can park the flusher with the snapshot unregistered — and
	// DrainFlushes returns on a parked flusher — so keep re-driving the
	// flush until the committed offset provably covers the sealed head.
	// Each Flush re-signals a parked retry and waits for its outcome, so
	// this loop spins only as fast as DFS attempts fail.
	for c.ms.Offset(i) < head {
		select {
		case <-c.stop:
			return fmt.Errorf("cluster: stopped during decommission")
		default:
		}
		srv.FlushAll()
	}
	// 6. Fence forever: even a flusher goroutine that somehow survived
	// cannot register under the retired slot again.
	if _, _, err := c.ms.TransferOwnership(i, head); err != nil {
		return err
	}
	srv.Close()
	c.idxMu.Lock()
	c.idx[i] = nil
	c.idxMu.Unlock()
	c.handoffs.Inc()
	return nil
}

// KillIndexServer crashes indexing server i without waiting for recovery:
// the consumer goroutine detaches and ownership transfers atomically to a
// successor — the hot standby's warm shadow when one is running, else a
// fresh server replaying the WAL partition from the last committed
// offset. The transfer bumps the slot's fencing epoch BEFORE the
// successor starts, so a chunk registration the dead incarnation still
// has in flight is rejected instead of committing an offset the
// successor's replay assumed stable (the pre-epoch code relied on Abort
// ordering alone and could re-register regions the replay had already
// covered). It returns as soon as the successor is consuming; use
// CrashIndexServer to also wait for catch-up. Only valid in WAL mode.
func (c *Cluster) KillIndexServer(i int) error {
	if c.cfg.SyncIngest {
		return fmt.Errorf("cluster: recovery requires WAL mode")
	}
	c.elasticMu.Lock()
	defer c.elasticMu.Unlock()
	if c.server(i) == nil {
		return fmt.Errorf("cluster: no indexing server %d", i)
	}
	return c.takeover(i, c.takeStandby(i))
}

// CrashIndexServer simulates an indexing-server failure and recovery (§V):
// the server's goroutine stops, its in-memory state is discarded, and a
// successor (standby shadow or WAL replay) takes over. Only valid in WAL
// mode. The call blocks until the successor has caught up with the
// partition head at call time.
func (c *Cluster) CrashIndexServer(i int) error {
	if c.server(i) == nil {
		return fmt.Errorf("cluster: no indexing server %d", i)
	}
	head := c.log.Partition(i).Next()
	if err := c.KillIndexServer(i); err != nil {
		return err
	}
	repl := c.server(i)
	for repl.Consumed() < head {
		select {
		case <-c.stop:
			return nil
		default:
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// mergedStop returns a channel that closes when either input closes.
func mergedStop(a, b <-chan struct{}) <-chan struct{} {
	out := make(chan struct{})
	go func() {
		select {
		case <-a:
		case <-b:
		}
		close(out)
	}()
	return out
}
