package cluster

import (
	"testing"
	"time"

	"waterwheel/internal/model"
)

// waitStandbyCaughtUp polls until slot i's standby has replayed to the
// partition head.
func waitStandbyCaughtUp(t *testing.T, c *Cluster, i int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.StandbyLag(i) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("standby %d never caught up (lag %d)", i, c.StandbyLag(i))
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// haltStandby freezes slot i's standby at its current replay position:
// the tail loop exits, so the position neither advances nor resets on a
// later commit. The handle stays installed, so the truncation floor and
// a later promotion still see it — this is the "standby fell behind"
// state the truncation race needs.
func haltStandby(c *Cluster, i int) int64 {
	c.standbyMu.Lock()
	h := c.standbys[i]
	c.standbyMu.Unlock()
	h.sb.Halt()
	return h.sb.Consumed()
}

// TestTruncateFloorsAtStandbyReplay is the regression test for the
// drop/truncate race of delete-only retention: WAL truncation used to
// advance straight to the committed flush offset, compacting records a
// lagging standby had not replayed yet. The truncation horizon must be
// floored at the standby's replay position so a promotion can always
// replay forward from it without a gap.
func TestTruncateFloorsAtStandbyReplay(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.IndexServersPerNode = 1
	c := startCluster(t, cfg)
	if err := c.StartStandby(0); err != nil {
		t.Fatal(err)
	}
	var seq uint64
	for ; seq < 500; seq++ {
		if err := seqInsert(c, seq, model.Key(seq)); err != nil {
			t.Fatal(err)
		}
	}
	waitStandbyCaughtUp(t, c, 0)
	pos := haltStandby(c, 0)
	if pos <= 0 {
		t.Fatalf("standby froze at %d, want > 0", pos)
	}
	// More acked records, flushed: the committed offset moves past the
	// frozen standby.
	for ; seq < 1000; seq++ {
		if err := seqInsert(c, seq, model.Key(seq)); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain() // consumer catches up before the forced flush
	c.FlushAll()
	c.Drain()
	if off := c.Metadata().Offset(0); off <= pos {
		t.Fatalf("flush offset %d did not pass the standby position %d", off, pos)
	}
	if fl := c.standbyFloor(0); fl != pos {
		t.Fatalf("standbyFloor = %d, want frozen position %d", fl, pos)
	}
	c.TruncateWALBefore()
	if base := c.WAL().Partition(0).Base(); base > pos {
		t.Fatalf("truncation compacted past the standby: base %d > replay position %d", base, pos)
	}
}

// TestPromoteAfterTruncateKeepsAckedTuples drives the full race end to
// end: a standby falls behind, the WAL is truncated, the standby is
// promoted — and every acked tuple must still come back exactly once.
func TestPromoteAfterTruncateKeepsAckedTuples(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.IndexServersPerNode = 1
	// Let the planned handoff proceed however far behind the standby is —
	// the point of the test is promoting a lagging shadow.
	cfg.StandbyLagRecords = 1 << 30
	c := startCluster(t, cfg)
	if err := c.StartStandby(0); err != nil {
		t.Fatal(err)
	}
	var seq uint64
	for ; seq < 500; seq++ {
		if err := seqInsert(c, seq, model.Key(seq)); err != nil {
			t.Fatal(err)
		}
	}
	waitStandbyCaughtUp(t, c, 0)
	haltStandby(c, 0)
	for ; seq < 1000; seq++ {
		if err := seqInsert(c, seq, model.Key(seq)); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	c.FlushAll()
	c.Drain()
	c.TruncateWALBefore()
	if err := c.PromoteStandby(0); err != nil {
		t.Fatal(err)
	}
	c.Drain()
	verifyExactlyOnce(t, c, seq)
}

// TestDropChunksBeforeDrainSafe checks the retirement protocol: dropping
// a chunk removes it from metadata immediately, but its file stays on
// the DFS until every query that could have planned it completes — then
// one sweep deletes it.
func TestDropChunksBeforeDrainSafe(t *testing.T) {
	cfg := testConfig()
	cfg.ChunkBytes = 4 << 10
	c := startCluster(t, cfg)
	for i := 0; i < 3000; i++ {
		c.Insert(model.Tuple{Key: model.Key(uint64(i) << 44), Time: model.Timestamp(i)})
	}
	c.Drain()
	chunks := c.Metadata().ChunksFor(model.FullRegion())
	if len(chunks) == 0 {
		t.Fatal("no chunks flushed")
	}
	// An in-flight query that could have planned any of those chunks.
	q := c.Metadata().RegisterQuery(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	n := c.DropChunksBefore(model.Timestamp(1 << 40))
	if n != len(chunks) {
		t.Fatalf("dropped %d chunks, want %d", n, len(chunks))
	}
	if c.Metadata().ChunkCount() != 0 {
		t.Fatal("dropped chunks still registered")
	}
	if got := c.PendingRetiredDeletes(); got != n {
		t.Fatalf("%d deletes pending, want %d (parked behind the active query)", got, n)
	}
	// The files are still readable while the query is in flight.
	for _, ci := range chunks {
		if _, err := c.FS().Read(ci.Path); err != nil {
			t.Fatalf("retired chunk %s deleted under an active query: %v", ci.Path, err)
		}
	}
	c.Metadata().CompleteQuery(q.ID)
	c.Drain() // sweeps the retirement queue
	if got := c.PendingRetiredDeletes(); got != 0 {
		t.Fatalf("%d deletes still pending after drain", got)
	}
	for _, ci := range chunks {
		if _, err := c.FS().Read(ci.Path); err == nil {
			t.Fatalf("retired chunk %s survived the sweep", ci.Path)
		}
	}
}

// TestRetentionAfterDecommission exercises retention, compaction and
// queries against a slot table with a retired (nil) slot — every
// IndexServers() consumer has to honor the nil-slot contract.
func TestRetentionAfterDecommission(t *testing.T) {
	cfg := elasticConfig()
	cfg.ChunkBytes = 8 << 10
	// Demote-only thresholds: everything but the newest chunk turns warm,
	// nothing reaches cold, so retention still sees the original chunks.
	cfg.TierWarmAfterMillis = 1
	cfg.TierColdAfterMillis = 1 << 40
	c := startCluster(t, cfg)
	var seq uint64
	for ; seq < 3000; seq++ {
		if err := seqInsert(c, seq, model.Key(seq<<44)); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	c.FlushAll()
	c.Drain()
	if err := c.DecommissionIndexServer(1); err != nil {
		t.Fatal(err)
	}
	if c.IndexServers()[1] != nil {
		t.Fatal("retired slot still has a live server")
	}
	// Compaction demotes and merges with a nil slot in the table.
	demoted, _ := c.TickCompact()
	if demoted == 0 {
		t.Fatal("nothing demoted despite 1ms tier thresholds")
	}
	// Retention drops the chunks wholly below the horizon.
	if n := c.DropChunksBefore(1026); n == 0 {
		t.Fatal("retention dropped nothing")
	}
	c.TruncateWALBefore()
	// Queries still answer correctly over the remaining data — dropped
	// chunks held only tuples below the horizon.
	res, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.TimeRange{Lo: 1026, Hi: 2999}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1974 {
		t.Fatalf("got %d tuples, want 1974", len(res.Tuples))
	}
}
