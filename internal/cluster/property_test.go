package cluster

import (
	"math/rand"
	"testing"

	"waterwheel/internal/model"
)

// refStore is the linear-scan ground truth for end-to-end comparisons.
type refStore struct {
	tuples []model.Tuple
}

func (r *refStore) insert(t model.Tuple) { r.tuples = append(r.tuples, t) }

func (r *refStore) query(q model.Query) int {
	n := 0
	for i := range r.tuples {
		t := &r.tuples[i]
		if q.Keys.Contains(t.Key) && q.Times.Contains(t.Time) && q.Filter.Matches(t) {
			n++
		}
	}
	return n
}

// TestEndToEndRandomizedEquivalence drives the full system — dispatchers,
// WAL, indexing servers, flushes, rebalances, crash recovery — with a
// randomized workload and cross-checks every query against a reference.
func TestEndToEndRandomizedEquivalence(t *testing.T) {
	for round := 0; round < 3; round++ {
		rng := rand.New(rand.NewSource(int64(100 + round)))
		cfg := Config{
			Nodes:               2,
			IndexServersPerNode: 2,
			QueryServersPerNode: 2,
			ChunkBytes:          int64(4<<10 + rng.Intn(32<<10)),
			TemplateLeaves:      16 + rng.Intn(64),
			Seed:                int64(round),
		}
		c := New(cfg)
		c.Start()
		ref := &refStore{}

		var watermark model.Timestamp
		for step := 0; step < 30; step++ {
			// A burst of inserts: mostly in-order timestamps, some late,
			// keys from a mixture of clustered and uniform.
			burst := 200 + rng.Intn(800)
			for i := 0; i < burst; i++ {
				var k model.Key
				if rng.Intn(2) == 0 {
					k = model.Key(rng.Intn(1 << 16)) // clustered low keys
				} else {
					k = model.Key(rng.Uint64())
				}
				watermark += model.Timestamp(rng.Intn(3))
				ts := watermark
				if rng.Intn(20) == 0 {
					late := model.Timestamp(rng.Intn(1000))
					if late > ts {
						late = ts
					}
					ts -= late
				}
				tp := model.Tuple{Key: k, Time: ts, Payload: []byte{byte(i)}}
				ref.insert(tp)
				c.Insert(tp)
			}
			c.Drain()

			// Occasional maintenance events.
			switch rng.Intn(6) {
			case 0:
				c.TickBalance()
			case 1:
				c.FlushAll()
			case 2:
				if err := c.CrashIndexServer(rng.Intn(len(c.IndexServers()))); err != nil {
					t.Fatal(err)
				}
			}

			// Randomized queries cross-checked against the reference.
			for q := 0; q < 3; q++ {
				var kr model.KeyRange
				if rng.Intn(2) == 0 {
					a, b := model.Key(rng.Intn(1<<16)), model.Key(rng.Intn(1<<16))
					if a > b {
						a, b = b, a
					}
					kr = model.KeyRange{Lo: a, Hi: b}
				} else {
					kr = model.FullKeyRange()
				}
				a, b := model.Timestamp(rng.Intn(int(watermark+1))), model.Timestamp(rng.Intn(int(watermark+1)))
				if a > b {
					a, b = b, a
				}
				tr := model.TimeRange{Lo: a, Hi: b}
				var f *model.Filter
				if rng.Intn(3) == 0 {
					f = model.KeyMod(uint64(2+rng.Intn(5)), 0)
				}
				res, err := c.Query(model.Query{Keys: kr, Times: tr, Filter: f})
				if err != nil {
					t.Fatalf("round %d step %d: query: %v", round, step, err)
				}
				want := ref.query(model.Query{Keys: kr, Times: tr, Filter: f})
				if len(res.Tuples) != want {
					t.Fatalf("round %d step %d: query %v/%v got %d want %d",
						round, step, kr, tr, len(res.Tuples), want)
				}
			}
		}
		// Final total check.
		res, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != len(ref.tuples) {
			t.Fatalf("round %d: final total %d, want %d", round, len(res.Tuples), len(ref.tuples))
		}
		c.Stop()
	}
}

// TestEndToEndLimitEquivalence checks the Limit contract across the full
// stack: the result is the lowest-keyed N matches.
func TestEndToEndLimitEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New(Config{
		Nodes: 2, IndexServersPerNode: 2, QueryServersPerNode: 2,
		ChunkBytes: 8 << 10, Seed: 7,
	})
	c.Start()
	defer c.Stop()
	ref := &refStore{}
	for i := 0; i < 5000; i++ {
		tp := model.Tuple{Key: model.Key(rng.Uint64()), Time: model.Timestamp(i)}
		ref.insert(tp)
		c.Insert(tp)
	}
	c.Drain()
	for trial := 0; trial < 10; trial++ {
		limit := 1 + rng.Intn(50)
		res, err := c.Query(model.Query{
			Keys: model.FullKeyRange(), Times: model.FullTimeRange(), Limit: limit,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != limit {
			t.Fatalf("limit %d returned %d", limit, len(res.Tuples))
		}
		// Verify these are the globally smallest keys.
		var kth model.Key
		{
			keys := make([]model.Key, len(ref.tuples))
			for i := range ref.tuples {
				keys[i] = ref.tuples[i].Key
			}
			// selection via sort of copy (small n)
			for i := 0; i < limit; i++ {
				min := i
				for j := i + 1; j < len(keys); j++ {
					if keys[j] < keys[min] {
						min = j
					}
				}
				keys[i], keys[min] = keys[min], keys[i]
			}
			kth = keys[limit-1]
		}
		for _, tp := range res.Tuples {
			if tp.Key > kth {
				t.Fatalf("limit returned key %d above the %d-th smallest %d", tp.Key, limit, kth)
			}
		}
	}
}
