package cluster

import (
	"math/rand"
	"sync"
	"testing"

	"waterwheel/internal/model"
)

func testConfig() Config {
	return Config{
		Nodes:               2,
		IndexServersPerNode: 1,
		QueryServersPerNode: 2,
		DispatchersPerNode:  1,
		ChunkBytes:          1 << 20,
		CacheBytes:          4 << 20,
		TemplateLeaves:      32,
		Seed:                1,
	}
}

func startCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c := New(cfg)
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func TestInsertQueryRoundTrip(t *testing.T) {
	c := startCluster(t, testConfig())
	for i := 0; i < 1000; i++ {
		c.Insert(model.Tuple{
			Key:     model.Key(uint64(i) << 50),
			Time:    model.Timestamp(1000 + i),
			Payload: []byte{byte(i)},
		})
	}
	c.Drain()
	res, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1000 {
		t.Fatalf("got %d tuples, want 1000", len(res.Tuples))
	}
	if c.Ingested() != 1000 {
		t.Errorf("Ingested = %d", c.Ingested())
	}
}

func TestQueryAcrossFlushBoundary(t *testing.T) {
	cfg := testConfig()
	cfg.ChunkBytes = 4 << 10 // force frequent flushes
	c := startCluster(t, cfg)
	for i := 0; i < 3000; i++ {
		c.Insert(model.Tuple{Key: model.Key(uint64(i) << 44), Time: model.Timestamp(i)})
	}
	c.Drain()
	if c.Metadata().ChunkCount() == 0 {
		t.Fatal("no chunks were flushed")
	}
	res, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 3000 {
		t.Fatalf("got %d tuples, want 3000 (chunks=%d, mem=%d)",
			len(res.Tuples), c.Metadata().ChunkCount(), c.MemLen())
	}
}

func TestSelectiveQueries(t *testing.T) {
	cfg := testConfig()
	cfg.ChunkBytes = 16 << 10
	c := startCluster(t, cfg)
	tuples := make([]model.Tuple, 5000)
	for i := range tuples {
		tuples[i] = model.Tuple{Key: model.Key(uint64(i%1000) << 50), Time: model.Timestamp(i)}
		c.Insert(tuples[i])
	}
	c.Drain()
	kr := model.KeyRange{Lo: 100 << 50, Hi: 200 << 50}
	tr := model.TimeRange{Lo: 1000, Hi: 2000}
	res, err := c.Query(model.Query{Keys: kr, Times: tr})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, tp := range tuples {
		if kr.Contains(tp.Key) && tr.Contains(tp.Time) {
			want++
		}
	}
	if len(res.Tuples) != want || want == 0 {
		t.Fatalf("got %d, want %d (>0)", len(res.Tuples), want)
	}
}

func TestSyncIngestMode(t *testing.T) {
	cfg := testConfig()
	cfg.SyncIngest = true
	c := startCluster(t, cfg)
	for i := 0; i < 500; i++ {
		c.Insert(model.Tuple{Key: model.Key(uint64(i) << 50), Time: model.Timestamp(i)})
	}
	c.Drain() // no-op, must not hang
	res, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 500 {
		t.Fatalf("got %d tuples", len(res.Tuples))
	}
	if err := c.CrashIndexServer(0); err == nil {
		t.Error("crash recovery should be unavailable in sync mode")
	}
}

func TestAdaptiveRebalancing(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 4
	c := startCluster(t, cfg)
	rng := rand.New(rand.NewSource(2))
	// All keys land in server 0's initial interval.
	for i := 0; i < 10000; i++ {
		c.Insert(model.Tuple{Key: model.Key(rng.Intn(1 << 20)), Time: model.Timestamp(i)})
	}
	c.Drain()
	if !c.TickBalance() {
		t.Fatal("balancer did not fire on a fully skewed stream")
	}
	if c.Metadata().Schema().Version < 2 {
		t.Error("schema version not bumped")
	}
	// Post-rebalance traffic spreads across servers.
	for i := 0; i < 8000; i++ {
		c.Insert(model.Tuple{Key: model.Key(rng.Intn(1 << 20)), Time: model.Timestamp(20000 + i)})
	}
	c.Drain()
	counts := make([]int64, len(c.IndexServers()))
	for i, srv := range c.IndexServers() {
		counts[i] = srv.Stats().Ingested.Load()
	}
	spread := 0
	for _, n := range counts {
		if n > 500 {
			spread++
		}
	}
	if spread < 3 {
		t.Errorf("ingestion still concentrated after rebalance: %v", counts)
	}
	// Correctness across the repartition: everything still queryable.
	res, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 18000 {
		t.Fatalf("got %d tuples, want 18000", len(res.Tuples))
	}
}

func TestRepartitionOverlapCorrectness(t *testing.T) {
	// Tuples buffered under the old schema must stay visible through the
	// overlap window (§III-D): query the moved key range before any flush.
	cfg := testConfig()
	cfg.Nodes = 2
	cfg.ChunkBytes = 1 << 30 // never flush
	c := startCluster(t, cfg)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		c.Insert(model.Tuple{Key: model.Key(rng.Intn(1 << 30)), Time: model.Timestamp(i)})
	}
	c.Drain()
	if !c.TickBalance() {
		t.Fatal("expected a repartition")
	}
	res, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 5000 {
		t.Fatalf("lost tuples across repartition: %d/5000", len(res.Tuples))
	}
}

func TestIndexServerCrashRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.ChunkBytes = 8 << 10
	c := startCluster(t, cfg)
	for i := 0; i < 4000; i++ {
		c.Insert(model.Tuple{Key: model.Key(uint64(i) << 45), Time: model.Timestamp(i)})
	}
	c.Drain()
	before, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CrashIndexServer(0); err != nil {
		t.Fatal(err)
	}
	after, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Tuples) != len(before.Tuples) {
		t.Fatalf("data lost across crash: %d -> %d", len(before.Tuples), len(after.Tuples))
	}
	// The replacement keeps ingesting.
	for i := 0; i < 100; i++ {
		c.Insert(model.Tuple{Key: model.Key(uint64(i) << 45), Time: model.Timestamp(10_000 + i)})
	}
	c.Drain()
	res, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.TimeRange{Lo: 10_000, Hi: 20_000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 100 {
		t.Fatalf("post-recovery inserts: %d/100 visible", len(res.Tuples))
	}
}

func TestConcurrentInsertAndQuery(t *testing.T) {
	cfg := testConfig()
	cfg.ChunkBytes = 32 << 10
	c := startCluster(t, cfg)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				c.Insert(model.Tuple{Key: model.Key(rng.Uint64()), Time: model.Timestamp(i)})
			}
		}(w)
	}
	qErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()}); err != nil {
				select {
				case qErr <- err:
				default:
				}
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-qErr:
		t.Fatalf("query during ingest: %v", err)
	default:
	}
	c.Drain()
	res, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 8000 {
		t.Fatalf("got %d tuples, want 8000", len(res.Tuples))
	}
}

func TestStopIdempotentAndRestartSafe(t *testing.T) {
	c := New(testConfig())
	c.Start()
	c.Start() // idempotent
	c.Insert(model.Tuple{Key: 1, Time: 1})
	c.Drain()
	c.Stop()
	c.Stop() // idempotent
}
