package transport

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestCallRoundTrip(t *testing.T) {
	s, c := newPair(t)
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	got, err := c.Call("echo", []byte("hello"))
	if err != nil || string(got) != "hello" {
		t.Fatalf("Call = %q, %v", got, err)
	}
}

func TestHandlerError(t *testing.T) {
	s, c := newPair(t)
	s.Handle("boom", func([]byte) ([]byte, error) { return nil, errors.New("kapow") })
	_, err := c.Call("boom", nil)
	if err == nil || err.Error() != "kapow" {
		t.Fatalf("err = %v", err)
	}
	// The connection survives handler errors.
	s.Handle("ok", func([]byte) ([]byte, error) { return []byte("fine"), nil })
	got, err := c.Call("ok", nil)
	if err != nil || string(got) != "fine" {
		t.Fatalf("after error: %q, %v", got, err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, c := newPair(t)
	_, err := c.Call("nope", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	s, c := newPair(t)
	s.Handle("slowEcho", func(p []byte) ([]byte, error) {
		if string(p) == "slow" {
			time.Sleep(50 * time.Millisecond)
		}
		return p, nil
	})
	var wg sync.WaitGroup
	start := time.Now()
	results := make([]string, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := "fast"
			if i == 0 {
				msg = "slow"
			}
			got, err := c.Call("slowEcho", []byte(msg))
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			results[i] = string(got)
		}(i)
	}
	wg.Wait()
	// The slow call must not serialize the fast ones: total << 20*50ms.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("calls appear serialized: %v", elapsed)
	}
	for i, r := range results {
		want := "fast"
		if i == 0 {
			want = "slow"
		}
		if r != want {
			t.Errorf("result %d = %q (response mismatched to request?)", i, r)
		}
	}
}

func TestManyClientsOneServer(t *testing.T) {
	s := NewServer()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var calls sync.Map
	s.Handle("mark", func(p []byte) ([]byte, error) {
		calls.Store(string(p), true)
		return p, nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				msg := fmt.Sprintf("g%d-%d", g, i)
				if got, err := c.Call("mark", []byte(msg)); err != nil || string(got) != msg {
					t.Errorf("call: %q %v", got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	n := 0
	calls.Range(func(any, any) bool { n++; return true })
	if n != 400 {
		t.Errorf("server saw %d calls, want 400", n)
	}
}

func TestCallAfterClose(t *testing.T) {
	_, c := newPair(t)
	c.Close()
	if _, err := c.Call("x", nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerCloseFailsInFlight(t *testing.T) {
	s := NewServer()
	addr, _ := s.Listen("127.0.0.1:0")
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Further calls fail once the connection drops (may take one call to
	// notice).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Call("echo", []byte("x")); err != nil {
			return
		}
	}
	t.Fatal("calls kept succeeding after server close")
}

func TestLargePayload(t *testing.T) {
	s, c := newPair(t)
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i)
	}
	got, err := c.Call("echo", big)
	if err != nil || len(got) != len(big) {
		t.Fatalf("big echo: %d bytes, %v", len(got), err)
	}
	for i := 0; i < len(big); i += 100_003 {
		if got[i] != big[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}
