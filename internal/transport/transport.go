// Package transport implements the small RPC layer Waterwheel exposes to
// network clients (the role Apache Storm's data transport played in the
// paper's prototype). Frames are length-prefixed gob messages multiplexed
// over a single TCP connection: a client may have many requests in flight;
// responses are matched by request ID.
package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// MaxFrameBytes bounds a single frame (64 MiB).
const MaxFrameBytes = 64 << 20

// ErrClientClosed is returned by calls on a closed client.
var ErrClientClosed = errors.New("transport: client closed")

// frame is the wire unit for both directions.
type frame struct {
	ID      uint64
	Method  string
	Payload []byte
	Err     string
}

func writeFrame(w io.Writer, f *frame) error {
	var body bytesBuffer
	if err := gob.NewEncoder(&body).Encode(f); err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	var hdr [4]byte
	if len(body.b) > MaxFrameBytes {
		return fmt.Errorf("transport: frame too large (%d bytes)", len(body.b))
	}
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body.b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body.b)
	return err
}

func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("transport: frame too large (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := gob.NewDecoder(&byteReader{b: body}).Decode(&f); err != nil {
		return nil, fmt.Errorf("transport: decode: %w", err)
	}
	return &f, nil
}

// bytesBuffer is a minimal append-only writer (avoids bytes.Buffer's
// extra interface indirection in the hot path).
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type byteReader struct {
	b []byte
	i int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// Handler serves one method: it receives the request payload and returns
// the response payload.
type Handler func(payload []byte) ([]byte, error)

// Server accepts connections and dispatches frames to registered handlers.
// Each request is served on its own goroutine, so slow queries do not
// block inserts sharing the connection.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	conns    map[net.Conn]struct{}
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
}

// NewServer creates a server with no handlers.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Handle registers a handler for a method name.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// Listen binds the address ("127.0.0.1:0" for an ephemeral port) and
// starts accepting. Returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 1<<16)
	var wmu sync.Mutex // serializes response frames
	bw := bufio.NewWriterSize(conn, 1<<16)
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		f, err := readFrame(br)
		if err != nil {
			return
		}
		s.mu.RLock()
		h := s.handlers[f.Method]
		s.mu.RUnlock()
		reqWG.Add(1)
		go func(f *frame) {
			defer reqWG.Done()
			resp := &frame{ID: f.ID}
			if h == nil {
				resp.Err = fmt.Sprintf("unknown method %q", f.Method)
			} else if out, err := h(f.Payload); err != nil {
				resp.Err = err.Error()
			} else {
				resp.Payload = out
			}
			wmu.Lock()
			defer wmu.Unlock()
			if err := writeFrame(bw, resp); err == nil {
				bw.Flush()
			}
		}(f)
	}
}

// Close stops accepting, drops every open connection, and waits for the
// serving goroutines to exit.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Client is a multiplexing RPC client over one TCP connection.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	wmu  sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan *frame
	nextID  atomic.Uint64
	closed  atomic.Bool
	readErr error
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 1<<16),
		pending: make(map[uint64]chan *frame),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 1<<16)
	for {
		f, err := readFrame(br)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[f.ID]
		delete(c.pending, f.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

// Call sends a request and waits for the matching response payload.
func (c *Client) Call(method string, payload []byte) ([]byte, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	id := c.nextID.Add(1)
	ch := make(chan *frame, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("transport: connection broken: %w", err)
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeFrame(c.bw, &frame{ID: id, Method: method, Payload: payload})
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}

	f, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("transport: connection closed awaiting response")
	}
	if f.Err != "" {
		return nil, errors.New(f.Err)
	}
	return f.Payload, nil
}

// Close tears the connection down; in-flight calls fail.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	return c.conn.Close()
}
