package core

import (
	"math/rand"
	"sync"
	"testing"

	"waterwheel/internal/model"
)

func TestConcurrentInsertAndRange(t *testing.T) {
	tree := NewConcurrentTree(4, 4) // tiny nodes to force deep splits
	for k := 0; k < 1000; k++ {
		tree.Insert(model.Tuple{Key: model.Key(k), Time: model.Timestamp(k)})
	}
	if tree.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tree.Len())
	}
	if tree.Depth() < 3 {
		t.Errorf("depth %d suspiciously small for 1000 entries at cap 4", tree.Depth())
	}
	if tree.Stats().Splits.Load() == 0 {
		t.Error("no splits recorded — baseline must split")
	}
	got := collect(tree, model.KeyRange{Lo: 100, Hi: 199}, model.FullTimeRange(), nil)
	if len(got) != 100 {
		t.Fatalf("range returned %d, want 100", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key < got[i-1].Key {
			t.Fatal("results out of key order")
		}
	}
}

func TestConcurrentReverseAndRandomOrders(t *testing.T) {
	for name, gen := range map[string]func(i int) model.Key{
		"reverse": func(i int) model.Key { return model.Key(5000 - i) },
		"random":  func(i int) model.Key { return model.Key(splitmixKey(uint64(i))) },
	} {
		tree := NewConcurrentTree(8, 8)
		seen := map[model.Key]int{}
		for i := 0; i < 5000; i++ {
			k := gen(i)
			seen[k]++
			tree.Insert(model.Tuple{Key: k, Time: model.Timestamp(i)})
		}
		got := collect(tree, model.FullKeyRange(), model.FullTimeRange(), nil)
		if len(got) != 5000 {
			t.Fatalf("%s: full scan %d, want 5000", name, len(got))
		}
		for _, tp := range got {
			seen[tp.Key]--
		}
		for k, c := range seen {
			if c != 0 {
				t.Fatalf("%s: key %d count off by %d", name, k, c)
			}
		}
	}
}

func splitmixKey(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func TestConcurrentDuplicateKeys(t *testing.T) {
	tree := NewConcurrentTree(4, 4)
	// 100 copies of one key overflow any leaf: tree must keep them findable.
	for i := 0; i < 100; i++ {
		tree.Insert(model.Tuple{Key: 7, Time: model.Timestamp(i)})
	}
	for i := 0; i < 100; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i * 10), Time: model.Timestamp(i)})
	}
	// Keys inserted: 7 x100 plus 0,10,...,990; only key 7 matches the probe.
	got := collect(tree, model.KeyRange{Lo: 7, Hi: 7}, model.FullTimeRange(), nil)
	if len(got) != 100 {
		t.Fatalf("point query = %d, want 100", len(got))
	}
}

func TestConcurrentDuplicatePointQueryExact(t *testing.T) {
	tree := NewConcurrentTree(4, 4)
	for i := 0; i < 64; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i % 4), Time: model.Timestamp(i)})
	}
	for k := model.Key(0); k < 4; k++ {
		got := collect(tree, model.KeyRange{Lo: k, Hi: k}, model.FullTimeRange(), nil)
		if len(got) != 16 {
			t.Fatalf("key %d: got %d, want 16", k, len(got))
		}
	}
}

func TestConcurrentTimeFilterAndPredicate(t *testing.T) {
	tree := NewConcurrentTree(16, 16)
	for i := 0; i < 500; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i * 10)})
	}
	got := collect(tree, model.KeyRange{Lo: 0, Hi: 499}, model.TimeRange{Lo: 1000, Hi: 2000}, nil)
	if len(got) != 101 {
		t.Fatalf("time filter returned %d, want 101", len(got))
	}
	got = collect(tree, model.FullKeyRange(), model.FullTimeRange(), model.KeyMod(5, 0))
	if len(got) != 100 {
		t.Fatalf("predicate returned %d, want 100", len(got))
	}
}

func TestConcurrentParallelInserts(t *testing.T) {
	tree := NewConcurrentTree(DefaultLeafCap, DefaultFanout)
	const (
		writers = 8
		perW    = 3000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w * 31)))
			for i := 0; i < perW; i++ {
				tree.Insert(model.Tuple{Key: model.Key(rng.Uint64()), Time: model.Timestamp(i)})
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tree.Range(model.KeyRange{Lo: 0, Hi: model.MaxKey / 2}, model.FullTimeRange(), nil,
					func(*model.Tuple) bool { return true })
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if got := tree.Len(); got != writers*perW {
		t.Fatalf("Len = %d, want %d", got, writers*perW)
	}
	if got := collect(tree, model.FullKeyRange(), model.FullTimeRange(), nil); len(got) != writers*perW {
		t.Fatalf("full scan %d, want %d", len(got), writers*perW)
	}
}

func TestConcurrentEarlyStop(t *testing.T) {
	tree := NewConcurrentTree(4, 4)
	for i := 0; i < 100; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i), Time: 0})
	}
	n := 0
	tree.Range(model.FullKeyRange(), model.FullTimeRange(), nil, func(*model.Tuple) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("visited %d, want 5", n)
	}
}
