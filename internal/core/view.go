// Generic typed views over the columnar scan paths. The SoA leaves expose
// tuples as (key, time, payload) triples; ScanTree and ScanSnapshot
// compose a model.PayloadView on top so callers consume typed payload
// values — a counter field, a struct decode — without a model.Tuple ever
// being built. (Methods cannot be generic, hence free functions.)
package core

import "waterwheel/internal/model"

// ColsVisitor visits one tuple as raw columns. The payload slice aliases a
// leaf arena: treat it as read-only and copy it to retain it beyond the
// call. Return false to stop the scan.
type ColsVisitor = func(model.Key, model.Timestamp, []byte) bool

// Visitor visits one tuple with its payload decoded through a view.
// Return false to stop the scan.
type Visitor[P any] func(model.Key, model.Timestamp, P) bool

// ScanTree visits the tree's tuples matching the ranges and filter in key
// order, decoding each payload through view. The restrictions of
// model.PayloadView apply: the raw bytes handed to view are only valid for
// the duration of the call.
func ScanTree[P any](t *TemplateTree, kr model.KeyRange, tr model.TimeRange, filter *model.Filter, view model.PayloadView[P], fn Visitor[P]) {
	t.RangeCols(kr, tr, filter, func(k model.Key, ts model.Timestamp, p []byte) bool {
		return fn(k, ts, view(p))
	})
}

// ScanSnapshot is ScanTree over an immutable flush snapshot; it takes no
// locks and is safe for any number of concurrent readers.
func ScanSnapshot[P any](s *FlushSnapshot, kr model.KeyRange, tr model.TimeRange, filter *model.Filter, view model.PayloadView[P], fn Visitor[P]) {
	s.RangeCols(kr, tr, filter, func(k model.Key, ts model.Timestamp, p []byte) bool {
		return fn(k, ts, view(p))
	})
}
