// Structure-of-arrays leaf storage: the column types shared by the live
// template-tree leaves and the flush snapshots they hand to the chunk
// builder.
//
// A leaf holds exactly four allocations regardless of tuple count: a key
// column, a timestamp column, a payload-reference column, and an
// append-only byte arena holding every payload back to back in arrival
// order. Payload bytes are copied into the arena on insert, so the tree
// never retains caller buffers; once written, arena bytes are immutable —
// inserts only append, merges only move the reference column — which is
// what makes zero-copy payload views safe to hand out under the leaf
// latch and makes a FlushReset snapshot immutable by construction (the
// live leaf abandons its buffers wholesale and starts fresh).
package core

import (
	"encoding/binary"
	"sync/atomic"

	"waterwheel/internal/model"
)

// PayloadRef packs a payload's location in its leaf arena into one machine
// word: byte offset in the upper 40 bits, length in the lower 24. Payloads
// of refEscapeLen (16 MiB − 1) bytes or more store the sentinel length and
// an 8-byte big-endian length prefix in the arena before the bytes, so no
// payload size is unrepresentable.
type PayloadRef uint64

const (
	refLenBits  = 24
	refLenMask  = 1<<refLenBits - 1
	refEscapeLen = refLenMask
)

// arenaEnsure grows the arena to fit need more bytes, doubling capacity.
// Plain append switches to ~1.25x growth past 256 bytes, which re-copies
// a busy arena far more often; doubling keeps the amortized copy cost at
// one byte moved per byte appended and halves the allocation traffic the
// garbage collector has to keep up with on the insert hot path.
func arenaEnsure(arena []byte, need int) []byte {
	if cap(arena)-len(arena) >= need {
		return arena
	}
	c := 2 * cap(arena)
	if c < len(arena)+need {
		c = len(arena) + need
	}
	if c < 64 {
		c = 64
	}
	nb := make([]byte, len(arena), c)
	copy(nb, arena)
	return nb
}

// arenaAppend copies p into the arena and returns the grown arena and the
// reference addressing the copy.
func arenaAppend(arena []byte, p []byte) ([]byte, PayloadRef) {
	off := uint64(len(arena))
	if len(p) >= refEscapeLen {
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], uint64(len(p)))
		arena = arenaEnsure(arena, 8+len(p))
		arena = append(arena, hdr[:]...)
		arena = append(arena, p...)
		return arena, PayloadRef(off<<refLenBits | refEscapeLen)
	}
	arena = arenaEnsure(arena, len(p))
	arena = append(arena, p...)
	return arena, PayloadRef(off<<refLenBits | uint64(len(p)))
}

// arenaPayload resolves a reference to its payload bytes. The returned
// slice aliases the arena and must be treated as read-only.
func arenaPayload(arena []byte, r PayloadRef) []byte {
	off := uint64(r) >> refLenBits
	n := uint64(r) & refLenMask
	if n == refEscapeLen {
		n = binary.BigEndian.Uint64(arena[off:])
		off += 8
	}
	return arena[off : off+n : off+n]
}

// arenaPayloadLen returns a reference's payload length without slicing.
func arenaPayloadLen(arena []byte, r PayloadRef) int {
	n := uint64(r) & refLenMask
	if n == refEscapeLen {
		n = binary.BigEndian.Uint64(arena[uint64(r)>>refLenBits:])
	}
	return int(n)
}

// LeafCols is one leaf's tuples as parallel columns: entry j is the tuple
// (Keys[j], Times[j], payload addressed by Refs[j] in Arena). Keys are
// sorted; equal keys appear in arrival order. Flush snapshots expose their
// leaves in this form so the v2 chunk encoder transcodes column to column
// without materializing tuples.
type LeafCols struct {
	Keys  []model.Key
	Times []model.Timestamp
	Refs  []PayloadRef
	Arena []byte
}

// Len returns the number of tuples in the leaf.
func (c *LeafCols) Len() int { return len(c.Keys) }

// Payload returns tuple j's payload bytes. The slice aliases the arena and
// must be treated as read-only.
func (c *LeafCols) Payload(j int) []byte { return arenaPayload(c.Arena, c.Refs[j]) }

// PayloadLen returns tuple j's payload length without slicing the arena.
func (c *LeafCols) PayloadLen(j int) int { return arenaPayloadLen(c.Arena, c.Refs[j]) }

// tupleMats counts model.Tuple values materialized from snapshot columns
// (see TupleMaterializations).
var tupleMats atomic.Int64

// TupleMaterializations returns a monotone counter of model.Tuple values
// materialized out of flush-snapshot columns (FlushSnapshot.EachTuple).
// The zero-materialization flush test reads it around a chunk build: the
// v2 column-transcode path must leave it unchanged, while the v1 row
// encoder advances it once per tuple.
func TupleMaterializations() int64 { return tupleMats.Load() }
