package core

import (
	"sort"
	"testing"

	"waterwheel/internal/model"
)

// FuzzTemplateTreeInsertScan drives a template tree through an arbitrary
// interleaving of single inserts, staged batch inserts, range scans, and
// forced template rebuilds, checking every scan against a sorted-slice
// oracle. The tree is configured with a tiny leaf count and an aggressive
// skew-check cadence so adaptive template updates fire constantly
// mid-stream — the scenario where a lost or duplicated tuple during
// redistribution or a mid-batch leaf merge would show up immediately.
func FuzzTemplateTreeInsertScan(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{7, 0, 0, 0, 0, 6, 0, 0, 0, 0, 7, 255, 255, 255, 255})
	// A skewed run: many inserts clustered on one key prefix, then scans.
	skew := make([]byte, 0, 300)
	for i := 0; i < 50; i++ {
		skew = append(skew, 0, 0, byte(i%4), byte(i), byte(i))
	}
	skew = append(skew, 7, 0, 0, 255, 255)
	f.Add(skew)
	// A batch-heavy run: stage dup-keyed tuples, flush as one batch, scan.
	batchy := make([]byte, 0, 300)
	for i := 0; i < 40; i++ {
		batchy = append(batchy, 5, 0, byte(i%3), byte(i), byte(i))
	}
	batchy = append(batchy, 4, 0, 0, 0, 0, 7, 0, 0, 255, 255)
	f.Add(batchy)

	f.Fuzz(func(t *testing.T, data []byte) {
		tree := NewTemplateTree(TemplateConfig{
			Keys:          model.KeyRange{Lo: 0, Hi: 1<<16 - 1},
			Leaves:        8,
			Fanout:        4,
			SkewThreshold: 0.3,
			CheckEvery:    8,
			MinPerLeaf:    1,
		})
		var oracle []model.Tuple
		var pending []model.Tuple // staged for the next InsertBatch

		scan := func(kr model.KeyRange, tr model.TimeRange) {
			var got []model.Tuple
			tree.Range(kr, tr, nil, func(tp *model.Tuple) bool {
				got = append(got, *tp)
				return true
			})
			var want []model.Tuple
			for _, tp := range oracle {
				if kr.Contains(tp.Key) && tr.Contains(tp.Time) {
					want = append(want, tp)
				}
			}
			// Range visits leaves in key order but makes no intra-leaf order
			// promise across time; compare as sorted multisets.
			sort.Slice(got, func(i, j int) bool { return model.CompareTuples(&got[i], &got[j]) < 0 })
			sort.Slice(want, func(i, j int) bool { return model.CompareTuples(&want[i], &want[j]) < 0 })
			if len(got) != len(want) {
				t.Fatalf("scan %v/%v returned %d tuples, oracle has %d", kr, tr, len(got), len(want))
			}
			for i := range got {
				if model.CompareTuples(&got[i], &want[i]) != 0 {
					t.Fatalf("scan %v/%v diverged at %d: got %v, want %v", kr, tr, i, got[i], want[i])
				}
			}
		}

		for len(data) >= 5 {
			op, a, b, c, d := data[0], data[1], data[2], data[3], data[4]
			data = data[5:]
			switch op % 8 {
			case 4:
				// Flush the staged batch through the vectorized path; only
				// now do the staged tuples become visible to the oracle.
				tree.InsertBatch(pending)
				oracle = append(oracle, pending...)
				pending = nil
			case 5:
				pending = append(pending, model.Tuple{
					Key:  model.Key(a)<<8 | model.Key(b),
					Time: model.Timestamp(c)<<8 | model.Timestamp(d),
				})
			case 6:
				tree.UpdateTemplate()
			case 7:
				lo := model.Key(a)<<8 | model.Key(b)
				hi := model.Key(c)<<8 | model.Key(d)
				if hi < lo {
					lo, hi = hi, lo
				}
				scan(model.KeyRange{Lo: lo, Hi: hi}, model.FullTimeRange())
			default:
				tp := model.Tuple{
					Key:  model.Key(a)<<8 | model.Key(b),
					Time: model.Timestamp(c)<<8 | model.Timestamp(d),
				}
				tree.Insert(tp)
				oracle = append(oracle, tp)
			}
		}
		tree.InsertBatch(pending)
		oracle = append(oracle, pending...)
		scan(model.FullKeyRange(), model.FullTimeRange())
		if tree.Len() != len(oracle) {
			t.Fatalf("tree.Len() = %d, oracle holds %d", tree.Len(), len(oracle))
		}
	})
}
