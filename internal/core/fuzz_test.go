package core

import (
	"fmt"
	"sort"
	"testing"

	"waterwheel/internal/model"
)

// FuzzTemplateTreeInsertScan drives a template tree through an arbitrary
// interleaving of single inserts, staged batch inserts, range scans,
// forced template rebuilds, and flush swaps, checking every scan against a
// sorted-slice oracle. The tree is configured with a tiny leaf count and
// an aggressive skew-check cadence so adaptive template updates fire
// constantly mid-stream — the scenario where a lost or duplicated tuple
// during redistribution or a mid-batch leaf merge would show up
// immediately. Every tuple carries a payload derived from the input so
// arena corruption (a ref pointing at the wrong bytes after a column
// merge or redistribution) surfaces as a multiset mismatch, and each
// FlushReset snapshot is re-verified at the end — after the live tree has
// kept mutating — so a snapshot sharing state with live columns fails.
func FuzzTemplateTreeInsertScan(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{7, 0, 0, 0, 0, 6, 0, 0, 0, 0, 7, 255, 255, 255, 255})
	// A skewed run: many inserts clustered on one key prefix, then scans.
	skew := make([]byte, 0, 300)
	for i := 0; i < 50; i++ {
		skew = append(skew, 0, 0, byte(i%4), byte(i), byte(i))
	}
	skew = append(skew, 7, 0, 0, 255, 255)
	f.Add(skew)
	// A batch-heavy run: stage dup-keyed tuples, flush as one batch, scan.
	batchy := make([]byte, 0, 300)
	for i := 0; i < 40; i++ {
		batchy = append(batchy, 5, 0, byte(i%3), byte(i), byte(i))
	}
	batchy = append(batchy, 4, 0, 0, 0, 0, 7, 0, 0, 255, 255)
	f.Add(batchy)
	// A flush-heavy run: insert, swap out a snapshot, keep inserting.
	flushy := make([]byte, 0, 300)
	for i := 0; i < 30; i++ {
		flushy = append(flushy, 0, byte(i), byte(i), 0, byte(i))
		if i%10 == 9 {
			flushy = append(flushy, 3, 0, 0, 0, 0)
		}
	}
	flushy = append(flushy, 7, 0, 0, 255, 255)
	f.Add(flushy)

	f.Fuzz(func(t *testing.T, data []byte) {
		tree := NewTemplateTree(TemplateConfig{
			Keys:          model.KeyRange{Lo: 0, Hi: 1<<16 - 1},
			Leaves:        8,
			Fanout:        4,
			SkewThreshold: 0.3,
			CheckEvery:    8,
			MinPerLeaf:    1,
		})
		var oracle []model.Tuple
		var pending []model.Tuple // staged for the next InsertBatch
		type flushed struct {
			snap   *FlushSnapshot
			oracle []model.Tuple
		}
		var snaps []flushed

		// Variable-length payloads (including empty) exercise the arena:
		// ref/offset corruption shows up as a payload mismatch.
		payload := func(a, b, c, d byte) []byte {
			full := []byte{a ^ 0xA5, b, c, d}
			return full[:int(d)%5]
		}

		diff := func(what string, got, want []model.Tuple) {
			// Scans visit leaves in key order but make no intra-leaf order
			// promise across time; compare as sorted multisets.
			sort.Slice(got, func(i, j int) bool { return model.CompareTuples(&got[i], &got[j]) < 0 })
			sort.Slice(want, func(i, j int) bool { return model.CompareTuples(&want[i], &want[j]) < 0 })
			if len(got) != len(want) {
				t.Fatalf("%s returned %d tuples, oracle has %d", what, len(got), len(want))
			}
			for i := range got {
				if model.CompareTuples(&got[i], &want[i]) != 0 {
					t.Fatalf("%s diverged at %d: got %v, want %v", what, i, got[i], want[i])
				}
			}
		}

		scan := func(kr model.KeyRange, tr model.TimeRange) {
			var got []model.Tuple
			tree.Range(kr, tr, nil, func(tp *model.Tuple) bool {
				// The visitor tuple is reused and its payload aliases the
				// leaf arena; copy what outlives the callback.
				got = append(got, model.Tuple{Key: tp.Key, Time: tp.Time, Payload: append([]byte(nil), tp.Payload...)})
				return true
			})
			var want []model.Tuple
			for _, tp := range oracle {
				if kr.Contains(tp.Key) && tr.Contains(tp.Time) {
					want = append(want, tp)
				}
			}
			diff("scan", got, want)
		}

		for len(data) >= 5 {
			op, a, b, c, d := data[0], data[1], data[2], data[3], data[4]
			data = data[5:]
			switch op % 8 {
			case 3:
				// Swap the memtable out. The snapshot's contents are pinned
				// now and re-checked at the very end, after the live tree
				// has overwritten and reallocated its columns many times.
				if snap := tree.FlushReset(); snap != nil {
					snaps = append(snaps, flushed{snap: snap, oracle: oracle})
				}
				oracle = nil
			case 4:
				// Flush the staged batch through the vectorized path; only
				// now do the staged tuples become visible to the oracle.
				tree.InsertBatch(pending)
				oracle = append(oracle, pending...)
				pending = nil
			case 5:
				pending = append(pending, model.Tuple{
					Key:     model.Key(a)<<8 | model.Key(b),
					Time:    model.Timestamp(c)<<8 | model.Timestamp(d),
					Payload: payload(a, b, c, d),
				})
			case 6:
				tree.UpdateTemplate()
			case 7:
				lo := model.Key(a)<<8 | model.Key(b)
				hi := model.Key(c)<<8 | model.Key(d)
				if hi < lo {
					lo, hi = hi, lo
				}
				scan(model.KeyRange{Lo: lo, Hi: hi}, model.FullTimeRange())
			default:
				tp := model.Tuple{
					Key:     model.Key(a)<<8 | model.Key(b),
					Time:    model.Timestamp(c)<<8 | model.Timestamp(d),
					Payload: payload(a, b, c, d),
				}
				tree.Insert(tp)
				oracle = append(oracle, tp)
			}
		}
		tree.InsertBatch(pending)
		oracle = append(oracle, pending...)
		scan(model.FullKeyRange(), model.FullTimeRange())
		if tree.Len() != len(oracle) {
			t.Fatalf("tree.Len() = %d, oracle holds %d", tree.Len(), len(oracle))
		}
		// Snapshot isolation: every flushed snapshot still holds exactly
		// what the tree held at swap time, untouched by later mutation.
		for si, fl := range snaps {
			var got []model.Tuple
			fl.snap.RangeCols(model.FullKeyRange(), model.FullTimeRange(), nil, func(k model.Key, ts model.Timestamp, p []byte) bool {
				got = append(got, model.Tuple{Key: k, Time: ts, Payload: append([]byte(nil), p...)})
				return true
			})
			diff(fmt.Sprintf("snapshot %d", si), got, fl.oracle)
			if fl.snap.Count != len(fl.oracle) {
				t.Fatalf("snapshot %d Count = %d, oracle holds %d", si, fl.snap.Count, len(fl.oracle))
			}
		}
	})
}
