package core

import (
	"math/rand"
	"sync"
	"testing"

	"waterwheel/internal/model"
)

func collect(idx Index, kr model.KeyRange, tr model.TimeRange, f *model.Filter) []model.Tuple {
	var out []model.Tuple
	idx.Range(kr, tr, f, func(t *model.Tuple) bool {
		out = append(out, *t)
		return true
	})
	return out
}

func TestTemplateInsertAndRange(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1000}, Leaves: 8})
	for k := 0; k <= 1000; k += 10 {
		tree.Insert(model.Tuple{Key: model.Key(k), Time: model.Timestamp(k * 2)})
	}
	if tree.Len() != 101 {
		t.Fatalf("Len = %d, want 101", tree.Len())
	}
	got := collect(tree, model.KeyRange{Lo: 100, Hi: 200}, model.FullTimeRange(), nil)
	if len(got) != 11 {
		t.Fatalf("key range returned %d tuples, want 11", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key < got[i-1].Key {
			t.Fatal("results not in key order")
		}
	}
	// Time filter narrows within the key range.
	got = collect(tree, model.KeyRange{Lo: 100, Hi: 200}, model.TimeRange{Lo: 250, Hi: 350}, nil)
	for _, tp := range got {
		if tp.Time < 250 || tp.Time > 350 {
			t.Fatalf("tuple outside time range: %v", tp)
		}
	}
	if len(got) != 5 { // keys 130..170 step 10 -> times 260..340
		t.Fatalf("time-filtered count %d, want 5", len(got))
	}
}

func TestTemplatePredicateAndEarlyStop(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 100}, Leaves: 4})
	for k := 0; k < 100; k++ {
		tree.Insert(model.Tuple{Key: model.Key(k), Time: 1})
	}
	even := model.KeyMod(2, 0)
	got := collect(tree, model.FullKeyRange(), model.FullTimeRange(), even)
	if len(got) != 50 {
		t.Fatalf("predicate returned %d, want 50", len(got))
	}
	n := 0
	tree.Range(model.FullKeyRange(), model.FullTimeRange(), nil, func(*model.Tuple) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop visited %d, want 7", n)
	}
}

func TestTemplateDuplicateKeys(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 100}, Leaves: 4, CheckEvery: 16, SkewThreshold: 0.5, MinPerLeaf: 1})
	for i := 0; i < 200; i++ {
		tree.Insert(model.Tuple{Key: 42, Time: model.Timestamp(i)})
	}
	got := collect(tree, model.KeyRange{Lo: 42, Hi: 42}, model.FullTimeRange(), nil)
	if len(got) != 200 {
		t.Fatalf("point query on duplicated key returned %d, want 200", len(got))
	}
	// Force an update with every tuple on one key; query must still find all.
	tree.UpdateTemplate()
	got = collect(tree, model.KeyRange{Lo: 42, Hi: 42}, model.FullTimeRange(), nil)
	if len(got) != 200 {
		t.Fatalf("after template update: %d, want 200", len(got))
	}
}

func TestTemplateNoSplits(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{Keys: model.FullKeyRange(), Leaves: 16})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		tree.Insert(model.Tuple{Key: model.Key(rng.Uint64()), Time: model.Timestamp(i)})
	}
	if s := tree.Stats().Splits.Load(); s != 0 {
		t.Errorf("template tree recorded %d splits, want 0", s)
	}
}

func TestTemplateSkewnessAndUpdate(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{
		Keys: model.KeyRange{Lo: 0, Hi: 1 << 20}, Leaves: 16,
		CheckEvery: 1 << 30, // manual control
	})
	// Pile everything into a tiny key range: one leaf gets it all.
	for i := 0; i < 1600; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i % 100), Time: model.Timestamp(i)})
	}
	if s := tree.Skewness(); s < 10 {
		t.Fatalf("skewness %f too low for fully-piled data (expect ~15)", s)
	}
	tree.UpdateTemplate()
	if s := tree.Skewness(); s > 0.7 {
		t.Errorf("skewness after update = %f, want near 0", s)
	}
	if tree.Stats().TemplateUpdates.Load() != 1 {
		t.Errorf("TemplateUpdates = %d, want 1", tree.Stats().TemplateUpdates.Load())
	}
	// Data still fully queryable.
	got := collect(tree, model.FullKeyRange(), model.FullTimeRange(), nil)
	if len(got) != 1600 {
		t.Fatalf("after update Range found %d, want 1600", len(got))
	}
}

func TestTemplateAutoUpdateTriggers(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{
		Keys: model.KeyRange{Lo: 0, Hi: 1 << 20}, Leaves: 8,
		CheckEvery: 64, SkewThreshold: 0.5, MinPerLeaf: 4,
	})
	for i := 0; i < 5000; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i % 64), Time: model.Timestamp(i)})
	}
	if tree.Stats().TemplateUpdates.Load() == 0 {
		t.Error("skewed insertion stream never triggered a template update")
	}
	if got := tree.Len(); got != 5000 {
		t.Errorf("Len = %d, want 5000", got)
	}
}

func TestTemplateFlushReset(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1000}, Leaves: 4})
	if tree.FlushReset() != nil {
		t.Fatal("flush of empty tree should return nil")
	}
	for i := 0; i < 500; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i * 2), Time: model.Timestamp(1000 + i), Payload: []byte{byte(i)}})
	}
	depthBefore := tree.Depth()
	snap := tree.FlushReset()
	if snap == nil || snap.Count != 500 {
		t.Fatalf("snapshot count = %v, want 500", snap)
	}
	if snap.MinTime != 1000 || snap.MaxTime != 1499 {
		t.Errorf("snapshot time bounds [%d,%d], want [1000,1499]", snap.MinTime, snap.MaxTime)
	}
	if len(snap.Leaves) != 4 || len(snap.Bounds) != 3 {
		t.Errorf("snapshot structure: %d leaves, %d bounds", len(snap.Leaves), len(snap.Bounds))
	}
	total := 0
	var prev model.Key
	first := true
	for i := range snap.Leaves {
		lc := &snap.Leaves[i]
		for _, k := range lc.Keys {
			if !first && k < prev {
				t.Fatal("snapshot not globally key-sorted across leaves")
			}
			prev, first = k, false
			total++
		}
	}
	if total != 500 {
		t.Fatalf("snapshot holds %d entries, want 500", total)
	}
	// Tree is empty but template retained.
	if tree.Len() != 0 {
		t.Errorf("tree not empty after flush: %d", tree.Len())
	}
	if tree.Depth() != depthBefore {
		t.Errorf("template depth changed across flush: %d -> %d", depthBefore, tree.Depth())
	}
	// Tree remains usable after flush.
	tree.Insert(model.Tuple{Key: 10, Time: 5})
	if got := collect(tree, model.FullKeyRange(), model.FullTimeRange(), nil); len(got) != 1 {
		t.Errorf("post-flush insert invisible: %d", len(got))
	}
}

func TestTemplateTimeBounds(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 100}, Leaves: 4})
	if _, _, ok := tree.TimeBounds(); ok {
		t.Fatal("empty tree should report no time bounds")
	}
	tree.Insert(model.Tuple{Key: 1, Time: 500})
	tree.Insert(model.Tuple{Key: 99, Time: 100})
	tree.Insert(model.Tuple{Key: 50, Time: 900})
	lo, hi, ok := tree.TimeBounds()
	if !ok || lo != 100 || hi != 900 {
		t.Errorf("TimeBounds = (%d,%d,%v), want (100,900,true)", lo, hi, ok)
	}
}

func TestTemplateConcurrentInsertAndQuery(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{
		Keys: model.FullKeyRange(), Leaves: 64,
		CheckEvery: 1024, SkewThreshold: 1.0, MinPerLeaf: 4,
	})
	const (
		writers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				tree.Insert(model.Tuple{Key: model.Key(rng.Uint64()), Time: model.Timestamp(i)})
			}
		}(w)
	}
	// Concurrent readers.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tree.Range(model.FullKeyRange(), model.FullTimeRange(), nil, func(*model.Tuple) bool { return true })
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if got := tree.Len(); got != writers*perW {
		t.Errorf("Len = %d, want %d", got, writers*perW)
	}
	got := collect(tree, model.FullKeyRange(), model.FullTimeRange(), nil)
	if len(got) != writers*perW {
		t.Errorf("Range found %d, want %d", len(got), writers*perW)
	}
}

func TestTemplateFromSample(t *testing.T) {
	// Keys clustered at two modes; sampled template should place roughly
	// half the leaves per mode, keeping skew low without any update.
	rng := rand.New(rand.NewSource(11))
	sample := make([]model.Key, 4000)
	gen := func() model.Key {
		if rng.Intn(2) == 0 {
			return model.Key(1000 + rng.Intn(100))
		}
		return model.Key(900000 + rng.Intn(100))
	}
	for i := range sample {
		sample[i] = gen()
	}
	tree := NewTemplateTreeFromSample(TemplateConfig{
		Keys: model.KeyRange{Lo: 0, Hi: 1 << 20}, Leaves: 32, CheckEvery: 1 << 30,
	}, sample)
	for i := 0; i < 32000; i++ {
		tree.Insert(model.Tuple{Key: gen(), Time: model.Timestamp(i)})
	}
	even := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1 << 20}, Leaves: 32, CheckEvery: 1 << 30})
	rng = rand.New(rand.NewSource(11))
	for i := 0; i < 32000; i++ {
		even.Insert(model.Tuple{Key: gen(), Time: model.Timestamp(i)})
	}
	if tree.Skewness() >= even.Skewness() {
		t.Errorf("sampled template skew %.2f not better than even split %.2f", tree.Skewness(), even.Skewness())
	}
}

func TestTemplateSetKeys(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 100}, Leaves: 4})
	tree.SetKeys(model.KeyRange{Lo: 50, Hi: 150})
	if got := tree.Keys(); got != (model.KeyRange{Lo: 50, Hi: 150}) {
		t.Errorf("Keys = %v", got)
	}
	// Tuples outside the nominal range still insert (overlap window after
	// repartition, §III-D).
	tree.Insert(model.Tuple{Key: 10, Time: 1})
	if got := collect(tree, model.FullKeyRange(), model.FullTimeRange(), nil); len(got) != 1 {
		t.Errorf("out-of-nominal-range tuple lost: %d", len(got))
	}
}

func TestTemplateInvalidRanges(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 100}, Leaves: 4})
	tree.Insert(model.Tuple{Key: 5, Time: 5})
	if got := collect(tree, model.KeyRange{Lo: 10, Hi: 5}, model.FullTimeRange(), nil); got != nil {
		t.Error("inverted key range must return nothing")
	}
	if got := collect(tree, model.FullKeyRange(), model.TimeRange{Lo: 10, Hi: 5}, nil); got != nil {
		t.Error("inverted time range must return nothing")
	}
}
