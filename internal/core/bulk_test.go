package core

import (
	"testing"

	"waterwheel/internal/model"
)

func TestBulkVisibilityOnlyAfterBuild(t *testing.T) {
	tree := NewBulkTree(8, 8)
	for i := 0; i < 100; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)})
	}
	if got := collect(tree, model.FullKeyRange(), model.FullTimeRange(), nil); len(got) != 0 {
		t.Fatalf("tuples visible before Build: %d", len(got))
	}
	if tree.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", tree.Pending())
	}
	if n := tree.Build(); n != 100 {
		t.Fatalf("Build = %d, want 100", n)
	}
	if got := collect(tree, model.FullKeyRange(), model.FullTimeRange(), nil); len(got) != 100 {
		t.Fatalf("after Build visible %d, want 100", len(got))
	}
	if tree.Pending() != 0 {
		t.Errorf("Pending after build = %d", tree.Pending())
	}
}

func TestBulkIncrementalRebuild(t *testing.T) {
	tree := NewBulkTree(8, 8)
	for i := 0; i < 50; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i * 2), Time: 0})
	}
	tree.Build()
	for i := 0; i < 50; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i*2 + 1), Time: 0})
	}
	if n := tree.Build(); n != 100 {
		t.Fatalf("second Build = %d, want 100", n)
	}
	got := collect(tree, model.FullKeyRange(), model.FullTimeRange(), nil)
	if len(got) != 100 {
		t.Fatalf("visible %d, want 100", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key < got[i-1].Key {
			t.Fatal("merged build out of order")
		}
	}
}

func TestBulkRangeAndFilters(t *testing.T) {
	tree := NewBulkTree(4, 4)
	for i := 0; i < 300; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i * 5)})
	}
	tree.Build()
	got := collect(tree, model.KeyRange{Lo: 100, Hi: 150}, model.FullTimeRange(), nil)
	if len(got) != 51 {
		t.Fatalf("key range %d, want 51", len(got))
	}
	got = collect(tree, model.FullKeyRange(), model.TimeRange{Lo: 500, Hi: 600}, nil)
	if len(got) != 21 {
		t.Fatalf("time range %d, want 21", len(got))
	}
	got = collect(tree, model.FullKeyRange(), model.FullTimeRange(), model.KeyMod(3, 1))
	if len(got) != 100 {
		t.Fatalf("predicate %d, want 100", len(got))
	}
}

func TestBulkDuplicateKeysAcrossLeafBoundary(t *testing.T) {
	tree := NewBulkTree(4, 4)
	// 10 copies each of 20 keys — runs far exceed leaf capacity.
	for k := 0; k < 20; k++ {
		for c := 0; c < 10; c++ {
			tree.Insert(model.Tuple{Key: model.Key(k), Time: model.Timestamp(c)})
		}
	}
	tree.Build()
	for k := model.Key(0); k < 20; k++ {
		got := collect(tree, model.KeyRange{Lo: k, Hi: k}, model.FullTimeRange(), nil)
		if len(got) != 10 {
			t.Fatalf("key %d: got %d, want 10", k, len(got))
		}
	}
}

func TestBulkEmptyBuild(t *testing.T) {
	tree := NewBulkTree(4, 4)
	if n := tree.Build(); n != 0 {
		t.Fatalf("empty Build = %d", n)
	}
	if got := collect(tree, model.FullKeyRange(), model.FullTimeRange(), nil); len(got) != 0 {
		t.Fatal("empty tree returned tuples")
	}
}

func TestBulkStatsRecorded(t *testing.T) {
	tree := NewBulkTree(8, 8)
	for i := 0; i < 10000; i++ {
		tree.Insert(model.Tuple{Key: model.Key(splitmixKey(uint64(i))), Time: 0})
	}
	tree.Build()
	s := tree.Stats().Snapshot()
	if s.SortNanos == 0 || s.BuildNanos == 0 {
		t.Errorf("expected nonzero sort/build time, got sort=%d build=%d", s.SortNanos, s.BuildNanos)
	}
	if s.Inserts != 10000 {
		t.Errorf("Inserts = %d", s.Inserts)
	}
}

func TestBulkEarlyStop(t *testing.T) {
	tree := NewBulkTree(4, 4)
	for i := 0; i < 64; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i), Time: 0})
	}
	tree.Build()
	n := 0
	tree.Range(model.FullKeyRange(), model.FullTimeRange(), nil, func(*model.Tuple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("visited %d, want 3", n)
	}
}
