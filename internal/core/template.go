package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"waterwheel/internal/model"
)

// TemplateConfig parametrizes a template B+ tree.
type TemplateConfig struct {
	// Keys is the key interval this tree is responsible for.
	Keys model.KeyRange
	// Leaves is the number of leaf nodes l. The template structure is fully
	// determined by the leaf-boundary partition P (paper §III-C2).
	Leaves int
	// Fanout is the inner-node fanout.
	Fanout int
	// SkewThreshold triggers a template update when the skewness factor
	// S(P,D) exceeds it. The paper cites 0.2 as an example; with small
	// leaves the statistical noise floor of max-leaf occupancy is higher,
	// so the default here is 1.0 (largest leaf at 2x the mean).
	SkewThreshold float64
	// CheckEvery is the skew-check cadence in inserts.
	CheckEvery int
	// MinPerLeaf suppresses skew checks until the tree holds at least
	// Leaves*MinPerLeaf tuples, where occupancy statistics are meaningful.
	MinPerLeaf int
	// AggField is the payload byte offset of the big-endian uint64 field
	// the chunk builder pre-aggregates. Flush snapshots carry it so the
	// flusher builds chunks with the field the tree was configured for.
	AggField uint32
}

func (c *TemplateConfig) fill() {
	if c.Leaves <= 0 {
		c.Leaves = 256
	}
	if c.Fanout < 2 {
		c.Fanout = DefaultFanout
	}
	if c.SkewThreshold <= 0 {
		c.SkewThreshold = 1.0
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 4096
	}
	if c.MinPerLeaf <= 0 {
		c.MinPerLeaf = 8
	}
	if !c.Keys.IsValid() {
		c.Keys = model.FullKeyRange()
	}
}

// tleaf is a leaf node. Entries are kept sorted by key, with equal keys in
// arrival order: inserting at the *end* of an equal-key run makes repeated
// hot keys append-cheap instead of memmove-quadratic, which matters for
// duplicate-heavy streams (sensor ids, discretized positions). The
// template allows a leaf to overflow its nominal capacity — imbalance is
// handled by template update, never by splitting.
type tleaf struct {
	mu      sync.Mutex
	entries []model.Tuple
	// n mirrors len(entries) for lock-free skew checks.
	n atomic.Int32
	// minT/maxT bound the timestamps in the leaf (valid when n > 0).
	minT, maxT model.Timestamp
}

func (lf *tleaf) insertLocked(t model.Tuple) {
	i := sort.Search(len(lf.entries), func(i int) bool {
		return lf.entries[i].Key > t.Key
	})
	lf.entries = append(lf.entries, model.Tuple{})
	copy(lf.entries[i+1:], lf.entries[i:])
	lf.entries[i] = t
	if len(lf.entries) == 1 {
		lf.minT, lf.maxT = t.Time, t.Time
	} else {
		if t.Time < lf.minT {
			lf.minT = t.Time
		}
		if t.Time > lf.maxT {
			lf.maxT = t.Time
		}
	}
}

// tinner is an inner (template) node. Child i is selected for key k when
// k < keys[i] and no earlier separator matched; the last child catches the
// rest. Exactly one of children/leaves is non-nil: children for upper
// levels, leaves for the level directly above the leaf layer. Inner nodes
// are immutable between template updates, so descent needs no latches.
type tinner struct {
	keys     []model.Key
	children []*tinner
	leaves   []*tleaf
}

func (n *tinner) childIndex(k model.Key) int {
	return sort.Search(len(n.keys), func(i int) bool { return k < n.keys[i] })
}

// TemplateTree is the template-based B+ tree (paper §III-B).
//
// Concurrency protocol: inserts and reads take the gate in shared mode and
// latch only the target leaves; template updates and flushes take the gate
// exclusively. The inner template is read-only between updates, which is
// what removes the split/latch bottleneck of a traditional B+ tree.
type TemplateTree struct {
	cfg TemplateConfig

	gate sync.RWMutex
	// root of the immutable inner template (guarded by gate for replace).
	root *tinner
	// leaves in key order; leaf i covers [bound[i-1], bound[i]).
	leaves []*tleaf
	// bounds are the l-1 separator keys of the current partition P.
	bounds []model.Key

	count    atomic.Int64
	bytes    atomic.Int64
	sinceChk atomic.Int64
	checkMu  sync.Mutex
	// floorSkew stores the skewness remaining right after the last template
	// update (as float64 bits). Duplicate-heavy keys leave an irreducible
	// residue — the hottest key's run cannot be divided across leaves — so
	// re-triggering below ~2x the residue would rebuild in vain.
	floorSkew atomic.Uint64
	stats     *Stats
	ownsStats bool
}

var _ Index = (*TemplateTree)(nil)

// NewTemplateTree creates a template tree whose initial partition divides
// cfg.Keys evenly across cfg.Leaves leaves.
func NewTemplateTree(cfg TemplateConfig) *TemplateTree {
	cfg.fill()
	t := &TemplateTree{cfg: cfg, stats: &Stats{}, ownsStats: true}
	t.installPartition(evenBoundaries(cfg.Keys, cfg.Leaves))
	return t
}

// NewTemplateTreeFromSample creates a template tree whose initial partition
// is derived from a sample of the expected key distribution, dividing the
// sample evenly across leaves.
func NewTemplateTreeFromSample(cfg TemplateConfig, sample []model.Key) *TemplateTree {
	cfg.fill()
	t := &TemplateTree{cfg: cfg, stats: &Stats{}, ownsStats: true}
	if len(sample) == 0 {
		t.installPartition(evenBoundaries(cfg.Keys, cfg.Leaves))
		return t
	}
	s := append([]model.Key(nil), sample...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	t.installPartition(boundariesFromSorted(s, cfg.Leaves))
	return t
}

// SetStats redirects instrumentation to a shared Stats collector.
func (t *TemplateTree) SetStats(s *Stats) {
	if s != nil {
		t.stats = s
		t.ownsStats = false
	}
}

// Stats returns the tree's instrumentation counters.
func (t *TemplateTree) Stats() *Stats { return t.stats }

// evenBoundaries returns l-1 separators splitting kr into equal-width
// leaves.
func evenBoundaries(kr model.KeyRange, l int) []model.Key {
	if l <= 1 {
		return nil
	}
	width := uint64(kr.Hi - kr.Lo)
	step := width / uint64(l)
	if step == 0 {
		step = 1
	}
	bounds := make([]model.Key, 0, l-1)
	for i := 1; i < l; i++ {
		b := uint64(kr.Lo) + uint64(i)*step
		if b > uint64(kr.Hi) {
			b = uint64(kr.Hi)
		}
		bounds = append(bounds, model.Key(b))
	}
	return bounds
}

// boundariesFromSorted returns l-1 separators that evenly divide the sorted
// key list into l runs (Equation 3). Separators never split a run of equal
// keys: the whole run lands in the right-hand leaf.
func boundariesFromSorted(keys []model.Key, l int) []model.Key {
	if l <= 1 || len(keys) == 0 {
		return nil
	}
	bounds := make([]model.Key, 0, l-1)
	n := len(keys)
	for i := 1; i < l; i++ {
		idx := i * n / l
		if idx >= n {
			idx = n - 1
		}
		bounds = append(bounds, keys[idx])
	}
	return bounds
}

// installPartition replaces the leaf set and rebuilds the inner template
// for the given separators. Caller must hold the gate exclusively (or be
// the constructor).
func (t *TemplateTree) installPartition(bounds []model.Key) {
	l := len(bounds) + 1
	leaves := make([]*tleaf, l)
	for i := range leaves {
		leaves[i] = &tleaf{}
	}
	t.bounds = bounds
	t.leaves = leaves
	t.root = buildTemplate(bounds, leaves, t.cfg.Fanout)
}

// buildTemplate constructs the inner-node tree bottom-up from the leaf
// separators, grouping fanout children per node.
func buildTemplate(bounds []model.Key, leaves []*tleaf, fanout int) *tinner {
	// Bottom inner level: group leaves.
	var level []*tinner
	var seps []model.Key // separators between adjacent nodes of `level`
	for i := 0; i < len(leaves); i += fanout {
		j := i + fanout
		if j > len(leaves) {
			j = len(leaves)
		}
		n := &tinner{leaves: leaves[i:j]}
		if j-1 > i {
			n.keys = bounds[i : j-1]
		}
		level = append(level, n)
		if j < len(leaves) {
			seps = append(seps, bounds[j-1])
		}
	}
	// Upper levels: group inner nodes.
	for len(level) > 1 {
		var next []*tinner
		var nextSeps []model.Key
		for i := 0; i < len(level); i += fanout {
			j := i + fanout
			if j > len(level) {
				j = len(level)
			}
			n := &tinner{children: level[i:j]}
			if j-1 > i {
				n.keys = seps[i : j-1]
			}
			next = append(next, n)
			if j < len(level) {
				nextSeps = append(nextSeps, seps[j-1])
			}
		}
		level, seps = next, nextSeps
	}
	return level[0]
}

// route descends the immutable template from root to the target leaf.
func (t *TemplateTree) route(k model.Key) *tleaf {
	n := t.root
	for n.leaves == nil {
		n = n.children[n.childIndex(k)]
	}
	return n.leaves[n.childIndex(k)]
}

// Insert adds one tuple. Safe for concurrent use; only the target leaf is
// latched.
func (t *TemplateTree) Insert(tp model.Tuple) {
	t.gate.RLock()
	lf := t.route(tp.Key)
	lf.mu.Lock()
	lf.insertLocked(tp)
	lf.n.Store(int32(len(lf.entries)))
	lf.mu.Unlock()
	t.count.Add(1)
	t.bytes.Add(int64(tp.Size()))
	c := t.sinceChk.Add(1)
	t.gate.RUnlock()
	t.stats.Inserts.Add(1)
	if c >= int64(t.cfg.CheckEvery) {
		t.maybeUpdate()
	}
}

// maybeUpdate runs the skewness check and, when it fires, the template
// update. A try-lock ensures a single checker.
func (t *TemplateTree) maybeUpdate() {
	if !t.checkMu.TryLock() {
		return
	}
	defer t.checkMu.Unlock()
	t.sinceChk.Store(0)
	if t.count.Load() < int64(t.cfg.Leaves*t.cfg.MinPerLeaf) {
		return
	}
	threshold := t.cfg.SkewThreshold
	if floor := math.Float64frombits(t.floorSkew.Load()); 2*floor > threshold {
		threshold = 2 * floor
	}
	if t.Skewness() > threshold {
		t.UpdateTemplate()
	}
}

// Skewness computes S(P,D) = max_i (|Ki(D)| - n)/n with n = |D|/l
// (Equation 1). Returns 0 when the tree is empty.
func (t *TemplateTree) Skewness() float64 {
	t.gate.RLock()
	defer t.gate.RUnlock()
	return t.skewnessLocked()
}

func (t *TemplateTree) skewnessLocked() float64 {
	total := int64(0)
	maxLeaf := int64(0)
	for _, lf := range t.leaves {
		c := int64(lf.n.Load())
		total += c
		if c > maxLeaf {
			maxLeaf = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(t.leaves))
	return (float64(maxLeaf) - mean) / mean
}

// UpdateTemplate recomputes the leaf partition so tuples divide evenly
// across leaves (Equation 3), redistributes the entries, and rebuilds the
// inner template bottom-up (paper §III-C2). Inserts and reads are paused
// for the duration; the paper reports sub-10ms latencies, which this
// implementation matches at comparable sizes.
func (t *TemplateTree) UpdateTemplate() {
	start := time.Now()
	t.gate.Lock()
	// Concatenating per-leaf entries yields a globally key-sorted list,
	// because leaves own disjoint, ordered key intervals.
	total := 0
	for _, lf := range t.leaves {
		total += len(lf.entries)
	}
	all := make([]model.Tuple, 0, total)
	for _, lf := range t.leaves {
		all = append(all, lf.entries...)
	}
	keys := make([]model.Key, len(all))
	for i := range all {
		keys[i] = all[i].Key
	}
	bounds := boundariesFromSorted(keys, t.cfg.Leaves)
	if bounds == nil {
		bounds = evenBoundaries(t.cfg.Keys, t.cfg.Leaves)
	}
	t.installPartition(bounds)
	t.redistributeLocked(all)
	t.floorSkew.Store(math.Float64bits(t.skewnessLocked()))
	t.gate.Unlock()
	t.stats.TemplateUpdates.Add(1)
	t.stats.TemplateUpdateNanos.Add(time.Since(start).Nanoseconds())
}

// redistributeLocked assigns the key-sorted entries to the freshly built
// leaves by the current separators. Caller holds the gate exclusively.
func (t *TemplateTree) redistributeLocked(sorted []model.Tuple) {
	pos := 0
	for i, lf := range t.leaves {
		end := len(sorted)
		if i < len(t.bounds) {
			b := t.bounds[i]
			end = pos + sort.Search(len(sorted)-pos, func(j int) bool {
				return sorted[pos+j].Key >= b
			})
		}
		if end > pos {
			lf.entries = append(lf.entries[:0], sorted[pos:end]...)
			lf.minT, lf.maxT = lf.entries[0].Time, lf.entries[0].Time
			for _, e := range lf.entries {
				if e.Time < lf.minT {
					lf.minT = e.Time
				}
				if e.Time > lf.maxT {
					lf.maxT = e.Time
				}
			}
		}
		lf.n.Store(int32(len(lf.entries)))
		pos = end
	}
}

// Range visits matching tuples in key order. Leaves whose time bounds miss
// tr are skipped without latching their entries.
func (t *TemplateTree) Range(kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool) {
	if !kr.IsValid() || !tr.IsValid() {
		return
	}
	t.gate.RLock()
	defer t.gate.RUnlock()
	lo := sort.Search(len(t.bounds), func(i int) bool { return kr.Lo < t.bounds[i] })
	for i := lo; i < len(t.leaves); i++ {
		if i > 0 && t.bounds[i-1] > kr.Hi {
			break
		}
		lf := t.leaves[i]
		if lf.n.Load() == 0 {
			continue
		}
		lf.mu.Lock()
		if lf.maxT < tr.Lo || lf.minT > tr.Hi {
			lf.mu.Unlock()
			continue
		}
		start := sort.Search(len(lf.entries), func(j int) bool {
			return lf.entries[j].Key >= kr.Lo
		})
		stop := false
		for j := start; j < len(lf.entries); j++ {
			e := &lf.entries[j]
			if e.Key > kr.Hi {
				break
			}
			if e.Time < tr.Lo || e.Time > tr.Hi || !filter.Matches(e) {
				continue
			}
			if !fn(e) {
				stop = true
				break
			}
		}
		lf.mu.Unlock()
		if stop {
			return
		}
	}
}

// Len returns the number of tuples in the tree.
func (t *TemplateTree) Len() int { return int(t.count.Load()) }

// Bytes returns the approximate payload footprint of the tree, used by
// flush policies.
func (t *TemplateTree) Bytes() int64 { return t.bytes.Load() }

// LeafCount returns the number of leaves l.
func (t *TemplateTree) LeafCount() int { return len(t.leaves) }

// TimeBounds returns the min/max timestamp over all tuples, and ok=false
// when the tree is empty.
func (t *TemplateTree) TimeBounds() (lo, hi model.Timestamp, ok bool) {
	t.gate.RLock()
	defer t.gate.RUnlock()
	first := true
	for _, lf := range t.leaves {
		lf.mu.Lock()
		if len(lf.entries) > 0 {
			if first {
				lo, hi, first = lf.minT, lf.maxT, false
			} else {
				if lf.minT < lo {
					lo = lf.minT
				}
				if lf.maxT > hi {
					hi = lf.maxT
				}
			}
		}
		lf.mu.Unlock()
	}
	return lo, hi, !first
}

// FlushSnapshot is the content handed to the chunk builder by FlushReset:
// the per-leaf sorted entries, the leaf partition that produced them, and
// summary bounds.
type FlushSnapshot struct {
	// Bounds are the l-1 separators of the partition at flush time.
	Bounds []model.Key
	// Leaves holds each leaf's entries, sorted by key (equal keys in
	// arrival order).
	Leaves [][]model.Tuple
	// Count is the total number of tuples.
	Count int
	// Bytes is the approximate payload footprint.
	Bytes int64
	// MinTime/MaxTime bound the snapshot's timestamps (valid when Count>0).
	MinTime, MaxTime model.Timestamp
	// Keys is the key interval the tree was responsible for.
	Keys model.KeyRange
	// AggField is the payload offset of the field to pre-aggregate when
	// the snapshot is built into a chunk (from TemplateConfig.AggField).
	AggField uint32
}

// LeafKeyRange returns the exact key bounds of leaf i (ok=false when the
// leaf is empty) — the per-leaf bounds the v2 chunk header records.
func (s *FlushSnapshot) LeafKeyRange(i int) (model.KeyRange, bool) {
	entries := s.Leaves[i]
	if len(entries) == 0 {
		return model.KeyRange{}, false
	}
	return model.KeyRange{Lo: entries[0].Key, Hi: entries[len(entries)-1].Key}, true
}

// Range visits the snapshot's matching tuples in key order, mirroring
// TemplateTree.Range. Snapshots are immutable once FlushReset returns, so
// Range takes no locks and is safe for any number of concurrent readers —
// this is what keeps tuples queryable while their chunk is still being
// built and written by a background flusher.
func (s *FlushSnapshot) Range(kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool) {
	if s == nil || s.Count == 0 || !kr.IsValid() || !tr.IsValid() {
		return
	}
	if s.MaxTime < tr.Lo || s.MinTime > tr.Hi {
		return
	}
	lo := sort.Search(len(s.Bounds), func(i int) bool { return kr.Lo < s.Bounds[i] })
	for i := lo; i < len(s.Leaves); i++ {
		if i > 0 && s.Bounds[i-1] > kr.Hi {
			break
		}
		leaf := s.Leaves[i]
		if len(leaf) == 0 {
			continue
		}
		start := sort.Search(len(leaf), func(j int) bool { return leaf[j].Key >= kr.Lo })
		for j := start; j < len(leaf); j++ {
			e := &leaf[j]
			if e.Key > kr.Hi {
				break
			}
			if e.Time < tr.Lo || e.Time > tr.Hi || !filter.Matches(e) {
				continue
			}
			if !fn(e) {
				return
			}
		}
	}
}

// FlushReset atomically extracts the tree contents and resets the leaves,
// retaining the inner template for the next chunk (paper §III-B: "we only
// eliminate the leaf nodes of the tree"). Returns nil when empty.
func (t *TemplateTree) FlushReset() *FlushSnapshot {
	t.gate.Lock()
	defer t.gate.Unlock()
	if t.count.Load() == 0 {
		return nil
	}
	snap := &FlushSnapshot{
		Bounds:   append([]model.Key(nil), t.bounds...),
		Leaves:   make([][]model.Tuple, len(t.leaves)),
		Count:    int(t.count.Load()),
		Bytes:    t.bytes.Load(),
		Keys:     t.cfg.Keys,
		AggField: t.cfg.AggField,
	}
	first := true
	for i, lf := range t.leaves {
		snap.Leaves[i] = lf.entries
		if len(lf.entries) > 0 {
			if first {
				snap.MinTime, snap.MaxTime, first = lf.minT, lf.maxT, false
			} else {
				if lf.minT < snap.MinTime {
					snap.MinTime = lf.minT
				}
				if lf.maxT > snap.MaxTime {
					snap.MaxTime = lf.maxT
				}
			}
		}
		lf.entries = nil
		lf.n.Store(0)
	}
	t.count.Store(0)
	t.bytes.Store(0)
	t.sinceChk.Store(0)
	return snap
}

// SetKeys changes the tree's nominal key interval (after an adaptive key
// repartition, §III-D). Existing tuples are unaffected; the next template
// update and flush use the new interval.
func (t *TemplateTree) SetKeys(kr model.KeyRange) {
	t.gate.Lock()
	t.cfg.Keys = kr
	t.gate.Unlock()
}

// Keys returns the tree's nominal key interval.
func (t *TemplateTree) Keys() model.KeyRange {
	t.gate.RLock()
	defer t.gate.RUnlock()
	return t.cfg.Keys
}

// Depth returns the height of the inner template (levels of inner nodes).
func (t *TemplateTree) Depth() int {
	t.gate.RLock()
	defer t.gate.RUnlock()
	d := 1
	for n := t.root; n.leaves == nil; n = n.children[0] {
		d++
	}
	return d
}

// String implements fmt.Stringer.
func (t *TemplateTree) String() string {
	return fmt.Sprintf("templatetree(leaves=%d, count=%d, keys=%s)", len(t.leaves), t.Len(), t.cfg.Keys)
}
