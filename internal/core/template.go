package core

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"waterwheel/internal/model"
)

// TemplateConfig parametrizes a template B+ tree.
type TemplateConfig struct {
	// Keys is the key interval this tree is responsible for.
	Keys model.KeyRange
	// Leaves is the number of leaf nodes l. The template structure is fully
	// determined by the leaf-boundary partition P (paper §III-C2).
	Leaves int
	// Fanout is the inner-node fanout.
	Fanout int
	// SkewThreshold triggers a template update when the skewness factor
	// S(P,D) exceeds it. The paper cites 0.2 as an example; with small
	// leaves the statistical noise floor of max-leaf occupancy is higher,
	// so the default here is 1.0 (largest leaf at 2x the mean).
	SkewThreshold float64
	// CheckEvery is the skew-check cadence in inserts.
	CheckEvery int
	// MinPerLeaf suppresses skew checks until the tree holds at least
	// Leaves*MinPerLeaf tuples, where occupancy statistics are meaningful.
	MinPerLeaf int
	// AggField is the payload byte offset of the big-endian uint64 field
	// the chunk builder pre-aggregates. Flush snapshots carry it so the
	// flusher builds chunks with the field the tree was configured for.
	AggField uint32
}

func (c *TemplateConfig) fill() {
	if c.Leaves <= 0 {
		c.Leaves = 256
	}
	if c.Fanout < 2 {
		c.Fanout = DefaultFanout
	}
	if c.SkewThreshold <= 0 {
		c.SkewThreshold = 1.0
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 4096
	}
	if c.MinPerLeaf <= 0 {
		c.MinPerLeaf = 8
	}
	if !c.Keys.IsValid() {
		c.Keys = model.FullKeyRange()
	}
}

// tleaf is a leaf node, stored structure-of-arrays: parallel key,
// timestamp and payload-reference columns plus an append-only payload
// arena — four allocations per leaf, no per-tuple boxing. The columns are
// kept sorted by key, with equal keys in arrival order: inserting at the
// *end* of an equal-key run makes repeated hot keys append-cheap instead
// of memmove-quadratic, which matters for duplicate-heavy streams (sensor
// ids, discretized positions). Searches and merges stride a dense
// 8-byte key column instead of 40-byte tuple structs. The template allows
// a leaf to overflow its nominal capacity — imbalance is handled by
// template update, never by splitting.
type tleaf struct {
	mu sync.Mutex
	// The live window is [head, head+cnt) of each column buffer. The
	// buffers keep slack on BOTH ends so a batch merge can shift whichever
	// side of the insertion region is cheaper — on uniform keys that
	// halves the bytes moved per merge versus always shifting the suffix
	// right.
	kbuf []model.Key
	tbuf []model.Timestamp
	rbuf []PayloadRef
	head int
	cnt  int
	// arena holds every payload back to back, append-only: inserts copy
	// payload bytes in (the tree never retains caller buffers) and merges
	// move only the reference column, so written arena bytes are
	// immutable until FlushReset hands the whole arena to a snapshot.
	arena []byte
	// n mirrors cnt for lock-free skew checks.
	n atomic.Int32
	// minT/maxT bound the timestamps in the leaf (valid when n > 0).
	minT, maxT model.Timestamp
}

// keyWin returns the live key window kbuf[head:head+cnt].
func (lf *tleaf) keyWin() []model.Key { return lf.kbuf[lf.head : lf.head+lf.cnt] }

// appendPayload copies p into the leaf arena and returns its reference.
func (lf *tleaf) appendPayload(p []byte) PayloadRef {
	arena, r := arenaAppend(lf.arena, p)
	lf.arena = arena
	return r
}

// growLocked reallocates the three column buffers with room for at least
// extra more tuples, recentering the live window so both ends regain
// slack. The arena is untouched — references stay valid across grows.
func (lf *tleaf) growLocked(extra int) {
	n := lf.cnt
	newCap := 2*(n+extra) + 8
	head := (newCap - n - extra) / 2
	kb := make([]model.Key, newCap)
	tb := make([]model.Timestamp, newCap)
	rb := make([]PayloadRef, newCap)
	copy(kb[head:head+n], lf.kbuf[lf.head:lf.head+n])
	copy(tb[head:head+n], lf.tbuf[lf.head:lf.head+n])
	copy(rb[head:head+n], lf.rbuf[lf.head:lf.head+n])
	lf.kbuf, lf.tbuf, lf.rbuf, lf.head = kb, tb, rb, head
}

// insertOneLocked places a single tuple: one closure-free upper-bound
// search over the key column, then a one-slot shift of whichever side of
// the insertion point is shorter — three column copies per shift. Both
// Insert and the batch path's runs-of-one land here, so the two paths
// cannot diverge on equal-key placement.
func (lf *tleaf) insertOneLocked(k model.Key, ts model.Timestamp, p []byte) {
	r := lf.appendPayload(p)
	n := lf.cnt
	if n == 0 {
		if len(lf.kbuf) == 0 {
			lf.growLocked(1)
		}
		lf.head = len(lf.kbuf) / 2
		lf.cnt = 1
		lf.kbuf[lf.head], lf.tbuf[lf.head], lf.rbuf[lf.head] = k, ts, r
		lf.minT, lf.maxT = ts, ts
		return
	}
	if ts < lf.minT {
		lf.minT = ts
	}
	if ts > lf.maxT {
		lf.maxT = ts
	}
	pos := upperBoundKeys(lf.keyWin(), k)
	if 2*pos < n && lf.head > 0 {
		h := lf.head
		copy(lf.kbuf[h-1:], lf.kbuf[h:h+pos])
		copy(lf.tbuf[h-1:], lf.tbuf[h:h+pos])
		copy(lf.rbuf[h-1:], lf.rbuf[h:h+pos])
		lf.head--
		lf.cnt = n + 1
		i := lf.head + pos
		lf.kbuf[i], lf.tbuf[i], lf.rbuf[i] = k, ts, r
		return
	}
	if lf.head+n == len(lf.kbuf) {
		lf.growLocked(1)
	}
	i := lf.head + pos
	end := lf.head + n
	copy(lf.kbuf[i+1:end+1], lf.kbuf[i:end])
	copy(lf.tbuf[i+1:end+1], lf.tbuf[i:end])
	copy(lf.rbuf[i+1:end+1], lf.rbuf[i:end])
	lf.cnt = n + 1
	lf.kbuf[i], lf.tbuf[i], lf.rbuf[i] = k, ts, r
}

// mergeLocked merges a key-sorted run (equal keys in arrival order) into
// the leaf. New tuples land *after* existing equal keys — the same
// placement insertOneLocked's strict `>` search produces — and the run's
// internal order is preserved, so a merged batch is indistinguishable from
// inserting its tuples one at a time. refs is caller scratch with room for
// len(run) references; payload bytes are copied into the arena up front
// (in run order), then the merge moves only column words.
//
// Existing entries move in block memmoves — one per column per equal-key
// group of the run — and the merge runs toward whichever end of the
// buffers is closer to the insertion region: a run landing in the lower
// half shifts the prefix left into front slack instead of shifting the
// (larger) suffix right. A run of m tuples costs O(m + moved) bulk copies
// instead of m searches and m element shifts.
func (lf *tleaf) mergeLocked(run []model.Tuple, refs []PayloadRef) {
	m := len(run)
	if m == 0 {
		return
	}
	if lf.cnt == 0 {
		lf.minT, lf.maxT = run[0].Time, run[0].Time
	}
	for i := range run {
		if run[i].Time < lf.minT {
			lf.minT = run[i].Time
		}
		if run[i].Time > lf.maxT {
			lf.maxT = run[i].Time
		}
		refs[i] = lf.appendPayload(run[i].Payload)
	}
	n := lf.cnt
	if n == 0 {
		if len(lf.kbuf) < m {
			lf.growLocked(m)
		}
		lf.head = (len(lf.kbuf) - m) / 2
		lf.cnt = m
		for i := range run {
			lf.kbuf[lf.head+i] = run[i].Key
			lf.tbuf[lf.head+i] = run[i].Time
		}
		copy(lf.rbuf[lf.head:lf.head+m], refs[:m])
		return
	}
	// Pick the merge direction by the run's median insertion point, then
	// fall back to whichever side actually has room (growing recenters, so
	// after a grow the back always has room).
	pos := upperBoundKeys(lf.keyWin(), run[m/2].Key)
	forward := 2*pos < n
	if forward && lf.head < m {
		if len(lf.kbuf)-lf.head-n >= m {
			forward = false
		} else {
			lf.growLocked(m)
			forward = lf.head >= m
		}
	} else if !forward && len(lf.kbuf)-lf.head-n < m {
		if lf.head >= m {
			forward = true
		} else {
			lf.growLocked(m)
			forward = false
		}
	}
	if forward {
		lf.mergeForwardLocked(run, refs)
	} else {
		lf.mergeBackwardLocked(run, refs)
	}
}

// upperBoundKeys returns the first index in the sorted key column whose
// key is strictly greater than k — the slot where new arrivals of key k
// land, after all existing equal keys.
func upperBoundKeys(keys []model.Key, k model.Key) int {
	// Shrink-by-half form: the conditional advance compiles to a
	// predicated move instead of a hard-to-predict branch, which matters
	// at one search per inserted tuple over random keys.
	base, n := 0, len(keys)
	for n > 1 {
		half := n >> 1
		if keys[base+half-1] <= k {
			base += half
		}
		n -= half
	}
	if n == 1 && keys[base] <= k {
		base++
	}
	return base
}

// mergeBackwardLocked extends the window rightward and merges right to
// left, moving the existing entries that sort above each equal-key group
// of the run. Caller guarantees m free slots after the window.
func (lf *tleaf) mergeBackwardLocked(run []model.Tuple, refs []PayloadRef) {
	n, m := lf.cnt, len(run)
	base := lf.head
	kb, tb, rb := lf.kbuf, lf.tbuf, lf.rbuf
	lf.cnt = n + m
	if kb[base+n-1] <= run[0].Key {
		// The whole run sorts after the existing tail (equal existing keys
		// stay below the new arrivals).
		for x := 0; x < m; x++ {
			kb[base+n+x] = run[x].Key
			tb[base+n+x] = run[x].Time
		}
		copy(rb[base+n:base+n+m], refs[:m])
		return
	}
	dst := n + m // exclusive write cursor (window-relative), right to left
	src := n     // exclusive end of not-yet-merged existing entries
	for j := m; j > 0; {
		k := run[j-1].Key
		i := j - 1
		for i > 0 && run[i-1].Key == k {
			i--
		}
		lo := upperBoundKeys(kb[base:base+src], k)
		if blk := src - lo; blk > 0 {
			copy(kb[base+dst-blk:base+dst], kb[base+lo:base+src])
			copy(tb[base+dst-blk:base+dst], tb[base+lo:base+src])
			copy(rb[base+dst-blk:base+dst], rb[base+lo:base+src])
			dst -= blk
			src = lo
		}
		g := j - i
		for x := 0; x < g; x++ {
			kb[base+dst-g+x] = run[i+x].Key
			tb[base+dst-g+x] = run[i+x].Time
		}
		copy(rb[base+dst-g:base+dst], refs[i:j])
		dst -= g
		j = i
	}
}

// mergeForwardLocked extends the window leftward into front slack and
// merges left to right: existing entries that sort at or below each group
// (including existing equal keys, which must stay before new arrivals)
// shift left by the room the pending run elements no longer need. Caller
// guarantees m free slots before the window.
func (lf *tleaf) mergeForwardLocked(run []model.Tuple, refs []PayloadRef) {
	n, m := lf.cnt, len(run)
	base := lf.head
	kb, tb, rb := lf.kbuf, lf.tbuf, lf.rbuf
	lf.head -= m
	lf.cnt = n + m
	d := lf.head // write cursor in the buffers, filled left to right
	src := 0     // start of not-yet-merged existing entries
	for i := 0; i < m; {
		k := run[i].Key
		j := i + 1
		for j < m && run[j].Key == k {
			j++
		}
		// Existing entries with key <= k (equal keys included) precede the
		// group; binary search the strict upper bound among the unmerged.
		lo, hi := src, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if kb[base+mid] > k {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if blk := lo - src; blk > 0 {
			copy(kb[d:d+blk], kb[base+src:base+lo])
			copy(tb[d:d+blk], tb[base+src:base+lo])
			copy(rb[d:d+blk], rb[base+src:base+lo])
			d += blk
			src = lo
		}
		g := j - i
		for x := 0; x < g; x++ {
			kb[d+x] = run[i+x].Key
			tb[d+x] = run[i+x].Time
		}
		copy(rb[d:d+g], refs[i:j])
		d += g
		i = j
	}
}

// tinner is an inner (template) node. Child i is selected for key k when
// k < keys[i] and no earlier separator matched; the last child catches the
// rest. Exactly one of children/leaves is non-nil: children for upper
// levels, leaves for the level directly above the leaf layer. Inner nodes
// are immutable between template updates, so descent needs no latches.
type tinner struct {
	keys     []model.Key
	children []*tinner
	leaves   []*tleaf
}

func (n *tinner) childIndex(k model.Key) int {
	return sort.Search(len(n.keys), func(i int) bool { return k < n.keys[i] })
}

// TemplateTree is the template-based B+ tree (paper §III-B).
//
// Concurrency protocol: inserts and reads take the gate in shared mode and
// latch only the target leaves; template updates and flushes take the gate
// exclusively. The inner template is read-only between updates, which is
// what removes the split/latch bottleneck of a traditional B+ tree.
type TemplateTree struct {
	cfg TemplateConfig

	gate sync.RWMutex
	// root of the immutable inner template (guarded by gate for replace).
	root *tinner
	// leaves in key order; leaf i covers [bound[i-1], bound[i]).
	leaves []*tleaf
	// bounds are the l-1 separator keys of the current partition P.
	bounds []model.Key

	count    atomic.Int64
	bytes    atomic.Int64
	sinceChk atomic.Int64
	checkMu  sync.Mutex
	// floorSkew stores the skewness remaining right after the last template
	// update (as float64 bits). Duplicate-heavy keys leave an irreducible
	// residue — the hottest key's run cannot be divided across leaves — so
	// re-triggering below ~2x the residue would rebuild in vain.
	floorSkew atomic.Uint64
	stats     *Stats
	ownsStats bool

	// scratch recycles InsertBatch's routing tags and gather buffer so the
	// steady-state batch path allocates nothing.
	scratch sync.Pool
}

// insertScratch is the reusable working set of one InsertBatch call.
type insertScratch struct {
	tags []uint64
	out  []uint64 // counting-sort destination, swapped with tags
	cnts []uint32 // per-leaf occupancy for the counting grouping
	run  []model.Tuple
	refs []PayloadRef
}

var _ Index = (*TemplateTree)(nil)

// NewTemplateTree creates a template tree whose initial partition divides
// cfg.Keys evenly across cfg.Leaves leaves.
func NewTemplateTree(cfg TemplateConfig) *TemplateTree {
	cfg.fill()
	t := &TemplateTree{cfg: cfg, stats: &Stats{}, ownsStats: true}
	t.installPartition(evenBoundaries(cfg.Keys, cfg.Leaves))
	return t
}

// NewTemplateTreeFromSample creates a template tree whose initial partition
// is derived from a sample of the expected key distribution, dividing the
// sample evenly across leaves.
func NewTemplateTreeFromSample(cfg TemplateConfig, sample []model.Key) *TemplateTree {
	cfg.fill()
	t := &TemplateTree{cfg: cfg, stats: &Stats{}, ownsStats: true}
	if len(sample) == 0 {
		t.installPartition(evenBoundaries(cfg.Keys, cfg.Leaves))
		return t
	}
	s := append([]model.Key(nil), sample...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	t.installPartition(boundariesFromSorted(s, cfg.Leaves))
	return t
}

// SetStats redirects instrumentation to a shared Stats collector.
func (t *TemplateTree) SetStats(s *Stats) {
	if s != nil {
		t.stats = s
		t.ownsStats = false
	}
}

// Stats returns the tree's instrumentation counters.
func (t *TemplateTree) Stats() *Stats { return t.stats }

// evenBoundaries returns l-1 separators splitting kr into equal-width
// leaves.
func evenBoundaries(kr model.KeyRange, l int) []model.Key {
	if l <= 1 {
		return nil
	}
	width := uint64(kr.Hi - kr.Lo)
	step := width / uint64(l)
	if step == 0 {
		step = 1
	}
	bounds := make([]model.Key, 0, l-1)
	for i := 1; i < l; i++ {
		b := uint64(kr.Lo) + uint64(i)*step
		if b > uint64(kr.Hi) {
			b = uint64(kr.Hi)
		}
		bounds = append(bounds, model.Key(b))
	}
	return bounds
}

// boundariesFromSorted returns l-1 separators that evenly divide the sorted
// key list into l runs (Equation 3). Separators never split a run of equal
// keys: the whole run lands in the right-hand leaf.
func boundariesFromSorted(keys []model.Key, l int) []model.Key {
	if l <= 1 || len(keys) == 0 {
		return nil
	}
	bounds := make([]model.Key, 0, l-1)
	n := len(keys)
	for i := 1; i < l; i++ {
		idx := i * n / l
		if idx >= n {
			idx = n - 1
		}
		bounds = append(bounds, keys[idx])
	}
	return bounds
}

// installPartition replaces the leaf set and rebuilds the inner template
// for the given separators. Caller must hold the gate exclusively (or be
// the constructor).
func (t *TemplateTree) installPartition(bounds []model.Key) {
	l := len(bounds) + 1
	leaves := make([]*tleaf, l)
	for i := range leaves {
		leaves[i] = &tleaf{}
	}
	t.bounds = bounds
	t.leaves = leaves
	t.root = buildTemplate(bounds, leaves, t.cfg.Fanout)
}

// buildTemplate constructs the inner-node tree bottom-up from the leaf
// separators, grouping fanout children per node.
func buildTemplate(bounds []model.Key, leaves []*tleaf, fanout int) *tinner {
	// Bottom inner level: group leaves.
	var level []*tinner
	var seps []model.Key // separators between adjacent nodes of `level`
	for i := 0; i < len(leaves); i += fanout {
		j := i + fanout
		if j > len(leaves) {
			j = len(leaves)
		}
		n := &tinner{leaves: leaves[i:j]}
		if j-1 > i {
			n.keys = bounds[i : j-1]
		}
		level = append(level, n)
		if j < len(leaves) {
			seps = append(seps, bounds[j-1])
		}
	}
	// Upper levels: group inner nodes.
	for len(level) > 1 {
		var next []*tinner
		var nextSeps []model.Key
		for i := 0; i < len(level); i += fanout {
			j := i + fanout
			if j > len(level) {
				j = len(level)
			}
			n := &tinner{children: level[i:j]}
			if j-1 > i {
				n.keys = seps[i : j-1]
			}
			next = append(next, n)
			if j < len(level) {
				nextSeps = append(nextSeps, seps[j-1])
			}
		}
		level, seps = next, nextSeps
	}
	return level[0]
}

// route descends the immutable template from root to the target leaf.
func (t *TemplateTree) route(k model.Key) *tleaf {
	n := t.root
	for n.leaves == nil {
		n = n.children[n.childIndex(k)]
	}
	return n.leaves[n.childIndex(k)]
}

// Insert adds one tuple. Safe for concurrent use; only the target leaf is
// latched. The payload bytes are copied into the leaf arena — the tree
// never retains tp.Payload.
func (t *TemplateTree) Insert(tp model.Tuple) {
	t.gate.RLock()
	lf := t.route(tp.Key)
	lf.mu.Lock()
	lf.insertOneLocked(tp.Key, tp.Time, tp.Payload)
	lf.n.Store(int32(lf.cnt))
	lf.mu.Unlock()
	t.count.Add(1)
	t.bytes.Add(int64(tp.Size()))
	c := t.sinceChk.Add(1)
	t.gate.RUnlock()
	t.stats.Inserts.Add(1)
	if c >= int64(t.cfg.CheckEvery) {
		t.maybeUpdate()
	}
}

// InsertBatch adds a batch of tuples with amortized per-tuple cost. Every
// tuple is routed once against the flattened separator list (leaf li
// covers [bounds[li-1], bounds[li]); identical to the template descent),
// and (leaf index, arrival position) is packed into one machine word.
// Sorting the packed words — a branch-predictable uint64 pdqsort, no
// comparison closures — groups the batch by destination leaf while the
// position half keeps arrival order, so the grouping is stable by
// construction. Each per-leaf run is then gathered, stable-sorted by key
// (preserving arrival order among equal keys, matching Insert's equal-key
// contract), and merged into its leaf with block memmoves instead of a
// binary search plus element shift per tuple. The gate is taken once and
// skew-check accounting is amortized to one atomic add per batch. A batch
// of one degenerates to Insert, so the two paths cannot diverge.
func (t *TemplateTree) InsertBatch(ts []model.Tuple) {
	if len(ts) == 0 {
		return
	}
	if len(ts) == 1 {
		t.Insert(ts[0])
		return
	}
	sc, _ := t.scratch.Get().(*insertScratch)
	if sc == nil {
		sc = &insertScratch{}
	}
	if cap(sc.tags) < len(ts) {
		sc.tags = make([]uint64, len(ts))
		sc.run = make([]model.Tuple, len(ts))
		sc.refs = make([]PayloadRef, len(ts))
	}
	tags := sc.tags[:len(ts)]
	scratch := sc.run[:len(ts)]
	var bytes int64
	t.gate.RLock()
	bounds := t.bounds
	for i := range ts {
		bytes += int64(ts[i].Size())
		k := ts[i].Key
		// Same predicated shrink-by-half search as upperBoundKeys: leaf
		// li covers [bounds[li-1], bounds[li]).
		base, n := 0, len(bounds)
		for n > 1 {
			half := n >> 1
			if bounds[base+half-1] <= k {
				base += half
			}
			n -= half
		}
		if n == 1 && bounds[base] <= k {
			base++
		}
		tags[i] = uint64(base)<<32 | uint64(uint32(i))
	}
	// Group the batch by destination leaf. Large batches use a counting
	// scatter over leaf ids — O(n + leaves) with no comparisons, stable
	// because equal leaf ids scatter in input order; small batches stay
	// on the comparison sort, where the per-leaf counting passes would
	// dominate. The position half of each tag keeps arrival order
	// recoverable either way.
	if len(ts) >= 64 {
		nl := len(bounds) + 1
		if cap(sc.cnts) < nl {
			sc.cnts = make([]uint32, nl)
		}
		if cap(sc.out) < len(ts) {
			sc.out = make([]uint64, len(ts))
		}
		cnts := sc.cnts[:nl]
		for i := range tags {
			cnts[tags[i]>>32]++
		}
		sum := uint32(0)
		for li := range cnts {
			c := cnts[li]
			cnts[li] = sum
			sum += c
		}
		out := sc.out[:len(ts)]
		for i := range tags {
			li := tags[i] >> 32
			out[cnts[li]] = tags[i]
			cnts[li]++
		}
		tags = out
		clear(cnts)
	} else {
		slices.Sort(tags)
	}
	pos := 0
	for pos < len(tags) {
		li := int(tags[pos] >> 32)
		end := pos + 1
		for end < len(tags) && int(tags[end]>>32) == li {
			end++
		}
		lf := t.leaves[li]
		if end == pos+1 {
			// Runs of one dominate when the batch spreads over many
			// leaves; skip the gather and merge machinery entirely.
			tp := &ts[uint32(tags[pos])]
			lf.mu.Lock()
			lf.insertOneLocked(tp.Key, tp.Time, tp.Payload)
			lf.n.Store(int32(lf.cnt))
			lf.mu.Unlock()
			pos = end
			continue
		}
		run := scratch[:end-pos]
		for j := pos; j < end; j++ {
			run[j-pos] = ts[uint32(tags[j])]
		}
		sortRunByKey(run)
		lf.mu.Lock()
		lf.mergeLocked(run, sc.refs[:len(run)])
		lf.n.Store(int32(lf.cnt))
		lf.mu.Unlock()
		pos = end
	}
	n := int64(len(ts))
	t.count.Add(n)
	t.bytes.Add(bytes)
	c := t.sinceChk.Add(n)
	t.gate.RUnlock()
	// The gather buffer holds stale Tuple copies (payload pointers) until
	// the next batch overwrites it; bound the retention by not pooling
	// outsized one-off batches.
	if cap(sc.tags) <= 1<<16 {
		t.scratch.Put(sc)
	}
	t.stats.Inserts.Add(n)
	if c >= int64(t.cfg.CheckEvery) {
		t.maybeUpdate()
	}
}

// sortRunByKey stable-sorts one per-leaf run by key, keeping equal keys
// in arrival order. Runs are typically a handful of tuples (a batch
// spread over many leaves), where insertion sort beats any general sort;
// big runs — hot leaves under skew — fall back to the stdlib stable sort.
func sortRunByKey(run []model.Tuple) {
	if len(run) <= 32 {
		for i := 1; i < len(run); i++ {
			tp := run[i]
			j := i - 1
			for j >= 0 && run[j].Key > tp.Key {
				run[j+1] = run[j]
				j--
			}
			run[j+1] = tp
		}
		return
	}
	sort.SliceStable(run, func(i, j int) bool { return run[i].Key < run[j].Key })
}

// maybeUpdate runs the skewness check and, when it fires, the template
// update. A try-lock ensures a single checker.
func (t *TemplateTree) maybeUpdate() {
	if !t.checkMu.TryLock() {
		return
	}
	defer t.checkMu.Unlock()
	t.sinceChk.Store(0)
	if t.count.Load() < int64(t.cfg.Leaves*t.cfg.MinPerLeaf) {
		return
	}
	threshold := t.cfg.SkewThreshold
	if floor := math.Float64frombits(t.floorSkew.Load()); 2*floor > threshold {
		threshold = 2 * floor
	}
	if t.Skewness() > threshold {
		t.UpdateTemplate()
	}
}

// Skewness computes S(P,D) = max_i (|Ki(D)| - n)/n with n = |D|/l
// (Equation 1). Returns 0 when the tree is empty.
func (t *TemplateTree) Skewness() float64 {
	t.gate.RLock()
	defer t.gate.RUnlock()
	return t.skewnessLocked()
}

func (t *TemplateTree) skewnessLocked() float64 {
	total := int64(0)
	maxLeaf := int64(0)
	for _, lf := range t.leaves {
		c := int64(lf.n.Load())
		total += c
		if c > maxLeaf {
			maxLeaf = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(t.leaves))
	return (float64(maxLeaf) - mean) / mean
}

// UpdateTemplate recomputes the leaf partition so tuples divide evenly
// across leaves (Equation 3), redistributes the entries, and rebuilds the
// inner template bottom-up (paper §III-C2). Inserts and reads are paused
// for the duration; the paper reports sub-10ms latencies, which this
// implementation matches at comparable sizes.
func (t *TemplateTree) UpdateTemplate() {
	start := time.Now()
	t.gate.Lock()
	// Concatenating per-leaf columns yields globally key-sorted columns,
	// because leaves own disjoint, ordered key intervals. Payloads are
	// gathered as views into the old arenas; redistribution copies them
	// into the fresh leaves' arenas below (arena ownership never spans
	// leaves), so the old column buffers and arenas are dropped wholesale.
	total := 0
	for _, lf := range t.leaves {
		total += lf.cnt
	}
	allK := make([]model.Key, 0, total)
	allT := make([]model.Timestamp, 0, total)
	allP := make([][]byte, 0, total)
	for _, lf := range t.leaves {
		h, c := lf.head, lf.cnt
		allK = append(allK, lf.kbuf[h:h+c]...)
		allT = append(allT, lf.tbuf[h:h+c]...)
		for j := h; j < h+c; j++ {
			allP = append(allP, arenaPayload(lf.arena, lf.rbuf[j]))
		}
	}
	bounds := boundariesFromSorted(allK, t.cfg.Leaves)
	if bounds == nil {
		bounds = evenBoundaries(t.cfg.Keys, t.cfg.Leaves)
	}
	t.installPartition(bounds)
	t.redistributeLocked(allK, allT, allP)
	t.floorSkew.Store(math.Float64bits(t.skewnessLocked()))
	t.gate.Unlock()
	t.stats.TemplateUpdates.Add(1)
	t.stats.TemplateUpdateNanos.Add(time.Since(start).Nanoseconds())
}

// redistributeLocked assigns the key-sorted columns to the freshly built
// leaves by the current separators, copying each payload into its new
// leaf's arena. Caller holds the gate exclusively.
func (t *TemplateTree) redistributeLocked(allK []model.Key, allT []model.Timestamp, allP [][]byte) {
	pos := 0
	for i, lf := range t.leaves {
		end := len(allK)
		if i < len(t.bounds) {
			b := t.bounds[i]
			end = pos + sort.Search(len(allK)-pos, func(j int) bool {
				return allK[pos+j] >= b
			})
		}
		if end > pos {
			// Fresh centered buffers: redistribution owns the new leaves, and
			// centering re-arms the two-ended slack the batch merge exploits.
			n := end - pos
			capn := 2*n + 8
			lf.kbuf = make([]model.Key, capn)
			lf.tbuf = make([]model.Timestamp, capn)
			lf.rbuf = make([]PayloadRef, capn)
			lf.head = (capn - n) / 2
			lf.cnt = n
			payBytes := 0
			for j := pos; j < end; j++ {
				payBytes += len(allP[j])
			}
			lf.arena = make([]byte, 0, payBytes)
			copy(lf.kbuf[lf.head:], allK[pos:end])
			copy(lf.tbuf[lf.head:], allT[pos:end])
			lf.minT, lf.maxT = allT[pos], allT[pos]
			for j := pos; j < end; j++ {
				lf.rbuf[lf.head+j-pos] = lf.appendPayload(allP[j])
				if allT[j] < lf.minT {
					lf.minT = allT[j]
				}
				if allT[j] > lf.maxT {
					lf.maxT = allT[j]
				}
			}
		}
		lf.n.Store(int32(lf.cnt))
		pos = end
	}
}

// RangeCols visits matching tuples in key order as raw (key, time,
// payload) columns, without materializing model.Tuple values. Leaves whose
// time bounds miss tr are skipped without latching their columns. The
// payload slice aliases the leaf arena: treat it as read-only and copy it
// to retain it beyond the callback.
func (t *TemplateTree) RangeCols(kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn ColsVisitor) {
	if !kr.IsValid() || !tr.IsValid() {
		return
	}
	t.gate.RLock()
	defer t.gate.RUnlock()
	lo := sort.Search(len(t.bounds), func(i int) bool { return kr.Lo < t.bounds[i] })
	for i := lo; i < len(t.leaves); i++ {
		if i > 0 && t.bounds[i-1] > kr.Hi {
			break
		}
		lf := t.leaves[i]
		if lf.n.Load() == 0 {
			continue
		}
		lf.mu.Lock()
		if lf.maxT < tr.Lo || lf.minT > tr.Hi {
			lf.mu.Unlock()
			continue
		}
		keys := lf.keyWin()
		start := sort.Search(len(keys), func(j int) bool {
			return keys[j] >= kr.Lo
		})
		stop := false
		for j := start; j < len(keys); j++ {
			if keys[j] > kr.Hi {
				break
			}
			ts := lf.tbuf[lf.head+j]
			if ts < tr.Lo || ts > tr.Hi {
				continue
			}
			p := arenaPayload(lf.arena, lf.rbuf[lf.head+j])
			if !filter.MatchesCols(keys[j], ts, p) {
				continue
			}
			if !fn(keys[j], ts, p) {
				stop = true
				break
			}
		}
		lf.mu.Unlock()
		if stop {
			return
		}
	}
}

// Range visits matching tuples in key order — the core.Index compatibility
// shim over RangeCols. One tuple value is reused across the whole scan;
// callers must not retain the pointer (or its payload) past the callback.
func (t *TemplateTree) Range(kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool) {
	var tp model.Tuple
	t.RangeCols(kr, tr, filter, func(k model.Key, ts model.Timestamp, p []byte) bool {
		tp.Key, tp.Time, tp.Payload = k, ts, p
		return fn(&tp)
	})
}

// Len returns the number of tuples in the tree.
func (t *TemplateTree) Len() int { return int(t.count.Load()) }

// Bytes returns the approximate payload footprint of the tree, used by
// flush policies.
func (t *TemplateTree) Bytes() int64 { return t.bytes.Load() }

// LeafCount returns the number of leaves l.
func (t *TemplateTree) LeafCount() int { return len(t.leaves) }

// TimeBounds returns the min/max timestamp over all tuples, and ok=false
// when the tree is empty.
func (t *TemplateTree) TimeBounds() (lo, hi model.Timestamp, ok bool) {
	t.gate.RLock()
	defer t.gate.RUnlock()
	first := true
	for _, lf := range t.leaves {
		lf.mu.Lock()
		if lf.cnt > 0 {
			if first {
				lo, hi, first = lf.minT, lf.maxT, false
			} else {
				if lf.minT < lo {
					lo = lf.minT
				}
				if lf.maxT > hi {
					hi = lf.maxT
				}
			}
		}
		lf.mu.Unlock()
	}
	return lo, hi, !first
}

// FlushSnapshot is the content handed to the chunk builder by FlushReset:
// the per-leaf columns, the leaf partition that produced them, and summary
// bounds. The v2 chunk encoder consumes the columns directly — flush is a
// column-to-column transcode with zero tuple materialization.
type FlushSnapshot struct {
	// Bounds are the l-1 separators of the partition at flush time.
	Bounds []model.Key
	// Leaves holds each leaf's columns, sorted by key (equal keys in
	// arrival order). Each leaf owns its arena.
	Leaves []LeafCols
	// Count is the total number of tuples.
	Count int
	// Bytes is the approximate payload footprint.
	Bytes int64
	// MinTime/MaxTime bound the snapshot's timestamps (valid when Count>0).
	MinTime, MaxTime model.Timestamp
	// Keys is the key interval the tree was responsible for.
	Keys model.KeyRange
	// AggField is the payload offset of the field to pre-aggregate when
	// the snapshot is built into a chunk (from TemplateConfig.AggField).
	AggField uint32
}

// LeafKeyRange returns the exact key bounds of leaf i (ok=false when the
// leaf is empty) — the per-leaf bounds the v2 chunk header records.
func (s *FlushSnapshot) LeafKeyRange(i int) (model.KeyRange, bool) {
	keys := s.Leaves[i].Keys
	if len(keys) == 0 {
		return model.KeyRange{}, false
	}
	return model.KeyRange{Lo: keys[0], Hi: keys[len(keys)-1]}, true
}

// RangeCols visits the snapshot's matching tuples in key order as raw
// (key, time, payload) columns, mirroring TemplateTree.RangeCols.
// Snapshots are immutable once FlushReset returns, so RangeCols takes no
// locks and is safe for any number of concurrent readers — this is what
// keeps tuples queryable while their chunk is still being built and
// written by a background flusher.
func (s *FlushSnapshot) RangeCols(kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn ColsVisitor) {
	if s == nil || s.Count == 0 || !kr.IsValid() || !tr.IsValid() {
		return
	}
	if s.MaxTime < tr.Lo || s.MinTime > tr.Hi {
		return
	}
	lo := sort.Search(len(s.Bounds), func(i int) bool { return kr.Lo < s.Bounds[i] })
	for i := lo; i < len(s.Leaves); i++ {
		if i > 0 && s.Bounds[i-1] > kr.Hi {
			break
		}
		leaf := &s.Leaves[i]
		keys := leaf.Keys
		if len(keys) == 0 {
			continue
		}
		start := sort.Search(len(keys), func(j int) bool { return keys[j] >= kr.Lo })
		for j := start; j < len(keys); j++ {
			if keys[j] > kr.Hi {
				break
			}
			ts := leaf.Times[j]
			if ts < tr.Lo || ts > tr.Hi {
				continue
			}
			p := leaf.Payload(j)
			if !filter.MatchesCols(keys[j], ts, p) {
				continue
			}
			if !fn(keys[j], ts, p) {
				return
			}
		}
	}
}

// Range visits the snapshot's matching tuples in key order — the
// tuple-callback compatibility shim over RangeCols. One tuple value is
// reused across the whole scan; callers must not retain the pointer (or
// its payload) past the callback.
func (s *FlushSnapshot) Range(kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool) {
	var tp model.Tuple
	s.RangeCols(kr, tr, filter, func(k model.Key, ts model.Timestamp, p []byte) bool {
		tp.Key, tp.Time, tp.Payload = k, ts, p
		return fn(&tp)
	})
}

// EachTuple materializes leaf i's entries as model.Tuple values in key
// order, stopping early when fn returns false. This is the snapshot's only
// tuple-materializing iterator — the v1 row encoder uses it — and every
// visit advances the TupleMaterializations counter, which is how the
// zero-materialization guarantee of the v2 flush path is tested. Payloads
// alias the snapshot arena.
func (s *FlushSnapshot) EachTuple(i int, fn func(model.Tuple) bool) {
	leaf := &s.Leaves[i]
	for j := range leaf.Keys {
		tupleMats.Add(1)
		if !fn(model.Tuple{Key: leaf.Keys[j], Time: leaf.Times[j], Payload: leaf.Payload(j)}) {
			return
		}
	}
}

// FlushReset atomically extracts the tree contents and resets the leaves,
// retaining the inner template for the next chunk (paper §III-B: "we only
// eliminate the leaf nodes of the tree"). Returns nil when empty. The
// snapshot takes ownership of each leaf's column buffers and arena
// wholesale — the live leaf restarts from nil buffers, so no later insert
// or template update can touch a snapshot's memory.
func (t *TemplateTree) FlushReset() *FlushSnapshot {
	t.gate.Lock()
	defer t.gate.Unlock()
	if t.count.Load() == 0 {
		return nil
	}
	snap := &FlushSnapshot{
		Bounds:   append([]model.Key(nil), t.bounds...),
		Leaves:   make([]LeafCols, len(t.leaves)),
		Count:    int(t.count.Load()),
		Bytes:    t.bytes.Load(),
		Keys:     t.cfg.Keys,
		AggField: t.cfg.AggField,
	}
	first := true
	for i, lf := range t.leaves {
		// Cap the handed-off windows: the snapshot must not be able to see
		// the buffer slack, and the leaf abandons its buffers wholesale
		// below.
		h, c := lf.head, lf.cnt
		snap.Leaves[i] = LeafCols{
			Keys:  lf.kbuf[h : h+c : h+c],
			Times: lf.tbuf[h : h+c : h+c],
			Refs:  lf.rbuf[h : h+c : h+c],
			Arena: lf.arena,
		}
		if c > 0 {
			if first {
				snap.MinTime, snap.MaxTime, first = lf.minT, lf.maxT, false
			} else {
				if lf.minT < snap.MinTime {
					snap.MinTime = lf.minT
				}
				if lf.maxT > snap.MaxTime {
					snap.MaxTime = lf.maxT
				}
			}
		}
		lf.kbuf, lf.tbuf, lf.rbuf, lf.arena = nil, nil, nil, nil
		lf.head, lf.cnt = 0, 0
		lf.n.Store(0)
	}
	t.count.Store(0)
	t.bytes.Store(0)
	t.sinceChk.Store(0)
	return snap
}

// SetKeys changes the tree's nominal key interval (after an adaptive key
// repartition, §III-D). Existing tuples are unaffected; the next template
// update and flush use the new interval.
func (t *TemplateTree) SetKeys(kr model.KeyRange) {
	t.gate.Lock()
	t.cfg.Keys = kr
	t.gate.Unlock()
}

// Keys returns the tree's nominal key interval.
func (t *TemplateTree) Keys() model.KeyRange {
	t.gate.RLock()
	defer t.gate.RUnlock()
	return t.cfg.Keys
}

// Depth returns the height of the inner template (levels of inner nodes).
func (t *TemplateTree) Depth() int {
	t.gate.RLock()
	defer t.gate.RUnlock()
	d := 1
	for n := t.root; n.leaves == nil; n = n.children[0] {
		d++
	}
	return d
}

// String implements fmt.Stringer.
func (t *TemplateTree) String() string {
	return fmt.Sprintf("templatetree(leaves=%d, count=%d, keys=%s)", len(t.leaves), t.Len(), t.cfg.Keys)
}
