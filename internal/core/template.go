package core

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"waterwheel/internal/model"
)

// TemplateConfig parametrizes a template B+ tree.
type TemplateConfig struct {
	// Keys is the key interval this tree is responsible for.
	Keys model.KeyRange
	// Leaves is the number of leaf nodes l. The template structure is fully
	// determined by the leaf-boundary partition P (paper §III-C2).
	Leaves int
	// Fanout is the inner-node fanout.
	Fanout int
	// SkewThreshold triggers a template update when the skewness factor
	// S(P,D) exceeds it. The paper cites 0.2 as an example; with small
	// leaves the statistical noise floor of max-leaf occupancy is higher,
	// so the default here is 1.0 (largest leaf at 2x the mean).
	SkewThreshold float64
	// CheckEvery is the skew-check cadence in inserts.
	CheckEvery int
	// MinPerLeaf suppresses skew checks until the tree holds at least
	// Leaves*MinPerLeaf tuples, where occupancy statistics are meaningful.
	MinPerLeaf int
	// AggField is the payload byte offset of the big-endian uint64 field
	// the chunk builder pre-aggregates. Flush snapshots carry it so the
	// flusher builds chunks with the field the tree was configured for.
	AggField uint32
}

func (c *TemplateConfig) fill() {
	if c.Leaves <= 0 {
		c.Leaves = 256
	}
	if c.Fanout < 2 {
		c.Fanout = DefaultFanout
	}
	if c.SkewThreshold <= 0 {
		c.SkewThreshold = 1.0
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 4096
	}
	if c.MinPerLeaf <= 0 {
		c.MinPerLeaf = 8
	}
	if !c.Keys.IsValid() {
		c.Keys = model.FullKeyRange()
	}
}

// tleaf is a leaf node. Entries are kept sorted by key, with equal keys in
// arrival order: inserting at the *end* of an equal-key run makes repeated
// hot keys append-cheap instead of memmove-quadratic, which matters for
// duplicate-heavy streams (sensor ids, discretized positions). The
// template allows a leaf to overflow its nominal capacity — imbalance is
// handled by template update, never by splitting.
type tleaf struct {
	mu sync.Mutex
	// entries is the live window buf[head:head+len(entries)], sorted by
	// key. buf keeps slack on BOTH ends so a batch merge can shift
	// whichever side of the insertion region is cheaper — on uniform keys
	// that halves the bytes moved per merge versus always shifting the
	// suffix right. Readers only ever see entries; buf/head are the
	// mutators' bookkeeping.
	entries []model.Tuple
	buf     []model.Tuple
	head    int
	// n mirrors len(entries) for lock-free skew checks.
	n atomic.Int32
	// minT/maxT bound the timestamps in the leaf (valid when n > 0).
	minT, maxT model.Timestamp
}

// growLocked reallocates the leaf buffer with room for at least extra more
// tuples, recentering the live window so both ends regain slack.
func (lf *tleaf) growLocked(extra int) {
	n := len(lf.entries)
	newCap := 2*(n+extra) + 8
	buf := make([]model.Tuple, newCap)
	head := (newCap - n - extra) / 2
	copy(buf[head:head+n], lf.entries)
	lf.buf, lf.head = buf, head
	lf.entries = buf[head : head+n]
}

// insertOneLocked places a single tuple through the batch path: one
// closure-free upper-bound search, then a one-slot shift of whichever
// side of the insertion point is shorter. Equal-key placement matches
// insertLocked exactly.
func (lf *tleaf) insertOneLocked(tp model.Tuple) {
	n := len(lf.entries)
	if n == 0 {
		if len(lf.buf) == 0 {
			lf.growLocked(1)
		}
		lf.head = len(lf.buf) / 2
		lf.entries = lf.buf[lf.head : lf.head+1]
		lf.entries[0] = tp
		lf.minT, lf.maxT = tp.Time, tp.Time
		return
	}
	if tp.Time < lf.minT {
		lf.minT = tp.Time
	}
	if tp.Time > lf.maxT {
		lf.maxT = tp.Time
	}
	pos := upperBound(lf.entries, tp.Key)
	if 2*pos < n && lf.head > 0 {
		copy(lf.buf[lf.head-1:], lf.buf[lf.head:lf.head+pos])
		lf.head--
		lf.entries = lf.buf[lf.head : lf.head+n+1]
		lf.entries[pos] = tp
		return
	}
	if lf.head+n == len(lf.buf) {
		lf.growLocked(1)
	}
	lf.entries = lf.buf[lf.head : lf.head+n+1]
	copy(lf.entries[pos+1:], lf.entries[pos:n])
	lf.entries[pos] = tp
}

func (lf *tleaf) insertLocked(t model.Tuple) {
	i := sort.Search(len(lf.entries), func(i int) bool {
		return lf.entries[i].Key > t.Key
	})
	n := len(lf.entries)
	if lf.head+n == len(lf.buf) {
		lf.growLocked(1)
	}
	lf.entries = lf.buf[lf.head : lf.head+n+1]
	copy(lf.entries[i+1:], lf.entries[i:n])
	lf.entries[i] = t
	if n == 0 {
		lf.minT, lf.maxT = t.Time, t.Time
	} else {
		if t.Time < lf.minT {
			lf.minT = t.Time
		}
		if t.Time > lf.maxT {
			lf.maxT = t.Time
		}
	}
}

// mergeLocked merges a key-sorted run (equal keys in arrival order) into
// the leaf. New tuples land *after* existing equal keys — the same
// placement insertLocked's strict `>` search produces — and the run's
// internal order is preserved, so a merged batch is indistinguishable from
// inserting its tuples one at a time. The run must not alias lf.buf.
//
// Existing entries move in block memmoves, one per equal-key group of the
// run, and the merge runs toward whichever end of the buffer is closer to
// the insertion region: a run landing in the lower half shifts the prefix
// left into front slack instead of shifting the (larger) suffix right. A
// run of m tuples costs O(m + moved) bulk copies instead of m searches and
// m element shifts.
func (lf *tleaf) mergeLocked(run []model.Tuple) {
	if len(run) == 0 {
		return
	}
	if len(lf.entries) == 0 {
		lf.minT, lf.maxT = run[0].Time, run[0].Time
	}
	for i := range run {
		if run[i].Time < lf.minT {
			lf.minT = run[i].Time
		}
		if run[i].Time > lf.maxT {
			lf.maxT = run[i].Time
		}
	}
	n, m := len(lf.entries), len(run)
	if n == 0 {
		if len(lf.buf) < m {
			lf.growLocked(m)
		}
		lf.head = (len(lf.buf) - m) / 2
		lf.entries = lf.buf[lf.head : lf.head+m]
		copy(lf.entries, run)
		return
	}
	// Pick the merge direction by the run's median insertion point, then
	// fall back to whichever side actually has room (growing recenters, so
	// after a grow the back always has room).
	pos := upperBound(lf.entries, run[m/2].Key)
	forward := 2*pos < n
	if forward && lf.head < m {
		if len(lf.buf)-lf.head-n >= m {
			forward = false
		} else {
			lf.growLocked(m)
			forward = lf.head >= m
		}
	} else if !forward && len(lf.buf)-lf.head-n < m {
		if lf.head >= m {
			forward = true
		} else {
			lf.growLocked(m)
			forward = false
		}
	}
	if forward {
		lf.mergeForwardLocked(run)
	} else {
		lf.mergeBackwardLocked(run)
	}
}

// upperBound returns the first index in the key-sorted entries whose key
// is strictly greater than k — the slot where new arrivals of key k land,
// after all existing equal keys.
func upperBound(entries []model.Tuple, k model.Key) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entries[mid].Key > k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// mergeBackwardLocked extends the window rightward and merges right to
// left, moving the existing entries that sort above each equal-key group
// of the run. Caller guarantees m free slots after the window.
func (lf *tleaf) mergeBackwardLocked(run []model.Tuple) {
	n, m := len(lf.entries), len(run)
	lf.entries = lf.buf[lf.head : lf.head+n+m]
	if lf.entries[n-1].Key <= run[0].Key {
		// The whole run sorts after the existing tail (equal existing keys
		// stay below the new arrivals).
		copy(lf.entries[n:], run)
		return
	}
	dst := n + m // exclusive write cursor, filled right to left
	src := n     // exclusive end of not-yet-merged existing entries
	for j := m; j > 0; {
		k := run[j-1].Key
		i := j - 1
		for i > 0 && run[i-1].Key == k {
			i--
		}
		lo := upperBound(lf.entries[:src], k)
		if blk := src - lo; blk > 0 {
			copy(lf.entries[dst-blk:dst], lf.entries[lo:src])
			dst -= blk
			src = lo
		}
		copy(lf.entries[dst-(j-i):dst], run[i:j])
		dst -= j - i
		j = i
	}
}

// mergeForwardLocked extends the window leftward into front slack and
// merges left to right: existing entries that sort at or below each group
// (including existing equal keys, which must stay before new arrivals)
// shift left by the room the pending run elements no longer need. Caller
// guarantees m free slots before the window.
func (lf *tleaf) mergeForwardLocked(run []model.Tuple) {
	n, m := len(lf.entries), len(run)
	base := lf.head
	lf.head -= m
	lf.entries = lf.buf[lf.head : base+n]
	d := lf.head // write cursor in buf, filled left to right
	src := 0     // start of not-yet-merged existing entries
	for i := 0; i < m; {
		k := run[i].Key
		j := i + 1
		for j < m && run[j].Key == k {
			j++
		}
		// Existing entries with key <= k (equal keys included) precede the
		// group; binary search the strict upper bound among the unmerged.
		lo, hi := src, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if lf.buf[base+mid].Key > k {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if blk := lo - src; blk > 0 {
			copy(lf.buf[d:d+blk], lf.buf[base+src:base+lo])
			d += blk
			src = lo
		}
		copy(lf.buf[d:d+(j-i)], run[i:j])
		d += j - i
		i = j
	}
}

// tinner is an inner (template) node. Child i is selected for key k when
// k < keys[i] and no earlier separator matched; the last child catches the
// rest. Exactly one of children/leaves is non-nil: children for upper
// levels, leaves for the level directly above the leaf layer. Inner nodes
// are immutable between template updates, so descent needs no latches.
type tinner struct {
	keys     []model.Key
	children []*tinner
	leaves   []*tleaf
}

func (n *tinner) childIndex(k model.Key) int {
	return sort.Search(len(n.keys), func(i int) bool { return k < n.keys[i] })
}

// TemplateTree is the template-based B+ tree (paper §III-B).
//
// Concurrency protocol: inserts and reads take the gate in shared mode and
// latch only the target leaves; template updates and flushes take the gate
// exclusively. The inner template is read-only between updates, which is
// what removes the split/latch bottleneck of a traditional B+ tree.
type TemplateTree struct {
	cfg TemplateConfig

	gate sync.RWMutex
	// root of the immutable inner template (guarded by gate for replace).
	root *tinner
	// leaves in key order; leaf i covers [bound[i-1], bound[i]).
	leaves []*tleaf
	// bounds are the l-1 separator keys of the current partition P.
	bounds []model.Key

	count    atomic.Int64
	bytes    atomic.Int64
	sinceChk atomic.Int64
	checkMu  sync.Mutex
	// floorSkew stores the skewness remaining right after the last template
	// update (as float64 bits). Duplicate-heavy keys leave an irreducible
	// residue — the hottest key's run cannot be divided across leaves — so
	// re-triggering below ~2x the residue would rebuild in vain.
	floorSkew atomic.Uint64
	stats     *Stats
	ownsStats bool

	// scratch recycles InsertBatch's routing tags and gather buffer so the
	// steady-state batch path allocates nothing.
	scratch sync.Pool
}

// insertScratch is the reusable working set of one InsertBatch call.
type insertScratch struct {
	tags []uint64
	run  []model.Tuple
}

var _ Index = (*TemplateTree)(nil)

// NewTemplateTree creates a template tree whose initial partition divides
// cfg.Keys evenly across cfg.Leaves leaves.
func NewTemplateTree(cfg TemplateConfig) *TemplateTree {
	cfg.fill()
	t := &TemplateTree{cfg: cfg, stats: &Stats{}, ownsStats: true}
	t.installPartition(evenBoundaries(cfg.Keys, cfg.Leaves))
	return t
}

// NewTemplateTreeFromSample creates a template tree whose initial partition
// is derived from a sample of the expected key distribution, dividing the
// sample evenly across leaves.
func NewTemplateTreeFromSample(cfg TemplateConfig, sample []model.Key) *TemplateTree {
	cfg.fill()
	t := &TemplateTree{cfg: cfg, stats: &Stats{}, ownsStats: true}
	if len(sample) == 0 {
		t.installPartition(evenBoundaries(cfg.Keys, cfg.Leaves))
		return t
	}
	s := append([]model.Key(nil), sample...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	t.installPartition(boundariesFromSorted(s, cfg.Leaves))
	return t
}

// SetStats redirects instrumentation to a shared Stats collector.
func (t *TemplateTree) SetStats(s *Stats) {
	if s != nil {
		t.stats = s
		t.ownsStats = false
	}
}

// Stats returns the tree's instrumentation counters.
func (t *TemplateTree) Stats() *Stats { return t.stats }

// evenBoundaries returns l-1 separators splitting kr into equal-width
// leaves.
func evenBoundaries(kr model.KeyRange, l int) []model.Key {
	if l <= 1 {
		return nil
	}
	width := uint64(kr.Hi - kr.Lo)
	step := width / uint64(l)
	if step == 0 {
		step = 1
	}
	bounds := make([]model.Key, 0, l-1)
	for i := 1; i < l; i++ {
		b := uint64(kr.Lo) + uint64(i)*step
		if b > uint64(kr.Hi) {
			b = uint64(kr.Hi)
		}
		bounds = append(bounds, model.Key(b))
	}
	return bounds
}

// boundariesFromSorted returns l-1 separators that evenly divide the sorted
// key list into l runs (Equation 3). Separators never split a run of equal
// keys: the whole run lands in the right-hand leaf.
func boundariesFromSorted(keys []model.Key, l int) []model.Key {
	if l <= 1 || len(keys) == 0 {
		return nil
	}
	bounds := make([]model.Key, 0, l-1)
	n := len(keys)
	for i := 1; i < l; i++ {
		idx := i * n / l
		if idx >= n {
			idx = n - 1
		}
		bounds = append(bounds, keys[idx])
	}
	return bounds
}

// installPartition replaces the leaf set and rebuilds the inner template
// for the given separators. Caller must hold the gate exclusively (or be
// the constructor).
func (t *TemplateTree) installPartition(bounds []model.Key) {
	l := len(bounds) + 1
	leaves := make([]*tleaf, l)
	for i := range leaves {
		leaves[i] = &tleaf{}
	}
	t.bounds = bounds
	t.leaves = leaves
	t.root = buildTemplate(bounds, leaves, t.cfg.Fanout)
}

// buildTemplate constructs the inner-node tree bottom-up from the leaf
// separators, grouping fanout children per node.
func buildTemplate(bounds []model.Key, leaves []*tleaf, fanout int) *tinner {
	// Bottom inner level: group leaves.
	var level []*tinner
	var seps []model.Key // separators between adjacent nodes of `level`
	for i := 0; i < len(leaves); i += fanout {
		j := i + fanout
		if j > len(leaves) {
			j = len(leaves)
		}
		n := &tinner{leaves: leaves[i:j]}
		if j-1 > i {
			n.keys = bounds[i : j-1]
		}
		level = append(level, n)
		if j < len(leaves) {
			seps = append(seps, bounds[j-1])
		}
	}
	// Upper levels: group inner nodes.
	for len(level) > 1 {
		var next []*tinner
		var nextSeps []model.Key
		for i := 0; i < len(level); i += fanout {
			j := i + fanout
			if j > len(level) {
				j = len(level)
			}
			n := &tinner{children: level[i:j]}
			if j-1 > i {
				n.keys = seps[i : j-1]
			}
			next = append(next, n)
			if j < len(level) {
				nextSeps = append(nextSeps, seps[j-1])
			}
		}
		level, seps = next, nextSeps
	}
	return level[0]
}

// route descends the immutable template from root to the target leaf.
func (t *TemplateTree) route(k model.Key) *tleaf {
	n := t.root
	for n.leaves == nil {
		n = n.children[n.childIndex(k)]
	}
	return n.leaves[n.childIndex(k)]
}

// Insert adds one tuple. Safe for concurrent use; only the target leaf is
// latched.
func (t *TemplateTree) Insert(tp model.Tuple) {
	t.gate.RLock()
	lf := t.route(tp.Key)
	lf.mu.Lock()
	lf.insertLocked(tp)
	lf.n.Store(int32(len(lf.entries)))
	lf.mu.Unlock()
	t.count.Add(1)
	t.bytes.Add(int64(tp.Size()))
	c := t.sinceChk.Add(1)
	t.gate.RUnlock()
	t.stats.Inserts.Add(1)
	if c >= int64(t.cfg.CheckEvery) {
		t.maybeUpdate()
	}
}

// InsertBatch adds a batch of tuples with amortized per-tuple cost. Every
// tuple is routed once against the flattened separator list (leaf li
// covers [bounds[li-1], bounds[li]); identical to the template descent),
// and (leaf index, arrival position) is packed into one machine word.
// Sorting the packed words — a branch-predictable uint64 pdqsort, no
// comparison closures — groups the batch by destination leaf while the
// position half keeps arrival order, so the grouping is stable by
// construction. Each per-leaf run is then gathered, stable-sorted by key
// (preserving arrival order among equal keys, matching Insert's equal-key
// contract), and merged into its leaf with block memmoves instead of a
// binary search plus element shift per tuple. The gate is taken once and
// skew-check accounting is amortized to one atomic add per batch. A batch
// of one degenerates to Insert, so the two paths cannot diverge.
func (t *TemplateTree) InsertBatch(ts []model.Tuple) {
	if len(ts) == 0 {
		return
	}
	if len(ts) == 1 {
		t.Insert(ts[0])
		return
	}
	sc, _ := t.scratch.Get().(*insertScratch)
	if sc == nil {
		sc = &insertScratch{}
	}
	if cap(sc.tags) < len(ts) {
		sc.tags = make([]uint64, len(ts))
		sc.run = make([]model.Tuple, len(ts))
	}
	tags := sc.tags[:len(ts)]
	scratch := sc.run[:len(ts)]
	var bytes int64
	t.gate.RLock()
	bounds := t.bounds
	for i := range ts {
		bytes += int64(ts[i].Size())
		k := ts[i].Key
		lo, hi := 0, len(bounds)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if k < bounds[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		tags[i] = uint64(lo)<<32 | uint64(uint32(i))
	}
	slices.Sort(tags)
	pos := 0
	for pos < len(tags) {
		li := int(tags[pos] >> 32)
		end := pos + 1
		for end < len(tags) && int(tags[end]>>32) == li {
			end++
		}
		lf := t.leaves[li]
		if end == pos+1 {
			// Runs of one dominate when the batch spreads over many
			// leaves; skip the gather and merge machinery entirely.
			lf.mu.Lock()
			lf.insertOneLocked(ts[uint32(tags[pos])])
			lf.n.Store(int32(len(lf.entries)))
			lf.mu.Unlock()
			pos = end
			continue
		}
		run := scratch[:end-pos]
		for j := pos; j < end; j++ {
			run[j-pos] = ts[uint32(tags[j])]
		}
		sortRunByKey(run)
		lf.mu.Lock()
		lf.mergeLocked(run)
		lf.n.Store(int32(len(lf.entries)))
		lf.mu.Unlock()
		pos = end
	}
	n := int64(len(ts))
	t.count.Add(n)
	t.bytes.Add(bytes)
	c := t.sinceChk.Add(n)
	t.gate.RUnlock()
	// The gather buffer holds stale Tuple copies (payload pointers) until
	// the next batch overwrites it; bound the retention by not pooling
	// outsized one-off batches.
	if cap(sc.tags) <= 1<<16 {
		t.scratch.Put(sc)
	}
	t.stats.Inserts.Add(n)
	if c >= int64(t.cfg.CheckEvery) {
		t.maybeUpdate()
	}
}

// sortRunByKey stable-sorts one per-leaf run by key, keeping equal keys
// in arrival order. Runs are typically a handful of tuples (a batch
// spread over many leaves), where insertion sort beats any general sort;
// big runs — hot leaves under skew — fall back to the stdlib stable sort.
func sortRunByKey(run []model.Tuple) {
	if len(run) <= 32 {
		for i := 1; i < len(run); i++ {
			tp := run[i]
			j := i - 1
			for j >= 0 && run[j].Key > tp.Key {
				run[j+1] = run[j]
				j--
			}
			run[j+1] = tp
		}
		return
	}
	sort.SliceStable(run, func(i, j int) bool { return run[i].Key < run[j].Key })
}

// maybeUpdate runs the skewness check and, when it fires, the template
// update. A try-lock ensures a single checker.
func (t *TemplateTree) maybeUpdate() {
	if !t.checkMu.TryLock() {
		return
	}
	defer t.checkMu.Unlock()
	t.sinceChk.Store(0)
	if t.count.Load() < int64(t.cfg.Leaves*t.cfg.MinPerLeaf) {
		return
	}
	threshold := t.cfg.SkewThreshold
	if floor := math.Float64frombits(t.floorSkew.Load()); 2*floor > threshold {
		threshold = 2 * floor
	}
	if t.Skewness() > threshold {
		t.UpdateTemplate()
	}
}

// Skewness computes S(P,D) = max_i (|Ki(D)| - n)/n with n = |D|/l
// (Equation 1). Returns 0 when the tree is empty.
func (t *TemplateTree) Skewness() float64 {
	t.gate.RLock()
	defer t.gate.RUnlock()
	return t.skewnessLocked()
}

func (t *TemplateTree) skewnessLocked() float64 {
	total := int64(0)
	maxLeaf := int64(0)
	for _, lf := range t.leaves {
		c := int64(lf.n.Load())
		total += c
		if c > maxLeaf {
			maxLeaf = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(t.leaves))
	return (float64(maxLeaf) - mean) / mean
}

// UpdateTemplate recomputes the leaf partition so tuples divide evenly
// across leaves (Equation 3), redistributes the entries, and rebuilds the
// inner template bottom-up (paper §III-C2). Inserts and reads are paused
// for the duration; the paper reports sub-10ms latencies, which this
// implementation matches at comparable sizes.
func (t *TemplateTree) UpdateTemplate() {
	start := time.Now()
	t.gate.Lock()
	// Concatenating per-leaf entries yields a globally key-sorted list,
	// because leaves own disjoint, ordered key intervals.
	total := 0
	for _, lf := range t.leaves {
		total += len(lf.entries)
	}
	all := make([]model.Tuple, 0, total)
	for _, lf := range t.leaves {
		all = append(all, lf.entries...)
	}
	keys := make([]model.Key, len(all))
	for i := range all {
		keys[i] = all[i].Key
	}
	bounds := boundariesFromSorted(keys, t.cfg.Leaves)
	if bounds == nil {
		bounds = evenBoundaries(t.cfg.Keys, t.cfg.Leaves)
	}
	t.installPartition(bounds)
	t.redistributeLocked(all)
	t.floorSkew.Store(math.Float64bits(t.skewnessLocked()))
	t.gate.Unlock()
	t.stats.TemplateUpdates.Add(1)
	t.stats.TemplateUpdateNanos.Add(time.Since(start).Nanoseconds())
}

// redistributeLocked assigns the key-sorted entries to the freshly built
// leaves by the current separators. Caller holds the gate exclusively.
func (t *TemplateTree) redistributeLocked(sorted []model.Tuple) {
	pos := 0
	for i, lf := range t.leaves {
		end := len(sorted)
		if i < len(t.bounds) {
			b := t.bounds[i]
			end = pos + sort.Search(len(sorted)-pos, func(j int) bool {
				return sorted[pos+j].Key >= b
			})
		}
		if end > pos {
			// Fresh centered buffer: redistribution owns the new leaves, and
			// centering re-arms the two-ended slack the batch merge exploits.
			n := end - pos
			lf.buf = make([]model.Tuple, 2*n+8)
			lf.head = (len(lf.buf) - n) / 2
			lf.entries = lf.buf[lf.head : lf.head+n]
			copy(lf.entries, sorted[pos:end])
			lf.minT, lf.maxT = lf.entries[0].Time, lf.entries[0].Time
			for _, e := range lf.entries {
				if e.Time < lf.minT {
					lf.minT = e.Time
				}
				if e.Time > lf.maxT {
					lf.maxT = e.Time
				}
			}
		}
		lf.n.Store(int32(len(lf.entries)))
		pos = end
	}
}

// Range visits matching tuples in key order. Leaves whose time bounds miss
// tr are skipped without latching their entries.
func (t *TemplateTree) Range(kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool) {
	if !kr.IsValid() || !tr.IsValid() {
		return
	}
	t.gate.RLock()
	defer t.gate.RUnlock()
	lo := sort.Search(len(t.bounds), func(i int) bool { return kr.Lo < t.bounds[i] })
	for i := lo; i < len(t.leaves); i++ {
		if i > 0 && t.bounds[i-1] > kr.Hi {
			break
		}
		lf := t.leaves[i]
		if lf.n.Load() == 0 {
			continue
		}
		lf.mu.Lock()
		if lf.maxT < tr.Lo || lf.minT > tr.Hi {
			lf.mu.Unlock()
			continue
		}
		start := sort.Search(len(lf.entries), func(j int) bool {
			return lf.entries[j].Key >= kr.Lo
		})
		stop := false
		for j := start; j < len(lf.entries); j++ {
			e := &lf.entries[j]
			if e.Key > kr.Hi {
				break
			}
			if e.Time < tr.Lo || e.Time > tr.Hi || !filter.Matches(e) {
				continue
			}
			if !fn(e) {
				stop = true
				break
			}
		}
		lf.mu.Unlock()
		if stop {
			return
		}
	}
}

// Len returns the number of tuples in the tree.
func (t *TemplateTree) Len() int { return int(t.count.Load()) }

// Bytes returns the approximate payload footprint of the tree, used by
// flush policies.
func (t *TemplateTree) Bytes() int64 { return t.bytes.Load() }

// LeafCount returns the number of leaves l.
func (t *TemplateTree) LeafCount() int { return len(t.leaves) }

// TimeBounds returns the min/max timestamp over all tuples, and ok=false
// when the tree is empty.
func (t *TemplateTree) TimeBounds() (lo, hi model.Timestamp, ok bool) {
	t.gate.RLock()
	defer t.gate.RUnlock()
	first := true
	for _, lf := range t.leaves {
		lf.mu.Lock()
		if len(lf.entries) > 0 {
			if first {
				lo, hi, first = lf.minT, lf.maxT, false
			} else {
				if lf.minT < lo {
					lo = lf.minT
				}
				if lf.maxT > hi {
					hi = lf.maxT
				}
			}
		}
		lf.mu.Unlock()
	}
	return lo, hi, !first
}

// FlushSnapshot is the content handed to the chunk builder by FlushReset:
// the per-leaf sorted entries, the leaf partition that produced them, and
// summary bounds.
type FlushSnapshot struct {
	// Bounds are the l-1 separators of the partition at flush time.
	Bounds []model.Key
	// Leaves holds each leaf's entries, sorted by key (equal keys in
	// arrival order).
	Leaves [][]model.Tuple
	// Count is the total number of tuples.
	Count int
	// Bytes is the approximate payload footprint.
	Bytes int64
	// MinTime/MaxTime bound the snapshot's timestamps (valid when Count>0).
	MinTime, MaxTime model.Timestamp
	// Keys is the key interval the tree was responsible for.
	Keys model.KeyRange
	// AggField is the payload offset of the field to pre-aggregate when
	// the snapshot is built into a chunk (from TemplateConfig.AggField).
	AggField uint32
}

// LeafKeyRange returns the exact key bounds of leaf i (ok=false when the
// leaf is empty) — the per-leaf bounds the v2 chunk header records.
func (s *FlushSnapshot) LeafKeyRange(i int) (model.KeyRange, bool) {
	entries := s.Leaves[i]
	if len(entries) == 0 {
		return model.KeyRange{}, false
	}
	return model.KeyRange{Lo: entries[0].Key, Hi: entries[len(entries)-1].Key}, true
}

// Range visits the snapshot's matching tuples in key order, mirroring
// TemplateTree.Range. Snapshots are immutable once FlushReset returns, so
// Range takes no locks and is safe for any number of concurrent readers —
// this is what keeps tuples queryable while their chunk is still being
// built and written by a background flusher.
func (s *FlushSnapshot) Range(kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool) {
	if s == nil || s.Count == 0 || !kr.IsValid() || !tr.IsValid() {
		return
	}
	if s.MaxTime < tr.Lo || s.MinTime > tr.Hi {
		return
	}
	lo := sort.Search(len(s.Bounds), func(i int) bool { return kr.Lo < s.Bounds[i] })
	for i := lo; i < len(s.Leaves); i++ {
		if i > 0 && s.Bounds[i-1] > kr.Hi {
			break
		}
		leaf := s.Leaves[i]
		if len(leaf) == 0 {
			continue
		}
		start := sort.Search(len(leaf), func(j int) bool { return leaf[j].Key >= kr.Lo })
		for j := start; j < len(leaf); j++ {
			e := &leaf[j]
			if e.Key > kr.Hi {
				break
			}
			if e.Time < tr.Lo || e.Time > tr.Hi || !filter.Matches(e) {
				continue
			}
			if !fn(e) {
				return
			}
		}
	}
}

// FlushReset atomically extracts the tree contents and resets the leaves,
// retaining the inner template for the next chunk (paper §III-B: "we only
// eliminate the leaf nodes of the tree"). Returns nil when empty.
func (t *TemplateTree) FlushReset() *FlushSnapshot {
	t.gate.Lock()
	defer t.gate.Unlock()
	if t.count.Load() == 0 {
		return nil
	}
	snap := &FlushSnapshot{
		Bounds:   append([]model.Key(nil), t.bounds...),
		Leaves:   make([][]model.Tuple, len(t.leaves)),
		Count:    int(t.count.Load()),
		Bytes:    t.bytes.Load(),
		Keys:     t.cfg.Keys,
		AggField: t.cfg.AggField,
	}
	first := true
	for i, lf := range t.leaves {
		// Cap the handed-off slice: the snapshot must not be able to see
		// the buffer slack, and the leaf abandons buf wholesale below.
		snap.Leaves[i] = lf.entries[:len(lf.entries):len(lf.entries)]
		if len(lf.entries) > 0 {
			if first {
				snap.MinTime, snap.MaxTime, first = lf.minT, lf.maxT, false
			} else {
				if lf.minT < snap.MinTime {
					snap.MinTime = lf.minT
				}
				if lf.maxT > snap.MaxTime {
					snap.MaxTime = lf.maxT
				}
			}
		}
		lf.entries, lf.buf, lf.head = nil, nil, 0
		lf.n.Store(0)
	}
	t.count.Store(0)
	t.bytes.Store(0)
	t.sinceChk.Store(0)
	return snap
}

// SetKeys changes the tree's nominal key interval (after an adaptive key
// repartition, §III-D). Existing tuples are unaffected; the next template
// update and flush use the new interval.
func (t *TemplateTree) SetKeys(kr model.KeyRange) {
	t.gate.Lock()
	t.cfg.Keys = kr
	t.gate.Unlock()
}

// Keys returns the tree's nominal key interval.
func (t *TemplateTree) Keys() model.KeyRange {
	t.gate.RLock()
	defer t.gate.RUnlock()
	return t.cfg.Keys
}

// Depth returns the height of the inner template (levels of inner nodes).
func (t *TemplateTree) Depth() int {
	t.gate.RLock()
	defer t.gate.RUnlock()
	d := 1
	for n := t.root; n.leaves == nil; n = n.children[0] {
		d++
	}
	return d
}

// String implements fmt.Stringer.
func (t *TemplateTree) String() string {
	return fmt.Sprintf("templatetree(leaves=%d, count=%d, keys=%s)", len(t.leaves), t.Len(), t.cfg.Keys)
}
