package core

import (
	"strings"
	"testing"

	"waterwheel/internal/model"
)

func TestSharedStatsCollector(t *testing.T) {
	shared := &Stats{}
	tmpl := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 100}, Leaves: 4})
	conc := NewConcurrentTree(4, 4)
	bulk := NewBulkTree(4, 4)
	tmpl.SetStats(shared)
	conc.SetStats(shared)
	bulk.SetStats(shared)
	for i := 0; i < 50; i++ {
		tp := model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)}
		tmpl.Insert(tp)
		conc.Insert(tp)
		bulk.Insert(tp)
	}
	bulk.Build()
	snap := shared.Snapshot()
	if snap.Inserts != 150 {
		t.Errorf("shared inserts = %d, want 150", snap.Inserts)
	}
	if snap.Splits == 0 {
		t.Error("concurrent splits not recorded in shared stats")
	}
	if snap.SortNanos == 0 {
		t.Error("bulk sort not recorded in shared stats")
	}
	// SetStats(nil) keeps the existing collector.
	tmpl.SetStats(nil)
	tmpl.Insert(model.Tuple{Key: 1})
	if shared.Inserts.Load() != 151 {
		t.Error("SetStats(nil) detached the collector")
	}
}

func TestSnapshotSub(t *testing.T) {
	a := StatsSnapshot{Inserts: 10, Splits: 4, SplitNanos: 100, SortNanos: 50, BuildNanos: 20, TemplateUpdates: 2, TemplateUpdateNanos: 30}
	b := StatsSnapshot{Inserts: 3, Splits: 1, SplitNanos: 40, SortNanos: 10, BuildNanos: 5, TemplateUpdates: 1, TemplateUpdateNanos: 10}
	d := a.Sub(b)
	if d.Inserts != 7 || d.Splits != 3 || d.SplitNanos != 60 || d.SortNanos != 40 ||
		d.BuildNanos != 15 || d.TemplateUpdates != 1 || d.TemplateUpdateNanos != 20 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestAccessors(t *testing.T) {
	tmpl := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1000}, Leaves: 8})
	if tmpl.LeafCount() != 8 {
		t.Errorf("LeafCount = %d", tmpl.LeafCount())
	}
	if d := tmpl.Depth(); d < 1 {
		t.Errorf("Depth = %d", d)
	}
	if s := tmpl.String(); !strings.Contains(s, "templatetree") {
		t.Errorf("String = %q", s)
	}
	if b := tmpl.Bytes(); b != 0 {
		t.Errorf("empty tree bytes = %d", b)
	}
	tmpl.Insert(model.Tuple{Key: 1, Time: 1, Payload: make([]byte, 10)})
	if b := tmpl.Bytes(); b != 26 {
		t.Errorf("bytes = %d, want 26", b)
	}
	conc := NewConcurrentTree(4, 4)
	if conc.Depth() != 1 {
		t.Errorf("fresh concurrent depth = %d", conc.Depth())
	}
	for i := 0; i < 100; i++ {
		conc.Insert(model.Tuple{Key: model.Key(i)})
	}
	if conc.Depth() < 2 {
		t.Errorf("grown concurrent depth = %d", conc.Depth())
	}
	if conc.Stats() == nil || tmpl.Stats() == nil || NewBulkTree(0, 0).Stats() == nil {
		t.Error("nil stats accessor")
	}
}

func TestTemplateDeepTree(t *testing.T) {
	// Enough leaves for three inner levels at fanout 4.
	tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1 << 20}, Leaves: 64, Fanout: 4})
	if d := tree.Depth(); d != 3 {
		t.Errorf("depth = %d, want 3 (64 leaves at fanout 4)", d)
	}
	for i := 0; i < 4096; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i * 256), Time: model.Timestamp(i)})
	}
	got := collect(tree, model.KeyRange{Lo: 0, Hi: 1 << 20}, model.FullTimeRange(), nil)
	if len(got) != 4096 {
		t.Errorf("deep tree lost tuples: %d", len(got))
	}
}
