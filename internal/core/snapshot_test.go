package core

import (
	"math/rand"
	"testing"

	"waterwheel/internal/model"
)

// TestSnapshotRangeMatchesTree: FlushSnapshot.Range over a swapped-out
// snapshot returns exactly what TemplateTree.Range returned for the same
// predicate before the swap — the property the async flush pipeline's
// visibility guarantee stands on.
func TestSnapshotRangeMatchesTree(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1000}, Leaves: 8})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		tree.Insert(model.Tuple{
			Key:     model.Key(rng.Intn(1001)),
			Time:    model.Timestamp(rng.Intn(1000)),
			Payload: []byte{byte(i)},
		})
	}
	queries := []struct {
		kr model.KeyRange
		tr model.TimeRange
	}{
		{model.FullKeyRange(), model.FullTimeRange()},
		{model.KeyRange{Lo: 100, Hi: 400}, model.FullTimeRange()},
		{model.FullKeyRange(), model.TimeRange{Lo: 250, Hi: 750}},
		{model.KeyRange{Lo: 300, Hi: 301}, model.TimeRange{Lo: 0, Hi: 500}},
		{model.KeyRange{Lo: 900, Hi: 100}, model.FullTimeRange()}, // invalid: Lo > Hi
	}
	collect := func(rangeFn func(model.KeyRange, model.TimeRange, *model.Filter, func(*model.Tuple) bool), kr model.KeyRange, tr model.TimeRange) []model.Tuple {
		var out []model.Tuple
		rangeFn(kr, tr, nil, func(tu *model.Tuple) bool {
			out = append(out, *tu)
			return true
		})
		return out
	}
	want := make([][]model.Tuple, len(queries))
	for i, q := range queries {
		want[i] = collect(tree.Range, q.kr, q.tr)
	}
	snap := tree.FlushReset()
	if snap == nil {
		t.Fatal("FlushReset returned nil for a non-empty tree")
	}
	for i, q := range queries {
		got := collect(snap.Range, q.kr, q.tr)
		if len(got) != len(want[i]) {
			t.Fatalf("query %d: snapshot returned %d tuples, tree returned %d", i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j].Key != want[i][j].Key || got[j].Time != want[i][j].Time {
				t.Fatalf("query %d tuple %d: snapshot %v != tree %v", i, j, got[j], want[i][j])
			}
		}
	}
	// The tree is empty post-swap while the snapshot still answers.
	if n := len(collect(tree.Range, model.FullKeyRange(), model.FullTimeRange())); n != 0 {
		t.Fatalf("tree still returns %d tuples after FlushReset", n)
	}
}

// TestSnapshotRangeEarlyStop: the visitor's false return stops the scan.
func TestSnapshotRangeEarlyStop(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 100}, Leaves: 4})
	for i := 0; i < 50; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)})
	}
	snap := tree.FlushReset()
	seen := 0
	snap.Range(model.FullKeyRange(), model.FullTimeRange(), nil, func(*model.Tuple) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("visited %d tuples, want 10", seen)
	}
	// Nil snapshot and out-of-window scans are no-ops, not panics.
	var nilSnap *FlushSnapshot
	nilSnap.Range(model.FullKeyRange(), model.FullTimeRange(), nil, func(*model.Tuple) bool { return true })
	snap.Range(model.FullKeyRange(), model.TimeRange{Lo: 1000, Hi: 2000}, nil, func(*model.Tuple) bool {
		t.Fatal("visited a tuple outside the snapshot's time window")
		return false
	})
}
