package core

import (
	"math/rand"
	"testing"

	"waterwheel/internal/model"
)

// TestSnapshotRangeMatchesTree: FlushSnapshot.Range over a swapped-out
// snapshot returns exactly what TemplateTree.Range returned for the same
// predicate before the swap — the property the async flush pipeline's
// visibility guarantee stands on.
func TestSnapshotRangeMatchesTree(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1000}, Leaves: 8})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		tree.Insert(model.Tuple{
			Key:     model.Key(rng.Intn(1001)),
			Time:    model.Timestamp(rng.Intn(1000)),
			Payload: []byte{byte(i)},
		})
	}
	queries := []struct {
		kr model.KeyRange
		tr model.TimeRange
	}{
		{model.FullKeyRange(), model.FullTimeRange()},
		{model.KeyRange{Lo: 100, Hi: 400}, model.FullTimeRange()},
		{model.FullKeyRange(), model.TimeRange{Lo: 250, Hi: 750}},
		{model.KeyRange{Lo: 300, Hi: 301}, model.TimeRange{Lo: 0, Hi: 500}},
		{model.KeyRange{Lo: 900, Hi: 100}, model.FullTimeRange()}, // invalid: Lo > Hi
	}
	collect := func(rangeFn func(model.KeyRange, model.TimeRange, *model.Filter, func(*model.Tuple) bool), kr model.KeyRange, tr model.TimeRange) []model.Tuple {
		var out []model.Tuple
		rangeFn(kr, tr, nil, func(tu *model.Tuple) bool {
			out = append(out, *tu)
			return true
		})
		return out
	}
	want := make([][]model.Tuple, len(queries))
	for i, q := range queries {
		want[i] = collect(tree.Range, q.kr, q.tr)
	}
	snap := tree.FlushReset()
	if snap == nil {
		t.Fatal("FlushReset returned nil for a non-empty tree")
	}
	for i, q := range queries {
		got := collect(snap.Range, q.kr, q.tr)
		if len(got) != len(want[i]) {
			t.Fatalf("query %d: snapshot returned %d tuples, tree returned %d", i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j].Key != want[i][j].Key || got[j].Time != want[i][j].Time {
				t.Fatalf("query %d tuple %d: snapshot %v != tree %v", i, j, got[j], want[i][j])
			}
		}
	}
	// The tree is empty post-swap while the snapshot still answers.
	if n := len(collect(tree.Range, model.FullKeyRange(), model.FullTimeRange())); n != 0 {
		t.Fatalf("tree still returns %d tuples after FlushReset", n)
	}
}

// TestSnapshotRangeEarlyStop: the visitor's false return stops the scan.
func TestSnapshotRangeEarlyStop(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 100}, Leaves: 4})
	for i := 0; i < 50; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)})
	}
	snap := tree.FlushReset()
	seen := 0
	snap.Range(model.FullKeyRange(), model.FullTimeRange(), nil, func(*model.Tuple) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("visited %d tuples, want 10", seen)
	}
	// Nil snapshot and out-of-window scans are no-ops, not panics.
	var nilSnap *FlushSnapshot
	nilSnap.Range(model.FullKeyRange(), model.FullTimeRange(), nil, func(*model.Tuple) bool { return true })
	snap.Range(model.FullKeyRange(), model.TimeRange{Lo: 1000, Hi: 2000}, nil, func(*model.Tuple) bool {
		t.Fatal("visited a tuple outside the snapshot's time window")
		return false
	})
}

// TestSnapshotIsolationUnderMutation: after FlushReset, no amount of
// mutation on the live tree — single inserts, batch merges, template
// rebuilds, further flushes — may change a single byte of the snapshot's
// columns or arena. The SoA swap hands the snapshot the leaf's buffers
// wholesale and restarts the leaf from nil, so any sharing bug (a column
// still referenced by the live leaf, an arena appended to in place) shows
// up as a diff against the pinned copy.
func TestSnapshotIsolationUnderMutation(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{
		Keys: model.KeyRange{Lo: 0, Hi: 1 << 16}, Leaves: 8,
		SkewThreshold: 0.3, CheckEvery: 16, MinPerLeaf: 1,
	})
	rng := rand.New(rand.NewSource(11))
	mkPayload := func(i int) []byte {
		p := make([]byte, 3+i%5)
		for j := range p {
			p[j] = byte(i + j)
		}
		return p
	}
	for i := 0; i < 700; i++ {
		tree.Insert(model.Tuple{
			Key:     model.Key(rng.Intn(1 << 16)),
			Time:    model.Timestamp(rng.Intn(10_000)),
			Payload: mkPayload(i),
		})
	}
	snap := tree.FlushReset()
	if snap == nil {
		t.Fatal("FlushReset returned nil")
	}
	// Deep-copy the snapshot's logical contents.
	type row struct {
		k model.Key
		ts model.Timestamp
		p string
	}
	capture := func() []row {
		var rows []row
		snap.RangeCols(model.FullKeyRange(), model.FullTimeRange(), nil, func(k model.Key, ts model.Timestamp, p []byte) bool {
			rows = append(rows, row{k, ts, string(p)})
			return true
		})
		return rows
	}
	before := capture()
	if len(before) != 700 {
		t.Fatalf("snapshot holds %d rows, want 700", len(before))
	}

	// Hammer the live tree: skewed inserts force template updates and
	// column/arena regrowth; interleave batches and more flushes.
	for round := 0; round < 5; round++ {
		batch := make([]model.Tuple, 200)
		for i := range batch {
			batch[i] = model.Tuple{
				Key:     model.Key(rng.Intn(64)), // skewed
				Time:    model.Timestamp(rng.Intn(10_000)),
				Payload: mkPayload(i * round),
			}
		}
		tree.InsertBatch(batch)
		tree.UpdateTemplate()
		for i := 0; i < 100; i++ {
			tree.Insert(model.Tuple{
				Key:     model.Key(rng.Intn(1 << 16)),
				Time:    model.Timestamp(rng.Intn(10_000)),
				Payload: mkPayload(i),
			})
		}
		tree.FlushReset() // later snapshots must not disturb this one
	}

	after := capture()
	if len(after) != len(before) {
		t.Fatalf("snapshot row count changed under live mutation: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("snapshot row %d changed under live mutation: %+v -> %+v", i, before[i], after[i])
		}
	}
}
