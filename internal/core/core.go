// Package core implements Waterwheel's primary contribution: the
// template-based B+ tree (paper §III-B, §III-C) together with the two
// baseline indexes it is evaluated against in §VI-A — a traditional
// concurrent B+ tree with latch coupling and node splits, and a
// bulk-loading B+ tree that sorts batches and builds bottom-up.
//
// All three index a stream of tuples on the key domain and answer
// key-range scans with optional time-range and predicate filtering. The
// template tree additionally supports FlushReset (retain the inner-node
// template, discard leaves) and adaptive template update driven by the
// skewness factor S(P,D) = max_i (|Ki(D)| - n)/n.
package core

import (
	"sync/atomic"

	"waterwheel/internal/model"
)

// Default structural parameters. Fanout applies to inner nodes; LeafCap is
// the target number of entries per leaf (template leaves may overflow it —
// that is what skewness detection watches for).
const (
	DefaultFanout  = 64
	DefaultLeafCap = 64
)

// Index is the common surface of the three B+ tree variants.
type Index interface {
	// Insert adds one tuple. Implementations are safe for concurrent use
	// unless documented otherwise.
	Insert(t model.Tuple)
	// Range visits every tuple with key in kr, time in tr and matching
	// filter, stopping early if fn returns false. Visit order is by key
	// within a leaf; cross-leaf order is ascending key ranges.
	Range(kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool)
	// Len returns the number of tuples currently in the index.
	Len() int
}

// Stats aggregates instrumentation counters for the insertion-time
// breakdown experiment (paper Fig. 7b). Counters are cumulative and safe
// for concurrent update.
type Stats struct {
	// Inserts counts tuples inserted.
	Inserts atomic.Int64
	// Splits counts node splits (concurrent tree only; always 0 for the
	// template tree).
	Splits atomic.Int64
	// SplitNanos accumulates wall time spent splitting nodes.
	SplitNanos atomic.Int64
	// SortNanos accumulates wall time spent sorting (bulk tree builds and
	// template updates).
	SortNanos atomic.Int64
	// BuildNanos accumulates wall time spent building index structure
	// bottom-up (bulk tree).
	BuildNanos atomic.Int64
	// TemplateUpdates counts template rebuilds (template tree only).
	TemplateUpdates atomic.Int64
	// TemplateUpdateNanos accumulates wall time spent in template updates.
	TemplateUpdateNanos atomic.Int64
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Inserts:             s.Inserts.Load(),
		Splits:              s.Splits.Load(),
		SplitNanos:          s.SplitNanos.Load(),
		SortNanos:           s.SortNanos.Load(),
		BuildNanos:          s.BuildNanos.Load(),
		TemplateUpdates:     s.TemplateUpdates.Load(),
		TemplateUpdateNanos: s.TemplateUpdateNanos.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Inserts             int64
	Splits              int64
	SplitNanos          int64
	SortNanos           int64
	BuildNanos          int64
	TemplateUpdates     int64
	TemplateUpdateNanos int64
}

// Sub returns the counter deltas s - o.
func (s StatsSnapshot) Sub(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Inserts:             s.Inserts - o.Inserts,
		Splits:              s.Splits - o.Splits,
		SplitNanos:          s.SplitNanos - o.SplitNanos,
		SortNanos:           s.SortNanos - o.SortNanos,
		BuildNanos:          s.BuildNanos - o.BuildNanos,
		TemplateUpdates:     s.TemplateUpdates - o.TemplateUpdates,
		TemplateUpdateNanos: s.TemplateUpdateNanos - o.TemplateUpdateNanos,
	}
}
