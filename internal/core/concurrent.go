package core

import (
	"sort"
	"sync"
	"time"

	"waterwheel/internal/model"
)

// ConcurrentTree is the traditional concurrent B+ tree baseline (paper
// §VI-A): identical data layout to the template tree, but leaves split on
// overflow and concurrency follows the classic Bayer-Schkolnick latch
// coupling protocol [4] — descend taking child latches and release safe
// ancestors; unsafe (full) nodes keep their ancestors latched so splits
// can propagate.
type ConcurrentTree struct {
	// rootMu guards the root pointer and acts as the virtual parent of the
	// root in the crabbing protocol.
	rootMu sync.RWMutex
	root   *cnode

	leafCap int
	fanout  int

	countMu sync.Mutex
	count   int

	stats     *Stats
	ownsStats bool
}

var _ Index = (*ConcurrentTree)(nil)

// cnode is a node of the concurrent tree. Leaves hold sorted entries;
// inner nodes hold separators and children (child i covers keys <
// keys[i]).
type cnode struct {
	mu       sync.RWMutex
	isLeaf   bool
	keys     []model.Key   // inner: separators
	children []*cnode      // inner only
	entries  []model.Tuple // leaf only, sorted by (key, time)
}

// NewConcurrentTree creates a concurrent B+ tree with the given leaf
// capacity and inner fanout (defaults apply when <= 0).
func NewConcurrentTree(leafCap, fanout int) *ConcurrentTree {
	if leafCap <= 0 {
		leafCap = DefaultLeafCap
	}
	if fanout < 3 {
		fanout = DefaultFanout
	}
	return &ConcurrentTree{
		root:      &cnode{isLeaf: true},
		leafCap:   leafCap,
		fanout:    fanout,
		stats:     &Stats{},
		ownsStats: true,
	}
}

// SetStats redirects instrumentation to a shared Stats collector.
func (t *ConcurrentTree) SetStats(s *Stats) {
	if s != nil {
		t.stats = s
		t.ownsStats = false
	}
}

// Stats returns the tree's instrumentation counters.
func (t *ConcurrentTree) Stats() *Stats { return t.stats }

func (n *cnode) childIndex(k model.Key) int {
	return sort.Search(len(n.keys), func(i int) bool { return k < n.keys[i] })
}

// full reports whether an insert into this node may require a split.
func (n *cnode) full(leafCap, fanout int) bool {
	if n.isLeaf {
		return len(n.entries) >= leafCap
	}
	return len(n.children) >= fanout
}

// Insert adds one tuple using write-latch crabbing.
func (t *ConcurrentTree) Insert(tp model.Tuple) {
	// held is the stack of latched ancestors that may need to absorb a
	// split; rootHeld tracks whether rootMu is part of that stack.
	var held []*cnode
	rootHeld := true

	t.rootMu.Lock()
	n := t.root
	n.mu.Lock()
	if !n.full(t.leafCap, t.fanout) {
		t.rootMu.Unlock()
		rootHeld = false
	}
	for !n.isLeaf {
		child := n.children[n.childIndex(tp.Key)]
		child.mu.Lock()
		if child.full(t.leafCap, t.fanout) {
			held = append(held, n)
		} else {
			// Child is safe: release every latched ancestor.
			for _, a := range held {
				a.mu.Unlock()
			}
			held = held[:0]
			n.mu.Unlock()
			if rootHeld {
				t.rootMu.Unlock()
				rootHeld = false
			}
		}
		n = child
	}

	leaf := n
	// Insert at the end of the equal-key run (sorted by key, ties in
	// arrival order): hot keys append instead of shifting their whole run.
	i := sort.Search(len(leaf.entries), func(i int) bool {
		return leaf.entries[i].Key > tp.Key
	})
	leaf.entries = append(leaf.entries, model.Tuple{})
	copy(leaf.entries[i+1:], leaf.entries[i:])
	leaf.entries[i] = tp

	if len(leaf.entries) > t.leafCap {
		t.splitUp(leaf, held, rootHeld)
	} else {
		leaf.mu.Unlock()
		for _, a := range held {
			a.mu.Unlock()
		}
		if rootHeld {
			t.rootMu.Unlock()
		}
	}

	t.countMu.Lock()
	t.count++
	t.countMu.Unlock()
	t.stats.Inserts.Add(1)
}

// splitUp splits the overflowed node and propagates separator inserts into
// the latched ancestors, releasing latches bottom-up. held is ordered
// root-most first; n and every node in held are write-latched; rootHeld
// indicates rootMu is held (so the root may be replaced).
func (t *ConcurrentTree) splitUp(n *cnode, held []*cnode, rootHeld bool) {
	start := time.Now()
	for {
		sep, right, ok := t.splitNode(n)
		if !ok {
			// Leaf holds a single key run and cannot split without breaking
			// routing invariants; let it overflow.
			n.mu.Unlock()
			for _, a := range held {
				a.mu.Unlock()
			}
			if rootHeld {
				t.rootMu.Unlock()
			}
			break
		}
		t.stats.Splits.Add(1)
		if len(held) == 0 {
			// n was the root: grow the tree. rootHeld must be true here —
			// the descent only releases rootMu when the root is safe.
			newRoot := &cnode{
				keys:     []model.Key{sep},
				children: []*cnode{n, right},
			}
			t.root = newRoot
			n.mu.Unlock()
			if rootHeld {
				t.rootMu.Unlock()
			}
			break
		}
		parent := held[len(held)-1]
		held = held[:len(held)-1]
		idx := parent.childIndex(sep)
		parent.keys = append(parent.keys, 0)
		copy(parent.keys[idx+1:], parent.keys[idx:])
		parent.keys[idx] = sep
		parent.children = append(parent.children, nil)
		copy(parent.children[idx+2:], parent.children[idx+1:])
		parent.children[idx+1] = right
		n.mu.Unlock()
		if len(parent.children) <= t.fanout {
			parent.mu.Unlock()
			for _, a := range held {
				a.mu.Unlock()
			}
			if rootHeld {
				t.rootMu.Unlock()
			}
			break
		}
		n = parent
	}
	t.stats.SplitNanos.Add(time.Since(start).Nanoseconds())
}

// splitNode divides n in half, returning the separator key and the new
// right sibling. A run of equal keys is never divided across leaves so
// key-range routing stays exact.
func (t *ConcurrentTree) splitNode(n *cnode) (model.Key, *cnode, bool) {
	if n.isLeaf {
		if n.entries[0].Key == n.entries[len(n.entries)-1].Key {
			return 0, nil, false
		}
		mid := len(n.entries) / 2
		// Move mid forward past duplicates of the key at the cut.
		for mid < len(n.entries) && n.entries[mid].Key == n.entries[mid-1].Key {
			mid++
		}
		if mid == len(n.entries) {
			// Entire right half was one key run; cut before it instead.
			mid = len(n.entries) / 2
			for mid > 1 && n.entries[mid].Key == n.entries[mid-1].Key {
				mid--
			}
		}
		right := &cnode{isLeaf: true, entries: append([]model.Tuple(nil), n.entries[mid:]...)}
		n.entries = n.entries[:mid:mid]
		return right.entries[0].Key, right, true
	}
	mid := len(n.children) / 2
	sep := n.keys[mid-1]
	right := &cnode{
		keys:     append([]model.Key(nil), n.keys[mid:]...),
		children: append([]*cnode(nil), n.children[mid:]...),
	}
	n.keys = n.keys[: mid-1 : mid-1]
	n.children = n.children[:mid:mid]
	return sep, right, true
}

// Range visits matching tuples in key order using read-latch crabbing.
func (t *ConcurrentTree) Range(kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool) {
	if !kr.IsValid() || !tr.IsValid() {
		return
	}
	t.rootMu.RLock()
	n := t.root
	n.mu.RLock()
	t.rootMu.RUnlock()
	t.rangeNode(n, kr, tr, filter, fn)
}

// rangeNode recursively scans the subtree rooted at n, which is
// read-latched on entry and released before return. It returns false when
// the visitor stopped the scan.
func (t *ConcurrentTree) rangeNode(n *cnode, kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool) bool {
	defer n.mu.RUnlock()
	if n.isLeaf {
		start := sort.Search(len(n.entries), func(j int) bool {
			return n.entries[j].Key >= kr.Lo
		})
		for j := start; j < len(n.entries); j++ {
			e := &n.entries[j]
			if e.Key > kr.Hi {
				break
			}
			if e.Time < tr.Lo || e.Time > tr.Hi || !filter.Matches(e) {
				continue
			}
			if !fn(e) {
				return false
			}
		}
		return true
	}
	lo := n.childIndex(kr.Lo)
	for i := lo; i < len(n.children); i++ {
		if i > 0 && n.keys[i-1] > kr.Hi {
			break
		}
		c := n.children[i]
		c.mu.RLock()
		if !t.rangeNode(c, kr, tr, filter, fn) {
			return false
		}
	}
	return true
}

// Len returns the number of tuples in the tree.
func (t *ConcurrentTree) Len() int {
	t.countMu.Lock()
	defer t.countMu.Unlock()
	return t.count
}

// Depth returns the tree height (1 for a lone leaf root).
func (t *ConcurrentTree) Depth() int {
	t.rootMu.RLock()
	defer t.rootMu.RUnlock()
	d := 1
	for n := t.root; !n.isLeaf; n = n.children[0] {
		d++
	}
	return d
}
