package core

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"waterwheel/internal/model"
)

func seqTuple(rng *rand.Rand, seq uint64, keyDomain int) model.Tuple {
	p := make([]byte, 8)
	binary.BigEndian.PutUint64(p, seq)
	return model.Tuple{
		Key:     model.Key(rng.Intn(keyDomain)),
		Time:    model.Timestamp(rng.Intn(10_000)),
		Payload: p,
	}
}

// TestInsertBatchSerialEquivalence is the batch path's core contract: a
// stream delivered through InsertBatch in arbitrary batch sizes produces
// the exact same scan sequences as the same stream inserted one tuple at a
// time — including the arrival order of equal keys, which the payload
// sequence numbers pin down. Dup-heavy key domains and out-of-order
// timestamps exercise the equal-key runs and leaf min/max maintenance;
// template updates fire at different points on the two trees (per-insert
// vs per-batch skew accounting) and must not break the equivalence.
func TestInsertBatchSerialEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 30; round++ {
		cfg := TemplateConfig{
			Keys:          model.KeyRange{Lo: 0, Hi: 1 << 16},
			Leaves:        8,
			SkewThreshold: 0.3,
			CheckEvery:    16,
			MinPerLeaf:    1,
		}
		serial := NewTemplateTree(cfg)
		batched := NewTemplateTree(cfg)

		// Dup-heavy on odd rounds: a tiny key domain makes every leaf one
		// long equal-key run.
		keyDomain := 1 << 16
		if round%2 == 1 {
			keyDomain = 4 + rng.Intn(12)
		}
		n := 100 + rng.Intn(900)
		stream := make([]model.Tuple, n)
		for i := range stream {
			stream[i] = seqTuple(rng, uint64(i), keyDomain)
		}

		for _, tp := range stream {
			serial.Insert(tp)
		}
		for pos := 0; pos < n; {
			sz := 1 + rng.Intn(64)
			if pos+sz > n {
				sz = n - pos
			}
			batched.InsertBatch(stream[pos : pos+sz])
			pos += sz
		}

		if serial.Len() != batched.Len() {
			t.Fatalf("round %d: serial len %d, batched len %d", round, serial.Len(), batched.Len())
		}
		queries := []struct {
			kr model.KeyRange
			tr model.TimeRange
		}{
			{model.FullKeyRange(), model.FullTimeRange()},
			{model.KeyRange{Lo: 0, Hi: model.Key(keyDomain / 2)}, model.FullTimeRange()},
			{model.FullKeyRange(), model.TimeRange{Lo: 2000, Hi: 7000}},
		}
		for qi, q := range queries {
			var got, want []model.Tuple
			serial.Range(q.kr, q.tr, nil, func(tp *model.Tuple) bool {
				want = append(want, *tp)
				return true
			})
			batched.Range(q.kr, q.tr, nil, func(tp *model.Tuple) bool {
				got = append(got, *tp)
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("round %d query %d: batched %d tuples, serial %d", round, qi, len(got), len(want))
			}
			for i := range got {
				if got[i].Key != want[i].Key || got[i].Time != want[i].Time ||
					binary.BigEndian.Uint64(got[i].Payload) != binary.BigEndian.Uint64(want[i].Payload) {
					t.Fatalf("round %d query %d position %d: batched %v(seq %d), serial %v(seq %d)",
						round, qi, i, got[i], binary.BigEndian.Uint64(got[i].Payload),
						want[i], binary.BigEndian.Uint64(want[i].Payload))
				}
			}
		}
	}
}

// TestMergeDirectionsPreserveEqualKeyOrder pins the equal-key contract on
// both column-merge directions. A run whose median insertion point falls
// in the left half of the leaf merges forward (into front slack); a run
// landing in the right half merges backward (into back slack). In both
// directions, and when the run's keys equal keys already resident, the
// batch tuples must land after the resident equal-key group with the
// run's own arrival order intact — exactly what serial insertion yields.
func TestMergeDirectionsPreserveEqualKeyOrder(t *testing.T) {
	cases := []struct {
		name    string
		resident []model.Key // inserted serially first
		run      []model.Key // delivered as one InsertBatch
	}{
		// Run at the far left: median point 0, forward merge.
		{"forward", []model.Key{500, 500, 500, 600, 600, 700}, []model.Key{10, 10, 10, 10}},
		// Run at the far right: median point n, backward merge.
		{"backward", []model.Key{500, 500, 500, 600, 600, 700}, []model.Key{900, 900, 900, 900}},
		// Run equal to a resident group near the front: forward direction
		// with the equal-key boundary exercised.
		{"forward-equal", []model.Key{500, 500, 500, 600, 600, 700, 800, 900}, []model.Key{500, 500, 500}},
		// Run equal to a resident group near the back: backward direction.
		{"backward-equal", []model.Key{100, 200, 300, 400, 700, 700, 700}, []model.Key{700, 700, 700}},
		// Straddling run: groups on both sides of the median.
		{"straddle", []model.Key{400, 400, 500, 500, 600, 600}, []model.Key{300, 400, 500, 500, 600, 900}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1 << 16}, Leaves: 2}
			serial := NewTemplateTree(cfg)
			batched := NewTemplateTree(cfg)
			seq := uint64(0)
			mk := func(k model.Key) model.Tuple {
				p := make([]byte, 8)
				binary.BigEndian.PutUint64(p, seq)
				seq++
				return model.Tuple{Key: k, Time: model.Timestamp(seq), Payload: p}
			}
			var resident, run []model.Tuple
			for _, k := range tc.resident {
				resident = append(resident, mk(k))
			}
			for _, k := range tc.run {
				run = append(run, mk(k))
			}
			for _, tp := range append(append([]model.Tuple(nil), resident...), run...) {
				serial.Insert(tp)
			}
			for _, tp := range resident {
				batched.Insert(tp)
			}
			batched.InsertBatch(run)

			var got, want []uint64
			collect := func(tree *TemplateTree, out *[]uint64) {
				tree.Range(model.FullKeyRange(), model.FullTimeRange(), nil, func(tp *model.Tuple) bool {
					*out = append(*out, binary.BigEndian.Uint64(tp.Payload))
					return true
				})
			}
			collect(serial, &want)
			collect(batched, &got)
			if len(got) != len(want) {
				t.Fatalf("batched yields %d tuples, serial %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("sequence order diverged at %d: batched %v, serial %v", i, got, want)
				}
			}
		})
	}
}

// TestInsertBatchConcurrentWithScans hammers InsertBatch from several
// goroutines while scans and template updates run — the shared-gate
// regime the per-leaf merge must survive. Run with -race.
func TestInsertBatchConcurrentWithScans(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{
		Keys:          model.KeyRange{Lo: 0, Hi: 1 << 16},
		Leaves:        8,
		SkewThreshold: 0.3,
		CheckEvery:    32,
		MinPerLeaf:    1,
	})
	const writers, batches, perBatch = 4, 50, 32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for b := 0; b < batches; b++ {
				batch := make([]model.Tuple, perBatch)
				for i := range batch {
					batch[i] = seqTuple(rng, uint64(b*perBatch+i), 1<<10)
				}
				tree.InsertBatch(batch)
			}
		}(w)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			prev := model.Key(0)
			count := 0
			tree.Range(model.FullKeyRange(), model.FullTimeRange(), nil, func(tp *model.Tuple) bool {
				if count > 0 && tp.Key < prev {
					t.Error("scan out of key order during concurrent batches")
					return false
				}
				prev = tp.Key
				count++
				return true
			})
			tree.UpdateTemplate()
		}
	}()
	wg.Wait()
	close(stop)
	if got, want := tree.Len(), writers*batches*perBatch; got != want {
		t.Fatalf("tree.Len() = %d, want %d", got, want)
	}
}
