package core

import (
	"testing"

	"waterwheel/internal/model"
)

// TestInsertBatchSteadyStateAllocs guards the SoA leaf's core promise: a
// steady-state InsertBatch performs no per-tuple heap allocations. Payload
// bytes land in the leaf arena (amortized append), keys/times/refs in the
// column buffers (amortized doubling), and the grouping scratch comes from
// a pool — so the per-tuple average must stay near zero, with a small
// tolerance for the amortized buffer growth the measurement window spans.
func TestInsertBatchSteadyStateAllocs(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{
		Keys:   model.KeyRange{Lo: 0, Hi: model.Key(1<<32 - 1)},
		Leaves: 64,
	})
	const batchSize = 256
	payload := []byte("0123456789abcdef")
	batch := make([]model.Tuple, batchSize)
	n := uint64(0)
	fill := func() {
		for i := range batch {
			batch[i] = model.Tuple{
				Key:     model.Key((n * 2654435761) % (1 << 32)),
				Time:    model.Timestamp(1000 + n),
				Payload: payload,
			}
			n++
		}
	}
	// Warm past initial column growth: leaves reach working capacity and
	// the scratch pool is populated.
	for i := 0; i < 100; i++ {
		fill()
		tree.InsertBatch(batch)
	}
	allocs := testing.AllocsPerRun(200, func() {
		fill()
		tree.InsertBatch(batch)
	})
	perTuple := allocs / batchSize
	t.Logf("InsertBatch steady state: %.2f allocs/batch, %.4f allocs/tuple", allocs, perTuple)
	if perTuple > 0.05 {
		t.Errorf("InsertBatch allocates %.4f per tuple (%.2f per %d-tuple batch), want ~0",
			perTuple, allocs, batchSize)
	}
}

// TestRangeScanAllocs guards the read side: a RangeCols scan over resident
// leaves allocates nothing — payloads are handed out as arena aliases and
// no tuple values are materialized. The Range compatibility shim is
// allowed exactly one allocation (its reused visitor tuple escaping).
func TestRangeScanAllocs(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{
		Keys:   model.KeyRange{Lo: 0, Hi: model.Key(1<<32 - 1)},
		Leaves: 16,
	})
	payload := []byte("0123456789abcdef")
	for i := uint64(0); i < 10000; i++ {
		tree.Insert(model.Tuple{
			Key:     model.Key((i * 2654435761) % (1 << 32)),
			Time:    model.Timestamp(1000 + i),
			Payload: payload,
		})
	}
	var sink int
	cols := testing.AllocsPerRun(20, func() {
		tree.RangeCols(model.FullKeyRange(), model.FullTimeRange(), nil, func(_ model.Key, _ model.Timestamp, p []byte) bool {
			sink += len(p)
			return true
		})
	})
	if cols > 0.5 {
		t.Errorf("RangeCols allocates %.2f per full scan, want 0", cols)
	}
	shim := testing.AllocsPerRun(20, func() {
		tree.Range(model.FullKeyRange(), model.FullTimeRange(), nil, func(tp *model.Tuple) bool {
			sink += len(tp.Payload)
			return true
		})
	})
	if shim > 1.5 {
		t.Errorf("Range shim allocates %.2f per full scan, want <= 1 (hoisted tuple only)", shim)
	}
	_ = sink
}
