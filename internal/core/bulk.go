package core

import (
	"sort"
	"sync"
	"time"

	"waterwheel/internal/model"
)

// BulkTree is the bulk-loading B+ tree baseline (paper §VI-A): tuples
// accumulate in an unsorted buffer and become indexed — and visible to
// queries — only when Build sorts the batch and constructs the tree
// bottom-up [15]. The paper excludes it from query-latency experiments
// precisely because of that visibility delay; Range here serves only the
// built portion.
type BulkTree struct {
	mu      sync.Mutex
	pending []model.Tuple
	built   *bnode // immutable after build
	builtN  int
	leafCap int
	fanout  int

	stats     *Stats
	ownsStats bool
}

var _ Index = (*BulkTree)(nil)

// bnode is an immutable node of a built bulk tree.
type bnode struct {
	isLeaf   bool
	keys     []model.Key
	children []*bnode
	entries  []model.Tuple
}

// NewBulkTree creates a bulk-loading tree with the given leaf capacity and
// fanout (defaults apply when <= 0).
func NewBulkTree(leafCap, fanout int) *BulkTree {
	if leafCap <= 0 {
		leafCap = DefaultLeafCap
	}
	if fanout < 2 {
		fanout = DefaultFanout
	}
	return &BulkTree{leafCap: leafCap, fanout: fanout, stats: &Stats{}, ownsStats: true}
}

// SetStats redirects instrumentation to a shared Stats collector.
func (t *BulkTree) SetStats(s *Stats) {
	if s != nil {
		t.stats = s
		t.ownsStats = false
	}
}

// Stats returns the tree's instrumentation counters.
func (t *BulkTree) Stats() *Stats { return t.stats }

// Insert buffers one tuple; it is not queryable until Build.
func (t *BulkTree) Insert(tp model.Tuple) {
	t.mu.Lock()
	t.pending = append(t.pending, tp)
	t.mu.Unlock()
	t.stats.Inserts.Add(1)
}

// Pending returns the number of buffered, not-yet-built tuples.
func (t *BulkTree) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}

// Build sorts the pending batch together with any previously built data
// and reconstructs the tree bottom-up. Returns the number of tuples now
// indexed.
func (t *BulkTree) Build() int {
	t.mu.Lock()
	defer t.mu.Unlock()

	all := t.pending
	if t.built != nil {
		merged := make([]model.Tuple, 0, t.builtN+len(all))
		collectBuilt(t.built, &merged)
		merged = append(merged, all...)
		all = merged
	}
	t.pending = nil
	if len(all) == 0 {
		return t.builtN
	}

	sortStart := time.Now()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Key != all[j].Key {
			return all[i].Key < all[j].Key
		}
		return all[i].Time < all[j].Time
	})
	t.stats.SortNanos.Add(time.Since(sortStart).Nanoseconds())

	buildStart := time.Now()
	t.built = buildBottomUp(all, t.leafCap, t.fanout)
	t.builtN = len(all)
	t.stats.BuildNanos.Add(time.Since(buildStart).Nanoseconds())
	return t.builtN
}

func collectBuilt(n *bnode, out *[]model.Tuple) {
	if n.isLeaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, c := range n.children {
		collectBuilt(c, out)
	}
}

// buildBottomUp constructs an immutable B+ tree over the sorted entries.
func buildBottomUp(sorted []model.Tuple, leafCap, fanout int) *bnode {
	if len(sorted) == 0 {
		return &bnode{isLeaf: true}
	}
	var level []*bnode
	var seps []model.Key
	for i := 0; i < len(sorted); {
		j := i + leafCap
		if j > len(sorted) {
			j = len(sorted)
		}
		// Never cut inside a run of equal keys; routing assumes a key lives
		// in exactly one leaf.
		for j < len(sorted) && sorted[j].Key == sorted[j-1].Key {
			j++
		}
		level = append(level, &bnode{isLeaf: true, entries: sorted[i:j]})
		if j < len(sorted) {
			seps = append(seps, sorted[j].Key)
		}
		i = j
	}
	for len(level) > 1 {
		var next []*bnode
		var nextSeps []model.Key
		for i := 0; i < len(level); i += fanout {
			j := i + fanout
			if j > len(level) {
				j = len(level)
			}
			n := &bnode{children: level[i:j]}
			if j-1 > i {
				n.keys = seps[i : j-1]
			}
			next = append(next, n)
			if j < len(level) {
				nextSeps = append(nextSeps, seps[j-1])
			}
		}
		level, seps = next, nextSeps
	}
	return level[0]
}

// Range visits matching tuples among the built (visible) portion.
func (t *BulkTree) Range(kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool) {
	if !kr.IsValid() || !tr.IsValid() {
		return
	}
	t.mu.Lock()
	root := t.built
	t.mu.Unlock()
	if root == nil {
		return
	}
	rangeBNode(root, kr, tr, filter, fn)
}

func rangeBNode(n *bnode, kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool) bool {
	if n.isLeaf {
		start := sort.Search(len(n.entries), func(j int) bool {
			return n.entries[j].Key >= kr.Lo
		})
		for j := start; j < len(n.entries); j++ {
			e := &n.entries[j]
			if e.Key > kr.Hi {
				break
			}
			if e.Time < tr.Lo || e.Time > tr.Hi || !filter.Matches(e) {
				continue
			}
			if !fn(e) {
				return false
			}
		}
		return true
	}
	lo := sort.Search(len(n.keys), func(i int) bool { return kr.Lo < n.keys[i] })
	for i := lo; i < len(n.children); i++ {
		if i > 0 && n.keys[i-1] > kr.Hi {
			break
		}
		if !rangeBNode(n.children[i], kr, tr, filter, fn) {
			return false
		}
	}
	return true
}

// Len returns the number of built (visible) tuples.
func (t *BulkTree) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.builtN
}
