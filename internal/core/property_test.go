package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"waterwheel/internal/model"
)

// refIndex is a trivially correct reference: a slice scanned linearly.
type refIndex struct {
	tuples []model.Tuple
}

func (r *refIndex) Insert(t model.Tuple) { r.tuples = append(r.tuples, t) }

func (r *refIndex) query(kr model.KeyRange, tr model.TimeRange, f *model.Filter) []model.Tuple {
	var out []model.Tuple
	for i := range r.tuples {
		t := &r.tuples[i]
		if kr.Contains(t.Key) && tr.Contains(t.Time) && f.Matches(t) {
			out = append(out, *t)
		}
	}
	sortTuples(out)
	return out
}

func sortTuples(ts []model.Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Key != ts[j].Key {
			return ts[i].Key < ts[j].Key
		}
		return ts[i].Time < ts[j].Time
	})
}

func sameTuples(t *testing.T, name string, got, want []model.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d tuples, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || got[i].Time != want[i].Time {
			t.Fatalf("%s: tuple %d mismatch: %v vs %v", name, i, got[i], want[i])
		}
	}
}

// TestAllVariantsAgreeWithReference cross-checks the three tree variants
// against the reference on randomized workloads and queries.
func TestAllVariantsAgreeWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		ref := &refIndex{}
		tmpl := NewTemplateTree(TemplateConfig{
			Keys: model.KeyRange{Lo: 0, Hi: 1 << 16}, Leaves: 16,
			CheckEvery: 128, SkewThreshold: 0.8, MinPerLeaf: 2,
		})
		conc := NewConcurrentTree(8, 8)
		bulk := NewBulkTree(8, 8)

		n := 200 + rng.Intn(800)
		for i := 0; i < n; i++ {
			tp := model.Tuple{
				Key:  model.Key(rng.Intn(1 << 16)),
				Time: model.Timestamp(rng.Intn(10000)),
			}
			ref.Insert(tp)
			tmpl.Insert(tp)
			conc.Insert(tp)
			bulk.Insert(tp)
		}
		bulk.Build()
		if round%3 == 0 {
			tmpl.UpdateTemplate() // updates must not change results
		}

		for q := 0; q < 10; q++ {
			a, b := model.Key(rng.Intn(1<<16)), model.Key(rng.Intn(1<<16))
			if a > b {
				a, b = b, a
			}
			c, d := model.Timestamp(rng.Intn(10000)), model.Timestamp(rng.Intn(10000))
			if c > d {
				c, d = d, c
			}
			kr, tr := model.KeyRange{Lo: a, Hi: b}, model.TimeRange{Lo: c, Hi: d}
			var filter *model.Filter
			if q%2 == 0 {
				filter = model.KeyMod(3, uint64(q%3))
			}
			want := ref.query(kr, tr, filter)
			for name, idx := range map[string]Index{"template": tmpl, "concurrent": conc, "bulk": bulk} {
				got := collect(idx, kr, tr, filter)
				sortTuples(got)
				sameTuples(t, name, got, want)
			}
		}
	}
}

// TestTemplateRangeSortedInvariant: results of Range are non-decreasing in
// key for arbitrary inputs.
func TestTemplateRangeSortedInvariant(t *testing.T) {
	f := func(keys []uint16, lo, hi uint16) bool {
		tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1 << 16}, Leaves: 8})
		for i, k := range keys {
			tree.Insert(model.Tuple{Key: model.Key(k), Time: model.Timestamp(i)})
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		prev := model.Key(0)
		okOrder := true
		n := 0
		tree.Range(model.KeyRange{Lo: model.Key(lo), Hi: model.Key(hi)}, model.FullTimeRange(), nil,
			func(tp *model.Tuple) bool {
				if n > 0 && tp.Key < prev {
					okOrder = false
				}
				prev = tp.Key
				n++
				return true
			})
		// Count check against direct filter.
		want := 0
		for _, k := range keys {
			if k >= lo && k <= hi {
				want++
			}
		}
		return okOrder && n == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFlushThenRebuildEquivalence: a flush snapshot plus post-flush inserts
// must together equal the full inserted set.
func TestFlushThenRebuildEquivalence(t *testing.T) {
	f := func(firstKeys, secondKeys []uint16) bool {
		tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1 << 16}, Leaves: 8})
		for i, k := range firstKeys {
			tree.Insert(model.Tuple{Key: model.Key(k), Time: model.Timestamp(i)})
		}
		snap := tree.FlushReset()
		snapCount := 0
		if snap != nil {
			snapCount = snap.Count
		}
		for i, k := range secondKeys {
			tree.Insert(model.Tuple{Key: model.Key(k), Time: model.Timestamp(i)})
		}
		return snapCount == len(firstKeys) && tree.Len() == len(secondKeys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSkewnessProperties: skewness is 0 for perfectly even data and large
// for piled data, and never negative.
func TestSkewnessProperties(t *testing.T) {
	tree := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 16}, Leaves: 4, CheckEvery: 1 << 30})
	// Partition is [0,4),[4,8),[8,12),[12,16]; 2 tuples per leaf.
	for _, k := range []model.Key{0, 1, 4, 5, 8, 9, 12, 13} {
		tree.Insert(model.Tuple{Key: k, Time: 0})
	}
	if s := tree.Skewness(); s != 0 {
		t.Errorf("even data skewness = %f, want 0", s)
	}
	tree2 := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 16}, Leaves: 4, CheckEvery: 1 << 30})
	for i := 0; i < 8; i++ {
		tree2.Insert(model.Tuple{Key: 1, Time: 0})
	}
	// All in one of 4 leaves: max=8, mean=2, S=(8-2)/2=3.
	if s := tree2.Skewness(); s != 3 {
		t.Errorf("piled data skewness = %f, want 3", s)
	}
	empty := NewTemplateTree(TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 16}, Leaves: 4})
	if s := empty.Skewness(); s != 0 {
		t.Errorf("empty skewness = %f, want 0", s)
	}
}

// TestBoundariesFromSorted checks Equation 3's even division and the
// duplicate-run rule.
func TestBoundariesFromSorted(t *testing.T) {
	keys := make([]model.Key, 100)
	for i := range keys {
		keys[i] = model.Key(i)
	}
	b := boundariesFromSorted(keys, 4)
	if len(b) != 3 || b[0] != 25 || b[1] != 50 || b[2] != 75 {
		t.Errorf("bounds = %v, want [25 50 75]", b)
	}
	if b := boundariesFromSorted(nil, 4); b != nil {
		t.Errorf("empty keys should give nil bounds, got %v", b)
	}
	if b := boundariesFromSorted(keys, 1); b != nil {
		t.Errorf("single leaf should give nil bounds, got %v", b)
	}
	// All-equal keys: bounds collapse to the same key; leaves may be empty
	// but routing must stay consistent (covered by duplicate-key test).
	same := []model.Key{9, 9, 9, 9}
	b = boundariesFromSorted(same, 3)
	for _, x := range b {
		if x != 9 {
			t.Errorf("duplicate-run bound = %v", b)
		}
	}
}

func TestEvenBoundariesFullDomain(t *testing.T) {
	b := evenBoundaries(model.FullKeyRange(), 8)
	if len(b) != 7 {
		t.Fatalf("got %d bounds", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing: %v", b)
		}
	}
}
