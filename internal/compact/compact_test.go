package compact

import (
	"testing"

	"waterwheel/internal/chunk"
	"waterwheel/internal/core"
	"waterwheel/internal/dfs"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
)

// buildChunk flushes n tuples in [t0, t0+span) through a template tree
// into a v2 chunk with pre-aggregates, writes it to fs, and registers it.
func buildChunk(t *testing.T, fs *dfs.FS, ms *meta.Server, path string, t0, span int64, n int) meta.ChunkInfo {
	t.Helper()
	tree := core.NewTemplateTree(core.TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1 << 16}, Leaves: 8})
	tuples := make([]model.Tuple, 0, n)
	for i := 0; i < n; i++ {
		payload := make([]byte, 8)
		payload[7] = byte(i)
		tuples = append(tuples, model.Tuple{
			Key:     model.Key(i * 37 % (1 << 16)),
			Time:    model.Timestamp(t0 + int64(i)*span/int64(n)),
			Payload: payload,
		})
	}
	tree.InsertBatch(tuples)
	data, cm, err := chunk.Build(tree.FlushReset(), chunk.BuildOptions{BucketMillis: span / 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(path, data); err != nil {
		t.Fatal(err)
	}
	return ms.RegisterChunk(meta.ChunkInfo{
		Path:      path,
		Region:    model.Region{Keys: cm.Keys, Times: model.TimeRange{Lo: cm.MinTime, Hi: cm.MaxTime}},
		Count:     cm.Count,
		Size:      cm.Size,
		HeaderLen: cm.HeaderLen,
		Format:    cm.Format,
		Agg:       cm.Agg,
	})
}

func TestTickDemotesByAge(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 1, Replication: 1})
	ms := meta.NewServer(1)
	old := buildChunk(t, fs, ms, "chunks/old", 0, 1000, 64)
	buildChunk(t, fs, ms, "chunks/new", 100_000, 1000, 64)
	cp := New(Config{WarmAfterMillis: 50_000, ColdAfterMillis: 200_000, MinInputs: 2}, fs, ms, nil, nil)
	demoted, merged := cp.Tick()
	if demoted != 1 || merged != 0 {
		t.Fatalf("demoted=%d merged=%d, want 1/0", demoted, merged)
	}
	if got, _ := ms.Chunk(old.ID); got.Tier != meta.TierWarm {
		t.Fatalf("old chunk tier = %d, want warm", got.Tier)
	}
	if counts := ms.TierCounts(); counts != [3]int{1, 1, 0} {
		t.Fatalf("tier counts = %v", counts)
	}
}

func TestTickMergesColdChunks(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 1, Replication: 1})
	ms := meta.NewServer(1)
	a := buildChunk(t, fs, ms, "chunks/a", 0, 1000, 64)
	b := buildChunk(t, fs, ms, "chunks/b", 1000, 1000, 64)
	// A fresh chunk far in the future ages the first two past cold.
	buildChunk(t, fs, ms, "chunks/now", 10_000_000, 1000, 8)
	var retired []meta.ChunkInfo
	cp := New(Config{WarmAfterMillis: 1000, ColdAfterMillis: 2000, MinInputs: 2},
		fs, ms, nil, func(infos []meta.ChunkInfo) { retired = append(retired, infos...) })
	_, merged := cp.Tick()
	if merged != 1 {
		t.Fatalf("merged = %d, want 1", merged)
	}
	if len(retired) != 2 {
		t.Fatalf("retired %d inputs, want 2", len(retired))
	}
	for _, ci := range retired {
		if ci.ID != a.ID && ci.ID != b.ID {
			t.Fatalf("unexpected retired chunk %d", ci.ID)
		}
	}
	// The merged chunk is registered, downsampled, cold, and covers the
	// union of its inputs.
	var out meta.ChunkInfo
	found := 0
	for _, ci := range ms.ChunksFor(model.FullRegion()) {
		if ci.Downsampled {
			out = ci
			found++
		}
	}
	if found != 1 {
		t.Fatalf("downsampled chunks registered = %d, want 1", found)
	}
	if out.Tier != meta.TierCold {
		t.Fatalf("output tier = %d, want cold", out.Tier)
	}
	if out.Region.Times.Lo > a.Region.Times.Lo || out.Region.Times.Hi < b.Region.Times.Hi {
		t.Fatalf("output region %v does not cover inputs %v+%v", out.Region, a.Region, b.Region)
	}
	// Its rows parse as downsampled payloads and fold to the input count.
	data, err := fs.Read(out.Path)
	if err != nil {
		t.Fatal(err)
	}
	h, err := chunk.ParseHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if h.HasAgg {
		t.Fatal("downsampled chunk must not carry a pre-aggregate block")
	}
	var total uint32
	for li := 0; li < h.Leaves; li++ {
		lf := h.Dir[li]
		if lf.Count == 0 {
			continue
		}
		body := data[lf.Offset : lf.Offset+lf.Length]
		rows, err := h.DecodeLeaf(li, body)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rows {
			bkt, ok := chunk.ParseDownsampledPayload(row.Payload)
			if !ok {
				t.Fatalf("row payload not downsampled: %d bytes", len(row.Payload))
			}
			total += bkt.Count
		}
	}
	if want := uint32(a.Count + b.Count); total != want {
		t.Fatalf("downsampled counts fold to %d, want %d", total, want)
	}
	// A second tick finds nothing mergeable (single downsampled chunk).
	if _, merged := cp.Tick(); merged != 0 {
		t.Fatalf("re-tick merged %d", merged)
	}
}

func TestTickDisabledIsNoop(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 1, Replication: 1})
	ms := meta.NewServer(1)
	buildChunk(t, fs, ms, "chunks/a", 0, 1000, 16)
	cp := New(Config{}, fs, ms, nil, nil)
	if d, m := cp.Tick(); d != 0 || m != 0 {
		t.Fatalf("disabled compactor did work: %d/%d", d, m)
	}
}
