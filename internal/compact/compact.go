// Package compact implements hierarchical time tiering over flushed
// chunks. A background compactor demotes chunks through hot → warm →
// cold tiers as they age behind the newest registered data, then merges
// groups of cold chunks into larger downsampled chunks: each per-leaf
// pre-aggregate bucket of an input becomes one synthetic row of the
// output (chunk.AppendDownsampledPayload), so coarse historical queries
// keep working at bucket resolution while the raw inputs are retired.
//
// The swap is atomic in metadata (meta.Server.ReplaceChunks) and the
// input files are retired through the caller-supplied retire hook, which
// defers file deletion until in-flight queries drain — a query planned
// against an input chunk either finds its bytes still on the DFS or is
// redispatched after a typed retirement error, never a raw read fault.
package compact

import (
	"fmt"
	"sort"
	"sync/atomic"

	"waterwheel/internal/chunk"
	"waterwheel/internal/core"
	"waterwheel/internal/dfs"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/telemetry"
)

// Config tunes the compactor.
type Config struct {
	// WarmAfterMillis demotes a chunk to the warm tier once its max time
	// lags the newest registered data by this much. 0 disables warm
	// demotion.
	WarmAfterMillis int64
	// ColdAfterMillis demotes to cold (and makes the chunk a compaction
	// candidate). 0 disables cold demotion — and with it, compaction.
	ColdAfterMillis int64
	// MinInputs is the minimum number of cold chunks in one (server,
	// day-bucket) group worth merging. Default 2.
	MinInputs int
	// Leaves is the leaf count of compacted output chunks. Default 32.
	Leaves int
	// Build tunes output chunk serialization. Format is forced to v2 and
	// the pre-aggregate block is disabled: downsampled rows ARE
	// aggregates, and re-aggregating them field-wise would double-count.
	Build chunk.BuildOptions
}

func (c *Config) fill() {
	if c.MinInputs <= 0 {
		c.MinInputs = 2
	}
	if c.Leaves <= 0 {
		c.Leaves = 32
	}
}

// Metrics is the compactor's telemetry set.
type Metrics struct {
	// Demotions counts tier demotions (hot→warm, warm→cold).
	Demotions *telemetry.Counter
	// Runs counts completed compaction merges.
	Runs *telemetry.Counter
	// InputChunks counts chunks consumed by merges.
	InputChunks *telemetry.Counter
	// InputBytes / OutputBytes measure the size ratio of compaction.
	InputBytes  *telemetry.Counter
	OutputBytes *telemetry.Counter
	// Errors counts failed merge attempts (inputs stay registered).
	Errors *telemetry.Counter
}

// NewMetrics registers the compaction metric set on r (nil r keeps the
// metrics private).
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		r = telemetry.NewRegistry()
	}
	return &Metrics{
		Demotions:   r.Counter("waterwheel_tier_demotions_total", "chunk tier demotions by age (hot→warm, warm→cold)"),
		Runs:        r.Counter("waterwheel_compactions_total", "completed cold-tier compaction merges"),
		InputChunks: r.Counter("waterwheel_compaction_input_chunks_total", "chunks consumed by compaction merges"),
		InputBytes:  r.Counter("waterwheel_compaction_input_bytes_total", "bytes of chunks consumed by compaction"),
		OutputBytes: r.Counter("waterwheel_compaction_output_bytes_total", "bytes of downsampled chunks written by compaction"),
		Errors:      r.Counter("waterwheel_compaction_errors_total", "failed compaction merge attempts"),
	}
}

// Compactor demotes aging chunks and merges cold ones into downsampled
// chunks. Drive it from a ticker (cluster background loop) or call Tick
// directly (tests, manual compaction).
type Compactor struct {
	cfg    Config
	fs     *dfs.FS
	ms     *meta.Server
	m      *Metrics
	retire func([]meta.ChunkInfo)
	seq    atomic.Uint64
}

// New creates a compactor. retire receives the input chunks of every
// successful merge after their metadata is gone; it owns file deletion
// (nil means delete immediately — tests only).
func New(cfg Config, fs *dfs.FS, ms *meta.Server, m *Metrics, retire func([]meta.ChunkInfo)) *Compactor {
	cfg.fill()
	if m == nil {
		m = NewMetrics(nil)
	}
	cp := &Compactor{cfg: cfg, fs: fs, ms: ms, m: m, retire: retire}
	if cp.retire == nil {
		cp.retire = func(infos []meta.ChunkInfo) {
			for _, ci := range infos {
				cp.fs.Delete(ci.Path)
			}
		}
	}
	return cp
}

// Enabled reports whether any tier-aging knob is set; a disabled
// compactor's Tick is a no-op, so untiered deployments are unperturbed.
func (cp *Compactor) Enabled() bool {
	return cp.cfg.WarmAfterMillis > 0 || cp.cfg.ColdAfterMillis > 0
}

// Tick runs one demote-then-merge pass and reports how many chunks were
// demoted and how many merges completed. The age clock is the max
// registered data time, not the wall clock, so tiering follows the
// stream's own notion of "now".
func (cp *Compactor) Tick() (demoted, merged int) {
	if !cp.Enabled() {
		return 0, 0
	}
	clock := cp.ms.MaxTime()
	if clock == 0 {
		return 0, 0
	}
	all := cp.ms.ChunksFor(model.FullRegion())
	for i := range all {
		ci := &all[i]
		want := ci.Tier
		age := int64(clock) - int64(ci.Region.Times.Hi)
		if cp.cfg.ColdAfterMillis > 0 && age >= cp.cfg.ColdAfterMillis {
			want = meta.TierCold
		} else if cp.cfg.WarmAfterMillis > 0 && age >= cp.cfg.WarmAfterMillis && want < meta.TierWarm {
			want = meta.TierWarm
		}
		if want > ci.Tier && cp.ms.SetTier(ci.ID, want) {
			ci.Tier = want
			demoted++
			cp.m.Demotions.Inc()
		}
	}

	// Group cold v2 chunks by (producing server, day bucket) so merges
	// stay local in both placement and time.
	type gkey struct {
		server int
		day    int64
	}
	groups := make(map[gkey][]meta.ChunkInfo)
	for _, ci := range all {
		if ci.Tier != meta.TierCold || ci.Downsampled || ci.Format != chunk.FormatV2 {
			continue
		}
		k := gkey{ci.Server, floorDiv(int64(ci.Region.Times.Lo), meta.DayMillis)}
		groups[k] = append(groups[k], ci)
	}
	keys := make([]gkey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].server != keys[j].server {
			return keys[i].server < keys[j].server
		}
		return keys[i].day < keys[j].day
	})
	for _, k := range keys {
		g := groups[k]
		if len(g) < cp.cfg.MinInputs {
			continue
		}
		if err := cp.merge(k.server, k.day, g); err != nil {
			cp.m.Errors.Inc()
			continue
		}
		merged++
	}
	return demoted, merged
}

// merge compacts one group of cold chunks into a single downsampled
// chunk and swaps it into metadata atomically. Inputs without usable
// pre-aggregates are left out of the merge (they stay registered).
func (cp *Compactor) merge(server int, day int64, g []meta.ChunkInfo) error {
	var (
		ins     []model.ChunkID
		used    []meta.ChunkInfo
		tuples  []model.Tuple
		region  model.Region
		haveR   bool
		inBytes int64
	)
	for _, ci := range g {
		hb, _, err := cp.fs.ReadAt(ci.Path, 0, int64(ci.HeaderLen), ci.Server)
		if err != nil {
			return fmt.Errorf("compact: read header of chunk %d: %w", ci.ID, err)
		}
		h, err := chunk.ParseHeader(hb)
		if err != nil {
			return fmt.Errorf("compact: parse header of chunk %d: %w", ci.ID, err)
		}
		if !h.HasAgg || len(h.LeafKeys) != h.Leaves || len(h.LeafAggs) != h.Leaves {
			// No pre-aggregates to downsample into (ablation build, or
			// field mismatch); skip this input but keep merging the rest.
			continue
		}
		for li := 0; li < h.Leaves; li++ {
			if h.Dir[li].Count == 0 {
				continue
			}
			la := h.LeafAggs[li]
			for b, bucket := range la.Buckets {
				if bucket.Count == 0 {
					continue
				}
				t := model.Tuple{
					Key:     h.LeafKeys[li].Lo,
					Time:    model.Timestamp(la.First + int64(b)*la.Width),
					Payload: chunk.AppendDownsampledPayload(nil, bucket),
				}
				tuples = append(tuples, t)
				region, haveR = growRegion(region, haveR, t), true
			}
		}
		// Register the output under the union of the input regions (not
		// just the synthetic-row bounding box) so R-tree candidacy stays a
		// superset of what the raw inputs would have matched.
		if haveR {
			region = unionRegion(region, ci.Region)
		} else {
			region, haveR = ci.Region, true
		}
		ins = append(ins, ci.ID)
		used = append(used, ci)
		inBytes += ci.Size
	}
	if len(used) < cp.cfg.MinInputs || len(tuples) == 0 {
		return nil // nothing worth merging; not an error
	}

	tree := core.NewTemplateTree(core.TemplateConfig{
		Keys:   region.Keys,
		Leaves: cp.cfg.Leaves,
	})
	tree.InsertBatch(tuples)
	snap := tree.FlushReset()
	if snap == nil {
		return nil
	}
	opts := cp.cfg.Build
	opts.Format = chunk.FormatV2
	opts.DisableAgg = true
	data, cm, err := chunk.Build(snap, opts)
	if err != nil {
		return fmt.Errorf("compact: build downsampled chunk: %w", err)
	}
	path := fmt.Sprintf("chunks/compact-is%d-d%d-%d", server, day, cp.seq.Add(1))
	if err := cp.fs.Write(path, data); err != nil {
		return fmt.Errorf("compact: write %s: %w", path, err)
	}
	out := meta.ChunkInfo{
		Path:        path,
		Region:      region,
		Count:       cm.Count,
		Size:        cm.Size,
		HeaderLen:   cm.HeaderLen,
		Server:      server,
		Format:      cm.Format,
		Tier:        meta.TierCold,
		Downsampled: true,
	}
	_, dropped, ok := cp.ms.ReplaceChunks([]meta.ChunkInfo{out}, ins)
	if !ok {
		// Lost a race with retention: some input vanished from metadata.
		// Abandon the output file; nothing was swapped.
		cp.fs.Delete(path)
		return nil
	}
	cp.m.Runs.Inc()
	cp.m.InputChunks.Add(int64(len(used)))
	cp.m.InputBytes.Add(inBytes)
	cp.m.OutputBytes.Add(cm.Size)
	cp.retire(dropped)
	return nil
}

// growRegion extends r to cover tuple t; with have false it starts a
// fresh region at t's point.
func growRegion(r model.Region, have bool, t model.Tuple) model.Region {
	if !have {
		return model.Region{
			Keys:  model.KeyRange{Lo: t.Key, Hi: t.Key},
			Times: model.TimeRange{Lo: t.Time, Hi: t.Time},
		}
	}
	if t.Key < r.Keys.Lo {
		r.Keys.Lo = t.Key
	}
	if t.Key > r.Keys.Hi {
		r.Keys.Hi = t.Key
	}
	if t.Time < r.Times.Lo {
		r.Times.Lo = t.Time
	}
	if t.Time > r.Times.Hi {
		r.Times.Hi = t.Time
	}
	return r
}

func unionRegion(a, b model.Region) model.Region {
	if b.Keys.Lo < a.Keys.Lo {
		a.Keys.Lo = b.Keys.Lo
	}
	if b.Keys.Hi > a.Keys.Hi {
		a.Keys.Hi = b.Keys.Hi
	}
	if b.Times.Lo < a.Times.Lo {
		a.Times.Lo = b.Times.Lo
	}
	if b.Times.Hi > a.Times.Hi {
		a.Times.Hi = b.Times.Hi
	}
	return a
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
