package bench

import (
	"time"

	"waterwheel/internal/dfs"
	"waterwheel/internal/ingest"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/stats"
)

// runFlushPipe contrasts the asynchronous flush pipeline against the
// synchronous baseline on single-goroutine insert tail latency. In sync
// mode the threshold-crossing Insert builds the chunk and writes it to
// the DFS inline; in async mode it only swaps the leaf layer and hands
// the immutable snapshot to the background flusher. The DFS models a
// slow write path so the inline cost the pipeline removes dominates the
// sync tail; the flush queue is sized to absorb the whole run so the
// table reports hot-path cost, not DFS bandwidth (backpressure stays 0).
func runFlushPipe(opt Options) (*Report, error) {
	n := opt.n(100_000)
	const chunkBytes = 64 << 10
	rep := &Report{
		ID:     "flushpipe",
		Title:  "Async flush pipeline: insert tail latency vs sync baseline",
		Header: []string{"mode", "inserts", "flushes", "backpressure", "wall", "mean", "p99.9", "max"},
		Notes: []string{
			"DFS write bandwidth modeled at 2 MiB/s; queue sized to absorb the run",
			"sync = chunk build + DFS write inline on the inserting goroutine",
		},
	}
	for _, mode := range []struct {
		name string
		sync bool
	}{{"async", false}, {"sync", true}} {
		fs := dfs.New(dfs.Config{
			Nodes: 3, Replication: 2, Seed: opt.Seed,
			Latency: dfs.LatencyModel{WriteBytesPerSec: 2 << 20},
		})
		ms := meta.NewServer(1)
		srv := ingest.NewServer(ingest.Config{
			ID:                  0,
			ChunkBytes:          chunkBytes,
			Leaves:              64,
			SyncFlush:           mode.sync,
			FlushQueueDepth:     n*80/chunkBytes + 4,
			SideThresholdMillis: -1,
		}, fs, ms, 0)
		rec := stats.NewRecorder()
		payload := make([]byte, 64)
		start := time.Now()
		for i := 0; i < n; i++ {
			t0 := time.Now()
			srv.Insert(model.Tuple{
				Key:     model.Key(uint64(i) * 2654435761),
				Time:    model.Timestamp(1000 + i),
				Payload: payload,
			})
			rec.Record(time.Since(t0))
		}
		wall := time.Since(start)
		srv.DrainFlushes()
		st := srv.Stats()
		rep.Add(mode.name, n, st.Flushes.Load(), st.Backpressure.Load(),
			wall.Round(time.Millisecond).String(),
			rec.Mean().String(), rec.Percentile(99.9).String(), rec.Max().String())
		opt.logf("flushpipe %s: max=%v p99.9=%v backpressure=%d",
			mode.name, rec.Max(), rec.Percentile(99.9), st.Backpressure.Load())
		srv.Close()
	}
	return rep, nil
}

func init() {
	register("flushpipe", runFlushPipe)
}
