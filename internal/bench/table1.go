package bench

import (
	"time"

	"waterwheel/internal/model"
	"waterwheel/internal/stats"
	"waterwheel/internal/workload"
)

// Table1: the capability matrix of the paper's introduction — key-range
// query efficiency, time-range query efficiency, and insertion rate for
// the three systems. "Efficient" is decided empirically on *bytes
// inspected*: a selective range query must fetch at most a tenth of what
// a full scan fetches, i.e., an index on that dimension actually avoids
// reading data. (Wall time is a poor criterion here: returning 1% of the
// tuples is cheaper than returning all of them even with zero pruning.)
func runTable1(opt Options) (*Report, error) {
	n := opt.n(100_000)
	rep := &Report{
		ID:     "table1",
		Title:  "Capability matrix (paper Table I)",
		Header: []string{"system", "key range", "time range", "insertion rate"},
		Notes: []string{
			"check mark = selective range query fetches <=1/10 of a full scan's bytes (the dimension is indexed)",
			"paper Table I: HBase/levelDB key-only; Druid/Gorilla/BTrDb time-only; Waterwheel both + high rate",
		},
	}
	stores := newStores(opt.Seed, false, 256<<10, n/10)
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	rate := n / 90
	if rate < 100 {
		rate = 100
	}
	g := newDatasetGenerator("network", opt.Seed, rate)
	tuples := pregenerate(g, n)
	span := g.KeySpan()

	for _, name := range storeOrder {
		s := stores[name]
		start := time.Now()
		for i := range tuples {
			s.Insert(tuples[i])
		}
		ingestRate := stats.Rate(int64(n), time.Since(start))
		s.Flush()
		now := g.Now()

		qg := workload.NewQueryGen(span, opt.Seed)
		// Average over several drawn ranges: with heavy-tailed keys a single
		// random range can land on the hottest subnet and misrepresent the
		// typical selective query.
		byteCost := func(mk func() model.Query) int64 {
			const reps = 9
			var total int64
			for r := 0; r < reps; r++ {
				res, err := s.Query(mk())
				if err != nil {
					return 1 << 62
				}
				total += res.BytesRead
			}
			return total / reps
		}
		full := byteCost(func() model.Query {
			return model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()}
		})
		keySel := byteCost(func() model.Query {
			return model.Query{Keys: qg.KeyRange(0.01), Times: model.FullTimeRange()}
		})
		timeSel := byteCost(func() model.Query {
			return model.Query{Keys: model.FullKeyRange(), Times: workload.Recent(now, 1000)}
		})

		mark := func(selective, full int64) string {
			if selective*10 < full {
				return "yes"
			}
			return "no"
		}
		rep.Add(name, mark(keySel, full), mark(timeSel, full), stats.HumanRate(ingestRate))
		opt.logf("table1 %s done", name)
	}
	return rep, nil
}

func init() {
	register("table1", runTable1)
}
