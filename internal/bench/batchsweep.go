package bench

import (
	"fmt"
	"os"

	"time"

	"waterwheel/internal/cluster"
	"waterwheel/internal/model"
	"waterwheel/internal/stats"
	"waterwheel/internal/telemetry"
	"waterwheel/internal/workload"
)

// batchSizes is the sweep of client-side insert batch sizes; mirrors the
// BenchmarkInsertBatchThroughput legs so `wwbench -experiment batchsweep`
// reproduces the EXPERIMENTS.md table without the Go test harness.
var batchSizes = []int{1, 16, 64, 256, 1024}

// runBatchSweep measures end-to-end ingest throughput of the vectorized
// batch pipeline (DESIGN.md §13) at increasing client batch sizes: the
// same T-Drive stream pushed through Cluster.InsertBatch, once against an
// in-memory WAL under the default ack-on-write policy and once against a
// disk WAL under ack-on-fsync, where each batch must park on exactly one
// group-commit fsync cohort. The fsyncs/batch column asserts that
// contract; the ack-on-fsync column is where batching buys its largest
// factor (one fsync latency amortized over the whole batch).
func runBatchSweep(opt Options) (*Report, error) {
	sizes := batchSizes
	if opt.Batch > 1 {
		sizes = []int{opt.Batch}
	}
	n := opt.n(100_000)
	// The fsync leg costs one fsync per batch; at batch=1 that is one
	// fsync per tuple, so it runs on a smaller stream.
	nFsync := opt.n(2_000)

	rep := &Report{
		ID:     "batchsweep",
		Title:  "Batch ingest throughput vs client batch size (tuples/s)",
		Header: []string{"batch", "ack-on-write", "ack-on-fsync", "fsyncs/batch"},
		Notes: []string{
			fmt.Sprintf("ack-on-write stream %d tuples (in-memory WAL); ack-on-fsync stream %d tuples (disk WAL)", n, nFsync),
			"one indexing server per node: every batch is one WAL append and, under ack-on-fsync, one fsync cohort",
			"batch=1 is the per-tuple path: a single client pays a full group-commit round per tuple",
		},
	}

	g := workload.NewTDrive(workload.TDriveConfig{Seed: opt.Seed})
	tuples := pregenerate(g, n)

	for _, size := range sizes {
		memRate, _, err := sweepLeg(cluster.Config{
			IndexServersPerNode: 1,
			ChunkBytes:          256 << 20,
			Seed:                opt.Seed,
		}, tuples[:n], size)
		if err != nil {
			return nil, err
		}

		dir, err := os.MkdirTemp("", "wwbatchsweep")
		if err != nil {
			return nil, err
		}
		fsRate, fsyncsPerBatch, err := sweepLeg(cluster.Config{
			IndexServersPerNode: 1,
			ChunkBytes:          256 << 20,
			Seed:                opt.Seed,
			DataDir:             dir,
			Durability:          "ack-on-fsync",
			Telemetry:           telemetry.NewRegistry(),
		}, tuples[:min(nFsync, n)], size)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}

		rep.Add(size,
			stats.HumanRate(memRate),
			stats.HumanRate(fsRate),
			fmt.Sprintf("%.2f", fsyncsPerBatch))
		opt.logf("batchsweep batch=%d done", size)
	}
	return rep, nil
}

// sweepLeg streams the tuples into a fresh cluster in batches of the
// given size and returns the ack throughput plus the observed WAL
// fsyncs per batch (0 for in-memory WALs, which never fsync).
func sweepLeg(cfg cluster.Config, tuples []model.Tuple, size int) (rate float64, fsyncsPerBatch float64, err error) {
	c := cluster.New(cfg)
	c.Start()
	defer c.Stop()

	batches := 0
	start := time.Now()
	for pos := 0; pos < len(tuples); pos += size {
		end := pos + size
		if end > len(tuples) {
			end = len(tuples)
		}
		if _, err := c.InsertBatch(tuples[pos:end]); err != nil {
			return 0, 0, err
		}
		batches++
	}
	elapsed := time.Since(start)

	var fsyncs float64
	for _, m := range c.Telemetry().Snapshot() {
		if m.Name == "waterwheel_wal_fsyncs_total" {
			fsyncs = m.Value
		}
	}
	if batches > 0 {
		fsyncsPerBatch = fsyncs / float64(batches)
	}
	return stats.Rate(int64(len(tuples)), elapsed), fsyncsPerBatch, nil
}

func init() {
	register("batchsweep", runBatchSweep)
}
