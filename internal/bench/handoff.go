package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"waterwheel/internal/cluster"
	"waterwheel/internal/model"
	"waterwheel/internal/telemetry"
)

// runHandoff measures elastic live region migration under sustained
// ingest: a feeder keeps inserting while the harness flips slot ownership
// — planned handoffs (standby promotions) in one pass, failover takeovers
// (owner kills, the standby takes over) in the other — and the table
// reports the pause and lag histograms the cluster records. The headline
// claim is the pause column: ingest into the WAL never stops, and the
// consumer gap per handoff stays far under a flush interval.
func runHandoff(opt Options) (*Report, error) {
	n := opt.n(120_000)
	const handoffs = 6
	rep := &Report{
		ID:     "handoff",
		Title:  "Live region migration: ingest pause and standby lag per handoff",
		Header: []string{"mode", "handoffs", "pause_mean", "pause_p99", "pause_max", "lag_max_recs", "tuples/s", "verified"},
		Notes: []string{
			"pause = consumer detach to successor consuming (waterwheel_handoff_pause_seconds)",
			"lag = WAL records the successor replays to catch up (waterwheel_handoff_lag_records)",
			"ingest continues through every flip; verified = full-region count equals inserts",
		},
	}
	for _, mode := range []string{"planned", "failover"} {
		reg := telemetry.NewRegistry()
		c, err := cluster.Open(cluster.Config{
			Nodes: 3, IndexServersPerNode: 2, ChunkBytes: 256 << 10,
			HotStandby: true, Seed: opt.Seed, Telemetry: reg,
		})
		if err != nil {
			return nil, err
		}
		c.Start()
		var inserted atomic.Int64
		var insertErr error
		var wg sync.WaitGroup
		wg.Add(1)
		start := time.Now()
		go func() {
			defer wg.Done()
			rng := newRand(opt.Seed)
			batch := make([]model.Tuple, 0, 64)
			for i := 0; i < n; i++ {
				batch = append(batch, model.Tuple{
					Key:     model.Key(rng.Uint64()),
					Time:    model.Timestamp(i),
					Payload: []byte{byte(i)},
				})
				if len(batch) == cap(batch) || i == n-1 {
					if _, err := c.InsertBatch(batch); err != nil {
						insertErr = err
						return
					}
					inserted.Add(int64(len(batch)))
					batch = batch[:0]
				}
			}
		}()
		for h := 0; h < handoffs; h++ {
			target := int64(n) * int64(h+1) / int64(handoffs+1)
			for inserted.Load() < target && insertErr == nil {
				time.Sleep(200 * time.Microsecond)
			}
			slots := c.ActiveSlots()
			slot := slots[h%len(slots)]
			var err error
			if mode == "planned" {
				err = c.PromoteStandby(slot)
			} else {
				err = c.KillIndexServer(slot)
			}
			if err != nil {
				c.Stop()
				return nil, fmt.Errorf("handoff %d (%s, slot %d): %w", h, mode, slot, err)
			}
			opt.logf("handoff %s %d/%d: slot %d flipped at %d inserts",
				mode, h+1, handoffs, slot, inserted.Load())
		}
		wg.Wait()
		if insertErr != nil {
			c.Stop()
			return nil, insertErr
		}
		wall := time.Since(start)
		c.Drain()
		res, err := c.Query(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
		if err != nil {
			c.Stop()
			return nil, err
		}
		verified := "yes"
		if len(res.Tuples) != n {
			verified = fmt.Sprintf("NO (%d/%d)", len(res.Tuples), n)
		}
		var flips int64
		var pause *telemetry.HistogramSnapshot
		var lagMax int64
		for _, m := range reg.Snapshot() {
			switch m.Name {
			case "waterwheel_handoffs_total":
				flips = int64(m.Value)
			case "waterwheel_handoff_pause_seconds":
				pause = m.Histogram
			case "waterwheel_handoff_lag_records":
				if m.Histogram != nil {
					lagMax = int64(m.Histogram.Max / time.Second)
				}
			}
		}
		pm, p99, pmax := time.Duration(0), time.Duration(0), time.Duration(0)
		if pause != nil {
			pm, p99, pmax = pause.Mean, pause.P99, pause.Max
		}
		rep.Add(mode, flips, pm.String(), p99.String(), pmax.String(), lagMax,
			fmt.Sprintf("%.0f", float64(n)/wall.Seconds()), verified)
		c.Stop()
	}
	return rep, nil
}

func init() {
	register("handoff", runHandoff)
}
