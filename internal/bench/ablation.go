package bench

import (
	"math/rand"
	"time"

	"waterwheel/internal/chunk"
	"waterwheel/internal/cluster"
	"waterwheel/internal/model"
	"waterwheel/internal/queryexec"
	"waterwheel/internal/stats"
	"waterwheel/internal/workload"
)

// newRand builds a deterministic source for workload synthesis.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Ablations for the design choices DESIGN.md §5 calls out. These are not
// paper figures; they isolate the contribution of individual mechanisms.

// ablationCluster builds a loaded cluster for query-side ablations.
func ablationCluster(opt Options, disableBloom bool, policy string) (*cluster.Cluster, workload.Generator, int) {
	n := opt.n(150_000)
	c := cluster.New(cluster.Config{
		Nodes:               2,
		IndexServersPerNode: 2,
		QueryServersPerNode: 2,
		ChunkBytes:          256 << 10,
		CacheBytes:          4 << 20,
		SyncIngest:          true,
		DFSLatency:          paperLatency(),
		DisableBloom:        disableBloom,
		Policy:              policy,
		Seed:                opt.Seed,
	})
	c.Start()
	g := workload.NewTDrive(workload.TDriveConfig{Seed: opt.Seed, EventsPerSecond: n / 60})
	tuples := pregenerate(g, n)
	for i := range tuples {
		if i == n/10 {
			c.TickBalance()
		}
		c.Insert(tuples[i])
	}
	return c, g, n
}

// AblationBloom: leaf time-sketch pruning on vs off. The workload is
// bursty in time — every source reports during even-numbered 10-second
// windows only — so a leaf's [minT, maxT] envelope spans the whole stream
// while the sketch knows the gaps. Queries into odd windows are prunable
// only by the sketch, which is exactly the case §IV-B builds it for.
func runAblationBloom(opt Options) (*Report, error) {
	n := opt.n(150_000)
	queries := opt.n(50)
	rep := &Report{
		ID:     "ablation-bloom",
		Title:  "Leaf time-sketch (bloom) pruning on vs off (bursty arrivals)",
		Header: []string{"metric", "bloom on", "bloom off"},
	}
	type agg struct {
		lat                 *stats.Recorder
		leaves, skipped, mb int64
	}
	results := map[bool]*agg{}
	const burst = 10_000 // ms
	for _, disable := range []bool{false, true} {
		c := cluster.New(cluster.Config{
			Nodes:               2,
			IndexServersPerNode: 2,
			QueryServersPerNode: 2,
			ChunkBytes:          128 << 10,
			CacheBytes:          4 << 20,
			SyncIngest:          true,
			DFSLatency:          paperLatency(),
			DisableBloom:        disable,
			Bloom:               chunkOpts(1000),
			Seed:                opt.Seed,
		})
		c.Start()
		rng := newRand(opt.Seed)
		var now model.Timestamp
		for i := 0; i < n; i++ {
			// Event time advances ~1 ms per tuple but skips odd windows.
			now = model.Timestamp(i)
			if (now/burst)%2 == 1 {
				now += burst // jump to the next even window
			}
			c.Insert(model.Tuple{Key: model.Key(rng.Uint64()), Time: now, Payload: make([]byte, 10)})
		}
		c.FlushAll() // everything queryable from chunks
		a := &agg{lat: stats.NewRecorder()}
		qg := workload.NewQueryGen(model.FullKeyRange(), opt.Seed)
		windows := int(now / burst)
		if windows < 2 {
			windows = 2 // tiny scales: window 1 is silent by construction
		}
		for q := 0; q < queries; q++ {
			// A window fully inside an odd (silent) burst.
			w := model.Timestamp((2*q+1)%windows) * burst
			t0 := time.Now()
			res, err := c.Query(model.Query{
				Keys:  qg.KeyRange(0.5),
				Times: model.TimeRange{Lo: w + 1000, Hi: w + 9000},
			})
			if err != nil {
				c.Stop()
				return nil, err
			}
			a.lat.Record(time.Since(t0))
			a.leaves += int64(res.LeavesRead)
			a.skipped += int64(res.LeavesSkipped)
			a.mb += res.BytesRead
		}
		results[disable] = a
		c.Stop()
		opt.logf("ablation-bloom disable=%v done", disable)
	}
	on, off := results[false], results[true]
	rep.Add("mean latency", on.lat.Mean().Round(time.Microsecond).String(), off.lat.Mean().Round(time.Microsecond).String())
	rep.Add("leaves read", on.leaves, off.leaves)
	rep.Add("leaves pruned", on.skipped, off.skipped)
	rep.Add("chunk bytes read", on.mb, off.mb)
	return rep, nil
}

// chunkOpts builds bloom options with the given time bucket width.
func chunkOpts(bucketMillis int64) chunk.BuildOptions {
	return chunk.BuildOptions{BucketMillis: bucketMillis}
}

// AblationTemplate: template reuse on vs off at the system level. With
// reuse off, every flush rebuilds the tree structure, so sustained
// ingestion slows down.
func runAblationTemplate(opt Options) (*Report, error) {
	n := opt.n(300_000)
	rep := &Report{
		ID:     "ablation-template",
		Title:  "Template reuse across flushes on vs off (ingest throughput)",
		Header: []string{"variant", "throughput"},
	}
	for _, noReuse := range []bool{false, true} {
		c := cluster.New(cluster.Config{
			Nodes:               1,
			IndexServersPerNode: 2,
			ChunkBytes:          128 << 10, // frequent flushes magnify the difference
			SyncIngest:          true,
			NoTemplateReuse:     noReuse,
			Seed:                opt.Seed,
		})
		c.Start()
		g := workload.NewNormal(workload.NormalConfig{Sigma: 1e15, Seed: opt.Seed})
		tuples := pregenerate(g, n)
		start := time.Now()
		for i := range tuples {
			c.Insert(tuples[i])
		}
		rate := stats.Rate(int64(n), time.Since(start))
		c.Stop()
		label := "template reuse"
		if noReuse {
			label = "rebuild every flush"
		}
		rep.Add(label, stats.HumanRate(rate))
		opt.logf("ablation-template noReuse=%v done", noReuse)
	}
	return rep, nil
}

// AblationLADA: decompose LADA against a locality-only policy (hashing)
// and a balance-only policy (shared queue), reporting latency and cache
// hit rates — the two components LADA combines.
func runAblationLADA(opt Options) (*Report, error) {
	queries := opt.n(60)
	rep := &Report{
		ID:     "ablation-lada",
		Title:  "LADA components: balance-only and locality-only vs both",
		Header: []string{"policy", "mean latency", "cache hits/query"},
	}
	for _, policy := range []string{"lada", "hashing", "shared-queue"} {
		c, g, _ := ablationCluster(opt, false, policy)
		qg := workload.NewQueryGen(g.KeySpan(), opt.Seed)
		now := g.Now()
		rec := stats.NewRecorder()
		var hits int64
		for q := 0; q < queries; q++ {
			t0 := time.Now()
			res, err := c.Query(model.Query{
				Keys:  qg.KeyRange(0.1),
				Times: qg.Historical(0, now, int64(now)/10),
			})
			if err != nil {
				c.Stop()
				return nil, err
			}
			rec.Record(time.Since(t0))
			hits += int64(res.CacheHits)
		}
		c.Stop()
		rep.Add(policy, rec.Mean().Round(time.Microsecond).String(), hits/int64(queries))
		opt.logf("ablation-lada %s done", policy)
	}
	return rep, nil
}

// AblationSideStore: side store for very-late tuples on vs off. With it
// off, a few very late tuples inflate ordinary chunks' temporal regions
// and drag extra chunks into every temporally selective query.
func runAblationSideStore(opt Options) (*Report, error) {
	n := opt.n(100_000)
	queries := opt.n(50)
	rep := &Report{
		ID:     "ablation-sidestore",
		Title:  "Side store for very-late tuples on vs off",
		Header: []string{"variant", "mean latency", "subqueries/query"},
	}
	for _, disable := range []bool{false, true} {
		sideThreshold := int64(5_000)
		if disable {
			sideThreshold = -1
		}
		c := cluster.New(cluster.Config{
			Nodes:               2,
			IndexServersPerNode: 2,
			QueryServersPerNode: 2,
			ChunkBytes:          128 << 10,
			SyncIngest:          true,
			DFSLatency:          paperLatency(),
			SideThresholdMillis: sideThreshold,
			Seed:                opt.Seed,
		})
		c.Start()
		g := workload.NewNetwork(workload.NetworkConfig{
			Seed: opt.Seed, EventsPerSecond: n / 60,
			LateFrac: 0.01, LateMaxMillis: 50_000, // 1% of tuples up to 50s late
		})
		tuples := pregenerate(g, n)
		for i := range tuples {
			c.Insert(tuples[i])
		}
		qg := workload.NewQueryGen(g.KeySpan(), opt.Seed)
		now := g.Now()
		rec := stats.NewRecorder()
		var subs int64
		for q := 0; q < queries; q++ {
			t0 := time.Now()
			res, err := c.Query(model.Query{
				Keys:  qg.KeyRange(0.1),
				Times: qg.Historical(0, now, 2_000),
			})
			if err != nil {
				c.Stop()
				return nil, err
			}
			rec.Record(time.Since(t0))
			subs += int64(res.SubQueries)
		}
		c.Stop()
		label := "side store on"
		if disable {
			label = "side store off"
		}
		rep.Add(label, rec.Mean().Round(time.Microsecond).String(), subs/int64(queries))
		opt.logf("ablation-sidestore disable=%v done", disable)
	}
	return rep, nil
}

func init() {
	register("ablation-bloom", runAblationBloom)
	register("ablation-template", runAblationTemplate)
	register("ablation-lada", runAblationLADA)
	register("ablation-sidestore", runAblationSideStore)
}

var _ queryexec.Policy = queryexec.LADA{}
