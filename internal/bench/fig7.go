package bench

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"

	"waterwheel/internal/core"
	"waterwheel/internal/model"
	"waterwheel/internal/stats"
	"waterwheel/internal/workload"
)

// generatorByName builds a tuple generator for the named dataset.
func generatorByName(name string, seed int64) workload.Generator {
	switch name {
	case "network":
		return workload.NewNetwork(workload.NetworkConfig{Seed: seed})
	case "normal":
		return workload.NewNormal(workload.NormalConfig{Sigma: 1000, Seed: seed})
	default:
		return workload.NewTDrive(workload.TDriveConfig{Seed: seed})
	}
}

// pregenerate draws n tuples from a generator.
func pregenerate(g workload.Generator, n int) []model.Tuple {
	out := make([]model.Tuple, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// newTemplateForSpan builds a template tree sized for n tuples over the
// generator's span, seeded with a sample so the initial partition matches
// the distribution (as a warmed-up production tree would be).
func newTemplateForSpan(span model.KeyRange, tuples []model.Tuple, n int) *core.TemplateTree {
	leaves := n / core.DefaultLeafCap
	if leaves < 4 {
		leaves = 4
	}
	sampleN := 4096
	if sampleN > len(tuples) {
		sampleN = len(tuples)
	}
	sample := make([]model.Key, sampleN)
	for i := range sample {
		sample[i] = tuples[i*len(tuples)/sampleN].Key
	}
	return core.NewTemplateTreeFromSample(core.TemplateConfig{
		Keys:   span,
		Leaves: leaves,
	}, sample)
}

// insertParallel spreads the tuples across `threads` inserters and returns
// the wall time.
func insertParallel(idx core.Index, tuples []model.Tuple, threads int) time.Duration {
	if threads < 1 {
		threads = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	chunkSize := (len(tuples) + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo := w * chunkSize
		hi := lo + chunkSize
		if hi > len(tuples) {
			hi = len(tuples)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []model.Tuple) {
			defer wg.Done()
			for i := range part {
				idx.Insert(part[i])
			}
		}(tuples[lo:hi])
	}
	wg.Wait()
	return time.Since(start)
}

// mutexWaitSeconds reads the cumulative goroutine mutex-wait time.
func mutexWaitSeconds() float64 {
	samples := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindFloat64 {
		return samples[0].Value.Float64()
	}
	return 0
}

// Fig7a: insertion throughput of the three B+ trees with 1..8 insertion
// threads (T-Drive-like keys). Expected shape: template ≫ bulk >
// concurrent, and only the template tree scales with threads. The host's
// core count bounds how much of the scaling is visible in wall time, so
// the report also shows each variant's accumulated mutex-wait — the
// serialization the template design removes.
func runFig7a(opt Options) (*Report, error) {
	n := opt.n(400_000)
	g := generatorByName("tdrive", opt.Seed)
	tuples := pregenerate(g, n)
	span := g.KeySpan()

	rep := &Report{
		ID:    "fig7a",
		Title: "Insertion throughput vs #threads (tuples/s), T-Drive-like keys",
		Header: []string{"threads", "template", "concurrent", "bulk-loading",
			"lock-wait(tmpl)", "lock-wait(conc)"},
		Notes: []string{
			fmt.Sprintf("host has GOMAXPROCS=%d; thread scaling beyond that shows as lock-wait, not wall time", runtime.GOMAXPROCS(0)),
			"paper Fig.7(a): template highest and scaling with threads; baselines flat",
		},
	}
	for _, threads := range []int{1, 2, 4, 8} {
		tmpl := newTemplateForSpan(span, tuples, n)
		w0 := mutexWaitSeconds()
		dTmpl := insertParallel(tmpl, tuples, threads)
		waitTmpl := mutexWaitSeconds() - w0

		conc := core.NewConcurrentTree(0, 0)
		w0 = mutexWaitSeconds()
		dConc := insertParallel(conc, tuples, threads)
		waitConc := mutexWaitSeconds() - w0

		bulk := core.NewBulkTree(0, 0)
		startBulk := time.Now()
		insertParallel(bulk, tuples, threads)
		bulk.Build()
		dBulk := time.Since(startBulk)

		rep.Add(threads,
			stats.HumanRate(stats.Rate(int64(n), dTmpl)),
			stats.HumanRate(stats.Rate(int64(n), dConc)),
			stats.HumanRate(stats.Rate(int64(n), dBulk)),
			fmt.Sprintf("%.1fms", waitTmpl*1000),
			fmt.Sprintf("%.1fms", waitConc*1000))
		opt.logf("fig7a threads=%d done", threads)
	}
	return rep, nil
}

// Fig7b: single-thread insertion time breakdown. Expected shape: the
// concurrent tree dominated by node splits; the bulk tree pays sorting;
// the template tree pays only (rare, small) template updates.
func runFig7b(opt Options) (*Report, error) {
	n := opt.n(400_000)
	g := generatorByName("tdrive", opt.Seed)
	tuples := pregenerate(g, n)
	span := g.KeySpan()

	rep := &Report{
		ID:     "fig7b",
		Title:  "Insertion time breakdown, single thread (ms)",
		Header: []string{"index", "total", "split", "sort", "build", "template-update", "other"},
		Notes: []string{
			"paper Fig.7(b): splits dominate the concurrent tree; sorting the bulk tree",
		},
	}
	ms := func(nanos int64) string {
		return (time.Duration(nanos) * time.Nanosecond).Round(time.Microsecond).String()
	}

	tmpl := newTemplateForSpan(span, tuples, n)
	// Force periodic skew checks so template update time is exercised.
	dTmpl := insertParallel(tmpl, tuples, 1)
	st := tmpl.Stats().Snapshot()
	rep.Add("template", dTmpl.Round(time.Millisecond).String(), ms(0), ms(0), ms(0),
		ms(st.TemplateUpdateNanos),
		(dTmpl - time.Duration(st.TemplateUpdateNanos)).Round(time.Millisecond).String())

	conc := core.NewConcurrentTree(0, 0)
	dConc := insertParallel(conc, tuples, 1)
	sc := conc.Stats().Snapshot()
	rep.Add("concurrent", dConc.Round(time.Millisecond).String(), ms(sc.SplitNanos), ms(0), ms(0), ms(0),
		(dConc - time.Duration(sc.SplitNanos)).Round(time.Millisecond).String())

	bulk := core.NewBulkTree(0, 0)
	startBulk := time.Now()
	insertParallel(bulk, tuples, 1)
	bulk.Build()
	dBulk := time.Since(startBulk)
	sb := bulk.Stats().Snapshot()
	rep.Add("bulk-loading", dBulk.Round(time.Millisecond).String(), ms(0), ms(sb.SortNanos), ms(sb.BuildNanos), ms(0),
		(dBulk - time.Duration(sb.SortNanos) - time.Duration(sb.BuildNanos)).Round(time.Millisecond).String())

	return rep, nil
}

func init() {
	register("fig7a", runFig7a)
	register("fig7b", runFig7b)
}
