package bench

import (
	"fmt"

	"waterwheel/internal/cluster"
	"waterwheel/internal/stats"
)

// Fig17: insertion throughput as the cluster grows (paper: 16→128 EC2
// nodes, scaled here to 2→16 simulated nodes). Aggregate throughput uses
// the makespan model (total tuples / slowest server's insertion time) —
// the host has a single core, so server parallelism is simulated; the
// makespan is exactly the quantity a real cluster's wall clock reflects.
// Expected shape: near-linear growth, because (a) the data partitioning
// lets every indexing server work independently and (b) adaptive
// partitioning keeps the per-server load even.
func runFig17(opt Options) (*Report, error) {
	perNode := opt.n(50_000)
	rep := &Report{
		ID:     "fig17",
		Title:  "Insertion throughput vs cluster size (tuples/s, makespan model)",
		Header: []string{"nodes", "tdrive", "network", "speedup(tdrive)"},
		Notes: []string{
			"node counts scaled 1/8 vs paper (16-128 -> 2-16)",
			"paper Fig.17: approximately linear scaling on both datasets",
		},
	}
	var base float64
	for _, nodes := range []int{2, 4, 8, 16} {
		row := []any{nodes}
		var tdriveRate float64
		for _, ds := range []string{"tdrive", "network"} {
			c := cluster.New(cluster.Config{
				Nodes:               nodes,
				IndexServersPerNode: 2,
				QueryServersPerNode: 1,
				DispatchersPerNode:  1,
				ChunkBytes:          1 << 30, // isolate pure insertion
				SyncIngest:          true,
				Seed:                opt.Seed,
			})
			c.Start()
			n := perNode * nodes
			g := generatorByName(ds, opt.Seed)
			tuples := pregenerate(g, n)
			// Rebalance early and often: under the even initial schema the
			// clustered key distributions pin to one server, and the serial
			// warm-up would otherwise dominate the makespan.
			rate := ingestMakespan(c, tuples, n/100)
			c.Stop()
			row = append(row, stats.HumanRate(rate))
			if ds == "tdrive" {
				tdriveRate = rate
			}
		}
		if base == 0 {
			base = tdriveRate
		}
		row = append(row, fmt.Sprintf("%.2fx", tdriveRate/base))
		rep.Add(row...)
		opt.logf("fig17 nodes=%d done", nodes)
	}
	return rep, nil
}

func init() {
	register("fig17", runFig17)
}
