package bench

import (
	"encoding/binary"
	"math/rand"
	"time"

	"waterwheel/internal/chunk"
	"waterwheel/internal/cluster"
	"waterwheel/internal/model"
	"waterwheel/internal/stats"
)

// ExtSecondary measures the §VIII extension: per-leaf bloom filters over a
// non-key, non-temporal payload attribute. An equality predicate on the
// attribute combined with a wide key range is the worst case for the base
// system (every leaf scanned); the secondary index prunes leaves whose
// filter cannot contain the value.
func runExtSecondary(opt Options) (*Report, error) {
	n := opt.n(200_000)
	queries := opt.n(50)
	rep := &Report{
		ID:     "ext-secondary",
		Title:  "Secondary attribute index (paper §VIII future work): on vs off",
		Header: []string{"metric", "secondary on", "secondary off"},
		Notes: []string{
			"workload: attribute value spatially correlated with key; query = full key range + attribute equality",
		},
	}
	type agg struct {
		lat            *stats.Recorder
		leaves, pruned int64
		bytes          int64
	}
	results := map[bool]*agg{}
	for _, enabled := range []bool{true, false} {
		cfg := cluster.Config{
			Nodes:               2,
			IndexServersPerNode: 2,
			QueryServersPerNode: 2,
			ChunkBytes:          256 << 10,
			CacheBytes:          2 << 20,
			SyncIngest:          true,
			DFSLatency:          paperLatency(),
			Seed:                opt.Seed,
		}
		if enabled {
			cfg.Bloom = chunk.BuildOptions{Secondary: &chunk.SecondarySpec{Offset: 0}}
		}
		c := cluster.New(cfg)
		c.Start()
		rng := rand.New(rand.NewSource(opt.Seed))
		// Keys uniform; attribute = sensor group, correlated with key so
		// groups cluster within leaves.
		const groups = 256
		for i := 0; i < n; i++ {
			key := model.Key(rng.Uint64())
			payload := make([]byte, 8)
			binary.BigEndian.PutUint64(payload, uint64(key>>56)%groups)
			c.Insert(model.Tuple{Key: key, Time: model.Timestamp(i), Payload: payload})
		}
		a := &agg{lat: stats.NewRecorder()}
		for q := 0; q < queries; q++ {
			group := uint64(q % groups)
			t0 := time.Now()
			res, err := c.Query(model.Query{
				Keys:   model.FullKeyRange(),
				Times:  model.FullTimeRange(),
				Filter: model.PayloadU64(0, model.CmpEQ, group),
			})
			if err != nil {
				c.Stop()
				return nil, err
			}
			a.lat.Record(time.Since(t0))
			a.leaves += int64(res.LeavesRead)
			a.pruned += int64(res.LeavesSkipped)
			a.bytes += res.BytesRead
		}
		results[enabled] = a
		c.Stop()
		opt.logf("ext-secondary enabled=%v done", enabled)
	}
	on, off := results[true], results[false]
	rep.Add("mean latency", on.lat.Mean().Round(time.Microsecond).String(), off.lat.Mean().Round(time.Microsecond).String())
	rep.Add("leaves read", on.leaves, off.leaves)
	rep.Add("leaves pruned", on.pruned, off.pruned)
	rep.Add("chunk bytes read", on.bytes, off.bytes)
	return rep, nil
}

func init() {
	register("ext-secondary", runExtSecondary)
}
