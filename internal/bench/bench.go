// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§VI) — the three-way B+ tree
// comparison, mixed workloads, template update latency, chunk-size
// effects, adaptive key partitioning, subquery dispatch policies, the
// overall comparison against the HBase-like and Druid-like baselines, and
// scalability — plus ablations for the design choices DESIGN.md calls out.
//
// Each experiment is a Runner producing a Report (a text table mirroring
// the paper's figure). Absolute numbers differ from the paper's testbed;
// the shapes — who wins, by roughly what factor, where the knees fall —
// are what the harness reproduces. Workload sizes scale with
// Options.Scale so the full suite also runs quickly in CI.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options tunes an experiment run.
type Options struct {
	// Scale multiplies workload sizes (1.0 = the harness defaults, which
	// finish each experiment in seconds; raise for more stable numbers).
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Batch sets the client-side insert batch size for insert-heavy
	// experiments (fig15, batchsweep). 0 or 1 means per-tuple inserts;
	// larger values route contiguous slices through InsertBatch.
	Batch int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (o *Options) fill() {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// n scales a base count.
func (o Options) n(base int) int {
	v := int(float64(base) * o.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Report is one experiment's output table.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row, stringifying the cells.
func (r *Report) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// String renders an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, note := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// Runner executes one experiment.
type Runner func(Options) (*Report, error)

// registry maps experiment ids to runners; populated by the per-figure
// files' init functions.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	registry[id] = r
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(id string, opt Options) (*Report, error) {
	opt.fill()
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return r(opt)
}

// RunAll executes every registered experiment in id order.
func RunAll(opt Options) ([]*Report, error) {
	var out []*Report
	for _, id := range IDs() {
		rep, err := Run(id, opt)
		if err != nil {
			return out, fmt.Errorf("bench: %s: %w", id, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
