package bench

import (
	"time"

	"waterwheel/internal/cluster"
	"waterwheel/internal/dfs"
	"waterwheel/internal/model"
	"waterwheel/internal/queryexec"
	"waterwheel/internal/stats"
	"waterwheel/internal/workload"
)

// Fig13: query latency under the four subquery dispatch policies on both
// datasets, with simulated HDFS I/O so locality and balance matter.
// 1000 (scaled) random queries with selectivity 0.1 on both domains.
// Expected order (best → worst): LADA, hashing, shared-queue, round-robin.
func runFig13(opt Options) (*Report, error) {
	n := opt.n(400_000)
	queries := opt.n(150)
	rep := &Report{
		ID:     "fig13",
		Title:  "Query latency by subquery dispatch policy (sel=0.1 both domains)",
		Header: []string{"dataset", "lada", "hashing", "shared-queue", "round-robin"},
		Notes:  []string{"paper Fig.13: LADA < hashing < shared-queue < round-robin"},
	}
	for _, ds := range []string{"tdrive", "network"} {
		row := []any{ds}
		for _, policyName := range []string{"lada", "hashing", "shared-queue", "round-robin"} {
			c := cluster.New(cluster.Config{
				Nodes:               4,
				IndexServersPerNode: 1,
				QueryServersPerNode: 1,
				DispatchersPerNode:  1,
				ChunkBytes:          512 << 10, // many chunks -> many subqueries
				// Each server's cache holds roughly its 1/4 share of the hot
				// working set: consistent chunk->server assignment (hashing,
				// LADA) keeps hitting; policies that spray subqueries
				// (round-robin, shared queue) thrash every cache.
				CacheBytes: 1 << 20,
				SyncIngest: true,
				// Low-jitter open delay so locality and caching dominate the
				// measurement rather than the 2-50ms open lottery.
				DFSLatency: dfs.LatencyModel{
					OpenMin:           2 * time.Millisecond,
					OpenMax:           8 * time.Millisecond,
					LocalBytesPerSec:  1 << 30,
					RemoteBytesPerSec: 110 << 20,
					WriteBytesPerSec:  110 << 20,
				},
				Policy: policyName,
				Seed:   opt.Seed,
			})
			c.Start()
			g := generatorByName(ds, opt.Seed)
			tuples := pregenerate(g, n)
			// Warm up the partitioning, then load.
			for i := range tuples {
				if i == n/100 {
					c.TickBalance()
				}
				c.Insert(tuples[i])
			}
			// Query mix with hot spots (80% of queries target a few fixed
			// rectangles): repeated chunk visits are where cache locality —
			// and thus the policy choice — shows.
			qg := workload.NewQueryGen(g.KeySpan(), opt.Seed)
			now := g.Now()
			span := int64(now) * 8 / 10
			type rect struct {
				kr model.KeyRange
				tr model.TimeRange
			}
			hot := make([]rect, 8)
			for i := range hot {
				hot[i] = rect{kr: qg.KeyRange(0.2), tr: qg.Historical(0, now, span/4)}
			}
			rec := stats.NewRecorder()
			for q := 0; q < queries; q++ {
				r := hot[q%len(hot)]
				if q%5 == 4 {
					r = rect{kr: qg.KeyRange(0.2), tr: qg.Historical(0, now, span/4)}
				}
				t0 := time.Now()
				if _, err := c.Query(model.Query{Keys: r.kr, Times: r.tr}); err != nil {
					c.Stop()
					return nil, err
				}
				rec.Record(time.Since(t0))
			}
			c.Stop()
			row = append(row, rec.Mean().Round(time.Microsecond).String())
			opt.logf("fig13 %s %s done", ds, policyName)
		}
		rep.Add(row...)
	}
	return rep, nil
}

func init() {
	register("fig13", runFig13)
}

// ensure the queryexec policy names resolve (guards against drift between
// the experiment and PolicyByName).
var _ = []queryexec.Policy{queryexec.LADA{}, queryexec.RoundRobin{}, queryexec.Hashing{}, queryexec.SharedQueue{}}
