package bench

import (
	"time"

	"waterwheel/internal/cluster"
	"waterwheel/internal/model"
	"waterwheel/internal/stats"
	"waterwheel/internal/workload"
)

// newNormalCluster builds the adaptive-partitioning testbed: 4 nodes x 2
// indexing servers, synchronous ingest, no simulated I/O (the experiment
// isolates partitioning effects).
func newNormalCluster(seed int64, adaptive bool) *cluster.Cluster {
	c := cluster.New(cluster.Config{
		Nodes:               4,
		IndexServersPerNode: 2,
		QueryServersPerNode: 1,
		ChunkBytes:          512 << 10,
		SyncIngest:          true,
		DisableAdaptive:     !adaptive,
		Seed:                seed,
	})
	c.Start()
	return c
}

// ingestMakespan pushes the tuples through the cluster's dispatchers and
// measures, per indexing server, the wall time spent inserting its share.
// The aggregate throughput is total/makespan — how a real cluster whose
// servers run in parallel would perform. (The host has a single core, so
// true thread parallelism cannot be measured directly; the makespan model
// charges each server its own work and takes the slowest.)
func ingestMakespan(c *cluster.Cluster, tuples []model.Tuple, rebalanceEvery int) float64 {
	perServer := make([]time.Duration, len(c.IndexServers()))
	schema := c.Metadata().Schema()
	for i := range tuples {
		if rebalanceEvery > 0 && i > 0 && i%rebalanceEvery == 0 {
			if c.TickBalance() {
				schema = c.Metadata().Schema()
			}
		}
		srv := schema.ServerFor(tuples[i].Key)
		t0 := time.Now()
		c.Insert(tuples[i])
		perServer[srv] += time.Since(t0)
	}
	var max time.Duration
	for _, d := range perServer {
		if d > max {
			max = d
		}
	}
	if max == 0 {
		return 0
	}
	return float64(len(tuples)) / max.Seconds()
}

var sigmas = []float64{10, 100, 1000, 5000}

// Fig12a: insertion throughput with and without adaptive key
// partitioning, as key skewness varies (normal keys, σ = 10..5000).
// Expected shape: adaptive ≥ static for every σ; static is pinned to one
// server's rate because the normal distribution concentrates in a single
// interval of the even schema.
func runFig12a(opt Options) (*Report, error) {
	n := opt.n(200_000)
	rep := &Report{
		ID:     "fig12a",
		Title:  "Insertion throughput vs key skewness (normal keys)",
		Header: []string{"sigma", "adaptive", "static"},
		Notes: []string{
			"aggregate throughput = total tuples / slowest server's insertion time (single-core host)",
			"paper Fig.12(a): adaptive consistently above static",
		},
	}
	for _, sigma := range sigmas {
		g := workload.NewNormal(workload.NormalConfig{Sigma: sigma, Seed: opt.Seed})
		tuples := pregenerate(g, n)

		ca := newNormalCluster(opt.Seed, true)
		rateA := ingestMakespan(ca, tuples, n/100)
		ca.Stop()

		cs := newNormalCluster(opt.Seed, false)
		rateS := ingestMakespan(cs, tuples, 0)
		cs.Stop()

		rep.Add(sigma, stats.HumanRate(rateA), stats.HumanRate(rateS))
		opt.logf("fig12a sigma=%.0f done", sigma)
	}
	return rep, nil
}

// Fig12b: query latency with and without adaptive key partitioning.
// 1000 (scaled) random queries with key selectivity 0.1 over the recent
// 60 seconds. Expected shape: adaptive at or below static — balanced data
// placement improves subquery pruning and spreads memtable scans.
func runFig12b(opt Options) (*Report, error) {
	n := opt.n(200_000)
	queries := opt.n(200)
	rep := &Report{
		ID:     "fig12b",
		Title:  "Query latency vs key skewness (sel=0.1, recent 60s)",
		Header: []string{"sigma", "adaptive mean", "static mean"},
		Notes:  []string{"paper Fig.12(b): adaptive at or below static"},
	}
	for _, sigma := range sigmas {
		row := []any{sigma}
		for _, adaptive := range []bool{true, false} {
			g := workload.NewNormal(workload.NormalConfig{Sigma: sigma, Seed: opt.Seed})
			tuples := pregenerate(g, n)
			c := newNormalCluster(opt.Seed, adaptive)
			for i := range tuples {
				if adaptive && i > 0 && i%(n/10) == 0 {
					c.TickBalance()
				}
				c.Insert(tuples[i])
			}
			qg := workload.NewQueryGen(g.KeySpan(), opt.Seed)
			now := g.Now()
			rec := stats.NewRecorder()
			for q := 0; q < queries; q++ {
				t0 := time.Now()
				if _, err := c.Query(model.Query{
					Keys:  qg.KeyRange(0.1),
					Times: workload.Recent(now, 60_000),
				}); err != nil {
					c.Stop()
					return nil, err
				}
				rec.Record(time.Since(t0))
			}
			c.Stop()
			row = append(row, rec.Mean().Round(time.Microsecond).String())
		}
		rep.Add(row...)
		opt.logf("fig12b sigma=%.0f done", sigma)
	}
	return rep, nil
}

func init() {
	register("fig12a", runFig12a)
	register("fig12b", runFig12b)
}
