package bench

import (
	"time"

	"waterwheel/internal/stats"
)

// Fig10: template update latency as a function of tree fill percentage,
// on both datasets. Expected shape: latency grows with the number of
// tuples moved among leaves, staying in the low-millisecond range at the
// paper's tree sizes.
func runFig10(opt Options) (*Report, error) {
	capacity := opt.n(400_000) // "B+ tree capacity" = one chunk worth
	rep := &Report{
		ID:     "fig10",
		Title:  "Template update latency vs tree fill percentage",
		Header: []string{"fill %", "tdrive mean", "network mean"},
		Notes: []string{
			"paper Fig.10: latency grows with fill, stays in the ms range",
		},
	}
	const repeats = 5
	fills := []int{20, 40, 60, 80, 100}
	results := map[string]map[int]time.Duration{}
	for _, ds := range []string{"tdrive", "network"} {
		results[ds] = map[int]time.Duration{}
		for _, fill := range fills {
			rec := stats.NewRecorder()
			for r := 0; r < repeats; r++ {
				g := generatorByName(ds, opt.Seed+int64(r))
				n := capacity * fill / 100
				tuples := pregenerate(g, n)
				tree := newTemplateForSpan(g.KeySpan(), tuples, capacity)
				for i := range tuples {
					tree.Insert(tuples[i])
				}
				before := tree.Stats().Snapshot()
				tree.UpdateTemplate()
				after := tree.Stats().Snapshot()
				rec.Record(time.Duration(after.TemplateUpdateNanos - before.TemplateUpdateNanos))
			}
			results[ds][fill] = rec.Mean()
			opt.logf("fig10 %s fill=%d%% done", ds, fill)
		}
	}
	for _, fill := range fills {
		rep.Add(fill,
			results["tdrive"][fill].Round(time.Microsecond).String(),
			results["network"][fill].Round(time.Microsecond).String())
	}
	return rep, nil
}

func init() {
	register("fig10", runFig10)
}
