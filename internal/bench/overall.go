package bench

import (
	"time"

	"waterwheel/internal/baseline"
	"waterwheel/internal/cluster"
	"waterwheel/internal/dfs"
	"waterwheel/internal/model"
	"waterwheel/internal/stats"
	"waterwheel/internal/workload"
)

// wwStore adapts a Waterwheel cluster to the baseline.Store interface for
// the overall comparison.
type wwStore struct {
	c *cluster.Cluster
	// rebalanced tracks whether the warm-up repartition ran.
	inserted    int
	rebalanceAt int
}

func newWWStore(chunkBytes int64, lat dfs.LatencyModel, seed int64, rebalanceAt int) *wwStore {
	c := cluster.New(cluster.Config{
		Nodes:               4,
		IndexServersPerNode: 2,
		QueryServersPerNode: 2,
		ChunkBytes:          chunkBytes,
		CacheBytes:          32 << 20,
		SyncIngest:          true,
		DFSLatency:          lat,
		Seed:                seed,
	})
	c.Start()
	return &wwStore{c: c, rebalanceAt: rebalanceAt}
}

func (w *wwStore) Insert(t model.Tuple) {
	w.inserted++
	if w.rebalanceAt > 0 && w.inserted == w.rebalanceAt {
		w.c.TickBalance()
	}
	w.c.Insert(t)
}

// InsertBatch routes a whole batch through Cluster.InsertBatch (one
// dispatch, one WAL append per same-server run) while preserving the
// warm-up repartition trigger at the same insert count.
func (w *wwStore) InsertBatch(ts []model.Tuple) {
	if w.rebalanceAt > 0 && w.inserted < w.rebalanceAt && w.inserted+len(ts) >= w.rebalanceAt {
		w.c.TickBalance()
	}
	w.inserted += len(ts)
	w.c.InsertBatch(ts)
}

// ingestTuples streams tuples into a store, using the vectorized batch path
// when batch > 1 and the store supports it (the baselines only expose
// per-tuple Insert, so they always take the scalar loop).
func ingestTuples(s baseline.Store, tuples []model.Tuple, batch int) {
	type batcher interface{ InsertBatch([]model.Tuple) }
	if bs, ok := s.(batcher); ok && batch > 1 {
		for pos := 0; pos < len(tuples); pos += batch {
			end := pos + batch
			if end > len(tuples) {
				end = len(tuples)
			}
			bs.InsertBatch(tuples[pos:end])
		}
		return
	}
	for i := range tuples {
		s.Insert(tuples[i])
	}
}

func (w *wwStore) Query(q model.Query) (*model.Result, error) { return w.c.Query(q) }
func (w *wwStore) Flush()                                     { w.c.FlushAll() }
func (w *wwStore) Close()                                     { w.c.Stop() }

// newStores builds the three systems with comparable storage settings.
func newStores(seed int64, withIO bool, chunkBytes int64, warmup int) map[string]baseline.Store {
	lat := dfs.LatencyModel{}
	if withIO {
		lat = paperLatency()
	}
	newFS := func() *dfs.FS {
		return dfs.New(dfs.Config{Nodes: 4, Replication: 3, Seed: seed, Latency: lat})
	}
	return map[string]baseline.Store{
		"waterwheel": newWWStore(chunkBytes, lat, seed, warmup),
		"hbase-like": baseline.NewLSM(baseline.LSMConfig{MemBytes: chunkBytes}, newFS()),
		"druid-like": baseline.NewTS(baseline.TSConfig{SegmentBytes: chunkBytes}, newFS()),
	}
}

var storeOrder = []string{"waterwheel", "hbase-like", "druid-like"}

// queryWindows are the paper's four temporal shapes (§VI-D1). Durations
// are scaled 1/10 (the harness ingests ~90 s of event time instead of the
// paper's long runs): recent 0.5 s / 6 s / 30 s, historical 30 s.
type windowSpec struct {
	name      string
	durMillis int64
	recent    bool
}

var queryWindows = []windowSpec{
	{"recent 0.5s", 500, true},
	{"recent 6s", 6_000, true},
	{"recent 30s", 30_000, true},
	{"historic 30s", 30_000, false},
}

// runOverallQueries implements Fig.14 (Network) and Fig.16 (T-Drive):
// query latency of the three systems across temporal windows and key
// selectivities, at a fixed pre-ingested dataset.
func runOverallQueries(id, dataset string, opt Options) (*Report, error) {
	n := opt.n(200_000)
	perCell := opt.n(10)
	rep := &Report{
		ID:     id,
		Title:  "Query latency comparison, " + dataset + " data (mean)",
		Header: []string{"window", "key sel", "waterwheel", "hbase-like", "druid-like"},
		Notes: []string{
			"temporal windows scaled 1/10 vs paper (event-time span ~90s)",
			"paper Fig.14/16: Waterwheel lowest; HBase degrades with key selectivity; Druid flat-but-high vs key selectivity",
		},
	}
	stores := newStores(opt.Seed, true, 256<<10, n/100)
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	// ~90 s of event time: rate = n / 90.
	rate := n / 90
	if rate < 100 {
		rate = 100
	}
	g := newDatasetGenerator(dataset, opt.Seed, rate)
	tuples := pregenerate(g, n)
	for name, s := range stores {
		ingestTuples(s, tuples, opt.Batch)
		opt.logf("%s ingest into %s done", id, name)
	}
	now := g.Now()
	for _, w := range queryWindows {
		for _, sel := range []float64{0.01, 0.05, 0.1} {
			row := []any{w.name, sel}
			for _, name := range storeOrder {
				qg := workload.NewQueryGen(g.KeySpan(), opt.Seed+int64(sel*1000))
				rec := stats.NewRecorder()
				for q := 0; q < perCell; q++ {
					var tr model.TimeRange
					if w.recent {
						tr = workload.Recent(now, w.durMillis)
					} else {
						tr = qg.Historical(0, now, w.durMillis)
					}
					qr := model.Query{Keys: qg.KeyRange(sel), Times: tr}
					t0 := time.Now()
					if _, err := stores[name].Query(qr); err != nil {
						return nil, err
					}
					rec.Record(time.Since(t0))
				}
				row = append(row, rec.Mean().Round(time.Microsecond).String())
			}
			rep.Add(row...)
		}
		opt.logf("%s window %s done", id, w.name)
	}
	return rep, nil
}

// newDatasetGenerator builds a generator with an explicit event rate.
func newDatasetGenerator(dataset string, seed int64, rate int) workload.Generator {
	switch dataset {
	case "network":
		return workload.NewNetwork(workload.NetworkConfig{Seed: seed, EventsPerSecond: rate})
	default:
		return workload.NewTDrive(workload.TDriveConfig{Seed: seed, EventsPerSecond: rate})
	}
}

func runFig14(opt Options) (*Report, error) { return runOverallQueries("fig14", "network", opt) }
func runFig16(opt Options) (*Report, error) { return runOverallQueries("fig16", "tdrive", opt) }

// Fig15: maximum insertion throughput of the three systems on both
// datasets, with simulated storage I/O. Expected shape: Waterwheel about
// an order of magnitude above both baselines — it never merges fresh data
// into historical data, while the LSM store pays compaction and the
// segment store pays per-tuple inverted-index maintenance and seal-time
// sorting.
func runFig15(opt Options) (*Report, error) {
	n := opt.n(300_000)
	rep := &Report{
		ID:     "fig15",
		Title:  "Insertion throughput comparison (tuples/s)",
		Header: []string{"dataset", "waterwheel", "hbase-like", "druid-like"},
		Notes:  []string{"paper Fig.15: Waterwheel ~10x the baselines"},
	}
	for _, ds := range []string{"tdrive", "network"} {
		row := []any{ds}
		stores := newStores(opt.Seed, true, 1<<20, n/100)
		g := newDatasetGenerator(ds, opt.Seed, 100_000)
		tuples := pregenerate(g, n)
		for _, name := range storeOrder {
			s := stores[name]
			start := time.Now()
			ingestTuples(s, tuples, opt.Batch)
			rate := stats.Rate(int64(n), time.Since(start))
			row = append(row, stats.HumanRate(rate))
			opt.logf("fig15 %s %s done", ds, name)
		}
		for _, s := range stores {
			s.Close()
		}
		rep.Add(row...)
	}
	return rep, nil
}

func init() {
	register("fig14", runFig14)
	register("fig15", runFig15)
	register("fig16", runFig16)
}
