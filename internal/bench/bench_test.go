package bench

import (
	"strings"
	"testing"
)

// smoke runs an experiment at a small scale and sanity-checks the report.
func smoke(t *testing.T, id string, scale float64, wantRows int) *Report {
	t.Helper()
	rep, err := Run(id, Options{Scale: scale, Seed: 7})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.ID != id {
		t.Errorf("report id %q", rep.ID)
	}
	if len(rep.Rows) != wantRows {
		t.Fatalf("%s: %d rows, want %d\n%s", id, len(rep.Rows), wantRows, rep)
	}
	for _, row := range rep.Rows {
		if len(row) != len(rep.Header) {
			t.Fatalf("%s: ragged row %v", id, row)
		}
		for _, cell := range row {
			if cell == "" {
				t.Fatalf("%s: empty cell in %v", id, row)
			}
		}
	}
	out := rep.String()
	if !strings.Contains(out, id) || !strings.Contains(out, rep.Header[0]) {
		t.Errorf("%s: rendering missing parts:\n%s", id, out)
	}
	t.Logf("\n%s", rep)
	return rep
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"ablation-bloom", "ablation-lada", "ablation-sidestore", "ablation-template",
		"batchsweep",
		"ext-secondary",
		"fig10", "fig11a", "fig11b", "fig12a", "fig12b", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig7a", "fig7b", "fig8", "fig9",
		"flushpipe",
		"handoff",
		"table1",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBatchSweepSmoke(t *testing.T) { smoke(t, "batchsweep", 0.02, 5) }

func TestFig7aSmoke(t *testing.T)  { smoke(t, "fig7a", 0.05, 4) }
func TestFig7bSmoke(t *testing.T)  { smoke(t, "fig7b", 0.05, 3) }
func TestFig8Smoke(t *testing.T)   { smoke(t, "fig8", 0.03, 6) }
func TestFig9Smoke(t *testing.T)   { smoke(t, "fig9", 0.03, 4) }
func TestFig10Smoke(t *testing.T)  { smoke(t, "fig10", 0.03, 5) }
func TestFig12aSmoke(t *testing.T) { smoke(t, "fig12a", 0.03, 4) }
func TestFig12bSmoke(t *testing.T) { smoke(t, "fig12b", 0.03, 4) }
func TestFig15Smoke(t *testing.T)  { smoke(t, "fig15", 0.02, 2) }
func TestFig17Smoke(t *testing.T)  { smoke(t, "fig17", 0.02, 4) }
func TestTable1Smoke(t *testing.T) { smoke(t, "table1", 0.03, 3) }

func TestAblationTemplateSmoke(t *testing.T) { smoke(t, "ablation-template", 0.03, 2) }

// The I/O-simulating experiments sleep for real; keep them in -short-skip
// territory but still covered.
func TestFig11aSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	smoke(t, "fig11a", 0.02, 6)
}

func TestFig11bSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	smoke(t, "fig11b", 0.1, 6)
}

func TestFig13Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	smoke(t, "fig13", 0.02, 2)
}

func TestFig14Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	smoke(t, "fig14", 0.02, 12)
}

func TestFig16Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	smoke(t, "fig16", 0.02, 12)
}

func TestAblationBloomSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	smoke(t, "ablation-bloom", 0.02, 4)
}

func TestAblationLADASmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	smoke(t, "ablation-lada", 0.02, 3)
}

func TestAblationSideStoreSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	smoke(t, "ablation-sidestore", 0.02, 2)
}

func TestFlushPipeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	smoke(t, "flushpipe", 0.05, 2)
}

func TestHandoffSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster with handoff waits")
	}
	rep := smoke(t, "handoff", 0.05, 2)
	for _, row := range rep.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("handoff %s: not verified: %v", row[0], row)
		}
	}
}

func TestExtSecondarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated I/O sleeps")
	}
	rep := smoke(t, "ext-secondary", 0.02, 4)
	_ = rep
}
