package bench

import (
	"math/rand"
	"sync"
	"time"

	"waterwheel/internal/core"
	"waterwheel/internal/model"
	"waterwheel/internal/stats"
)

// mixedRun drives an index with the given insert fraction across 4
// threads: each op is an insert or a point read on a random key (paper
// §VI-A2). Returns insert throughput and the read-latency recorder.
func mixedRun(idx core.Index, tuples []model.Tuple, insertFrac float64, seed int64) (float64, *stats.Recorder) {
	const threads = 4
	rec := stats.NewRecorder()
	var inserted int64
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	chunkSize := (len(tuples) + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo := w * chunkSize
		hi := lo + chunkSize
		if hi > len(tuples) {
			hi = len(tuples)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []model.Tuple, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := 0
			for i := range part {
				if rng.Float64() < insertFrac {
					idx.Insert(part[i])
					n++
				} else {
					k := part[rng.Intn(len(part))].Key
					t0 := time.Now()
					idx.Range(model.KeyRange{Lo: k, Hi: k}, model.FullTimeRange(), nil,
						func(*model.Tuple) bool { return true })
					rec.Record(time.Since(t0))
				}
			}
			mu.Lock()
			inserted += int64(n)
			mu.Unlock()
		}(tuples[lo:hi], seed+int64(w))
	}
	wg.Wait()
	return stats.Rate(inserted, time.Since(start)), rec
}

// Fig8: insertion throughput under mixed workloads (100%, 75%, 50%
// insert) on both datasets, template vs concurrent. Expected shape:
// template 2-3x the concurrent tree everywhere.
func runFig8(opt Options) (*Report, error) {
	n := opt.n(300_000)
	rep := &Report{
		ID:     "fig8",
		Title:  "Insertion throughput under mixed workloads (tuples/s)",
		Header: []string{"dataset", "workload", "template", "concurrent"},
		Notes:  []string{"paper Fig.8: template 2-3x concurrent across mixes"},
	}
	for _, ds := range []string{"tdrive", "network"} {
		g := generatorByName(ds, opt.Seed)
		tuples := pregenerate(g, n)
		span := g.KeySpan()
		for _, mix := range []struct {
			name string
			frac float64
		}{{"100% insert", 1.0}, {"75% ins / 25% read", 0.75}, {"50% ins / 50% read", 0.5}} {
			tmpl := newTemplateForSpan(span, tuples, n)
			rateT, _ := mixedRun(tmpl, tuples, mix.frac, opt.Seed)
			conc := core.NewConcurrentTree(0, 0)
			rateC, _ := mixedRun(conc, tuples, mix.frac, opt.Seed)
			rep.Add(ds, mix.name, stats.HumanRate(rateT), stats.HumanRate(rateC))
			opt.logf("fig8 %s %s done", ds, mix.name)
		}
	}
	return rep, nil
}

// Fig9: point-read latency under the same mixed workloads. Expected
// shape: template reads at or below concurrent-tree reads (no inner-node
// latching).
func runFig9(opt Options) (*Report, error) {
	n := opt.n(300_000)
	rep := &Report{
		ID:    "fig9",
		Title: "Query (point read) latency under mixed workloads",
		Header: []string{"dataset", "workload", "template p50", "concurrent p50",
			"template mean", "concurrent mean"},
		Notes: []string{
			"paper Fig.9: template latency at or below concurrent",
			"means include reads blocked behind template-update pauses; medians show the steady state",
		},
	}
	for _, ds := range []string{"tdrive", "network"} {
		g := generatorByName(ds, opt.Seed)
		tuples := pregenerate(g, n)
		span := g.KeySpan()
		for _, mix := range []struct {
			name string
			frac float64
		}{{"75% ins / 25% read", 0.75}, {"50% ins / 50% read", 0.5}} {
			tmpl := newTemplateForSpan(span, tuples, n)
			_, recT := mixedRun(tmpl, tuples, mix.frac, opt.Seed)
			conc := core.NewConcurrentTree(0, 0)
			_, recC := mixedRun(conc, tuples, mix.frac, opt.Seed)
			rep.Add(ds, mix.name,
				recT.Percentile(50).Round(time.Nanosecond).String(),
				recC.Percentile(50).Round(time.Nanosecond).String(),
				recT.Mean().Round(time.Nanosecond).String(),
				recC.Mean().Round(time.Nanosecond).String())
			opt.logf("fig9 %s %s done", ds, mix.name)
		}
	}
	return rep, nil
}

func init() {
	register("fig8", runFig8)
	register("fig9", runFig9)
}
