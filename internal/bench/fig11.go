package bench

import (
	"fmt"
	"time"

	"waterwheel/internal/cluster"
	"waterwheel/internal/core"
	"waterwheel/internal/dfs"
	"waterwheel/internal/ingest"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/queryexec"
	"waterwheel/internal/stats"
	"waterwheel/internal/workload"
)

// The harness scales the paper's 4–256 MB chunk sweep down 16x so the
// experiments finish in seconds while preserving the shape; the simulated
// HDFS open delay stays at the paper's 2–50 ms, which is what flattens
// the small-chunk end of Fig. 11(b).
var chunkSizes = []int64{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}

func chunkSizeLabel(b int64) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%dMB", b>>20)
	}
	return fmt.Sprintf("%dKB", b>>10)
}

func paperLatency() dfs.LatencyModel {
	return dfs.LatencyModel{
		OpenMin:           2 * time.Millisecond,
		OpenMax:           50 * time.Millisecond,
		LocalBytesPerSec:  1 << 30,   // ~1 GB/s local disk
		RemoteBytesPerSec: 110 << 20, // ~1 Gbps network
		WriteBytesPerSec:  110 << 20,
	}
}

// Fig11a: system insertion throughput as the chunk size varies. Expected
// shape: throughput rises as chunks grow (fewer flush overheads) and
// levels off; the paper's decline past 32 MB stems from idle-network
// waits in its pipelined deployment, which the synchronous simulation
// does not model (noted on the report).
func runFig11a(opt Options) (*Report, error) {
	n := opt.n(400_000)
	rep := &Report{
		ID:     "fig11a",
		Title:  "Insertion throughput vs chunk size (synthetic stream)",
		Header: []string{"chunk size", "throughput"},
		Notes: []string{
			"chunk sizes scaled 1/16 vs paper (4-256MB -> 256KB-8MB)",
			"paper Fig.11(a): rises with chunk size, peaks near 32MB; the post-peak decline comes from pipelining effects outside this simulation",
		},
	}
	for _, cs := range chunkSizes {
		c := cluster.New(cluster.Config{
			Nodes:               1,
			IndexServersPerNode: 2,
			ChunkBytes:          cs,
			SyncIngest:          true,
			DFSLatency:          paperLatency(),
			Seed:                opt.Seed,
		})
		c.Start()
		// Uniform keys over the whole domain: the experiment isolates the
		// flush-frequency effect, not key-skew handling.
		rng := newRand(opt.Seed)
		tuples := make([]model.Tuple, n)
		for i := range tuples {
			tuples[i] = model.Tuple{
				Key: model.Key(rng.Uint64()), Time: model.Timestamp(i),
				Payload: make([]byte, 10),
			}
		}
		start := time.Now()
		for i := range tuples {
			c.Insert(tuples[i])
		}
		rate := stats.Rate(int64(n), time.Since(start))
		c.Stop()
		rep.Add(chunkSizeLabel(cs), stats.HumanRate(rate))
		opt.logf("fig11a chunk=%s done", chunkSizeLabel(cs))
	}
	return rep, nil
}

// togglableSleep charges simulated I/O time only when enabled, so fixture
// setup is free and only measured operations pay.
type togglableSleep struct{ on bool }

func (t *togglableSleep) sleep(d time.Duration) {
	if t.on {
		time.Sleep(d)
	}
}

// buildChunkFixture writes one chunk of the given size to a fresh DFS and
// returns the pieces a query server needs plus the I/O-charge toggle.
func buildChunkFixture(chunkBytes int64, seed int64) (*dfs.FS, *meta.Server, model.KeyRange, *togglableSleep) {
	ts := &togglableSleep{}
	fs := dfs.New(dfs.Config{
		Nodes: 3, Replication: 3, Seed: seed,
		Latency: paperLatency(),
		Sleep:   ts.sleep,
	})
	ms := meta.NewServer(1)
	span := model.KeyRange{Lo: 0, Hi: 1 << 40}
	n := int(chunkBytes / 30)
	leaves := n / core.DefaultLeafCap
	if leaves < 4 {
		leaves = 4
	}
	srv := ingest.NewServer(ingest.Config{
		ID: 0, Keys: span, ChunkBytes: 1 << 62, Leaves: leaves,
	}, fs, ms, 0)
	g := workload.NewNormal(workload.NormalConfig{
		Sigma:  float64(1 << 37), // spread across the span
		Center: 1 << 39,
		Seed:   seed,
	})
	for i := 0; i < n; i++ {
		srv.Insert(g.Next())
	}
	srv.Flush()
	return fs, ms, span, ts
}

// Fig11b: subquery latency vs chunk size for key selectivities 0.01,
// 0.05, 0.1. Expected shape: latency grows with chunk size (more bytes
// per selected leaf range) but flattens below ~16 MB (paper) where the
// per-access HDFS delay dominates.
func runFig11b(opt Options) (*Report, error) {
	rep := &Report{
		ID:     "fig11b",
		Title:  "Subquery latency vs chunk size x key selectivity",
		Header: []string{"chunk size", "sel=0.01", "sel=0.05", "sel=0.1"},
		Notes: []string{
			"chunk sizes scaled 1/16 vs paper; HDFS open delay kept at 2-50ms",
			"paper Fig.11(b): grows with chunk size; flattens at small chunks where the per-access delay dominates",
		},
	}
	queries := opt.n(20)
	for _, cs := range chunkSizes {
		fs, ms, span, charge := buildChunkFixture(cs, opt.Seed)
		charge.on = true // setup done; measured reads pay simulated I/O
		row := []any{chunkSizeLabel(cs)}
		for _, sel := range []float64{0.01, 0.05, 0.1} {
			qg := workload.NewQueryGen(span, opt.Seed+int64(sel*1000))
			rec := stats.NewRecorder()
			for q := 0; q < queries; q++ {
				// Fresh cache per query: measure cold subquery latency.
				qs := queryexec.NewServer(queryexec.ServerConfig{
					ID: 0, Node: 0, CacheBytes: 0, UseBloom: true,
				}, fs, ms)
				ci := ms.ChunksFor(model.FullRegion())[0]
				sq := &model.SubQuery{
					Region: model.Region{Keys: qg.KeyRange(sel), Times: model.FullTimeRange()},
					Chunk:  ci.ID,
				}
				t0 := time.Now()
				if _, err := qs.ExecuteSubQuery(sq); err != nil {
					return nil, err
				}
				rec.Record(time.Since(t0))
			}
			row = append(row, rec.Mean().Round(time.Microsecond).String())
		}
		rep.Add(row...)
		opt.logf("fig11b chunk=%s done", chunkSizeLabel(cs))
	}
	return rep, nil
}

func init() {
	register("fig11a", runFig11a)
	register("fig11b", runFig11b)
}
