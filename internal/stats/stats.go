// Package stats provides the small measurement toolkit the experiment
// harness uses: latency recorders with percentiles, throughput meters, and
// formatting helpers for the tables in EXPERIMENTS.md.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Recorder collects duration samples and reports order statistics. The
// sorted order is computed lazily and cached, so a burst of Percentile
// calls between recordings sorts once; the running sum makes Mean O(1).
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
	sum     time.Duration
	sorted  bool
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record adds one sample.
func (r *Recorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.sum += d
	r.sorted = false
	r.mu.Unlock()
}

// Count returns the number of samples.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

func (r *Recorder) ensureSortedLocked() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}

// percentileLocked returns the p-th percentile assuming the lock is held
// and the samples are sorted.
func (r *Recorder) percentileLocked(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 100 {
		return r.samples[len(r.samples)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(r.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return r.samples[rank]
}

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank; zero when empty.
func (r *Recorder) Percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensureSortedLocked()
	return r.percentileLocked(p)
}

// Mean returns the arithmetic mean; zero when empty.
func (r *Recorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / time.Duration(len(r.samples))
}

// Min and Max return the extremes; zero when empty.
func (r *Recorder) Min() time.Duration { return r.Percentile(0) }

// Max returns the largest sample; zero when empty.
func (r *Recorder) Max() time.Duration { return r.Percentile(100) }

// Summary is a compact snapshot of a recorder.
type Summary struct {
	Count            int
	Mean             time.Duration
	P50, P95, P99    time.Duration
	MinVal, MaxVal   time.Duration
	TotalWall        time.Duration // optional; set by callers
	ThroughputPerSec float64       // optional; set by callers
}

// Summarize returns a Summary of the recorder, taking the lock and
// sorting at most once for the whole snapshot.
func (r *Recorder) Summarize() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensureSortedLocked()
	s := Summary{
		Count:  len(r.samples),
		P50:    r.percentileLocked(50),
		P95:    r.percentileLocked(95),
		P99:    r.percentileLocked(99),
		MinVal: r.percentileLocked(0),
		MaxVal: r.percentileLocked(100),
	}
	if s.Count > 0 {
		s.Mean = r.sum / time.Duration(s.Count)
	}
	return s
}

// String renders a one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.MaxVal.Round(time.Microsecond))
}

// Meter measures event throughput over a wall-clock window.
type Meter struct {
	mu    sync.Mutex
	n     int64
	start time.Time
}

// NewMeter creates a meter starting now.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// Add counts n events.
func (m *Meter) Add(n int64) {
	m.mu.Lock()
	m.n += n
	m.mu.Unlock()
}

// Rate returns events per second since the meter started.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.n) / el
}

// Count returns the events counted so far.
func (m *Meter) Count() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// Reset zeroes the meter and restarts the clock.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.n = 0
	m.start = time.Now()
	m.mu.Unlock()
}

// Rate computes a throughput given a count and elapsed wall time.
func Rate(count int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(count) / elapsed.Seconds()
}

// HumanRate renders a rate as, e.g., "1.52M/s" or "48.3K/s".
func HumanRate(perSec float64) string {
	switch {
	case perSec >= 1e6:
		return fmt.Sprintf("%.2fM/s", perSec/1e6)
	case perSec >= 1e3:
		return fmt.Sprintf("%.1fK/s", perSec/1e3)
	default:
		return fmt.Sprintf("%.0f/s", perSec)
	}
}
