package stats

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderPercentiles(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if got := r.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := r.Percentile(99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := r.Min(); got != 1*time.Millisecond {
		t.Errorf("min = %v", got)
	}
	if got := r.Max(); got != 100*time.Millisecond {
		t.Errorf("max = %v", got)
	}
	if got := r.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
}

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder()
	if r.Percentile(50) != 0 || r.Mean() != 0 || r.Count() != 0 {
		t.Error("empty recorder should report zeros")
	}
	s := r.Summarize()
	if s.Count != 0 || s.P99 != 0 {
		t.Errorf("summary %+v", s)
	}
}

func TestRecorderInterleavedRecordAndRead(t *testing.T) {
	r := NewRecorder()
	r.Record(5 * time.Millisecond)
	_ = r.Percentile(50) // sorts
	r.Record(1 * time.Millisecond)
	if got := r.Min(); got != 1*time.Millisecond {
		t.Errorf("min after re-record = %v", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = r.Percentile(90)
				}
			}
		}()
	}
	wg.Wait()
	if r.Count() != 8000 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Add(100)
	m.Add(50)
	if m.Count() != 150 {
		t.Errorf("count = %d", m.Count())
	}
	if m.Rate() <= 0 {
		t.Error("rate should be positive")
	}
	m.Reset()
	if m.Count() != 0 {
		t.Error("reset failed")
	}
}

func TestRateAndHumanRate(t *testing.T) {
	if got := Rate(1000, time.Second); got != 1000 {
		t.Errorf("Rate = %f", got)
	}
	if got := Rate(1000, 0); got != 0 {
		t.Errorf("zero-elapsed Rate = %f", got)
	}
	cases := map[float64]string{
		1_520_000: "1.52M/s",
		48_300:    "48.3K/s",
		12:        "12/s",
	}
	for in, want := range cases {
		if got := HumanRate(in); got != want {
			t.Errorf("HumanRate(%f) = %q, want %q", in, got, want)
		}
	}
}
