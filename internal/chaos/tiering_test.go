package chaos

import (
	"testing"

	"waterwheel/internal/telemetry"
)

// TestChaosRetentionTieringSchedule is the retention suite: a hand-built
// schedule that interleaves tiered retention (demote → compact → drop)
// with concurrent queries, WAL truncation and standby takeovers. Enough
// virtual stream time passes that chunks age through warm into cold and
// real merges happen; the heal barriers then prove zero acked-tuple loss
// (completeness) and the query checks prove zero mid-query retirement
// errors — a chunk registered when a query planned stays readable until
// the query completes.
func TestChaosRetentionTieringSchedule(t *testing.T) {
	reg := telemetry.NewRegistry()
	r, err := newRunner(Options{Seed: 77, Tiering: true, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	var sched []op
	// ~7200 inserts advance the virtual clock ~75 s — past the 60 s cold
	// threshold — while retention, queries and takeovers interleave.
	for k := 0; k < 60; k++ {
		sched = append(sched, op{kind: opInsert, n: 120})
		switch k % 6 {
		case 1:
			sched = append(sched, op{kind: opFlush}, op{kind: opQuery})
		case 2:
			sched = append(sched, op{kind: opRetention}, op{kind: opQueryConcurrent, n: 4})
		case 3:
			sched = append(sched, op{kind: opTruncateWAL}, op{kind: opAggQuery})
		case 4:
			sched = append(sched, op{kind: opKillWithStandby, n: k}, op{kind: opQuery})
		case 5:
			sched = append(sched, op{kind: opPromote, n: k}, op{kind: opRetention}, op{kind: opBarrier})
		}
	}
	sched = append(sched, op{kind: opBarrier})
	r.runSchedule(sched)
	demotions := reg.Counter("waterwheel_tier_demotions_total", "").Value()
	merges := reg.Counter("waterwheel_compactions_total", "").Value()
	r.c.Stop()

	report(t, r.rep)
	if demotions == 0 {
		t.Error("no chunks ever demoted: the schedule never exercised tiering")
	}
	if merges == 0 {
		t.Error("no cold chunks ever merged: the schedule never exercised compaction")
	}
}

// TestChaosTieringSeeds runs the randomized harness with tiering on over
// a bank of seeds: retention ops demote and compact before dropping, and
// every run must still finish with zero invariant violations.
func TestChaosTieringSeeds(t *testing.T) {
	seeds := []int64{41, 42, 43, 44}
	ops := 60
	if !testing.Short() {
		seeds = append(seeds, 45, 46, 47, 48)
		ops = 120
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(sName(seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Options{Seed: seed, Ops: ops, Tiering: true})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			report(t, rep)
			if rep.Inserted == 0 || rep.Queries == 0 {
				t.Errorf("seed %d: degenerate schedule (inserted=%d queries=%d)",
					seed, rep.Inserted, rep.Queries)
			}
		})
	}
}
