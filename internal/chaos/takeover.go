package chaos

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"waterwheel/internal/cluster"
	"waterwheel/internal/model"
	"waterwheel/internal/telemetry"
)

// The takeover suite is the scripted counterpart of the random elastic
// schedule: a table of named, seeded scenarios that each aim a failover or
// topology change at a specific hostile moment — mid-burst, mid-flush,
// mid-handoff, back-to-back — and then hold the cluster to the same
// oracle-backed invariants the random harness enforces:
//
//   - zero acked-tuple loss under ack-on-fsync at every heal barrier;
//   - results sorted and region-contained on every verifying query;
//   - WAL/metadata offsets never regress;
//   - every handoff's ingest pause, measured by the cluster itself into
//     waterwheel_handoff_pause_seconds, stays under takeoverPauseBound.
//
// Scenarios run with hot standbys on every active slot, DataDir-backed
// durability under "ack-on-fsync" (so a lost acked tuple can never be
// excused), and a telemetry registry so the suite asserts against the
// exact metrics an operator would watch during a real migration.

// takeoverPauseBound is the ceiling the suite holds every handoff's ingest
// pause to — the ISSUE's "less than one flush interval". The harness
// cluster flushes its 4 KiB memtables continuously and group-commits on a
// 50 ms cadence; a healthy takeover detaches the consumer, CASes ownership
// and reattaches in well under a millisecond, so 500 ms (one conservative
// flush cycle, with the histogram's 2x bucket quantization and CI
// scheduling noise absorbed) only trips when a drain, flush or replay
// sneaks into the pause window — exactly the regression it exists to catch.
const takeoverPauseBound = 500 * time.Millisecond

// tkStep is one scripted step. pick indexes are reduced against the live
// slot set at execution time, exactly like the random schedule's.
type tkStep struct {
	op string // see takeoverRunner.step
	n  int    // tuple count for bursts, pick index for slot-targeted ops
}

// TakeoverSchedule is one named scripted scenario.
type TakeoverSchedule struct {
	Name    string
	Seed    int64
	ShipWAL bool // tail standbys over the WAL-shipping transport
	Steps   []tkStep
}

// TakeoverSchedules is the suite: every scenario the acceptance gate runs.
// Each entry targets one hostile interleaving the elastic design must
// survive; the comments name the moment being attacked.
var TakeoverSchedules = []TakeoverSchedule{
	{
		// Owner dies while a background burst is in full flight: acks race
		// the kill, the standby inherits a moving WAL tail.
		Name: "kill-mid-burst", Seed: 9001,
		Steps: []tkStep{
			{"burst", 200}, {"burst-bg", 400}, {"kill", 1}, {"join", 0},
			{"burst", 120}, {"barrier", 0},
		},
	},
	{
		// Owner dies with a flush snapshot provably stuck in the pipeline
		// (every DFS write failing): the takeover must not lose the
		// unflushed suffix the snapshot was carrying.
		Name: "kill-mid-flush", Seed: 9002,
		Steps: []tkStep{
			{"burst", 200}, {"midflush-kill", 0}, {"burst", 100}, {"barrier", 0},
		},
	},
	{
		// Kill lands immediately after a planned handoff flips ownership,
		// while the promoted owner is still replaying its handoff debt and
		// its fresh standby has barely started tailing.
		Name: "kill-mid-handoff", Seed: 9003,
		Steps: []tkStep{
			{"burst-bg", 400}, {"promote", 0}, {"kill", 0}, {"join", 0},
			{"burst", 120}, {"barrier", 0},
		},
	},
	{
		// Double failover, same slot: the second kill takes over the taker
		// before it has finished settling.
		Name: "double-failover-same-slot", Seed: 9004,
		Steps: []tkStep{
			{"burst", 250}, {"kill", 2}, {"kill", 2}, {"burst", 120}, {"barrier", 0},
		},
	},
	{
		// Double failover, distinct slots, under load: two takeovers race
		// one background burst.
		Name: "double-failover-two-slots", Seed: 9005,
		Steps: []tkStep{
			{"burst-bg", 500}, {"kill", 0}, {"kill", 3}, {"join", 0}, {"barrier", 0},
		},
	},
	{
		// Scale-out mid-burst: the widest interval splits while acks are in
		// flight; tuples routed to the old owner after the split must land
		// exactly once. The freshly split slot is then handed off while its
		// standby has only tailed the post-split suffix.
		Name: "add-mid-burst", Seed: 9006,
		Steps: []tkStep{
			{"burst", 200}, {"burst-bg", 500}, {"add", 0}, {"join", 0},
			{"burst", 150}, {"promote", 6}, {"barrier", 0},
		},
	},
	{
		// Scale-in mid-burst: the retiring slot's partition seals under a
		// live burst, so straggler appends must reroute, not vanish.
		Name: "decommission-mid-burst", Seed: 9007,
		Steps: []tkStep{
			{"burst", 200}, {"burst-bg", 500}, {"decom", 1}, {"join", 0},
			{"burst", 150}, {"barrier", 0},
		},
	},
	{
		// The neighbor that absorbed a decommissioned interval dies right
		// after the merge: its standby must replay the widened region.
		Name: "decommission-then-kill-neighbor", Seed: 9008,
		Steps: []tkStep{
			{"burst", 300}, {"decom", 2}, {"kill", 2}, {"burst", 120}, {"barrier", 0},
		},
	},
	{
		// Planned handoff right after a skew-driven repartition: the
		// standby's key interval moved under it before the flip.
		Name: "handoff-under-repartition", Seed: 9009,
		Steps: []tkStep{
			{"skew-burst", 400}, {"balance", 0}, {"promote", 0},
			{"burst", 120}, {"barrier", 0},
		},
	},
	{
		// Two planned handoffs under sustained load, standbys tailing over
		// the WAL-shipping transport — the cross-host path.
		Name: "planned-handoff-shipped-wal", Seed: 9010, ShipWAL: true,
		Steps: []tkStep{
			{"burst-bg", 600}, {"promote", 1}, {"promote", 3}, {"join", 0},
			{"barrier", 0},
		},
	},
	{
		// Takeovers followed by a full restart-from-disk: the reopened
		// coordinator must rebuild the post-churn topology from metadata
		// alone and still answer the complete oracle.
		Name: "takeover-then-restart", Seed: 9011,
		Steps: []tkStep{
			{"burst", 250}, {"kill", 1}, {"add", 0}, {"burst", 150},
			{"barrier", 0}, {"restart", 0}, {"barrier", 0},
		},
	},
}

// TakeoverReport is a scenario's outcome: the base oracle report plus the
// handoff metrics the suite asserted against.
type TakeoverReport struct {
	*Report
	Schedule string
	Handoffs int64         // waterwheel_handoffs_total
	PauseMax time.Duration // waterwheel_handoff_pause_seconds max (bucket upper bound)
	PauseP99 time.Duration // ... p99
	LagMax   int64         // waterwheel_handoff_lag_records max, in records
}

// takeoverRunner drives one scripted scenario. It reuses the random
// harness's runner (oracle, invariant checks, barrier machinery) and adds
// background bursts: tuples are pre-generated and reserved in the oracle on
// the main thread, then acked from a goroutine so failovers land mid-ack.
type takeoverRunner struct {
	*runner
	bg    sync.WaitGroup
	bgErr chan string
}

// RunTakeover executes one scenario against a fresh DataDir-backed cluster
// under ack-on-fsync with hot standbys, and returns its report. Like Run it
// never fails the test itself; callers inspect Report.Violations.
func RunTakeover(s TakeoverSchedule, dataDir string) (*TakeoverReport, error) {
	opts := Options{
		Seed:       s.Seed,
		Nodes:      3,
		DataDir:    dataDir,
		Durability: "ack-on-fsync",
		Elastic:    true,
		ShipWAL:    s.ShipWAL,
		Telemetry:  telemetry.NewRegistry(),
	}
	r, err := newRunner(opts)
	if err != nil {
		return nil, err
	}
	tr := &takeoverRunner{runner: r, bgErr: make(chan string, 16)}
	for i, st := range s.Steps {
		tr.trace(i, "%s n=%d", st.op, st.n)
		tr.step(i, st)
		tr.checkOffsets(i)
	}
	tr.join(len(s.Steps))
	tr.barrier(len(s.Steps))
	rep := tr.collectMetrics(s)
	tr.c.Stop()
	return rep, nil
}

func (tr *takeoverRunner) step(i int, st tkStep) {
	switch st.op {
	case "burst":
		tr.join(i)
		tr.insertBatch(i, st.n)
	case "skew-burst":
		tr.join(i)
		tr.skewBurst(i, st.n)
	case "burst-bg":
		tr.join(i)
		tr.burstBG(i, st.n)
	case "join":
		tr.join(i)
	case "flush":
		tr.c.FlushAll()
	case "balance":
		tr.c.TickBalance()
	case "midflush-kill":
		tr.join(i)
		tr.crashMidFlush(i, tr.pickSlot(st.n))
		tr.rep.FaultsSeen[FaultTakeover] = true
	case "add":
		tr.addServer(i)
	case "decom":
		tr.decommission(i, st.n)
	case "kill":
		server := tr.pickSlot(st.n)
		if err := tr.c.KillIndexServer(server); err != nil {
			tr.violate(i, "kill index server %d: %v", server, err)
		}
		tr.rep.FaultsSeen[FaultCrash] = true
		tr.rep.FaultsSeen[FaultTakeover] = true
	case "promote":
		tr.promote(i, st.n)
	case "barrier":
		tr.join(i)
		tr.barrier(i)
	case "restart":
		tr.join(i)
		tr.restart(i)
	default:
		tr.violate(i, "unknown takeover step %q", st.op)
	}
}

// burstBG reserves n oracle entries on the main thread (keys, timestamps
// and sequence numbers are fixed deterministically before launch), then
// acks them from a goroutine so subsequent steps land mid-burst. The
// scenarios arm no WAL faults, so every one of these inserts must ack —
// an insert error is itself a violation, collected at the next join.
func (tr *takeoverRunner) burstBG(i, n int) {
	sub := tr.subRNG(int(1000 + i))
	tuples := make([]model.Tuple, 0, n)
	for j := 0; j < n; j++ {
		key := model.Key(sub.Uint64() % keyDomain)
		tr.virtualNow += model.Timestamp(1 + sub.Int63n(20))
		payload := make([]byte, 8)
		binary.BigEndian.PutUint64(payload, uint64(len(tr.entries)))
		tuples = append(tuples, model.Tuple{Key: key, Time: tr.virtualNow, Payload: payload})
		tr.entries = append(tr.entries, entry{key: key, ts: tr.virtualNow})
		tr.rep.Inserted++
	}
	c := tr.c
	tr.bg.Add(1)
	go func() {
		defer tr.bg.Done()
		for j := range tuples {
			if err := c.Insert(tuples[j]); err != nil {
				select {
				case tr.bgErr <- fmt.Sprintf("background insert seq %d: %v",
					binary.BigEndian.Uint64(tuples[j].Payload), err):
				default:
				}
				return
			}
		}
	}()
}

// join waits out any background burst and surfaces its errors. Every step
// that touches the oracle or replaces the cluster joins first.
func (tr *takeoverRunner) join(i int) {
	tr.bg.Wait()
	for {
		select {
		case msg := <-tr.bgErr:
			tr.violate(i, "%s", msg)
		default:
			return
		}
	}
}

// skewBurst concentrates n tuples in a narrow key band so the balancer's
// next tick has real skew to repartition around.
func (tr *takeoverRunner) skewBurst(i, n int) {
	sub := tr.subRNG(i)
	hot := model.Key(sub.Uint64() % keyDomain)
	for j := 0; j < n; j++ {
		tr.virtualNow += model.Timestamp(1 + sub.Int63n(10))
		tr.insert(hot+model.Key(sub.Uint64()%512), tr.virtualNow)
	}
}

// restart stops the cluster and reopens it from the DataDir — the
// coordinator-restart-from-metadata path, after elastic churn.
func (tr *takeoverRunner) restart(i int) {
	tr.heal()
	tr.c.Stop()
	c2, err := cluster.Open(clusterConfig(tr.opts))
	if err != nil {
		tr.violate(i, "reopen after takeover churn: %v", err)
		return
	}
	tr.c = c2
	c2.Start()
	c2.Drain()
	tr.trace(i, "restart: reopened from %s with %d active slots",
		tr.opts.DataDir, len(c2.ActiveSlots()))
}

// collectMetrics reads the handoff metrics out of the registry and turns
// them into assertions: at least one handoff must have been recorded, and
// no pause may exceed takeoverPauseBound.
func (tr *takeoverRunner) collectMetrics(s TakeoverSchedule) *TakeoverReport {
	rep := &TakeoverReport{Report: tr.rep, Schedule: s.Name}
	for _, m := range tr.opts.Telemetry.Snapshot() {
		switch m.Name {
		case "waterwheel_handoffs_total":
			rep.Handoffs = int64(m.Value)
		case "waterwheel_handoff_pause_seconds":
			if m.Histogram != nil {
				rep.PauseMax = m.Histogram.Max
				rep.PauseP99 = m.Histogram.P99
			}
		case "waterwheel_handoff_lag_records":
			if m.Histogram != nil {
				// Recorded as records-as-seconds; convert back.
				rep.LagMax = int64(m.Histogram.Max / time.Second)
			}
		}
	}
	if rep.Handoffs == 0 {
		tr.violate(len(s.Steps), "schedule %s recorded no handoffs", s.Name)
	}
	if rep.PauseMax > takeoverPauseBound {
		tr.violate(len(s.Steps), "handoff ingest pause %v exceeds bound %v",
			rep.PauseMax, takeoverPauseBound)
	}
	return rep
}
