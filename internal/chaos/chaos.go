// Package chaos is a deterministic fault-injection harness for a full
// Waterwheel cluster. From a single RNG seed it pre-generates a schedule
// interleaving inserts, temporal range queries (solo and in concurrent
// bursts), aggregate queries cross-checked against the tuple path,
// chunk-format flips (so v1 and v2 chunks coexist), flushes, balancer
// ticks, retention drops, WAL truncation and faults — DFS node kill/revive,
// transient DFS write/read error injection, indexing-server crashes (plain
// and provably mid-flush) — then drives the cluster through it while
// checking global invariants after every step:
//
//   - soundness: every returned tuple was acked, lies inside the query
//     region, matches the oracle's key/time for its sequence number, and
//     appears at most once per result;
//   - results arrive in the global (key, time, payload) sort order;
//   - WAL/metadata flush offsets never regress;
//   - queries fail only while a read fault or DFS node loss is plausible;
//   - completeness: at every barrier (faults healed, pipeline drained) a
//     full-region query returns every acked tuple exactly once — tuples in
//     retention-dropped chunks are exempt but must still never duplicate.
//
// Determinism: the schedule — and therefore the trace — is a pure function
// of (seed, op count). Tuple-level randomness comes from a sub-RNG seeded
// by (seed, op index), and the cluster runs with a no-op DFS sleeper, a
// fault RNG seeded from the harness seed, and manual balancer ticks, so a
// failing seed replays the identical scenario.
//
// The hard-crash mode (Options.HardCrash, with a DataDir) ends the run by
// killing the host instead of stopping it: unsynced WAL bytes are
// discarded like a dying page cache, the cluster reopens from disk, and
// completeness is re-verified. Under Durability="ack-on-fsync" any acked
// tuple lost to the crash is a violation; under weaker policies losses are
// counted in Report.LostAcked — the measured ack-durability gap.
package chaos

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"waterwheel/internal/chunk"
	"waterwheel/internal/cluster"
	"waterwheel/internal/model"
	"waterwheel/internal/telemetry"
)

// Fault classes a run can prove it exercised (Report.FaultsSeen keys).
const (
	FaultDFSNodeLoss   = "dfs-node-loss"
	FaultDFSWriteError = "dfs-write-error"
	FaultDFSReadError  = "dfs-read-error"
	FaultCrash         = "index-server-crash"
	FaultCrashMidFlush = "index-server-crash-mid-flush"
	FaultWALAppend     = "wal-append-error"
	// Elastic classes (Options.Elastic runs and the takeover suite).
	FaultElasticAdd   = "elastic-add-server"
	FaultElasticDecom = "elastic-decommission"
	FaultTakeover     = "standby-takeover"
	FaultHandoff      = "planned-handoff"
)

// Options configures one harness run.
type Options struct {
	// Seed determines the whole scenario; same seed, same schedule.
	Seed int64
	// Ops is the schedule length (default 60). The schedule always begins
	// with inserts and ends with a barrier.
	Ops int
	// Nodes is the simulated node count (default 3, replication 2).
	Nodes int
	// DataDir, when set, runs the cluster durably (disk-backed WAL/DFS).
	DataDir string
	// Restart, with DataDir, stops the cluster after the schedule, reopens
	// it from disk and re-verifies completeness — end-to-end durability.
	Restart bool
	// Durability is the cluster's insert-ack policy ("", "ack-on-write",
	// "ack-on-fsync", "interval"); non-default values require DataDir.
	Durability string
	// HardCrash, with DataDir, appends a crash epilogue after the schedule:
	// drain + checkpoint, insert a small acked tail guaranteed to miss the
	// flush pipeline, then kill the cluster discarding every WAL byte past
	// the fsync watermark (the page cache dies with the host), reopen, and
	// re-verify. Under "ack-on-fsync" zero acked tuples may be lost; under
	// any other policy lost acked tuples are counted in Report.LostAcked
	// instead of flagged as violations — that loss window is the documented
	// cost of the policy. Takes precedence over Restart.
	HardCrash bool
	// Elastic mixes elastic scale-out ops into the random schedule —
	// add-server, decommission, kill-with-standby, planned handoff — and
	// runs the cluster with hot standbys on every active slot. Slot ids in
	// the schedule are resolved against the live topology at execution
	// time, so the op sequence stays a pure function of the seed even as
	// the slot set changes.
	Elastic bool
	// ShipWAL, with Elastic, tails the standbys over the WAL-shipping
	// transport (loopback RPC) instead of in-process partition reads.
	ShipWAL bool
	// Telemetry, when set, is plumbed into the cluster so the run's
	// handoff metrics (pause, lag, count) can be asserted afterwards.
	Telemetry *telemetry.Registry
	// Tiering runs the cluster with hierarchical time tiering: retention
	// ops demote aging chunks and compact cold ones into downsampled
	// chunks before dropping, so drops, demotions and merges interleave
	// with concurrent queries. Oracle entries covered by a merge become
	// optional (their raw tuples were replaced by downsampled rows);
	// downsampled rows themselves are checked for region containment.
	Tiering bool
}

func (o *Options) fill() {
	if o.Ops <= 0 {
		o.Ops = 60
	}
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
}

// Report is the outcome of a run. A correct system yields zero violations
// for every seed.
type Report struct {
	Seed       int64
	Trace      []string // one line per executed op; outcome-independent
	Violations []string // invariant breaches, each tagged with its op index
	Inserted   int
	Queries    int
	// AggChecks counts aggregate queries whose result was verified exactly
	// against the tuples a simultaneous range query returned.
	AggChecks int
	// FormatFlips counts chunk-format switches executed by the schedule, so
	// a mixed-format run can prove both layouts were written.
	FormatFlips int
	// LostAcked counts acked tuples missing after a hard crash under a
	// durability policy that permits loss (anything but "ack-on-fsync").
	// Such losses are expected — the run still verifies soundness and
	// uniqueness — but the count quantifies the ack-durability gap.
	LostAcked int
	// BatchRejections counts vectorized inserts that an armed WAL append
	// fault actually stopped mid-batch; the acked prefix of each entered
	// the oracle and the rejected tail did not.
	BatchRejections int
	FaultsSeen      map[string]bool
}

// opKind enumerates schedule steps.
type opKind int

const (
	opInsert opKind = iota
	opInsertBatch
	opQuery
	opQueryConcurrent
	opAggQuery
	opFlipFormat
	opFlush
	opBalance
	opRetention
	opTruncateWAL
	opKillDFS
	opReviveDFS
	opWriteFaults
	opReadFaults
	opCrash
	opCrashMidFlush
	opBarrier
	// Elastic ops (only generated when Options.Elastic is set).
	opAddServer
	opDecommission
	opKillWithStandby
	opPromote
)

var opNames = map[opKind]string{
	opInsert: "insert", opInsertBatch: "insert-batch", opQuery: "query",
	opQueryConcurrent: "query-concurrent", opFlush: "flush-all",
	opAggQuery: "agg-query", opFlipFormat: "flip-chunk-format",
	opBalance: "tick-balance", opRetention: "retention",
	opTruncateWAL: "truncate-wal", opKillDFS: "kill-dfs",
	opReviveDFS: "revive-dfs", opWriteFaults: "write-faults",
	opReadFaults: "read-faults", opCrash: "crash",
	opCrashMidFlush: "crash-mid-flush", opBarrier: "barrier",
	opAddServer: "add-server", opDecommission: "decommission",
	opKillWithStandby: "kill-with-standby", opPromote: "promote-standby",
}

// op is one pre-generated schedule step. All parameters are fixed at
// schedule-generation time so the trace cannot depend on execution outcome.
type op struct {
	kind opKind
	n    int     // batch size, fail-next count, node or server id
	alt  bool    // variant switch (rate-based vs fail-next faults, ...)
	rate float64 // fault probability for rate-based injection
}

func (o op) String() string {
	switch o.kind {
	case opInsert, opQueryConcurrent:
		return fmt.Sprintf("%s n=%d", opNames[o.kind], o.n)
	case opInsertBatch:
		return fmt.Sprintf("%s n=%d fault=%v", opNames[o.kind], o.n, o.alt)
	case opKillDFS, opReviveDFS:
		return fmt.Sprintf("%s node=%d", opNames[o.kind], o.n)
	case opCrash, opCrashMidFlush, opDecommission, opKillWithStandby, opPromote:
		// n is a pick index, resolved against the live slot set at exec time.
		return fmt.Sprintf("%s pick=%d", opNames[o.kind], o.n)
	case opWriteFaults, opReadFaults:
		if o.alt {
			return fmt.Sprintf("%s rate=%.2f", opNames[o.kind], o.rate)
		}
		return fmt.Sprintf("%s next=%d", opNames[o.kind], o.n)
	default:
		return opNames[o.kind]
	}
}

// weights shape the schedule mix; inserts and queries dominate, faults are
// frequent enough that every multi-seed run exercises each class.
var weights = []struct {
	kind opKind
	w    int
}{
	{opInsert, 22}, {opInsertBatch, 8}, {opQuery, 14}, {opQueryConcurrent, 6},
	{opAggQuery, 8}, {opFlipFormat, 4},
	{opFlush, 7}, {opBalance, 5},
	{opRetention, 4}, {opTruncateWAL, 4}, {opKillDFS, 4}, {opReviveDFS, 6},
	{opWriteFaults, 5}, {opReadFaults, 5}, {opCrash, 3}, {opCrashMidFlush, 2},
	{opBarrier, 7},
}

// elasticWeights extends the mix for Options.Elastic runs: topology churn
// is rare enough that data ops still dominate, frequent enough that a
// multi-seed run grows, shrinks and fails over the slot set several times.
var elasticWeights = []struct {
	kind opKind
	w    int
}{
	{opAddServer, 2}, {opDecommission, 2}, {opKillWithStandby, 2}, {opPromote, 2},
}

// genSchedule derives the op sequence from the seed alone. nIdx and nodes
// bound the id parameters; elastic adds the topology-churn ops to the mix.
// Elastic server picks are stored as raw indexes and reduced modulo the
// live slot set at execution time, so the schedule stays a pure function
// of the seed even though the topology it runs against evolves.
func genSchedule(seed int64, nOps, nodes, nIdx int, elastic bool) []op {
	master := rand.New(rand.NewSource(seed))
	mix := weights
	if elastic {
		mix = append(append([]struct {
			kind opKind
			w    int
		}{}, weights...), elasticWeights...)
	}
	total := 0
	for _, w := range mix {
		total += w.w
	}
	sched := make([]op, 0, nOps)
	for i := 0; i < nOps; i++ {
		var o op
		if i < 3 {
			o.kind = opInsert // open with data so early ops have substance
		} else if i == nOps-1 {
			o.kind = opBarrier // always end healed and fully verified
		} else {
			pick := master.Intn(total)
			for _, w := range mix {
				if pick < w.w {
					o.kind = w.kind
					break
				}
				pick -= w.w
			}
		}
		switch o.kind {
		case opInsert:
			o.n = 20 + master.Intn(100)
		case opInsertBatch:
			o.n = 20 + master.Intn(200)
			o.alt = master.Intn(2) == 0 // arm a one-shot WAL append fault
		case opQueryConcurrent:
			o.n = 2 + master.Intn(5)
		case opKillDFS, opReviveDFS:
			o.n = master.Intn(nodes)
		case opCrash, opCrashMidFlush, opDecommission, opKillWithStandby, opPromote:
			o.n = master.Intn(nIdx)
		case opWriteFaults:
			o.alt = master.Intn(2) == 0
			o.n = 1 + master.Intn(6)
			o.rate = 0.2 + 0.5*master.Float64()
		case opReadFaults:
			o.alt = master.Intn(2) == 0
			o.n = 1 + master.Intn(6)
			o.rate = 0.2 + 0.4*master.Float64()
		}
		sched = append(sched, o)
	}
	return sched
}

// entry is one acked insert in the oracle, indexed by the sequence number
// embedded in the tuple payload.
type entry struct {
	key model.Key
	ts  model.Timestamp
	// maybeDropped: a retention horizon passed this entry's timestamp, so
	// a chunk holding it may have been dropped — presence is optional,
	// uniqueness still mandatory.
	maybeDropped bool
}

// runner holds the mutable state of one run.
type runner struct {
	opts Options
	c    *cluster.Cluster
	rep  *Report

	entries    []entry
	virtualNow model.Timestamp
	maxOffsets []int64
	killedDFS  map[int]bool
	// readFaultsPossible: a read-fault op ran since the last barrier, so
	// query errors are excusable until the next heal.
	readFaultsPossible bool
	// ackLossOK: a hard crash happened under a durability policy that does
	// not promise fsync-before-ack, so missing acked tuples are tallied in
	// Report.LostAcked rather than reported as violations.
	ackLossOK bool
	nIdx      int
}

const (
	baseTime  model.Timestamp = 1_000_000 // virtual stream start, ms
	keyDomain                 = 1 << 20
	// Tiering thresholds for Options.Tiering runs, scaled to the virtual
	// clock (a schedule advances it by tens of thousands of ms): chunks
	// aging past these lags behind the stream's max time demote.
	tierWarmAfter int64 = 20_000
	tierColdAfter int64 = 60_000
)

// clusterConfig builds the small, flush-happy cluster the harness drives:
// tiny chunks so flushes and chunk queries happen constantly, a shallow
// flush queue so backpressure and mid-flight failures are reachable, and a
// no-op sleeper so simulated DFS latency costs no wall-clock time.
func clusterConfig(opts Options) cluster.Config {
	cfg := cluster.Config{
		Nodes:                 opts.Nodes,
		IndexServersPerNode:   2,
		QueryServersPerNode:   2,
		DispatchersPerNode:    1,
		ChunkBytes:            4 << 10,
		Replication:           2,
		FlushQueueDepth:       4,
		TemplateLeaves:        32,
		BalanceIntervalMillis: 0, // manual TickBalance only
		Seed:                  opts.Seed,
		DFSFaultSeed:          opts.Seed + 1,
		SleepFn:               func(time.Duration) {},
		DataDir:               opts.DataDir,
		Durability:            opts.Durability,
		HotStandby:            opts.Elastic,
		ShipStandbyWAL:        opts.ShipWAL,
		StandbyLagRecords:     32,
		Telemetry:             opts.Telemetry,
	}
	if opts.Tiering {
		cfg.TierWarmAfterMillis = tierWarmAfter
		cfg.TierColdAfterMillis = tierColdAfter
		// CompactIntervalMillis stays 0: retention ops call TickCompact
		// explicitly so the schedule remains deterministic.
	}
	return cfg
}

// newRunner opens the cluster for opts and returns a runner ready to
// execute a schedule.
func newRunner(opts Options) (*runner, error) {
	opts.fill()
	cfg := clusterConfig(opts)
	nIdx := cfg.Nodes * cfg.IndexServersPerNode
	c, err := cluster.Open(cfg)
	if err != nil {
		return nil, err
	}
	c.Start()
	return &runner{
		opts:       opts,
		c:          c,
		rep:        &Report{Seed: opts.Seed, FaultsSeen: map[string]bool{}},
		virtualNow: baseTime,
		maxOffsets: make([]int64, nIdx),
		killedDFS:  map[int]bool{},
		nIdx:       nIdx,
	}, nil
}

// Run executes one seeded scenario and returns its report. It never calls
// t.Fatal itself so callers (tests, wwbench) decide how to surface
// violations; an error is returned only when the cluster cannot open.
func Run(opts Options) (*Report, error) {
	opts.fill()
	r, err := newRunner(opts)
	if err != nil {
		return nil, err
	}
	sched := genSchedule(opts.Seed, opts.Ops, r.opts.Nodes, r.nIdx, opts.Elastic)
	r.runSchedule(sched)
	if opts.HardCrash && opts.DataDir != "" {
		return r.rep, r.hardCrashEpilogue(len(sched))
	}
	if opts.Restart && opts.DataDir != "" {
		r.heal()
		r.c.Stop()
		c2, err := cluster.Open(clusterConfig(r.opts))
		if err != nil {
			return r.rep, fmt.Errorf("chaos: reopen: %w", err)
		}
		r.c = c2
		c2.Start()
		r.trace(len(sched), "restart: reopened from %s", opts.DataDir)
		r.c.Drain()
		r.verifyComplete(len(sched))
		c2.Stop()
		return r.rep, nil
	}
	r.c.Stop()
	return r.rep, nil
}

// hardCrashEpilogue probes the ack-durability gap. It settles the cluster
// (heal, drain, flush, checkpoint) so the fsync watermark provably covers
// everything acked so far, then inserts a fixed tail of tuples small
// enough that no flush — and therefore no flush-path SyncTo — will run
// before the crash. Under "ack-on-fsync" each of those acks already paid
// for an fsync, so the tail survives the crash; under "ack-on-write" the
// tail sits in the page cache and is discarded with it, surfacing as
// Report.LostAcked after the reopen.
func (r *runner) hardCrashEpilogue(i int) error {
	r.heal()
	r.c.Drain()
	r.c.FlushAll()
	r.c.Drain()
	if err := r.c.Checkpoint(); err != nil {
		r.violate(i, "checkpoint before hard crash: %v", err)
	}
	sub := r.subRNG(i)
	const tail = 40 // ~1 KiB across all partitions: below every flush threshold
	for j := 0; j < tail; j++ {
		r.virtualNow += model.Timestamp(1 + sub.Int63n(20))
		r.insert(model.Key(sub.Uint64()%keyDomain), r.virtualNow)
	}
	policy := r.opts.Durability
	if policy == "" {
		policy = "ack-on-write"
	}
	r.trace(i, "hard-crash: %d acked tail tuples under %s, then host dies", tail, policy)
	if err := r.c.HardCrash(); err != nil {
		r.violate(i, "hard crash: %v", err)
	}
	c2, err := cluster.Open(clusterConfig(r.opts))
	if err != nil {
		return fmt.Errorf("chaos: reopen after hard crash: %w", err)
	}
	r.c = c2
	c2.Start()
	r.trace(i+1, "hard-crash: reopened from %s", r.opts.DataDir)
	c2.Drain()
	r.ackLossOK = r.opts.Durability != "ack-on-fsync"
	r.verifyComplete(i + 1)
	c2.Stop()
	return nil
}

func (r *runner) runSchedule(sched []op) {
	for i, o := range sched {
		r.trace(i, "%s", o)
		r.exec(i, o)
		r.checkOffsets(i)
	}
}

func (r *runner) trace(i int, format string, args ...any) {
	r.rep.Trace = append(r.rep.Trace, fmt.Sprintf("%03d %s", i, fmt.Sprintf(format, args...)))
}

func (r *runner) violate(i int, format string, args ...any) {
	r.rep.Violations = append(r.rep.Violations,
		fmt.Sprintf("op %03d: %s", i, fmt.Sprintf(format, args...)))
}

// subRNG returns the per-op randomness source: a fixed mix of the seed and
// the op index, so replaying a seed replays every tuple and range.
func (r *runner) subRNG(i int) *rand.Rand {
	return rand.New(rand.NewSource(r.opts.Seed*1_000_003 + int64(i)*7919))
}

func (r *runner) exec(i int, o op) {
	switch o.kind {
	case opInsert:
		r.insertBatch(i, o.n)
	case opInsertBatch:
		r.insertVectorBatch(i, o.n, o.alt)
	case opQuery:
		r.query(i)
	case opQueryConcurrent:
		r.queryConcurrent(i, o.n)
	case opAggQuery:
		r.aggQuery(i)
	case opFlipFormat:
		r.flipFormat()
	case opFlush:
		r.c.FlushAll()
	case opBalance:
		r.c.TickBalance()
	case opRetention:
		r.retention(i)
	case opTruncateWAL:
		r.c.TruncateWALBefore()
	case opKillDFS:
		r.c.FS().KillNode(o.n)
		r.killedDFS[o.n] = true
		r.rep.FaultsSeen[FaultDFSNodeLoss] = true
	case opReviveDFS:
		r.c.FS().ReviveNode(o.n)
		delete(r.killedDFS, o.n)
	case opWriteFaults:
		if o.alt {
			r.c.FS().SetWriteFailRate(o.rate)
		} else {
			r.c.FS().FailNextWrites(o.n)
		}
		r.rep.FaultsSeen[FaultDFSWriteError] = true
	case opReadFaults:
		if o.alt {
			r.c.FS().SetReadFailRate(o.rate)
		} else {
			r.c.FS().FailNextReads(o.n)
		}
		r.readFaultsPossible = true
		r.rep.FaultsSeen[FaultDFSReadError] = true
	case opCrash:
		server := r.pickSlot(o.n)
		if err := r.c.KillIndexServer(server); err != nil {
			r.violate(i, "kill index server %d: %v", server, err)
		}
		r.rep.FaultsSeen[FaultCrash] = true
		if r.opts.Elastic {
			// Hot standbys are on, so the kill resolved as a takeover.
			r.rep.FaultsSeen[FaultTakeover] = true
		}
	case opCrashMidFlush:
		r.crashMidFlush(i, r.pickSlot(o.n))
	case opAddServer:
		r.addServer(i)
	case opDecommission:
		r.decommission(i, o.n)
	case opKillWithStandby:
		r.killWithStandby(i, o.n)
	case opPromote:
		r.promote(i, o.n)
	case opBarrier:
		r.barrier(i)
	}
}

// pickSlot reduces a schedule pick index to a live slot id. The slot set
// may have grown or shrunk since the schedule was generated; the reduction
// is deterministic given the op history, so a seed still replays exactly.
func (r *runner) pickSlot(pick int) int {
	slots := r.c.ActiveSlots()
	return slots[pick%len(slots)]
}

// maxExtraSlots caps schedule-driven add-server growth so a churn-heavy
// seed cannot grow the cluster without bound.
const maxExtraSlots = 4

func (r *runner) addServer(i int) {
	if len(r.c.ActiveSlots()) >= r.nIdx+maxExtraSlots {
		r.trace(i, "add-server skipped: at slot cap")
		return
	}
	id, err := r.c.AddIndexServer()
	if err != nil {
		r.violate(i, "add index server: %v", err)
		return
	}
	r.trace(i, "add-server: slot %d joined, %d active", id, len(r.c.ActiveSlots()))
	r.rep.FaultsSeen[FaultElasticAdd] = true
}

func (r *runner) decommission(i, pick int) {
	slots := r.c.ActiveSlots()
	if len(slots) < 3 {
		r.trace(i, "decommission skipped: only %d active slots", len(slots))
		return
	}
	server := slots[pick%len(slots)]
	// Decommission drains the slot through the flush pipeline; with DFS
	// nodes down a replicated write can be impossible and the drain would
	// never finish. Revive nodes first (any operator would) but leave
	// rate-based write faults armed — those retries must still converge.
	for node := range r.killedDFS {
		r.c.FS().ReviveNode(node)
		delete(r.killedDFS, node)
	}
	if err := r.c.DecommissionIndexServer(server); err != nil {
		r.violate(i, "decommission index server %d: %v", server, err)
		return
	}
	r.trace(i, "decommission: slot %d drained out, %d active", server, len(r.c.ActiveSlots()))
	r.rep.FaultsSeen[FaultElasticDecom] = true
}

// killWithStandby guarantees a standby exists and has bounded replay lag
// before killing the owner, so the takeover path (promote + WAL tail
// replay) is what recovers — not a cold rebuild.
func (r *runner) killWithStandby(i, pick int) {
	server := r.pickSlot(pick)
	if !r.c.HasStandby(server) {
		if err := r.c.StartStandby(server); err != nil {
			r.violate(i, "start standby for slot %d: %v", server, err)
			return
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if lag := r.c.StandbyLag(server); lag >= 0 && lag <= 64 {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := r.c.KillIndexServer(server); err != nil {
		r.violate(i, "kill index server %d with standby: %v", server, err)
		return
	}
	r.rep.FaultsSeen[FaultCrash] = true
	r.rep.FaultsSeen[FaultTakeover] = true
}

func (r *runner) promote(i, pick int) {
	server := r.pickSlot(pick)
	if !r.c.HasStandby(server) {
		if err := r.c.StartStandby(server); err != nil {
			r.violate(i, "start standby for slot %d: %v", server, err)
			return
		}
	}
	if err := r.c.PromoteStandby(server); err != nil {
		r.violate(i, "promote standby for slot %d: %v", server, err)
		return
	}
	r.rep.FaultsSeen[FaultHandoff] = true
}

// insertBatch acks n tuples through the dispatchers and records them in
// the oracle. Payloads carry the oracle sequence number; timestamps mostly
// advance the virtual stream clock, with a late tail (some beyond the
// side-store threshold).
func (r *runner) insertBatch(i, n int) {
	sub := r.subRNG(i)
	hot := model.Key(sub.Uint64() % keyDomain)
	for j := 0; j < n; j++ {
		var key model.Key
		if sub.Intn(10) < 3 {
			key = hot + model.Key(sub.Uint64()%256) // skewed cluster
		} else {
			key = model.Key(sub.Uint64() % keyDomain)
		}
		r.virtualNow += model.Timestamp(1 + sub.Int63n(30))
		ts := r.virtualNow
		switch lat := sub.Intn(100); {
		case lat < 3: // very late: side-store territory (>60 s)
			ts -= 60_000 + model.Timestamp(sub.Int63n(60_000))
		case lat < 13: // mildly late: stays in the main tree
			ts -= model.Timestamp(sub.Int63n(30_000))
		}
		if ts < 0 {
			ts = 0
		}
		r.insert(key, ts)
	}
}

func (r *runner) insert(key model.Key, ts model.Timestamp) {
	seq := uint64(len(r.entries))
	payload := make([]byte, 8)
	binary.BigEndian.PutUint64(payload, seq)
	if err := r.c.Insert(model.Tuple{Key: key, Time: ts, Payload: payload}); err != nil {
		// Rejected means not acked: the oracle must not expect it. The
		// harness injects no WAL-file faults, so rejections are not normally
		// reachable here — but the contract is what we hold the system to.
		return
	}
	r.entries = append(r.entries, entry{key: key, ts: ts})
	r.rep.Inserted++
}

// insertVectorBatch drives n tuples through Cluster.InsertBatch — the
// vectorized wire-to-leaf path — optionally arming a one-shot WAL append
// fault on a random partition first. The cluster reports an exact acked
// prefix; only that prefix enters the oracle. The barrier's soundness and
// completeness checks then prove prefix-ack exactness end to end: a lost
// acked tuple fails completeness, and a rejected tuple that leaked into
// the trees surfaces as an unknown or mismatched sequence number.
func (r *runner) insertVectorBatch(i, n int, fault bool) {
	sub := r.subRNG(i)
	hot := model.Key(sub.Uint64() % keyDomain)
	batch := make([]model.Tuple, 0, n)
	for j := 0; j < n; j++ {
		var key model.Key
		if sub.Intn(10) < 3 {
			key = hot + model.Key(sub.Uint64()%256) // skewed cluster
		} else {
			key = model.Key(sub.Uint64() % keyDomain)
		}
		r.virtualNow += model.Timestamp(1 + sub.Int63n(30))
		ts := r.virtualNow
		switch lat := sub.Intn(100); {
		case lat < 3: // very late: side-store territory (>60 s)
			ts -= 60_000 + model.Timestamp(sub.Int63n(60_000))
		case lat < 13: // mildly late: stays in the main tree
			ts -= model.Timestamp(sub.Int63n(30_000))
		}
		if ts < 0 {
			ts = 0
		}
		payload := make([]byte, 8)
		binary.BigEndian.PutUint64(payload, uint64(len(r.entries))+uint64(len(batch)))
		batch = append(batch, model.Tuple{Key: key, Time: ts, Payload: payload})
	}
	target := -1
	if fault {
		// Aim at the partition a mid-batch tuple routes to, so the shot
		// reliably fires mid-batch rather than on a partition the batch
		// never reaches.
		target = r.c.Metadata().Schema().ServerFor(batch[len(batch)/2].Key)
		r.c.WAL().Partition(target).FailNextAppends(1)
		r.rep.FaultsSeen[FaultWALAppend] = true
	}
	accepted, err := r.c.InsertBatch(batch)
	if target >= 0 {
		// Disarm an unfired shot (the batch may never route to the target
		// partition) so it cannot reject an unrelated later insert.
		r.c.WAL().Partition(target).FailNextAppends(0)
	}
	if err == nil && accepted != len(batch) {
		r.violate(i, "InsertBatch acked %d/%d without an error", accepted, len(batch))
	}
	if err != nil {
		if accepted >= len(batch) {
			r.violate(i, "InsertBatch reported an error after a full ack: %v", err)
		}
		if !fault {
			r.violate(i, "InsertBatch failed with no armed fault: %v", err)
		}
		r.rep.BatchRejections++
	}
	if accepted > len(batch) {
		accepted = len(batch)
	}
	for j := 0; j < accepted; j++ {
		r.entries = append(r.entries, entry{key: batch[j].Key, ts: batch[j].Time})
		r.rep.Inserted++
	}
}

// randQuery draws one temporal range query from sub: 80% a proper
// sub-range on both dimensions, 20% the full region.
func (r *runner) randQuery(sub *rand.Rand) model.Query {
	q := model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()}
	if sub.Intn(5) > 0 {
		lo := model.Key(sub.Uint64() % keyDomain)
		q.Keys = model.KeyRange{Lo: lo, Hi: lo + model.Key(sub.Uint64()%(keyDomain/4))}
		span := int64(r.virtualNow-baseTime) + 130_000
		tlo := baseTime - 130_000 + model.Timestamp(sub.Int63n(span))
		q.Times = model.TimeRange{Lo: tlo, Hi: tlo + model.Timestamp(sub.Int63n(span))}
	}
	return q
}

// query runs one random temporal range query and checks soundness.
func (r *runner) query(i int) {
	q := r.randQuery(r.subRNG(i))
	r.rep.Queries++
	res, err := r.c.Query(q)
	if err != nil {
		if !r.readFaultsPossible && len(r.killedDFS) == 0 {
			r.violate(i, "query failed with no read fault plausible: %v", err)
		}
		return
	}
	r.checkResult(i, q, res, false)
}

// aggQuery cross-checks the aggregation-pushdown path against the tuple
// path: the SUM aggregate over a random region is sandwiched between two
// tuple queries of the same region. WAL consumption is asynchronous, so
// tuples may become visible at any point between the three calls — but
// visibility only grows, so when both tuple queries fold to the same
// partial the visible set provably did not move and the aggregate (which
// ran in between) must match it bit-for-bit. Chaos payloads are the
// 8-byte oracle sequence number, so field 0 is a valid uint64 on every
// tuple. When the folds differ the stream was still settling and the op
// only checks soundness of the tuple results.
func (r *runner) aggQuery(i int) {
	q := r.randQuery(r.subRNG(i))
	excusable := len(r.killedDFS) > 0
	fold := func(res *model.Result) model.AggPartial {
		var p model.AggPartial
		for j := range res.Tuples {
			p.AddTuple(&res.Tuples[j], 0)
		}
		return p
	}
	r.rep.Queries++
	before, err := r.c.Query(q)
	if err != nil {
		if !r.readFaultsPossible && !excusable {
			r.violate(i, "query failed with no read fault plausible: %v", err)
		}
		return
	}
	r.checkResult(i, q, before, false)
	agg, err := r.c.Aggregate(model.AggregateQuery{
		Keys: q.Keys, Times: q.Times, Kind: model.AggSum, Field: 0,
	})
	if err != nil {
		if !r.readFaultsPossible && !excusable {
			r.violate(i, "aggregate failed with no read fault plausible: %v", err)
		}
		return
	}
	r.rep.Queries++
	after, err := r.c.Query(q)
	if err != nil {
		if !r.readFaultsPossible && !excusable {
			r.violate(i, "query failed with no read fault plausible: %v", err)
		}
		return
	}
	r.checkResult(i, q, after, false)
	want := fold(before)
	if want != fold(after) {
		return // stream still settling: the sandwich cannot pin the exact answer
	}
	if agg.Count != want.Count || agg.Values != want.Values || agg.Sum != want.Sum {
		r.violate(i, "aggregate mismatch: count=%d/%d values=%d/%d sum=%d/%d (got/want)",
			agg.Count, want.Count, agg.Values, want.Values, agg.Sum, want.Sum)
	} else if want.Values > 0 && (agg.Min != want.Min || agg.Max != want.Max) {
		r.violate(i, "aggregate min/max mismatch: min=%d/%d max=%d/%d (got/want)",
			agg.Min, want.Min, agg.Max, want.Max)
	} else {
		r.rep.AggChecks++
	}
}

// flipFormat alternates the chunk format the indexing servers write —
// v1 on odd flips, back to v2 on even — so a schedule with flips and
// flushes queries clusters holding both layouts at once.
func (r *runner) flipFormat() {
	r.rep.FormatFlips++
	if r.rep.FormatFlips%2 == 1 {
		r.c.SetChunkFormat(chunk.FormatV1)
	} else {
		r.c.SetChunkFormat(chunk.FormatV2)
	}
}

// queryConcurrent fires k random queries at the cluster at once — the
// schedule's probe for read-path races: overlapping queries contend on
// the dispatch workers, the shared extent flights and the LRU caches.
// The query specs are drawn up front from the op's sub-RNG and the
// (read-only) results are checked serially afterwards, so the op stays
// deterministic and oracle checks never race.
func (r *runner) queryConcurrent(i, k int) {
	sub := r.subRNG(i)
	qs := make([]model.Query, k)
	for j := range qs {
		qs[j] = r.randQuery(sub)
	}
	results := make([]*model.Result, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for j := range qs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			results[j], errs[j] = r.c.Query(qs[j])
		}(j)
	}
	wg.Wait()
	for j := range qs {
		r.rep.Queries++
		if errs[j] != nil {
			if !r.readFaultsPossible && len(r.killedDFS) == 0 {
				r.violate(i, "concurrent query %d failed with no read fault plausible: %v", j, errs[j])
			}
			continue
		}
		r.checkResult(i, qs[j], results[j], false)
	}
}

// retention drops chunks wholly before a horizon trailing the stream clock
// and marks oracle entries older than it as optional-but-unique. With
// tiering on it first runs a compaction round — demote aging chunks,
// merge cold ones into downsampled chunks — so the drop only ever
// discards the coldest tier, and raw tuples replaced by downsampled rows
// become optional in the oracle.
func (r *runner) retention(i int) {
	sub := r.subRNG(i)
	if r.opts.Tiering {
		demoted, merged := r.c.TickCompact()
		r.trace(i, "tiering: %d demoted, %d merges", demoted, merged)
		if merged > 0 {
			// Every chunk eligible for merging had aged past the cold
			// threshold; its raw tuples may now exist only as downsampled
			// rows. Presence becomes optional, uniqueness still holds.
			cutoff := r.c.Metadata().MaxTime() - model.Timestamp(tierColdAfter)
			for j := range r.entries {
				if r.entries[j].ts <= cutoff {
					r.entries[j].maybeDropped = true
				}
			}
		}
	}
	horizon := r.virtualNow - 100_000 + model.Timestamp(sub.Int63n(50_000))
	for j := range r.entries {
		if r.entries[j].ts < horizon {
			r.entries[j].maybeDropped = true
		}
	}
	n := r.c.DropChunksBefore(horizon)
	_ = n // count varies with flush timing; the oracle marking is what matters
}

// crashMidFlush forces every DFS write to fail, floods one indexing server
// past its flush threshold, waits until a snapshot is provably stuck in
// the pipeline (PendingFlushes > 0), and crashes the server with the flush
// in flight. The fault class counts as covered only when the stuck
// snapshot was actually observed.
func (r *runner) crashMidFlush(i, server int) {
	sub := r.subRNG(i)
	r.c.FS().SetWriteFailRate(1)
	kr := r.c.Metadata().Schema().IntervalOf(server)
	span := uint64(kr.Hi - kr.Lo)
	if span > 1<<16 {
		span = 1 << 16
	}
	// ~24 B per tuple vs a 4 KiB chunk threshold: 256 tuples cross it.
	for j := 0; j < 256; j++ {
		r.virtualNow += model.Timestamp(1 + sub.Int63n(3))
		r.insert(kr.Lo+model.Key(sub.Uint64()%(span+1)), r.virtualNow)
	}
	stuck := false
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		// Retired slots appear as nil in the slot table; a slot this op
		// targeted can retire under a concurrent schedule.
		srv := r.c.IndexServers()[server]
		if srv == nil {
			break
		}
		if srv.PendingFlushes() > 0 {
			stuck = true
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := r.c.KillIndexServer(server); err != nil {
		r.violate(i, "kill index server %d: %v", server, err)
	}
	r.c.FS().ClearFaults()
	if stuck {
		r.rep.FaultsSeen[FaultCrashMidFlush] = true
		r.rep.FaultsSeen[FaultCrash] = true
		r.rep.FaultsSeen[FaultDFSWriteError] = true
	}
}

// heal clears injected faults and revives every killed DFS node.
func (r *runner) heal() {
	r.c.FS().ClearFaults()
	for node := range r.killedDFS {
		r.c.FS().ReviveNode(node)
		delete(r.killedDFS, node)
	}
}

// barrier heals all faults, drains ingestion and the flush pipelines, and
// verifies completeness: every acked tuple (minus retention-dropped ones)
// is returned exactly once by a full-region query.
func (r *runner) barrier(i int) {
	r.heal()
	r.c.Drain()
	r.verifyComplete(i)
	r.readFaultsPossible = false
	if r.opts.DataDir != "" {
		// Durable runs checkpoint at barriers so truncate-wal ops exercise
		// the checkpoint-gated retention floor and hard crashes have a
		// recent snapshot to restore from.
		if err := r.c.Checkpoint(); err != nil {
			r.violate(i, "checkpoint at barrier: %v", err)
		}
	}
}

func (r *runner) verifyComplete(i int) {
	q := model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()}
	res, err := r.c.Query(q)
	if err != nil {
		r.violate(i, "full-region query failed at barrier: %v", err)
		return
	}
	r.checkResult(i, q, res, true)
}

// checkResult enforces the per-query invariants; with complete set it also
// requires every eligible acked entry to be present.
func (r *runner) checkResult(i int, q model.Query, res *model.Result, complete bool) {
	seen := make(map[uint64]bool, len(res.Tuples))
	for j := range res.Tuples {
		t := &res.Tuples[j]
		if j > 0 && model.CompareTuples(&res.Tuples[j-1], t) > 0 {
			r.violate(i, "result unsorted at index %d: %v after %v", j, t, &res.Tuples[j-1])
		}
		if !q.Keys.Contains(t.Key) || !q.Times.Contains(t.Time) {
			r.violate(i, "tuple %v outside query region %v/%v", t, q.Keys, q.Times)
		}
		if r.opts.Tiering && len(t.Payload) == chunk.DownsampledPayloadLen {
			// Downsampled row from a compacted chunk: it summarizes many
			// raw tuples, so there is no oracle seq to match — region
			// containment and sort order (checked above) are its
			// invariants.
			continue
		}
		if len(t.Payload) != 8 {
			r.violate(i, "tuple %v carries a malformed payload", t)
			continue
		}
		seq := binary.BigEndian.Uint64(t.Payload)
		if seq >= uint64(len(r.entries)) {
			r.violate(i, "tuple %v has unknown seq %d (acked %d)", t, seq, len(r.entries))
			continue
		}
		e := r.entries[seq]
		if e.key != t.Key || e.ts != t.Time {
			r.violate(i, "seq %d returned as (%d,%d), acked as (%d,%d)",
				seq, t.Key, t.Time, e.key, e.ts)
		}
		if seen[seq] {
			r.violate(i, "seq %d returned more than once", seq)
		}
		seen[seq] = true
	}
	if !complete {
		return
	}
	missing := 0
	for seq, e := range r.entries {
		if e.maybeDropped || seen[uint64(seq)] {
			continue
		}
		if !q.Keys.Contains(e.key) || !q.Times.Contains(e.ts) {
			continue
		}
		if r.ackLossOK {
			// Post-hard-crash under a policy that acks before fsync: the
			// loss is expected, quantified, and not a violation.
			r.rep.LostAcked++
			continue
		}
		missing++
		if missing <= 5 { // cap the noise; the count is reported below
			r.violate(i, "acked seq %d (key=%d time=%d) missing at barrier", seq, e.key, e.ts)
		}
	}
	if missing > 5 {
		r.violate(i, "%d acked tuples missing at barrier in total", missing)
	}
}

// checkOffsets asserts that no indexing server's committed WAL offset ever
// moves backwards — the §V recovery contract.
func (r *runner) checkOffsets(i int) {
	ms := r.c.Metadata()
	// The slot set can grow mid-run; track every slot ever seen. Retired
	// slots keep their final offset, which the invariant still covers.
	nSlots := ms.Schema().Servers
	for len(r.maxOffsets) < nSlots {
		r.maxOffsets = append(r.maxOffsets, 0)
	}
	for s := 0; s < nSlots; s++ {
		off := ms.Offset(s)
		if off < r.maxOffsets[s] {
			r.violate(i, "server %d WAL offset regressed %d -> %d", s, r.maxOffsets[s], off)
		}
		r.maxOffsets[s] = off
	}
}
