package chaos

import (
	"fmt"
	"testing"
)

// TestTakeoverSchedules drives every scripted takeover scenario: each one
// aims a failover, scale-out or scale-in at a specific hostile moment and
// must end with zero invariant violations — zero acked-tuple loss under
// ack-on-fsync, sorted and region-contained results at every barrier, and
// every handoff's ingest pause under takeoverPauseBound.
func TestTakeoverSchedules(t *testing.T) {
	if len(TakeoverSchedules) < 8 {
		t.Fatalf("takeover suite holds %d schedules, want at least 8", len(TakeoverSchedules))
	}
	for _, s := range TakeoverSchedules {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := RunTakeover(s, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			report(t, rep.Report)
			if rep.Handoffs == 0 {
				t.Error("no ownership handoff was recorded")
			}
			if rep.PauseMax > takeoverPauseBound {
				t.Errorf("ingest pause %v exceeds the one-flush-interval bound %v",
					rep.PauseMax, takeoverPauseBound)
			}
			if rep.Inserted == 0 {
				t.Error("degenerate schedule: nothing inserted")
			}
			if rep.LostAcked != 0 {
				t.Errorf("ack-on-fsync lost %d acked tuples across takeovers", rep.LostAcked)
			}
			t.Logf("%s: handoffs=%d pause_max=%v pause_p99=%v lag_max=%d records inserted=%d",
				s.Name, rep.Handoffs, rep.PauseMax, rep.PauseP99, rep.LagMax, rep.Inserted)
		})
	}
}

// TestTakeoverFaultCoverage proves the suite as a whole exercises every
// elastic fault class — standby takeover, planned handoff, add, and
// decommission — so no scenario can silently degrade into a no-op.
func TestTakeoverFaultCoverage(t *testing.T) {
	covered := map[string]bool{}
	for _, s := range TakeoverSchedules {
		rep, err := RunTakeover(s, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		report(t, rep.Report)
		for class := range rep.FaultsSeen {
			covered[class] = true
		}
	}
	for _, class := range []string{FaultTakeover, FaultHandoff, FaultElasticAdd, FaultElasticDecom, FaultCrash} {
		if !covered[class] {
			t.Errorf("elastic fault class %q never exercised by the takeover suite", class)
		}
	}
}

// TestChaosElasticSeeds runs the random harness with topology churn mixed
// into the schedule: add-server, decommission, kill-with-standby and
// planned handoffs interleave with the usual fault classes, with hot
// standbys on every active slot. The oracle invariants must hold on every
// seed exactly as in the static-topology bank.
func TestChaosElasticSeeds(t *testing.T) {
	seeds := []int64{41, 42, 43, 44}
	ops := 60
	if !testing.Short() {
		for s := int64(45); s <= 52; s++ {
			seeds = append(seeds, s)
		}
		ops = 120
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Options{
				Seed: seed, Ops: ops, DataDir: t.TempDir(),
				Durability: "ack-on-fsync", Elastic: true,
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			report(t, rep)
			if rep.Inserted == 0 || rep.Queries == 0 {
				t.Errorf("seed %d: degenerate schedule (inserted=%d queries=%d)",
					seed, rep.Inserted, rep.Queries)
			}
		})
	}
}

// TestChaosElasticShippedWAL repeats one elastic seed with standbys tailing
// over the WAL-shipping transport — the exact read path a standby on a
// remote host would use.
func TestChaosElasticShippedWAL(t *testing.T) {
	rep, err := Run(Options{
		Seed: 61, Ops: 60, DataDir: t.TempDir(),
		Durability: "ack-on-fsync", Elastic: true, ShipWAL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	report(t, rep)
	if rep.Inserted == 0 {
		t.Error("degenerate schedule: nothing inserted")
	}
}
