package chaos

import (
	"strings"
	"testing"
)

// report fails the test on violations, printing the seed and the tail of
// the op trace so the scenario can be replayed exactly.
func report(t *testing.T, rep *Report) {
	t.Helper()
	if len(rep.Violations) == 0 {
		return
	}
	tail := rep.Trace
	if len(tail) > 30 {
		tail = tail[len(tail)-30:]
	}
	t.Errorf("seed %d: %d invariant violations:\n  %s\nop trace (tail):\n  %s",
		rep.Seed, len(rep.Violations),
		strings.Join(rep.Violations, "\n  "),
		strings.Join(tail, "\n  "))
}

// TestChaosSeeds drives the full harness over a bank of fixed seeds: 8 in
// -short mode, more in full mode. Every run must finish with zero
// invariant violations; a failure prints the seed and op trace needed to
// reproduce it (go test ./internal/chaos -run TestChaosSeeds/seed=N).
func TestChaosSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	ops := 60
	if !testing.Short() {
		for s := int64(9); s <= 24; s++ {
			seeds = append(seeds, s)
		}
		ops = 140
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(sName(seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Options{Seed: seed, Ops: ops})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			report(t, rep)
			if rep.Inserted == 0 || rep.Queries == 0 {
				t.Errorf("seed %d: degenerate schedule (inserted=%d queries=%d)",
					seed, rep.Inserted, rep.Queries)
			}
		})
	}
}

func sName(seed int64) string {
	return "seed=" + string(rune('0'+seed/10)) + string(rune('0'+seed%10))
}

// TestChaosTraceDeterminism: the same seed must produce the identical op
// trace on every run — the property that makes a failing seed replayable.
func TestChaosTraceDeterminism(t *testing.T) {
	opts := Options{Seed: 5, Ops: 50}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace diverged at op %d:\n  run1: %s\n  run2: %s", i, a.Trace[i], b.Trace[i])
		}
	}
	if a.Inserted != b.Inserted || a.Queries != b.Queries {
		t.Errorf("op counts diverged: (%d,%d) vs (%d,%d)",
			a.Inserted, a.Queries, b.Inserted, b.Queries)
	}
	report(t, a)
	report(t, b)
}

// TestChaosFaultClassCoverage runs a hand-built schedule that provably
// exercises each required fault class — DFS node loss, transient DFS write
// error (observed via the injection counters), and an indexing-server
// crash with a flush stuck in flight (observed via PendingFlushes) — and
// still ends with zero invariant violations.
func TestChaosFaultClassCoverage(t *testing.T) {
	r, err := newRunner(Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	sched := []op{
		{kind: opInsert, n: 80},
		{kind: opInsert, n: 80},
		{kind: opBarrier},
		// Class 1: DFS node loss while inserting and querying.
		{kind: opKillDFS, n: 0},
		{kind: opInsert, n: 60},
		{kind: opQuery},
		{kind: opBarrier},
		// Class 2: transient DFS write errors under a forced flush.
		{kind: opWriteFaults, n: 4},
		{kind: opFlush},
		{kind: opBarrier},
		// Transient read errors under a query.
		{kind: opReadFaults, n: 3},
		{kind: opQuery},
		{kind: opBarrier},
		// Class 3: crash with a snapshot provably stuck mid-flush.
		{kind: opCrashMidFlush, n: 1},
		{kind: opBarrier},
		// Plain crash + WAL replay on a different server.
		{kind: opCrash, n: 4},
		{kind: opInsert, n: 40},
		{kind: opBarrier},
	}
	r.runSchedule(sched)
	m := r.c.FS().Metrics()
	injectedWrites := m.InjectedWriteFailures.Load()
	r.c.Stop()

	report(t, r.rep)
	for _, class := range []string{FaultDFSNodeLoss, FaultDFSWriteError, FaultCrash, FaultCrashMidFlush} {
		if !r.rep.FaultsSeen[class] {
			t.Errorf("fault class %q not covered", class)
		}
	}
	if injectedWrites == 0 {
		t.Error("no DFS write failures were actually injected")
	}
}

// TestChaosBatchWALFault runs a hand-built schedule that provably drives
// the vectorized insert path into a mid-batch WAL append fault — every
// insert-batch op arms a one-shot rejection on some partition — and then
// verifies prefix-ack exactness at heal barriers: completeness proves no
// acked tuple was dropped, soundness proves no rejected tuple leaked in.
func TestChaosBatchWALFault(t *testing.T) {
	r, err := newRunner(Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	sched := []op{
		{kind: opInsert, n: 80},
		{kind: opInsertBatch, n: 150, alt: true},
		{kind: opBarrier},
		{kind: opInsertBatch, n: 200, alt: true},
		{kind: opQuery},
		{kind: opInsertBatch, n: 120}, // no fault: must fully ack
		{kind: opBarrier},
		// A fault while a crash-recovered server replays its WAL tail.
		{kind: opCrash, n: 0},
		{kind: opInsertBatch, n: 150, alt: true},
		{kind: opBarrier},
	}
	r.runSchedule(sched)
	r.c.Stop()
	report(t, r.rep)
	if !r.rep.FaultsSeen[FaultWALAppend] {
		t.Error("WAL append fault class not covered")
	}
	if r.rep.BatchRejections == 0 {
		t.Error("no armed WAL fault actually stopped a batch: the probe is inert")
	}
	if r.rep.Inserted == 0 {
		t.Error("degenerate schedule: nothing inserted")
	}
}

// TestChaosMixedFormats drives a hand-built schedule that flips the chunk
// format between flushes, so the cluster holds v1 and v2 chunks at once,
// and cross-checks temporal and aggregate queries against the oracle in
// that mixed state. The run must prove both that formats actually flipped
// and that aggregate results were verified exactly.
func TestChaosMixedFormats(t *testing.T) {
	r, err := newRunner(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sched := []op{
		{kind: opInsert, n: 100}, // flushed as v2 (the default)
		{kind: opFlush},
		{kind: opFlipFormat}, // → v1
		{kind: opInsert, n: 100},
		{kind: opFlush},
		{kind: opQuery},
		// Barrier before each aggregate check: with ingestion quiescent the
		// sandwich always pins an exact answer, so AggChecks must advance.
		{kind: opBarrier},
		{kind: opAggQuery},
		{kind: opFlipFormat}, // → back to v2
		{kind: opInsert, n: 100},
		{kind: opFlush},
		{kind: opBarrier},
		{kind: opAggQuery},
		{kind: opQueryConcurrent, n: 4},
		{kind: opBarrier},
	}
	r.runSchedule(sched)
	r.c.Stop()
	report(t, r.rep)
	if r.rep.FormatFlips != 2 {
		t.Errorf("format flips = %d, want 2", r.rep.FormatFlips)
	}
	if r.rep.AggChecks == 0 {
		t.Error("no aggregate query was verified against the tuple path")
	}
}

// TestChaosDurableRestart runs a seed against a disk-backed cluster, then
// stops it, reopens from the same data directory and re-verifies that
// every acked tuple survived — recovery across a full process "restart".
func TestChaosDurableRestart(t *testing.T) {
	rep, err := Run(Options{Seed: 11, Ops: 40, DataDir: t.TempDir(), Restart: true})
	if err != nil {
		t.Fatal(err)
	}
	report(t, rep)
	if rep.Inserted == 0 {
		t.Error("degenerate schedule: nothing inserted")
	}
}

// TestChaosHardCrashAckOnFsync: with fsync-acknowledged inserts, a hard
// crash (WAL truncated to the fsync watermark, no checkpoint, flushers
// aborted) must lose zero acked tuples — any loss is a violation, and
// LostAcked stays zero because the policy permits none.
func TestChaosHardCrashAckOnFsync(t *testing.T) {
	rep, err := Run(Options{
		Seed: 21, Ops: 40, DataDir: t.TempDir(),
		Durability: "ack-on-fsync", HardCrash: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	report(t, rep)
	if rep.LostAcked != 0 {
		t.Errorf("ack-on-fsync lost %d acked tuples across a hard crash", rep.LostAcked)
	}
	if rep.Inserted == 0 {
		t.Error("degenerate schedule: nothing inserted")
	}
}

// TestChaosHardCrashAckOnWriteLosesTail replays the SAME seed under the
// default ack-on-write policy: the epilogue's acked tail lives only in the
// page cache when the host dies, so the run must demonstrate acked-tuple
// loss (that is the gap ack-on-fsync closes) while still committing zero
// soundness or uniqueness violations.
func TestChaosHardCrashAckOnWriteLosesTail(t *testing.T) {
	rep, err := Run(Options{Seed: 21, Ops: 40, DataDir: t.TempDir(), HardCrash: true})
	if err != nil {
		t.Fatal(err)
	}
	report(t, rep) // loss is expected and accounted; violations are not
	if rep.LostAcked == 0 {
		t.Error("ack-on-write hard crash lost nothing: the durability gap probe is inert")
	}
}

// TestChaosHardCrashInterval: background-fsync durability makes loss
// timing-dependent, so the run only asserts soundness (no violations) and
// that whatever was lost is accounted, not silently missing.
func TestChaosHardCrashInterval(t *testing.T) {
	rep, err := Run(Options{
		Seed: 22, Ops: 40, DataDir: t.TempDir(),
		Durability: "interval", HardCrash: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	report(t, rep)
}
