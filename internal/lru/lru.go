// Package lru implements the byte-budgeted LRU cache query servers use to
// keep frequently accessed chunk data in memory (paper §IV-B). The caching
// unit is a template or a leaf; eviction follows the LRU policy [32].
package lru

import (
	"container/list"
	"sync"
)

// Cache is a concurrency-safe LRU cache with a byte budget. Each entry
// carries its own size; inserting past the budget evicts least-recently
// used entries until the new entry fits.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64

	// onEvict, when set, observes each eviction. Called with the cache
	// lock held: the hook must be cheap and must not call back into the
	// cache.
	onEvict func(key string, size int64)
}

type entry struct {
	key   string
	value any
	size  int64
}

// New creates a cache with the given byte capacity. A capacity <= 0
// disables caching (every Get misses, every Put is dropped).
func New(capacity int64) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// SetEvictHook installs a callback observing evictions (telemetry). The
// hook runs with the cache lock held; it must be cheap and must not call
// back into the cache. Install before concurrent use.
func (c *Cache) SetEvictHook(fn func(key string, size int64)) {
	c.mu.Lock()
	c.onEvict = fn
	c.mu.Unlock()
}

// Get returns the cached value and whether it was present, promoting the
// entry to most-recently-used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Put inserts or replaces a value with the given size in bytes. Entries
// larger than the whole capacity are not cached.
func (c *Cache) Put(key string, value any, size int64) {
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.capacity {
		// Too large to ever fit; drop (and remove any stale version).
		c.removeLocked(key)
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.used += size - e.size
		e.value, e.size = value, size
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry{key: key, value: value, size: size})
		c.items[key] = el
		c.used += size
	}
	for c.used > c.capacity {
		c.evictOldestLocked()
	}
}

// Remove drops an entry if present.
func (c *Cache) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.removeLocked(key)
}

// RemoveFunc drops every entry whose key satisfies pred, returning the
// number removed. Chunk retirement uses it to purge a dropped chunk's
// header, leaf, and extent entries in one pass.
func (c *Cache) RemoveFunc(pred func(key string) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var doomed []string
	for key := range c.items {
		if pred(key) {
			doomed = append(doomed, key)
		}
	}
	for _, key := range doomed {
		c.removeLocked(key)
	}
	return len(doomed)
}

func (c *Cache) removeLocked(key string) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.items, key)
		c.used -= e.size
	}
}

func (c *Cache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.used -= e.size
	c.evictions++
	if c.onEvict != nil {
		c.onEvict(e.key, e.size)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Used returns the bytes currently cached.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity returns the byte budget.
func (c *Cache) Capacity() int64 { return c.capacity }

// Metrics is a snapshot of the cache counters.
type Metrics struct {
	Hits, Misses, Evictions int64
	Used, Capacity          int64
	Entries                 int
}

// Metrics returns a snapshot of the counters.
func (c *Cache) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Metrics{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Used: c.used, Capacity: c.capacity, Entries: c.ll.Len(),
	}
}

// Clear drops every entry, keeping counters.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.used = 0
}
