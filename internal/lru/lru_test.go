package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicPutGet(t *testing.T) {
	c := New(100)
	c.Put("a", 1, 10)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Error("missing key found")
	}
	m := c.Metrics()
	if m.Hits != 1 || m.Misses != 1 {
		t.Errorf("metrics %+v", m)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New(30)
	c.Put("a", "A", 10)
	c.Put("b", "B", 10)
	c.Put("c", "C", 10)
	c.Get("a") // promote a; b is now oldest
	c.Put("d", "D", 10)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should still be cached", k)
		}
	}
	if ev := c.Metrics().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestByteBudgetMultiEvict(t *testing.T) {
	c := New(100)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 10)
	}
	if c.Used() != 100 {
		t.Fatalf("used = %d", c.Used())
	}
	c.Put("big", "x", 55) // must evict several
	if c.Used() > 100 {
		t.Fatalf("over budget: %d", c.Used())
	}
	if _, ok := c.Get("big"); !ok {
		t.Error("big entry missing")
	}
}

func TestOversizeEntryDropped(t *testing.T) {
	c := New(50)
	c.Put("huge", "x", 51)
	if _, ok := c.Get("huge"); ok {
		t.Error("oversize entry should not cache")
	}
	// Replacing an existing entry with an oversize value removes it.
	c.Put("a", 1, 10)
	c.Put("a", 2, 999)
	if _, ok := c.Get("a"); ok {
		t.Error("entry replaced by oversize value should be gone")
	}
	if c.Used() != 0 {
		t.Errorf("used = %d, want 0", c.Used())
	}
}

func TestReplaceAdjustsSize(t *testing.T) {
	c := New(100)
	c.Put("a", 1, 40)
	c.Put("a", 2, 10)
	if c.Used() != 10 {
		t.Errorf("used = %d, want 10", c.Used())
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
	v, _ := c.Get("a")
	if v.(int) != 2 {
		t.Errorf("value = %v, want 2", v)
	}
}

func TestRemoveAndClear(t *testing.T) {
	c := New(100)
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	c.Remove("a")
	c.Remove("nonexistent") // no-op
	if _, ok := c.Get("a"); ok {
		t.Error("removed key found")
	}
	if c.Used() != 10 {
		t.Errorf("used = %d, want 10", c.Used())
	}
	c.Clear()
	if c.Len() != 0 || c.Used() != 0 {
		t.Errorf("after clear: len=%d used=%d", c.Len(), c.Used())
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New(0)
	c.Put("a", 1, 1)
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache stored an entry")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%64)
				if i%3 == 0 {
					c.Put(k, i, 16)
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Used() > 1000 {
		t.Errorf("over budget after concurrency: %d", c.Used())
	}
}

func TestRemoveFunc(t *testing.T) {
	c := New(1000)
	c.Put("h5", 1, 10)
	c.Put("l5:0", 2, 10)
	c.Put("l5:1", 3, 10)
	c.Put("l50:0", 4, 10) // different chunk; must survive a "l5:" purge
	c.Put("e5:0:64", 5, 10)
	n := c.RemoveFunc(func(key string) bool {
		return key == "h5" || (len(key) > 3 && key[:3] == "l5:") ||
			(len(key) > 3 && key[:3] == "e5:")
	})
	if n != 4 {
		t.Fatalf("removed %d, want 4", n)
	}
	if _, ok := c.Get("l50:0"); !ok {
		t.Fatal("unrelated entry removed")
	}
	if _, ok := c.Get("h5"); ok {
		t.Fatal("matched entry survived")
	}
	if c.Used() != 10 {
		t.Fatalf("used = %d, want 10", c.Used())
	}
}
