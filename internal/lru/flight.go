package lru

import "sync"

// FlightGroup deduplicates concurrent executions of the same keyed
// operation: while one caller (the leader) runs fn, later callers with the
// same key block and receive the leader's result instead of re-running fn.
// Query servers use it so concurrent subqueries missing the same chunk
// extent trigger one DFS read that fills the cache for everyone.
//
// Unlike a cache, the group retains nothing: the key is forgotten the
// moment the leader's fn returns, so a failed read is retried by the next
// caller and successful results live only in the LRU the leader populated.
type FlightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do executes fn under key, deduplicating concurrent callers. It returns
// fn's result and whether this caller shared a flight led by another
// (shared is false for the leader).
func (g *FlightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
