package lru

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestFlightGroupDedupsConcurrentCallers(t *testing.T) {
	var g FlightGroup
	var execs atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{})

	const callers = 8
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	var once sync.Once
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (any, error) {
				once.Do(func() { close(entered) })
				<-gate
				execs.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if v.(int) != 42 {
				t.Errorf("value = %v, want 42", v)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Wait until the leader is inside fn, then a moment for followers to
	// queue up, then release. Followers that arrive after release still
	// either join the live flight or run their own fn; the gate only makes
	// the shared path overwhelmingly likely, the exec count is the real
	// assertion target below.
	<-entered
	close(gate)
	wg.Wait()
	if e := execs.Load(); e < 1 || e > callers {
		t.Fatalf("fn executed %d times", e)
	}
	if sharedCount.Load()+execs.Load() != callers {
		t.Fatalf("shared (%d) + leaders (%d) != callers (%d)",
			sharedCount.Load(), execs.Load(), callers)
	}
}

func TestFlightGroupErrorsShared(t *testing.T) {
	var g FlightGroup
	wantErr := errors.New("boom")
	gate := make(chan struct{})
	entered := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, results[0], _ = g.Do("k", func() (any, error) {
			close(entered)
			<-gate
			return nil, wantErr
		})
	}()
	<-entered
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i], _ = g.Do("k", func() (any, error) { return nil, wantErr })
		}(i)
	}
	close(gate)
	wg.Wait()
	for i, err := range results {
		if !errors.Is(err, wantErr) {
			t.Errorf("caller %d error = %v, want %v", i, err, wantErr)
		}
	}
}

func TestFlightGroupKeyForgottenAfterReturn(t *testing.T) {
	var g FlightGroup
	var execs int
	for i := 0; i < 3; i++ {
		_, _, shared := g.Do("k", func() (any, error) { execs++; return nil, nil })
		if shared {
			t.Fatalf("sequential call %d reported shared", i)
		}
	}
	if execs != 3 {
		t.Fatalf("sequential calls executed fn %d times, want 3", execs)
	}
}
