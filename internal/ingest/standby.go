// Hot standby (elastic scale-out, DESIGN.md §14). A Standby tails the
// owner's WAL partition — in-process or over the WAL-shipping transport —
// and replays the records into a passive shadow server, so a promotion
// inherits a warm memtable instead of replaying the whole uncommitted
// tail from scratch.
//
// The shadow only ever mirrors the owner's UNFLUSHED suffix: the replay
// base is the owner's committed WAL offset, and whenever the owner
// commits past that base (a flush registered its chunks and advanced the
// offset), the shadow's tuples are now also in registered chunks, so the
// standby discards the shadow and re-tails from the new committed offset.
// The discarded work is bounded by one memtable. This "reset on commit"
// rule is what makes promotion duplicate-free: after the ownership
// transfer fences the owner, the committed offset is final, one last
// reset check aligns the shadow's base with it, and every record in the
// shadow is covered by no chunk while every record before the base is
// covered by exactly one.
package ingest

import (
	"fmt"
	"sync"
	"time"

	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/telemetry"
	"waterwheel/internal/wal"
)

// StandbyConfig configures a hot standby.
type StandbyConfig struct {
	// Slot is the indexing-server slot being shadowed.
	Slot int
	// NewServer builds a fresh passive shadow server (called once at
	// start and again after every reset).
	NewServer func() *Server
	// PollInterval between reads finding no new records (default 200µs).
	PollInterval time.Duration
	// ReadMax bounds records per tail read (default 2048).
	ReadMax int
	// ReplayOffset, when set, tracks the standby's replay position (the
	// waterwheel_standby_replay_offset gauge).
	ReplayOffset *telemetry.Gauge
}

// Standby tails a WAL partition into a passive shadow server.
type Standby struct {
	cfg  StandbyConfig
	ms   *meta.Server
	tail wal.Tail

	mu       sync.Mutex
	srv      *Server
	base     int64 // owner's committed offset the shadow starts at
	pos      int64 // next offset to replay
	resets   int
	promoted bool
	err      error

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewStandby builds a standby replaying the slot's partition through tail.
func NewStandby(cfg StandbyConfig, ms *meta.Server, tail wal.Tail) *Standby {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Microsecond
	}
	if cfg.ReadMax <= 0 {
		cfg.ReadMax = 2048
	}
	sb := &Standby{
		cfg:  cfg,
		ms:   ms,
		tail: tail,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	base := ms.Offset(cfg.Slot)
	sb.base, sb.pos = base, base
	sb.srv = cfg.NewServer()
	return sb
}

// Start launches the tail loop.
func (sb *Standby) Start() { go sb.run() }

func (sb *Standby) run() {
	defer close(sb.done)
	for {
		select {
		case <-sb.stop:
			return
		default:
		}
		committed := sb.ms.Offset(sb.cfg.Slot)
		sb.mu.Lock()
		if committed > sb.base {
			sb.resetLocked(committed)
			sb.mu.Unlock()
			continue
		}
		pos := sb.pos
		srv := sb.srv
		sb.mu.Unlock()
		recs, err := sb.tail.Read(pos, sb.cfg.ReadMax)
		if err != nil {
			// ErrCompacted means the owner truncated below our position —
			// only possible when its committed offset moved past our base,
			// which the next iteration's reset handles. Transient shipping
			// errors retry the same way.
			select {
			case <-sb.stop:
				return
			case <-time.After(sb.cfg.PollInterval):
			}
			continue
		}
		if len(recs) == 0 {
			select {
			case <-sb.stop:
				return
			case <-time.After(sb.cfg.PollInterval):
			}
			continue
		}
		batch, derr := decodeRecords(recs)
		if derr != nil {
			sb.mu.Lock()
			sb.err = fmt.Errorf("ingest: standby: %w", derr)
			sb.mu.Unlock()
			return
		}
		next := recs[len(recs)-1].Offset + 1
		srv.insertBatchAt(batch, next)
		sb.mu.Lock()
		sb.pos = next
		sb.mu.Unlock()
		sb.cfg.ReplayOffset.Set(float64(next))
	}
}

// resetLocked discards the shadow and re-tails from the owner's new
// committed offset. Requires mu. The old shadow server is aborted so its
// flusher goroutine exits (it never registered anything: passive servers
// do not flush).
func (sb *Standby) resetLocked(committed int64) {
	old := sb.srv
	sb.srv = sb.cfg.NewServer()
	sb.base, sb.pos = committed, committed
	sb.resets++
	old.Abort()
}

// Halt stops the tail loop and waits for it to exit. Idempotent.
func (sb *Standby) Halt() {
	sb.stopOnce.Do(func() { close(sb.stop) })
	<-sb.done
}

// Promote finalizes the takeover after the caller's meta.TransferOwnership
// fenced the old owner (so the slot's committed offset is final) and after
// Halt stopped the tail loop. One last reset aligns the shadow with the
// final committed offset — if the owner flushed past our replay base, the
// shadow holds tuples that are now in registered chunks and must be
// dropped; the fresh shadow starts empty and the WAL consumption loop
// replays the tail from the committed offset after activation. Returns the
// activated server, live under the new epoch.
func (sb *Standby) Promote(epoch int64) *Server {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if committed := sb.ms.Offset(sb.cfg.Slot); committed > sb.base {
		sb.resetLocked(committed)
	}
	srv := sb.srv
	sb.promoted = true
	srv.Activate(epoch)
	return srv
}

// Close aborts the shadow without promoting (standby no longer needed).
func (sb *Standby) Close() {
	sb.Halt()
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if !sb.promoted {
		sb.srv.Abort()
	}
}

// Consumed returns the next WAL offset the standby will replay.
func (sb *Standby) Consumed() int64 {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.pos
}

// Resets counts shadow discards (owner commits passing the replay base).
func (sb *Standby) Resets() int {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.resets
}

// Err reports a terminal replay error (corrupt record), if any.
func (sb *Standby) Err() error {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.err
}

// SetKeys forwards a repartition to the current shadow server.
func (sb *Standby) SetKeys(kr model.KeyRange) {
	sb.mu.Lock()
	srv := sb.srv
	sb.mu.Unlock()
	srv.SetKeys(kr)
}
