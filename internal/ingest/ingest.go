// Package ingest implements Waterwheel's indexing servers (paper §III).
// An indexing server owns one key interval of the global partitioning. It
// accumulates incoming tuples in an in-memory template B+ tree, keeps them
// immediately visible to memtable subqueries, and flushes the tree as an
// immutable data chunk to the distributed file system once it reaches the
// chunk-size threshold (default 16 MB). The inner template survives the
// flush (§III-B).
//
// Out-of-order arrivals (§IV-D): a watermark tracks the largest timestamp
// seen; tuples arriving more than SideThreshold behind it go to a separate
// side-store tree so the ordinary chunks keep tight temporal boundaries,
// while mildly-late tuples simply widen the live region's left bound,
// which the coordinator further pads by the late-visibility parameter Δt.
//
// Fault tolerance (§V): the server consumes a WAL partition; at every
// flush it records its read offset in the metadata server, so a restarted
// server replays the tail of the partition to rebuild its memtable.
package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"waterwheel/internal/chunk"
	"waterwheel/internal/core"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/telemetry"
	"waterwheel/internal/wal"
)

// Config configures an indexing server.
type Config struct {
	// ID is the indexing-server index in the partition schema.
	ID int
	// Keys is the nominal key interval (from the schema).
	Keys model.KeyRange
	// ChunkBytes is the flush threshold (default 16 MB).
	ChunkBytes int64
	// Leaves is the template leaf count (default from tree config).
	Leaves int
	// SkewThreshold / CheckEvery tune adaptive template update.
	SkewThreshold float64
	CheckEvery    int
	// SideThresholdMillis routes tuples arriving more than this behind the
	// watermark into the side store (default 60 000 ms). Zero keeps the
	// default; negative disables the side store.
	SideThresholdMillis int64
	// Bloom tunes chunk sketch construction.
	Bloom chunk.BuildOptions
	// TemplateReuse keeps the inner template across flushes (the paper's
	// design). Setting false rebuilds the tree each flush — the system-level
	// ablation switch.
	NoTemplateReuse bool
	// FlushQueueDepth bounds the async flush pipeline: at most this many
	// swapped-out snapshots may await persistence before the next
	// threshold-crossing insert blocks (default 2).
	FlushQueueDepth int
	// SyncFlush disables the background flusher and performs chunk build +
	// DFS write inline on the inserting goroutine — the pre-pipeline
	// behavior, kept as the benchmark baseline and ablation switch.
	SyncFlush bool
	// FlushFailHook, when set, is consulted before every chunk DFS write
	// with the producing server, the snapshot's flush sequence and the
	// attempt number; a non-nil error fails the attempt exactly as a DFS
	// write failure would. Fault-injection surface for chaos testing
	// (mid-flight flusher failures).
	FlushFailHook func(server, seq int, attempt int32) error
	// SyncWAL, when set, is called with a flush unit's WAL offset before
	// the unit registers its chunks and commits that offset — the cluster
	// wires it to the partition's fsync barrier (wal.Partition.SyncTo). A
	// committed offset must never exceed the durable length of the log:
	// after a host crash the replayable log would be shorter than the
	// committed offset, fresh appends would reuse committed offsets and
	// the registered chunks would alias replayed tuples as duplicates. A
	// SyncWAL error fails the flush attempt exactly as a DFS write failure
	// would (stop the line, retry later).
	SyncWAL func(upTo int64) error
	// Metrics holds optional telemetry handles; the zero value (nil
	// handles) disables instrumentation at no cost.
	Metrics Metrics
	// Epoch is the ownership epoch this incarnation holds its slot under.
	// When positive, chunk registrations and offset commits go through the
	// epoch-guarded metadata APIs and are rejected once ownership moves
	// (meta.TransferOwnership bumps the slot's epoch): a deposed owner can
	// linger, but it cannot write metadata. Zero bypasses fencing.
	Epoch int64
	// Passive builds the server as a hot standby's shadow: it indexes
	// tuples normally (so a promotion inherits a warm memtable) but never
	// flushes, never reports a live region, and never commits offsets —
	// the active owner of the slot does all three. Activate flips the
	// server live.
	Passive bool
}

// ChunkWriter is the slice of the DFS the ingest path needs: durable,
// named, immutable chunk writes. *dfs.FS implements it; tests substitute
// gated or failing writers to exercise the pipeline.
type ChunkWriter interface {
	Write(name string, data []byte) error
}

// Metrics are the telemetry handles an indexing server feeds. All handles
// are nil-safe; the zero value is a no-op.
type Metrics struct {
	// InsertNanos samples end-to-end Insert latency (1 in every
	// insertSampleEvery inserts), capturing the flush-dominated tail the
	// paper's Fig. 7b insert-time breakdown measures.
	InsertNanos *telemetry.Histogram
	// FlushNanos observes each chunk build + DFS write.
	FlushNanos *telemetry.Histogram
	// BackpressureNanos observes how long a threshold-crossing insert
	// blocked because the flush queue was full.
	BackpressureNanos *telemetry.Histogram
}

// insertSampleEvery is the Insert-latency sampling interval (a power of
// two so the check is a mask). Sampling keeps the two time.Now calls off
// the common insert path while the histogram still sees thousands of
// samples per second at paper ingestion rates.
const insertSampleEvery = 64

func (c *Config) fill() {
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 16 << 20
	}
	if c.SideThresholdMillis == 0 {
		c.SideThresholdMillis = 60_000
	}
	if !c.Keys.IsValid() {
		c.Keys = model.FullKeyRange()
	}
	if c.FlushQueueDepth <= 0 {
		c.FlushQueueDepth = 2
	}
}

// nextIncarnation hands every server instance a process-unique id.
var nextIncarnation atomic.Uint64

// Stats counts indexing-server activity.
type Stats struct {
	Ingested      atomic.Int64
	Flushes       atomic.Int64
	FlushBytes    atomic.Int64
	FlushFailures atomic.Int64
	SideRouted    atomic.Int64
	Recovered     atomic.Int64
	// Backpressure counts inserts that blocked on a full flush queue.
	Backpressure atomic.Int64
}

// Server is one indexing server.
type Server struct {
	cfg Config

	tree *core.TemplateTree
	side *core.TemplateTree

	fs ChunkWriter
	ms *meta.Server
	// node is the cluster node hosting this server (locality for flushes).
	node int

	// watermark is the largest event timestamp observed.
	watermark atomic.Int64
	// minTime is the smallest timestamp in the current memtable; reset on
	// flush. Guarded by minMu. keyLo/keyHi bound the keys in both live
	// trees (main and side, which always swap out together), valid while
	// keysSet; the box only grows between swaps, so it covers the trees'
	// contents even when routing placed old-interval keys here after a
	// repartition — that box is what keeps the slot's actual interval in
	// metadata honest.
	minMu    sync.Mutex
	minTime  model.Timestamp
	hasData  bool
	sideMin  model.Timestamp
	sideData bool
	keyLo    model.Key
	keyHi    model.Key
	keysSet  bool

	// reportMu serializes live-region reports end to end (state measurement
	// plus the metadata call), so a stale measurement can never overwrite a
	// fresher one at the metadata server.
	reportMu sync.Mutex

	// swapMu serializes threshold checks, FlushReset swaps and flush-queue
	// sends, so snapshots enter the queue in seq order and backpressure
	// blocks the swapping goroutine, not the flusher.
	swapMu   sync.Mutex
	flushSeq int
	closed   bool

	// pendMu guards the pending snapshot list. Queries hold the read lock
	// across their whole scan; the swap and the chunk registration take the
	// write lock, which is what makes "every tuple in exactly one visible
	// place" atomic from a reader's point of view.
	pendMu  sync.RWMutex
	pending []*pendingFlush
	// committedOff is the last WAL offset handed to meta.SetOffset.
	committedOff int64

	flushCh     chan *pendingFlush
	retryCh     chan struct{}
	stopCh      chan struct{}
	flusherDone chan struct{}
	// parked is set while the flusher waits out a DFS outage.
	parked atomic.Bool
	// stopped latches the (single) close of stopCh: Close takes swapMu but
	// Abort cannot, so the two coordinate through this flag instead.
	stopped atomic.Bool
	// aborted marks a simulated crash (Abort): no snapshot may register its
	// chunk or commit a WAL offset any more.
	aborted atomic.Bool
	// passive suppresses flushes, live-region reports and offset commits
	// while the server shadows an active owner (hot standby).
	passive atomic.Bool
	// epoch is the ownership epoch metadata writes are guarded by (>0).
	epoch atomic.Int64
	// fenced latches the first ErrFenced from the metadata server: the
	// incarnation has been deposed and its flusher must stop retrying.
	fenced atomic.Bool

	// chunkFormat, when non-zero, overrides Bloom.Format for later flushes
	// (SetChunkFormat) — the live format-migration switch.
	chunkFormat atomic.Int32

	// incarnation distinguishes chunk paths across server restarts, so a
	// recovered server never collides with its predecessor's files.
	incarnation uint64
	// consumed is the WAL offset of the next record to consume.
	consumed atomic.Int64

	stats Stats
}

// NewServer creates an indexing server writing chunks to fs and metadata
// to ms. node is the cluster node it runs on.
func NewServer(cfg Config, fs ChunkWriter, ms *meta.Server, node int) *Server {
	cfg.fill()
	tc := core.TemplateConfig{
		Keys:          cfg.Keys,
		Leaves:        cfg.Leaves,
		SkewThreshold: cfg.SkewThreshold,
		CheckEvery:    cfg.CheckEvery,
	}
	s := &Server{
		cfg:          cfg,
		tree:         core.NewTemplateTree(tc),
		fs:           fs,
		ms:           ms,
		node:         node,
		committedOff: -1,
		flushCh:      make(chan *pendingFlush, cfg.FlushQueueDepth),
		retryCh:      make(chan struct{}, 1),
		stopCh:       make(chan struct{}),
		flusherDone:  make(chan struct{}),
		incarnation:  nextIncarnation.Add(1),
	}
	if cfg.SideThresholdMillis > 0 {
		sideCfg := tc
		sideCfg.Leaves = 64
		s.side = core.NewTemplateTree(sideCfg)
	}
	s.watermark.Store(int64(model.MinTimestamp))
	s.epoch.Store(cfg.Epoch)
	s.passive.Store(cfg.Passive)
	if cfg.SyncFlush {
		close(s.flusherDone) // no background goroutine to wait for
	} else {
		go s.flusher()
	}
	return s
}

// Stats returns the server's counters.
func (s *Server) Stats() *Stats { return &s.stats }

// SetChunkFormat switches the chunk format (chunk.FormatV1/V2) used by
// subsequent flushes. Zero restores the configured default. Chunks already
// written keep their format; readers dispatch on the magic, so mixed
// formats coexist in one cluster.
func (s *Server) SetChunkFormat(f int) { s.chunkFormat.Store(int32(f)) }

// TreeStats exposes the memtable tree's instrumentation.
func (s *Server) TreeStats() *core.Stats { return s.tree.Stats() }

// Insert ingests one tuple, flushing when the memtable reaches the chunk
// threshold. Safe for concurrent use.
func (s *Server) Insert(t model.Tuple) {
	n := s.stats.Ingested.Add(1)
	var start time.Time
	sampled := s.cfg.Metrics.InsertNanos != nil && n%insertSampleEvery == 0
	if sampled {
		start = time.Now()
	}
	wm := s.watermark.Load()
	for int64(t.Time) > wm && !s.watermark.CompareAndSwap(wm, int64(t.Time)) {
		wm = s.watermark.Load()
	}
	if s.side != nil && int64(t.Time) < s.watermark.Load()-s.cfg.SideThresholdMillis {
		s.insertSide(t)
		if sampled {
			s.cfg.Metrics.InsertNanos.Observe(time.Since(start))
		}
		return
	}
	s.minMu.Lock()
	changed := !s.hasData || t.Time < s.minTime
	if changed {
		s.minTime = t.Time
		s.hasData = true
	}
	changed = s.growKeyBoxLocked(t.Key, t.Key) || changed
	s.minMu.Unlock()
	s.tree.Insert(t)
	if changed {
		// The live region's left bound moved (or the memtable went from
		// empty to non-empty): publish it so the coordinator includes this
		// server in query decomposition. Unchanged bounds — the common case
		// on in-order streams — skip the metadata round-trip.
		s.reportLive()
	}
	if s.tree.Bytes() >= s.cfg.ChunkBytes {
		// Swap the full tree out and enqueue it for the background flusher;
		// the inserting goroutine pays a pointer exchange, not a chunk build
		// and DFS round-trip (unless the bounded queue is full).
		s.enqueueFlush(s.tree, false, true)
	}
	if sampled {
		s.cfg.Metrics.InsertNanos.Observe(time.Since(start))
	}
}

// InsertBatch ingests a batch of tuples with the per-tuple bookkeeping
// amortized across the batch: one watermark advance (to the batch max),
// one side-store split against the settled watermark, one minMu critical
// section, at most one reportLive, and one InsertBatch per target tree.
// A batch of one degenerates to Insert, so the paths cannot diverge.
func (s *Server) InsertBatch(ts []model.Tuple) {
	if len(ts) == 0 {
		return
	}
	if len(ts) == 1 {
		s.Insert(ts[0])
		return
	}
	s.insertBatchAt(ts, -1)
}

// insertBatchAt is the batch ingest core, with an optional consumed-offset
// advance (nextOff >= 0, WAL consumption path). The offset store and the
// tree inserts share one pendMu read section while a flush swap captures
// its offset under pendMu write — so the offset a snapshot commits can
// never cover a consumed tuple that is not yet in a tree. (The per-tuple
// Consume loop had a hair-thin window between the offset store and the
// Insert where an external Flush could commit an offset covering a tuple
// still in flight; routing consumption through here closes it.) Side
// effects that re-take pendMu — reportLive, threshold flush enqueues —
// are deferred past the read section, since pendMu is not reentrant.
func (s *Server) insertBatchAt(ts []model.Tuple, nextOff int64) {
	n := s.stats.Ingested.Add(int64(len(ts)))
	var start time.Time
	sampled := s.cfg.Metrics.InsertNanos != nil && n%insertSampleEvery < int64(len(ts))
	if sampled {
		start = time.Now()
	}
	maxT := ts[0].Time
	for i := 1; i < len(ts); i++ {
		if ts[i].Time > maxT {
			maxT = ts[i].Time
		}
	}
	wm := s.watermark.Load()
	for int64(maxT) > wm && !s.watermark.CompareAndSwap(wm, int64(maxT)) {
		wm = s.watermark.Load()
	}
	// Split against the watermark the whole batch settled on. (Serially, a
	// tuple's side decision sees only the watermark of its prefix — but
	// side-vs-main placement is a storage-layout choice, not a semantic
	// one: queries scan both, so results are identical either way.)
	main := ts
	var side []model.Tuple
	if s.side != nil {
		cut := s.watermark.Load() - s.cfg.SideThresholdMillis
		for i := range ts {
			if int64(ts[i].Time) < cut {
				main = make([]model.Tuple, 0, len(ts))
				for j := range ts {
					if int64(ts[j].Time) < cut {
						side = append(side, ts[j])
					} else {
						main = append(main, ts[j])
					}
				}
				break
			}
		}
	}
	if len(side) > 0 {
		s.stats.SideRouted.Add(int64(len(side)))
	}
	var mainMin, sideMin model.Timestamp
	if len(main) > 0 {
		mainMin = main[0].Time
		for i := 1; i < len(main); i++ {
			if main[i].Time < mainMin {
				mainMin = main[i].Time
			}
		}
	}
	if len(side) > 0 {
		sideMin = side[0].Time
		for i := 1; i < len(side); i++ {
			if side[i].Time < sideMin {
				sideMin = side[i].Time
			}
		}
	}
	kLo, kHi := ts[0].Key, ts[0].Key
	for i := 1; i < len(ts); i++ {
		if ts[i].Key < kLo {
			kLo = ts[i].Key
		}
		if ts[i].Key > kHi {
			kHi = ts[i].Key
		}
	}
	s.minMu.Lock()
	changed := false
	if len(main) > 0 && (!s.hasData || mainMin < s.minTime) {
		s.minTime = mainMin
		s.hasData = true
		changed = true
	}
	if len(side) > 0 && (!s.sideData || sideMin < s.sideMin) {
		s.sideMin = sideMin
		s.sideData = true
		changed = true
	}
	changed = s.growKeyBoxLocked(kLo, kHi) || changed
	s.minMu.Unlock()
	s.pendMu.RLock()
	if nextOff >= 0 {
		s.consumed.Store(nextOff)
	}
	if len(main) > 0 {
		s.tree.InsertBatch(main)
	}
	if len(side) > 0 {
		s.side.InsertBatch(side)
	}
	s.pendMu.RUnlock()
	if changed {
		s.reportLive()
	}
	if s.tree.Bytes() >= s.cfg.ChunkBytes {
		s.enqueueFlush(s.tree, false, true)
	}
	if s.side != nil && s.side.Bytes() >= s.cfg.ChunkBytes/4 {
		s.enqueueFlush(s.side, true, true)
	}
	if sampled {
		s.cfg.Metrics.InsertNanos.Observe(time.Since(start))
	}
}

func (s *Server) insertSide(t model.Tuple) {
	s.stats.SideRouted.Add(1)
	s.minMu.Lock()
	changed := !s.sideData || t.Time < s.sideMin
	if changed {
		s.sideMin = t.Time
		s.sideData = true
	}
	changed = s.growKeyBoxLocked(t.Key, t.Key) || changed
	s.minMu.Unlock()
	s.side.Insert(t)
	if changed {
		s.reportLive()
	}
	// The side store flushes at a fraction of the chunk size: very-late
	// tuples are rare and should not linger unbounded.
	if s.side.Bytes() >= s.cfg.ChunkBytes/4 {
		s.enqueueFlush(s.side, true, true)
	}
}

// growKeyBoxLocked widens the live trees' key bounding box to cover
// [lo, hi] and reports whether it changed. Requires minMu.
func (s *Server) growKeyBoxLocked(lo, hi model.Key) bool {
	if !s.keysSet {
		s.keyLo, s.keyHi, s.keysSet = lo, hi, true
		return true
	}
	changed := false
	if lo < s.keyLo {
		s.keyLo = lo
		changed = true
	}
	if hi > s.keyHi {
		s.keyHi = hi
		changed = true
	}
	return changed
}

// MemMinTime returns the left temporal bound of the live (memtable) region
// and whether any data is buffered.
func (s *Server) MemMinTime() (model.Timestamp, bool) {
	min, _, ok := s.MemBounds()
	return min, ok
}

// MemBounds returns the live (memtable) region's exact extent: the minimum
// timestamp and the key bounding box over both trees and every pending
// snapshot whose chunk is not yet registered (those tuples are still served
// from memory, so the live region must keep covering them), and whether any
// data is buffered. The key box is what the metadata server unions into the
// slot's actual interval — it covers old-interval tuples a repartition or
// split stranded in this memtable, whatever the current nominal interval
// says.
func (s *Server) MemBounds() (model.Timestamp, model.KeyRange, bool) {
	s.pendMu.RLock()
	defer s.pendMu.RUnlock()
	s.minMu.Lock()
	min, ok := model.Timestamp(0), false
	var keys model.KeyRange
	if s.hasData {
		min, ok = s.minTime, true
	}
	if s.sideData && (!ok || s.sideMin < min) {
		min, ok = s.sideMin, true
	}
	hasKeys := s.keysSet
	if hasKeys {
		keys = model.KeyRange{Lo: s.keyLo, Hi: s.keyHi}
	}
	s.minMu.Unlock()
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) == flushDone {
			continue // the registered chunks' regions cover these tuples
		}
		for i := range pf.parts {
			if t := pf.parts[i].snap.MinTime; !ok || t < min {
				min, ok = t, true
			}
			kr := boundingKeys(pf.parts[i].snap)
			if !hasKeys {
				keys, hasKeys = kr, true
			} else {
				if kr.Lo < keys.Lo {
					keys.Lo = kr.Lo
				}
				if kr.Hi > keys.Hi {
					keys.Hi = kr.Hi
				}
			}
		}
	}
	return min, keys, ok
}

// reportLive pushes the current live-region state to the metadata server.
// A passive shadow stays silent: the slot's live region belongs to the
// active owner until promotion. reportMu makes the measurement and the
// metadata call atomic, so concurrent reporters (inserter, consumer,
// flusher) publish in measurement order and a stale snapshot of the state
// can never overwrite a fresher one.
func (s *Server) reportLive() {
	if s.passive.Load() {
		return
	}
	s.reportMu.Lock()
	defer s.reportMu.Unlock()
	min, keys, ok := s.MemBounds()
	s.ms.ReportLive(s.cfg.ID, min, keys, !ok)
}

// PublishLive forces an immediate live-region report — callers that just
// drained the WAL into this server (cluster Drain, takeover barriers) use
// it to make the memtable's extent visible to query planning before they
// read, closing the hair-thin window between a consumed batch's offset
// store and the consumer loop's own report.
func (s *Server) PublishLive() { s.reportLive() }

// Activate flips a passive shadow live under the given ownership epoch —
// the final step of a promotion, after meta.TransferOwnership fenced the
// old owner. The committed-offset floor snaps to the slot's metadata
// offset (final once the old owner is fenced) and the live region is
// published.
func (s *Server) Activate(epoch int64) {
	s.epoch.Store(epoch)
	s.pendMu.Lock()
	if off := s.ms.Offset(s.cfg.ID); off > s.committedOff {
		s.committedOff = off
	}
	s.pendMu.Unlock()
	s.passive.Store(false)
	s.reportLive()
}

// Epoch returns the ownership epoch this incarnation writes metadata under.
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// Fenced reports whether a metadata write was rejected because ownership
// of the slot moved to a newer incarnation.
func (s *Server) Fenced() bool { return s.fenced.Load() }

// Flush forces the in-memory state out as chunks — the memtable and, when
// non-empty, the side store swap together as one flush unit — and waits for
// the unit to persist (no-op when both are empty). It returns the main
// chunk's registered info and whether a flush happened. When both trees are
// empty but an earlier unit is still unpersisted (e.g. its DFS write
// failed), Flush retries that unit instead, preserving the old contract
// that a failed flush can be re-driven by calling Flush again.
func (s *Server) Flush() (meta.ChunkInfo, bool) {
	// Capture the retry target and its attempt count before enqueueing:
	// the enqueue signals the parked flusher, and the race where the retry
	// completes before we look would otherwise lose the outcome.
	head := s.oldestUnpersisted()
	var since int32
	if head != nil {
		since = head.attempts.Load()
	}
	if pf := s.enqueueFlush(s.tree, false, false); pf != nil {
		return s.waitFlush(pf, 0)
	}
	if head == nil {
		return meta.ChunkInfo{}, false
	}
	return s.waitFlush(head, since)
}

// FlushAll flushes both the main memtable and the side store (a single
// Flush swaps both trees as one unit), then drains the pipeline so every
// snapshot is persisted (or awaiting retry after a DFS outage) when it
// returns.
func (s *Server) FlushAll() {
	s.Flush()
	s.DrainFlushes()
}

// boundingKeys computes the exact key bounding box of a snapshot from its
// key columns.
func boundingKeys(snap *core.FlushSnapshot) model.KeyRange {
	kr := snap.Keys
	for i := range snap.Leaves {
		if keys := snap.Leaves[i].Keys; len(keys) > 0 {
			kr.Lo = keys[0]
			break
		}
	}
	for i := len(snap.Leaves) - 1; i >= 0; i-- {
		if keys := snap.Leaves[i].Keys; len(keys) > 0 {
			kr.Hi = keys[len(keys)-1]
			break
		}
	}
	return kr
}

// ExecuteSubQuery answers a subquery against the in-memory state — the
// "fresh data" path of §IV: tuples are visible here the moment Insert
// returns. That now spans three sources: the live trees, the side store,
// and pending flush snapshots whose chunk the query's plan could not have
// included. The pending list is frozen against swaps and registrations for
// the duration of the scan (pendMu.RLock), so each tuple is seen in
// exactly one place regardless of concurrent flush progress.
func (s *Server) ExecuteSubQuery(sq *model.SubQuery) *model.Result {
	s.pendMu.RLock()
	defer s.pendMu.RUnlock()
	res := &model.Result{QueryID: sq.QueryID}
	if sq.Agg != nil {
		// Aggregate subquery: fold matching columns instead of copying
		// tuples out. Limit does not apply to aggregates.
		agg := &model.AggPartial{}
		res.Agg = agg
		s.scanSources(sq, func(rangeFn treeRange) {
			rangeFn(sq.Region.Keys, sq.Region.Times, sq.Filter, func(_ model.Key, _ model.Timestamp, p []byte) bool {
				agg.Count++
				if !sq.Agg.CountOnly {
					if v, ok := model.PayloadU64Field(p, sq.Agg.Field); ok {
						agg.AddValue(v)
					}
				}
				return true
			})
		})
		return res
	}
	sources := 0
	s.scanSources(sq, func(rangeFn treeRange) {
		base := len(res.Tuples)
		payloadBytes := 0
		rangeFn(sq.Region.Keys, sq.Region.Times, sq.Filter, func(k model.Key, ts model.Timestamp, p []byte) bool {
			// Payloads alias leaf arenas during the scan (append-only, so
			// the bytes stay valid) and are un-aliased into one arena per
			// source below — a handful of allocations per scan instead of
			// one per tuple.
			res.Tuples = append(res.Tuples, model.Tuple{Key: k, Time: ts, Payload: p})
			payloadBytes += len(p)
			// Each source may hold lower keys than where the previous
			// source's limit cut off, so every source scans with its own
			// budget and the combined result is re-cut on sorted order below.
			return sq.Limit <= 0 || len(res.Tuples)-base < sq.Limit
		})
		if payloadBytes > 0 {
			arena := make([]byte, 0, payloadBytes)
			for i := base; i < len(res.Tuples); i++ {
				t := &res.Tuples[i]
				off := len(arena)
				arena = append(arena, t.Payload...)
				t.Payload = arena[off:len(arena):len(arena)]
			}
		}
		if len(res.Tuples) > base {
			sources++
		}
	})
	if sources > 1 && sq.Limit > 0 && len(res.Tuples) > sq.Limit {
		res.SortTuples()
		res.Tuples = res.Tuples[:sq.Limit]
	}
	return res
}

// treeRange is the common columnar range-scan signature of the in-memory
// sources (TemplateTree.RangeCols / FlushSnapshot.RangeCols).
type treeRange = func(model.KeyRange, model.TimeRange, *model.Filter, core.ColsVisitor)

// scanSources invokes scan once per in-memory source a subquery must cover:
// the live tree, the side store, and each pending snapshot the query's plan
// could not have seen as a chunk (the AsOfChunk visibility rule). The
// caller must hold pendMu.RLock so the source set is frozen for the scan.
func (s *Server) scanSources(sq *model.SubQuery, scan func(treeRange)) {
	scan(s.tree.RangeCols)
	if s.side != nil {
		scan(s.side.RangeCols)
	}
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) == flushDone {
			// Registered: the planner saw this chunk unless it registered at
			// or above the query's horizon, in which case the plan predates
			// it and the in-memory copy must still serve. AsOfChunk zero
			// (legacy callers, tests) means "memtable only — skip anything
			// already in a chunk".
			if sq.AsOfChunk == 0 || pf.chunk.Load() < sq.AsOfChunk {
				continue
			}
		}
		for i := range pf.parts {
			scan(pf.parts[i].snap.RangeCols)
		}
	}
}

// MemLen returns the number of in-memory tuples: both trees plus pending
// snapshots not yet registered as chunks.
func (s *Server) MemLen() int {
	s.pendMu.RLock()
	defer s.pendMu.RUnlock()
	n := s.tree.Len()
	if s.side != nil {
		n += s.side.Len()
	}
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) != flushDone {
			for i := range pf.parts {
				n += pf.parts[i].snap.Count
			}
		}
	}
	return n
}

// MemBytes returns the in-memory payload bytes: both trees plus pending
// snapshots not yet registered as chunks.
func (s *Server) MemBytes() int64 {
	s.pendMu.RLock()
	defer s.pendMu.RUnlock()
	n := s.tree.Bytes()
	if s.side != nil {
		n += s.side.Bytes()
	}
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) != flushDone {
			for i := range pf.parts {
				n += pf.parts[i].snap.Bytes
			}
		}
	}
	return n
}

// Watermark returns the largest event timestamp observed.
func (s *Server) Watermark() model.Timestamp {
	return model.Timestamp(s.watermark.Load())
}

// SkewnessFactor returns the memtable's current skewness S(P,D) — the
// residue the adaptive template update drives back toward zero (§III-C).
func (s *Server) SkewnessFactor() float64 { return s.tree.Skewness() }

// ID returns the server's indexing-server id.
func (s *Server) ID() int { return s.cfg.ID }

// SetKeys updates the nominal key interval after a repartition (§III-D).
func (s *Server) SetKeys(kr model.KeyRange) {
	s.tree.SetKeys(kr)
	if s.side != nil {
		s.side.SetKeys(kr)
	}
}

// --- WAL consumption and recovery (§V) ---

// Consume runs the ingestion loop: it replays the partition from the
// offset stored in the metadata server (recovery), then keeps consuming
// until the partition closes or stop is closed. Fresh tuples become
// queryable the moment Insert returns. The loop polls rather than blocks
// so a crash simulation (closing stop) detaches the consumer promptly even
// on an idle partition.
func (s *Server) Consume(p *wal.Partition, stop <-chan struct{}) error {
	start := s.ms.Offset(s.cfg.ID)
	// A promoted standby already replayed its shadow memtable up to
	// consumed; resuming below that would insert those records twice.
	if c := s.consumed.Load(); c > start {
		start = c
	}
	if base := p.Base(); start < base {
		start = base
	}
	s.consumed.Store(start)
	head := p.Next() // records before head are replayed backlog (recovery)
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		recs, err := p.Read(s.consumed.Load(), 2048)
		if err != nil {
			return fmt.Errorf("ingest: consume: %w", err)
		}
		if len(recs) == 0 {
			if p.Closed() {
				return nil
			}
			select {
			case <-stop:
				return nil
			case <-time.After(200 * time.Microsecond):
			}
			continue
		}
		batch, derr := decodeRecords(recs)
		if derr != nil {
			return fmt.Errorf("ingest: consume: %w", derr)
		}
		for i := range recs {
			if recs[i].Offset < head {
				s.stats.Recovered.Add(1)
			}
		}
		// The offset advances with the inserts inside one pendMu read
		// section (see insertBatchAt): a flush swap — whether triggered by
		// this batch's threshold crossing afterwards or by a concurrent
		// Flush — snapshots an offset that covers exactly the tuples already
		// in trees, so recovery neither replays duplicates nor skips tuples.
		//
		// Sub-batch at chunk-budget boundaries so flush swaps land where the
		// per-tuple loop put them: each sub-batch fills the memtable to the
		// threshold at most once, keeping chunk sizes near ChunkBytes instead
		// of ballooning to the WAL read size.
		pos := 0
		for pos < len(batch) {
			budget := s.cfg.ChunkBytes - s.tree.Bytes()
			end := pos
			var sz int64
			for end < len(batch) && sz < budget {
				sz += int64(batch[end].Size())
				end++
			}
			if end == pos {
				end = pos + 1 // tree already at threshold; still make progress
			}
			s.insertBatchAt(batch[pos:end], recs[end-1].Offset+1)
			pos = end
		}
		s.reportLive()
	}
}

// Consumed returns the next WAL offset the server will read.
func (s *Server) Consumed() int64 { return s.consumed.Load() }

// decodeRecords decodes WAL records into tuples, arena-copying payloads
// into a single buffer: decoded payloads alias the WAL's retained record
// buffers (for AppendBatch, one buffer per *batch*), and without the copy
// each tuple would pin its entire source buffer for its lifetime in the
// tree. Shared by the consumption loop and the standby replayer.
func decodeRecords(recs []wal.Record) ([]model.Tuple, error) {
	batch := make([]model.Tuple, len(recs))
	arenaLen := 0
	for i, r := range recs {
		t, _, err := model.DecodeTuple(r.Data)
		if err != nil {
			return nil, fmt.Errorf("bad record at offset %d: %w", r.Offset, err)
		}
		batch[i] = t
		arenaLen += len(t.Payload)
	}
	arena := make([]byte, 0, arenaLen)
	for i := range batch {
		pos := len(arena)
		arena = append(arena, batch[i].Payload...)
		batch[i].Payload = arena[pos:len(arena):len(arena)]
	}
	return batch, nil
}
