package ingest

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"waterwheel/internal/dfs"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/wal"
)

// gatedWriter holds every Write until the gate opens — injected DFS
// latency, arbitrarily long.
type gatedWriter struct {
	inner   ChunkWriter
	gate    chan struct{}
	entered chan string // receives each path as its Write begins
}

func (w *gatedWriter) Write(name string, data []byte) error {
	w.entered <- name
	<-w.gate
	return w.inner.Write(name, data)
}

// flakyWriter fails every Write while fail is set.
type flakyWriter struct {
	inner ChunkWriter
	fail  atomic.Bool
}

func (w *flakyWriter) Write(name string, data []byte) error {
	if w.fail.Load() {
		return errors.New("injected DFS failure")
	}
	return w.inner.Write(name, data)
}

func newPipelineEnv(t *testing.T, w func(ChunkWriter) ChunkWriter, cfg Config) (*Server, *meta.Server) {
	t.Helper()
	fs := dfs.New(dfs.Config{Nodes: 3, Replication: 2, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	cfg.ID = 0
	if cfg.Leaves == 0 {
		cfg.Leaves = 16
	}
	srv := NewServer(cfg, w(fs), ms, 0)
	t.Cleanup(srv.Close)
	return srv, ms
}

// TestQueryableWhileFlushInFlight is the tentpole's visibility guarantee:
// with DFS write latency injected, a query issued while the flush is in
// flight still returns every tuple of the pending snapshot — there is no
// blind window between FlushReset and RegisterChunk.
func TestQueryableWhileFlushInFlight(t *testing.T) {
	gw := &gatedWriter{gate: make(chan struct{}), entered: make(chan string, 16)}
	srv, ms := newPipelineEnv(t, func(fs ChunkWriter) ChunkWriter { gw.inner = fs; return gw }, Config{ChunkBytes: 1 << 30})
	for i := 0; i < 300; i++ {
		srv.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(1000 + i)})
	}
	go srv.Flush()
	<-gw.entered // the flusher is now inside the DFS write

	// Mid-flight: chunk not registered, every tuple still visible, and the
	// live region still covers the snapshot.
	if n := ms.ChunkCount(); n != 0 {
		t.Fatalf("chunk registered before DFS write finished: %d", n)
	}
	if got := memQuery(srv, model.FullKeyRange(), model.FullTimeRange()); len(got) != 300 {
		t.Fatalf("mid-flight query saw %d tuples, want 300", len(got))
	}
	if min, ok := srv.MemMinTime(); !ok || min != 1000 {
		t.Fatalf("live region dropped the pending snapshot: min=%d ok=%v", min, ok)
	}
	if n := srv.PendingFlushes(); n != 1 {
		t.Fatalf("PendingFlushes = %d, want 1", n)
	}

	close(gw.gate)
	srv.DrainFlushes()
	waitFor(t, func() bool { return ms.ChunkCount() == 1 })
	// Registered: a horizon-less query (memtable only) no longer sees the
	// snapshot — the tuples' home is the chunk now.
	if got := memQuery(srv, model.FullKeyRange(), model.FullTimeRange()); len(got) != 0 {
		t.Fatalf("tuples duplicated after registration: %d", len(got))
	}
	if min, ok := srv.MemMinTime(); ok {
		t.Fatalf("live region should be empty after flush, got min=%d", min)
	}
}

// TestPendingSnapshotServedForPlannedQuery covers the horizon rule: a
// query whose plan predates the chunk registration (AsOfChunk at or below
// the chunk's ID) is still served the snapshot from memory, while a query
// planned afterwards is not.
func TestPendingSnapshotServedForPlannedQuery(t *testing.T) {
	gw := &gatedWriter{gate: make(chan struct{}), entered: make(chan string, 16)}
	srv, ms := newPipelineEnv(t, func(fs ChunkWriter) ChunkWriter { gw.inner = fs; return gw }, Config{ChunkBytes: 1 << 30})
	for i := 0; i < 100; i++ {
		srv.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)})
	}
	// Plan "a query" now: its horizon is the next chunk ID. Register it so
	// the snapshot stays pinned past its registration.
	q := ms.RegisterQuery(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	_, horizon := ms.ChunksForWithWatermark(model.FullRegion())
	defer ms.CompleteQuery(q.ID)

	go srv.Flush()
	<-gw.entered
	close(gw.gate)
	srv.DrainFlushes()
	waitFor(t, func() bool { return ms.ChunkCount() == 1 })

	planned := &model.SubQuery{
		Region:    model.Region{Keys: model.FullKeyRange(), Times: model.FullTimeRange()},
		AsOfChunk: horizon,
	}
	if got := srv.ExecuteSubQuery(planned); len(got.Tuples) != 100 {
		t.Fatalf("pre-registration plan got %d tuples from memory, want 100", len(got.Tuples))
	}
	_, after := ms.ChunksForWithWatermark(model.FullRegion())
	late := &model.SubQuery{
		Region:    model.Region{Keys: model.FullKeyRange(), Times: model.FullTimeRange()},
		AsOfChunk: after,
	}
	if got := srv.ExecuteSubQuery(late); len(got.Tuples) != 0 {
		t.Fatalf("post-registration plan got %d tuples from memory, want 0 (chunk serves them)", len(got.Tuples))
	}
}

// TestBackpressureBoundsQueue: with the queue full and a write stalled,
// the next threshold-crossing insert blocks (and is counted) instead of
// buffering unboundedly; releasing the DFS drains everything.
func TestBackpressureBoundsQueue(t *testing.T) {
	gw := &gatedWriter{gate: make(chan struct{}), entered: make(chan string, 16)}
	srv, ms := newPipelineEnv(t, func(fs ChunkWriter) ChunkWriter { gw.inner = fs; return gw },
		Config{ChunkBytes: 16 * 100, FlushQueueDepth: 1, SideThresholdMillis: -1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// ~16 B per payload-less tuple: crosses the threshold 3 times. One
		// snapshot stalls in the gated write, one fills the queue, the
		// third blocks the inserter.
		for i := 0; i < 350; i++ {
			srv.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)})
		}
	}()
	select {
	case <-done:
		t.Fatal("inserter never blocked on a full flush queue")
	case <-time.After(50 * time.Millisecond):
	}
	close(gw.gate)
	<-done
	srv.DrainFlushes()
	if n := srv.stats.Backpressure.Load(); n < 1 {
		t.Fatalf("Backpressure = %d, want >= 1", n)
	}
	waitFor(t, func() bool { return ms.ChunkCount() == 3 })
}

// TestOffsetsCommitInSnapshotOrder is the crash-safety half of the
// pipeline: a failed DFS write must hold back the WAL offset commit of
// every later snapshot, so a restart replays no gap — at most the
// uncommitted tail, never a hole.
func TestOffsetsCommitInSnapshotOrder(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 2, Replication: 1, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	fw := &flakyWriter{inner: fs}
	fw.fail.Store(true)
	p := wal.NewPartition()
	for i := 0; i < 350; i++ {
		p.Append(model.AppendTuple(nil, &model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)}))
	}
	// Threshold every ~100 tuples: three snapshots swap out while every
	// DFS write fails.
	srv := NewServer(Config{ID: 0, ChunkBytes: 16 * 100, Leaves: 16, FlushQueueDepth: 8, SideThresholdMillis: -1}, fw, ms, 0)
	defer srv.Close()
	stop := make(chan struct{})
	consDone := make(chan struct{})
	go func() { srv.Consume(p, stop); close(consDone) }()
	waitFor(t, func() bool { return srv.Stats().Ingested.Load() == 350 })
	waitFor(t, func() bool { return srv.Stats().FlushFailures.Load() >= 1 && srv.PendingFlushes() >= 3 })

	// Nothing may commit while the oldest snapshot is unpersisted: no
	// chunk, no offset — even though later snapshots are queued behind it.
	if got := ms.Offset(0); got != 0 {
		t.Fatalf("offset advanced to %d past an unpersisted snapshot", got)
	}
	if n := ms.ChunkCount(); n != 0 {
		t.Fatalf("chunks registered out of order during outage: %d", n)
	}
	// Everything remains queryable from the pending snapshots meanwhile.
	if got := memQuery(srv, model.FullKeyRange(), model.FullTimeRange()); len(got) != 350 {
		t.Fatalf("tuples lost during outage: %d, want 350", len(got))
	}

	// DFS recovers: Flush drives the retry and the tail, strictly in
	// order; offsets then cover the whole prefix.
	fw.fail.Store(false)
	if _, ok := srv.Flush(); !ok {
		t.Fatal("flush retry failed after DFS recovery")
	}
	srv.DrainFlushes()
	if got, want := ms.Offset(0), srv.Consumed(); got != want {
		t.Fatalf("offset = %d after full drain, want %d", got, want)
	}
	if srv.MemLen() != 0 {
		t.Fatalf("MemLen = %d after full drain, want 0", srv.MemLen())
	}
	close(stop)
	p.Append(model.AppendTuple(nil, &model.Tuple{Key: 999, Time: 999})) // wake the blocked read
	<-consDone

	// "Crash" and restart: the replacement replays only the post-offset
	// tail (the wake tuple), and chunks + memtable account for every tuple
	// exactly once.
	srv2 := NewServer(Config{ID: 0, ChunkBytes: 1 << 30, Leaves: 16}, fs, ms, 0)
	defer srv2.Close()
	stop2 := make(chan struct{})
	go srv2.Consume(p, stop2)
	waitFor(t, func() bool { return srv2.Consumed() == p.Next() })
	close(stop2)
	total := srv2.MemLen()
	for _, ci := range ms.ChunksFor(model.FullRegion()) {
		total += ci.Count
	}
	if total != 351 {
		t.Fatalf("chunks+memtable hold %d tuples after restart, want 351 (no gap, no duplicates)", total)
	}
	if rec := srv2.Stats().Recovered.Load(); rec != 1 {
		t.Fatalf("replayed %d records, want 1 (only the uncommitted tail)", rec)
	}
}

// TestSyncWALGatesOffsetCommit is the durability barrier of the flush
// path: a flush unit must not register its chunk or commit its WAL offset
// until the log is fsynced up to the unit's offset. A failing SyncWAL
// fails the flush attempt (stop the line, tuples stay queryable from the
// pending snapshot); once the log heals, the retry commits as usual and
// the fsync provably covered the committed offset.
func TestSyncWALGatesOffsetCommit(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 2, Replication: 1, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	var syncFail atomic.Bool
	syncFail.Store(true)
	var syncedTo atomic.Int64
	cfg := Config{
		ID: 0, ChunkBytes: 16 * 100, Leaves: 16, FlushQueueDepth: 8,
		SideThresholdMillis: -1,
		SyncWAL: func(upTo int64) error {
			if syncFail.Load() {
				return errors.New("injected fsync failure")
			}
			if upTo > syncedTo.Load() {
				syncedTo.Store(upTo)
			}
			return nil
		},
	}
	p := wal.NewPartition()
	for i := 0; i < 150; i++ {
		p.Append(model.AppendTuple(nil, &model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)}))
	}
	srv := NewServer(cfg, fs, ms, 0)
	defer srv.Close()
	stop := make(chan struct{})
	consDone := make(chan struct{})
	go func() { srv.Consume(p, stop); close(consDone) }()
	waitFor(t, func() bool { return srv.Stats().Ingested.Load() == 150 })
	waitFor(t, func() bool { return srv.Stats().FlushFailures.Load() >= 1 })

	// The unsynced snapshot must hold everything back: no chunk, no offset.
	if got := ms.Offset(0); got != 0 {
		t.Fatalf("offset advanced to %d past an unsynced WAL prefix", got)
	}
	if n := ms.ChunkCount(); n != 0 {
		t.Fatalf("chunk registered before its WAL prefix was synced: %d", n)
	}
	if got := memQuery(srv, model.FullKeyRange(), model.FullTimeRange()); len(got) != 150 {
		t.Fatalf("tuples lost during the fsync outage: %d, want 150", len(got))
	}

	// Log heals: the retry syncs, registers and commits.
	syncFail.Store(false)
	if _, ok := srv.Flush(); !ok {
		t.Fatal("flush retry failed after the WAL healed")
	}
	srv.DrainFlushes()
	waitFor(t, func() bool { return ms.ChunkCount() >= 1 })
	if got, want := ms.Offset(0), srv.Consumed(); got != want {
		t.Fatalf("offset = %d after drain, want %d", got, want)
	}
	if got := syncedTo.Load(); got < ms.Offset(0) {
		t.Fatalf("offset %d committed beyond the last synced offset %d", ms.Offset(0), got)
	}
	close(stop)
	p.Append(model.AppendTuple(nil, &model.Tuple{Key: 999, Time: 999})) // wake the blocked read
	<-consDone
}

// TestCloseDrainsQueue: shutdown waits for queued snapshots instead of
// dropping them, and post-Close flushes still work (inline).
func TestCloseDrainsQueue(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 3, Replication: 2, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	srv := NewServer(Config{ID: 0, ChunkBytes: 16 * 100, Leaves: 16, SideThresholdMillis: -1}, fs, ms, 0)
	for i := 0; i < 250; i++ {
		srv.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)})
	}
	srv.Close()
	srv.DrainFlushes()
	waitFor(t, func() bool { return ms.ChunkCount() >= 2 })
	if _, ok := srv.Flush(); !ok { // the ~50-tuple tail, flushed inline post-Close
		t.Fatal("post-Close flush failed")
	}
	if srv.MemLen() != 0 {
		t.Fatalf("MemLen = %d after close+flush, want 0", srv.MemLen())
	}
	srv.Close() // idempotent
}

// TestSyncFlushMode: the ablation switch restores fully inline flushes.
func TestSyncFlushMode(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 3, Replication: 2, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	srv := NewServer(Config{ID: 0, ChunkBytes: 16 * 100, Leaves: 16, SyncFlush: true, SideThresholdMillis: -1}, fs, ms, 0)
	defer srv.Close()
	for i := 0; i < 250; i++ {
		srv.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)})
	}
	// No drain needed: by the time Insert returns, the chunks exist.
	if n := ms.ChunkCount(); n != 2 {
		t.Fatalf("sync mode registered %d chunks inline, want 2", n)
	}
	if n := srv.PendingFlushes(); n != 0 {
		t.Fatalf("sync mode left %d pending flushes", n)
	}
}
