package ingest

import (
	"sync/atomic"
	"testing"
	"time"

	"waterwheel/internal/dfs"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
)

// Repro 1: DFS outage fills the flush queue; an inserter blocks on the
// full queue holding swapMu with retryCh drained. After the DFS recovers,
// nothing wakes the parked flusher -> permanent wedge.
func TestReproBackpressureDeadlock(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 2, Replication: 1, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	fw := &flakyWriter{inner: fs}
	fw.fail.Store(true)
	srv := NewServer(Config{ID: 0, ChunkBytes: 16 * 100, Leaves: 16, FlushQueueDepth: 1, SideThresholdMillis: -1}, fw, ms, 0)

	var inserted atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			srv.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)})
			inserted.Add(1)
		}
	}()

	// Wait until the pipeline is provably wedged: the flusher is parked on
	// the failed write and an inserter has hit backpressure on the full
	// queue — deterministic state, not a wall-clock stall heuristic.
	waitFor(t, func() bool {
		return srv.parked.Load() && srv.stats.Backpressure.Load() > 0
	})

	// DFS recovers.
	fw.fail.Store(false)
	select {
	case <-done:
		t.Log("inserter finished after recovery — no deadlock")
		srv.Close()
	case <-time.After(3 * time.Second):
		t.Fatalf("DEADLOCK: inserter stuck at %d/1000 tuples 3s after DFS recovery", inserted.Load())
	}
}

// Repro 2: SyncFlush mode — Flush() after a failed flush (empty memtable)
// should retry the failed snapshot per its doc; does it return?
func TestReproSyncFlushRetryHang(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 2, Replication: 1, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	fw := &flakyWriter{inner: fs}
	fw.fail.Store(true)
	srv := NewServer(Config{ID: 0, ChunkBytes: 1 << 30, Leaves: 16, SyncFlush: true, SideThresholdMillis: -1}, fw, ms, 0)
	defer srv.Close()
	for i := 0; i < 100; i++ {
		srv.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)})
	}
	if _, ok := srv.Flush(); ok {
		t.Fatal("flush should fail while DFS is down")
	}
	fw.fail.Store(false)
	ret := make(chan bool, 1)
	go func() {
		_, ok := srv.Flush() // memtable empty; doc says this re-drives the failed snapshot
		ret <- ok
	}()
	select {
	case ok := <-ret:
		if !ok {
			t.Fatal("retry Flush returned false after DFS recovery")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("HANG: Flush() never returned when re-driving a failed snapshot in SyncFlush mode")
	}
}
