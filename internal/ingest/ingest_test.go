package ingest

import (
	"testing"
	"time"

	"waterwheel/internal/dfs"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/wal"
)

func newTestEnv(chunkBytes int64) (*Server, *dfs.FS, *meta.Server) {
	fs := dfs.New(dfs.Config{Nodes: 3, Replication: 2, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	srv := NewServer(Config{
		ID: 0, ChunkBytes: chunkBytes, Leaves: 16,
		SideThresholdMillis: 60_000,
	}, fs, ms, 0)
	return srv, fs, ms
}

func memQuery(s *Server, kr model.KeyRange, tr model.TimeRange) []model.Tuple {
	res := s.ExecuteSubQuery(&model.SubQuery{
		Region: model.Region{Keys: kr, Times: tr},
	})
	return res.Tuples
}

func TestInsertImmediatelyVisible(t *testing.T) {
	srv, _, _ := newTestEnv(1 << 30)
	srv.Insert(model.Tuple{Key: 42, Time: 1000, Payload: []byte("p")})
	got := memQuery(srv, model.KeyRange{Lo: 42, Hi: 42}, model.FullTimeRange())
	if len(got) != 1 || string(got[0].Payload) != "p" {
		t.Fatalf("tuple not visible: %v", got)
	}
}

func TestFlushAtThreshold(t *testing.T) {
	// ~36-byte tuples; threshold 10 KB → flush after ~280 inserts.
	srv, fs, ms := newTestEnv(10 << 10)
	for i := 0; i < 2000; i++ {
		srv.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i), Payload: make([]byte, 20)})
	}
	srv.DrainFlushes() // flushes are asynchronous; settle before asserting
	if srv.Stats().Flushes.Load() == 0 {
		t.Fatal("no flush happened")
	}
	if len(fs.List()) == 0 {
		t.Fatal("no chunk files written")
	}
	if ms.ChunkCount() == 0 {
		t.Fatal("no chunks registered")
	}
	// Registered chunk regions cover exactly the flushed tuples.
	total := 0
	for _, ci := range ms.ChunksFor(model.FullRegion()) {
		total += ci.Count
	}
	total += srv.MemLen()
	if total != 2000 {
		t.Fatalf("chunks+memtable hold %d tuples, want 2000", total)
	}
}

func TestFlushRegistersTightRegion(t *testing.T) {
	srv, _, ms := newTestEnv(1 << 30)
	for i := 100; i < 200; i++ {
		srv.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(5000 + i)})
	}
	info, ok := srv.Flush()
	if !ok {
		t.Fatal("flush declined")
	}
	if info.Region.Keys != (model.KeyRange{Lo: 100, Hi: 199}) {
		t.Errorf("key region %v", info.Region.Keys)
	}
	if info.Region.Times != (model.TimeRange{Lo: 5100, Hi: 5199}) {
		t.Errorf("time region %v", info.Region.Times)
	}
	if info.Count != 100 {
		t.Errorf("count %d", info.Count)
	}
	if _, ok := ms.Chunk(info.ID); !ok {
		t.Error("chunk not in metadata")
	}
	// Memtable now empty; live region empty.
	if srv.MemLen() != 0 {
		t.Errorf("memtable holds %d after flush", srv.MemLen())
	}
	if lr := ms.LiveRegions()[0]; !lr.Empty {
		t.Errorf("live region not marked empty: %+v", lr)
	}
	// Flushing again is a no-op.
	if _, ok := srv.Flush(); ok {
		t.Error("empty flush succeeded")
	}
}

func TestLateTuplesGoToSideStore(t *testing.T) {
	srv, _, _ := newTestEnv(1 << 30)
	// Advance the watermark to t=200 000.
	srv.Insert(model.Tuple{Key: 1, Time: 200_000})
	// 30 s late: within threshold, stays in the main tree.
	srv.Insert(model.Tuple{Key: 2, Time: 170_000})
	if srv.Stats().SideRouted.Load() != 0 {
		t.Error("mildly late tuple routed to side store")
	}
	// 100 s late: beyond the 60 s threshold → side store.
	srv.Insert(model.Tuple{Key: 3, Time: 100_000})
	if srv.Stats().SideRouted.Load() != 1 {
		t.Error("very late tuple not routed to side store")
	}
	// Both are still visible to memtable subqueries.
	got := memQuery(srv, model.FullKeyRange(), model.FullTimeRange())
	if len(got) != 3 {
		t.Fatalf("visible %d, want 3", len(got))
	}
	// Live min time covers the late tuple.
	min, ok := srv.MemMinTime()
	if !ok || min != 100_000 {
		t.Errorf("MemMinTime = %d, %v", min, ok)
	}
}

func TestSideStoreKeepsMainRegionTight(t *testing.T) {
	srv, _, ms := newTestEnv(1 << 30)
	for i := 0; i < 100; i++ {
		srv.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(1_000_000 + i)})
	}
	// One catastrophically late tuple.
	srv.Insert(model.Tuple{Key: 50, Time: 5})
	srv.FlushAll()
	chunks := ms.ChunksFor(model.FullRegion())
	if len(chunks) != 2 {
		t.Fatalf("want 2 chunks (main+side), got %d", len(chunks))
	}
	// The main chunk's temporal region must not be stretched to t=5.
	var mainTight bool
	for _, c := range chunks {
		if c.Count == 100 && c.Region.Times.Lo == 1_000_000 {
			mainTight = true
		}
	}
	if !mainTight {
		t.Errorf("main chunk region stretched by the late tuple: %+v", chunks)
	}
}

func TestSideStoreDisabled(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 1, Replication: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	srv := NewServer(Config{ID: 0, ChunkBytes: 1 << 30, SideThresholdMillis: -1}, fs, ms, 0)
	srv.Insert(model.Tuple{Key: 1, Time: 1_000_000})
	srv.Insert(model.Tuple{Key: 2, Time: 5}) // very late, but side store off
	if srv.Stats().SideRouted.Load() != 0 {
		t.Error("side store used despite being disabled")
	}
	if got := memQuery(srv, model.FullKeyRange(), model.FullTimeRange()); len(got) != 2 {
		t.Errorf("visible %d", len(got))
	}
}

func TestMemtableSubQueryFilters(t *testing.T) {
	srv, _, _ := newTestEnv(1 << 30)
	for i := 0; i < 100; i++ {
		srv.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i * 10)})
	}
	res := srv.ExecuteSubQuery(&model.SubQuery{
		Region: model.Region{
			Keys:  model.KeyRange{Lo: 10, Hi: 50},
			Times: model.TimeRange{Lo: 200, Hi: 400},
		},
		Filter: model.KeyMod(2, 0),
	})
	// Keys 20..40 even → 11 tuples.
	if len(res.Tuples) != 11 {
		t.Fatalf("got %d tuples, want 11", len(res.Tuples))
	}
}

func TestConsumeAndRecovery(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 2, Replication: 1, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	p := wal.NewPartition()

	// Producer appends 500 tuples.
	for i := 0; i < 500; i++ {
		p.Append(model.AppendTuple(nil, &model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)}))
	}

	// First server consumes 500, flushes at ~300 via threshold.
	srv1 := NewServer(Config{ID: 0, ChunkBytes: 16 * 300}, fs, ms, 0) // payload-less tuples are 16 B
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { srv1.Consume(p, stop); close(done) }()
	waitFor(t, func() bool { return srv1.Stats().Ingested.Load() == 500 })
	close(stop)
	p.Append(model.AppendTuple(nil, &model.Tuple{Key: 999, Time: 999})) // wake the blocked read
	<-done
	srv1.DrainFlushes() // let the threshold flush commit its offset

	flushedOffset := ms.Offset(0)
	if flushedOffset == 0 {
		t.Fatal("no offset recorded at flush")
	}
	memBefore := srv1.MemLen()
	if memBefore == 0 {
		t.Fatal("expected unflushed tail in memtable")
	}

	// "Crash": srv1 vanishes. A new server recovers from the WAL.
	srv2 := NewServer(Config{ID: 0, ChunkBytes: 1 << 30}, fs, ms, 0)
	stop2 := make(chan struct{})
	done2 := make(chan struct{})
	go func() { srv2.Consume(p, stop2); close(done2) }()
	waitFor(t, func() bool {
		return srv2.Consumed() == p.Next()
	})
	close(stop2)
	p.Append(model.AppendTuple(nil, &model.Tuple{Key: 0, Time: 0}))
	<-done2

	// srv2 replayed everything from the stored offset: its memtable holds
	// the tuples srv1 had not flushed (501 total appended after offset,
	// minus the wake-up tuple consumed too).
	wantReplayed := p.Next() - flushedOffset - 1 // exclude the final wake-up append
	if got := srv2.Stats().Recovered.Load(); got < wantReplayed {
		t.Errorf("recovered %d records, want >= %d", got, wantReplayed)
	}
	// No flushed data was replayed twice: chunks + srv2 memtable == all.
	total := srv2.MemLen()
	for _, ci := range ms.ChunksFor(model.FullRegion()) {
		total += ci.Count
	}
	if total < 501 { // 500 + wake-up tuple
		t.Errorf("chunks+memtable = %d, want >= 501", total)
	}
}

func TestSetKeys(t *testing.T) {
	srv, _, _ := newTestEnv(1 << 30)
	srv.SetKeys(model.KeyRange{Lo: 100, Hi: 200})
	// Tuples outside the new nominal range still land (overlap window).
	srv.Insert(model.Tuple{Key: 50, Time: 1})
	if got := memQuery(srv, model.FullKeyRange(), model.FullTimeRange()); len(got) != 1 {
		t.Errorf("tuple lost after SetKeys: %d", len(got))
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestSideStoreFlushesIndependently(t *testing.T) {
	// A flood of very late tuples fills the side store to its quarter-of-
	// chunk threshold and flushes as its own chunk.
	srv, _, ms := newTestEnv(16 << 10) // side threshold = 4 KiB ≈ 256 tuples
	srv.Insert(model.Tuple{Key: 1, Time: 10_000_000})
	for i := 0; i < 500; i++ {
		srv.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)}) // ~10^7 ms late
	}
	if srv.Stats().SideRouted.Load() != 500 {
		t.Fatalf("side routed %d, want 500", srv.Stats().SideRouted.Load())
	}
	srv.DrainFlushes() // side flushes ride the same async pipeline
	if ms.ChunkCount() == 0 {
		t.Fatal("side store never flushed")
	}
	// Every tuple remains visible across memtables and chunks... memtable
	// only here; chunk visibility is the query servers' job, so just check
	// accounting.
	total := srv.MemLen()
	for _, ci := range ms.ChunksFor(model.FullRegion()) {
		total += ci.Count
	}
	if total != 501 {
		t.Fatalf("accounted %d, want 501", total)
	}
}

func TestWatermarkMonotone(t *testing.T) {
	srv, _, _ := newTestEnv(1 << 30)
	times := []model.Timestamp{100, 50, 200, 150, 90, 300}
	for i, ts := range times {
		srv.Insert(model.Tuple{Key: model.Key(i), Time: ts})
	}
	// All tuples visible regardless of arrival order.
	got := memQuery(srv, model.FullKeyRange(), model.FullTimeRange())
	if len(got) != len(times) {
		t.Fatalf("visible %d, want %d", len(got), len(times))
	}
	min, ok := srv.MemMinTime()
	if !ok || min != 50 {
		t.Fatalf("MemMinTime = %d, %v; want 50", min, ok)
	}
}

func TestFlushSurvivesDFSOutage(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 1, Replication: 1, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	srv := NewServer(Config{ID: 0, ChunkBytes: 1 << 30, Leaves: 8}, fs, ms, 0)
	for i := 0; i < 200; i++ {
		srv.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)})
	}
	fs.KillNode(0) // no live datanodes: writes must fail
	if _, ok := srv.Flush(); ok {
		t.Fatal("flush claimed success during DFS outage")
	}
	// Data still queryable from the memtable and nothing was registered.
	if got := memQuery(srv, model.FullKeyRange(), model.FullTimeRange()); len(got) != 200 {
		t.Fatalf("tuples lost during failed flush: %d", len(got))
	}
	if ms.ChunkCount() != 0 {
		t.Fatal("phantom chunk registered")
	}
	// Recovery of the datanode lets the retry succeed. The parked flusher
	// retries on its own (capped backoff), so Flush may race it: either the
	// snapshot is already durable (head gone → ok=false) or a final
	// pre-revive attempt fails after Flush sampled the attempt counter. Both
	// converge — wait for the pipeline to drain instead of trusting ok.
	fs.ReviveNode(0)
	if _, ok := srv.Flush(); !ok {
		waitFor(t, func() bool { return srv.PendingFlushes() == 0 })
	}
	if srv.MemLen() != 0 || ms.ChunkCount() != 1 {
		t.Fatalf("retry state: mem=%d chunks=%d", srv.MemLen(), ms.ChunkCount())
	}
}
