package ingest

import (
	"testing"
	"time"

	"waterwheel/internal/dfs"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/wal"
)

func encodeTuple(t model.Tuple) []byte {
	return model.AppendTuple(nil, &t)
}

// standbyEnv wires an active owner consuming a partition plus a standby
// tailing the same partition.
func standbyEnv(t *testing.T, chunkBytes int64) (*Server, *Standby, *wal.Partition, *meta.Server, func()) {
	t.Helper()
	fs := dfs.New(dfs.Config{Nodes: 3, Replication: 2, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	owner := NewServer(Config{ID: 0, ChunkBytes: chunkBytes, Leaves: 16, Epoch: ms.Epoch(0)}, fs, ms, 0)
	p := wal.NewPartition()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); owner.Consume(p, stop) }()
	sb := NewStandby(StandbyConfig{
		Slot: 0,
		NewServer: func() *Server {
			return NewServer(Config{ID: 0, ChunkBytes: chunkBytes, Leaves: 16, Passive: true}, fs, ms, 0)
		},
	}, ms, p)
	sb.Start()
	cleanup := func() {
		close(stop)
		<-done
		owner.Close()
	}
	return owner, sb, p, ms, cleanup
}

func appendTuples(t *testing.T, p *wal.Partition, lo, n int) {
	t.Helper()
	for i := lo; i < lo+n; i++ {
		tu := model.Tuple{Key: model.Key(i), Time: model.Timestamp(1000 + i), Payload: []byte{byte(i)}}
		if _, err := p.Append(encodeTuple(tu)); err != nil {
			t.Fatal(err)
		}
	}
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestStandbyShadowsOwner(t *testing.T) {
	_, sb, p, _, cleanup := standbyEnv(t, 1<<30)
	defer cleanup()
	appendTuples(t, p, 0, 50)
	waitCond(t, "standby catch-up", func() bool { return sb.Consumed() == p.Next() })
	if sb.Err() != nil {
		t.Fatal(sb.Err())
	}
	// The shadow indexed every unflushed record but reported no live
	// region and flushed nothing.
	sb.Halt()
	srv := sb.Promote(2)
	if got := srv.MemLen(); got != 50 {
		t.Fatalf("shadow memtable holds %d tuples, want 50", got)
	}
}

func TestStandbyResetsOnOwnerCommit(t *testing.T) {
	owner, sb, p, ms, cleanup := standbyEnv(t, 1<<30)
	defer cleanup()
	appendTuples(t, p, 0, 40)
	waitCond(t, "owner catch-up", func() bool { return owner.Consumed() == p.Next() })
	waitCond(t, "standby catch-up", func() bool { return sb.Consumed() == p.Next() })
	// The owner flushes: its committed offset passes the standby's base,
	// so the shadow must reset and re-tail from the commit.
	if _, ok := owner.Flush(); !ok {
		t.Fatal("owner flush did not happen")
	}
	committed := ms.Offset(0)
	if committed != p.Next() {
		t.Fatalf("committed = %d, head = %d", committed, p.Next())
	}
	waitCond(t, "standby reset", func() bool { return sb.Resets() > 0 && sb.Consumed() >= committed })
	appendTuples(t, p, 40, 10)
	waitCond(t, "standby tail resume", func() bool { return sb.Consumed() == p.Next() })
	sb.Halt()
	srv := sb.Promote(2)
	if got := srv.MemLen(); got != 10 {
		t.Fatalf("shadow holds %d tuples after reset, want only the 10 post-commit ones", got)
	}
}

func TestPromoteAfterFenceResumesExactlyOnce(t *testing.T) {
	owner, sb, p, ms, cleanup := standbyEnv(t, 1<<30)
	appendTuples(t, p, 0, 30)
	waitCond(t, "owner catch-up", func() bool { return owner.Consumed() == p.Next() })
	waitCond(t, "standby catch-up", func() bool { return sb.Consumed() == p.Next() })
	cleanup() // owner crashes (consumer detached)

	epoch, _, err := ms.TransferOwnership(0, sb.Consumed())
	if err != nil {
		t.Fatal(err)
	}
	sb.Halt()
	srv := sb.Promote(epoch)
	if srv.Epoch() != epoch {
		t.Fatalf("promoted epoch = %d, want %d", srv.Epoch(), epoch)
	}
	// The promoted server resumes consumption from its own replay
	// position, not the (stale) metadata offset — no duplicate replay.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); srv.Consume(p, stop) }()
	appendTuples(t, p, 30, 5)
	waitCond(t, "promoted catch-up", func() bool { return srv.Consumed() == p.Next() })
	close(stop)
	<-done
	if got := srv.MemLen(); got != 35 {
		t.Fatalf("promoted memtable holds %d tuples, want 35", got)
	}
	got := memQuery(srv, model.FullKeyRange(), model.FullTimeRange())
	seen := map[model.Key]int{}
	for _, tu := range got {
		seen[tu.Key]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %d appears %d times", k, n)
		}
	}
	if len(seen) != 35 {
		t.Fatalf("%d distinct keys, want 35", len(seen))
	}
	srv.Close()
}

func TestFencedOwnerCannotRegister(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 1, Replication: 1, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	owner := NewServer(Config{ID: 0, ChunkBytes: 1 << 30, Epoch: ms.Epoch(0)}, fs, ms, 0)
	for i := 0; i < 20; i++ {
		owner.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i), Payload: []byte("x")})
	}
	if _, _, err := ms.TransferOwnership(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := owner.Flush(); ok {
		t.Fatal("deposed owner's flush reported success")
	}
	if !owner.Fenced() {
		t.Fatal("owner not marked fenced")
	}
	if ms.ChunkCount() != 0 {
		t.Fatal("fenced flush registered chunks")
	}
	if ms.Offset(0) != 0 {
		t.Fatal("fenced flush committed an offset")
	}
	owner.Close()
}
