// Asynchronous flush pipeline. Crossing the chunk threshold inside Insert
// only swaps the leaf layer out (FlushReset, a pointer exchange) and hands
// the immutable snapshot — tagged with the WAL offset captured at swap
// time — to a per-server background flusher that runs chunk.Build, the DFS
// write and the metadata registration off the hot path. A bounded queue
// (Config.FlushQueueDepth, default 2 snapshots) applies backpressure:
// when the DFS cannot keep up, the next threshold crossing blocks until a
// slot frees, so memory stays bounded at roughly queue-depth chunks.
//
// Visibility: pending snapshots remain part of the live region and are
// scanned by ExecuteSubQuery until their chunk is registered, so a tuple
// is never unqueryable between swap and registration. Queries carry a
// chunk horizon (SubQuery.AsOfChunk) so a snapshot whose chunk registered
// after the query was planned is still served from memory — no window for
// duplicates or misses on either side of the registration instant.
//
// Failure: snapshots persist strictly in sequence. A failed DFS write
// parks the flusher ("stop the line"); the snapshot stays queryable and is
// retried on the next flush trigger. WAL offsets commit only for the
// contiguous persisted prefix, so SetOffset never advances past data that
// is not yet durable and a restart replays no gap.
package ingest

import (
	"fmt"
	"sync/atomic"
	"time"

	"waterwheel/internal/chunk"
	"waterwheel/internal/core"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
)

// flushState is the lifecycle of a pending snapshot.
type flushState int32

const (
	// flushQueued: waiting in the queue or being built/written.
	flushQueued flushState = iota
	// flushFailed: the DFS write failed; the snapshot stays queryable and
	// is retried on the next flush trigger.
	flushFailed
	// flushDone: the chunk is registered. The entry is retained only while
	// an active query planned before the registration may still need the
	// in-memory copy.
	flushDone
)

// pendingFlush is one swapped-out snapshot travelling through the pipeline.
type pendingFlush struct {
	snap *core.FlushSnapshot
	side bool
	// seq orders snapshots; chunks persist strictly in seq order.
	seq int
	// offset is the WAL read offset captured at swap time: committing it
	// tells recovery that everything up to here is in chunks.
	offset int64

	// state/chunk/attempts are written by the flusher and read lock-free
	// by queries and waiters (attempts is incremented last, publishing the
	// outcome of each attempt).
	state    atomic.Int32
	chunk    atomic.Uint64 // registered chunk ID; 0 until registered
	attempts atomic.Int32

	info meta.ChunkInfo
}

// enqueueFlush swaps the tree's leaf layer into an immutable snapshot and
// hands it to the flusher. threshold marks calls from the insert hot path,
// which re-check the threshold under swapMu so concurrent crossings don't
// flush tiny residue trees. Returns nil when there was nothing to flush.
//
// Lock order: swapMu → pendMu → minMu/gate. The snapshot is appended to
// the pending list in the same pendMu critical section as the FlushReset,
// so a concurrent query (which scans tree and pending under pendMu.RLock)
// sees each tuple in exactly one place.
func (s *Server) enqueueFlush(tree *core.TemplateTree, isSide, threshold bool) *pendingFlush {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if threshold && tree.Bytes() < s.thresholdFor(isSide) {
		return nil // another inserter already swapped this tree out
	}
	s.pendMu.Lock()
	snap := tree.FlushReset()
	var pf *pendingFlush
	if snap != nil {
		if s.cfg.NoTemplateReuse {
			// Ablation: discard the learned template by rebuilding the whole
			// tree with an even partition, as a non-template system would.
			tree.UpdateTemplate()
		}
		s.flushSeq++
		pf = &pendingFlush{
			snap:   snap,
			side:   isSide,
			seq:    s.flushSeq,
			offset: s.consumed.Load(),
		}
		s.pending = append(s.pending, pf)
		s.minMu.Lock()
		if isSide {
			s.sideData = false
		} else {
			s.hasData = false
		}
		s.minMu.Unlock()
	}
	s.pendMu.Unlock()
	// Wake a flusher parked on an earlier failure so retries precede the
	// new snapshot (preserving seq order), whether or not we swapped.
	s.signalRetry()
	if pf == nil {
		return nil
	}
	if s.cfg.SyncFlush || s.closed {
		// Synchronous mode (ablation/benchmark baseline) and post-Close
		// stragglers process inline, oldest first, still in seq order.
		if s.closed {
			<-s.flusherDone // the background flusher has fully exited
		}
		s.processBacklogUpTo(pf.seq)
		return pf
	}
	// Backpressure: a full queue blocks the inserting goroutine here until
	// the flusher catches up. swapMu stays held, so later threshold
	// crossings queue behind this one while plain inserts keep landing in
	// the fresh tree.
	select {
	case s.flushCh <- pf:
	default:
		stall := time.Now()
		s.stats.Backpressure.Add(1)
		s.flushCh <- pf
		s.cfg.Metrics.BackpressureNanos.Observe(time.Since(stall))
	}
	return pf
}

// thresholdFor returns the flush threshold of the main or side tree.
func (s *Server) thresholdFor(isSide bool) int64 {
	if isSide {
		return s.cfg.ChunkBytes / 4
	}
	return s.cfg.ChunkBytes
}

// signalRetry nudges a flusher parked on a failed write. Non-blocking: the
// channel holds one pending nudge.
func (s *Server) signalRetry() {
	select {
	case s.retryCh <- struct{}{}:
	default:
	}
}

// flusher is the per-server background goroutine: it persists snapshots
// strictly in arrival (= seq) order. On a write failure it parks until the
// next flush trigger instead of moving on, so no later snapshot is ever
// durable before an earlier one — the invariant the offset commit relies on.
func (s *Server) flusher() {
	defer close(s.flusherDone)
	for pf := range s.flushCh {
		for !s.processFlush(pf) {
			s.parked.Store(true)
			select {
			case <-s.retryCh:
				s.parked.Store(false)
			case <-s.stopCh:
				// Shutdown during an outage: abandon the retry loop. The
				// snapshot's offset was never committed, so the WAL replays
				// it after restart — no data loss, no gap.
				s.parked.Store(false)
				return
			}
		}
	}
}

// processFlush builds, writes and registers one snapshot. Returns false
// when the DFS refused the write; the snapshot then stays queryable in the
// pending list and the caller decides when to retry.
func (s *Server) processFlush(pf *pendingFlush) bool {
	flushStart := time.Now()
	data, cmeta, err := chunk.Build(pf.snap, s.cfg.Bloom)
	if err != nil {
		// Snapshot was non-empty, so Build cannot fail; a failure here is a
		// programming error worth surfacing loudly.
		panic(fmt.Sprintf("ingest: chunk build: %v", err))
	}
	kind := "c"
	if pf.side {
		kind = "side"
	}
	path := fmt.Sprintf("chunks/is%d-g%d-%s%d", s.cfg.ID, s.incarnation, kind, pf.seq)
	if err := s.fs.Write(path, data); err != nil {
		s.stats.FlushFailures.Add(1)
		pf.state.Store(int32(flushFailed))
		pf.attempts.Add(1)
		return false
	}
	// The chunk's data region: the tuples' exact bounding box, which is at
	// least as tight as the actual key interval × flush window.
	region := model.Region{
		Keys:  boundingKeys(pf.snap),
		Times: model.TimeRange{Lo: cmeta.MinTime, Hi: cmeta.MaxTime},
	}
	// Registration, horizon publication and offset commit happen in one
	// pendMu section: a query that saw the chunk in its plan cannot read
	// the pending list until the snapshot is marked done, and one that
	// read the list first plans with a horizon below the new chunk ID.
	s.pendMu.Lock()
	info := s.ms.RegisterChunk(meta.ChunkInfo{
		Path:      path,
		Region:    region,
		Count:     cmeta.Count,
		Size:      cmeta.Size,
		HeaderLen: cmeta.HeaderLen,
		Server:    s.cfg.ID,
	})
	pf.info = info
	pf.chunk.Store(uint64(info.ID))
	pf.state.Store(int32(flushDone))
	s.commitOffsetsLocked()
	s.sweepLocked()
	s.pendMu.Unlock()
	s.stats.Flushes.Add(1)
	s.stats.FlushBytes.Add(cmeta.Size)
	s.cfg.Metrics.FlushNanos.Observe(time.Since(flushStart))
	s.reportLive()
	pf.attempts.Add(1)
	return true
}

// commitOffsetsLocked records the WAL replay offset (§V) covering the
// contiguous prefix of persisted snapshots. Snapshots persist in seq
// order, so the walk stops at the first unpersisted entry: SetOffset never
// advances past a snapshot that failed or is still in flight, even when a
// later one (enqueued behind it) has already been written. Requires pendMu.
func (s *Server) commitOffsetsLocked() {
	commit := int64(-1)
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) != flushDone {
			break
		}
		commit = pf.offset
	}
	if commit > s.committedOff {
		s.committedOff = commit
		s.ms.SetOffset(s.cfg.ID, commit)
	}
}

// sweepLocked drops registered snapshots that no active query can still
// need: a query only scans a done snapshot when the chunk registered at or
// after the query's plan horizon, so once every active query's horizon is
// above the chunk ID the in-memory copy is garbage. Requires pendMu.
func (s *Server) sweepLocked() {
	floor := s.ms.MinQueryAsOf()
	keep := s.pending[:0]
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) == flushDone && pf.chunk.Load() < floor {
			continue
		}
		keep = append(keep, pf)
	}
	for i := len(keep); i < len(s.pending); i++ {
		s.pending[i] = nil
	}
	s.pending = keep
}

// processBacklogUpTo persists every unregistered pending snapshot with
// seq <= maxSeq inline, in order, one attempt each. Used by synchronous
// mode and by flushes arriving after Close.
func (s *Server) processBacklogUpTo(maxSeq int) {
	for {
		s.pendMu.RLock()
		var next *pendingFlush
		for _, pf := range s.pending {
			if flushState(pf.state.Load()) != flushDone && pf.seq <= maxSeq {
				next = pf
				break
			}
		}
		s.pendMu.RUnlock()
		if next == nil {
			return
		}
		if !s.processFlush(next) {
			return // outage: leave the rest for a later retry
		}
	}
}

// oldestUnpersisted returns the first pending snapshot that is not yet in
// a registered chunk, or nil.
func (s *Server) oldestUnpersisted() *pendingFlush {
	s.pendMu.RLock()
	defer s.pendMu.RUnlock()
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) != flushDone {
			return pf
		}
	}
	return nil
}

// waitFlush blocks until pf is registered (info, true) or an attempt past
// `since` has failed (zero info, false).
func (s *Server) waitFlush(pf *pendingFlush, since int32) (meta.ChunkInfo, bool) {
	for {
		if flushState(pf.state.Load()) == flushDone {
			return pf.info, true
		}
		if pf.attempts.Load() > since {
			if flushState(pf.state.Load()) == flushDone {
				return pf.info, true
			}
			return meta.ChunkInfo{}, false
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// flushBacklog counts snapshots still waiting for a (re)attempt or being
// written — the flush queue depth the telemetry gauge exposes.
func (s *Server) flushBacklog() int {
	s.pendMu.RLock()
	defer s.pendMu.RUnlock()
	n := 0
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) == flushQueued {
			n++
		}
	}
	return n
}

// PendingFlushes returns the number of swapped-out snapshots whose chunk
// is not yet registered (queued, in flight, or failed awaiting retry).
func (s *Server) PendingFlushes() int {
	s.pendMu.RLock()
	defer s.pendMu.RUnlock()
	n := 0
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) != flushDone {
			n++
		}
	}
	return n
}

// DrainFlushes blocks until every enqueued snapshot has been attempted —
// registered, or failed with the flusher parked awaiting a retry trigger.
// After a clean drain (no failures) all swapped data is in registered
// chunks and the committed WAL offset covers it.
func (s *Server) DrainFlushes() {
	for s.flushBacklog() > 0 && !s.parked.Load() {
		time.Sleep(200 * time.Microsecond)
	}
}

// Close stops the background flusher, draining queued snapshots first
// (failures during an outage are abandoned to WAL replay rather than
// retried forever). Further Flush calls process inline. Idempotent.
func (s *Server) Close() {
	s.swapMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.stopCh)
		close(s.flushCh)
	}
	s.swapMu.Unlock()
	<-s.flusherDone
}
