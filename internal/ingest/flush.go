// Asynchronous flush pipeline. Crossing the chunk threshold inside Insert
// only swaps the leaf layer out (FlushReset, a pointer exchange) and hands
// the immutable snapshot — tagged with the WAL offset captured at swap
// time — to a per-server background flusher that runs chunk.Build, the DFS
// write and the metadata registration off the hot path. A bounded queue
// (Config.FlushQueueDepth, default 2 snapshots) applies backpressure:
// when the DFS cannot keep up, the next threshold crossing blocks until a
// slot frees, so memory stays bounded at roughly queue-depth chunks.
//
// Visibility: pending snapshots remain part of the live region and are
// scanned by ExecuteSubQuery until their chunk is registered, so a tuple
// is never unqueryable between swap and registration. Queries carry a
// chunk horizon (SubQuery.AsOfChunk) so a snapshot whose chunk registered
// after the query was planned is still served from memory — no window for
// duplicates or misses on either side of the registration instant.
//
// Failure: snapshots persist strictly in sequence. A failed DFS write
// parks the flusher ("stop the line"); the snapshot stays queryable and is
// retried on the next flush trigger. WAL offsets commit only for the
// contiguous persisted prefix, so SetOffset never advances past data that
// is not yet durable and a restart replays no gap.
package ingest

import (
	"fmt"
	"sync/atomic"
	"time"

	"waterwheel/internal/chunk"
	"waterwheel/internal/core"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
)

// flushState is the lifecycle of a pending snapshot.
type flushState int32

const (
	// flushQueued: waiting in the queue or being built/written.
	flushQueued flushState = iota
	// flushFailed: the DFS write failed; the snapshot stays queryable and
	// is retried on the next flush trigger.
	flushFailed
	// flushDone: the chunk is registered. The entry is retained only while
	// an active query planned before the registration may still need the
	// in-memory copy.
	flushDone
)

// flushPart is one swapped-out snapshot inside a flush unit.
type flushPart struct {
	snap *core.FlushSnapshot
	side bool
	// written marks the part's DFS write as durable, so a retry of the
	// unit (after a later part failed) skips it: the DFS rejects writes
	// to existing names, and rebuilding is wasted work anyway. Only the
	// single goroutine driving processFlush for this unit touches it.
	written bool
	pending meta.ChunkInfo // built metadata, ID-less until registration
	info    meta.ChunkInfo // filled at registration
}

// pendingFlush is one flush unit travelling through the pipeline. A unit
// carries every tree snapshot covered by its WAL offset: the offset captured
// at swap time counts ALL consumed tuples, wherever routing placed them, so
// the main memtable and the side store always swap out together. Committing
// an offset whose tuples were split across two independently-flushed units
// would let recovery skip the half still in memory — the durability hole the
// chaos harness exposed (a crash between the main flush and the side flush
// silently dropped acked late tuples).
type pendingFlush struct {
	parts []flushPart
	// seq orders flush units; chunks persist strictly in seq order.
	seq int
	// offset is the WAL read offset captured at swap time: committing it
	// tells recovery that everything up to here is in chunks.
	offset int64

	// state/chunk/attempts are written by the flusher and read lock-free
	// by queries and waiters (attempts is incremented last, publishing the
	// outcome of each attempt).
	state    atomic.Int32
	chunk    atomic.Uint64 // first registered chunk ID; 0 until registered
	attempts atomic.Int32
}

// mainInfo returns the registered chunk info of the unit's main-tree part,
// falling back to the first part for side-only units. Valid after flushDone.
func (pf *pendingFlush) mainInfo() meta.ChunkInfo {
	for i := range pf.parts {
		if !pf.parts[i].side {
			return pf.parts[i].info
		}
	}
	return pf.parts[0].info
}

// enqueueFlush swaps BOTH trees' leaf layers into immutable snapshots and
// hands them to the flusher as one unit. threshold marks calls from the
// insert hot path, which re-check the triggering tree's threshold under
// swapMu so concurrent crossings don't flush tiny residue trees.
// Returns nil when there was nothing to flush.
//
// The trees swap together because the WAL offset recorded with the unit
// (s.consumed at swap time) covers every consumed tuple regardless of which
// tree routing placed it in. Swapping only one tree and committing that
// offset would declare the other tree's memory-only tuples durable; a crash
// before their own flush would then replay past them and lose them.
//
// Lock order: swapMu → pendMu → minMu/gate. The snapshots are appended to
// the pending list in the same pendMu critical section as the FlushReset,
// so a concurrent query (which scans trees and pending under pendMu.RLock)
// sees each tuple in exactly one place.
func (s *Server) enqueueFlush(tree *core.TemplateTree, isSide, threshold bool) *pendingFlush {
	if s.passive.Load() {
		// A standby's shadow never flushes: the active owner persists the
		// slot's data. The shadow memtable just grows until promotion (or
		// until the standby resets it against the owner's commits).
		return nil
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if threshold && tree.Bytes() < s.thresholdFor(isSide) {
		return nil // another inserter already swapped this tree out
	}
	s.pendMu.Lock()
	var parts []flushPart
	if snap := s.tree.FlushReset(); snap != nil {
		if s.cfg.NoTemplateReuse {
			// Ablation: discard the learned template by rebuilding the whole
			// tree with an even partition, as a non-template system would.
			s.tree.UpdateTemplate()
		}
		parts = append(parts, flushPart{snap: snap})
	}
	if s.side != nil {
		if snap := s.side.FlushReset(); snap != nil {
			if s.cfg.NoTemplateReuse {
				s.side.UpdateTemplate()
			}
			parts = append(parts, flushPart{snap: snap, side: true})
		}
	}
	var pf *pendingFlush
	if len(parts) > 0 {
		s.flushSeq++
		pf = &pendingFlush{
			parts:  parts,
			seq:    s.flushSeq,
			offset: s.consumed.Load(),
		}
		s.pending = append(s.pending, pf)
		s.minMu.Lock()
		s.hasData = false
		s.sideData = false
		s.keysSet = false
		s.minMu.Unlock()
	}
	s.pendMu.Unlock()
	// Wake a flusher parked on an earlier failure so retries precede the
	// new snapshot (preserving seq order), whether or not we swapped.
	s.signalRetry()
	if s.cfg.SyncFlush || s.closed {
		// Synchronous mode (ablation/benchmark baseline) and post-Close
		// stragglers process inline, oldest first, still in seq order. This
		// branch runs even when nothing was swapped (pf == nil): a bare
		// Flush() over an empty memtable must still re-drive an earlier
		// failed snapshot, since no background flusher exists to retry it.
		if s.closed {
			<-s.flusherDone // the background flusher has fully exited
		}
		s.processBacklogUpTo(s.flushSeq)
		return pf
	}
	if pf == nil {
		return nil
	}
	// Backpressure: a full queue blocks the inserting goroutine here until
	// the flusher catches up. swapMu stays held, so later threshold
	// crossings queue behind this one while plain inserts keep landing in
	// the fresh tree. An Abort (simulated crash) closes stopCh and releases
	// the blocked send; the snapshot is then abandoned to WAL replay.
	select {
	case s.flushCh <- pf:
	case <-s.stopCh:
		return pf
	default:
		stall := time.Now()
		s.stats.Backpressure.Add(1)
		select {
		case s.flushCh <- pf:
		case <-s.stopCh:
			return pf
		}
		s.cfg.Metrics.BackpressureNanos.Observe(time.Since(stall))
	}
	return pf
}

// thresholdFor returns the flush threshold of the main or side tree.
func (s *Server) thresholdFor(isSide bool) int64 {
	if isSide {
		return s.cfg.ChunkBytes / 4
	}
	return s.cfg.ChunkBytes
}

// signalRetry nudges a flusher parked on a failed write. Non-blocking: the
// channel holds one pending nudge.
func (s *Server) signalRetry() {
	select {
	case s.retryCh <- struct{}{}:
	default:
	}
}

// flusher is the per-server background goroutine: it persists snapshots
// strictly in arrival (= seq) order. On a write failure it parks instead of
// moving on, so no later snapshot is ever durable before an earlier one —
// the invariant the offset commit relies on.
func (s *Server) flusher() {
	defer close(s.flusherDone)
	for {
		select {
		case pf, ok := <-s.flushCh:
			if !ok {
				return
			}
			if !s.flushWithRetry(pf) {
				return
			}
		case <-s.stopCh:
			if s.aborted.Load() {
				// Crash semantics (Abort): abandon queued snapshots at once.
				// Their offsets were never committed, so WAL replay on the
				// replacement server reproduces every tuple exactly once.
				return
			}
			// Close(): flushCh is closed (or about to be, under the same
			// swapMu section); drain what was already queued so a clean
			// shutdown leaves nothing behind.
			for pf := range s.flushCh {
				if !s.flushWithRetry(pf) {
					return
				}
			}
			return
		}
	}
}

// flushWithRetry persists one snapshot, parking between failed attempts.
// Returns false when the server stopped before the snapshot persisted.
func (s *Server) flushWithRetry(pf *pendingFlush) bool {
	backoff := time.Millisecond
	for !s.processFlush(pf) {
		if s.fenced.Load() {
			// Deposed incarnation: the metadata server rejects its writes
			// for good. Exit instead of retrying forever; the new owner
			// replays the WAL tail this unit would have covered.
			return false
		}
		s.parked.Store(true)
		select {
		case <-s.retryCh:
		case <-time.After(backoff):
			// Self-driven retry with capped exponential backoff: the DFS can
			// recover while the only goroutine that would signal retryCh is
			// itself blocked on the full flush queue (holding swapMu), so
			// waiting exclusively for an external trigger would wedge the
			// pipeline permanently.
			if backoff < 64*time.Millisecond {
				backoff *= 2
			}
		case <-s.stopCh:
			// Shutdown during an outage: abandon the retry loop. The
			// snapshot's offset was never committed, so the WAL replays
			// it after restart — no data loss, no gap.
			s.parked.Store(false)
			return false
		}
		s.parked.Store(false)
	}
	return true
}

// processFlush builds, writes and registers one flush unit. Every part is
// written to the DFS before any is registered, and all parts register in a
// single metadata critical section (RegisterChunks) together with the offset
// commit: a query plan sees either none or all of the unit's chunks, and the
// WAL offset never covers a part that is not durable. Returns false when the
// DFS refused a write; the unit then stays queryable in the pending list and
// the caller decides when to retry.
func (s *Server) processFlush(pf *pendingFlush) bool {
	if s.fenced.Load() {
		pf.attempts.Add(1)
		return false
	}
	if s.aborted.Load() {
		// Crashed: nothing may persist or commit any more. Reporting failure
		// (not success) keeps backlog walkers and waiters from spinning on an
		// entry that will never reach flushDone.
		pf.attempts.Add(1)
		return false
	}
	flushStart := time.Now()
	infos := make([]meta.ChunkInfo, len(pf.parts))
	var totalBytes int64
	for i := range pf.parts {
		part := &pf.parts[i]
		if part.written {
			// A later part failed on a previous attempt; this one is
			// already durable (the DFS rejects rewrites of an existing
			// name), so the retry resumes where it stopped. The part stays
			// unregistered until the whole unit is durable.
			infos[i] = part.pending
			totalBytes += part.pending.Size
			continue
		}
		opts := s.cfg.Bloom
		if f := s.chunkFormat.Load(); f != 0 {
			// Runtime format override (chaos/migration drills): later flushes
			// switch layout while already-written chunks keep theirs.
			opts.Format = int(f)
		}
		data, cmeta, err := chunk.Build(part.snap, opts)
		if err != nil {
			// Snapshot was non-empty, so Build cannot fail; a failure here is a
			// programming error worth surfacing loudly.
			panic(fmt.Sprintf("ingest: chunk build: %v", err))
		}
		kind := "c"
		if part.side {
			kind = "side"
		}
		path := fmt.Sprintf("chunks/is%d-g%d-%s%d", s.cfg.ID, s.incarnation, kind, pf.seq)
		werr := error(nil)
		if s.cfg.FlushFailHook != nil {
			werr = s.cfg.FlushFailHook(s.cfg.ID, pf.seq, pf.attempts.Load())
		}
		if werr == nil {
			werr = s.fs.Write(path, data)
		}
		if werr != nil {
			// Parts written so far stay durable-but-unregistered; nothing
			// registers and no offset commits until every part is written.
			s.stats.FlushFailures.Add(1)
			pf.state.Store(int32(flushFailed))
			pf.attempts.Add(1)
			return false
		}
		// The chunk's data region: the tuples' exact bounding box, which is
		// at least as tight as the actual key interval × flush window.
		infos[i] = meta.ChunkInfo{
			Path: path,
			Region: model.Region{
				Keys:  boundingKeys(part.snap),
				Times: model.TimeRange{Lo: cmeta.MinTime, Hi: cmeta.MaxTime},
			},
			Count:     cmeta.Count,
			Size:      cmeta.Size,
			HeaderLen: cmeta.HeaderLen,
			Server:    s.cfg.ID,
			Format:    cmeta.Format,
			Agg:       cmeta.Agg,
		}
		part.pending = infos[i]
		part.written = true
		totalBytes += cmeta.Size
	}
	// Durability barrier (§V): the offset this unit is about to commit was
	// consumed from memory, possibly ahead of any WAL fsync. Force the log
	// durable up to it BEFORE registering — one fsync per flush, amortized
	// to nothing against the chunk write itself. Failing here fails the
	// attempt like a DFS write would: nothing registered, nothing
	// committed, retried later.
	if s.cfg.SyncWAL != nil {
		if err := s.cfg.SyncWAL(pf.offset); err != nil {
			s.stats.FlushFailures.Add(1)
			pf.state.Store(int32(flushFailed))
			pf.attempts.Add(1)
			return false
		}
	}
	// Registration, horizon publication and offset commit happen in one
	// pendMu section: a query that saw the chunks in its plan cannot read
	// the pending list until the unit is marked done, and one that read the
	// list first plans with a horizon below the unit's first chunk ID.
	s.pendMu.Lock()
	if s.aborted.Load() {
		// Abort raced with the in-flight writes: the chunk files exist but
		// are never registered (orphaned, invisible to queries) and the WAL
		// offset stays uncommitted, so replay on the replacement server
		// covers these tuples. Abort's pendMu barrier orders this check
		// strictly against the crash.
		s.pendMu.Unlock()
		pf.attempts.Add(1)
		return false
	}
	var regs []meta.ChunkInfo
	if e := s.epoch.Load(); e > 0 {
		// Epoch-guarded path: the chunks and the replay offset commit in
		// ONE metadata critical section (RegisterFlushOwned), so an
		// ownership transfer can never land between them — the promoted
		// standby would otherwise replay records already in a registered
		// chunk. The committed offset is the contiguous persisted prefix
		// with this unit counted done.
		commit := int64(-1)
		for _, q := range s.pending {
			if q != pf && flushState(q.state.Load()) != flushDone {
				break
			}
			commit = q.offset
			if q == pf {
				break
			}
		}
		var rerr error
		regs, rerr = s.ms.RegisterFlushOwned(s.cfg.ID, e, infos, commit)
		if rerr != nil {
			// Fenced: ownership of the slot moved to a newer incarnation.
			// This server is deposed — nothing it buffers may ever reach
			// metadata again, and retrying is pointless by construction.
			s.fenced.Store(true)
			s.stats.FlushFailures.Add(1)
			pf.state.Store(int32(flushFailed))
			s.pendMu.Unlock()
			pf.attempts.Add(1)
			return false
		}
		if commit > s.committedOff {
			s.committedOff = commit
		}
	} else {
		regs = s.ms.RegisterChunks(infos)
	}
	for i := range pf.parts {
		pf.parts[i].info = regs[i]
	}
	// The unit's chunk IDs are consecutive (batch registration), so a query
	// horizon is never strictly between them: horizon > first ID means the
	// plan saw the whole unit. The first ID therefore stands for the unit in
	// the visibility check (ExecuteSubQuery) and the sweep.
	pf.chunk.Store(uint64(regs[0].ID))
	pf.state.Store(int32(flushDone))
	if s.epoch.Load() <= 0 {
		s.commitOffsetsLocked()
	}
	s.sweepLocked()
	s.pendMu.Unlock()
	s.stats.Flushes.Add(1)
	s.stats.FlushBytes.Add(totalBytes)
	s.cfg.Metrics.FlushNanos.Observe(time.Since(flushStart))
	s.reportLive()
	pf.attempts.Add(1)
	return true
}

// commitOffsetsLocked records the WAL replay offset (§V) covering the
// contiguous prefix of persisted snapshots. Snapshots persist in seq
// order, so the walk stops at the first unpersisted entry: SetOffset never
// advances past a snapshot that failed or is still in flight, even when a
// later one (enqueued behind it) has already been written. Requires pendMu.
func (s *Server) commitOffsetsLocked() {
	commit := int64(-1)
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) != flushDone {
			break
		}
		commit = pf.offset
	}
	if commit > s.committedOff {
		s.committedOff = commit
		s.ms.SetOffset(s.cfg.ID, commit)
	}
}

// sweepLocked drops registered snapshots that no active query can still
// need: a query only scans a done snapshot when the chunk registered at or
// after the query's plan horizon, so once every active query's horizon is
// above the chunk ID the in-memory copy is garbage. Requires pendMu.
func (s *Server) sweepLocked() {
	floor := s.ms.MinQueryAsOf()
	keep := s.pending[:0]
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) == flushDone && pf.chunk.Load() < floor {
			continue
		}
		keep = append(keep, pf)
	}
	for i := len(keep); i < len(s.pending); i++ {
		s.pending[i] = nil
	}
	s.pending = keep
}

// processBacklogUpTo persists every unregistered pending snapshot with
// seq <= maxSeq inline, in order, one attempt each. Used by synchronous
// mode and by flushes arriving after Close.
func (s *Server) processBacklogUpTo(maxSeq int) {
	for {
		s.pendMu.RLock()
		var next *pendingFlush
		for _, pf := range s.pending {
			if flushState(pf.state.Load()) != flushDone && pf.seq <= maxSeq {
				next = pf
				break
			}
		}
		s.pendMu.RUnlock()
		if next == nil {
			return
		}
		if !s.processFlush(next) {
			return // outage: leave the rest for a later retry
		}
	}
}

// oldestUnpersisted returns the first pending snapshot that is not yet in
// a registered chunk, or nil.
func (s *Server) oldestUnpersisted() *pendingFlush {
	s.pendMu.RLock()
	defer s.pendMu.RUnlock()
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) != flushDone {
			return pf
		}
	}
	return nil
}

// waitFlush blocks until pf is registered (info, true) or an attempt past
// `since` has failed (zero info, false). Units persist strictly in seq
// order, so when an EARLIER unit is wedged on a failing DFS, pf itself may
// never be attempted; waitFlush therefore also gives up as soon as any
// write failure lands after it started waiting — during a persistent
// outage the head unit's next retry fails within one backoff period and
// unblocks the caller, who may re-drive the flush later per the Flush
// contract. On a recovered DFS the head retry succeeds instead, the line
// clears, and pf resolves normally.
func (s *Server) waitFlush(pf *pendingFlush, since int32) (meta.ChunkInfo, bool) {
	failsBefore := s.stats.FlushFailures.Load()
	for {
		if flushState(pf.state.Load()) == flushDone {
			return pf.mainInfo(), true
		}
		if pf.attempts.Load() > since {
			if flushState(pf.state.Load()) == flushDone {
				return pf.mainInfo(), true
			}
			return meta.ChunkInfo{}, false
		}
		if s.stats.FlushFailures.Load() > failsBefore {
			return meta.ChunkInfo{}, false
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// flushBacklog counts snapshots still waiting for a (re)attempt or being
// written — the flush queue depth the telemetry gauge exposes.
func (s *Server) flushBacklog() int {
	s.pendMu.RLock()
	defer s.pendMu.RUnlock()
	n := 0
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) == flushQueued {
			n++
		}
	}
	return n
}

// PendingFlushes returns the number of swapped-out snapshots whose chunk
// is not yet registered (queued, in flight, or failed awaiting retry).
func (s *Server) PendingFlushes() int {
	s.pendMu.RLock()
	defer s.pendMu.RUnlock()
	n := 0
	for _, pf := range s.pending {
		if flushState(pf.state.Load()) != flushDone {
			n++
		}
	}
	return n
}

// DrainFlushes blocks until every enqueued snapshot has been attempted —
// registered, or failed with the flusher parked awaiting a retry trigger.
// After a clean drain (no failures) all swapped data is in registered
// chunks and the committed WAL offset covers it.
func (s *Server) DrainFlushes() {
	for s.flushBacklog() > 0 && !s.parked.Load() {
		time.Sleep(200 * time.Microsecond)
	}
}

// Close stops the background flusher, draining queued snapshots first
// (failures during an outage are abandoned to WAL replay rather than
// retried forever). Further Flush calls process inline. Idempotent.
func (s *Server) Close() {
	s.swapMu.Lock()
	if !s.closed {
		s.closed = true
		if !s.stopped.Swap(true) {
			close(s.stopCh)
		}
		close(s.flushCh)
	}
	s.swapMu.Unlock()
	<-s.flusherDone
}

// Abort simulates an indexing-server crash: the background flusher stops
// without draining, and no snapshot — queued, in flight, or future — may
// register its chunk or commit a WAL offset from this call on. The tuples
// of abandoned snapshots were never covered by a committed offset, so WAL
// replay on a replacement server reproduces them exactly once; a chunk
// file a racing in-flight DFS write already created is simply never
// registered (orphaned files are invisible to queries). Unlike Close,
// Abort never takes swapMu, so it cannot deadlock behind an inserter that
// is itself blocked on the full flush queue during a DFS outage — closing
// stopCh is what releases that inserter. Idempotent; safe alongside Close.
func (s *Server) Abort() {
	s.aborted.Store(true)
	if !s.stopped.Swap(true) {
		close(s.stopCh)
	}
	<-s.flusherDone
	// Barrier: a registration already inside its pendMu critical section
	// (e.g. the synchronous-mode inline path) completes or observes the
	// abort before this returns, so the caller reads WAL offsets only after
	// the last possible commit from this incarnation.
	s.pendMu.Lock()
	s.pendMu.Unlock() //nolint:staticcheck // empty section is the barrier
}
