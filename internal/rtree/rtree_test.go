package rtree

import (
	"math/rand"
	"testing"

	"waterwheel/internal/model"
)

func region(k0, k1 uint64, t0, t1 int64) model.Region {
	return model.Region{
		Keys:  model.KeyRange{Lo: model.Key(k0), Hi: model.Key(k1)},
		Times: model.TimeRange{Lo: model.Timestamp(t0), Hi: model.Timestamp(t1)},
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := New(4)
	tr.Insert(region(0, 10, 0, 10), "a")
	tr.Insert(region(20, 30, 0, 10), "b")
	tr.Insert(region(0, 10, 20, 30), "c")

	got := tr.Search(region(2, 8, 2, 8))
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("search = %v, want [a]", got)
	}
	got = tr.Search(region(0, 100, 0, 100))
	if len(got) != 3 {
		t.Fatalf("full search = %v", got)
	}
	if tr.Len() != 3 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestSearchRequiresBothDomains(t *testing.T) {
	tr := New(4)
	tr.Insert(region(0, 10, 0, 10), 1)
	if got := tr.Search(region(5, 15, 50, 60)); len(got) != 0 {
		t.Errorf("key-only overlap matched: %v", got)
	}
	if got := tr.Search(region(50, 60, 5, 15)); len(got) != 0 {
		t.Errorf("time-only overlap matched: %v", got)
	}
}

// brute is a linear-scan reference.
type brute struct {
	regions []model.Region
	values  []int
}

func (b *brute) insert(r model.Region, v int) {
	b.regions = append(b.regions, r)
	b.values = append(b.values, v)
}

func (b *brute) search(q model.Region) map[int]bool {
	out := map[int]bool{}
	for i, r := range b.regions {
		if r.Overlaps(q) {
			out[b.values[i]] = true
		}
	}
	return out
}

func (b *brute) delete(r model.Region, v int) bool {
	for i := range b.regions {
		if b.regions[i] == r && b.values[i] == v {
			b.regions = append(b.regions[:i], b.regions[i+1:]...)
			b.values = append(b.values[:i], b.values[i+1:]...)
			return true
		}
	}
	return false
}

func randRegion(rng *rand.Rand) model.Region {
	k0 := uint64(rng.Intn(10000))
	t0 := int64(rng.Intn(10000))
	return region(k0, k0+uint64(rng.Intn(500)), t0, t0+int64(rng.Intn(500)))
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New(8)
	bf := &brute{}
	for i := 0; i < 500; i++ {
		r := randRegion(rng)
		tr.Insert(r, i)
		bf.insert(r, i)
	}
	for q := 0; q < 200; q++ {
		qr := randRegion(rng)
		want := bf.search(qr)
		got := tr.Search(qr)
		gotSet := map[int]bool{}
		for _, v := range got {
			if gotSet[v.(int)] {
				t.Fatalf("duplicate result %v", v)
			}
			gotSet[v.(int)] = true
		}
		if len(gotSet) != len(want) {
			t.Fatalf("query %v: got %d results, want %d", qr, len(gotSet), len(want))
		}
		for v := range want {
			if !gotSet[v] {
				t.Fatalf("query %v: missing value %d", qr, v)
			}
		}
	}
}

func TestDeleteAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := New(6)
	bf := &brute{}
	regions := make([]model.Region, 300)
	for i := range regions {
		regions[i] = randRegion(rng)
		tr.Insert(regions[i], i)
		bf.insert(regions[i], i)
	}
	// Delete a random half, interleaved with correctness probes.
	perm := rng.Perm(len(regions))
	for round, idx := range perm[:150] {
		v := idx
		okTree := tr.Delete(regions[idx], func(x any) bool { return x.(int) == v })
		okBf := bf.delete(regions[idx], v)
		if okTree != okBf {
			t.Fatalf("delete %d: tree=%v brute=%v", idx, okTree, okBf)
		}
		if round%25 == 0 {
			qr := randRegion(rng)
			want := bf.search(qr)
			got := tr.Search(qr)
			if len(got) != len(want) {
				t.Fatalf("after %d deletes, query mismatch: got %d want %d", round+1, len(got), len(want))
			}
		}
	}
	if tr.Len() != 150 {
		t.Errorf("len = %d, want 150", tr.Len())
	}
	// Deleting something already gone returns false.
	if tr.Delete(regions[perm[0]], func(x any) bool { return x.(int) == perm[0] }) {
		t.Error("double delete succeeded")
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	tr := New(4)
	for i := 0; i < 50; i++ {
		tr.Insert(region(uint64(i*10), uint64(i*10+5), 0, 10), i)
	}
	for i := 0; i < 50; i++ {
		v := i
		if !tr.Delete(region(uint64(i*10), uint64(i*10+5), 0, 10), func(x any) bool { return x.(int) == v }) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after deleting all", tr.Len())
	}
	if got := tr.Search(model.FullRegion()); len(got) != 0 {
		t.Fatalf("empty tree returned %v", got)
	}
	tr.Insert(region(1, 2, 3, 4), "back")
	if got := tr.Search(model.FullRegion()); len(got) != 1 {
		t.Fatal("reuse after emptying failed")
	}
}

func TestVisitEarlyStop(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Insert(region(uint64(i), uint64(i), 0, 10), i)
	}
	n := 0
	tr.Visit(model.FullRegion(), func(model.Region, any) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("visited %d, want 5", n)
	}
}

func TestDuplicateRegions(t *testing.T) {
	tr := New(4)
	r := region(10, 20, 10, 20)
	for i := 0; i < 10; i++ {
		tr.Insert(r, i)
	}
	got := tr.Search(r)
	if len(got) != 10 {
		t.Fatalf("got %d duplicates, want 10", len(got))
	}
	// Delete a specific one among the duplicates.
	if !tr.Delete(r, func(x any) bool { return x.(int) == 7 }) {
		t.Fatal("delete of specific duplicate failed")
	}
	got = tr.Search(r)
	if len(got) != 9 {
		t.Fatalf("after delete: %d", len(got))
	}
	for _, v := range got {
		if v.(int) == 7 {
			t.Error("deleted value still present")
		}
	}
}

func TestAll(t *testing.T) {
	tr := New(4)
	for i := 0; i < 25; i++ {
		tr.Insert(randRegion(rand.New(rand.NewSource(int64(i)))), i)
	}
	if got := tr.All(); len(got) != 25 {
		t.Errorf("All = %d, want 25", len(got))
	}
}
