// Package rtree implements an R-tree [5] over key×time regions. The query
// coordinator keeps one over the data-region metadata so it can efficiently
// retrieve the query-region candidates — data regions overlapping a query
// region — during query decomposition (paper §IV-A). Overlapping regions
// (from repartitions and late arrivals) are handled naturally.
package rtree

import (
	"sync"

	"waterwheel/internal/model"
)

// Tree is a concurrency-safe R-tree mapping regions to opaque values.
type Tree struct {
	mu         sync.RWMutex
	root       *node
	maxEntries int
	minEntries int
	size       int
}

type node struct {
	leaf    bool
	entries []entry
}

type entry struct {
	mbr   model.Region
	child *node // internal entries
	value any   // leaf entries
}

// New creates an R-tree with the given node capacity (minimum 4; values
// below are raised to the default of 16).
func New(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = 16
	}
	return &Tree{
		root:       &node{leaf: true},
		maxEntries: maxEntries,
		minEntries: maxEntries * 2 / 5, // R*-tree's recommended 40%
	}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Insert stores value under the given region. Duplicate regions are
// allowed.
func (t *Tree) Insert(r model.Region, value any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.insert(entry{mbr: r, value: value})
	t.size++
}

func (t *Tree) insert(e entry) {
	leaf, path := t.chooseLeaf(e.mbr)
	leaf.entries = append(leaf.entries, e)
	t.adjustUp(leaf, path)
}

// chooseLeaf descends to the leaf requiring least area enlargement,
// returning the leaf and the root-to-parent path.
func (t *Tree) chooseLeaf(r model.Region) (*node, []*node) {
	n := t.root
	var path []*node
	for !n.leaf {
		path = append(path, n)
		best, bestEnl, bestArea := 0, -1.0, 0.0
		for i := range n.entries {
			enl := enlargement(n.entries[i].mbr, r)
			ar := area(n.entries[i].mbr)
			if bestEnl < 0 || enl < bestEnl || (enl == bestEnl && ar < bestArea) {
				best, bestEnl, bestArea = i, enl, ar
			}
		}
		n = n.entries[best].child
	}
	return n, path
}

// adjustUp recomputes MBRs along the path and splits overflowing nodes.
func (t *Tree) adjustUp(n *node, path []*node) {
	for {
		var split *node
		if len(n.entries) > t.maxEntries {
			split = t.splitNode(n)
		}
		if len(path) == 0 {
			if split != nil {
				// Grow a new root.
				newRoot := &node{entries: []entry{
					{mbr: mbrOf(n), child: n},
					{mbr: mbrOf(split), child: split},
				}}
				t.root = newRoot
			}
			return
		}
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		for i := range parent.entries {
			if parent.entries[i].child == n {
				parent.entries[i].mbr = mbrOf(n)
				break
			}
		}
		if split != nil {
			parent.entries = append(parent.entries, entry{mbr: mbrOf(split), child: split})
		}
		n = parent
	}
}

// splitNode performs a quadratic split, moving roughly half the entries to
// a returned new node.
func (t *Tree) splitNode(n *node) *node {
	seedA, seedB := quadraticSeeds(n.entries)
	groupA := []entry{n.entries[seedA]}
	groupB := []entry{n.entries[seedB]}
	mbrA, mbrB := n.entries[seedA].mbr, n.entries[seedB].mbr
	var rest []entry
	for i, e := range n.entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for ri, e := range rest {
		// Force-assign when a group must take every remaining entry to
		// reach the minimum fill.
		remaining := len(rest) - ri
		switch {
		case len(groupA)+remaining <= t.minEntries:
			groupA = append(groupA, e)
			mbrA = union(mbrA, e.mbr)
			continue
		case len(groupB)+remaining <= t.minEntries:
			groupB = append(groupB, e)
			mbrB = union(mbrB, e.mbr)
			continue
		}
		dA := enlargement(mbrA, e.mbr)
		dB := enlargement(mbrB, e.mbr)
		if dA < dB || (dA == dB && area(mbrA) <= area(mbrB)) {
			groupA = append(groupA, e)
			mbrA = union(mbrA, e.mbr)
		} else {
			groupB = append(groupB, e)
			mbrB = union(mbrB, e.mbr)
		}
	}
	n.entries = groupA
	return &node{leaf: n.leaf, entries: groupB}
}

// quadraticSeeds picks the pair of entries wasting the most area together.
func quadraticSeeds(es []entry) (int, int) {
	bestI, bestJ, worst := 0, 1, -1.0
	for i := 0; i < len(es); i++ {
		for j := i + 1; j < len(es); j++ {
			d := area(union(es[i].mbr, es[j].mbr)) - area(es[i].mbr) - area(es[j].mbr)
			if d > worst {
				worst, bestI, bestJ = d, i, j
			}
		}
	}
	return bestI, bestJ
}

// Search returns the values of all entries whose region overlaps r.
func (t *Tree) Search(r model.Region) []any {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []any
	searchNode(t.root, r, &out)
	return out
}

func searchNode(n *node, r model.Region, out *[]any) {
	for i := range n.entries {
		if !n.entries[i].mbr.Overlaps(r) {
			continue
		}
		if n.leaf {
			*out = append(*out, n.entries[i].value)
		} else {
			searchNode(n.entries[i].child, r, out)
		}
	}
}

// Visit calls fn for every entry overlapping r, stopping early when fn
// returns false.
func (t *Tree) Visit(r model.Region, fn func(model.Region, any) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	visitNode(t.root, r, fn)
}

func visitNode(n *node, r model.Region, fn func(model.Region, any) bool) bool {
	for i := range n.entries {
		if !n.entries[i].mbr.Overlaps(r) {
			continue
		}
		if n.leaf {
			if !fn(n.entries[i].mbr, n.entries[i].value) {
				return false
			}
		} else if !visitNode(n.entries[i].child, r, fn) {
			return false
		}
	}
	return true
}

// Delete removes one entry with an exactly matching region for which match
// returns true, reporting whether anything was removed.
func (t *Tree) Delete(r model.Region, match func(any) bool) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf, path, idx := findExact(t.root, nil, r, match)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf, path)
	return true
}

func findExact(n *node, path []*node, r model.Region, match func(any) bool) (*node, []*node, int) {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].mbr == r && match(n.entries[i].value) {
				return n, path, i
			}
		}
		return nil, nil, -1
	}
	for i := range n.entries {
		if !n.entries[i].mbr.Overlaps(r) {
			continue
		}
		if leaf, p, idx := findExact(n.entries[i].child, append(path, n), r, match); leaf != nil {
			return leaf, p, idx
		}
	}
	return nil, nil, -1
}

// condense removes underfull nodes along the path and reinserts their
// orphaned entries, then shrinks the root if needed.
func (t *Tree) condense(n *node, path []*node) {
	var orphans []entry
	for len(path) > 0 {
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		if len(n.entries) < t.minEntries {
			for i := range parent.entries {
				if parent.entries[i].child == n {
					parent.entries = append(parent.entries[:i], parent.entries[i+1:]...)
					break
				}
			}
			orphans = append(orphans, collectLeafEntries(n)...)
		} else {
			for i := range parent.entries {
				if parent.entries[i].child == n {
					parent.entries[i].mbr = mbrOf(n)
					break
				}
			}
		}
		n = parent
	}
	// Shrink root.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}
	for _, e := range orphans {
		t.insert(e)
	}
}

func collectLeafEntries(n *node) []entry {
	if n.leaf {
		return n.entries
	}
	var out []entry
	for i := range n.entries {
		out = append(out, collectLeafEntries(n.entries[i].child)...)
	}
	return out
}

// All returns every stored value.
func (t *Tree) All() []any {
	return t.Search(model.FullRegion())
}

// Geometry helpers. Heuristics (areas) use float64; correctness predicates
// use exact integer comparisons from package model.

func area(r model.Region) float64 {
	return float64(r.Keys.Width()) * float64(r.Times.Duration()+1)
}

func union(a, b model.Region) model.Region {
	u := a
	if b.Keys.Lo < u.Keys.Lo {
		u.Keys.Lo = b.Keys.Lo
	}
	if b.Keys.Hi > u.Keys.Hi {
		u.Keys.Hi = b.Keys.Hi
	}
	if b.Times.Lo < u.Times.Lo {
		u.Times.Lo = b.Times.Lo
	}
	if b.Times.Hi > u.Times.Hi {
		u.Times.Hi = b.Times.Hi
	}
	return u
}

func enlargement(mbr, add model.Region) float64 {
	return area(union(mbr, add)) - area(mbr)
}

func mbrOf(n *node) model.Region {
	m := n.entries[0].mbr
	for i := 1; i < len(n.entries); i++ {
		m = union(m, n.entries[i].mbr)
	}
	return m
}
