package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"waterwheel/internal/transport"
)

func TestShippingRoundTrip(t *testing.T) {
	l := NewLog(2)
	p := l.Partition(1)
	for i := 0; i < 5; i++ {
		if _, err := p.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	srv := transport.NewServer()
	RegisterShipping(srv, l)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := transport.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tail := NewRemoteTail(c, 1)
	recs, err := tail.Read(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("read %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Offset != int64(i) || len(r.Data) != 1 || r.Data[0] != byte(i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Reading at the head returns no records and no error, like a local tail.
	recs, err = tail.Read(5, 10)
	if err != nil || len(recs) != 0 {
		t.Fatalf("head read = %v, %v", recs, err)
	}
	// Compaction below the requested offset surfaces as ErrCompacted.
	p.Truncate(3)
	if _, err := tail.Read(0, 10); !errors.Is(err, ErrCompacted) {
		t.Fatalf("compacted read err = %v, want ErrCompacted", err)
	}
	// Out-of-range partitions error without killing the connection.
	if _, err := NewRemoteTail(c, 9).Read(0, 1); err == nil {
		t.Fatal("read of unknown partition succeeded")
	}
}

func TestLogAddPartition(t *testing.T) {
	l := NewLog(1)
	p, i, err := l.AddPartition()
	if err != nil {
		t.Fatal(err)
	}
	if i != 1 || l.Partitions() != 2 || l.Partition(1) != p {
		t.Fatalf("add partition: i=%d n=%d", i, l.Partitions())
	}
	if _, err := p.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}

	// Disk-backed logs grow with files beside their siblings and recover
	// the added partition on reopen.
	dir := t.TempDir()
	dl, err := OpenLogDir(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	dp, di, err := dl.AddPartition()
	if err != nil {
		t.Fatal(err)
	}
	if di != 1 {
		t.Fatalf("disk add partition index = %d", di)
	}
	if _, err := dp.Append([]byte("y")); err != nil {
		t.Fatal(err)
	}
	dl.Close()
	for i := 0; i < dl.Partitions(); i++ {
		if err := dl.Partition(i).CloseFile(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "p1.wal")); err != nil {
		t.Fatalf("added partition file: %v", err)
	}
	re, err := OpenLogDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs, err := re.Partition(1).Read(0, 10)
	if err != nil || len(recs) != 1 || string(recs[0].Data) != "y" {
		t.Fatalf("reopened added partition read = %v, %v", recs, err)
	}
}
