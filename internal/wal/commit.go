package wal

// Group commit (paper §V): acking a tuple promises it survives an
// indexing-server crash, which for a disk-backed partition means its WAL
// record must be on stable storage — not in the OS page cache — before the
// ack. Issuing fsync per append would cap ingest at the disk's sync rate,
// so a per-partition committer goroutine batches appends into cohorts: an
// appender parks on the partition's synced condition, the committer
// captures the current head, issues ONE fsync, advances the watermark and
// wakes everyone the fsync covered. All appends that arrive while an fsync
// is in flight ride the next cohort, so the batch size scales with
// concurrency and the fsync cost amortizes toward zero per tuple.
//
// The watermark (Partition.synced) is also the ceiling for everything else
// that claims durability: flush-offset commits call SyncTo so a committed
// offset never exceeds what the log can actually replay after a host
// crash, and the chaos harness's hard-crash mode truncates the segment
// back to syncedBytes to simulate losing the page cache.

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"waterwheel/internal/telemetry"
)

// Durability selects when Append acknowledges a record relative to fsync.
type Durability int

const (
	// DurabilityAckOnWrite acks once the record is framed into the segment
	// file (OS page cache). Fastest, but a host crash can drop acked
	// records appended since the last Sync/Checkpoint.
	DurabilityAckOnWrite Durability = iota
	// DurabilityAckOnFsync acks only after a group-commit fsync covers the
	// record: an acked tuple survives a host crash.
	DurabilityAckOnFsync
	// DurabilityInterval runs a background fsync every Config.Interval,
	// bounding the loss window without per-append latency.
	DurabilityInterval
)

// ParseDurability maps the user-facing policy names to Durability values.
// The empty string means DurabilityAckOnWrite (today's behavior).
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "", "ack-on-write":
		return DurabilityAckOnWrite, nil
	case "ack-on-fsync":
		return DurabilityAckOnFsync, nil
	case "interval":
		return DurabilityInterval, nil
	}
	return 0, fmt.Errorf("wal: unknown durability policy %q (want ack-on-write, ack-on-fsync or interval)", s)
}

func (d Durability) String() string {
	switch d {
	case DurabilityAckOnFsync:
		return "ack-on-fsync"
	case DurabilityInterval:
		return "interval"
	default:
		return "ack-on-write"
	}
}

// Metrics holds optional telemetry handles for the durability pipeline.
// All handles are nil-safe, so the zero value disables instrumentation.
type Metrics struct {
	// FsyncBatch records how many records each fsync cohort made durable.
	// It abuses the duration histogram: batch sizes are observed as whole
	// "seconds" so the exposition's second-valued quantiles read directly
	// as record counts.
	FsyncBatch *telemetry.Histogram
	// CommitNanos records group-commit fsync latency.
	CommitNanos *telemetry.Histogram
	// Waiters gauges appenders currently parked waiting for a cohort.
	Waiters *telemetry.Gauge
	// Fsyncs counts segment fsyncs issued by the pipeline.
	Fsyncs *telemetry.Counter
}

// Config tunes a disk-backed partition's durability pipeline.
type Config struct {
	Durability Durability
	// Interval is the background fsync cadence for DurabilityInterval
	// (default 50ms).
	Interval time.Duration
	Metrics  Metrics
}

const defaultFsyncInterval = 50 * time.Millisecond

// startCommitter launches the committer goroutine for policies that need
// one. Called once from OpenPartition with the partition still private.
func (p *Partition) startCommitter() {
	if p.dur != DurabilityAckOnFsync && p.dur != DurabilityInterval {
		return
	}
	if p.dur == DurabilityInterval && p.interval <= 0 {
		p.interval = defaultFsyncInterval
	}
	p.kick = make(chan struct{}, 1)
	p.commStop = make(chan struct{})
	p.commDone = make(chan struct{})
	go p.committer()
}

func (p *Partition) committer() {
	defer close(p.commDone)
	var tick *time.Ticker
	var tickC <-chan time.Time
	if p.dur == DurabilityInterval {
		tick = time.NewTicker(p.interval)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case <-p.kick:
			p.accumulateCohort()
			p.syncCohort()
		case <-tickC:
			p.syncCohort()
		case <-p.commStop:
			// Final cohort: cover appends that raced shutdown. A partition
			// being crash-discarded sets fileErr first, turning this into
			// a no-op.
			p.syncCohort()
			return
		}
	}
}

// accumulateCohort gives concurrently-running appenders a brief chance to
// join the cohort before its fsync is issued. Without it, the first append
// after an idle period buys an fsync for itself alone while the appenders a
// scheduler tick behind it pay for a second one — halving the amortization
// exactly at the cohort boundary. Yielding while the unsynced count still
// grows costs a few scheduler passes (far below fsync latency), is bounded,
// and converges after one pass when no one else is appending.
func (p *Partition) accumulateCohort() {
	prev := int64(-1)
	for i := 0; i < 4; i++ {
		p.mu.Lock()
		n := p.base + int64(len(p.records)) - p.synced
		p.mu.Unlock()
		if n == prev {
			return
		}
		prev = n
		runtime.Gosched()
	}
}

// kickCommitter nudges the committer without blocking; a kick that finds
// the buffer full is redundant (a cohort is already pending).
func (p *Partition) kickCommitter() {
	if p.kick == nil {
		return
	}
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// stopCommitter shuts the committer down (idempotent) after letting it run
// one final cohort. Waiters parked at that point are woken by the final
// cohort's broadcast; any appender arriving later syncs inline (see
// waitSyncedLocked's commClosed branch).
func (p *Partition) stopCommitter() {
	p.stopOnce.Do(func() {
		if p.commStop == nil {
			return
		}
		p.mu.Lock()
		p.commClosed = true
		p.syncedCond.Broadcast()
		p.mu.Unlock()
		close(p.commStop)
		<-p.commDone
	})
}

// waitSyncedLocked blocks (mu held) until the fsync watermark reaches
// target or the line breaks. It returns nil whenever the record became
// durable, even if a later failure poisoned the partition.
func (p *Partition) waitSyncedLocked(target int64) error {
	for p.synced < target && p.fileErr == nil {
		if p.commClosed {
			// Committer gone (shutdown path): sync inline instead of
			// waiting for a wake-up that will never come.
			p.mu.Unlock()
			p.syncCohort()
			p.mu.Lock()
			continue
		}
		p.kickCommitter()
		p.met.Waiters.Add(1)
		p.syncedCond.Wait()
		p.met.Waiters.Add(-1)
	}
	if p.synced >= target {
		return nil
	}
	return p.fileErr
}

// syncCohort issues one fsync covering everything appended so far and
// advances the watermark. syncMu keeps fsyncs from racing Compact's file
// swap; p.mu is dropped for the fsync itself so appends keep flowing —
// that in-flight window is precisely where the next cohort accumulates.
func (p *Partition) syncCohort() error {
	p.syncMu.Lock()
	defer p.syncMu.Unlock()
	p.mu.Lock()
	if p.fileErr != nil {
		err := p.fileErr
		p.syncedCond.Broadcast()
		p.mu.Unlock()
		return err
	}
	if p.file == nil {
		p.mu.Unlock()
		return nil
	}
	head := p.base + int64(len(p.records))
	bytes := p.fileBytes
	if head <= p.synced {
		p.mu.Unlock()
		return nil
	}
	f := p.file
	start := time.Now()
	p.mu.Unlock()

	err := f.Sync()

	p.mu.Lock()
	if err != nil {
		if p.fileErr == nil {
			p.fileErr = fmt.Errorf("wal: fsync: %w", err)
		}
		err = p.fileErr
	} else {
		p.met.Fsyncs.Inc()
		p.met.CommitNanos.Observe(time.Since(start))
		if head > p.synced {
			p.met.FsyncBatch.Observe(time.Duration(head-p.synced) * time.Second)
			p.synced = head
			p.syncedBytes = bytes
		}
	}
	p.syncedCond.Broadcast()
	p.mu.Unlock()
	return err
}

// SyncTo ensures every record below upTo is on stable storage before
// returning. This is the barrier flush-offset commits take: a committed
// offset must never run ahead of the watermark, or a host crash would
// leave the durable log shorter than the committed offset — replay would
// hand fresh appends already-committed offsets and the chunks registered
// above the watermark would alias replayed tuples as duplicates. No-op for
// in-memory partitions and when the watermark already covers upTo.
func (p *Partition) SyncTo(upTo int64) error {
	p.mu.Lock()
	if p.fileErr != nil {
		err := p.fileErr
		p.mu.Unlock()
		return err
	}
	if p.file == nil || p.synced >= upTo {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	return p.syncCohort()
}

// SyncedNext returns the fsync watermark: the offset the next record to
// become durable will receive. For in-memory partitions it tracks the
// head (there is no page cache to lose).
func (p *Partition) SyncedNext() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file == nil && p.fileErr == nil {
		return p.base + int64(len(p.records))
	}
	return p.synced
}

// UnsyncedBytes reports segment bytes appended but not yet covered by an
// fsync — the page-cache exposure a host crash would lose.
func (p *Partition) UnsyncedBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file == nil {
		return 0
	}
	return p.fileBytes - p.syncedBytes
}

// CrashDiscardUnsynced simulates the page-cache loss of a host crash: it
// poisons the partition, stops the committer, closes the segment file and
// truncates it on disk to the last fsync watermark, discarding every byte
// whose durability was never confirmed. The in-memory state keeps serving
// (the dying incarnation is about to be thrown away); reopening the path
// yields exactly the durable prefix.
func (p *Partition) CrashDiscardUnsynced() error {
	p.mu.Lock()
	if p.file == nil && p.fileErr == nil {
		p.mu.Unlock()
		return nil
	}
	if p.fileErr == nil {
		// Poison first so the committer's final cohort (and any racing
		// manual Sync) cannot fsync bytes the "crash" is about to drop.
		p.fileErr = fmt.Errorf("wal: simulated host crash")
	}
	p.syncedCond.Broadcast()
	p.mu.Unlock()
	p.stopCommitter()
	p.syncMu.Lock()
	defer p.syncMu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file == nil {
		return nil
	}
	p.file.Close()
	p.file = nil
	return os.Truncate(p.path, walMagicLen+p.syncedBytes)
}
