package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"waterwheel/internal/telemetry"
)

func TestDiskPartitionPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p0.wal")
	p, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if off, err := p.Append([]byte(fmt.Sprintf("r%d", i))); err != nil || off != int64(i) {
			t.Fatalf("offset %d, err %v", off, err)
		}
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseFile(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Next() != 50 || p2.Base() != 0 {
		t.Fatalf("reopened next=%d base=%d", p2.Next(), p2.Base())
	}
	recs, err := p2.Read(10, 5)
	if err != nil || len(recs) != 5 || string(recs[0].Data) != "r10" {
		t.Fatalf("reopened read: %v, %v", recs, err)
	}
	// Appends continue from the persisted head.
	if off, err := p2.Append([]byte("new")); err != nil || off != 50 {
		t.Fatalf("continued offset %d, err %v", off, err)
	}
}

func TestDiskTruncateSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	p, _ := OpenPartitionFile(path)
	for i := 0; i < 30; i++ {
		p.Append([]byte{byte(i)})
	}
	p.Truncate(12)
	p.CloseFile()

	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Base() != 12 || p2.Len() != 18 {
		t.Fatalf("base=%d len=%d", p2.Base(), p2.Len())
	}
	if _, err := p2.Read(5, 5); err == nil {
		t.Error("read below persisted horizon succeeded")
	}
	recs, _ := p2.Read(12, 3)
	if len(recs) != 3 || recs[0].Data[0] != 12 {
		t.Fatalf("recs = %v", recs)
	}
}

func TestDiskCompactReclaims(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	p, _ := OpenPartitionFile(path)
	for i := 0; i < 100; i++ {
		p.Append(make([]byte, 100))
	}
	p.Truncate(90)
	before, _ := os.Stat(path)
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink: %d -> %d", before.Size(), after.Size())
	}
	// Data still correct post-compact, and appends still work.
	recs, err := p.Read(90, 100)
	if err != nil || len(recs) != 10 {
		t.Fatalf("post-compact read: %d recs, %v", len(recs), err)
	}
	if off, err := p.Append([]byte("x")); err != nil || off != 100 {
		t.Fatalf("post-compact append offset %d, err %v", off, err)
	}
	p.CloseFile()
	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Base() != 90 || p2.Next() != 101 {
		t.Fatalf("reopened after compact: base=%d next=%d", p2.Base(), p2.Next())
	}
}

func TestDiskTornRecordDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	p, _ := OpenPartitionFile(path)
	p.Append([]byte("good-one"))
	p.Append([]byte("good-two"))
	p.Sync()
	p.CloseFile()
	// Simulate a crash mid-append: truncate the file inside the last record.
	st, _ := os.Stat(path)
	os.Truncate(path, st.Size()-3)

	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Next() != 1 {
		t.Fatalf("torn segment loaded %d records, want 1", p2.Next())
	}
	recs, _ := p2.Read(0, 10)
	if len(recs) != 1 || string(recs[0].Data) != "good-one" {
		t.Fatalf("recs = %v", recs)
	}
}

func TestDiskBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	os.WriteFile(path, []byte("NOTAWALFILE"), 0o644)
	if _, err := OpenPartitionFile(path); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestOpenLogDir(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLogDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	l.Partition(1).Append([]byte("p1"))
	l.Partition(2).Append([]byte("p2"))
	for i := 0; i < 3; i++ {
		l.Partition(i).Sync()
		l.Partition(i).CloseFile()
	}
	l2, err := OpenLogDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Partition(0).Len() != 0 || l2.Partition(1).Len() != 1 || l2.Partition(2).Len() != 1 {
		t.Fatalf("partition lengths %d/%d/%d",
			l2.Partition(0).Len(), l2.Partition(1).Len(), l2.Partition(2).Len())
	}
}

func TestAppendAfterCloseFileSticksError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	p, _ := OpenPartitionFile(path)
	p.Append([]byte("a"))
	p.CloseFile()
	// Stop-the-line: a record the segment cannot hold must not be acked or
	// retained, or a restart would silently lose it.
	if _, err := p.Append([]byte("b")); err == nil {
		t.Fatal("append after CloseFile succeeded")
	}
	if p.Err() == nil {
		t.Fatal("expected sticky error after CloseFile")
	}
	if p.Len() != 1 {
		t.Fatalf("failed append retained in memory: len=%d", p.Len())
	}
}

func TestAppendDiskFailureStopsTheLine(t *testing.T) {
	// Regression: a disk-append failure used to be swallowed — the record
	// stayed queryable in memory, its offset was acked, and flushes later
	// committed past it, so a restart silently lost an acked tuple. Inject
	// a failing file by swapping the handle for a read-only one.
	path := filepath.Join(t.TempDir(), "p.wal")
	p, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	p.file.Close()
	ro, err := os.Open(path) // O_RDONLY: writes fail with EBADF
	if err != nil {
		p.mu.Unlock()
		t.Fatal(err)
	}
	p.file = ro
	p.mu.Unlock()

	if _, err := p.Append([]byte("lost?")); err == nil {
		t.Fatal("append with failing file reported success")
	}
	if p.Err() == nil {
		t.Fatal("disk failure not sticky")
	}
	if p.Len() != 1 {
		t.Fatalf("failed record retained in memory: len=%d", p.Len())
	}
	if p.Next() != 1 {
		t.Fatalf("failed record consumed an offset: next=%d", p.Next())
	}
	// The line stays stopped.
	if _, err := p.Append([]byte("again")); err == nil {
		t.Fatal("append after sticky error succeeded")
	}
}

func TestDiskTornTailTruncatedOnOpen(t *testing.T) {
	// Regression: a torn append followed by further appends used to
	// corrupt the partition permanently — the torn record's bytes stayed
	// in the file, the next incarnation appended fresh frames after them,
	// and the restart after THAT misparsed the interleaving as an offset
	// gap and refused to open. Truncating the tail on open fixes it.
	path := filepath.Join(t.TempDir(), "p.wal")
	p, _ := OpenPartitionFile(path)
	p.Append([]byte("keep-one"))
	p.Append([]byte("keep-two"))
	p.Append([]byte("torn-payload"))
	p.Sync()
	p.CloseFile()
	st, _ := os.Stat(path)
	os.Truncate(path, st.Size()-5) // crash mid-append: payload short

	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Next() != 2 {
		t.Fatalf("after torn open: next=%d, want 2", p2.Next())
	}
	if st2, _ := os.Stat(path); st2.Size() >= st.Size()-5 {
		t.Fatalf("torn tail not cut: %d bytes on disk", st2.Size())
	}
	// Appends after the torn open land where the torn record was.
	if off, err := p2.Append([]byte("fresh-a")); err != nil || off != 2 {
		t.Fatalf("append after torn open: off=%d err=%v", off, err)
	}
	p2.Append([]byte("fresh-b"))
	p2.Sync()
	p2.CloseFile()

	p3, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatalf("reopen after post-torn appends: %v", err)
	}
	if p3.Next() != 4 {
		t.Fatalf("final next=%d, want 4", p3.Next())
	}
	recs, _ := p3.Read(0, 10)
	want := []string{"keep-one", "keep-two", "fresh-a", "fresh-b"}
	for i, w := range want {
		if string(recs[i].Data) != w {
			t.Fatalf("record %d = %q, want %q", i, recs[i].Data, w)
		}
	}
}

func TestDiskCrashDiscardUnsyncedKeepsWatermarkOnly(t *testing.T) {
	// Simulated page-cache drop: no record above the fsync barrier may
	// survive, and the reopened partition must report exactly the
	// committed watermark.
	path := filepath.Join(t.TempDir(), "p.wal")
	p, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.Append([]byte(fmt.Sprintf("durable-%d", i)))
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		p.Append([]byte(fmt.Sprintf("cached-%d", i)))
	}
	if got := p.SyncedNext(); got != 10 {
		t.Fatalf("watermark %d, want 10", got)
	}
	if p.UnsyncedBytes() == 0 {
		t.Fatal("unsynced bytes not tracked")
	}
	if err := p.CrashDiscardUnsynced(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Next() != 10 {
		t.Fatalf("reopened next=%d, want the watermark 10", p2.Next())
	}
	if p2.SyncedNext() != 10 || p2.UnsyncedBytes() != 0 {
		t.Fatalf("reopened watermark=%d unsynced=%d", p2.SyncedNext(), p2.UnsyncedBytes())
	}
	recs, _ := p2.Read(0, 100)
	if len(recs) != 10 || string(recs[9].Data) != "durable-9" {
		t.Fatalf("reopened records: %d", len(recs))
	}
}

func TestDiskGroupCommitAmortizesAndLosesNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	fsyncs := &telemetry.Counter{}
	p, err := OpenPartition(path, Config{
		Durability: DurabilityAckOnFsync,
		Metrics:    Metrics{Fsyncs: fsyncs},
	})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 16, 40
	var wg sync.WaitGroup
	var appendErr atomic.Value
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := p.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					appendErr.Store(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err, _ := appendErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	total := int64(goroutines * perG)
	if got := p.SyncedNext(); got != total {
		t.Fatalf("watermark %d after %d acked appends", got, total)
	}
	if n := fsyncs.Value(); n >= total {
		t.Fatalf("no group-commit amortization: %d fsyncs for %d appends", n, total)
	}
	// Every acked append survives a simulated host crash.
	if err := p.CrashDiscardUnsynced(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Next() != total {
		t.Fatalf("crash lost acked records: reopened next=%d, want %d", p2.Next(), total)
	}
}

func TestDiskCompactDoesNotBlockAppends(t *testing.T) {
	// Regression: Compact used to hold the partition lock across the whole
	// rewrite + fsync, stalling every append for the duration. The hook
	// parks Compact mid-rewrite (no locks held); an append must complete
	// while it is parked.
	path := filepath.Join(t.TempDir(), "p.wal")
	p, _ := OpenPartitionFile(path)
	for i := 0; i < 200; i++ {
		p.Append(make([]byte, 64))
	}
	p.Truncate(150)

	parked := make(chan struct{})
	release := make(chan struct{})
	compactHook = func() {
		close(parked)
		<-release
	}
	defer func() { compactHook = nil }()

	done := make(chan error, 1)
	go func() { done <- p.Compact() }()
	<-parked
	// Compaction is in flight and parked; the append must not wait for it.
	if off, err := p.Append([]byte("during-compact")); err != nil || off != 200 {
		close(release)
		t.Fatalf("append during compaction: off=%d err=%v", off, err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The record appended during the rewrite made it into the new file.
	p.CloseFile()
	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Base() != 150 || p2.Next() != 201 {
		t.Fatalf("after compact: base=%d next=%d", p2.Base(), p2.Next())
	}
	recs, _ := p2.Read(200, 1)
	if len(recs) != 1 || string(recs[0].Data) != "during-compact" {
		t.Fatalf("delta record lost: %v", recs)
	}
}
