package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestDiskPartitionPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p0.wal")
	p, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if off := p.Append([]byte(fmt.Sprintf("r%d", i))); off != int64(i) {
			t.Fatalf("offset %d", off)
		}
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseFile(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Next() != 50 || p2.Base() != 0 {
		t.Fatalf("reopened next=%d base=%d", p2.Next(), p2.Base())
	}
	recs, err := p2.Read(10, 5)
	if err != nil || len(recs) != 5 || string(recs[0].Data) != "r10" {
		t.Fatalf("reopened read: %v, %v", recs, err)
	}
	// Appends continue from the persisted head.
	if off := p2.Append([]byte("new")); off != 50 {
		t.Fatalf("continued offset %d", off)
	}
}

func TestDiskTruncateSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	p, _ := OpenPartitionFile(path)
	for i := 0; i < 30; i++ {
		p.Append([]byte{byte(i)})
	}
	p.Truncate(12)
	p.CloseFile()

	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Base() != 12 || p2.Len() != 18 {
		t.Fatalf("base=%d len=%d", p2.Base(), p2.Len())
	}
	if _, err := p2.Read(5, 5); err == nil {
		t.Error("read below persisted horizon succeeded")
	}
	recs, _ := p2.Read(12, 3)
	if len(recs) != 3 || recs[0].Data[0] != 12 {
		t.Fatalf("recs = %v", recs)
	}
}

func TestDiskCompactReclaims(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	p, _ := OpenPartitionFile(path)
	for i := 0; i < 100; i++ {
		p.Append(make([]byte, 100))
	}
	p.Truncate(90)
	before, _ := os.Stat(path)
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink: %d -> %d", before.Size(), after.Size())
	}
	// Data still correct post-compact, and appends still work.
	recs, err := p.Read(90, 100)
	if err != nil || len(recs) != 10 {
		t.Fatalf("post-compact read: %d recs, %v", len(recs), err)
	}
	if off := p.Append([]byte("x")); off != 100 {
		t.Fatalf("post-compact append offset %d", off)
	}
	p.CloseFile()
	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Base() != 90 || p2.Next() != 101 {
		t.Fatalf("reopened after compact: base=%d next=%d", p2.Base(), p2.Next())
	}
}

func TestDiskTornRecordDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	p, _ := OpenPartitionFile(path)
	p.Append([]byte("good-one"))
	p.Append([]byte("good-two"))
	p.Sync()
	p.CloseFile()
	// Simulate a crash mid-append: truncate the file inside the last record.
	st, _ := os.Stat(path)
	os.Truncate(path, st.Size()-3)

	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Next() != 1 {
		t.Fatalf("torn segment loaded %d records, want 1", p2.Next())
	}
	recs, _ := p2.Read(0, 10)
	if len(recs) != 1 || string(recs[0].Data) != "good-one" {
		t.Fatalf("recs = %v", recs)
	}
}

func TestDiskBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	os.WriteFile(path, []byte("NOTAWALFILE"), 0o644)
	if _, err := OpenPartitionFile(path); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestOpenLogDir(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLogDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	l.Partition(1).Append([]byte("p1"))
	l.Partition(2).Append([]byte("p2"))
	for i := 0; i < 3; i++ {
		l.Partition(i).Sync()
		l.Partition(i).CloseFile()
	}
	l2, err := OpenLogDir(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Partition(0).Len() != 0 || l2.Partition(1).Len() != 1 || l2.Partition(2).Len() != 1 {
		t.Fatalf("partition lengths %d/%d/%d",
			l2.Partition(0).Len(), l2.Partition(1).Len(), l2.Partition(2).Len())
	}
}

func TestAppendAfterCloseFileSticksError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	p, _ := OpenPartitionFile(path)
	p.Append([]byte("a"))
	p.CloseFile()
	p.Append([]byte("b")) // in-memory append still works; disk error sticks
	if p.Err() == nil {
		t.Fatal("expected sticky error after CloseFile")
	}
}
