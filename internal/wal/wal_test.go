package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestAppendAssignsIncreasingOffsets(t *testing.T) {
	p := NewPartition()
	for i := 0; i < 10; i++ {
		if off, err := p.Append([]byte{byte(i)}); err != nil || off != int64(i) {
			t.Fatalf("offset %d, want %d (err %v)", off, i, err)
		}
	}
	if p.Next() != 10 {
		t.Errorf("Next = %d", p.Next())
	}
}

func TestReadFromOffset(t *testing.T) {
	p := NewPartition()
	for i := 0; i < 20; i++ {
		p.Append([]byte(fmt.Sprintf("r%d", i)))
	}
	recs, err := p.Read(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 || recs[0].Offset != 5 || string(recs[0].Data) != "r5" {
		t.Fatalf("recs = %v", recs)
	}
	// Reading at head yields nothing, no error.
	recs, err = p.Read(20, 10)
	if err != nil || recs != nil {
		t.Errorf("head read = %v, %v", recs, err)
	}
	// Reading past head yields nothing too.
	recs, err = p.Read(100, 10)
	if err != nil || recs != nil {
		t.Errorf("past-head read = %v, %v", recs, err)
	}
}

func TestAppendCopiesData(t *testing.T) {
	p := NewPartition()
	buf := []byte("mutate-me")
	p.Append(buf)
	buf[0] = 'X'
	recs, _ := p.Read(0, 1)
	if string(recs[0].Data) != "mutate-me" {
		t.Error("append did not copy the record")
	}
}

func TestTruncateAndCompactedError(t *testing.T) {
	p := NewPartition()
	for i := 0; i < 10; i++ {
		p.Append([]byte{byte(i)})
	}
	p.Truncate(4)
	if p.Base() != 4 || p.Len() != 6 {
		t.Fatalf("base=%d len=%d", p.Base(), p.Len())
	}
	if _, err := p.Read(2, 5); !errors.Is(err, ErrCompacted) {
		t.Errorf("read below horizon: err = %v", err)
	}
	recs, err := p.Read(4, 100)
	if err != nil || len(recs) != 6 || recs[0].Offset != 4 {
		t.Fatalf("post-truncate read = %v, %v", recs, err)
	}
	// Offsets keep increasing after truncation.
	if off, _ := p.Append([]byte("new")); off != 10 {
		t.Errorf("offset after truncate = %d, want 10", off)
	}
	// Truncate beyond head clamps.
	p.Truncate(1000)
	if p.Len() != 0 || p.Base() != 11 {
		t.Errorf("over-truncate: len=%d base=%d", p.Len(), p.Base())
	}
	// Truncate below base is a no-op.
	p.Truncate(3)
	if p.Base() != 11 {
		t.Errorf("backwards truncate changed base: %d", p.Base())
	}
}

func TestBytesAccounting(t *testing.T) {
	p := NewPartition()
	p.Append(make([]byte, 100))
	p.Append(make([]byte, 50))
	if p.Bytes() != 150 {
		t.Fatalf("bytes = %d", p.Bytes())
	}
	p.Truncate(1)
	if p.Bytes() != 50 {
		t.Errorf("bytes after truncate = %d", p.Bytes())
	}
}

// waitBlocked waits until n goroutines are parked inside ReadBlocking —
// the deterministic replacement for "sleep and hope the reader blocked".
func waitBlocked(t *testing.T, p *Partition, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Waiting() < n {
		if time.Now().After(deadline) {
			t.Fatalf("reader never blocked (waiting=%d, want %d)", p.Waiting(), n)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func TestReadBlockingWakesOnAppend(t *testing.T) {
	p := NewPartition()
	done := make(chan []Record, 1)
	go func() {
		recs, err := p.ReadBlocking(0, 10)
		if err != nil {
			t.Errorf("blocking read: %v", err)
		}
		done <- recs
	}()
	waitBlocked(t, p, 1)
	p.Append([]byte("wake"))
	select {
	case recs := <-done:
		if len(recs) != 1 || string(recs[0].Data) != "wake" {
			t.Fatalf("recs = %v", recs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocking read never woke")
	}
}

func TestReadBlockingClose(t *testing.T) {
	p := NewPartition()
	errCh := make(chan error, 1)
	go func() {
		_, err := p.ReadBlocking(0, 10)
		errCh <- err
	}()
	waitBlocked(t, p, 1)
	p.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not wake reader")
	}
	// Retained data remains readable after close.
	p2 := NewPartition()
	p2.Append([]byte("x"))
	p2.Close()
	recs, err := p2.ReadBlocking(0, 10)
	if err != nil || len(recs) != 1 {
		t.Errorf("read after close = %v, %v", recs, err)
	}
}

func TestReplayEquivalence(t *testing.T) {
	// Consuming in two sessions (crash between them) yields the same
	// records as one pass — the recovery property §V depends on.
	p := NewPartition()
	for i := 0; i < 100; i++ {
		p.Append([]byte{byte(i)})
	}
	var once []byte
	off := int64(0)
	for {
		recs, _ := p.Read(off, 7)
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			once = append(once, r.Data...)
			off = r.Offset + 1
		}
	}
	// Second consumer "crashes" at offset 40 and replays from there.
	var twice []byte
	for off := int64(0); off < 40; {
		recs, _ := p.Read(off, 11)
		for _, r := range recs {
			if r.Offset >= 40 {
				break
			}
			twice = append(twice, r.Data...)
			off = r.Offset + 1
		}
		if len(recs) == 0 {
			break
		}
	}
	for off := int64(40); ; {
		recs, _ := p.Read(off, 13)
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			twice = append(twice, r.Data...)
			off = r.Offset + 1
		}
	}
	if string(once) != string(twice) {
		t.Error("replay after crash diverged from single pass")
	}
}

func TestConcurrentProducersAndConsumer(t *testing.T) {
	p := NewPartition()
	const producers, perP = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				p.Append([]byte{byte(g)})
			}
		}(g)
	}
	got := 0
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		off := int64(0)
		for got < producers*perP {
			recs, err := p.ReadBlocking(off, 64)
			if err != nil {
				return
			}
			got += len(recs)
			off = recs[len(recs)-1].Offset + 1
		}
	}()
	wg.Wait()
	select {
	case <-consumerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer did not finish")
	}
	if got != producers*perP {
		t.Errorf("consumed %d, want %d", got, producers*perP)
	}
}

func TestLog(t *testing.T) {
	l := NewLog(4)
	if l.Partitions() != 4 {
		t.Fatalf("partitions = %d", l.Partitions())
	}
	l.Partition(2).Append([]byte("x"))
	if l.Partition(2).Len() != 1 || l.Partition(0).Len() != 0 {
		t.Error("partition isolation broken")
	}
	l.Close()
	if _, err := l.Partition(0).ReadBlocking(0, 1); !errors.Is(err, ErrClosed) {
		t.Error("close did not propagate")
	}
	if nl := NewLog(0); nl.Partitions() != 1 {
		t.Error("minimum one partition")
	}
}
