package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"waterwheel/internal/telemetry"
)

func TestAppendBatchOffsetsAndRead(t *testing.T) {
	p := NewPartition()
	p.Append([]byte("pre"))
	datas := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	off, err := p.AppendBatch(datas)
	if err != nil || off != 1 {
		t.Fatalf("batch offset %d, err %v", off, err)
	}
	if p.Next() != 4 {
		t.Fatalf("Next = %d, want 4", p.Next())
	}
	recs, err := p.Read(0, 10)
	if err != nil || len(recs) != 4 {
		t.Fatalf("read = %d recs, %v", len(recs), err)
	}
	want := []string{"pre", "a", "bb", "ccc"}
	for i, w := range want {
		if recs[i].Offset != int64(i) || string(recs[i].Data) != w {
			t.Fatalf("record %d = (%d, %q), want (%d, %q)", i, recs[i].Offset, recs[i].Data, i, w)
		}
	}
	// Bytes accounting matches the per-record equivalent.
	q := NewPartition()
	q.Append([]byte("pre"))
	for _, d := range datas {
		q.Append(d)
	}
	if p.Bytes() != q.Bytes() {
		t.Errorf("batch bytes %d != serial bytes %d", p.Bytes(), q.Bytes())
	}
	// Empty and single-record batches degenerate cleanly.
	if off, err := p.AppendBatch(nil); err != nil || off != p.Next() {
		t.Errorf("empty batch: off=%d err=%v", off, err)
	}
	if off, err := p.AppendBatch([][]byte{[]byte("solo")}); err != nil || off != 4 {
		t.Errorf("single batch: off=%d err=%v", off, err)
	}
}

func TestAppendBatchCopiesData(t *testing.T) {
	p := NewPartition()
	buf := []byte("mutate-me")
	p.AppendBatch([][]byte{buf, []byte("x")})
	buf[0] = 'X'
	recs, _ := p.Read(0, 1)
	if string(recs[0].Data) != "mutate-me" {
		t.Error("batch append did not copy the record")
	}
}

func TestAppendBatchPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	p, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	datas := make([][]byte, 20)
	for i := range datas {
		datas[i] = []byte(fmt.Sprintf("r%d", i))
	}
	if off, err := p.AppendBatch(datas); err != nil || off != 0 {
		t.Fatalf("batch offset %d, err %v", off, err)
	}
	p.Sync()
	p.CloseFile()

	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Next() != 20 {
		t.Fatalf("reopened next=%d, want 20", p2.Next())
	}
	recs, _ := p2.Read(0, 100)
	for i, r := range recs {
		if string(r.Data) != fmt.Sprintf("r%d", i) {
			t.Fatalf("record %d = %q", i, r.Data)
		}
	}
}

func TestAppendBatchAllOrNothingOnDiskFailure(t *testing.T) {
	// A mid-batch write failure must accept NONE of the batch: the ack
	// prefix seen by the producer must never cover a record the segment
	// did not take. Inject the failure by swapping the handle for a
	// read-only one.
	path := filepath.Join(t.TempDir(), "p.wal")
	p, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	p.file.Close()
	ro, err := os.Open(path) // O_RDONLY: writes fail with EBADF
	if err != nil {
		p.mu.Unlock()
		t.Fatal(err)
	}
	p.file = ro
	p.mu.Unlock()

	if _, err := p.AppendBatch([][]byte{[]byte("a"), []byte("b"), []byte("c")}); err == nil {
		t.Fatal("batch append with failing file reported success")
	}
	if p.Err() == nil {
		t.Fatal("disk failure not sticky")
	}
	if p.Len() != 1 {
		t.Fatalf("failed batch retained in memory: len=%d", p.Len())
	}
	if p.Next() != 1 {
		t.Fatalf("failed batch consumed offsets: next=%d", p.Next())
	}
}

func TestAppendBatchSingleFsyncCohort(t *testing.T) {
	// Under ack-on-fsync, one batch must cost one fsync cohort, not one
	// fsync per record — the durability amortization the batch path is for.
	path := filepath.Join(t.TempDir(), "p.wal")
	fsyncs := &telemetry.Counter{}
	p, err := OpenPartition(path, Config{
		Durability: DurabilityAckOnFsync,
		Metrics:    Metrics{Fsyncs: fsyncs},
	})
	if err != nil {
		t.Fatal(err)
	}
	const batches, perBatch = 8, 64
	for b := 0; b < batches; b++ {
		datas := make([][]byte, perBatch)
		for i := range datas {
			datas[i] = []byte(fmt.Sprintf("b%d-%d", b, i))
		}
		if _, err := p.AppendBatch(datas); err != nil {
			t.Fatal(err)
		}
	}
	total := int64(batches * perBatch)
	if got := p.SyncedNext(); got != total {
		t.Fatalf("watermark %d after %d acked records", got, total)
	}
	// A serial driver sees at most one cohort per batch (plus slack for a
	// committer pass that catches a batch across two fsyncs).
	if n := fsyncs.Value(); n > batches+1 {
		t.Fatalf("%d fsyncs for %d batches: no cohort amortization", n, batches)
	}
	// Every acked record survives a simulated host crash.
	if err := p.CrashDiscardUnsynced(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenPartitionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Next() != total {
		t.Fatalf("crash lost acked records: reopened next=%d, want %d", p2.Next(), total)
	}
}

func TestFailNextAppendsInjectsThenRecovers(t *testing.T) {
	// The chaos hook: injected faults reject the append without poisoning
	// the partition, unlike real disk errors.
	p := NewPartition()
	p.Append([]byte("before"))
	p.FailNextAppends(1)
	if _, err := p.Append([]byte("dropped")); !errors.Is(err, ErrInjectedAppend) {
		t.Fatalf("err = %v, want ErrInjectedAppend", err)
	}
	if p.Err() != nil {
		t.Fatalf("injected fault became sticky: %v", p.Err())
	}
	if off, err := p.Append([]byte("after")); err != nil || off != 1 {
		t.Fatalf("append after injected fault: off=%d err=%v", off, err)
	}
	// Batch appends honor the same hook, rejecting the whole batch.
	p.FailNextAppends(1)
	if _, err := p.AppendBatch([][]byte{[]byte("x"), []byte("y")}); !errors.Is(err, ErrInjectedAppend) {
		t.Fatalf("batch err = %v, want ErrInjectedAppend", err)
	}
	if p.Next() != 2 {
		t.Fatalf("rejected batch consumed offsets: next=%d", p.Next())
	}
	if _, err := p.AppendBatch([][]byte{[]byte("x"), []byte("y")}); err != nil {
		t.Fatalf("batch after injected fault: %v", err)
	}
}
