// Package wal implements the replayable, partitioned append log Waterwheel
// uses as its reliable input queue (paper §V). It stands in for Kafka:
// records in each partition receive increasing offsets, and records from
// any retained offset can be replayed on request — which is exactly the
// property indexing-server recovery depends on: flush stores the current
// read offset in the metadata server, and a re-launched server replays from
// there to rebuild its in-memory B+ tree.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrCompacted is returned when a read targets offsets below the retention
// horizon.
var ErrCompacted = errors.New("wal: offset below retention horizon")

// ErrClosed is returned by blocking reads once the partition is closed.
var ErrClosed = errors.New("wal: partition closed")

// ErrInjectedAppend is the transient failure armed by FailNextAppends.
var ErrInjectedAppend = errors.New("wal: injected append fault")

// ErrSealed is returned by appends to a sealed partition. Decommission
// seals the retiring slot's partition after rerouting new traffic: an
// in-flight append that raced past the reroute check fails here instead
// of landing in a log nobody will ever replay, and the sink retries it
// against the current schema. Reads and replay remain available.
var ErrSealed = errors.New("wal: partition sealed")

// Record is one log entry with its assigned offset.
type Record struct {
	Offset int64
	Data   []byte
}

// Partition is an append-only, offset-addressed record log. It corresponds
// to one partition of a topic: each indexing server consumes exactly one
// partition.
type Partition struct {
	mu   sync.Mutex
	cond *sync.Cond
	// base is the offset of records[0]; offsets below base were truncated.
	base    int64
	records [][]byte
	bytes   int64
	closed  bool
	sealed  bool
	// waiting counts goroutines parked in ReadBlocking — a deterministic
	// hook for tests that must act only once a reader is actually blocked,
	// instead of sleeping and hoping.
	waiting int

	// Disk backing (nil for in-memory partitions); see disk.go.
	path    string
	file    *os.File
	fileErr error
	// failAppends arms FailNextAppends's transient (non-sticky) faults.
	failAppends int

	// Durability pipeline (disk-backed partitions only); see commit.go.
	// syncMu serializes fsyncs against file swaps (Compact) and is always
	// taken before mu. synced/syncedBytes form the fsync watermark: every
	// record below offset `synced` — the first fileBytes bytes of the
	// segment body being syncedBytes — is on stable storage.
	dur         Durability
	interval    time.Duration
	met         Metrics
	syncMu      sync.Mutex
	syncedCond  *sync.Cond
	synced      int64
	fileBytes   int64
	syncedBytes int64
	kick        chan struct{}
	commStop    chan struct{}
	commDone    chan struct{}
	commClosed  bool
	stopOnce    sync.Once
}

// NewPartition creates an empty partition.
func NewPartition() *Partition {
	p := &Partition{}
	p.cond = sync.NewCond(&p.mu)
	p.syncedCond = sync.NewCond(&p.mu)
	return p
}

// Append stores one record, returning its offset. The data is copied. For
// disk-backed partitions the record is also framed into the segment file;
// a write failure fails the append — the record is NOT retained in memory,
// so a tuple the log cannot hold is never acked, never consumed, and never
// covered by a flush-offset commit (stop-the-line, matching the flush
// pipeline's semantics). The error is sticky: once the segment is broken
// every later append fails until the partition is reopened.
//
// Under DurabilityAckOnFsync, Append additionally blocks until the fsync
// watermark covers the new record: the committer goroutine batches all
// appends that arrive while an fsync is in flight into the next cohort,
// so concurrent appenders share (amortize) fsyncs instead of issuing one
// each.
func (p *Partition) Append(data []byte) (int64, error) {
	cp := append([]byte(nil), data...)
	p.mu.Lock()
	if p.sealed {
		p.mu.Unlock()
		return 0, ErrSealed
	}
	if p.fileErr != nil {
		err := p.fileErr
		p.mu.Unlock()
		return 0, err
	}
	if p.failAppends > 0 {
		p.failAppends--
		p.mu.Unlock()
		return 0, ErrInjectedAppend
	}
	off := p.base + int64(len(p.records))
	if p.file != nil {
		if err := p.appendToFileLocked(off, cp); err != nil {
			p.fileErr = fmt.Errorf("wal: segment append: %w", err)
			err = p.fileErr
			// A broken line also fails parked group-commit waiters.
			p.syncedCond.Broadcast()
			p.mu.Unlock()
			return 0, err
		}
		p.fileBytes += recordHeaderLen + int64(len(cp))
	}
	p.records = append(p.records, cp)
	p.bytes += int64(len(cp))
	p.cond.Broadcast()
	if p.file == nil || p.dur != DurabilityAckOnFsync {
		p.mu.Unlock()
		return off, nil
	}
	err := p.waitSyncedLocked(off + 1)
	p.mu.Unlock()
	return off, err
}

// AppendBatch stores a batch of records under ONE lock acquisition,
// returning the offset of the first. The batch is framed into a single
// buffer outside the lock (offsets patched in once they are known) and
// written to the segment with one file write; the retained in-memory
// records alias the payload sections of that buffer, so the whole batch
// costs one allocation. Failure is all-or-nothing: on a disk error no
// record of the batch is retained or acked — callers see the same
// stop-the-line semantics as Append, just at batch granularity.
//
// Under DurabilityAckOnFsync the batch parks once for a watermark
// covering its LAST record, so a single fsync cohort acks the whole
// batch — the per-batch analogue of group commit's per-appender
// amortization.
func (p *Partition) AppendBatch(datas [][]byte) (int64, error) {
	if len(datas) == 0 {
		return p.Next(), nil
	}
	if len(datas) == 1 {
		return p.Append(datas[0])
	}
	total := 0
	for _, d := range datas {
		total += recordHeaderLen + len(d)
	}
	buf := make([]byte, total)
	hdrPos := make([]int, len(datas))
	cps := make([][]byte, len(datas))
	pos := 0
	for i, d := range datas {
		hdrPos[i] = pos
		binary.BigEndian.PutUint32(buf[pos+8:pos+recordHeaderLen], uint32(len(d)))
		end := pos + recordHeaderLen + len(d)
		copy(buf[pos+recordHeaderLen:end], d)
		cps[i] = buf[pos+recordHeaderLen : end : end]
		pos = end
	}
	p.mu.Lock()
	if p.sealed {
		p.mu.Unlock()
		return 0, ErrSealed
	}
	if p.fileErr != nil {
		err := p.fileErr
		p.mu.Unlock()
		return 0, err
	}
	if p.failAppends > 0 {
		p.failAppends--
		p.mu.Unlock()
		return 0, ErrInjectedAppend
	}
	off := p.base + int64(len(p.records))
	for i := range hdrPos {
		binary.BigEndian.PutUint64(buf[hdrPos[i]:hdrPos[i]+8], uint64(off+int64(i)))
	}
	if p.file != nil {
		if _, err := p.file.Write(buf); err != nil {
			p.fileErr = fmt.Errorf("wal: segment append: %w", err)
			err = p.fileErr
			p.syncedCond.Broadcast()
			p.mu.Unlock()
			return 0, err
		}
		p.fileBytes += int64(total)
	}
	p.records = append(p.records, cps...)
	p.bytes += int64(total) - int64(len(datas))*recordHeaderLen
	p.cond.Broadcast()
	if p.file == nil || p.dur != DurabilityAckOnFsync {
		p.mu.Unlock()
		return off, nil
	}
	err := p.waitSyncedLocked(off + int64(len(datas)))
	p.mu.Unlock()
	return off, err
}

// FailNextAppends arms a transient fault: the next n Append/AppendBatch
// calls fail before touching memory or disk, then the partition recovers
// on its own — unlike a real segment failure the error is NOT sticky.
// Chaos-test hook for proving prefix-ack exactness on mid-batch faults.
func (p *Partition) FailNextAppends(n int) {
	p.mu.Lock()
	p.failAppends = n
	p.mu.Unlock()
}

// Err reports a sticky disk-backing failure, if any.
func (p *Partition) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fileErr
}

// Next returns the offset the next Append will receive.
func (p *Partition) Next() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base + int64(len(p.records))
}

// Base returns the lowest retained offset.
func (p *Partition) Base() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base
}

// Read returns up to max records starting at offset, without blocking. It
// returns ErrCompacted when offset precedes the retention horizon. Reading
// at the head returns an empty slice.
func (p *Partition) Read(offset int64, max int) ([]Record, error) {
	if max <= 0 {
		max = 1024
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readLocked(offset, max)
}

func (p *Partition) readLocked(offset int64, max int) ([]Record, error) {
	if offset < p.base {
		return nil, fmt.Errorf("%w: want %d, base %d", ErrCompacted, offset, p.base)
	}
	head := p.base + int64(len(p.records))
	if offset >= head {
		return nil, nil
	}
	n := head - offset
	if n > int64(max) {
		n = int64(max)
	}
	out := make([]Record, n)
	for i := int64(0); i < n; i++ {
		out[i] = Record{Offset: offset + i, Data: p.records[offset-p.base+i]}
	}
	return out, nil
}

// ReadBlocking behaves like Read but waits for data when the partition is
// drained. It returns ErrClosed once the partition closes and all retained
// records past offset were delivered.
func (p *Partition) ReadBlocking(offset int64, max int) ([]Record, error) {
	if max <= 0 {
		max = 1024
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		recs, err := p.readLocked(offset, max)
		if err != nil || len(recs) > 0 {
			return recs, err
		}
		if p.closed {
			return nil, ErrClosed
		}
		p.waiting++
		p.cond.Wait()
		p.waiting--
	}
}

// Waiting returns the number of goroutines currently blocked inside
// ReadBlocking waiting for data.
func (p *Partition) Waiting() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.waiting
}

// Truncate drops records with offsets below before (retention). Truncating
// past the head drops everything retained.
func (p *Partition) Truncate(before int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if before <= p.base {
		return
	}
	head := p.base + int64(len(p.records))
	if before > head {
		before = head
	}
	drop := before - p.base
	for i := int64(0); i < drop; i++ {
		p.bytes -= int64(len(p.records[i]))
	}
	p.records = append([][]byte(nil), p.records[drop:]...)
	p.base = before
	if p.file != nil && p.fileErr == nil {
		if err := writeBaseFile(basePath(p.path), p.base); err != nil {
			p.fileErr = fmt.Errorf("wal: persist horizon: %w", err)
			p.syncedCond.Broadcast()
		}
	}
	// The logical horizon can pass the fsync watermark (records may be
	// retired before they were ever synced); the watermark never regresses,
	// but it must keep covering at least the horizon so SyncTo on retired
	// offsets stays a no-op.
	if p.synced < p.base {
		p.synced = p.base
	}
}

// Seal permanently rejects further appends with ErrSealed while keeping
// reads and replay available. Idempotent.
func (p *Partition) Seal() {
	p.mu.Lock()
	p.sealed = true
	p.mu.Unlock()
}

// Sealed reports whether the partition rejects appends.
func (p *Partition) Sealed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sealed
}

// Closed reports whether the partition has been closed.
func (p *Partition) Closed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Close marks the partition closed, waking blocked readers.
func (p *Partition) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Len returns the number of retained records.
func (p *Partition) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.records)
}

// Bytes returns the retained payload bytes.
func (p *Partition) Bytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytes
}

// Tail is the read side a standby replays a partition through: either a
// *Partition directly (in-process) or a RemoteTail shipping records over
// the cluster transport (see ship.go).
type Tail interface {
	Read(offset int64, max int) ([]Record, error)
}

// Log is a topic: a set of partitions, growable while live (elastic
// scale-out adds one partition per new indexing server).
type Log struct {
	mu    sync.RWMutex
	parts []*Partition
	// dir/cfg remember how the log was opened so AddPartition can build
	// new partitions the same way; dir empty means in-memory.
	dir string
	cfg Config
}

// NewLog creates a log with n partitions (minimum 1).
func NewLog(n int) *Log {
	if n < 1 {
		n = 1
	}
	l := &Log{parts: make([]*Partition, n)}
	for i := range l.parts {
		l.parts[i] = NewPartition()
	}
	return l
}

// Partitions returns the partition count.
func (l *Log) Partitions() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.parts)
}

// Partition returns partition i.
func (l *Log) Partition(i int) *Partition {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.parts[i]
}

// AddPartition appends one partition to the log — disk-backed next to its
// siblings when the log was opened from a directory, in-memory otherwise.
// Returns the new partition and its index.
func (l *Log) AddPartition() (*Partition, int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := len(l.parts)
	var p *Partition
	if l.dir != "" {
		var err error
		p, err = OpenPartition(filepath.Join(l.dir, fmt.Sprintf("p%d.wal", i)), l.cfg)
		if err != nil {
			return nil, 0, err
		}
	} else {
		p = NewPartition()
	}
	l.parts = append(l.parts, p)
	return p, i, nil
}

// Close closes every partition.
func (l *Log) Close() {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, p := range l.parts {
		p.Close()
	}
}
