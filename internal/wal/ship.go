package wal

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"

	"waterwheel/internal/transport"
)

// WAL shipping (log replication for hot standbys): a node exposes its log
// over the cluster RPC transport so a standby elsewhere can tail an
// owner's partition without sharing memory. One method carries everything
// — "wal.read" maps a (partition, offset, max) request to the same
// semantics as Partition.Read, including ErrCompacted when the requested
// offset fell below the partition base.

const shipMethod = "wal.read"

type shipRequest struct {
	Part   int
	Offset int64
	Max    int
}

type shipResponse struct {
	Recs []Record
}

// RegisterShipping exposes every partition of l for remote tailing on the
// given transport server.
func RegisterShipping(srv *transport.Server, l *Log) {
	srv.Handle(shipMethod, func(payload []byte) ([]byte, error) {
		var req shipRequest
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&req); err != nil {
			return nil, fmt.Errorf("wal: ship decode: %w", err)
		}
		if req.Part < 0 || req.Part >= l.Partitions() {
			return nil, fmt.Errorf("wal: ship: no partition %d", req.Part)
		}
		recs, err := l.Partition(req.Part).Read(req.Offset, req.Max)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&shipResponse{Recs: recs}); err != nil {
			return nil, fmt.Errorf("wal: ship encode: %w", err)
		}
		return buf.Bytes(), nil
	})
}

// RemoteTail tails one partition of a remote log over the transport — the
// Tail a standby uses when the WAL owner lives on another node.
type RemoteTail struct {
	c    *transport.Client
	part int
}

// NewRemoteTail builds a Tail reading partition part through client c.
func NewRemoteTail(c *transport.Client, part int) *RemoteTail {
	return &RemoteTail{c: c, part: part}
}

// Read fetches up to max records starting at offset, mirroring
// Partition.Read. A remote ErrCompacted comes back as ErrCompacted so
// callers can re-base the same way they would against a local partition.
func (rt *RemoteTail) Read(offset int64, max int) ([]Record, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&shipRequest{Part: rt.part, Offset: offset, Max: max}); err != nil {
		return nil, fmt.Errorf("wal: ship encode: %w", err)
	}
	payload, err := rt.c.Call(shipMethod, buf.Bytes())
	if err != nil {
		// Errors cross the wire as text; map the sentinel back.
		if strings.Contains(err.Error(), ErrCompacted.Error()) {
			return nil, ErrCompacted
		}
		return nil, err
	}
	var resp shipResponse
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("wal: ship decode: %w", err)
	}
	return resp.Recs, nil
}
