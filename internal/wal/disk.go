package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Disk backing: a partition can be bound to an append-only segment file so
// records survive process restarts — the durability Kafka provided the
// paper's prototype. Record framing is [8B offset][4B length][payload].
// Truncation persists only the retention horizon (a small side file);
// retained records below it are skipped on reload and physically reclaimed
// by Compact.

const walMagicLen = 8

var walMagic = [walMagicLen]byte{'W', 'W', 'W', 'A', 'L', '0', '0', '1'}

// OpenPartitionFile opens (or creates) a disk-backed partition. Existing
// records above the stored retention horizon are loaded; appends go to
// both memory and the file.
func OpenPartitionFile(path string) (*Partition, error) {
	p := NewPartition()
	p.path = path

	base, err := readBaseFile(basePath(path))
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: init %s: %w", path, err)
		}
	} else {
		if err := loadSegment(f, p, base); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	p.file = f
	if p.base < base {
		// Empty or fully-truncated segment: the horizon still applies.
		p.base = base
	}
	return p, nil
}

func basePath(path string) string { return path + ".base" }

func readBaseFile(path string) (int64, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: base file: %w", err)
	}
	if len(raw) != 8 {
		return 0, fmt.Errorf("wal: base file corrupt (%d bytes)", len(raw))
	}
	return int64(binary.BigEndian.Uint64(raw)), nil
}

func writeBaseFile(path string, base int64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(base))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf[:], 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadSegment replays a segment file into the partition, skipping records
// below the retention horizon. A torn final record (crash mid-append) is
// tolerated and dropped.
func loadSegment(f *os.File, p *Partition, horizon int64) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var magic [walMagicLen]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return fmt.Errorf("wal: segment header: %w", err)
	}
	if magic != walMagic {
		return fmt.Errorf("wal: bad segment magic in %s", f.Name())
	}
	var hdr [12]byte
	expect := int64(-1)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // clean end or torn header
			}
			return err
		}
		off := int64(binary.BigEndian.Uint64(hdr[0:8]))
		n := binary.BigEndian.Uint32(hdr[8:12])
		if n > MaxRecordBytes {
			return fmt.Errorf("wal: segment record too large (%d bytes)", n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(f, data); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // torn payload: drop
			}
			return err
		}
		if expect >= 0 && off != expect {
			return fmt.Errorf("wal: segment offset gap: want %d, got %d", expect, off)
		}
		expect = off + 1
		if off < horizon {
			continue
		}
		if len(p.records) == 0 {
			p.base = off
		}
		p.records = append(p.records, data)
		p.bytes += int64(len(data))
	}
}

// MaxRecordBytes bounds one WAL record (16 MiB).
const MaxRecordBytes = 16 << 20

// appendToFileLocked writes one framed record; caller holds p.mu.
func (p *Partition) appendToFileLocked(off int64, data []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(off))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(data)))
	if _, err := p.file.Write(hdr[:]); err != nil {
		return err
	}
	_, err := p.file.Write(data)
	return err
}

// Sync flushes the segment file to stable storage (no-op for in-memory
// partitions).
func (p *Partition) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file == nil {
		return nil
	}
	return p.file.Sync()
}

// Compact rewrites the segment file to contain only retained records,
// reclaiming space freed by Truncate. No-op for in-memory partitions.
func (p *Partition) Compact() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file == nil {
		return nil
	}
	tmpPath := p.path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(walMagic[:]); err != nil {
		tmp.Close()
		return err
	}
	var hdr [12]byte
	for i, rec := range p.records {
		binary.BigEndian.PutUint64(hdr[0:8], uint64(p.base+int64(i)))
		binary.BigEndian.PutUint32(hdr[8:12], uint32(len(rec)))
		if _, err := tmp.Write(hdr[:]); err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(rec); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, p.path); err != nil {
		return err
	}
	old := p.file
	f, err := os.OpenFile(p.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	p.file = f
	old.Close()
	return writeBaseFile(basePath(p.path), p.base)
}

// CloseFile releases the backing file handle (retained records stay
// readable from memory). Further appends fail.
func (p *Partition) CloseFile() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file == nil {
		return nil
	}
	err := p.file.Close()
	p.file = nil
	p.fileErr = fmt.Errorf("wal: segment closed")
	return err
}

// OpenLogDir opens a disk-backed log with n partitions under dir
// (partition i lives in dir/p<i>.wal).
func OpenLogDir(dir string, n int) (*Log, error) {
	if n < 1 {
		n = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: log dir: %w", err)
	}
	l := &Log{parts: make([]*Partition, n)}
	for i := range l.parts {
		p, err := OpenPartitionFile(filepath.Join(dir, fmt.Sprintf("p%d.wal", i)))
		if err != nil {
			return nil, err
		}
		l.parts[i] = p
	}
	return l, nil
}
