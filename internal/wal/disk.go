package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Disk backing: a partition can be bound to an append-only segment file so
// records survive process restarts — the durability Kafka provided the
// paper's prototype. Record framing is [8B offset][4B length][payload].
// Truncation persists only the retention horizon (a small side file);
// retained records below it are skipped on reload and physically reclaimed
// by Compact.

const walMagicLen = 8

var walMagic = [walMagicLen]byte{'W', 'W', 'W', 'A', 'L', '0', '0', '1'}

// OpenPartitionFile opens (or creates) a disk-backed partition with the
// default (ack-on-write) durability config. Existing records above the
// stored retention horizon are loaded; appends go to both memory and the
// file.
func OpenPartitionFile(path string) (*Partition, error) {
	return OpenPartition(path, Config{})
}

// OpenPartition opens (or creates) a disk-backed partition with an
// explicit durability config. A torn tail (crash mid-append) is cut back
// to the last intact record so future appends cannot interleave with the
// partial frame — without the cut, a half-written payload followed by new
// records would misparse as an offset gap on the next open and fail the
// whole partition.
func OpenPartition(path string, cfg Config) (*Partition, error) {
	p := NewPartition()
	p.path = path
	p.dur = cfg.Durability
	p.interval = cfg.Interval
	p.met = cfg.Metrics

	base, err := readBaseFile(basePath(path))
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: init %s: %w", path, err)
		}
	} else {
		end, err := loadSegment(f, p, base)
		if err != nil {
			f.Close()
			return nil, err
		}
		if end < st.Size() {
			if err := f.Truncate(end); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: drop torn tail of %s: %w", path, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: drop torn tail of %s: %w", path, err)
			}
		}
		p.fileBytes = end - walMagicLen
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	p.file = f
	if p.base < base {
		// Empty or fully-truncated segment: the horizon still applies.
		p.base = base
	}
	// Everything that survived into the file counts as the durable
	// baseline: it is what a reopen after a crash would see.
	p.synced = p.base + int64(len(p.records))
	p.syncedBytes = p.fileBytes
	p.startCommitter()
	return p, nil
}

func basePath(path string) string { return path + ".base" }

func readBaseFile(path string) (int64, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: base file: %w", err)
	}
	if len(raw) != 8 {
		return 0, fmt.Errorf("wal: base file corrupt (%d bytes)", len(raw))
	}
	return int64(binary.BigEndian.Uint64(raw)), nil
}

func writeBaseFile(path string, base int64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(base))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf[:], 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadSegment replays a segment file into the partition, skipping records
// below the retention horizon. A torn final record (crash mid-append) is
// tolerated and dropped; the returned byte offset marks the end of the
// last intact record so the caller can cut the torn tail off the file.
func loadSegment(f *os.File, p *Partition, horizon int64) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	var magic [walMagicLen]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return 0, fmt.Errorf("wal: segment header: %w", err)
	}
	if magic != walMagic {
		return 0, fmt.Errorf("wal: bad segment magic in %s", f.Name())
	}
	var hdr [recordHeaderLen]byte
	expect := int64(-1)
	end := int64(walMagicLen)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return end, nil // clean end or torn header
			}
			return 0, err
		}
		off := int64(binary.BigEndian.Uint64(hdr[0:8]))
		n := binary.BigEndian.Uint32(hdr[8:12])
		if n > MaxRecordBytes {
			return 0, fmt.Errorf("wal: segment record too large (%d bytes)", n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(f, data); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return end, nil // torn payload: drop
			}
			return 0, err
		}
		if expect >= 0 && off != expect {
			return 0, fmt.Errorf("wal: segment offset gap: want %d, got %d", expect, off)
		}
		expect = off + 1
		end += recordHeaderLen + int64(n)
		if off < horizon {
			continue
		}
		if len(p.records) == 0 {
			p.base = off
		}
		p.records = append(p.records, data)
		p.bytes += int64(len(data))
	}
}

// MaxRecordBytes bounds one WAL record (16 MiB).
const MaxRecordBytes = 16 << 20

// recordHeaderLen is the per-record frame overhead: [8B offset][4B length].
const recordHeaderLen = 12

// appendToFileLocked writes one framed record; caller holds p.mu.
func (p *Partition) appendToFileLocked(off int64, data []byte) error {
	var hdr [recordHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(off))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(data)))
	if _, err := p.file.Write(hdr[:]); err != nil {
		return err
	}
	_, err := p.file.Write(data)
	return err
}

// Sync flushes the segment file to stable storage and advances the fsync
// watermark (no-op for in-memory partitions).
func (p *Partition) Sync() error {
	return p.syncCohort()
}

// writeFrame writes one framed record to w.
func writeFrame(w io.Writer, off int64, rec []byte) error {
	var hdr [recordHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(off))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(rec)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(rec)
	return err
}

// compactHook, when set (tests only), runs after Compact has taken its
// snapshot and released the partition lock — a deterministic window in
// which concurrent appends must succeed.
var compactHook func()

// Compact rewrites the segment file to contain only retained records,
// reclaiming the space Truncate freed logically. The rewrite runs from a
// snapshot without holding p.mu — appends and reads proceed concurrently —
// and only the file swap takes the lock: records appended during the
// rewrite are framed into the new file inside the swap's critical section,
// whose cost is bounded by the rewrite's duration rather than the segment
// size. The new file is fully fsynced before it replaces the old one, so
// the fsync watermark jumps to the head and parked group-commit waiters
// are released. No-op for in-memory partitions.
func (p *Partition) Compact() error {
	p.mu.Lock()
	if p.file == nil {
		err := p.fileErr
		p.mu.Unlock()
		return err
	}
	if p.fileErr != nil {
		err := p.fileErr
		p.mu.Unlock()
		return err
	}
	base := p.base
	// Safe to read outside the lock: Truncate replaces the slice rather
	// than mutating it, appends only grow past len(recs), and record
	// payloads are immutable once appended.
	recs := p.records
	p.mu.Unlock()

	if compactHook != nil {
		compactHook()
	}

	tmpPath := p.path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if _, err := tmp.Write(walMagic[:]); err != nil {
		return abort(err)
	}
	var written int64
	for i, rec := range recs {
		if err := writeFrame(tmp, base+int64(i), rec); err != nil {
			return abort(err)
		}
		written += recordHeaderLen + int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		return abort(err)
	}

	// Swap: appends stall only from here. syncMu keeps an in-flight cohort
	// fsync from targeting the handle being swapped out.
	p.syncMu.Lock()
	defer p.syncMu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file == nil || p.fileErr != nil {
		return abort(p.fileErr)
	}
	// Catch up on records appended (and not truncated) during the rewrite.
	head := p.base + int64(len(p.records))
	delta := base + int64(len(recs))
	if delta < p.base {
		delta = p.base
	}
	for off := delta; off < head; off++ {
		rec := p.records[off-p.base]
		if err := writeFrame(tmp, off, rec); err != nil {
			return abort(err)
		}
		written += recordHeaderLen + int64(len(rec))
	}
	if delta < head {
		if err := tmp.Sync(); err != nil {
			return abort(err)
		}
	}
	if err := os.Rename(tmpPath, p.path); err != nil {
		return abort(err)
	}
	old := p.file
	p.file = tmp // keep writing through the renamed handle
	p.fileBytes = written
	p.syncedBytes = written
	if p.synced < head {
		p.synced = head
		p.syncedCond.Broadcast()
	}
	old.Close()
	return writeBaseFile(basePath(p.path), p.base)
}

// CloseFile stops the committer and releases the backing file handle
// (retained records stay readable from memory). Further appends fail.
func (p *Partition) CloseFile() error {
	p.stopCommitter()
	p.syncMu.Lock()
	defer p.syncMu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file == nil {
		return nil
	}
	err := p.file.Close()
	p.file = nil
	if p.fileErr == nil {
		p.fileErr = fmt.Errorf("wal: segment closed")
	}
	p.syncedCond.Broadcast()
	return err
}

// OpenLogDir opens a disk-backed log with n partitions under dir with the
// default (ack-on-write) durability config.
func OpenLogDir(dir string, n int) (*Log, error) {
	return OpenLogDirConfig(dir, n, Config{})
}

// OpenLogDirConfig opens a disk-backed log with n partitions under dir
// (partition i lives in dir/p<i>.wal), all sharing one durability config.
func OpenLogDirConfig(dir string, n int, cfg Config) (*Log, error) {
	if n < 1 {
		n = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: log dir: %w", err)
	}
	l := &Log{parts: make([]*Partition, n), dir: dir, cfg: cfg}
	for i := range l.parts {
		p, err := OpenPartition(filepath.Join(dir, fmt.Sprintf("p%d.wal", i)), cfg)
		if err != nil {
			return nil, err
		}
		l.parts[i] = p
	}
	return l, nil
}
