package chunk

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"waterwheel/internal/core"
	"waterwheel/internal/model"
	"waterwheel/internal/workload"
)

// buildMixedSnapshot makes a snapshot whose payloads vary in size, with
// only some carrying a full uint64 aggregate field — the shape that
// exercises Values < Count in the pre-aggregate paths.
func buildMixedSnapshot(t testing.TB, n, leaves int, seed int64) *core.FlushSnapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tree := core.NewTemplateTree(core.TemplateConfig{
		Keys: model.KeyRange{Lo: 0, Hi: model.Key(n)}, Leaves: leaves,
	})
	for i := 0; i < n; i++ {
		var payload []byte
		if rng.Intn(4) > 0 { // 3/4 carry the aggregate field
			payload = make([]byte, 8+rng.Intn(8))
			binary.BigEndian.PutUint64(payload, uint64(rng.Intn(10_000)))
		} else {
			payload = make([]byte, rng.Intn(8)) // too short for the field
		}
		tree.Insert(model.Tuple{
			Key:     model.Key(rng.Intn(n)),
			Time:    model.Timestamp(1_000_000 + rng.Intn(60_000)),
			Payload: payload,
		})
	}
	snap := tree.FlushReset()
	if snap == nil {
		t.Fatal("nil snapshot")
	}
	return snap
}

// collect runs a range query against a parsed chunk the way a query
// server does — leaf selection then per-leaf scans — and returns the
// matching tuples.
func collect(t *testing.T, h *Header, data []byte, kr model.KeyRange, tr model.TimeRange) []model.Tuple {
	t.Helper()
	var out []model.Tuple
	read, _ := h.SelectLeaves(kr, tr, true)
	for _, li := range read {
		d := h.Dir[li]
		err := h.ScanLeaf(li, data[d.Offset:d.Offset+d.Length], kr, tr, nil, func(tp *model.Tuple) bool {
			cp := *tp
			cp.Payload = append([]byte(nil), tp.Payload...)
			out = append(out, cp)
			return true
		})
		if err != nil {
			t.Fatalf("leaf %d: %v", li, err)
		}
	}
	return out
}

// TestV1V2QueryEquivalence builds the same snapshot in both formats and
// checks random range queries return identical tuples from each — the
// columnar layout is an encoding change, not a semantic one.
func TestV1V2QueryEquivalence(t *testing.T) {
	snap := buildMixedSnapshot(t, 2000, 16, 42)
	v1, m1, err := Build(snap, BuildOptions{Format: FormatV1})
	if err != nil {
		t.Fatal(err)
	}
	v2, m2, err := Build(snap, BuildOptions{Format: FormatV2})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Count != m2.Count || m1.Keys != m2.Keys || m1.MinTime != m2.MinTime || m1.MaxTime != m2.MaxTime {
		t.Fatalf("meta diverged: %+v vs %+v", m1, m2)
	}
	h1, err := ParseHeader(v1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ParseHeader(v2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		kr := model.FullKeyRange()
		tr := model.FullTimeRange()
		if trial > 0 { // trial 0 checks the full region
			a, b := model.Key(rng.Intn(2000)), model.Key(rng.Intn(2000))
			if a > b {
				a, b = b, a
			}
			kr = model.KeyRange{Lo: a, Hi: b}
			x, y := 1_000_000+rng.Intn(60_000), 1_000_000+rng.Intn(60_000)
			if x > y {
				x, y = y, x
			}
			tr = model.TimeRange{Lo: model.Timestamp(x), Hi: model.Timestamp(y)}
		}
		r1 := collect(t, h1, v1, kr, tr)
		r2 := collect(t, h2, v2, kr, tr)
		if len(r1) != len(r2) {
			t.Fatalf("trial %d: %d tuples from v1, %d from v2", trial, len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i].Key != r2[i].Key || r1[i].Time != r2[i].Time || string(r1[i].Payload) != string(r2[i].Payload) {
				t.Fatalf("trial %d tuple %d: %+v vs %+v", trial, i, r1[i], r2[i])
			}
		}
	}
}

// bruteAgg folds tuples matching tr into a partial the slow way.
func bruteAgg(tuples []model.Tuple, tr model.TimeRange, field uint32) model.AggPartial {
	var p model.AggPartial
	for i := range tuples {
		if tr.Contains(tuples[i].Time) {
			p.AddTuple(&tuples[i], field)
		}
	}
	return p
}

// TestAggFoldEquivalence checks every pre-aggregate shortcut against a
// brute-force fold over the decoded tuples: the chunk-level summary in
// Meta.Agg, the whole-leaf fold, and the partial-range bucket fold plus
// complementary scan that together answer a boundary leaf.
func TestAggFoldEquivalence(t *testing.T) {
	snap := buildMixedSnapshot(t, 1500, 8, 99)
	data, meta, err := Build(snap, BuildOptions{Format: FormatV2, BucketMillis: 1000})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasAgg || meta.Agg == nil {
		t.Fatal("v2 chunk missing pre-aggregates")
	}

	// Chunk-level: Meta.Agg vs all tuples.
	var all []model.Tuple
	for li, d := range h.Dir {
		tuples, err := h.DecodeLeaf(li, data[d.Offset:d.Offset+d.Length])
		if err != nil {
			t.Fatalf("leaf %d: %v", li, err)
		}
		all = append(all, tuples...)

		// Whole-leaf fold vs brute force over the leaf.
		var got model.AggPartial
		if !h.FoldLeafAggAll(li, false, &got) {
			if d.Count > 0 {
				t.Fatalf("leaf %d: no pre-aggregates", li)
			}
			continue
		}
		want := bruteAgg(tuples, model.FullTimeRange(), h.AggField)
		if got != want {
			t.Fatalf("leaf %d whole-leaf fold: %+v != %+v", li, got, want)
		}
	}
	want := bruteAgg(all, model.FullTimeRange(), meta.Agg.Field)
	if meta.Agg.AggPartial != want {
		t.Fatalf("chunk agg %+v != brute %+v", meta.Agg.AggPartial, want)
	}

	// Partial-range: bucket fold + excluded scan vs brute force, over
	// random time windows per leaf.
	rng := rand.New(rand.NewSource(3))
	var cols LeafColumns
	for li, d := range h.Dir {
		if d.Count == 0 {
			continue
		}
		tuples, _ := h.DecodeLeaf(li, data[d.Offset:d.Offset+d.Length])
		for trial := 0; trial < 50; trial++ {
			span := int64(d.MaxT - d.MinT + 1)
			lo := int64(d.MinT) + rng.Int63n(span+2000) - 1000
			hi := lo + rng.Int63n(span+2000)
			tr := model.TimeRange{Lo: model.Timestamp(lo), Hi: model.Timestamp(hi)}
			var got model.AggPartial
			var ex *model.TimeRange
			if w, ok := h.FoldLeafAgg(li, tr, false, &got); ok {
				ex = &w
			}
			err := h.AggregateLeaf(li, data[d.Offset:d.Offset+d.Length], &cols,
				model.FullKeyRange(), tr, nil, ex, h.AggField, false, &got)
			if err != nil {
				t.Fatal(err)
			}
			if want := bruteAgg(tuples, tr, h.AggField); got != want {
				t.Fatalf("leaf %d window [%d,%d]: fold+scan %+v != brute %+v", li, lo, hi, got, want)
			}
		}
	}
}

// TestV2CompressionRatio is the regression guard for the columnar
// encoding: on the standard T-Drive-like workload (sorted clustered
// z-order keys, near-constant arrival cadence, fixed 16-byte payloads)
// v2 must spend at most 0.7× the bytes per tuple v1 does.
func TestV2CompressionRatio(t *testing.T) {
	gen := workload.NewTDrive(workload.TDriveConfig{Taxis: 500, Seed: 11})
	tree := core.NewTemplateTree(core.TemplateConfig{Keys: gen.KeySpan(), Leaves: 64})
	const n = 20_000
	for i := 0; i < n; i++ {
		tree.Insert(gen.Next())
	}
	snap := tree.FlushReset()
	if snap == nil {
		t.Fatal("nil snapshot")
	}
	v1, _, err := Build(snap, BuildOptions{Format: FormatV1})
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := Build(snap, BuildOptions{Format: FormatV2})
	if err != nil {
		t.Fatal(err)
	}
	b1 := float64(len(v1)) / n
	b2 := float64(len(v2)) / n
	t.Logf("bytes/tuple: v1=%.1f v2=%.1f ratio=%.2f", b1, b2, b2/b1)
	if b2 > 0.7*b1 {
		t.Fatalf("v2 bytes/tuple %.1f exceeds 0.7× v1 (%.1f)", b2, 0.7*b1)
	}
}
