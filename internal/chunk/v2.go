// Chunk format v2: columnar leaves behind the WWCHUNK2 magic.
//
// The header keeps the v1 shape (fixed fields, leaf bounds, directory,
// sketches, optional secondary filters) and adds two sections:
//
//	[nLeaves × {8B minKey, 8B maxKey}]            after the directory
//	[flagAgg: pre-aggregate block, see agg.go]    at the end
//
// Leaf bodies are laid out as columns instead of row-encoded tuples:
//
//	[4B keyColLen][4B tsColLen][4B lenColLen]
//	[key column]   1 encoding byte, then either count×8B fixed words or
//	               uvarint deltas (keys are sorted, so deltas are ≥ 0);
//	               the builder picks whichever is smaller.
//	[ts column]    zigzag varints: first timestamp, first delta, then
//	               delta-of-deltas — near-constant arrival cadence costs
//	               ~1 byte per tuple.
//	[len column]   1 encoding byte: constant payload length as a single
//	               uvarint (the common fixed-schema case), or one uvarint
//	               per tuple.
//	[payloads]     concatenated payload bytes (the remaining body).
//
// Empty leaves have zero-length bodies. All decode paths bounds-check
// before slicing and return ErrCorrupt on malformed input — a corrupt
// chunk must never panic or over-read.
package chunk

import (
	"encoding/binary"
	"fmt"
	"sync"

	"waterwheel/internal/bloom"
	"waterwheel/internal/core"
	"waterwheel/internal/model"
)

const (
	keyEncFixed = 0 // count × 8B big-endian words
	keyEncDelta = 1 // uvarint first key, then uvarint deltas

	lenEncConst = 0 // single uvarint payload length shared by all tuples
	lenEncVar   = 1 // one uvarint payload length per tuple
)

// leafScratch holds reusable column buffers for the builder.
type leafScratch struct {
	keys, ts, lens []byte
}

// appendLeafV2 appends the columnar encoding of one non-empty leaf,
// transcoding the snapshot's columns directly — no model.Tuple is ever
// built on this path (the acceptance test hooks core.TupleMaterializations
// to prove it).
func appendLeafV2(dst []byte, lc *core.LeafCols, sc *leafScratch) []byte {
	n := lc.Len()
	var vb [binary.MaxVarintLen64]byte

	// Key column: try sorted-delta uvarints, fall back to fixed 8B words
	// when the keys are too spread out for deltas to win (dense random
	// uint64 keys varint-expand past fixed width).
	sc.keys = append(sc.keys[:0], keyEncDelta)
	prev := uint64(0)
	for _, key := range lc.Keys {
		k := uint64(key)
		m := binary.PutUvarint(vb[:], k-prev)
		sc.keys = append(sc.keys, vb[:m]...)
		prev = k
	}
	if len(sc.keys) > 1+8*n {
		sc.keys = append(sc.keys[:0], keyEncFixed)
		for _, key := range lc.Keys {
			sc.keys = appendU64(sc.keys, uint64(key))
		}
	}

	// Timestamp column: delta-of-delta zigzag varints.
	sc.ts = sc.ts[:0]
	var prevT, prevD int64
	for j, ts := range lc.Times {
		t := int64(ts)
		var v int64
		switch j {
		case 0:
			v = t
		case 1:
			v = t - prevT
			prevD = v
		default:
			d := t - prevT
			v = d - prevD
			prevD = d
		}
		m := binary.PutVarint(vb[:], v)
		sc.ts = append(sc.ts, vb[:m]...)
		prevT = t
	}

	// Payload-length column: fixed-schema payloads collapse to one word.
	// Lengths come off the reference column without touching the arena.
	first := lc.PayloadLen(0)
	same := true
	for j := 1; j < n; j++ {
		if lc.PayloadLen(j) != first {
			same = false
			break
		}
	}
	if same {
		sc.lens = append(sc.lens[:0], lenEncConst)
		m := binary.PutUvarint(vb[:], uint64(first))
		sc.lens = append(sc.lens, vb[:m]...)
	} else {
		sc.lens = append(sc.lens[:0], lenEncVar)
		for j := 0; j < n; j++ {
			m := binary.PutUvarint(vb[:], uint64(lc.PayloadLen(j)))
			sc.lens = append(sc.lens, vb[:m]...)
		}
	}

	dst = appendU32(dst, uint32(len(sc.keys)))
	dst = appendU32(dst, uint32(len(sc.ts)))
	dst = appendU32(dst, uint32(len(sc.lens)))
	dst = append(dst, sc.keys...)
	dst = append(dst, sc.ts...)
	dst = append(dst, sc.lens...)
	for j := 0; j < n; j++ {
		dst = append(dst, lc.Payload(j)...)
	}
	return dst
}

// buildV2 serializes a flush snapshot in the columnar v2 layout.
func buildV2(snap *core.FlushSnapshot, opts BuildOptions) ([]byte, Meta, error) {
	nLeaves := len(snap.Leaves)
	aggField := opts.AggField
	if aggField == 0 && snap.AggField != 0 {
		aggField = snap.AggField
	}

	dir := make([]LeafInfo, nLeaves)
	leafKeys := make([]model.KeyRange, nLeaves)
	sketches := make([][]byte, nLeaves)
	secondary := make([][]byte, nLeaves)
	var leafAggs []LeafAgg
	var chunkAgg *model.ChunkAgg
	if !opts.DisableAgg {
		leafAggs = make([]LeafAgg, nLeaves)
		chunkAgg = &model.ChunkAgg{Field: aggField}
	}
	var body []byte
	var sc leafScratch
	for i := range snap.Leaves {
		lc := &snap.Leaves[i]
		n := lc.Len()
		start := len(body)
		info := LeafInfo{Count: n}
		if n > 0 {
			info.MinT, info.MaxT = lc.Times[0], lc.Times[0]
			leafKeys[i], _ = snap.LeafKeyRange(i)
		}
		var sk *bloom.TimeSketch
		if !opts.DisableBloom && n > 0 {
			est := n/4 + 16
			sk = bloom.NewTimeSketch(opts.BucketMillis, est, opts.FPRate)
		}
		var sec *bloom.Filter
		if opts.Secondary != nil && n > 0 {
			sec = bloom.NewWithEstimates(n, opts.FPRate)
		}
		for j := 0; j < n; j++ {
			ts := lc.Times[j]
			if ts < info.MinT {
				info.MinT = ts
			}
			if ts > info.MaxT {
				info.MaxT = ts
			}
			if sk != nil {
				sk.AddTime(int64(ts))
			}
			if sec != nil {
				if v, ok := payloadU64(lc.Payload(j), opts.Secondary.Offset); ok {
					sec.Add(v)
				}
			}
			if chunkAgg != nil {
				chunkAgg.Count++
				if v, ok := payloadU64(lc.Payload(j), aggField); ok {
					chunkAgg.AddValue(v)
				}
			}
		}
		if n > 0 {
			body = appendLeafV2(body, lc, &sc)
			if leafAggs != nil {
				leafAggs[i] = buildLeafAgg(lc, aggField, opts.BucketMillis,
					int64(info.MinT), int64(info.MaxT))
			}
		}
		info.Length = int64(len(body) - start)
		dir[i] = info // Offset fixed up after the header size is known.
		if sk != nil {
			sketches[i] = sk.AppendTo(nil)
		}
		if sec != nil {
			secondary[i] = sec.AppendTo(nil)
		}
	}

	const fixed = 8 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 1
	hlen := fixed + (nLeaves-1)*8 + nLeaves*36 + nLeaves*16
	// Unlike v1, the sketch section exists only when the bloom flag is set
	// (v1 wrote per-leaf zero lengths its parser never reads; v2 parses
	// sections back to back, so the layout must match the flags exactly).
	if !opts.DisableBloom {
		for _, s := range sketches {
			hlen += 4 + len(s)
		}
	}
	if opts.Secondary != nil {
		hlen += 4
		for _, s := range secondary {
			hlen += 4 + len(s)
		}
	}
	if leafAggs != nil {
		hlen += aggBlockSize(leafAggs)
	}
	off := int64(hlen)
	for i := range dir {
		dir[i].Offset = off
		off += dir[i].Length
	}

	out := make([]byte, 0, hlen+len(body))
	out = append(out, magicV2[:]...)
	out = appendU32(out, uint32(hlen))
	out = appendU64(out, uint64(snap.Count))
	out = appendU64(out, uint64(snap.MinTime))
	out = appendU64(out, uint64(snap.MaxTime))
	out = appendU64(out, uint64(snap.Keys.Lo))
	out = appendU64(out, uint64(snap.Keys.Hi))
	out = appendU32(out, uint32(nLeaves))
	flags := byte(0)
	if !opts.DisableBloom {
		flags |= flagBloom
	}
	if opts.Secondary != nil {
		flags |= flagSecondary
	}
	if leafAggs != nil {
		flags |= flagAgg
	}
	out = append(out, flags)
	for _, b := range snap.Bounds {
		out = appendU64(out, uint64(b))
	}
	for _, d := range dir {
		out = appendU64(out, uint64(d.Offset))
		out = appendU64(out, uint64(d.Length))
		out = appendU32(out, uint32(d.Count))
		out = appendU64(out, uint64(d.MinT))
		out = appendU64(out, uint64(d.MaxT))
	}
	for _, kr := range leafKeys {
		out = appendU64(out, uint64(kr.Lo))
		out = appendU64(out, uint64(kr.Hi))
	}
	if !opts.DisableBloom {
		for _, s := range sketches {
			out = appendU32(out, uint32(len(s)))
			out = append(out, s...)
		}
	}
	if opts.Secondary != nil {
		out = appendU32(out, opts.Secondary.Offset)
		for _, s := range secondary {
			out = appendU32(out, uint32(len(s)))
			out = append(out, s...)
		}
	}
	if leafAggs != nil {
		out = appendAggBlock(out, aggField, leafAggs)
	}
	if len(out) != hlen {
		return nil, Meta{}, fmt.Errorf("chunk: v2 header size miscomputed: %d != %d", len(out), hlen)
	}
	out = append(out, body...)

	meta := Meta{
		Count:     snap.Count,
		MinTime:   snap.MinTime,
		MaxTime:   snap.MaxTime,
		Keys:      snap.Keys,
		Leaves:    nLeaves,
		HeaderLen: hlen,
		Size:      int64(len(out)),
		Format:    FormatV2,
		Agg:       chunkAgg,
	}
	return out, meta, nil
}

// LeafColumns is one decoded v2 leaf as parallel columns. Payload aliases
// the leaf body; tuple j's payload is Payload[Starts[j]:Starts[j+1]].
type LeafColumns struct {
	Keys  []model.Key
	Times []model.Timestamp
	// Starts has len(Keys)+1 entries indexing tuple payloads.
	Starts  []uint32
	Payload []byte
}

// colsPool recycles decoded column buffers across leaf scans. A fresh
// LeafColumns per subquery made the v2 full scan allocate three column
// slices per selected leaf; borrowing from the pool amortizes them to
// zero in steady state.
var colsPool = sync.Pool{New: func() any { return new(LeafColumns) }}

// BorrowColumns returns reusable column scratch for DecodeColumns /
// ScanLeafWith. Return it with ReturnColumns when the scan is done — and
// only once nothing aliases its buffers.
func BorrowColumns() *LeafColumns { return colsPool.Get().(*LeafColumns) }

// ReturnColumns puts column scratch back in the pool. The Payload alias
// into the leaf body is dropped so the pool never pins chunk bodies.
func ReturnColumns(cols *LeafColumns) {
	if cols == nil {
		return
	}
	cols.Payload = nil
	colsPool.Put(cols)
}

func growKeys(s []model.Key, n int) []model.Key {
	if cap(s) < n {
		return make([]model.Key, n)
	}
	return s[:n]
}

func growTimes(s []model.Timestamp, n int) []model.Timestamp {
	if cap(s) < n {
		return make([]model.Timestamp, n)
	}
	return s[:n]
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

// DecodeColumns decodes v2 leaf li's body into cols, reusing its buffers.
// Every slice access is bounds-checked up front: corrupt bodies return
// ErrCorrupt, never panic.
func (h *Header) DecodeColumns(li int, body []byte, cols *LeafColumns) error {
	if h.Format != FormatV2 {
		return fmt.Errorf("%w: columnar decode of v%d leaf", ErrUnsupportedVersion, h.Format)
	}
	n := h.Dir[li].Count
	cols.Keys = growKeys(cols.Keys, 0)
	cols.Times = growTimes(cols.Times, 0)
	cols.Starts = growU32(cols.Starts, 0)
	cols.Payload = nil
	if n == 0 {
		return nil
	}
	if len(body) < 12 {
		return fmt.Errorf("%w: leaf %d body too small", ErrCorrupt, li)
	}
	kl := int64(binary.BigEndian.Uint32(body[0:4]))
	tl := int64(binary.BigEndian.Uint32(body[4:8]))
	ll := int64(binary.BigEndian.Uint32(body[8:12]))
	if 12+kl+tl+ll > int64(len(body)) {
		return fmt.Errorf("%w: leaf %d columns overflow body", ErrCorrupt, li)
	}
	// The timestamp column holds exactly n varints of ≥ 1 byte each, so a
	// directory count the body cannot possibly hold is corruption — this
	// also bounds the allocations below by the body size.
	if int64(n) > tl {
		return fmt.Errorf("%w: leaf %d count %d exceeds ts column", ErrCorrupt, li, n)
	}
	keys := body[12 : 12+kl]
	ts := body[12+kl : 12+kl+tl]
	lens := body[12+kl+tl : 12+kl+tl+ll]
	pay := body[12+kl+tl+ll:]

	cols.Keys = growKeys(cols.Keys, n)
	if len(keys) < 1 {
		return fmt.Errorf("%w: leaf %d key column empty", ErrCorrupt, li)
	}
	switch keys[0] {
	case keyEncFixed:
		if len(keys) != 1+8*n {
			return fmt.Errorf("%w: leaf %d fixed key column length", ErrCorrupt, li)
		}
		p := keys[1:]
		for j := 0; j < n; j++ {
			cols.Keys[j] = model.Key(binary.BigEndian.Uint64(p[8*j:]))
		}
	case keyEncDelta:
		p := keys[1:]
		var acc uint64
		for j := 0; j < n; j++ {
			// Sorted-key deltas are short varints — decode up to three
			// bytes (21 bits) with straight-line loads and fall back to
			// binary.Uvarint only for the rare wide gap.
			var d uint64
			var m int
			switch {
			case len(p) > 0 && p[0] < 0x80:
				d, m = uint64(p[0]), 1
			case len(p) > 1 && p[1] < 0x80:
				d, m = uint64(p[0]&0x7f)|uint64(p[1])<<7, 2
			case len(p) > 2 && p[2] < 0x80:
				d, m = uint64(p[0]&0x7f)|uint64(p[1]&0x7f)<<7|uint64(p[2])<<14, 3
			default:
				if d, m = binary.Uvarint(p); m <= 0 {
					return fmt.Errorf("%w: leaf %d key varint %d", ErrCorrupt, li, j)
				}
			}
			p = p[m:]
			acc += d
			cols.Keys[j] = model.Key(acc)
		}
		if len(p) != 0 {
			return fmt.Errorf("%w: leaf %d key column trailing bytes", ErrCorrupt, li)
		}
	default:
		return fmt.Errorf("%w: leaf %d key encoding %d", ErrCorrupt, li, keys[0])
	}

	cols.Times = growTimes(cols.Times, n)
	{
		p := ts
		var prevT, prevD int64
		for j := 0; j < n; j++ {
			// Near-constant cadence makes most delta-of-deltas one or two
			// bytes; unzigzag inline and fall back to binary.Varint for
			// the rest.
			var v int64
			var m int
			switch {
			case len(p) > 0 && p[0] < 0x80:
				u := uint64(p[0])
				v, m = int64(u>>1)^-int64(u&1), 1
			case len(p) > 1 && p[1] < 0x80:
				u := uint64(p[0]&0x7f) | uint64(p[1])<<7
				v, m = int64(u>>1)^-int64(u&1), 2
			default:
				if v, m = binary.Varint(p); m <= 0 {
					return fmt.Errorf("%w: leaf %d ts varint %d", ErrCorrupt, li, j)
				}
			}
			p = p[m:]
			switch j {
			case 0:
				prevT = v
			case 1:
				prevD = v
				prevT += v
			default:
				prevD += v
				prevT += prevD
			}
			cols.Times[j] = model.Timestamp(prevT)
		}
		if len(p) != 0 {
			return fmt.Errorf("%w: leaf %d ts column trailing bytes", ErrCorrupt, li)
		}
	}

	cols.Starts = growU32(cols.Starts, n+1)
	if len(lens) < 1 {
		return fmt.Errorf("%w: leaf %d len column empty", ErrCorrupt, li)
	}
	switch lens[0] {
	case lenEncConst:
		c, m := binary.Uvarint(lens[1:])
		if m <= 0 || 1+m != len(lens) {
			return fmt.Errorf("%w: leaf %d const len column", ErrCorrupt, li)
		}
		if c > uint64(len(pay)) || c*uint64(n) != uint64(len(pay)) {
			return fmt.Errorf("%w: leaf %d payload size mismatch", ErrCorrupt, li)
		}
		for j := 0; j <= n; j++ {
			cols.Starts[j] = uint32(uint64(j) * c)
		}
	case lenEncVar:
		p := lens[1:]
		var acc uint64
		cols.Starts[0] = 0
		for j := 0; j < n; j++ {
			v, m := binary.Uvarint(p)
			if m <= 0 {
				return fmt.Errorf("%w: leaf %d len varint %d", ErrCorrupt, li, j)
			}
			p = p[m:]
			acc += v
			if acc > uint64(len(pay)) {
				return fmt.Errorf("%w: leaf %d payloads overflow body", ErrCorrupt, li)
			}
			cols.Starts[j+1] = uint32(acc)
		}
		if len(p) != 0 || acc != uint64(len(pay)) {
			return fmt.Errorf("%w: leaf %d payload size mismatch", ErrCorrupt, li)
		}
	default:
		return fmt.Errorf("%w: leaf %d len encoding %d", ErrCorrupt, li, lens[0])
	}
	cols.Payload = pay
	return nil
}
