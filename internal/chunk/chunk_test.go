package chunk

import (
	"math/rand"
	"testing"

	"waterwheel/internal/core"
	"waterwheel/internal/model"
)

// buildSnapshot makes a flush snapshot via a real template tree.
func buildSnapshot(t testing.TB, n int, leaves int) *core.FlushSnapshot {
	t.Helper()
	tree := core.NewTemplateTree(core.TemplateConfig{
		Keys: model.KeyRange{Lo: 0, Hi: model.Key(n * 2)}, Leaves: leaves,
	})
	for i := 0; i < n; i++ {
		tree.Insert(model.Tuple{
			Key:     model.Key(i * 2),
			Time:    model.Timestamp(1000 + i),
			Payload: []byte{byte(i), byte(i >> 8)},
		})
	}
	snap := tree.FlushReset()
	if snap == nil {
		t.Fatal("nil snapshot")
	}
	return snap
}

func TestBuildAndParseRoundTrip(t *testing.T) {
	snap := buildSnapshot(t, 500, 8)
	data, meta, err := Build(snap, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Count != 500 || meta.Leaves != 8 || meta.Size != int64(len(data)) {
		t.Fatalf("meta = %+v", meta)
	}
	if hl, err := PeekHeaderLen(data); err != nil || hl != meta.HeaderLen {
		t.Fatalf("PeekHeaderLen = %d, %v; want %d", hl, err, meta.HeaderLen)
	}
	h, err := ParseHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if h.Count != 500 || h.Leaves != 8 || h.Size != meta.Size {
		t.Fatalf("header = %+v", h.Meta)
	}
	if h.MinTime != 1000 || h.MaxTime != 1499 {
		t.Errorf("time bounds [%d,%d]", h.MinTime, h.MaxTime)
	}
	if len(h.Bounds) != 7 || len(h.Dir) != 8 {
		t.Fatalf("bounds=%d dir=%d", len(h.Bounds), len(h.Dir))
	}
	// Every tuple is recoverable and globally sorted.
	total := 0
	var prev model.Key
	for i, d := range h.Dir {
		tuples, err := h.DecodeLeaf(i, data[d.Offset:d.Offset+d.Length])
		if err != nil {
			t.Fatalf("leaf %d: %v", i, err)
		}
		if len(tuples) != d.Count {
			t.Fatalf("leaf %d count %d != dir %d", i, len(tuples), d.Count)
		}
		for _, tp := range tuples {
			if total > 0 && tp.Key < prev {
				t.Fatal("tuples out of order")
			}
			prev = tp.Key
			total++
		}
	}
	if total != 500 {
		t.Fatalf("recovered %d tuples", total)
	}
}

func TestSelectLeavesKeyPruning(t *testing.T) {
	snap := buildSnapshot(t, 800, 16)
	data, _, _ := Build(snap, BuildOptions{})
	h, _ := ParseHeader(data)
	// A narrow key range should touch few leaves.
	read, _ := h.SelectLeaves(model.KeyRange{Lo: 100, Hi: 120}, model.FullTimeRange(), true)
	if len(read) == 0 || len(read) > 3 {
		t.Fatalf("narrow range reads %d leaves", len(read))
	}
	// Full range touches all non-empty leaves.
	read, _ = h.SelectLeaves(model.FullKeyRange(), model.FullTimeRange(), true)
	if len(read) != 16 {
		t.Fatalf("full range reads %d leaves, want 16", len(read))
	}
	// Inverted ranges read nothing.
	if r, _ := h.SelectLeaves(model.KeyRange{Lo: 10, Hi: 5}, model.FullTimeRange(), true); r != nil {
		t.Error("inverted key range selected leaves")
	}
}

func TestSelectLeavesTimePruning(t *testing.T) {
	// Keys spread evenly but times correlate with keys, so distant time
	// windows prune by per-leaf min/max.
	tree := core.NewTemplateTree(core.TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 1000}, Leaves: 8})
	for i := 0; i < 1000; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i * 1000)})
	}
	data, _, _ := Build(tree.FlushReset(), BuildOptions{BucketMillis: 1000})
	h, _ := ParseHeader(data)
	read, pruned := h.SelectLeaves(model.FullKeyRange(), model.TimeRange{Lo: 0, Hi: 50_000}, true)
	if len(read) != 1 || pruned != 7 {
		t.Fatalf("read=%d pruned=%d, want 1/7", len(read), pruned)
	}
}

func TestBloomPrunesSparseTimes(t *testing.T) {
	// A leaf covering a wide min/max but with sparse time buckets: bloom
	// prunes windows inside gaps that min/max cannot.
	tree := core.NewTemplateTree(core.TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 100}, Leaves: 1})
	for i := 0; i < 50; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i), Time: 0})
		tree.Insert(model.Tuple{Key: model.Key(i + 50), Time: 10_000_000})
	}
	data, _, _ := Build(tree.FlushReset(), BuildOptions{BucketMillis: 1000})
	h, _ := ParseHeader(data)
	// Window in the gap: min/max overlap, bloom says no.
	read, pruned := h.SelectLeaves(model.FullKeyRange(), model.TimeRange{Lo: 5_000_000, Hi: 5_010_000}, true)
	if len(read) != 0 || pruned != 1 {
		t.Errorf("bloom failed to prune gap window: read=%d pruned=%d", len(read), pruned)
	}
	// Same window without bloom reads the leaf.
	read, _ = h.SelectLeaves(model.FullKeyRange(), model.TimeRange{Lo: 5_000_000, Hi: 5_010_000}, false)
	if len(read) != 1 {
		t.Errorf("without bloom, expected to read the leaf")
	}
	// Window covering data is never pruned.
	read, _ = h.SelectLeaves(model.FullKeyRange(), model.TimeRange{Lo: 0, Hi: 500}, true)
	if len(read) != 1 {
		t.Errorf("covered window wrongly pruned")
	}
}

func TestDisableBloom(t *testing.T) {
	snap := buildSnapshot(t, 100, 4)
	data, _, err := Build(snap, BuildOptions{DisableBloom: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, sk := range h.Sketches {
		if sk != nil {
			t.Errorf("leaf %d has a sketch despite DisableBloom", i)
		}
	}
}

func TestScanLeaf(t *testing.T) {
	snap := buildSnapshot(t, 400, 4)
	data, _, _ := Build(snap, BuildOptions{})
	h, _ := ParseHeader(data)
	// Scan every leaf with a key+time+predicate filter; compare to decode.
	kr := model.KeyRange{Lo: 100, Hi: 600}
	tr := model.TimeRange{Lo: 1100, Hi: 1300}
	f := model.KeyMod(4, 0)
	var scanned []model.Tuple
	for li, d := range h.Dir {
		err := h.ScanLeaf(li, data[d.Offset:d.Offset+d.Length], kr, tr, f, func(tp *model.Tuple) bool {
			cp := *tp
			cp.Payload = append([]byte(nil), tp.Payload...)
			scanned = append(scanned, cp)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	want := 0
	for li, d := range h.Dir {
		tuples, _ := h.DecodeLeaf(li, data[d.Offset:d.Offset+d.Length])
		for i := range tuples {
			tp := &tuples[i]
			if kr.Contains(tp.Key) && tr.Contains(tp.Time) && f.Matches(tp) {
				want++
			}
		}
	}
	if len(scanned) != want || want == 0 {
		t.Fatalf("scanned %d, want %d (>0)", len(scanned), want)
	}
}

func TestScanLeafEarlyStop(t *testing.T) {
	snap := buildSnapshot(t, 100, 1)
	data, _, _ := Build(snap, BuildOptions{})
	h, _ := ParseHeader(data)
	n := 0
	d := h.Dir[0]
	h.ScanLeaf(0, data[d.Offset:d.Offset+d.Length], model.FullKeyRange(), model.FullTimeRange(), nil,
		func(*model.Tuple) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("visited %d", n)
	}
}

func TestParseCorrupt(t *testing.T) {
	snap := buildSnapshot(t, 50, 2)
	data, meta, _ := Build(snap, BuildOptions{})
	if _, err := ParseHeader(data[:8]); err == nil {
		t.Error("short prefix accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ParseHeader(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ParseHeader(data[:meta.HeaderLen-1]); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestBuildEmptyFails(t *testing.T) {
	if _, _, err := Build(nil, BuildOptions{}); err == nil {
		t.Error("nil snapshot accepted")
	}
	if _, _, err := Build(&core.FlushSnapshot{}, BuildOptions{}); err == nil {
		t.Error("empty snapshot accepted")
	}
}

func TestSingleLeafChunk(t *testing.T) {
	tree := core.NewTemplateTree(core.TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 10}, Leaves: 1})
	tree.Insert(model.Tuple{Key: 5, Time: 7, Payload: []byte("p")})
	data, meta, err := Build(tree.FlushReset(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if h.Leaves != 1 || len(h.Bounds) != 0 || meta.Count != 1 {
		t.Fatalf("h=%+v meta=%+v", h.Meta, meta)
	}
	tuples, _ := h.DecodeLeaf(0, data[h.Dir[0].Offset:h.Dir[0].Offset+h.Dir[0].Length])
	if len(tuples) != 1 || tuples[0].Key != 5 || string(tuples[0].Payload) != "p" {
		t.Fatalf("tuples = %v", tuples)
	}
}

// TestParseHeaderNeverPanics flips random bytes in valid chunks and checks
// the parser fails cleanly rather than panicking or over-reading.
func TestParseHeaderNeverPanics(t *testing.T) {
	snap := buildSnapshot(t, 300, 8)
	data, meta, _ := Build(snap, BuildOptions{})
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		bad := append([]byte(nil), data...)
		flips := 1 + rng.Intn(4)
		for f := 0; f < flips; f++ {
			pos := rng.Intn(meta.HeaderLen)
			bad[pos] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			h, err := ParseHeader(bad)
			if err != nil || h == nil {
				return // clean rejection (or flip hit ignorable bits)
			}
			// If it parsed, leaf selection and scans must stay in bounds.
			read, _ := h.SelectLeaves(model.FullKeyRange(), model.FullTimeRange(), true)
			for _, li := range read {
				d := h.Dir[li]
				if d.Offset < 0 || d.Length < 0 || d.Offset+d.Length > int64(len(bad)) {
					return // out-of-range extents are the caller's bounds check
				}
				h.ScanLeaf(li, bad[d.Offset:d.Offset+d.Length], model.FullKeyRange(), model.FullTimeRange(), nil,
					func(*model.Tuple) bool { return true })
			}
		}()
	}
}

// TestTruncatedChunkDataErrors: scans over truncated leaf extents must
// error, not panic.
func TestTruncatedChunkDataErrors(t *testing.T) {
	snap := buildSnapshot(t, 100, 2)
	data, _, _ := Build(snap, BuildOptions{})
	h, _ := ParseHeader(data)
	d := h.Dir[0]
	if d.Length < 10 {
		t.Skip("leaf too small")
	}
	err := h.ScanLeaf(0, data[d.Offset:d.Offset+d.Length-5], model.FullKeyRange(), model.FullTimeRange(), nil,
		func(*model.Tuple) bool { return true })
	if err == nil {
		t.Fatal("truncated leaf scanned without error")
	}
}

// TestV2BuildZeroMaterialization hooks the snapshot's tuple-materialization
// counter around both build paths. The v2 columnar encoder must transcode
// snapshot columns straight into chunk columns without constructing a
// single model.Tuple; the v1 row encoder still goes through the
// materializing EachTuple iterator and proves the counter works.
func TestV2BuildZeroMaterialization(t *testing.T) {
	snap := buildSnapshot(t, 500, 8)

	before := core.TupleMaterializations()
	if _, _, err := Build(snap, BuildOptions{Format: FormatV2, Secondary: &SecondarySpec{Offset: 0}}); err != nil {
		t.Fatal(err)
	}
	if d := core.TupleMaterializations() - before; d != 0 {
		t.Fatalf("v2 build materialized %d tuples, want 0", d)
	}

	before = core.TupleMaterializations()
	if _, _, err := Build(snap, BuildOptions{Format: FormatV1}); err != nil {
		t.Fatal(err)
	}
	if d := core.TupleMaterializations() - before; d != 500 {
		t.Fatalf("v1 build materialized %d tuples, want 500 (counter hook broken?)", d)
	}
}
