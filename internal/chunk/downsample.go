// Downsampled rows: when the compactor merges expired cold chunks, each
// per-leaf pre-aggregate bucket (agg.go) becomes one synthetic tuple in
// the output chunk — key = the leaf's low key bound, time = the bucket
// start, payload = the serialized bucket. The raw tuples are gone; the
// downsampled chunk answers coarse historical queries at bucket
// resolution in a fraction of the space.
package chunk

import "encoding/binary"

// DownsampledPayloadLen is the payload size of a downsampled row:
// [4B count][4B values][8B min][8B max][8B sum], big-endian.
const DownsampledPayloadLen = 32

// AppendDownsampledPayload serializes one pre-aggregate bucket as a
// downsampled-row payload.
func AppendDownsampledPayload(dst []byte, b AggBucket) []byte {
	dst = appendU32(dst, b.Count)
	dst = appendU32(dst, b.Values)
	dst = appendU64(dst, b.Min)
	dst = appendU64(dst, b.Max)
	return appendU64(dst, b.Sum)
}

// ParseDownsampledPayload decodes a downsampled-row payload. ok is false
// when p is not the downsampled layout.
func ParseDownsampledPayload(p []byte) (AggBucket, bool) {
	if len(p) != DownsampledPayloadLen {
		return AggBucket{}, false
	}
	return AggBucket{
		Count:  binary.BigEndian.Uint32(p[0:]),
		Values: binary.BigEndian.Uint32(p[4:]),
		Min:    binary.BigEndian.Uint64(p[8:]),
		Max:    binary.BigEndian.Uint64(p[16:]),
		Sum:    binary.BigEndian.Uint64(p[24:]),
	}, true
}
