// Package chunk defines Waterwheel's immutable data-chunk format: the
// serialized form of a flushed in-memory template B+ tree (paper §III-A).
// The layout keeps everything a subquery needs for pruning — leaf
// boundaries, per-leaf extents, per-leaf time-range bloom sketches — in a
// single contiguous header block, so a query server fetches the header
// once (cacheable) and then reads only the leaf extents selected by the
// key range and the bloom filters (§IV-B, §VI-B: "the data layout in our
// data chunks allows the system to read only the needed leaf nodes").
//
// Layout:
//
//	[8B magic "WWCHUNK1"]
//	[4B header length H]
//	[fixed fields: count, minTime, maxTime, keyLo, keyHi, nLeaves, flags]
//	[(nLeaves-1) × 8B leaf boundary keys]
//	[nLeaves × leaf directory entries {offset, length, count, minT, maxT}]
//	[nLeaves × {4B sketch length, sketch bytes}]
//	[optional, flagSecondary: 4B attribute offset,
//	 nLeaves × {4B filter length, filter bytes}]
//	--- header ends at offset H ---
//	[leaf 0 tuples][leaf 1 tuples]…   (model tuple encoding, key-sorted)
package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"waterwheel/internal/bloom"
	"waterwheel/internal/core"
	"waterwheel/internal/model"
)

// Format versions. The magic's last byte carries the version, so readers
// dispatch per chunk: a cluster can hold v1 and v2 chunks side by side.
const (
	// FormatV1 is the original row layout: leaf bodies are sequences of
	// model-encoded tuples.
	FormatV1 = 1
	// FormatV2 is the columnar layout: leaf bodies hold delta-varint key,
	// delta-of-delta timestamp and payload columns, and the header carries
	// per-leaf key bounds plus a pre-aggregate block.
	FormatV2 = 2
)

var (
	magicV1 = [8]byte{'W', 'W', 'C', 'H', 'U', 'N', 'K', '1'}
	magicV2 = [8]byte{'W', 'W', 'C', 'H', 'U', 'N', 'K', '2'}
)

// ErrCorrupt reports a malformed chunk.
var ErrCorrupt = errors.New("chunk: corrupt data")

// ErrUnsupportedVersion reports a well-formed Waterwheel chunk magic whose
// format version this build does not speak — distinct from ErrCorrupt so a
// version skew fails loudly instead of as "corrupt data".
var ErrUnsupportedVersion = errors.New("chunk: unsupported format version")

const (
	flagBloom = 1 << iota
	flagSecondary
	flagAgg
)

// formatOf identifies the chunk format from the first 8 bytes.
func formatOf(prefix []byte) (int, error) {
	if len(prefix) < 8 {
		return 0, fmt.Errorf("%w: short prefix", ErrCorrupt)
	}
	for i := 0; i < 7; i++ {
		if prefix[i] != magicV1[i] {
			return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
	}
	switch prefix[7] {
	case '1':
		return FormatV1, nil
	case '2':
		return FormatV2, nil
	}
	return 0, fmt.Errorf("%w: magic version byte %q", ErrUnsupportedVersion, prefix[7])
}

// SecondarySpec enables a secondary bloom index over a non-key,
// non-temporal attribute — the extension the paper lists as future work
// (§VIII: "add secondary index structure by bitmap and bloom filters, to
// enable index retrieval on non-key and non-temporal attributes"). The
// attribute is a big-endian uint64 payload field at a fixed offset; each
// leaf records its values in a bloom filter so equality predicates on the
// attribute can skip leaves.
type SecondarySpec struct {
	// Offset is the payload byte offset of the big-endian uint64 field.
	Offset uint32
}

// BuildOptions tunes chunk construction.
type BuildOptions struct {
	// BucketMillis is the time mini-range width for leaf bloom sketches
	// and v2 pre-aggregate buckets (default 1000 ms).
	BucketMillis int64
	// FPRate is the sketch false-positive target (default 0.01).
	FPRate float64
	// DisableBloom omits the sketches (ablation switch).
	DisableBloom bool
	// Secondary, when non-nil, adds per-leaf bloom filters over the given
	// payload attribute.
	Secondary *SecondarySpec
	// Format selects the chunk format version to write: FormatV1 or
	// FormatV2. Zero means FormatV2, the default since the columnar
	// layout landed; readers dispatch on the magic either way.
	Format int
	// AggField is the payload byte offset of the big-endian uint64 field
	// the v2 pre-aggregate block summarizes (default 0 — the payload's
	// leading field).
	AggField uint32
	// DisableAgg omits the v2 pre-aggregate block (ablation switch).
	DisableAgg bool
}

func (o *BuildOptions) fill() {
	if o.BucketMillis <= 0 {
		o.BucketMillis = 1000
	}
	if o.FPRate <= 0 || o.FPRate >= 1 {
		o.FPRate = 0.01
	}
	if o.Format == 0 {
		o.Format = FormatV2
	}
}

// LeafInfo locates one leaf inside the chunk body.
type LeafInfo struct {
	// Offset/Length are absolute byte positions within the chunk.
	Offset, Length int64
	// Count is the number of tuples in the leaf.
	Count int
	// MinT/MaxT bound the leaf's timestamps (valid when Count > 0).
	MinT, MaxT model.Timestamp
}

// Meta summarizes a chunk for the metadata server.
type Meta struct {
	Count            int
	MinTime, MaxTime model.Timestamp
	Keys             model.KeyRange
	Leaves           int
	// HeaderLen is the byte length of the header block.
	HeaderLen int
	// Size is the total chunk size in bytes.
	Size int64
	// Format is the chunk format version written (FormatV1 or FormatV2).
	Format int
	// Agg summarizes the designated aggregate field over the whole chunk
	// (v2 with pre-aggregates only; nil otherwise). Registered with the
	// chunk's metadata so the coordinator can answer aggregate subqueries
	// over fully covered chunks without dispatching them.
	Agg *model.ChunkAgg
}

// Build serializes a flush snapshot into a chunk, returning the bytes and
// metadata. The format version comes from opts (default FormatV2).
func Build(snap *core.FlushSnapshot, opts BuildOptions) ([]byte, Meta, error) {
	if snap == nil || snap.Count == 0 {
		return nil, Meta{}, errors.New("chunk: empty snapshot")
	}
	opts.fill()
	switch opts.Format {
	case FormatV1:
		return buildV1(snap, opts)
	case FormatV2:
		return buildV2(snap, opts)
	}
	return nil, Meta{}, fmt.Errorf("%w: cannot build format %d", ErrUnsupportedVersion, opts.Format)
}

// buildV1 serializes the original row layout.
func buildV1(snap *core.FlushSnapshot, opts BuildOptions) ([]byte, Meta, error) {
	nLeaves := len(snap.Leaves)

	// Encode leaf bodies and collect directory info.
	dir := make([]LeafInfo, nLeaves)
	sketches := make([][]byte, nLeaves)
	secondary := make([][]byte, nLeaves)
	var body []byte
	for i := range snap.Leaves {
		n := snap.Leaves[i].Len()
		start := len(body)
		info := LeafInfo{Count: n}
		if n > 0 {
			info.MinT, info.MaxT = snap.Leaves[i].Times[0], snap.Leaves[i].Times[0]
		}
		var sk *bloom.TimeSketch
		if !opts.DisableBloom && n > 0 {
			est := n/4 + 16
			sk = bloom.NewTimeSketch(opts.BucketMillis, est, opts.FPRate)
		}
		var sec *bloom.Filter
		if opts.Secondary != nil && n > 0 {
			sec = bloom.NewWithEstimates(n, opts.FPRate)
		}
		// The v1 row layout interleaves key/time/payload per tuple, so this
		// is the one build path that materializes tuples from the columns
		// (via the counted EachTuple iterator).
		snap.EachTuple(i, func(e model.Tuple) bool {
			body = model.AppendTuple(body, &e)
			if e.Time < info.MinT {
				info.MinT = e.Time
			}
			if e.Time > info.MaxT {
				info.MaxT = e.Time
			}
			if sk != nil {
				sk.AddTime(int64(e.Time))
			}
			if sec != nil {
				if v, ok := payloadU64(e.Payload, opts.Secondary.Offset); ok {
					sec.Add(v)
				}
			}
			return true
		})
		info.Length = int64(len(body) - start)
		dir[i] = info // Offset fixed up after the header size is known.
		if sk != nil {
			sketches[i] = sk.AppendTo(nil)
		}
		if sec != nil {
			secondary[i] = sec.AppendTo(nil)
		}
	}

	// Header size: magic(8) + hlen(4) + count(8) + minT(8) + maxT(8) +
	// keyLo(8) + keyHi(8) + nLeaves(4) + flags(1) + bounds + dir + sketches.
	const fixed = 8 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 1
	hlen := fixed + (nLeaves-1)*8 + nLeaves*36
	for _, s := range sketches {
		hlen += 4 + len(s)
	}
	if opts.Secondary != nil {
		hlen += 4 // attribute offset
		for _, s := range secondary {
			hlen += 4 + len(s)
		}
	}
	// Fix up absolute leaf offsets.
	off := int64(hlen)
	for i := range dir {
		dir[i].Offset = off
		off += dir[i].Length
	}

	out := make([]byte, 0, hlen+len(body))
	out = append(out, magicV1[:]...)
	out = appendU32(out, uint32(hlen))
	out = appendU64(out, uint64(snap.Count))
	out = appendU64(out, uint64(snap.MinTime))
	out = appendU64(out, uint64(snap.MaxTime))
	out = appendU64(out, uint64(snap.Keys.Lo))
	out = appendU64(out, uint64(snap.Keys.Hi))
	out = appendU32(out, uint32(nLeaves))
	flags := byte(0)
	if !opts.DisableBloom {
		flags |= flagBloom
	}
	if opts.Secondary != nil {
		flags |= flagSecondary
	}
	out = append(out, flags)
	for _, b := range snap.Bounds {
		out = appendU64(out, uint64(b))
	}
	for _, d := range dir {
		out = appendU64(out, uint64(d.Offset))
		out = appendU64(out, uint64(d.Length))
		out = appendU32(out, uint32(d.Count))
		out = appendU64(out, uint64(d.MinT))
		out = appendU64(out, uint64(d.MaxT))
	}
	for _, s := range sketches {
		out = appendU32(out, uint32(len(s)))
		out = append(out, s...)
	}
	if opts.Secondary != nil {
		out = appendU32(out, opts.Secondary.Offset)
		for _, s := range secondary {
			out = appendU32(out, uint32(len(s)))
			out = append(out, s...)
		}
	}
	if len(out) != hlen {
		return nil, Meta{}, fmt.Errorf("chunk: header size miscomputed: %d != %d", len(out), hlen)
	}
	out = append(out, body...)

	meta := Meta{
		Count:     snap.Count,
		MinTime:   snap.MinTime,
		MaxTime:   snap.MaxTime,
		Keys:      snap.Keys,
		Leaves:    nLeaves,
		HeaderLen: hlen,
		Size:      int64(len(out)),
		Format:    FormatV1,
	}
	return out, meta, nil
}

func appendU32(b []byte, v uint32) []byte {
	var t [4]byte
	binary.BigEndian.PutUint32(t[:], v)
	return append(b, t[:]...)
}

func appendU64(b []byte, v uint64) []byte {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], v)
	return append(b, t[:]...)
}

// Header is the parsed header block of a chunk — the "template" caching
// unit of the query servers.
type Header struct {
	Meta
	// Bounds are the leaf separators (len = Leaves-1).
	Bounds []model.Key
	// Dir locates each leaf.
	Dir []LeafInfo
	// Sketches holds each leaf's time sketch (nil entries when bloom is
	// disabled or the leaf is empty).
	Sketches []*bloom.TimeSketch
	// SecondaryOffset is the payload offset of the secondary-indexed
	// attribute; valid only when HasSecondary.
	SecondaryOffset uint32
	// HasSecondary reports whether per-leaf secondary filters exist.
	HasSecondary bool
	// SecondaryFilters holds each leaf's secondary attribute filter (nil
	// for empty leaves or when the index is absent).
	SecondaryFilters []*bloom.Filter
	// LeafKeys bounds each leaf's keys exactly (v2 only; nil for v1).
	// Entries of empty leaves are zero and must be gated on Dir.Count.
	LeafKeys []model.KeyRange
	// HasAgg reports whether the v2 pre-aggregate block is present.
	HasAgg bool
	// AggField is the payload offset of the pre-aggregated uint64 field;
	// valid only when HasAgg.
	AggField uint32
	// LeafAggs holds each leaf's pre-aggregate buckets (len = Leaves when
	// HasAgg; nil otherwise).
	LeafAggs []LeafAgg
}

// payloadU64 extracts the big-endian uint64 at the given payload offset.
func payloadU64(p []byte, off uint32) (uint64, bool) {
	if int(off)+8 > len(p) {
		return 0, false
	}
	return binary.BigEndian.Uint64(p[off : off+8]), true
}

// PeekHeaderLen returns the header block length from a chunk prefix of at
// least 12 bytes, so a reader can fetch exactly the header. It dispatches
// on the magic: any supported format version parses, an unknown version
// returns ErrUnsupportedVersion.
func PeekHeaderLen(prefix []byte) (int, error) {
	if len(prefix) < 12 {
		return 0, fmt.Errorf("%w: short prefix", ErrCorrupt)
	}
	if _, err := formatOf(prefix); err != nil {
		return 0, err
	}
	return int(binary.BigEndian.Uint32(prefix[8:12])), nil
}

// ParseHeader decodes the header block (buf must hold at least HeaderLen
// bytes) of any supported format version, dispatching on the magic.
func ParseHeader(buf []byte) (*Header, error) {
	hlen, err := PeekHeaderLen(buf)
	if err != nil {
		return nil, err
	}
	format, _ := formatOf(buf)
	if len(buf) < hlen {
		return nil, fmt.Errorf("%w: header truncated (%d < %d)", ErrCorrupt, len(buf), hlen)
	}
	const fixed = 8 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 1
	if hlen < fixed {
		return nil, fmt.Errorf("%w: header too small", ErrCorrupt)
	}
	h := &Header{}
	h.Format = format
	h.HeaderLen = hlen
	h.Count = int(binary.BigEndian.Uint64(buf[12:20]))
	h.MinTime = model.Timestamp(binary.BigEndian.Uint64(buf[20:28]))
	h.MaxTime = model.Timestamp(binary.BigEndian.Uint64(buf[28:36]))
	h.Keys.Lo = model.Key(binary.BigEndian.Uint64(buf[36:44]))
	h.Keys.Hi = model.Key(binary.BigEndian.Uint64(buf[44:52]))
	nLeaves := int(binary.BigEndian.Uint32(buf[52:56]))
	flags := buf[56]
	h.Leaves = nLeaves
	if nLeaves < 1 || nLeaves > 1<<24 {
		return nil, fmt.Errorf("%w: leaf count %d", ErrCorrupt, nLeaves)
	}
	known := byte(flagBloom | flagSecondary)
	if format >= FormatV2 {
		known |= flagAgg
	}
	if flags&^known != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrCorrupt, flags&^known)
	}
	pos := fixed
	need := pos + (nLeaves-1)*8 + nLeaves*36
	if format >= FormatV2 {
		need += nLeaves * 16 // per-leaf key bounds
	}
	if hlen < need {
		return nil, fmt.Errorf("%w: directory truncated", ErrCorrupt)
	}
	h.Bounds = make([]model.Key, nLeaves-1)
	for i := range h.Bounds {
		h.Bounds[i] = model.Key(binary.BigEndian.Uint64(buf[pos:]))
		pos += 8
	}
	h.Dir = make([]LeafInfo, nLeaves)
	var totalLen int64
	expectOff := int64(hlen)
	for i := range h.Dir {
		h.Dir[i].Offset = int64(binary.BigEndian.Uint64(buf[pos:]))
		h.Dir[i].Length = int64(binary.BigEndian.Uint64(buf[pos+8:]))
		h.Dir[i].Count = int(binary.BigEndian.Uint32(buf[pos+16:]))
		h.Dir[i].MinT = model.Timestamp(binary.BigEndian.Uint64(buf[pos+20:]))
		h.Dir[i].MaxT = model.Timestamp(binary.BigEndian.Uint64(buf[pos+28:]))
		pos += 36
		// Leaf extents must tile the body contiguously in order; anything
		// else is corruption that must not reach the read path.
		if h.Dir[i].Length < 0 || h.Dir[i].Offset != expectOff {
			return nil, fmt.Errorf("%w: leaf %d extent [%d,+%d) breaks body tiling at %d",
				ErrCorrupt, i, h.Dir[i].Offset, h.Dir[i].Length, expectOff)
		}
		expectOff += h.Dir[i].Length
		totalLen += h.Dir[i].Length
	}
	h.Size = int64(hlen) + totalLen
	if format >= FormatV2 {
		h.LeafKeys = make([]model.KeyRange, nLeaves)
		for i := range h.LeafKeys {
			h.LeafKeys[i].Lo = model.Key(binary.BigEndian.Uint64(buf[pos:]))
			h.LeafKeys[i].Hi = model.Key(binary.BigEndian.Uint64(buf[pos+8:]))
			pos += 16
			if h.Dir[i].Count > 0 && h.LeafKeys[i].Lo > h.LeafKeys[i].Hi {
				return nil, fmt.Errorf("%w: leaf %d key bounds inverted", ErrCorrupt, i)
			}
		}
	}
	h.Sketches = make([]*bloom.TimeSketch, nLeaves)
	if flags&flagBloom != 0 {
		for i := 0; i < nLeaves; i++ {
			if pos+4 > hlen {
				return nil, fmt.Errorf("%w: sketch block truncated", ErrCorrupt)
			}
			slen := int(binary.BigEndian.Uint32(buf[pos:]))
			pos += 4
			if slen == 0 {
				continue
			}
			if pos+slen > hlen {
				return nil, fmt.Errorf("%w: sketch truncated", ErrCorrupt)
			}
			sk, _, err := bloom.DecodeTimeSketch(buf[pos : pos+slen])
			if err != nil {
				return nil, fmt.Errorf("%w: sketch %d: %v", ErrCorrupt, i, err)
			}
			h.Sketches[i] = sk
			pos += slen
		}
	}
	h.SecondaryFilters = make([]*bloom.Filter, nLeaves)
	if flags&flagSecondary != 0 {
		if pos+4 > hlen {
			return nil, fmt.Errorf("%w: secondary offset truncated", ErrCorrupt)
		}
		h.SecondaryOffset = binary.BigEndian.Uint32(buf[pos:])
		h.HasSecondary = true
		pos += 4
		for i := 0; i < nLeaves; i++ {
			if pos+4 > hlen {
				return nil, fmt.Errorf("%w: secondary block truncated", ErrCorrupt)
			}
			slen := int(binary.BigEndian.Uint32(buf[pos:]))
			pos += 4
			if slen == 0 {
				continue
			}
			if pos+slen > hlen {
				return nil, fmt.Errorf("%w: secondary filter truncated", ErrCorrupt)
			}
			f, _, err := bloom.Decode(buf[pos : pos+slen])
			if err != nil {
				return nil, fmt.Errorf("%w: secondary filter %d: %v", ErrCorrupt, i, err)
			}
			h.SecondaryFilters[i] = f
			pos += slen
		}
	}
	if flags&flagAgg != 0 {
		n, err := parseAggBlock(h, buf[:hlen], pos)
		if err != nil {
			return nil, err
		}
		pos = n
	}
	return h, nil
}

// SelectLeaves returns the indices of leaves a subquery must read for the
// given key and time ranges, plus the number of key-overlapping leaves that
// were pruned (by leaf time bounds or bloom sketches). Set useBloom=false
// to ablate sketch pruning.
func (h *Header) SelectLeaves(kr model.KeyRange, tr model.TimeRange, useBloom bool) (read []int, pruned int) {
	return h.SelectLeavesFor(kr, tr, useBloom, nil)
}

// SelectLeavesFor extends SelectLeaves with an optional secondary
// equality value: when the chunk carries a secondary attribute index and
// secEQ is non-nil, leaves whose secondary filter cannot contain *secEQ
// are pruned as well.
func (h *Header) SelectLeavesFor(kr model.KeyRange, tr model.TimeRange, useBloom bool, secEQ *uint64) (read []int, pruned int) {
	if !kr.IsValid() || !tr.IsValid() {
		return nil, 0
	}
	lo := sort.Search(len(h.Bounds), func(i int) bool { return kr.Lo < h.Bounds[i] })
	for i := lo; i < h.Leaves; i++ {
		if i > 0 && h.Bounds[i-1] > kr.Hi {
			break
		}
		d := h.Dir[i]
		if d.Count == 0 {
			continue
		}
		if d.MaxT < tr.Lo || d.MinT > tr.Hi {
			pruned++
			continue
		}
		if useBloom && h.Sketches[i] != nil && !h.Sketches[i].MayOverlap(int64(tr.Lo), int64(tr.Hi)) {
			pruned++
			continue
		}
		if secEQ != nil && h.HasSecondary && h.SecondaryFilters[i] != nil && !h.SecondaryFilters[i].MayContain(*secEQ) {
			pruned++
			continue
		}
		read = append(read, i)
	}
	return read, pruned
}

// DecodeLeaf decodes the tuples of leaf li (body holds the bytes at
// Dir[li].Offset..+Length), dispatching on the chunk format. Payloads
// alias body. The result is pre-sized from the directory's tuple count.
func (h *Header) DecodeLeaf(li int, body []byte) ([]model.Tuple, error) {
	if h.Format == FormatV1 {
		return model.DecodeTuplesInto(make([]model.Tuple, 0, h.Dir[li].Count), body)
	}
	var cols LeafColumns
	if err := h.DecodeColumns(li, body, &cols); err != nil {
		return nil, err
	}
	out := make([]model.Tuple, len(cols.Keys))
	for j := range out {
		out[j] = model.Tuple{
			Key:     cols.Keys[j],
			Time:    cols.Times[j],
			Payload: cols.Payload[cols.Starts[j]:cols.Starts[j+1]],
		}
	}
	return out, nil
}

// ScanLeaf visits leaf li's tuples matching the ranges and filter in key
// order, stopping early when fn returns false — dispatching on the chunk
// format (row decode for v1, columnar for v2). Payloads alias body.
func (h *Header) ScanLeaf(li int, body []byte, kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool) error {
	var cols LeafColumns
	return h.ScanLeafWith(&cols, li, body, kr, tr, filter, fn)
}

// ScanLeafWith is ScanLeaf with caller-owned column scratch, so a
// multi-leaf scan decodes every leaf into the same buffers. One tuple
// value is reused across the whole scan — callers must not retain the
// pointer past the callback (payloads alias body either way).
func (h *Header) ScanLeafWith(cols *LeafColumns, li int, body []byte, kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool) error {
	var t model.Tuple
	return h.ScanLeafColsWith(cols, li, body, kr, tr, filter, func(k model.Key, ts model.Timestamp, p []byte) bool {
		t.Key, t.Time, t.Payload = k, ts, p
		return fn(&t)
	})
}

// ScanLeafColsWith visits leaf li's matching tuples as raw (key, time,
// payload) columns — the allocation-free scan primitive under ScanLeafWith
// and the aggregate executor. Payloads alias body; filters evaluate
// against the columns directly, so no model.Tuple is built anywhere on
// this path.
func (h *Header) ScanLeafColsWith(cols *LeafColumns, li int, body []byte, kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(model.Key, model.Timestamp, []byte) bool) error {
	if h.Format == FormatV1 {
		return scanLeafV1Cols(body, kr, tr, filter, fn)
	}
	if err := h.DecodeColumns(li, body, cols); err != nil {
		return err
	}
	n := len(cols.Keys)
	// Leaves are key-sorted: binary-search the first candidate, stop past
	// the range. The column scan touches only key/time words until a tuple
	// matches — no per-tuple header decode.
	lo := sort.Search(n, func(j int) bool { return cols.Keys[j] >= kr.Lo })
	for j := lo; j < n; j++ {
		if cols.Keys[j] > kr.Hi {
			return nil
		}
		if cols.Times[j] < tr.Lo || cols.Times[j] > tr.Hi {
			continue
		}
		p := cols.Payload[cols.Starts[j]:cols.Starts[j+1]]
		if !filter.MatchesCols(cols.Keys[j], cols.Times[j], p) {
			continue
		}
		if !fn(cols.Keys[j], cols.Times[j], p) {
			return nil
		}
	}
	return nil
}

// ScanLeaf visits a v1 row-encoded leaf's tuples matching the ranges and
// filter in key order, stopping early when fn returns false. It decodes
// incrementally, skipping payload copies for non-matching tuples. One
// tuple value is reused across the scan.
func ScanLeaf(buf []byte, kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(*model.Tuple) bool) error {
	var t model.Tuple
	return scanLeafV1Cols(buf, kr, tr, filter, func(k model.Key, ts model.Timestamp, p []byte) bool {
		t.Key, t.Time, t.Payload = k, ts, p
		return fn(&t)
	})
}

// scanLeafV1Cols is the raw-column visitor over a v1 row-encoded leaf.
func scanLeafV1Cols(buf []byte, kr model.KeyRange, tr model.TimeRange, filter *model.Filter, fn func(model.Key, model.Timestamp, []byte) bool) error {
	for len(buf) > 0 {
		t, n, err := model.DecodeTuple(buf)
		if err != nil {
			return err
		}
		buf = buf[n:]
		if t.Key > kr.Hi {
			return nil // leaf is key-sorted; nothing further matches
		}
		if t.Key < kr.Lo || t.Time < tr.Lo || t.Time > tr.Hi || !filter.MatchesCols(t.Key, t.Time, t.Payload) {
			continue
		}
		if !fn(t.Key, t.Time, t.Payload) {
			return nil
		}
	}
	return nil
}
