// Pre-aggregate block (v2, flagAgg): per-leaf, per-time-mini-range
// summaries of a designated big-endian uint64 payload field, sitting in
// the header next to the bloom sketches. An aggregate subquery answers
// fully covered leaves from these buckets without touching the leaf body,
// and shrinks the scan window of boundary leaves to the uncovered buckets.
//
// Serialized layout, after the secondary-filter section:
//
//	[4B field offset]
//	nLeaves × [8B bucket width (ms)][8B first bucket start][4B nBuckets]
//	          nBuckets × [4B count][4B values][8B min][8B max][8B sum]
//
// Buckets tile [First, First+Width×len(Buckets)); bucket b covers
// [First+b×Width, First+(b+1)×Width). Width starts at the sketch
// mini-range width and doubles until a leaf needs at most maxAggBuckets
// buckets, bounding the header cost per leaf.
package chunk

import (
	"encoding/binary"
	"fmt"

	"waterwheel/internal/core"
	"waterwheel/internal/model"
)

// maxAggBuckets caps the pre-aggregate buckets per leaf.
const maxAggBuckets = 16

// aggBucketSize and aggLeafFixed are the serialized sizes.
const (
	aggBucketSize = 4 + 4 + 8 + 8 + 8
	aggLeafFixed  = 8 + 8 + 4
)

// AggBucket summarizes the tuples of one time mini-range of a leaf.
type AggBucket struct {
	// Count is the number of tuples in the bucket.
	Count uint32
	// Values is the number of tuples carrying the aggregate field.
	Values uint32
	Min    uint64
	Max    uint64
	Sum    uint64
}

// LeafAgg is one leaf's pre-aggregate block. Empty leaves have no buckets.
type LeafAgg struct {
	// Width is the bucket width in milliseconds (> 0 when buckets exist).
	Width int64
	// First is the start of bucket 0, aligned down to a Width multiple.
	First int64
	// Buckets tile the leaf's time range.
	Buckets []AggBucket
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// buildLeafAgg folds a leaf's columns into time buckets.
func buildLeafAgg(lc *core.LeafCols, field uint32, width, minT, maxT int64) LeafAgg {
	if width <= 0 {
		width = 1000
	}
	first := floorDiv(minT, width) * width
	for (maxT-first)/width+1 > maxAggBuckets {
		width *= 2
		first = floorDiv(minT, width) * width
	}
	la := LeafAgg{
		Width:   width,
		First:   first,
		Buckets: make([]AggBucket, (maxT-first)/width+1),
	}
	for j := range lc.Times {
		b := &la.Buckets[(int64(lc.Times[j])-first)/width]
		b.Count++
		if v, ok := payloadU64(lc.Payload(j), field); ok {
			if b.Values == 0 || v < b.Min {
				b.Min = v
			}
			if b.Values == 0 || v > b.Max {
				b.Max = v
			}
			b.Values++
			b.Sum += v
		}
	}
	return la
}

// aggBlockSize returns the serialized size of the pre-aggregate block.
func aggBlockSize(leafAggs []LeafAgg) int {
	n := 4 + len(leafAggs)*aggLeafFixed
	for i := range leafAggs {
		n += len(leafAggs[i].Buckets) * aggBucketSize
	}
	return n
}

// appendAggBlock serializes the pre-aggregate block.
func appendAggBlock(out []byte, field uint32, leafAggs []LeafAgg) []byte {
	out = appendU32(out, field)
	for i := range leafAggs {
		la := &leafAggs[i]
		out = appendU64(out, uint64(la.Width))
		out = appendU64(out, uint64(la.First))
		out = appendU32(out, uint32(len(la.Buckets)))
		for _, b := range la.Buckets {
			out = appendU32(out, b.Count)
			out = appendU32(out, b.Values)
			out = appendU64(out, b.Min)
			out = appendU64(out, b.Max)
			out = appendU64(out, b.Sum)
		}
	}
	return out
}

// parseAggBlock decodes the pre-aggregate block at pos, returning the new
// position.
func parseAggBlock(h *Header, buf []byte, pos int) (int, error) {
	if pos+4 > len(buf) {
		return 0, fmt.Errorf("%w: agg block truncated", ErrCorrupt)
	}
	h.AggField = binary.BigEndian.Uint32(buf[pos:])
	h.HasAgg = true
	pos += 4
	h.LeafAggs = make([]LeafAgg, h.Leaves)
	for i := range h.LeafAggs {
		if pos+aggLeafFixed > len(buf) {
			return 0, fmt.Errorf("%w: agg leaf %d truncated", ErrCorrupt, i)
		}
		la := &h.LeafAggs[i]
		la.Width = int64(binary.BigEndian.Uint64(buf[pos:]))
		la.First = int64(binary.BigEndian.Uint64(buf[pos+8:]))
		nb := int(binary.BigEndian.Uint32(buf[pos+16:]))
		pos += aggLeafFixed
		// Bound the allocation by the remaining header bytes before making
		// the slice: a corrupt count must not OOM.
		if nb < 0 || pos+nb*aggBucketSize > len(buf) {
			return 0, fmt.Errorf("%w: agg leaf %d bucket count %d", ErrCorrupt, i, nb)
		}
		if nb > 0 && la.Width <= 0 {
			return 0, fmt.Errorf("%w: agg leaf %d bucket width %d", ErrCorrupt, i, la.Width)
		}
		la.Buckets = make([]AggBucket, nb)
		for j := range la.Buckets {
			b := &la.Buckets[j]
			b.Count = binary.BigEndian.Uint32(buf[pos:])
			b.Values = binary.BigEndian.Uint32(buf[pos+4:])
			b.Min = binary.BigEndian.Uint64(buf[pos+8:])
			b.Max = binary.BigEndian.Uint64(buf[pos+16:])
			b.Sum = binary.BigEndian.Uint64(buf[pos+24:])
			pos += aggBucketSize
		}
	}
	return pos, nil
}

// foldBucket folds one bucket into a partial, optionally counts only.
func foldBucket(agg *model.AggPartial, b *AggBucket, countOnly bool) {
	agg.Count += uint64(b.Count)
	if countOnly || b.Values == 0 {
		return
	}
	if agg.Values == 0 || b.Min < agg.Min {
		agg.Min = b.Min
	}
	if agg.Values == 0 || b.Max > agg.Max {
		agg.Max = b.Max
	}
	agg.Values += uint64(b.Values)
	agg.Sum += b.Sum
}

// FoldLeafAggAll folds every bucket of leaf li into agg — exact when the
// query's time range covers the leaf's whole [MinT, MaxT] (every tuple in
// every bucket matches, even where edge buckets overhang the range).
// Returns false when the leaf has no pre-aggregates.
func (h *Header) FoldLeafAggAll(li int, countOnly bool, agg *model.AggPartial) bool {
	if !h.HasAgg || len(h.LeafAggs[li].Buckets) == 0 {
		return false
	}
	for j := range h.LeafAggs[li].Buckets {
		foldBucket(agg, &h.LeafAggs[li].Buckets[j], countOnly)
	}
	return true
}

// FoldLeafAgg folds the buckets of leaf li that lie fully inside tr into
// agg, returning the bucket-aligned window that was folded. The caller
// must scan the rest of the leaf excluding that window. ok is false (and
// nothing is folded) when no bucket fits inside tr.
func (h *Header) FoldLeafAgg(li int, tr model.TimeRange, countOnly bool, agg *model.AggPartial) (folded model.TimeRange, ok bool) {
	if !h.HasAgg {
		return model.TimeRange{}, false
	}
	la := &h.LeafAggs[li]
	if len(la.Buckets) == 0 {
		return model.TimeRange{}, false
	}
	w := la.Width
	// First bucket starting at or after tr.Lo; last bucket ending at or
	// before tr.Hi (bucket b spans [First+b·w, First+(b+1)·w − 1]).
	bLo := floorDiv(int64(tr.Lo)-la.First+w-1, w)
	bHi := floorDiv(int64(tr.Hi)-la.First+1, w) - 1
	if bLo < 0 {
		bLo = 0
	}
	if bHi > int64(len(la.Buckets)-1) {
		bHi = int64(len(la.Buckets) - 1)
	}
	if bLo > bHi {
		return model.TimeRange{}, false
	}
	for b := bLo; b <= bHi; b++ {
		foldBucket(agg, &la.Buckets[b], countOnly)
	}
	return model.TimeRange{
		Lo: model.Timestamp(la.First + bLo*w),
		Hi: model.Timestamp(la.First + (bHi+1)*w - 1),
	}, true
}

// AggregateLeaf scans leaf li, folding matching tuples into agg. Tuples
// inside the exclude window (already folded from pre-aggregate buckets)
// are skipped; pass nil when nothing was folded. exclude must only be used
// when the leaf's keys are fully covered and the filter is nil — the
// bucket fold it complements has no key or predicate resolution.
func (h *Header) AggregateLeaf(li int, body []byte, cols *LeafColumns, kr model.KeyRange, tr model.TimeRange, filter *model.Filter, exclude *model.TimeRange, field uint32, countOnly bool, agg *model.AggPartial) error {
	return h.ScanLeafColsWith(cols, li, body, kr, tr, filter, func(_ model.Key, ts model.Timestamp, p []byte) bool {
		if exclude != nil && ts >= exclude.Lo && ts <= exclude.Hi {
			return true
		}
		agg.Count++
		if !countOnly {
			if v, ok := payloadU64(p, field); ok {
				agg.AddValue(v)
			}
		}
		return true
	})
}
