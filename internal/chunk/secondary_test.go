package chunk

import (
	"encoding/binary"
	"testing"

	"waterwheel/internal/core"
	"waterwheel/internal/model"
)

// buildSecondarySnapshot creates a snapshot where each leaf's tuples carry
// a distinct secondary attribute value (= leaf index), so secondary
// pruning has clean expectations.
func buildSecondarySnapshot(t *testing.T) *core.FlushSnapshot {
	t.Helper()
	tree := core.NewTemplateTree(core.TemplateConfig{
		Keys: model.KeyRange{Lo: 0, Hi: 1600}, Leaves: 8,
	})
	for i := 0; i < 1600; i++ {
		leafIdx := uint64(i) / 200 // keys 0..1599 spread evenly over 8 leaves
		payload := make([]byte, 8)
		binary.BigEndian.PutUint64(payload, leafIdx)
		tree.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i), Payload: payload})
	}
	snap := tree.FlushReset()
	if snap == nil {
		t.Fatal("nil snapshot")
	}
	return snap
}

func TestSecondaryIndexRoundTrip(t *testing.T) {
	snap := buildSecondarySnapshot(t)
	data, _, err := Build(snap, BuildOptions{Secondary: &SecondarySpec{Offset: 0}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasSecondary || h.SecondaryOffset != 0 {
		t.Fatalf("secondary metadata lost: has=%v off=%d", h.HasSecondary, h.SecondaryOffset)
	}
	nonNil := 0
	for _, f := range h.SecondaryFilters {
		if f != nil {
			nonNil++
		}
	}
	if nonNil == 0 {
		t.Fatal("no secondary filters decoded")
	}
}

func TestSecondaryPruning(t *testing.T) {
	snap := buildSecondarySnapshot(t)
	data, _, err := Build(snap, BuildOptions{Secondary: &SecondarySpec{Offset: 0}})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := ParseHeader(data)

	// Value 3 lives only in one leaf's key range; over the full key range
	// most leaves must be pruned by the secondary filter.
	v := uint64(3)
	read, pruned := h.SelectLeavesFor(model.FullKeyRange(), model.FullTimeRange(), true, &v)
	if len(read) == 0 {
		t.Fatal("secondary pruning removed the containing leaf (false negative)")
	}
	if len(read) > 2 { // bloom false positives may keep an extra leaf
		t.Fatalf("secondary pruning kept %d leaves, want ~1", len(read))
	}
	if pruned < 6 {
		t.Fatalf("pruned %d, want >= 6", pruned)
	}
	// The kept leaf actually contains the value.
	found := false
	for _, li := range read {
		d := h.Dir[li]
		h.ScanLeaf(li, data[d.Offset:d.Offset+d.Length], model.FullKeyRange(), model.FullTimeRange(),
			model.PayloadU64(0, model.CmpEQ, v), func(*model.Tuple) bool {
				found = true
				return false
			})
	}
	if !found {
		t.Fatal("kept leaves do not contain the value")
	}
	// A value no tuple carries prunes everything (modulo false positives).
	missing := uint64(999)
	read, _ = h.SelectLeavesFor(model.FullKeyRange(), model.FullTimeRange(), true, &missing)
	if len(read) > 1 {
		t.Fatalf("missing value kept %d leaves", len(read))
	}
	// nil secEQ leaves everything in place.
	read, _ = h.SelectLeavesFor(model.FullKeyRange(), model.FullTimeRange(), true, nil)
	if len(read) != 8 {
		t.Fatalf("nil secondary pruned: %d leaves", len(read))
	}
}

func TestSecondaryAbsentIsIgnored(t *testing.T) {
	snap := buildSecondarySnapshot(t)
	data, _, err := Build(snap, BuildOptions{}) // no secondary index
	if err != nil {
		t.Fatal(err)
	}
	h, _ := ParseHeader(data)
	if h.HasSecondary {
		t.Fatal("phantom secondary index")
	}
	v := uint64(3)
	read, _ := h.SelectLeavesFor(model.FullKeyRange(), model.FullTimeRange(), true, &v)
	if len(read) != 8 {
		t.Fatalf("secondary pruning applied without an index: %d leaves", len(read))
	}
}

func TestSecondaryShortPayloadsSkipped(t *testing.T) {
	// Tuples whose payload is too short for the attribute simply don't
	// enter the filter; building must not panic and queries for any value
	// prune those leaves.
	tree := core.NewTemplateTree(core.TemplateConfig{Keys: model.KeyRange{Lo: 0, Hi: 100}, Leaves: 2})
	for i := 0; i < 100; i++ {
		tree.Insert(model.Tuple{Key: model.Key(i), Time: 0, Payload: []byte{1, 2}})
	}
	data, _, err := Build(tree.FlushReset(), BuildOptions{Secondary: &SecondarySpec{Offset: 0}})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := ParseHeader(data)
	v := uint64(42)
	read, _ := h.SelectLeavesFor(model.FullKeyRange(), model.FullTimeRange(), true, &v)
	if len(read) != 0 {
		t.Fatalf("leaves with only short payloads matched: %d", len(read))
	}
}

func TestRequiredPayloadU64EQ(t *testing.T) {
	eq := model.PayloadU64(8, model.CmpEQ, 77)
	cases := []struct {
		f    *model.Filter
		want bool
	}{
		{eq, true},
		{model.And(model.KeyCmp(model.CmpGT, 5), eq), true},
		{model.And(model.And(eq)), true},
		{model.Or(eq, model.True()), false},            // disjunct can't prune
		{model.Not(eq), false},                         // negation can't prune
		{model.PayloadU64(8, model.CmpGT, 77), false},  // not equality
		{model.PayloadU64(16, model.CmpEQ, 77), false}, // wrong offset
		{nil, false},
	}
	for i, c := range cases {
		v, ok := c.f.RequiredPayloadU64EQ(8)
		if ok != c.want {
			t.Errorf("case %d: ok=%v want %v", i, ok, c.want)
		}
		if ok && v != 77 {
			t.Errorf("case %d: v=%d", i, v)
		}
	}
}
