package chunk

import (
	"errors"
	"testing"

	"waterwheel/internal/model"
)

// decodeErrOK reports whether an error from a decode path is an accepted
// rejection class. Corrupt or truncated input must surface as ErrCorrupt
// (or the model layer's short-buffer error inside v1 row bodies), and a
// magic from the future as ErrUnsupportedVersion — anything else means a
// decode path leaked an internal failure mode.
func decodeErrOK(err error) bool {
	return errors.Is(err, ErrCorrupt) ||
		errors.Is(err, ErrUnsupportedVersion) ||
		errors.Is(err, model.ErrShortBuffer)
}

// FuzzChunkOpen throws arbitrary bytes at the whole chunk read path —
// header parse, leaf selection, row/columnar decode, scans and
// pre-aggregate folds. The invariant: malformed input is rejected with a
// typed error, never a panic, an over-read past the input, or an
// unbounded allocation. The seed corpus covers both format versions in
// every section combination, plus truncations and a future-version magic.
func FuzzChunkOpen(f *testing.F) {
	snap := buildSnapshot(f, 300, 8)
	add := func(opts BuildOptions) []byte {
		data, _, err := Build(snap, opts)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		return data
	}
	add(BuildOptions{Format: FormatV1})
	add(BuildOptions{Format: FormatV1, Secondary: &SecondarySpec{Offset: 0}, DisableBloom: true})
	v2 := add(BuildOptions{Format: FormatV2})
	add(BuildOptions{Format: FormatV2, DisableBloom: true})
	add(BuildOptions{Format: FormatV2, DisableAgg: true})
	add(BuildOptions{Format: FormatV2, Secondary: &SecondarySpec{Offset: 0}})
	// Truncations at section-ish boundaries and a v3 magic.
	f.Add(v2[:len(v2)/2])
	f.Add(v2[:57])
	f.Add(v2[:12])
	future := append([]byte(nil), v2...)
	future[7] = '3'
	f.Add(future)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHeader(data)
		if err != nil {
			if !decodeErrOK(err) {
				t.Fatalf("ParseHeader error class: %v", err)
			}
			return
		}
		// The header parsed: every downstream read must stay inside data
		// and fail typed on inconsistencies the header could not catch.
		read, _ := h.SelectLeaves(model.FullKeyRange(), model.FullTimeRange(), true)
		full := model.FullTimeRange()
		var agg model.AggPartial
		var cols LeafColumns
		for _, li := range read {
			d := h.Dir[li]
			if d.Offset < 0 || d.Length < 0 || d.Offset+d.Length > int64(len(data)) {
				// The DFS read of this extent would fail before decoding; the
				// in-memory path's job ends at not trusting these bounds.
				continue
			}
			body := data[d.Offset : d.Offset+d.Length]
			if _, err := h.DecodeLeaf(li, body); err != nil && !decodeErrOK(err) {
				t.Fatalf("DecodeLeaf(%d) error class: %v", li, err)
			}
			err := h.ScanLeafWith(&cols, li, body, model.FullKeyRange(), full, nil,
				func(*model.Tuple) bool { return true })
			if err != nil && !decodeErrOK(err) {
				t.Fatalf("ScanLeaf(%d) error class: %v", li, err)
			}
			h.FoldLeafAggAll(li, false, &agg)
			if d.Count > 0 {
				mid := model.TimeRange{Lo: d.MinT, Hi: d.MaxT}
				h.FoldLeafAgg(li, mid, false, &agg)
			}
			err = h.AggregateLeaf(li, body, &cols, model.FullKeyRange(), full, nil, nil, 0, false, &agg)
			if err != nil && !decodeErrOK(err) {
				t.Fatalf("AggregateLeaf(%d) error class: %v", li, err)
			}
		}
	})
}
