package queryexec

import (
	"math/rand"
	"sort"

	"waterwheel/internal/model"
)

// Policy plans how a query's chunk subqueries are offered to the query
// servers. Plan returns, for each server, the ordered list of subquery
// indices that server may execute. During execution each server walks its
// list, atomically claiming entries from the query's shared pending set
// (§IV-C): servers whose lists contain every subquery effectively bid for
// work (load balance); servers with disjoint lists are statically
// partitioned (and can be idle while others lag — the round-robin and
// hashing baselines of §VI-C2).
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Plan builds per-server preference lists. locations[i] holds the
	// cluster nodes storing replicas of subqueries[i]'s chunk.
	Plan(subqueries []*model.SubQuery, locations [][]int, servers []ServerPlacement) [][]int
}

// ServerPlacement describes a query server to the planner.
type ServerPlacement struct {
	ID   int
	Node int
}

// RoundRobin assigns subquery i to server i mod n — no locality, no
// stealing (paper baseline: worst of the four).
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "round-robin" }

// Plan implements Policy.
func (RoundRobin) Plan(sqs []*model.SubQuery, _ [][]int, servers []ServerPlacement) [][]int {
	pref := make([][]int, len(servers))
	for i := range sqs {
		s := i % len(servers)
		pref[s] = append(pref[s], i)
	}
	return pref
}

// Hashing assigns each subquery to the server hash(chunkID) mod n:
// consistent chunk→server mapping retains cache locality across queries,
// but without stealing the load can skew.
type Hashing struct{}

// Name implements Policy.
func (Hashing) Name() string { return "hashing" }

// Plan implements Policy.
func (Hashing) Plan(sqs []*model.SubQuery, _ [][]int, servers []ServerPlacement) [][]int {
	pref := make([][]int, len(servers))
	for i, sq := range sqs {
		s := int(mix(uint64(sq.Chunk)) % uint64(len(servers)))
		pref[s] = append(pref[s], i)
	}
	return pref
}

// SharedQueue places all subqueries in one global FIFO every server drains:
// perfect load balance, no locality.
type SharedQueue struct{}

// Name implements Policy.
func (SharedQueue) Name() string { return "shared-queue" }

// Plan implements Policy.
func (SharedQueue) Plan(sqs []*model.SubQuery, _ [][]int, servers []ServerPlacement) [][]int {
	all := make([]int, len(sqs))
	for i := range all {
		all[i] = i
	}
	pref := make([][]int, len(servers))
	for s := range pref {
		pref[s] = all
	}
	return pref
}

// LADA is the locality-aware dispatch algorithm (paper §IV-C). For each
// subquery it shuffles the co-located servers S(q) and the remaining
// servers S̄(q) with permutations seeded by the chunk ID, concatenates them
// into S⃗(q), and uses each server's offset in S⃗(q) as the rank of q in
// that server's preference array. Every server's list contains every
// subquery (bidding from the shared pending set → load balance); co-located
// servers rank first (chunk locality); the chunk-ID-seeded shuffle makes
// the preference consistent across queries yet different across servers
// (cache locality).
type LADA struct{}

// Name implements Policy.
func (LADA) Name() string { return "lada" }

// Plan implements Policy.
func (LADA) Plan(sqs []*model.SubQuery, locations [][]int, servers []ServerPlacement) [][]int {
	type ranked struct{ rank, sq int }
	perServer := make([][]ranked, len(servers))
	for i, sq := range sqs {
		coLocated := make([]int, 0, 4)
		rest := make([]int, 0, len(servers))
		nodeHasReplica := map[int]bool{}
		if i < len(locations) {
			for _, n := range locations[i] {
				nodeHasReplica[n] = true
			}
		}
		for sIdx, sp := range servers {
			if nodeHasReplica[sp.Node] {
				coLocated = append(coLocated, sIdx)
			} else {
				rest = append(rest, sIdx)
			}
		}
		rng := rand.New(rand.NewSource(int64(mix(uint64(sq.Chunk)))))
		rng.Shuffle(len(coLocated), func(a, b int) { coLocated[a], coLocated[b] = coLocated[b], coLocated[a] })
		rng.Shuffle(len(rest), func(a, b int) { rest[a], rest[b] = rest[b], rest[a] })
		vec := append(coLocated, rest...)
		for rank, sIdx := range vec {
			perServer[sIdx] = append(perServer[sIdx], ranked{rank: rank, sq: i})
		}
	}
	pref := make([][]int, len(servers))
	for sIdx, rs := range perServer {
		sort.SliceStable(rs, func(a, b int) bool { return rs[a].rank < rs[b].rank })
		lst := make([]int, len(rs))
		for j, r := range rs {
			lst[j] = r.sq
		}
		pref[sIdx] = lst
	}
	return pref
}

// mix is a 64-bit finalizer used to derive hashes and shuffle seeds from
// chunk IDs.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// PolicyByName returns the named policy, defaulting to LADA.
func PolicyByName(name string) Policy {
	switch name {
	case "round-robin", "rr":
		return RoundRobin{}
	case "hashing", "hash":
		return Hashing{}
	case "shared-queue", "shared":
		return SharedQueue{}
	default:
		return LADA{}
	}
}
