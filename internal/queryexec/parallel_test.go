package queryexec

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"waterwheel/internal/dfs"
	"waterwheel/internal/ingest"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/telemetry"
)

// metricCluster is testCluster plus a telemetry registry wired into the
// coordinator and query servers, and an optional DFS sleep hook — the
// fixture for the read-path concurrency tests.
type metricCluster struct {
	*testCluster
	reg *telemetry.Registry
	cm  *CoordinatorMetrics
	sm  *ServerMetrics
}

func newMetricCluster(t *testing.T, nIdx, nQry, nNodes int, scfg ServerConfig, lat dfs.LatencyModel, sleep func(time.Duration)) *metricCluster {
	t.Helper()
	if sleep == nil {
		sleep = func(time.Duration) {}
	}
	fs := dfs.New(dfs.Config{Nodes: nNodes, Replication: 2, Seed: 1, Latency: lat, Sleep: sleep})
	ms := meta.NewServer(nIdx)
	reg := telemetry.NewRegistry()
	cm := NewCoordinatorMetrics(reg)
	sm := NewServerMetrics(reg)
	c := &metricCluster{
		testCluster: &testCluster{fs: fs, ms: ms},
		reg:         reg, cm: cm, sm: sm,
	}
	c.coord = NewCoordinator(CoordinatorConfig{LateDeltaMillis: 1000, Metrics: cm}, ms, fs)
	for i := 0; i < nIdx; i++ {
		srv := ingest.NewServer(ingest.Config{
			ID: i, Keys: ms.Schema().IntervalOf(i), ChunkBytes: 1 << 30, Leaves: 16,
		}, fs, ms, i%nNodes)
		c.is = append(c.is, srv)
		c.coord.SetMemExecutor(i, srv)
	}
	for i := 0; i < nQry; i++ {
		cfg := scfg
		cfg.ID, cfg.Node, cfg.Metrics = i, i%nNodes, sm
		if cfg.CacheBytes == 0 {
			cfg.CacheBytes = 1 << 20
		}
		qs := NewServer(cfg, fs, ms)
		c.qs = append(c.qs, qs)
		c.coord.AddQueryServer(qs)
	}
	return c
}

// TestConcurrentMissesShareOneDFSRead pins the single-flight guarantee:
// N concurrent subqueries that all miss the same leaf extent trigger
// exactly one DFS read, with the other N-1 joining the leader's flight.
//
// The DFS sleep hook parks the flight leader inside ReadAt; the test then
// waits (via the leaf-miss counter) until every other subquery has passed
// its own cache check — so none of them can be served by the cache — and
// releases the leader. Every follower must then share the flight.
func TestConcurrentMissesShareOneDFSRead(t *testing.T) {
	var armed atomic.Bool
	gate := make(chan struct{})
	arrived := make(chan struct{}, 32)
	sleep := func(time.Duration) {
		if armed.Load() {
			arrived <- struct{}{}
			<-gate
		}
	}
	c := newMetricCluster(t, 1, 1, 1, ServerConfig{}, dfs.LatencyModel{}, sleep)
	c.ingest(seqTuples(512, 1<<55, 1000))
	c.flushAll()
	s := c.qs[0]

	ci, ok := c.ms.Chunk(model.ChunkID(1))
	if !ok {
		t.Fatal("chunk 1 not registered")
	}
	// Warm the header so the gated flight below is the leaf extent read.
	h, _, _, err := s.header(ci)
	if err != nil {
		t.Fatal(err)
	}
	nLeaves := int64(len(h.Dir))

	sq := &model.SubQuery{
		QueryID: 1, Region: model.FullRegion(), Chunk: ci.ID,
		ChunkPath: ci.Path, ChunkHeaderLen: ci.HeaderLen,
	}
	const callers = 6
	readsBefore := c.fs.Metrics().Reads.Load()
	dedupBefore := c.sm.SingleFlightDedup.Value()
	missBefore := c.sm.LeafMisses.Value()

	armed.Store(true)
	var wg sync.WaitGroup
	results := make([]*model.Result, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.ExecuteSubQuery(sq)
		}(i)
	}
	// The extent leader parks in ReadAt. All subqueries want the same
	// (single, fully coalesced) extent, so once every caller has recorded
	// its leaf misses the cache can no longer satisfy any of them.
	<-arrived
	wantMisses := missBefore + int64(callers)*nLeaves
	for c.sm.LeafMisses.Value() < wantMisses {
		time.Sleep(100 * time.Microsecond)
	}
	time.Sleep(10 * time.Millisecond) // let the last misses reach flights.Do
	armed.Store(false)
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
		if got := len(results[i].Tuples); got != 512 {
			t.Fatalf("caller %d: %d tuples, want 512", i, got)
		}
	}
	if reads := c.fs.Metrics().Reads.Load() - readsBefore; reads != 1 {
		t.Errorf("concurrent identical misses issued %d DFS reads, want 1", reads)
	}
	if dedups := c.sm.SingleFlightDedup.Value() - dedupBefore; dedups != callers-1 {
		t.Errorf("single-flight dedups = %d, want %d", dedups, callers-1)
	}
	// Exactly one caller paid the bytes; followers report zero.
	var paid int
	for _, r := range results {
		if r.BytesRead > 0 {
			paid++
		}
	}
	if paid != 1 {
		t.Errorf("%d callers reported BytesRead > 0, want 1", paid)
	}
}

// TestConcurrentQueriesWithServerChurn storms the dispatch engine: many
// concurrent Executes race mid-query Fail/Recover cycles on all but one
// query server. Every query must settle with complete, sorted results,
// and the failures must surface as redispatches, not lost subqueries.
func TestConcurrentQueriesWithServerChurn(t *testing.T) {
	// A small real DFS open delay widens the window in which a server can
	// fail mid-subquery, so redispatches actually happen.
	sleep := func(d time.Duration) { time.Sleep(d / 64) }
	lat := dfs.LatencyModel{OpenMin: 2 * time.Millisecond, OpenMax: 2 * time.Millisecond}
	c := newMetricCluster(t, 2, 3, 3, ServerConfig{CacheBytes: 4 << 10}, lat, sleep)

	// Several flush rounds -> several chunks per indexing server.
	const rounds, perRound = 4, 256
	for r := 0; r < rounds; r++ {
		c.ingest(seqTuples(perRound, 1<<55, int64(1000+r)))
		c.flushAll()
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Server 0 stays up so every query can settle.
			s := c.qs[1+i%2]
			s.Fail()
			time.Sleep(500 * time.Microsecond)
			s.Recover()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const queries = 24
	var wg sync.WaitGroup
	errCh := make(chan error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.coord.Execute(model.Query{
				Keys:  model.FullKeyRange(),
				Times: model.FullTimeRange(),
			})
			if err != nil {
				errCh <- err
				return
			}
			if got := len(res.Tuples); got != rounds*perRound {
				errCh <- errors.New("incomplete result")
				return
			}
			for j := 1; j < len(res.Tuples); j++ {
				if model.CompareTuples(&res.Tuples[j-1], &res.Tuples[j]) > 0 {
					errCh <- errors.New("unsorted result")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if c.cm.Redispatches.Value() == 0 {
		t.Log("warning: churn produced no redispatches this run")
	}
}

// TestSerialConfigMatchesParallelResults checks the Workers=1 +
// InflightReads=1 escape hatch: it must reproduce the serial engine's
// results exactly, and the parallel default must agree with it.
func TestSerialConfigMatchesParallelResults(t *testing.T) {
	build := func(cfg ServerConfig) *metricCluster {
		c := newMetricCluster(t, 2, 2, 2, cfg, dfs.LatencyModel{}, nil)
		for r := 0; r < 3; r++ {
			c.ingest(seqTuples(200, 1<<56, int64(1000+r)))
			c.flushAll()
		}
		return c
	}
	serial := build(ServerConfig{Workers: 1, InflightReads: 1})
	parallel := build(ServerConfig{})

	if got := serial.qs[0].Workers(); got != 1 {
		t.Fatalf("serial Workers() = %d, want 1", got)
	}
	if got := parallel.qs[0].Workers(); got < 1 {
		t.Fatalf("parallel Workers() = %d, want >= 1", got)
	}

	q := model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()}
	rs, err := serial.coord.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.coord.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Tuples) != len(rp.Tuples) {
		t.Fatalf("serial %d tuples, parallel %d", len(rs.Tuples), len(rp.Tuples))
	}
	for i := range rs.Tuples {
		if model.CompareTuples(&rs.Tuples[i], &rp.Tuples[i]) != 0 {
			t.Fatalf("tuple %d differs between serial and parallel engines", i)
		}
	}
	if rs.BytesRead != rp.BytesRead {
		t.Errorf("BytesRead differs: serial %d, parallel %d", rs.BytesRead, rp.BytesRead)
	}
}
