package queryexec

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"waterwheel/internal/dfs"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
)

// MemExecutor answers subqueries against an indexing server's in-memory
// trees (the fresh-data path). Implemented by *ingest.Server.
type MemExecutor interface {
	ExecuteSubQuery(sq *model.SubQuery) *model.Result
}

// ErrNoQueryServers is returned when chunk subqueries exist but no query
// server is alive.
var ErrNoQueryServers = errors.New("queryexec: no live query servers")

// CoordinatorConfig tunes the coordinator.
type CoordinatorConfig struct {
	// LateDeltaMillis is Δt, the late-visibility parameter (§IV-D): the
	// coordinator widens every live region's left temporal bound by Δt so
	// tuples arriving up to Δt late are never missed. Default 10 000 ms.
	LateDeltaMillis int64
	// Policy is the subquery dispatch policy (default LADA).
	Policy Policy
}

// Coordinator decomposes user queries into subqueries, dispatches them
// across indexing servers (fresh data) and query servers (chunks), and
// merges the results (§IV-A).
type Coordinator struct {
	cfg CoordinatorConfig
	ms  *meta.Server
	fs  *dfs.FS

	mu       sync.RWMutex
	qservers []*Server
	memExec  map[int]MemExecutor
}

// NewCoordinator creates a coordinator.
func NewCoordinator(cfg CoordinatorConfig, ms *meta.Server, fs *dfs.FS) *Coordinator {
	if cfg.LateDeltaMillis <= 0 {
		cfg.LateDeltaMillis = 10_000
	}
	if cfg.Policy == nil {
		cfg.Policy = LADA{}
	}
	return &Coordinator{cfg: cfg, ms: ms, fs: fs, memExec: make(map[int]MemExecutor)}
}

// AddQueryServer registers a query server.
func (c *Coordinator) AddQueryServer(s *Server) {
	c.mu.Lock()
	c.qservers = append(c.qservers, s)
	c.mu.Unlock()
}

// SetMemExecutor registers the fresh-data executor of an indexing server.
func (c *Coordinator) SetMemExecutor(indexServer int, e MemExecutor) {
	c.mu.Lock()
	c.memExec[indexServer] = e
	c.mu.Unlock()
}

// SetPolicy switches the dispatch policy (used by the experiments).
func (c *Coordinator) SetPolicy(p Policy) {
	c.mu.Lock()
	c.cfg.Policy = p
	c.mu.Unlock()
}

// Decompose splits a query into memtable subqueries (fresh data on
// indexing servers) and chunk subqueries (historical data on query
// servers), using the metadata R-tree for the chunk candidates.
func (c *Coordinator) Decompose(q model.Query) (memSubs, chunkSubs []*model.SubQuery) {
	qRegion := q.Region()
	seq := 0
	for _, ci := range c.ms.ChunksFor(qRegion) {
		r, ok := qRegion.Intersect(ci.Region)
		if !ok {
			continue
		}
		chunkSubs = append(chunkSubs, &model.SubQuery{
			QueryID: q.ID, Seq: seq, Region: r, Filter: q.Filter, Chunk: ci.ID,
			Limit: q.Limit,
		})
		seq++
	}
	for _, lr := range c.ms.LiveRegions() {
		if lr.Empty {
			continue
		}
		if !lr.Keys.Overlaps(q.Keys) {
			continue
		}
		// Widen the live region's left bound by Δt (§IV-D): presume late
		// tuples up to Δt behind the observed minimum.
		lo := lr.MinTime - model.Timestamp(c.cfg.LateDeltaMillis)
		if q.Times.Hi < lo {
			continue
		}
		kr, _ := lr.Keys.Intersect(q.Keys)
		memSubs = append(memSubs, &model.SubQuery{
			QueryID: q.ID, Seq: seq,
			Region:      model.Region{Keys: kr, Times: q.Times},
			Filter:      q.Filter,
			Chunk:       model.MemChunk,
			IndexServer: lr.Server,
			Limit:       q.Limit,
		})
		seq++
	}
	return memSubs, chunkSubs
}

// Execute runs a query to completion and returns the merged result with
// tuples sorted by (key, time).
func (c *Coordinator) Execute(q model.Query) (*model.Result, error) {
	q = c.ms.RegisterQuery(q)
	defer c.ms.CompleteQuery(q.ID)

	memSubs, chunkSubs := c.Decompose(q)
	res := &model.Result{QueryID: q.ID, SubQueries: len(memSubs) + len(chunkSubs)}

	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	// Fresh-data subqueries run on their indexing servers in parallel with
	// the chunk fan-out.
	c.mu.RLock()
	execs := make([]MemExecutor, 0, len(memSubs))
	for _, sq := range memSubs {
		execs = append(execs, c.memExec[sq.IndexServer])
	}
	c.mu.RUnlock()
	for i, sq := range memSubs {
		if execs[i] == nil {
			return nil, fmt.Errorf("queryexec: no executor for indexing server %d", sq.IndexServer)
		}
		wg.Add(1)
		go func(e MemExecutor, sq *model.SubQuery) {
			defer wg.Done()
			r := e.ExecuteSubQuery(sq)
			mu.Lock()
			res.Merge(r)
			mu.Unlock()
		}(execs[i], sq)
	}

	var chunkErr error
	if len(chunkSubs) > 0 {
		chunkErr = c.runChunkSubqueries(chunkSubs, func(r *model.Result) {
			mu.Lock()
			res.Merge(r)
			mu.Unlock()
		})
	}
	wg.Wait()
	if chunkErr != nil {
		return nil, chunkErr
	}
	res.SortTuples()
	if q.Limit > 0 && len(res.Tuples) > q.Limit {
		res.Tuples = res.Tuples[:q.Limit]
	}
	return res, nil
}

// ExplainInfo describes how a query would execute, for introspection and
// tooling: the fresh-data targets and the chunk candidates with their
// clipped regions.
type ExplainInfo struct {
	// MemSubQueries target indexing-server memtables.
	MemSubQueries []model.SubQuery
	// ChunkSubQueries target flushed chunks.
	ChunkSubQueries []model.SubQuery
	// Chunks carries the metadata of each targeted chunk, aligned with
	// ChunkSubQueries.
	Chunks []meta.ChunkInfo
}

// Explain decomposes a query without executing it.
func (c *Coordinator) Explain(q model.Query) ExplainInfo {
	memSubs, chunkSubs := c.Decompose(q)
	info := ExplainInfo{}
	for _, sq := range memSubs {
		info.MemSubQueries = append(info.MemSubQueries, *sq)
	}
	for _, sq := range chunkSubs {
		info.ChunkSubQueries = append(info.ChunkSubQueries, *sq)
		if ci, ok := c.ms.Chunk(sq.Chunk); ok {
			info.Chunks = append(info.Chunks, ci)
		} else {
			info.Chunks = append(info.Chunks, meta.ChunkInfo{ID: sq.Chunk})
		}
	}
	return info
}

// subquery claim states.
const (
	statePending int32 = iota
	stateClaimed
	stateDone
)

// runChunkSubqueries drives the dispatch engine: the policy builds the
// per-server preference lists, then one worker per live query server
// claims subqueries from the shared pending set in its preference order
// (§IV-C). A failed server's claimed subquery is returned to the pending
// set and picked up by another server (§V); after exhausting its list a
// server sweeps for still-pending work so re-dispatched subqueries always
// find a host.
func (c *Coordinator) runChunkSubqueries(sqs []*model.SubQuery, deliver func(*model.Result)) error {
	c.mu.RLock()
	servers := append([]*Server(nil), c.qservers...)
	policy := c.cfg.Policy
	c.mu.RUnlock()

	live := servers[:0]
	for _, s := range servers {
		if !s.Down() {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return ErrNoQueryServers
	}

	placements := make([]ServerPlacement, len(live))
	for i, s := range live {
		placements[i] = ServerPlacement{ID: s.ID(), Node: s.Node()}
	}
	locations := make([][]int, len(sqs))
	for i, sq := range sqs {
		if ci, ok := c.ms.Chunk(sq.Chunk); ok {
			locs, err := c.fs.Locations(ci.Path)
			if err == nil {
				locations[i] = locs
			}
		}
	}
	pref := policy.Plan(sqs, locations, placements)

	states := make([]atomic.Int32, len(sqs))
	var done atomic.Int64
	var wg sync.WaitGroup

	runOne := func(s *Server, idx int) bool {
		r, err := s.ExecuteSubQuery(sqs[idx])
		if err != nil {
			// Return the subquery to the pending set; this server stops.
			states[idx].Store(statePending)
			return false
		}
		states[idx].Store(stateDone)
		done.Add(1)
		deliver(r)
		return true
	}

	for i, s := range live {
		wg.Add(1)
		go func(s *Server, list []int) {
			defer wg.Done()
			for _, idx := range list {
				if !states[idx].CompareAndSwap(statePending, stateClaimed) {
					continue
				}
				if !runOne(s, idx) {
					return
				}
			}
			// Sweep for re-dispatched (failed-elsewhere) subqueries until
			// everything is done or this server fails too. If a subquery is
			// claimed by a live server it will settle; if its claimant
			// failed it returns to pending and is picked up here.
			for !allSettled(states) {
				progressed := false
				for idx := range states {
					if states[idx].CompareAndSwap(statePending, stateClaimed) {
						progressed = true
						if !runOne(s, idx) {
							return
						}
					}
				}
				if !progressed {
					runtime.Gosched()
				}
			}
		}(s, pref[i])
	}
	wg.Wait()
	if done.Load() < int64(len(sqs)) {
		return fmt.Errorf("%w: %d/%d subqueries unserved after failures",
			ErrNoQueryServers, int64(len(sqs))-done.Load(), len(sqs))
	}
	return nil
}

func allSettled(states []atomic.Int32) bool {
	for i := range states {
		if states[i].Load() != stateDone {
			return false
		}
	}
	return true
}
